/**
 * @file
 * Table-3-style study of the static partitioning pipeline: how close
 * does a purely static (ddlint-derived) classification get to the
 * oracle, and what does the hybrid static+predictor scheme buy back?
 * Under optimized (3+2), per workload:
 *   oracle       - perfect separation (evaluation upper bound)
 *   spbase       - hardware heuristic: base register is sp/fp
 *   predictor    - annotation hint + 1-bit last-region table
 *   static-safe  - Annotation over hints rewritten with HintPolicy::
 *                  Safe (Ambiguous -> L1 path; never mispartitions
 *                  a non-local access into the LVAQ)
 *   static-spec  - Annotation over HintPolicy::Speculative hints
 *                  (Ambiguous -> LVAQ; leans on recovery)
 *   hybrid       - ClassifierKind::StaticHybrid: decided verdicts
 *                  steer statically, Ambiguous ones consult the
 *                  region predictor (with recovery)
 *
 * Reports LVAQ steering coverage (fraction of classified accesses
 * sent to the LVAQ), the mispartition rate, the statically-decided
 * fraction, and the IPC delta against the oracle. Paper: compiler
 * annotation plus the 1-bit predictor reaches ~99.9% accuracy, so
 * static schemes should land within noise of the oracle.
 */

#include <cstdio>
#include <iostream>
#include <map>
#include <memory>

#include "analysis/annotate.hh"
#include "bench_common.hh"
#include "config/presets.hh"

using namespace ddsim;
using namespace ddsim::bench;

namespace {

struct Policy
{
    const char *label;
    config::ClassifierKind kind;
    /** HintPolicy name the program is annotated with; "" = stock. */
    const char *annotate;
};

constexpr Policy kPolicies[] = {
    {"oracle", config::ClassifierKind::Oracle, ""},
    {"spbase", config::ClassifierKind::SpBase, ""},
    {"predictor", config::ClassifierKind::Predictor, ""},
    {"static-safe", config::ClassifierKind::Annotation, "safe"},
    {"static-spec", config::ClassifierKind::Annotation, "speculative"},
    {"hybrid", config::ClassifierKind::StaticHybrid, "hybrid"},
};

} // namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    banner("Static partitioning: ddlint verdicts vs dynamic schemes "
           "under optimized (3+2)",
           "static classification should land within noise of the "
           "oracle (paper: ~99.9% accuracy from annotation + 1-bit "
           "predictor)");

    // One analysis per workload feeds every annotated variant; the
    // pass stats double as the static-coverage report below.
    std::vector<sim::SweepJob> jobs;
    std::map<std::string, analysis::AnnotateStats> passStats;
    for (const auto *info : opts.programs) {
        auto base = buildProgramShared(*info, opts);
        analysis::AnalysisResult ar = analysis::analyze(*base);
        for (const Policy &p : kPolicies) {
            sim::SweepJob job;
            if (p.annotate[0] == '\0') {
                job.program = base;
            } else {
                analysis::AnnotateStats st;
                job.program = std::make_shared<const prog::Program>(
                    analysis::annotateProgram(
                        *base, ar, *analysis::hintPolicyFromName(
                            p.annotate), &st));
                // Policies run in kPolicies order, so the stats kept
                // are the hybrid pass's — the ones the coverage table
                // below claims to report.
                passStats[info->name] = st;
            }
            job.cfg = config::decoupledOptimized(3, 2);
            job.cfg.classifier = p.kind;
            job.annotate = p.annotate;
            jobs.push_back(std::move(job));
        }
    }

    std::vector<sim::SimResult> results =
        runGrid(opts, std::move(jobs), "Static classifier sweep");

    sim::Table pass({"program", "mem insts", "hinted", "cleared",
                     "ambiguous", "bits flipped"});
    for (const auto *info : opts.programs) {
        const analysis::AnnotateStats &st = passStats.at(info->name);
        pass.addRow({info->paperName, std::to_string(st.memInsts),
                     std::to_string(st.hinted),
                     std::to_string(st.cleared),
                     std::to_string(st.ambiguous),
                     std::to_string(st.changed)});
    }
    sim::printHeading(std::cout, "Static pass coverage",
                 "ddlint verdicts burned into the hint bits "
                 "(hybrid policy; ambiguous = left to the hardware)");
    pass.print(std::cout);

    sim::Table table({"program", "policy", "IPC", "vs oracle",
                      "lvaq steer", "mispartition", "static decided"});
    std::map<std::string, std::vector<double>> deltas;
    std::size_t k = 0;
    for (const auto *info : opts.programs) {
        double oracleIpc = 0.0;
        for (const Policy &p : kPolicies) {
            const sim::SimResult &r = results[k++];
            if (p.kind == config::ClassifierKind::Oracle)
                oracleIpc = r.ipc;

            std::vector<std::string> row{info->paperName, p.label};
            row.push_back(sim::Table::cell(r, r.ipc, 3));
            // The oracle's delta against itself is structural, not a
            // measurement; same for its mispartition rate (it peeks
            // at the resolved address, so it cannot missteer).
            bool isOracle = p.kind == config::ClassifierKind::Oracle;
            if (isOracle || r.quarantined || oracleIpc <= 0)
                row.push_back(isOracle ? sim::Table::kNotApplicable
                                       : sim::Table::kQuarantined);
            else {
                double delta = r.ipc / oracleIpc - 1.0;
                row.push_back(sim::Table::pct(delta, 2));
                deltas[p.label].push_back(r.ipc / oracleIpc);
            }
            double classified =
                r.classified ? static_cast<double>(r.classified) : 1.0;
            row.push_back(sim::Table::cell(
                r, static_cast<double>(r.toLvaq) / classified * 100,
                1));
            row.push_back(
                isOracle ? sim::Table::kNotApplicable
                         : sim::Table::cell(
                               r,
                               static_cast<double>(r.missteered) /
                                   classified * 100,
                               2));
            row.push_back(
                p.kind == config::ClassifierKind::StaticHybrid
                    ? sim::Table::cell(
                          r,
                          static_cast<double>(r.staticDecided) /
                              classified * 100,
                          1)
                    : sim::Table::kNotApplicable);
            table.addRow(std::move(row));
        }
    }
    sim::printHeading(std::cout, "Steering policies",
                 "lvaq steer / mispartition / static decided are % of "
                 "classified accesses; vs oracle is the IPC delta");
    table.print(std::cout);

    std::printf("\ngeomean IPC vs oracle:");
    for (const Policy &p : kPolicies) {
        if (p.kind == config::ClassifierKind::Oracle)
            continue;
        auto it = deltas.find(p.label);
        if (it == deltas.end() || it->second.empty())
            std::printf("  %s %s", p.label, sim::Table::kQuarantined);
        else
            std::printf("  %s %.3f", p.label, geomean(it->second));
    }
    std::printf("\n");
    return 0;
}
