/**
 * @file
 * Simulator throughput measured with google-benchmark: simulated
 * instructions per wall-clock second for representative workload and
 * configuration pairs.
 *
 * `--json=<path>` switches to a self-timed measurement pass that
 * writes the results machine-readably (schema below) instead of
 * running google-benchmark; BENCH_simspeed.json at the repo root is
 * the committed output of that mode and tracks the perf trajectory
 * PR over PR.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "config/presets.hh"
#include "sim/sweep.hh"
#include "util/log.hh"
#include "vm/trace.hh"
#include "workloads/common.hh"

using namespace ddsim;

namespace {

void
runOne(benchmark::State &state, const char *workload,
       config::MachineConfig cfg)
{
    workloads::WorkloadParams p;
    p.scale = workloads::find(workload)->defaultScale / 4;
    prog::Program program = workloads::build(workload, p);

    std::uint64_t insts = 0;
    for (auto _ : state) {
        sim::SimResult r = sim::run(program, cfg);
        insts += r.committed;
        benchmark::DoNotOptimize(r.cycles);
    }
    state.counters["Minst/s"] = benchmark::Counter(
        static_cast<double>(insts) / 1e6, benchmark::Counter::kIsRate);
}

void
BM_Baseline_li(benchmark::State &state)
{
    runOne(state, "li", config::baseline(2));
}

void
BM_Decoupled_li(benchmark::State &state)
{
    runOne(state, "li", config::decoupledOptimized(3, 2));
}

void
BM_Baseline_swim(benchmark::State &state)
{
    runOne(state, "swim", config::baseline(2));
}

void
BM_Decoupled_vortex(benchmark::State &state)
{
    runOne(state, "vortex", config::decoupledOptimized(3, 2));
}

void
BM_SweepGrid_li(benchmark::State &state)
{
    // A Fig. 7-like (N+M) slice through SweepRunner; Arg = workers
    // (0 = one per hardware thread). Results are identical for any
    // worker count; only wall-clock changes.
    workloads::WorkloadParams p;
    p.scale = workloads::find("li")->defaultScale / 8;
    auto program = std::make_shared<const prog::Program>(
        workloads::build("li", p));

    unsigned workers = static_cast<unsigned>(state.range(0));
    std::uint64_t insts = 0;
    for (auto _ : state) {
        sim::SweepRunner sweep(workers);
        for (int n : {2, 3, 4})
            for (int m : {0, 1, 2})
                sweep.submit(program,
                             m == 0 ? config::baseline(n)
                                    : config::decoupled(n, m));
        for (const sim::SimResult &r : sweep.collect())
            insts += r.committed;
    }
    state.counters["Minst/s"] = benchmark::Counter(
        static_cast<double>(insts) / 1e6, benchmark::Counter::kIsRate);
}

void
BM_WorkloadGeneration(benchmark::State &state)
{
    workloads::WorkloadParams p;
    p.scale = 50;
    for (auto _ : state) {
        prog::Program program = workloads::build("gcc", p);
        benchmark::DoNotOptimize(program.textSize());
    }
}

// ---- --json mode ----------------------------------------------------------

/**
 * Committed instructions per wall-clock second of repeated
 * sim::run()s, measured until at least @p minSec has elapsed.
 */
double
timedRate(const prog::Program &program,
          const config::MachineConfig &cfg,
          const sim::RunOptions &opts, double minSec)
{
    using clock = std::chrono::steady_clock;
    std::uint64_t insts = 0;
    double elapsed = 0.0;
    int reps = 0;
    while (elapsed < minSec || reps < 2) {
        auto t0 = clock::now();
        sim::SimResult r = sim::run(program, cfg, opts);
        elapsed +=
            std::chrono::duration<double>(clock::now() - t0).count();
        insts += r.committed;
        ++reps;
    }
    return static_cast<double>(insts) / elapsed / 1e6;
}

/**
 * The two acceptance metrics of the event-driven core, plus context:
 * per-workload single-run throughput (live execution and shared-trace
 * replay) and the wall clock of the full Fig. 7 (N+M) sweep grid at
 * --jobs=1.
 */
int
writeJson(const char *path)
{
    struct Single
    {
        const char *name;
        const char *workload;
        const char *config;
        const char *engine;
        double rate;
    };
    std::vector<Single> singles;

    auto programOf = [](const char *workload) {
        workloads::WorkloadParams p;
        p.scale = workloads::find(workload)->defaultScale / 4;
        return workloads::build(workload, p);
    };
    const double minSec = 0.3;

    {
        prog::Program li = programOf("li");
        singles.push_back({"baseline2_li", "li", "baseline(2)", "live",
                           timedRate(li, config::baseline(2), {},
                                     minSec)});
        singles.push_back(
            {"decoupledOpt32_li", "li", "decoupledOptimized(3,2)",
             "live",
             timedRate(li, config::decoupledOptimized(3, 2), {},
                       minSec)});
        sim::RunOptions replayOpts;
        replayOpts.trace = std::make_shared<const vm::RecordedTrace>(
            vm::RecordedTrace::record(li));
        singles.push_back(
            {"decoupledOpt32_li_replay", "li",
             "decoupledOptimized(3,2)", "replay",
             timedRate(li, config::decoupledOptimized(3, 2),
                       replayOpts, minSec)});
    }
    {
        prog::Program swim = programOf("swim");
        singles.push_back({"baseline2_swim", "swim", "baseline(2)",
                           "live",
                           timedRate(swim, config::baseline(2), {},
                                     minSec)});
    }
    {
        prog::Program vortex = programOf("vortex");
        singles.push_back(
            {"decoupledOpt32_vortex", "vortex",
             "decoupledOptimized(3,2)", "live",
             timedRate(vortex, config::decoupledOptimized(3, 2), {},
                       minSec)});
    }

    // Full Fig. 7 grid (per program: (2+0) base + 3x5 (N+M) matrix)
    // at one worker, traces shared per program — the sweep acceptance
    // metric.
    using clock = std::chrono::steady_clock;
    std::uint64_t sweepInsts = 0;
    std::size_t sweepJobs = 0;
    auto t0 = clock::now();
    {
        sim::SweepRunner sweep(1);
        for (const workloads::WorkloadInfo &w : workloads::all()) {
            workloads::WorkloadParams p;
            p.scale = w.defaultScale;
            auto program = std::make_shared<const prog::Program>(
                workloads::build(w.name, p));
            sweep.submit(program, config::baseline(2));
            ++sweepJobs;
            for (int n : {2, 3, 4}) {
                for (int m : {0, 1, 2, 3, 16}) {
                    sweep.submit(program,
                                 m == 0 ? config::baseline(n)
                                        : config::decoupled(n, m));
                    ++sweepJobs;
                }
            }
        }
        for (const sim::SimResult &r : sweep.collect())
            sweepInsts += r.committed;
    }
    double sweepWallMs =
        std::chrono::duration<double, std::milli>(clock::now() - t0)
            .count();

    std::FILE *f = std::fopen(path, "w");
    if (!f)
        fatal("cannot open %s for writing", path);
    std::fprintf(f, "{\n  \"bench\": \"simspeed\",\n"
                    "  \"schema\": 1,\n"
                    "  \"units\": {\"throughput\": \"Minst/s\", "
                    "\"wall\": \"ms\"},\n"
                    "  \"single_runs\": [\n");
    for (std::size_t i = 0; i < singles.size(); ++i) {
        const Single &s = singles[i];
        std::fprintf(f,
                     "    {\"name\": \"%s\", \"workload\": \"%s\", "
                     "\"config\": \"%s\", \"engine\": \"%s\", "
                     "\"minst_per_s\": %.3f}%s\n",
                     s.name, s.workload, s.config, s.engine, s.rate,
                     i + 1 < singles.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n"
                 "  \"fig7_sweep\": {\"jobs\": 1, \"grid_jobs\": %zu, "
                 "\"trace_sharing\": true, \"wall_ms\": %.1f, "
                 "\"minst_per_s\": %.3f}\n}\n",
                 sweepJobs, sweepWallMs,
                 static_cast<double>(sweepInsts) / (sweepWallMs * 1e3));
    std::fclose(f);
    std::printf("wrote %s (%zu single runs, %zu-job sweep %.1f ms)\n",
                path, singles.size(), sweepJobs, sweepWallMs);
    return 0;
}

} // namespace

BENCHMARK(BM_Baseline_li)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Decoupled_li)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Baseline_swim)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Decoupled_vortex)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SweepGrid_li)->Arg(1)->Arg(0)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_WorkloadGeneration)->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--json=", 7) == 0)
            return writeJson(argv[i] + 7);
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
