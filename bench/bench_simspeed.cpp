/**
 * @file
 * Simulator throughput measured with google-benchmark: simulated
 * instructions per wall-clock second for representative workload and
 * configuration pairs.
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "config/presets.hh"
#include "sim/sweep.hh"
#include "workloads/common.hh"

using namespace ddsim;

namespace {

void
runOne(benchmark::State &state, const char *workload,
       config::MachineConfig cfg)
{
    workloads::WorkloadParams p;
    p.scale = workloads::find(workload)->defaultScale / 4;
    prog::Program program = workloads::build(workload, p);

    std::uint64_t insts = 0;
    for (auto _ : state) {
        sim::SimResult r = sim::run(program, cfg);
        insts += r.committed;
        benchmark::DoNotOptimize(r.cycles);
    }
    state.counters["Minst/s"] = benchmark::Counter(
        static_cast<double>(insts) / 1e6, benchmark::Counter::kIsRate);
}

void
BM_Baseline_li(benchmark::State &state)
{
    runOne(state, "li", config::baseline(2));
}

void
BM_Decoupled_li(benchmark::State &state)
{
    runOne(state, "li", config::decoupledOptimized(3, 2));
}

void
BM_Baseline_swim(benchmark::State &state)
{
    runOne(state, "swim", config::baseline(2));
}

void
BM_Decoupled_vortex(benchmark::State &state)
{
    runOne(state, "vortex", config::decoupledOptimized(3, 2));
}

void
BM_SweepGrid_li(benchmark::State &state)
{
    // A Fig. 7-like (N+M) slice through SweepRunner; Arg = workers
    // (0 = one per hardware thread). Results are identical for any
    // worker count; only wall-clock changes.
    workloads::WorkloadParams p;
    p.scale = workloads::find("li")->defaultScale / 8;
    auto program = std::make_shared<const prog::Program>(
        workloads::build("li", p));

    unsigned workers = static_cast<unsigned>(state.range(0));
    std::uint64_t insts = 0;
    for (auto _ : state) {
        sim::SweepRunner sweep(workers);
        for (int n : {2, 3, 4})
            for (int m : {0, 1, 2})
                sweep.submit(program,
                             m == 0 ? config::baseline(n)
                                    : config::decoupled(n, m));
        for (const sim::SimResult &r : sweep.collect())
            insts += r.committed;
    }
    state.counters["Minst/s"] = benchmark::Counter(
        static_cast<double>(insts) / 1e6, benchmark::Counter::kIsRate);
}

void
BM_WorkloadGeneration(benchmark::State &state)
{
    workloads::WorkloadParams p;
    p.scale = 50;
    for (auto _ : state) {
        prog::Program program = workloads::build("gcc", p);
        benchmark::DoNotOptimize(program.textSize());
    }
}

} // namespace

BENCHMARK(BM_Baseline_li)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Decoupled_li)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Baseline_swim)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Decoupled_vortex)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SweepGrid_li)->Arg(1)->Arg(0)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_WorkloadGeneration)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
