/**
 * @file
 * Simulator throughput measured with google-benchmark: simulated
 * instructions per wall-clock second for representative workload and
 * configuration pairs.
 *
 * `--json=<path>` switches to a self-timed measurement pass that
 * writes the results machine-readably (schema below) instead of
 * running google-benchmark; BENCH_simspeed.json at the repo root is
 * the committed output of that mode and tracks the perf trajectory
 * PR over PR.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "config/presets.hh"
#include "obs/version.hh"
#include "sim/runner.hh"
#include "sim/sweep.hh"
#include "util/log.hh"
#include "vm/trace.hh"
#include "workloads/common.hh"

using namespace ddsim;

namespace {

void
runOne(benchmark::State &state, const char *workload,
       config::MachineConfig cfg)
{
    workloads::WorkloadParams p;
    p.scale = workloads::find(workload)->defaultScale / 4;
    prog::Program program = workloads::build(workload, p);

    std::uint64_t insts = 0;
    for (auto _ : state) {
        sim::SimResult r = sim::run(program, cfg);
        insts += r.committed;
        benchmark::DoNotOptimize(r.cycles);
    }
    state.counters["Minst/s"] = benchmark::Counter(
        static_cast<double>(insts) / 1e6, benchmark::Counter::kIsRate);
}

void
BM_Baseline_li(benchmark::State &state)
{
    runOne(state, "li", config::baseline(2));
}

void
BM_Decoupled_li(benchmark::State &state)
{
    runOne(state, "li", config::decoupledOptimized(3, 2));
}

void
BM_Baseline_swim(benchmark::State &state)
{
    runOne(state, "swim", config::baseline(2));
}

void
BM_Decoupled_vortex(benchmark::State &state)
{
    runOne(state, "vortex", config::decoupledOptimized(3, 2));
}

void
BM_SweepGrid_li(benchmark::State &state)
{
    // A Fig. 7-like (N+M) slice through SweepRunner; Arg = workers
    // (0 = one per hardware thread). Results are identical for any
    // worker count; only wall-clock changes.
    workloads::WorkloadParams p;
    p.scale = workloads::find("li")->defaultScale / 8;
    auto program = std::make_shared<const prog::Program>(
        workloads::build("li", p));

    unsigned workers = static_cast<unsigned>(state.range(0));
    std::uint64_t insts = 0;
    for (auto _ : state) {
        sim::SweepRunner sweep(workers);
        for (int n : {2, 3, 4})
            for (int m : {0, 1, 2})
                sweep.submit(program,
                             m == 0 ? config::baseline(n)
                                    : config::decoupled(n, m));
        for (const sim::SimResult &r : sweep.collect())
            insts += r.committed;
    }
    state.counters["Minst/s"] = benchmark::Counter(
        static_cast<double>(insts) / 1e6, benchmark::Counter::kIsRate);
}

void
BM_WorkloadGeneration(benchmark::State &state)
{
    workloads::WorkloadParams p;
    p.scale = 50;
    for (auto _ : state) {
        prog::Program program = workloads::build("gcc", p);
        benchmark::DoNotOptimize(program.textSize());
    }
}

// ---- --json mode ----------------------------------------------------------

/**
 * Committed instructions per wall-clock second of repeated
 * sim::run()s, measured until at least @p minSec has elapsed.
 */
double
timedRate(const prog::Program &program,
          const config::MachineConfig &cfg,
          const sim::RunOptions &opts, double minSec)
{
    using clock = std::chrono::steady_clock;
    std::uint64_t insts = 0;
    double elapsed = 0.0;
    int reps = 0;
    while (elapsed < minSec || reps < 2) {
        auto t0 = clock::now();
        sim::SimResult r = sim::run(program, cfg, opts);
        elapsed +=
            std::chrono::duration<double>(clock::now() - t0).count();
        insts += r.committed;
        ++reps;
    }
    return static_cast<double>(insts) / elapsed / 1e6;
}

/**
 * Like timedRate, but each repetition is one runBatch() pass over a
 * whole config column; the rate aggregates every lane's committed
 * instructions (the decode pass is shared, which is the point).
 */
double
timedBatchRate(const prog::Program &program,
               const std::vector<config::MachineConfig> &cfgs,
               double minSec)
{
    using clock = std::chrono::steady_clock;
    std::uint64_t insts = 0;
    double elapsed = 0.0;
    int reps = 0;
    while (elapsed < minSec || reps < 2) {
        auto t0 = clock::now();
        std::vector<sim::SimResult> rs = sim::runBatch(program, cfgs);
        elapsed +=
            std::chrono::duration<double>(clock::now() - t0).count();
        for (const sim::SimResult &r : rs)
            insts += r.committed;
        ++reps;
    }
    return static_cast<double>(insts) / elapsed / 1e6;
}

/** One engine variant of the Fig. 7 sweep-grid measurement. */
struct SweepRow
{
    const char *engine;
    std::size_t jobs = 0;
    double wallMs = 0.0;
    double rate = 0.0;
};

/**
 * The full Fig. 7 grid (per program: (2+0) base + 3x5 (N+M) matrix)
 * at one worker, traces shared per program, under the given engine.
 * Auto is the committed schema-1 measurement (per-point shared-trace
 * replay); Batched folds each program's column into one decode pass;
 * Sampled runs the default SMARTS plan (IPC becomes an estimate, and
 * committed still counts the whole program, so the rate stays
 * comparable).
 */
SweepRow
fig7Sweep(const char *label, sim::Engine engine)
{
    using clock = std::chrono::steady_clock;
    SweepRow row;
    row.engine = label;
    std::uint64_t insts = 0;
    auto t0 = clock::now();
    {
        sim::SweepRunner sweep(1);
        sim::RunOptions ro;
        ro.engine = engine;
        for (const workloads::WorkloadInfo &w : workloads::all()) {
            workloads::WorkloadParams p;
            p.scale = w.defaultScale;
            auto program = std::make_shared<const prog::Program>(
                workloads::build(w.name, p));
            sweep.submit(program, config::baseline(2), ro);
            ++row.jobs;
            for (int n : {2, 3, 4}) {
                for (int m : {0, 1, 2, 3, 16}) {
                    sweep.submit(program,
                                 m == 0 ? config::baseline(n)
                                        : config::decoupled(n, m),
                                 ro);
                    ++row.jobs;
                }
            }
        }
        for (const sim::SimResult &r : sweep.collect())
            insts += r.committed;
    }
    row.wallMs =
        std::chrono::duration<double, std::milli>(clock::now() - t0)
            .count();
    row.rate = static_cast<double>(insts) / (row.wallMs * 1e3);
    return row;
}

/**
 * The acceptance metrics of the engine stack, plus context:
 * per-workload single-run throughput (live execution, shared-trace
 * replay, one batched column, one sampled run) and the wall clock of
 * the full Fig. 7 (N+M) sweep grid at --jobs=1 under each engine.
 */
int
writeJson(const char *path)
{
    struct Single
    {
        const char *name;
        const char *workload;
        const char *config;
        const char *engine;
        double rate;
    };
    std::vector<Single> singles;

    auto programOf = [](const char *workload) {
        workloads::WorkloadParams p;
        p.scale = workloads::find(workload)->defaultScale / 4;
        return workloads::build(workload, p);
    };
    const double minSec = 0.3;

    {
        prog::Program li = programOf("li");
        singles.push_back({"baseline2_li", "li", "baseline(2)", "live",
                           timedRate(li, config::baseline(2), {},
                                     minSec)});
        singles.push_back(
            {"decoupledOpt32_li", "li", "decoupledOptimized(3,2)",
             "live",
             timedRate(li, config::decoupledOptimized(3, 2), {},
                       minSec)});
        sim::RunOptions replayOpts;
        replayOpts.trace = std::make_shared<const vm::RecordedTrace>(
            vm::RecordedTrace::record(li));
        singles.push_back(
            {"decoupledOpt32_li_replay", "li",
             "decoupledOptimized(3,2)", "replay",
             timedRate(li, config::decoupledOptimized(3, 2),
                       replayOpts, minSec)});
        // One Fig. 7 column (N=3, every M) through one decode pass.
        singles.push_back(
            {"fig7col_li_batched", "li", "fig7 N=3 column (5 configs)",
             "batched",
             timedBatchRate(li,
                            {config::baseline(3),
                             config::decoupled(3, 1),
                             config::decoupled(3, 2),
                             config::decoupled(3, 3),
                             config::decoupled(3, 16)},
                            minSec)});
        sim::RunOptions sampledOpts;
        sampledOpts.engine = sim::Engine::Sampled;
        singles.push_back(
            {"decoupledOpt32_li_sampled", "li",
             "decoupledOptimized(3,2)", "sampled",
             timedRate(li, config::decoupledOptimized(3, 2),
                       sampledOpts, minSec)});
    }
    {
        prog::Program swim = programOf("swim");
        singles.push_back({"baseline2_swim", "swim", "baseline(2)",
                           "live",
                           timedRate(swim, config::baseline(2), {},
                                     minSec)});
    }
    {
        prog::Program vortex = programOf("vortex");
        singles.push_back(
            {"decoupledOpt32_vortex", "vortex",
             "decoupledOptimized(3,2)", "live",
             timedRate(vortex, config::decoupledOptimized(3, 2), {},
                       minSec)});
    }

    // The sweep acceptance metric, once per engine. "replay" is the
    // schema-1 measurement under its historical key.
    std::vector<SweepRow> sweeps;
    sweeps.push_back(fig7Sweep("replay", sim::Engine::Auto));
    sweeps.push_back(fig7Sweep("batched", sim::Engine::Batched));
    sweeps.push_back(fig7Sweep("sampled", sim::Engine::Sampled));

    std::FILE *f = std::fopen(path, "w");
    if (!f)
        fatal("cannot open %s for writing", path);
    std::fprintf(f,
                 "{\n  \"bench\": \"simspeed\",\n"
                 "  \"schema\": 2,\n"
                 "  \"generator\": {\"name\": \"%s\", \"version\": "
                 "\"%s\", \"git\": \"%s\"},\n"
                 "  \"units\": {\"throughput\": \"Minst/s\", "
                 "\"wall\": \"ms\"},\n"
                 "  \"single_runs\": [\n",
                 obs::simulatorName(), obs::simulatorVersion(),
                 obs::gitDescribe());
    for (std::size_t i = 0; i < singles.size(); ++i) {
        const Single &s = singles[i];
        std::fprintf(f,
                     "    {\"name\": \"%s\", \"workload\": \"%s\", "
                     "\"config\": \"%s\", \"engine\": \"%s\", "
                     "\"minst_per_s\": %.3f}%s\n",
                     s.name, s.workload, s.config, s.engine, s.rate,
                     i + 1 < singles.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"fig7_sweep\": [\n");
    for (std::size_t i = 0; i < sweeps.size(); ++i) {
        const SweepRow &s = sweeps[i];
        std::fprintf(f,
                     "    {\"engine\": \"%s\", \"jobs\": 1, "
                     "\"grid_jobs\": %zu, \"trace_sharing\": true, "
                     "\"wall_ms\": %.1f, \"minst_per_s\": %.3f}%s\n",
                     s.engine, s.jobs, s.wallMs, s.rate,
                     i + 1 < sweeps.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu single runs; %zu-job sweep: ", path,
                singles.size(), sweeps.front().jobs);
    for (const SweepRow &s : sweeps)
        std::printf("%s %.1f ms (%.2f Minst/s)%s", s.engine, s.wallMs,
                    s.rate, &s == &sweeps.back() ? ")\n" : ", ");
    return 0;
}

} // namespace

BENCHMARK(BM_Baseline_li)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Decoupled_li)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Baseline_swim)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Decoupled_vortex)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SweepGrid_li)->Arg(1)->Arg(0)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_WorkloadGeneration)->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--json=", 7) == 0)
            return writeJson(argv[i] + 7);
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
