/**
 * @file
 * Figure 5: performance of (N+0) configurations relative to (16+0)
 * as the number of ideal L1 ports varies from 1 to 5.
 *
 * Paper: a 3- or 4-port cache reaches the maximum; 2 ports get ~90%
 * of it on average; memory-intensive programs (li, vortex) are the
 * most sensitive.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hh"
#include "config/presets.hh"

using namespace ddsim;
using namespace ddsim::bench;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    banner("Figure 5: (N+0) performance relative to (16+0)",
           "3-4 ports reach the maximum; 2 ports ~90% on average; "
           "li/vortex most port-sensitive");

    const int ports[] = {1, 2, 3, 4, 5};
    sim::Table table({"program", "(1+0)", "(2+0)", "(3+0)", "(4+0)",
                      "(5+0)"});
    std::vector<std::vector<double>> rel(5);

    std::vector<sim::SweepJob> jobs;
    for (const auto *info : opts.programs) {
        auto program = buildProgramShared(*info, opts);
        jobs.push_back({program, config::baseline(16)});
        for (int p : ports)
            jobs.push_back({program, config::baseline(p)});
    }
    std::vector<sim::SimResult> results = runGrid(opts, jobs, "Figure 5 port sweep");

    std::size_t k = 0;
    for (const auto *info : opts.programs) {
        sim::SimResult limit = results[k++];
        std::vector<std::string> row{info->paperName};
        for (int i = 0; i < 5; ++i) {
            sim::SimResult r = results[k++];
            double relative = r.ipc / limit.ipc;
            // Quarantined points are holes, not zeros: marked in the
            // table, excluded from the averages.
            if (r.quarantined || limit.quarantined) {
                row.emplace_back(sim::Table::kQuarantined);
                continue;
            }
            rel[static_cast<std::size_t>(i)].push_back(relative);
            row.push_back(sim::Table::pct(relative));
        }
        table.addRow(row);
    }
    std::vector<std::string> avg{"average"};
    for (int i = 0; i < 5; ++i)
        avg.push_back(
            sim::Table::pct(geomean(rel[static_cast<std::size_t>(i)])));
    table.addRow(avg);
    table.print(std::cout);

    std::printf("\nMeasured: 2 ports reach %.0f%% of the (16+0) "
                "limit on average (paper: ~90%%); 4 ports reach "
                "%.0f%%.\n",
                geomean(rel[1]) * 100, geomean(rel[3]) * 100);
    return 0;
}
