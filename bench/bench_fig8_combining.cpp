/**
 * @file
 * Figure 8: effect of access combining under the (3+1) and (3+2)
 * configurations, for combining degrees 1 (off), 2 and 4.
 *
 * Paper: two-way combining gains ~8% under (3+1) and ~2% under
 * (3+2) on average; 130.li and 147.vortex gain 16% and 26% under
 * (3+1), vortex still >12% under (3+2).
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hh"
#include "config/presets.hh"

using namespace ddsim;
using namespace ddsim::bench;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    banner("Figure 8: access combining speedup over no combining",
           "2-way: ~8% under (3+1), ~2% under (3+2); li/vortex gain "
           "16%/26% under (3+1)");

    sim::Table table({"program", "(3+1) 2-way", "(3+1) 4-way",
                      "(3+2) 2-way", "(3+2) 4-way"});
    std::vector<double> g31x2, g32x2;

    std::vector<sim::SweepJob> jobs;
    for (const auto *info : opts.programs) {
        auto program = buildProgramShared(*info, opts);
        for (int lvcPorts : {1, 2}) {
            jobs.push_back({program, config::decoupled(3, lvcPorts)});
            for (int degree : {2, 4}) {
                config::MachineConfig cfg =
                    config::decoupled(3, lvcPorts);
                cfg.combining = degree;
                jobs.push_back({program, cfg});
            }
        }
    }
    std::vector<sim::SimResult> results = runGrid(opts, jobs, "Figure 8 combining sweep");

    std::size_t k = 0;
    for (const auto *info : opts.programs) {
        std::vector<std::string> row{info->paperName};
        for (int lvcPorts : {1, 2}) {
            sim::SimResult off = results[k++];
            for (int degree : {2, 4}) {
                sim::SimResult on = results[k++];
                double speedup = on.ipc / off.ipc;
                row.push_back(sim::Table::pct(speedup - 1.0, 1));
                if (degree == 2 && lvcPorts == 1)
                    g31x2.push_back(speedup);
                if (degree == 2 && lvcPorts == 2)
                    g32x2.push_back(speedup);
            }
        }
        table.addRow(row);
    }
    table.addRow({"geomean", sim::Table::pct(geomean(g31x2) - 1, 1),
                  "", sim::Table::pct(geomean(g32x2) - 1, 1), ""});
    table.print(std::cout);

    std::printf("\nMeasured: 2-way combining gains %.1f%% under "
                "(3+1) and %.1f%% under (3+2) on average (paper: ~8%% "
                "and ~2%%)\n",
                (geomean(g31x2) - 1) * 100,
                (geomean(g32x2) - 1) * 100);
    return 0;
}
