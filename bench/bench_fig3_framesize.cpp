/**
 * @file
 * Figure 3: dynamic frame-size distribution of the integer programs.
 *
 * Paper: the dynamic average frame is only a few words; static frames
 * average ~7 words across 4746 functions with most frames under 25
 * words (largest 282).
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hh"
#include "stats/group.hh"
#include "vm/executor.hh"
#include "vm/trace.hh"

using namespace ddsim;
using namespace ddsim::bench;

int
main(int argc, char **argv)
{
    // Default to the integer subset, as the paper's figure does.
    Options opts(argc, argv);
    banner("Figure 3: dynamic frame size distribution (words)",
           "frames are small: dynamic mean of a few words, static "
           "mean ~7 words, most frames < 25 words");

    sim::Table table({"program", "frames", "mean", "p50", "p99",
                      "<=8w", "<=24w", "staticMean", "staticMax"});
    std::vector<double> dynMeans, statMeans;

    for (const auto *info : opts.programs) {
        if (info->isFp && !opts.args.has("programs") &&
            !opts.args.getBool("fp"))
            continue; // integer programs only, like the paper
        prog::Program program = buildProgram(*info, opts);
        vm::Executor exec(program);
        stats::Group root(nullptr, "");
        vm::StreamStats ss(&root);
        while (!exec.halted())
            ss.record(exec.step());

        const auto &h = ss.frameWords;
        std::uint32_t staticMax = 0;
        double staticSum = 0;
        for (const auto &[pc, words] : ss.staticFrames()) {
            staticSum += words;
            staticMax = std::max(staticMax, words);
        }
        double staticMean =
            ss.staticFrames().empty()
                ? 0
                : staticSum /
                      static_cast<double>(ss.staticFrames().size());
        dynMeans.push_back(h.mean());
        statMeans.push_back(staticMean);

        table.addRow({info->paperName, std::to_string(h.samples()),
                      sim::Table::num(h.mean(), 1),
                      std::to_string(h.percentile(0.5)),
                      std::to_string(h.percentile(0.99)),
                      sim::Table::pct(h.fractionBetween(0, 8)),
                      sim::Table::pct(h.fractionBetween(0, 24)),
                      sim::Table::num(staticMean, 1),
                      std::to_string(staticMax)});
    }
    table.print(std::cout);
    std::printf("\nMeasured: dynamic mean %.1f words, static mean "
                "%.1f words (paper: ~3 dynamic / ~7 static)\n",
                mean(dynMeans), mean(statMeans));
    return 0;
}
