/**
 * @file
 * Figure 3: dynamic frame-size distribution of the integer programs.
 *
 * Paper: the dynamic average frame is only a few words; static frames
 * average ~7 words across 4746 functions with most frames under 25
 * words (largest 282).
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hh"
#include "stats/group.hh"
#include "util/thread_pool.hh"
#include "vm/executor.hh"
#include "vm/trace.hh"

using namespace ddsim;
using namespace ddsim::bench;

namespace {

/** Per-program measurements, filled in parallel. */
struct Row
{
    std::uint64_t frames = 0;
    double mean = 0;
    std::uint64_t p50 = 0, p99 = 0;
    double le8 = 0, le24 = 0;
    double staticMean = 0;
    std::uint32_t staticMax = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    // Default to the integer subset, as the paper's figure does.
    Options opts(argc, argv);
    opts.args.rejectUnknown(); // no grid here; reject typos ourselves
    banner("Figure 3: dynamic frame size distribution (words)",
           "frames are small: dynamic mean of a few words, static "
           "mean ~7 words, most frames < 25 words");

    sim::Table table({"program", "frames", "mean", "p50", "p99",
                      "<=8w", "<=24w", "staticMean", "staticMax"});
    std::vector<double> dynMeans, statMeans;

    std::vector<const workloads::WorkloadInfo *> selected;
    for (const auto *info : opts.programs) {
        if (info->isFp && !opts.args.has("programs") &&
            !opts.args.getBool("fp"))
            continue; // integer programs only, like the paper
        selected.push_back(info);
    }

    // Functional traces are independent across programs: run them in
    // parallel, then print the rows in workload order.
    std::vector<Row> rows(selected.size());
    ThreadPool pool(opts.jobs);
    parallelFor(pool, selected.size(), [&](std::size_t i) {
        auto program = buildProgramShared(*selected[i], opts);
        vm::Executor exec(*program);
        stats::Group root(nullptr, "");
        vm::StreamStats ss(&root);
        while (!exec.halted())
            ss.record(exec.step());

        const auto &h = ss.frameWords;
        Row r;
        r.frames = h.samples();
        r.mean = h.mean();
        r.p50 = h.percentile(0.5);
        r.p99 = h.percentile(0.99);
        r.le8 = h.fractionBetween(0, 8);
        r.le24 = h.fractionBetween(0, 24);
        double staticSum = 0;
        for (const auto &[pc, words] : ss.staticFrames()) {
            staticSum += words;
            r.staticMax = std::max(r.staticMax, words);
        }
        if (!ss.staticFrames().empty())
            r.staticMean =
                staticSum /
                static_cast<double>(ss.staticFrames().size());
        rows[i] = r;
    });

    for (std::size_t i = 0; i < selected.size(); ++i) {
        const Row &r = rows[i];
        dynMeans.push_back(r.mean);
        statMeans.push_back(r.staticMean);

        table.addRow({selected[i]->paperName, std::to_string(r.frames),
                      sim::Table::num(r.mean, 1),
                      std::to_string(r.p50), std::to_string(r.p99),
                      sim::Table::pct(r.le8),
                      sim::Table::pct(r.le24),
                      sim::Table::num(r.staticMean, 1),
                      std::to_string(r.staticMax)});
    }
    table.print(std::cout);
    std::printf("\nMeasured: dynamic mean %.1f words, static mean "
                "%.1f words (paper: ~3 dynamic / ~7 static)\n",
                mean(dynMeans), mean(statMeans));
    return 0;
}
