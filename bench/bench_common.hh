/**
 * @file
 * Shared harness for the bench binaries. Every bench regenerates one
 * table or figure of the paper: it selects workloads, builds them at
 * comparable dynamic lengths, sweeps machine configurations through
 * sim::SweepRunner and prints the same rows/series the paper reports,
 * plus a note stating what shape the paper observed.
 *
 * Common flags (all optional):
 *   --scale=<f>      work multiplier (default 1.0 ~ 300 K insts/run)
 *   --programs=a,b   comma-separated subset (short or paper names)
 *   --int            integer programs only
 *   --fp             floating-point programs only
 *   --jobs=<n>       worker threads for the sweep (default: one per
 *                    hardware thread; results are identical for any n)
 *   --manifest=<f>   write a sweep-level JSON manifest (per-run config,
 *                    stats and provenance) to <f> after the grid runs
 *   --emit-grid=<f>  write the exact job grid this invocation would
 *                    run as a portable ddsim-grid-v1 spec to <f> and
 *                    exit without simulating (the input of
 *                    tools/ddsweep; see docs/FARM.md)
 *   --cycle-budget=<n>  per-run simulated-cycle budget (0 = unlimited)
 *   --wall-budget=<s>   per-run wall-clock budget in seconds (0 = off)
 *   --engine=<e>     execution engine for every job: auto (default),
 *                    live, replay, batched (one trace pass per sweep
 *                    column, bit-identical) or sampled (SMARTS interval
 *                    sampling; IPC becomes an estimate with error bars)
 *   --trace-in=a,b   ingest ddsim-xtrace-v1 files as additional
 *                    programs: each trace joins the grid exactly like
 *                    a registry workload (replay/batched/sampled
 *                    engines, --emit-grid, manifests), driven by its
 *                    recorded stream. Incompatible with --engine=live
 *                    (a trace has nothing to execute functionally)
 *   --sample-period=<n> --sample-detail=<n> --sample-warmup=<n>
 *                    override the sampled engine's plan (defaults hold
 *                    every workload within 2% IPC error at --scale=1)
 *   --fail-fast      die on the first failed job (default: isolate it,
 *                    finish the rest of the grid, report a degraded
 *                    sweep)
 *
 * Unrecognized "--option"s are fatal (see CliArgs::rejectUnknown);
 * wrappers that add their own keys can pass them after a bare "--".
 */

#ifndef DDSIM_BENCH_BENCH_COMMON_HH_
#define DDSIM_BENCH_BENCH_COMMON_HH_

#include <memory>
#include <string>
#include <vector>

#include "config/cli.hh"
#include "prog/program.hh"
#include "sim/runner.hh"
#include "sim/sweep.hh"
#include "sim/table.hh"
#include "vm/xtrace.hh"
#include "workloads/common.hh"

namespace ddsim::bench {

/**
 * One --trace-in input, presented to benches as a pseudo-workload:
 * `info` joins Options::programs like any registry entry (its factory
 * is null — buildProgramShared resolves it to the trace's embedded
 * program instead), and runGrid stamps the decoded trace onto every
 * job built from it.
 */
struct TraceInput
{
    std::string path;              ///< The xtrace file.
    std::shared_ptr<const vm::ExternalTrace> trace;
    std::string name;              ///< Stable storage for info.name.
    std::string paper;             ///< Stable storage for info.paperName.
    workloads::WorkloadInfo info;
};

/** Parsed harness options. */
struct Options
{
    double scaleFactor = 1.0;
    /** Sweep worker threads (0 = one per hardware thread). */
    unsigned jobs = 0;
    /** Sweep manifest output path ("" = don't write one). */
    std::string manifestPath;
    /** Grid-spec export path ("" = run normally). When set, runGrid
     *  writes the ddsim-grid-v1 spec and exits instead of simulating. */
    std::string emitGridPath;
    /** Per-run cycle budget applied to every job (0 = unlimited). */
    std::uint64_t cycleBudget = 0;
    /** Per-run wall-clock budget in seconds (0 = unlimited). */
    double wallBudget = 0.0;
    /** Rethrow the first job failure instead of quarantining it. */
    bool failFast = false;
    /** Execution engine applied to every job (--engine). */
    sim::Engine engine = sim::Engine::Auto;
    /** Sampled-engine plan (--sample-*; used when engine == Sampled). */
    sim::SamplingPlan sampling;
    std::vector<const workloads::WorkloadInfo *> programs;
    /**
     * Decoded --trace-in inputs. Their `info` members are what the
     * matching entries in `programs` point at, so the vector is fully
     * reserved up front and never reallocates.
     */
    std::vector<TraceInput> traceInputs;
    config::CliArgs args;

    Options(int argc, const char *const *argv);

    /** The TraceInput behind @p info, or nullptr for registry
     *  workloads. */
    const TraceInput *
    traceFor(const workloads::WorkloadInfo &info) const;
};

/** Build one workload at the harness-selected length. */
prog::Program buildProgram(const workloads::WorkloadInfo &info,
                           const Options &opts);

/**
 * Memoized variant of buildProgram: each workload is built once per
 * process and shared read-only by every sweep job that references it.
 */
std::shared_ptr<const prog::Program>
buildProgramShared(const workloads::WorkloadInfo &info,
                   const Options &opts);

/**
 * Run a job grid through a SweepRunner sized by --jobs and return the
 * results in submission order. Rejects unrecognized CLI options first
 * (every bench queries its flags before building the grid). With
 * --manifest=<f>, every job captures a run manifest and the aggregate
 * sweep manifest is written to <f> under @p title.
 *
 * Failure isolation (unless --fail-fast): a job that still fails
 * after transient-error retries is quarantined — its result slot is
 * default-constructed (zeros), the quarantine is reported on stderr,
 * and the sweep manifest is marked "degraded" with a per-job status
 * table. The rest of the grid always completes.
 */
std::vector<sim::SimResult> runGrid(const Options &opts,
                                    std::vector<sim::SweepJob> jobs,
                                    const std::string &title = "sweep");

/** Geometric mean (of speedups/ratios). */
double geomean(const std::vector<double> &values);

/** Arithmetic mean. */
double mean(const std::vector<double> &values);

/** Print the standard bench banner. */
void banner(const std::string &title, const std::string &paperShape);

} // namespace ddsim::bench

#endif // DDSIM_BENCH_BENCH_COMMON_HH_
