#include "bench_common.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "sim/grid_spec.hh"
#include "util/log.hh"
#include "util/str.hh"

namespace ddsim::bench {

Options::Options(int argc, const char *const *argv)
    : args(argc, argv)
{
    // The --programs branch below skips the --int/--fp queries, but
    // they are still valid harness flags; register them regardless.
    args.markKnown("int");
    args.markKnown("fp");

    manifestPath = args.get("manifest");
    emitGridPath = args.get("emit-grid");
    scaleFactor = args.getDouble("scale", 1.0);
    if (scaleFactor <= 0)
        fatal("--scale must be positive");

    std::int64_t cb = args.getInt("cycle-budget", 0);
    if (cb < 0)
        fatal("--cycle-budget must be >= 0 (0 = unlimited)");
    cycleBudget = static_cast<std::uint64_t>(cb);
    wallBudget = args.getDouble("wall-budget", 0.0);
    if (wallBudget < 0)
        fatal("--wall-budget must be >= 0 (0 = unlimited)");
    failFast = args.getBool("fail-fast");

    if (args.has("engine"))
        engine = sim::engineFromName(args.get("engine"));
    std::int64_t sp = args.getInt("sample-period",
                                  static_cast<std::int64_t>(
                                      sampling.period));
    std::int64_t sd = args.getInt("sample-detail",
                                  static_cast<std::int64_t>(
                                      sampling.detail));
    std::int64_t swu = args.getInt("sample-warmup",
                                   static_cast<std::int64_t>(
                                       sampling.warmup));
    if (sp <= 0 || sd <= 0 || swu < 0)
        fatal("--sample-period/--sample-detail must be > 0 and "
              "--sample-warmup >= 0");
    sampling.period = static_cast<std::uint64_t>(sp);
    sampling.detail = static_cast<std::uint64_t>(sd);
    sampling.warmup = static_cast<std::uint64_t>(swu);
    // Subtraction form: the sum wraps for values near UINT64_MAX.
    if (sampling.warmup > sampling.period ||
        sampling.detail > sampling.period - sampling.warmup)
        fatal("--sample-warmup + --sample-detail must not exceed "
              "--sample-period");

    std::int64_t j = args.getInt("jobs", 0); // 0 = auto
    if (j < 0)
        fatal("--jobs must be >= 0 (0 = one per hardware thread)");
    jobs = static_cast<unsigned>(j);

    std::vector<std::string> names;
    bool explicitSelection =
        args.has("programs") || args.has("trace-in");
    if (args.has("programs")) {
        for (auto &n : split(args.get("programs"), ','))
            names.emplace_back(trim(n));
    } else if (args.getBool("int")) {
        names = workloads::integerNames();
    } else if (args.getBool("fp")) {
        names = workloads::fpNames();
    } else if (!explicitSelection) {
        for (const auto &w : workloads::all())
            names.push_back(w.name);
    }
    for (const auto &n : names) {
        const workloads::WorkloadInfo *info = workloads::find(n);
        if (!info)
            fatal("unknown workload '%s'", n.c_str());
        programs.push_back(info);
    }

    // External traces join the program list as pseudo-workloads. The
    // vector is reserved exactly once so the WorkloadInfo objects
    // (and the strings their name fields point into) never move.
    if (args.has("trace-in")) {
        if (engine == sim::Engine::Live)
            fatal("--engine=live cannot run --trace-in inputs: an "
                  "external trace has no functional semantics to "
                  "execute");
        std::vector<std::string> paths;
        for (auto &p : split(args.get("trace-in"), ','))
            paths.emplace_back(trim(p));
        traceInputs.reserve(paths.size());
        for (const std::string &path : paths) {
            if (path.empty())
                fatal("--trace-in: empty path in list");
            TraceInput ti;
            ti.path = path;
            ti.trace = vm::ExternalTrace::loadCached(path);
            ti.name = ti.trace->program().name();
            ti.paper = "xtrace:" + ti.name;
            traceInputs.push_back(std::move(ti));
            // Fill info only once the strings have their final
            // address (short strings move their SSO buffer with the
            // object, which would dangle the c_str pointers).
            TraceInput &t = traceInputs.back();
            t.info = {t.name.c_str(), t.paper.c_str(),
                      "external trace input", false, nullptr, 1};
            programs.push_back(&t.info);
        }
    }
}

const TraceInput *
Options::traceFor(const workloads::WorkloadInfo &info) const
{
    for (const TraceInput &ti : traceInputs)
        if (&ti.info == &info)
            return &ti;
    return nullptr;
}

prog::Program
buildProgram(const workloads::WorkloadInfo &info, const Options &opts)
{
    if (!info.factory)
        fatal("program '%s' is an external trace input; its program "
              "is embedded in the trace, not built from a factory",
              info.name);
    workloads::WorkloadParams p;
    double scaled =
        static_cast<double>(info.defaultScale) * opts.scaleFactor;
    p.scale = scaled < 1.0 ? 1 : static_cast<std::uint64_t>(scaled);
    return info.factory(p);
}

std::shared_ptr<const prog::Program>
buildProgramShared(const workloads::WorkloadInfo &info,
                   const Options &opts)
{
    // Trace inputs carry their own reconstructed program; handing it
    // out here lets every bench treat them like registry workloads.
    if (!info.factory) {
        const TraceInput *ti = opts.traceFor(info);
        if (!ti)
            fatal("program '%s' has no factory and no backing trace",
                  info.name);
        return ti->trace->sharedProgram();
    }
    static sim::ProgramCache cache;
    std::string key = std::string(info.name) + "@" +
                      std::to_string(opts.scaleFactor);
    return cache.get(key,
                     [&info, &opts] { return buildProgram(info, opts); });
}

std::vector<sim::SimResult>
runGrid(const Options &opts, std::vector<sim::SweepJob> jobs,
        const std::string &title)
{
    // Every bench has queried its flags by the time it has a grid to
    // run, so this is the natural choke point for typo rejection.
    opts.args.rejectUnknown();

    if (!opts.emitGridPath.empty()) {
        // Export instead of run: the same grid, as a portable spec the
        // sweep farm executes with bit-identical results. Jobs built
        // by buildProgramShared resolve to (registry name, harness
        // scale, default seed); anything else cannot be spooled.
        sim::GridSpec spec;
        spec.title = title;
        spec.jobs.reserve(jobs.size());
        // Trace-backed jobs spool as trace_path points; map them by
        // program identity (each ExternalTrace owns its program).
        std::map<const prog::Program *, const TraceInput *> byProgram;
        for (const TraceInput &ti : opts.traceInputs)
            byProgram.emplace(&ti.trace->program(), &ti);
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            const sim::SweepJob &job = jobs[i];
            sim::GridJob g;
            g.id = i;
            auto it = byProgram.find(job.program.get());
            if (it != byProgram.end()) {
                if (!job.annotate.empty())
                    fatal("--emit-grid: job %zu annotates an external "
                          "trace (hints are burned by the converter)",
                          i);
                g.workload = job.program->name();
                g.scale = 1;
                g.seed = 0;
                g.tracePath = it->second->path;
            } else {
                const workloads::WorkloadInfo *info =
                    workloads::find(job.program->name());
                if (!info)
                    fatal("--emit-grid: job %zu runs program '%s', "
                          "which is not a registry workload",
                          i, job.program->name().c_str());
                g.workload = info->name;
                double scaled =
                    static_cast<double>(info->defaultScale) *
                    opts.scaleFactor;
                g.scale = scaled < 1.0
                              ? 1
                              : static_cast<std::uint64_t>(scaled);
                g.seed = workloads::WorkloadParams{}.seed;
            }
            g.maxInsts = job.opts.maxInsts;
            g.warmupInsts = job.opts.warmupInsts;
            g.annotate = job.annotate;
            g.engine = opts.engine;
            if (opts.engine == sim::Engine::Sampled)
                g.sampling = opts.sampling;
            g.cfg = job.cfg;
            spec.jobs.push_back(std::move(g));
        }
        spec.validate();
        spec.writeFile(opts.emitGridPath);
        std::printf("Grid spec (%zu jobs) written to %s\n",
                    spec.jobs.size(), opts.emitGridPath.c_str());
        std::exit(0);
    }

    // Jobs whose program came from a --trace-in input carry the
    // decoded trace so the runner replays the recorded stream instead
    // of tracing the reconstructed program.
    std::map<const prog::Program *,
             std::shared_ptr<const vm::ExternalTrace>>
        traceByProgram;
    for (const TraceInput &ti : opts.traceInputs)
        traceByProgram.emplace(&ti.trace->program(), ti.trace);

    for (sim::SweepJob &job : jobs) {
        auto it = traceByProgram.find(job.program.get());
        if (it != traceByProgram.end())
            job.opts.externalTrace = it->second;
        if (!opts.manifestPath.empty())
            job.opts.captureManifest = true;
        if (opts.cycleBudget != 0)
            job.opts.maxCycles = opts.cycleBudget;
        if (opts.wallBudget > 0)
            job.opts.maxWallSeconds = opts.wallBudget;
        if (opts.engine != sim::Engine::Auto) {
            job.opts.engine = opts.engine;
            if (opts.engine == sim::Engine::Sampled)
                job.opts.sampling = opts.sampling;
        }
    }

    if (opts.failFast) {
        std::vector<sim::SimResult> results =
            sim::SweepRunner::runAll(std::move(jobs), opts.jobs);
        if (!opts.manifestPath.empty()) {
            sim::writeSweepManifestFile(title, results,
                                        opts.manifestPath);
            std::printf("Sweep manifest written to %s\n",
                        opts.manifestPath.c_str());
        }
        return results;
    }

    // Default: fault-isolating sweep. A failed point is quarantined
    // and reported; the rest of the figure still comes out, and the
    // manifest says exactly what is missing.
    sim::SweepRunner runner(opts.jobs);
    std::vector<std::pair<std::string, std::string>> points;
    points.reserve(jobs.size());
    for (sim::SweepJob &job : jobs) {
        points.emplace_back(job.program->name(), job.cfg.notation());
        runner.submit(std::move(job));
    }
    sim::SweepOutcome outcome = runner.collectOutcome();
    for (std::size_t i = 0; i < outcome.jobs.size(); ++i) {
        const sim::JobOutcome &jo = outcome.jobs[i];
        if (jo.status == sim::JobStatus::Quarantined)
            warn("quarantined job %zu (%s %s) after %d attempt(s): "
                 "[%s] %s",
                 i, points[i].first.c_str(), points[i].second.c_str(),
                 jo.attempts, jo.error.kind.c_str(),
                 jo.error.message.c_str());
        else if (jo.status == sim::JobStatus::Recovered)
            warn("job %zu (%s %s) recovered on attempt %d from: [%s]",
                 i, points[i].first.c_str(), points[i].second.c_str(),
                 jo.attempts, jo.error.kind.c_str());
    }
    if (outcome.degraded)
        warn("sweep degraded: %zu of %zu jobs quarantined",
             outcome.numQuarantined, outcome.jobs.size());
    if (!opts.manifestPath.empty()) {
        sim::writeSweepManifestFile(title, outcome, opts.manifestPath);
        std::printf("Sweep manifest written to %s%s\n",
                    opts.manifestPath.c_str(),
                    outcome.degraded ? " (degraded)" : "");
    }
    return std::move(outcome.results);
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double logSum = 0.0;
    for (double v : values)
        logSum += std::log(v);
    return std::exp(logSum / static_cast<double>(values.size()));
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

void
banner(const std::string &title, const std::string &paperShape)
{
    std::printf("\n=== %s ===\n", title.c_str());
    if (!paperShape.empty())
        std::printf("Paper shape: %s\n", paperShape.c_str());
}

} // namespace ddsim::bench
