/**
 * @file
 * Figure 10 + Section 4.3: sensitivity to cache access latency.
 * Compares, relative to (2+0):
 *   (2+2)opt with the normal 2-cycle L1,
 *   (4+0) with 2-cycle L1,
 *   (4+0) with 3-cycle L1 (the extra pipeline cycle a heavily
 *         multi-ported cache may cost),
 *   (3+3)opt,
 *   and (2+2)opt with a 2-cycle LVC (latency-insensitivity check).
 *
 * Paper: the 3-cycle (4+0) loses up to 13.4% vs the 2-cycle (4+0)
 * and can fall below (2+0); (2+2) beats the 3-cycle (4+0) for the
 * integer programs but not the FP ones (poor local/non-local
 * interleaving); LVC latency (1 vs 2 cycles) barely matters because
 * 50-90% of LVC loads are satisfied in the LVAQ; (3+3) is ~5% better
 * than (4+0) for integer programs.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hh"
#include "config/presets.hh"

using namespace ddsim;
using namespace ddsim::bench;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    banner("Figure 10: sensitivity to cache access latency "
           "(all relative to (2+0))",
           "(4+0)@3cyc loses up to ~13% vs @2cyc; (2+2) beats "
           "(4+0)@3cyc for integer programs, not FP; LVC latency is "
           "nearly irrelevant");

    sim::Table table({"program", "(2+2)opt", "(4+0)@2cyc",
                      "(4+0)@3cyc", "(3+3)opt", "(2+2)opt lvc@2cyc"});
    std::vector<double> intD22, intD40s, fpD22, fpD40s;

    std::vector<sim::SweepJob> jobs;
    for (const auto *info : opts.programs) {
        auto program = buildProgramShared(*info, opts);
        jobs.push_back({program, config::baseline(2)});
        jobs.push_back({program, config::decoupledOptimized(2, 2)});
        jobs.push_back({program, config::baseline(4)});

        config::MachineConfig slow40 = config::baseline(4);
        slow40.l1.hitLatency = 3;
        jobs.push_back({program, slow40});

        jobs.push_back({program, config::decoupledOptimized(3, 3)});

        config::MachineConfig slowLvc =
            config::decoupledOptimized(2, 2);
        slowLvc.lvc.hitLatency = 2;
        jobs.push_back({program, slowLvc});
    }
    std::vector<sim::SimResult> results = runGrid(opts, jobs, "Figure 10 LVC latency sweep");

    std::size_t k = 0;
    for (const auto *info : opts.programs) {
        sim::SimResult base = results[k++];
        sim::SimResult d22 = results[k++];
        sim::SimResult c40 = results[k++];
        sim::SimResult s40 = results[k++];
        sim::SimResult d33 = results[k++];
        sim::SimResult d22s = results[k++];

        table.addRow({info->paperName,
                      sim::Table::num(d22.ipc / base.ipc, 3),
                      sim::Table::num(c40.ipc / base.ipc, 3),
                      sim::Table::num(s40.ipc / base.ipc, 3),
                      sim::Table::num(d33.ipc / base.ipc, 3),
                      sim::Table::num(d22s.ipc / base.ipc, 3)});
        if (info->isFp) {
            fpD22.push_back(d22.ipc / base.ipc);
            fpD40s.push_back(s40.ipc / base.ipc);
        } else {
            intD22.push_back(d22.ipc / base.ipc);
            intD40s.push_back(s40.ipc / base.ipc);
        }
    }
    table.print(std::cout);

    if (!intD22.empty())
        std::printf("\nInteger programs: (2+2)opt avg %.3f vs "
                    "(4+0)@3cyc avg %.3f (paper: (2+2) consistently "
                    "wins)\n",
                    geomean(intD22), geomean(intD40s));
    if (!fpD22.empty())
        std::printf("FP programs:      (2+2)opt avg %.3f vs "
                    "(4+0)@3cyc avg %.3f (paper: (4+0) wins for FP)\n",
                    geomean(fpD22), geomean(fpD40s));
    return 0;
}
