/**
 * @file
 * Figure 9: performance of (N+M) configurations with both proposed
 * optimizations (fast data forwarding + two-way access combining),
 * relative to (2+0).
 *
 * Paper: compared with Figure 7, the (N+1) configurations improve
 * noticeably; (N+2) is comparable to or better than the conventional
 * (N+2ports) designs.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hh"
#include "config/presets.hh"

using namespace ddsim;
using namespace ddsim::bench;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    banner("Figure 9: optimized (N+M) performance relative to (2+0)",
           "with fast forwarding + 2-way combining the (N+1) dip of "
           "Fig. 7 largely disappears");

    const int ns[] = {2, 3, 4};
    const int ms[] = {0, 1, 2, 3, 16};
    std::vector<std::vector<std::vector<double>>> rel(
        3, std::vector<std::vector<double>>(5));

    sim::Table perProg({"program", "(2+1)", "(2+2)", "(3+1)", "(3+2)",
                        "(4+1)", "(4+2)"});

    std::vector<sim::SweepJob> jobs;
    for (const auto *info : opts.programs) {
        auto program = buildProgramShared(*info, opts);
        jobs.push_back({program, config::baseline(2)});
        for (int n : ns)
            for (int m : ms)
                jobs.push_back(
                    {program, m == 0 ? config::baseline(n)
                                     : config::decoupledOptimized(n, m)});
    }
    std::vector<sim::SimResult> results = runGrid(opts, jobs, "Figure 9 (N+M) optimized sweep");

    std::size_t k = 0;
    for (const auto *info : opts.programs) {
        sim::SimResult base = results[k++];
        std::vector<std::string> row{info->paperName};
        for (int ni = 0; ni < 3; ++ni) {
            for (int mi = 0; mi < 5; ++mi) {
                sim::SimResult r = results[k++];
                double relative = r.ipc / base.ipc;
                rel[static_cast<std::size_t>(ni)]
                   [static_cast<std::size_t>(mi)]
                       .push_back(relative);
                if (ms[mi] == 1 || ms[mi] == 2)
                    row.push_back(sim::Table::num(relative, 3));
            }
        }
        perProg.addRow(row);
    }
    perProg.print(std::cout);

    std::printf("\nCross-program average (relative to (2+0)):\n\n");
    sim::Table avg({"config", "M=0", "M=1", "M=2", "M=3", "M=16"});
    for (int ni = 0; ni < 3; ++ni) {
        std::vector<std::string> row{"N=" + std::to_string(ns[ni])};
        for (int mi = 0; mi < 5; ++mi)
            row.push_back(sim::Table::num(
                geomean(rel[static_cast<std::size_t>(ni)]
                           [static_cast<std::size_t>(mi)]),
                3));
        avg.addRow(row);
    }
    avg.print(std::cout);
    return 0;
}
