/**
 * @file
 * Section 4.4 discussion: is a small (2 KB), fast (1-cycle) L1 data
 * cache a better answer to the bandwidth/latency problem than
 * decoupling? The paper's preliminary result: the higher miss rate of
 * the tiny L1 negates its latency advantage unless the L2 is
 * unrealistically fast (< 4 cycles).
 *
 * This bench sweeps the L2 latency and compares three machines at
 * equal port counts:
 *   (a) conventional 32 KB / 2-cycle L1, 4 ports        -- "(4+0)"
 *   (b) tiny 2 KB / 1-cycle L1, 4 ports                 -- "small-L1"
 *   (c) decoupled 32 KB L1 (2 ports) + 2 KB LVC (2)     -- "(2+2)opt"
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hh"
#include "config/presets.hh"

using namespace ddsim;
using namespace ddsim::bench;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    banner("Ablation (Section 4.4): tiny fast L1 vs decoupling, "
           "IPC relative to (4+0) at each L2 latency",
           "the 2 KB L1's misses negate its 1-cycle hits unless L2 "
           "latency < ~4 cycles");

    const Cycle l2Lats[] = {2, 4, 8, 12};
    sim::Table table({"program", "L2=2: small/dec", "L2=4: small/dec",
                      "L2=8: small/dec", "L2=12: small/dec"});
    std::vector<std::vector<double>> smallRel(4), decRel(4);

    std::vector<sim::SweepJob> jobs;
    for (const auto *info : opts.programs) {
        auto program = buildProgramShared(*info, opts);
        for (int i = 0; i < 4; ++i) {
            config::MachineConfig conv = config::baseline(4);
            conv.l2.hitLatency = l2Lats[i];
            jobs.push_back({program, conv});

            config::MachineConfig tiny = config::baseline(4);
            tiny.l2.hitLatency = l2Lats[i];
            tiny.l1.sizeBytes = 2048;
            tiny.l1.assoc = 1;
            tiny.l1.hitLatency = 1;
            jobs.push_back({program, tiny});

            config::MachineConfig dec =
                config::decoupledOptimized(2, 2);
            dec.l2.hitLatency = l2Lats[i];
            jobs.push_back({program, dec});
        }
    }
    std::vector<sim::SimResult> results = runGrid(opts, jobs, "Ablation: small L1 sweep");

    std::size_t k = 0;
    for (const auto *info : opts.programs) {
        std::vector<std::string> row{info->paperName};
        for (int i = 0; i < 4; ++i) {
            sim::SimResult c = results[k++];
            sim::SimResult t = results[k++];
            sim::SimResult d = results[k++];

            double ts = t.ipc / c.ipc;
            double ds = d.ipc / c.ipc;
            smallRel[static_cast<std::size_t>(i)].push_back(ts);
            decRel[static_cast<std::size_t>(i)].push_back(ds);
            row.push_back(sim::Table::num(ts, 2) + "/" +
                          sim::Table::num(ds, 2));
        }
        table.addRow(row);
    }
    std::vector<std::string> avg{"geomean"};
    for (int i = 0; i < 4; ++i)
        avg.push_back(
            sim::Table::num(
                geomean(smallRel[static_cast<std::size_t>(i)]), 2) +
            "/" +
            sim::Table::num(
                geomean(decRel[static_cast<std::size_t>(i)]), 2));
    table.addRow(avg);
    table.print(std::cout);

    std::printf("\nEach cell: tiny-2KB-L1 relative IPC / "
                "decoupled-(2+2)opt relative IPC, both against the "
                "conventional (4+0)\nat that L2 latency. The paper "
                "expects the first number to fall below 1.0 once the "
                "L2 is slower than ~4 cycles.\n");
    return 0;
}
