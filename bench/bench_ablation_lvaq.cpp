/**
 * @file
 * Ablation: LVAQ size sweep. The paper fixes the LVAQ at 64 entries
 * (Section 4.2); this sweep shows how much window the local stream
 * actually needs and where fast forwarding stops finding its matches.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hh"
#include "config/presets.hh"

using namespace ddsim;
using namespace ddsim::bench;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    banner("Ablation: LVAQ size under optimized (3+2), relative to "
           "64 entries",
           "the paper uses 64 entries; local-heavy programs should "
           "degrade as the queue shrinks");

    const int sizes[] = {8, 16, 32, 64, 128};
    sim::Table table({"program", "8", "16", "32", "64(IPC)", "128",
                      "fastFwd@8", "fastFwd@64"});

    std::vector<sim::SweepJob> jobs;
    for (const auto *info : opts.programs) {
        auto program = buildProgramShared(*info, opts);
        config::MachineConfig ref = config::decoupledOptimized(3, 2);
        ref.lvaqSize = 64;
        jobs.push_back({program, ref});
        for (int size : sizes) {
            config::MachineConfig cfg =
                config::decoupledOptimized(3, 2);
            cfg.lvaqSize = size;
            jobs.push_back({program, cfg});
        }
    }
    std::vector<sim::SimResult> results = runGrid(opts, jobs, "Ablation: LVAQ size sweep");

    std::size_t k = 0;
    for (const auto *info : opts.programs) {
        sim::SimResult base = results[k++];

        std::vector<std::string> row{info->paperName};
        std::uint64_t ff8 = 0;
        for (int size : sizes) {
            sim::SimResult r = results[k++];
            if (size == 8)
                ff8 = r.lvaqFastForwards;
            if (size == 64)
                row.push_back(sim::Table::num(r.ipc, 3));
            else
                row.push_back(sim::Table::num(r.ipc / base.ipc, 3));
        }
        row.push_back(std::to_string(ff8));
        row.push_back(std::to_string(base.lvaqFastForwards));
        table.addRow(row);
    }
    table.print(std::cout);
    return 0;
}
