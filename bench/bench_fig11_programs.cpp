/**
 * @file
 * Figure 11: per-program (N+M) performance surfaces for 126.gcc,
 * 130.li, 147.vortex and 102.swim (the paper's selected programs),
 * with the proposed optimizations, relative to each program's (2+0).
 *
 * Paper: when bandwidth is the bottleneck (N=2), adding a two-port
 * LVC achieves >25% speedup for li-class programs, while with ample
 * bandwidth (N=4) the gain drops under ~2%; swim (FP) barely moves.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hh"
#include "config/presets.hh"

using namespace ddsim;
using namespace ddsim::bench;

int
main(int argc, char **argv)
{
    // The paper's Figure 11 shows gcc, li, vortex and swim.
    const char *defaults = "gcc,li,vortex,swim";
    std::vector<std::string> argvCopy;
    std::vector<const char *> argvPtrs;
    argvPtrs.push_back("bench_fig11");
    bool hasPrograms = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]).rfind("--programs=", 0) == 0)
            hasPrograms = true;
        argvPtrs.push_back(argv[i]);
    }
    std::string progArg = std::string("--programs=") + defaults;
    if (!hasPrograms)
        argvPtrs.push_back(progArg.c_str());

    Options opts(static_cast<int>(argvPtrs.size()), argvPtrs.data());
    banner("Figure 11: per-program (N+M) surfaces (optimized), "
           "relative to each program's (2+0)",
           ">25% gain from a 2-port LVC at N=2 for li-class; <2% at "
           "N=4; swim nearly flat");

    std::vector<sim::SweepJob> jobs;
    for (const auto *info : opts.programs) {
        auto program = buildProgramShared(*info, opts);
        jobs.push_back({program, config::baseline(2)});
        for (int n : {2, 3, 4})
            for (int m : {0, 1, 2, 3})
                jobs.push_back(
                    {program, m == 0 ? config::baseline(n)
                                     : config::decoupledOptimized(n, m)});
    }
    std::vector<sim::SimResult> results = runGrid(opts, jobs, "Figure 11 per-program sweep");

    std::size_t k = 0;
    for (const auto *info : opts.programs) {
        sim::SimResult base = results[k++];

        std::printf("\n%s (IPC at (2+0): %.3f):\n\n",
                    info->paperName, base.ipc);
        sim::Table table({"config", "M=0", "M=1", "M=2", "M=3"});
        for (int n : {2, 3, 4}) {
            std::vector<std::string> row{"N=" + std::to_string(n)};
            for (int col = 0; col < 4; ++col) {
                sim::SimResult r = results[k++];
                row.push_back(sim::Table::num(r.ipc / base.ipc, 3));
            }
            table.addRow(row);
        }
        table.print(std::cout);
    }
    return 0;
}
