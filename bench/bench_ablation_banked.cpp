/**
 * @file
 * Ablation (Section 1 / Section 5): the paper's ideal cache ports
 * (footnote 8) vs the realistic *interleaved* multi-porting used by
 * e.g. the MIPS R10000, where same-bank accesses conflict. Bank
 * conflicts erode the conventional (4+0) configuration's bandwidth,
 * widening the decoupled machine's advantage — one of the paper's
 * core motivations for the data-decoupled design.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hh"
#include "config/presets.hh"

using namespace ddsim;
using namespace ddsim::bench;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    banner("Ablation: ideal vs interleaved (banked) L1 ports, "
           "IPC relative to ideal (4+0)",
           "bank conflicts cost the conventional design real "
           "bandwidth; the decoupled (2+2) does not care");

    sim::Table table({"program", "banked 4x4", "banked 4x8",
                      "banked 4x16", "(2+2)opt ideal",
                      "(2+2)opt banked 2x4"});
    std::vector<double> b4, dec, decB;

    std::vector<sim::SweepJob> jobs;
    for (const auto *info : opts.programs) {
        auto program = buildProgramShared(*info, opts);
        jobs.push_back({program, config::baseline(4)});
        for (int banks : {4, 8, 16}) {
            config::MachineConfig cfg = config::baseline(4);
            cfg.l1.banks = banks;
            jobs.push_back({program, cfg});
        }
        jobs.push_back({program, config::decoupledOptimized(2, 2)});
        config::MachineConfig db = config::decoupledOptimized(2, 2);
        db.l1.banks = 4;
        db.lvc.banks = 4;
        jobs.push_back({program, db});
    }
    std::vector<sim::SimResult> results = runGrid(opts, jobs, "Ablation: banked L1 sweep");

    std::size_t k = 0;
    for (const auto *info : opts.programs) {
        sim::SimResult ideal = results[k++];

        std::vector<std::string> row{info->paperName};
        for (int banks : {4, 8, 16}) {
            sim::SimResult r = results[k++];
            row.push_back(sim::Table::num(r.ipc / ideal.ipc, 3));
            if (banks == 4)
                b4.push_back(r.ipc / ideal.ipc);
        }

        sim::SimResult d = results[k++];
        row.push_back(sim::Table::num(d.ipc / ideal.ipc, 3));
        dec.push_back(d.ipc / ideal.ipc);

        sim::SimResult d2 = results[k++];
        row.push_back(sim::Table::num(d2.ipc / ideal.ipc, 3));
        decB.push_back(d2.ipc / ideal.ipc);

        table.addRow(row);
    }
    table.addRow({"geomean", sim::Table::num(geomean(b4), 3), "", "",
                  sim::Table::num(geomean(dec), 3),
                  sim::Table::num(geomean(decB), 3)});
    table.print(std::cout);

    std::printf("\nColumns are relative to the ideal-port (4+0). "
                "\"banked 4xK\" = 4 ports over K single-ported "
                "banks.\nBanking should cost the conventional design "
                "a few percent (less with more banks), while the\n"
                "decoupled machine loses little even when both of its "
                "caches are banked (its per-cache port\ncounts are "
                "small).\n");
    return 0;
}
