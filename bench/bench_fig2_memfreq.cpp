/**
 * @file
 * Figure 2 + Table 2: frequencies of memory access instructions and
 * the fraction that are local variable accesses, plus dynamic
 * instruction counts per workload.
 *
 * Paper: loads/stores are a large fraction of all instructions; on
 * average ~30% of loads and ~48% of stores are local, 10%
 * (129.compress) to 71% (147.vortex) of all references, averaging
 * ~36%.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hh"
#include "stats/group.hh"
#include "util/thread_pool.hh"
#include "vm/executor.hh"
#include "vm/trace.hh"

using namespace ddsim;
using namespace ddsim::bench;

namespace {

/** Per-program measurements, filled in parallel. */
struct Row
{
    std::uint64_t insts = 0;
    double loadFrac = 0, storeFrac = 0;
    double localLd = 0, localSt = 0, localRef = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    opts.args.rejectUnknown(); // no grid here; reject typos ourselves
    banner("Figure 2 / Table 2: memory instruction frequencies",
           "avg ~30% of loads and ~48% of stores local; local refs "
           "10% (compress) .. 71% (vortex), avg ~36%");

    sim::Table table({"program", "insts", "loads%", "stores%",
                      "localLd%", "localSt%", "localRef%"});
    std::vector<double> ld, st, refs;

    // The characterization pass is functional (no timing model), but
    // the programs are independent: trace them in parallel and print
    // the rows in workload order afterwards.
    std::vector<Row> rows(opts.programs.size());
    ThreadPool pool(opts.jobs);
    parallelFor(pool, opts.programs.size(), [&](std::size_t i) {
        auto program = buildProgramShared(*opts.programs[i], opts);
        vm::Executor exec(*program);
        stats::Group root(nullptr, "");
        vm::StreamStats ss(&root);
        while (!exec.halted())
            ss.record(exec.step());
        rows[i] = {ss.instructions.value(), ss.loadFrac(),
                   ss.storeFrac(), ss.localLoadFrac(),
                   ss.localStoreFrac(), ss.localRefFrac()};
    });

    for (std::size_t i = 0; i < opts.programs.size(); ++i) {
        const Row &r = rows[i];
        ld.push_back(r.localLd);
        st.push_back(r.localSt);
        refs.push_back(r.localRef);
        table.addRow({opts.programs[i]->paperName,
                      std::to_string(r.insts),
                      sim::Table::pct(r.loadFrac),
                      sim::Table::pct(r.storeFrac),
                      sim::Table::pct(r.localLd),
                      sim::Table::pct(r.localSt),
                      sim::Table::pct(r.localRef)});
    }
    table.addRow({"average", "",
                  "", "",
                  sim::Table::pct(mean(ld)),
                  sim::Table::pct(mean(st)),
                  sim::Table::pct(mean(refs))});
    table.print(std::cout);
    std::printf("\nMeasured: avg local loads %.0f%%, local stores "
                "%.0f%%, local refs %.0f%% (paper: 30%% / 48%% / "
                "36%%)\n",
                mean(ld) * 100, mean(st) * 100, mean(refs) * 100);
    return 0;
}
