/**
 * @file
 * Figure 2 + Table 2: frequencies of memory access instructions and
 * the fraction that are local variable accesses, plus dynamic
 * instruction counts per workload.
 *
 * Paper: loads/stores are a large fraction of all instructions; on
 * average ~30% of loads and ~48% of stores are local, 10%
 * (129.compress) to 71% (147.vortex) of all references, averaging
 * ~36%.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hh"
#include "stats/group.hh"
#include "vm/executor.hh"
#include "vm/trace.hh"

using namespace ddsim;
using namespace ddsim::bench;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    banner("Figure 2 / Table 2: memory instruction frequencies",
           "avg ~30% of loads and ~48% of stores local; local refs "
           "10% (compress) .. 71% (vortex), avg ~36%");

    sim::Table table({"program", "insts", "loads%", "stores%",
                      "localLd%", "localSt%", "localRef%"});
    std::vector<double> ld, st, refs;

    for (const auto *info : opts.programs) {
        prog::Program program = buildProgram(*info, opts);
        vm::Executor exec(program);
        stats::Group root(nullptr, "");
        vm::StreamStats ss(&root);
        while (!exec.halted())
            ss.record(exec.step());

        ld.push_back(ss.localLoadFrac());
        st.push_back(ss.localStoreFrac());
        refs.push_back(ss.localRefFrac());
        table.addRow({info->paperName,
                      std::to_string(ss.instructions.value()),
                      sim::Table::pct(ss.loadFrac()),
                      sim::Table::pct(ss.storeFrac()),
                      sim::Table::pct(ss.localLoadFrac()),
                      sim::Table::pct(ss.localStoreFrac()),
                      sim::Table::pct(ss.localRefFrac())});
    }
    table.addRow({"average", "",
                  "", "",
                  sim::Table::pct(mean(ld)),
                  sim::Table::pct(mean(st)),
                  sim::Table::pct(mean(refs))});
    table.print(std::cout);
    std::printf("\nMeasured: avg local loads %.0f%%, local stores "
                "%.0f%%, local refs %.0f%% (paper: 30%% / 48%% / "
                "36%%)\n",
                mean(ld) * 100, mean(st) * 100, mean(refs) * 100);
    return 0;
}
