/**
 * @file
 * Figure 7: performance of (N+M) configurations (no LVAQ
 * optimizations), relative to (2+0).
 *
 * Paper: adding a one-port LVC degrades performance (load imbalance);
 * a second port restores it and gains ~1-10% over (N+0); more than
 * three LVC ports add almost nothing.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hh"
#include "config/presets.hh"

using namespace ddsim;
using namespace ddsim::bench;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    banner("Figure 7: (N+M) performance relative to (2+0), "
           "no optimizations",
           "(N+1) dips below (N+0); (N+2) restores and gains 1-10%; "
           ">=3 LVC ports ~ unlimited");

    const int ns[] = {2, 3, 4};
    const int ms[] = {0, 1, 2, 3, 16};

    // Submit the whole grid (per program: the (2+0) base plus the
    // 3x5 (N+M) matrix) and collect in submission order.
    std::vector<sim::SweepJob> jobs;
    for (const auto *info : opts.programs) {
        auto program = buildProgramShared(*info, opts);
        jobs.push_back({program, config::baseline(2)});
        for (int n : ns)
            for (int m : ms)
                jobs.push_back({program,
                                m == 0 ? config::baseline(n)
                                       : config::decoupled(n, m)});
    }
    std::vector<sim::SimResult> results = runGrid(opts, jobs, "Figure 7 (N+M) sweep");

    // Collect per-program relative performance, then print the
    // cross-program average matrix (as the paper's figure plots).
    std::vector<std::vector<std::vector<double>>> rel(
        3, std::vector<std::vector<double>>(5));

    sim::Table perProg({"program", "(2+0)", "(2+1)", "(2+2)", "(3+0)",
                        "(3+1)", "(3+2)", "(4+0)", "(4+1)", "(4+2)"});

    std::size_t k = 0;
    for (const auto *info : opts.programs) {
        sim::SimResult base = results[k++];
        std::vector<std::string> row{info->paperName};
        for (int ni = 0; ni < 3; ++ni) {
            for (int mi = 0; mi < 5; ++mi) {
                sim::SimResult r = results[k++];
                double relative = r.ipc / base.ipc;
                // Quarantined points are holes, not zeros: marked in
                // the table and excluded from the averages instead of
                // dragging them toward 0/NaN.
                if (!r.quarantined && !base.quarantined)
                    rel[static_cast<std::size_t>(ni)]
                       [static_cast<std::size_t>(mi)]
                           .push_back(relative);
                if (ms[mi] <= 2)
                    row.push_back(base.quarantined
                                      ? std::string(
                                            sim::Table::kQuarantined)
                                      : sim::Table::cell(r, relative,
                                                         3));
            }
        }
        perProg.addRow(row);
    }
    perProg.print(std::cout);

    std::printf("\nCross-program average (relative to (2+0)):\n\n");
    sim::Table avg({"config", "M=0", "M=1", "M=2", "M=3", "M=16"});
    for (int ni = 0; ni < 3; ++ni) {
        std::vector<std::string> row{"N=" + std::to_string(ns[ni])};
        for (int mi = 0; mi < 5; ++mi)
            row.push_back(sim::Table::num(
                geomean(rel[static_cast<std::size_t>(ni)]
                           [static_cast<std::size_t>(mi)]),
                3));
        avg.addRow(row);
    }
    avg.print(std::cout);
    return 0;
}
