/**
 * @file
 * Figure 7: performance of (N+M) configurations (no LVAQ
 * optimizations), relative to (2+0).
 *
 * Paper: adding a one-port LVC degrades performance (load imbalance);
 * a second port restores it and gains ~1-10% over (N+0); more than
 * three LVC ports add almost nothing.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hh"
#include "config/presets.hh"

using namespace ddsim;
using namespace ddsim::bench;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    banner("Figure 7: (N+M) performance relative to (2+0), "
           "no optimizations",
           "(N+1) dips below (N+0); (N+2) restores and gains 1-10%; "
           ">=3 LVC ports ~ unlimited");

    const int ns[] = {2, 3, 4};
    const int ms[] = {0, 1, 2, 3, 16};

    // Collect per-program relative performance, then print the
    // cross-program average matrix (as the paper's figure plots).
    std::vector<std::vector<std::vector<double>>> rel(
        3, std::vector<std::vector<double>>(5));

    sim::Table perProg({"program", "(2+0)", "(2+1)", "(2+2)", "(3+0)",
                        "(3+1)", "(3+2)", "(4+0)", "(4+1)", "(4+2)"});

    for (const auto *info : opts.programs) {
        prog::Program program = buildProgram(*info, opts);
        sim::SimResult base = sim::run(program, config::baseline(2));
        std::vector<std::string> row{info->paperName};
        for (int ni = 0; ni < 3; ++ni) {
            for (int mi = 0; mi < 5; ++mi) {
                config::MachineConfig cfg =
                    ms[mi] == 0 ? config::baseline(ns[ni])
                                : config::decoupled(ns[ni], ms[mi]);
                sim::SimResult r = sim::run(program, cfg);
                double relative = r.ipc / base.ipc;
                rel[static_cast<std::size_t>(ni)]
                   [static_cast<std::size_t>(mi)]
                       .push_back(relative);
                if (ms[mi] <= 2)
                    row.push_back(sim::Table::num(relative, 3));
            }
        }
        perProg.addRow(row);
    }
    perProg.print(std::cout);

    std::printf("\nCross-program average (relative to (2+0)):\n\n");
    sim::Table avg({"config", "M=0", "M=1", "M=2", "M=3", "M=16"});
    for (int ni = 0; ni < 3; ++ni) {
        std::vector<std::string> row{"N=" + std::to_string(ns[ni])};
        for (int mi = 0; mi < 5; ++mi)
            row.push_back(sim::Table::num(
                geomean(rel[static_cast<std::size_t>(ni)]
                           [static_cast<std::size_t>(mi)]),
                3));
        avg.addRow(row);
    }
    avg.print(std::cout);
    return 0;
}
