/**
 * @file
 * Figure 6 + Section 4.2.1: LVC miss rate as its size varies from
 * 0.5 KB to 4 KB (direct-mapped, 4 ports), and the change in L2 bus
 * traffic when a 2 KB LVC is added.
 *
 * Paper: a 2 KB LVC achieves >99% hit rate for all programs except
 * 126.gcc; 4 KB reaches ~99.9% on average. The LVC cut L2 traffic
 * noticeably for li (~24%) and vortex (~7%) and slightly increased it
 * for gcc.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hh"
#include "config/presets.hh"

using namespace ddsim;
using namespace ddsim::bench;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    banner("Figure 6: LVC miss rate vs size (direct-mapped, 4-port)",
           "2 KB hits >99% for all but gcc; 4 KB ~99.9%; LVC cuts L2 "
           "traffic for li (~24%) and vortex (~7%)");

    const std::uint32_t sizes[] = {512, 1024, 2048, 4096};
    sim::Table table({"program", "0.5KB", "1KB", "2KB", "4KB",
                      "L2 traffic vs (3+0)"});
    std::vector<double> missAt2k, missAt4k;

    std::vector<sim::SweepJob> jobs;
    for (const auto *info : opts.programs) {
        auto program = buildProgramShared(*info, opts);
        jobs.push_back({program, config::baseline(3)});
        for (std::uint32_t size : sizes) {
            config::MachineConfig cfg = config::decoupled(3, 4);
            cfg.lvc.sizeBytes = size;
            jobs.push_back({program, cfg});
        }
    }
    std::vector<sim::SimResult> results = runGrid(opts, jobs, "Figure 6 LVC size sweep");

    std::size_t k = 0;
    for (const auto *info : opts.programs) {
        sim::SimResult base = results[k++];

        std::vector<std::string> row{info->paperName};
        std::uint64_t l2With2k = 0;
        for (std::uint32_t size : sizes) {
            sim::SimResult r = results[k++];
            row.push_back(sim::Table::pct(r.lvcMissRate, 2));
            if (size == 2048) {
                missAt2k.push_back(r.lvcMissRate);
                l2With2k = r.l2Accesses;
            }
            if (size == 4096)
                missAt4k.push_back(r.lvcMissRate);
        }
        double delta =
            base.l2Accesses == 0
                ? 0.0
                : (static_cast<double>(l2With2k) /
                       static_cast<double>(base.l2Accesses) -
                   1.0);
        row.push_back(sim::Table::pct(delta, 1));
        table.addRow(row);
    }
    table.print(std::cout);
    std::printf("\nMeasured: mean miss rate %.2f%% at 2 KB, %.2f%% "
                "at 4 KB (paper: <1%% and ~0.1%%)\n",
                mean(missAt2k) * 100, mean(missAt4k) * 100);
    return 0;
}
