/**
 * @file
 * Table 3: performance improvement from fast data forwarding under
 * the (3+2) configuration.
 *
 * Paper: speedups of up to 3.9%; 124.m88ksim gains ~0% (almost no
 * loads find their value in the LVAQ), 129.compress gains 1.2%
 * despite few local accesses because ~80% of its local loads are
 * satisfied in the LVAQ; 099.go 2.1%, 126.gcc 1.2%, 130.li 0.3%,
 * 132.ijpeg 1.9%.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hh"
#include "config/presets.hh"

using namespace ddsim;
using namespace ddsim::bench;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    banner("Table 3: fast data forwarding speedup under (3+2)",
           "up to ~3.9%; ~0% for m88ksim (reuse distance beyond the "
           "window); positive for go/gcc/compress/ijpeg");

    sim::Table table({"program", "speedup", "fastFwd loads",
                      "LVAQ-satisfied loads"});
    std::vector<double> speedups;

    std::vector<sim::SweepJob> jobs;
    for (const auto *info : opts.programs) {
        auto program = buildProgramShared(*info, opts);
        jobs.push_back({program, config::decoupled(3, 2)});
        config::MachineConfig cfg = config::decoupled(3, 2);
        cfg.fastForward = true;
        jobs.push_back({program, cfg});
    }
    std::vector<sim::SimResult> results = runGrid(opts, jobs, "Table 3 fast-forward sweep");

    std::size_t k = 0;
    for (const auto *info : opts.programs) {
        sim::SimResult off = results[k++];
        sim::SimResult on = results[k++];

        double speedup = on.ipc / off.ipc - 1.0;
        speedups.push_back(1.0 + speedup);
        table.addRow({info->paperName,
                      sim::Table::pct(speedup, 2),
                      std::to_string(on.lvaqFastForwards),
                      sim::Table::pct(on.lvaqSatisfiedFrac, 1)});
    }
    table.addRow({"geomean",
                  sim::Table::pct(geomean(speedups) - 1.0, 2), "",
                  ""});
    table.print(std::cout);
    return 0;
}
