/**
 * @file
 * Static vs. dynamic frame sizes and access mixes, per workload.
 *
 * The static columns come from the ddlint analyzer (CFG + sp-tracking
 * dataflow over the program text); the dynamic columns from a full
 * functional run. The paper reports both views: Fig. 2's access mix
 * and Fig. 3's frame-size distribution list static numbers alongside
 * the dynamic ones, and the two should tell the same story — static
 * frames a little larger than the dynamic mean (small leaf frames
 * execute most often), static local fractions close to the dynamic
 * fractions wherever execution is not dominated by one loop.
 */

#include <cstdio>
#include <iostream>

#include "analysis/analyzer.hh"
#include "bench_common.hh"
#include "stats/group.hh"
#include "util/thread_pool.hh"
#include "vm/executor.hh"
#include "vm/trace.hh"

using namespace ddsim;
using namespace ddsim::bench;

namespace {

/** Per-program measurements, filled in parallel. */
struct Row
{
    // Static (analyzer) view.
    std::size_t functions = 0;
    double statMeanWords = 0;
    std::size_t statMaxWords = 0;
    double statLocalFrac = 0;
    std::size_t ambiguous = 0;
    // Dynamic (executor) view.
    double dynMeanWords = 0;
    double dynLocalFrac = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    opts.args.rejectUnknown(); // no grid here; reject typos ourselves
    banner("Static vs. dynamic frame sizes and local-access mix",
           "static frames skew larger than the dynamic mean; static "
           "local fractions track Fig. 2's dynamic columns");

    sim::Table table({"program", "funcs", "statMean", "statMax",
                      "dynMean", "statLocal", "dynLocal", "ambig"});

    const auto &selected = opts.programs;
    std::vector<Row> rows(selected.size());
    ThreadPool pool(opts.jobs);
    parallelFor(pool, selected.size(), [&](std::size_t i) {
        auto program = buildProgramShared(*selected[i], opts);
        Row r;

        analysis::AnalysisResult res = analysis::analyze(*program);
        r.functions = res.functions.size();
        double words = 0;
        for (const auto &fn : res.functions) {
            words += static_cast<double>(fn.frameWords);
            r.statMaxWords = std::max(r.statMaxWords, fn.frameWords);
        }
        if (!res.functions.empty())
            r.statMeanWords =
                words / static_cast<double>(res.functions.size());
        std::size_t memTotal = res.loads.total() + res.stores.total();
        if (memTotal > 0)
            r.statLocalFrac =
                static_cast<double>(res.loads.local +
                                    res.stores.local) /
                static_cast<double>(memTotal);
        r.ambiguous = res.loads.ambiguous + res.stores.ambiguous;

        vm::Executor exec(*program);
        stats::Group root(nullptr, "");
        vm::StreamStats ss(&root);
        while (!exec.halted())
            ss.record(exec.step());
        r.dynMeanWords = ss.frameWords.mean();
        r.dynLocalFrac = ss.localRefFrac();
        rows[i] = r;
    });

    std::vector<double> statMeans, dynMeans;
    for (std::size_t i = 0; i < selected.size(); ++i) {
        const Row &r = rows[i];
        statMeans.push_back(r.statMeanWords);
        dynMeans.push_back(r.dynMeanWords);
        table.addRow({selected[i]->paperName,
                      std::to_string(r.functions),
                      sim::Table::num(r.statMeanWords, 1),
                      std::to_string(r.statMaxWords),
                      sim::Table::num(r.dynMeanWords, 1),
                      sim::Table::pct(r.statLocalFrac),
                      sim::Table::pct(r.dynLocalFrac),
                      std::to_string(r.ambiguous)});
    }
    table.print(std::cout);
    std::printf("\nMeasured: static mean %.1f words vs dynamic mean "
                "%.1f words (paper: ~7 static / ~3 dynamic)\n",
                mean(statMeans), mean(dynMeans));
    return 0;
}
