/**
 * @file
 * Ablation (Section 2.2.3): how does the classification scheme affect
 * performance and accuracy? Compares, under optimized (3+2):
 *   oracle      - perfect separation (the paper's evaluation default)
 *   annotation  - trust the compiler's per-instruction bit
 *   spbase      - hardware heuristic: base register is sp/fp
 *   predictor   - annotation hint + 1-bit last-region table
 *
 * Paper: compiler+predictor classification reaches ~99.9% accuracy,
 * so assuming perfect separation is harmless; the sp/fp heuristic
 * misses <5% of stack references.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hh"
#include "config/presets.hh"

using namespace ddsim;
using namespace ddsim::bench;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    banner("Ablation: classification scheme under optimized (3+2)",
           "all schemes should be near-oracle (paper: ~99.9% dynamic "
           "accuracy with annotation+predictor)");

    using config::ClassifierKind;
    const ClassifierKind kinds[] = {
        ClassifierKind::Oracle, ClassifierKind::Annotation,
        ClassifierKind::SpBase, ClassifierKind::Predictor,
        ClassifierKind::Replicate};

    sim::Table table({"program", "oracle IPC", "annotation",
                      "spbase", "predictor", "replicate",
                      "pred. accuracy", "pred. missteers"});

    std::vector<sim::SweepJob> jobs;
    for (const auto *info : opts.programs) {
        auto program = buildProgramShared(*info, opts);
        for (ClassifierKind kind : kinds) {
            config::MachineConfig cfg =
                config::decoupledOptimized(3, 2);
            cfg.classifier = kind;
            jobs.push_back({program, cfg});
        }
    }
    std::vector<sim::SimResult> results = runGrid(opts, jobs, "Ablation: classifier sweep");

    std::size_t k = 0;
    for (const auto *info : opts.programs) {
        std::vector<std::string> row{info->paperName};
        double accuracy = 0;
        std::uint64_t missteers = 0;
        double oracleIpc = 0;
        for (ClassifierKind kind : kinds) {
            sim::SimResult r = results[k++];
            if (kind == ClassifierKind::Oracle) {
                oracleIpc = r.ipc;
                row.push_back(sim::Table::num(r.ipc, 3));
            } else {
                row.push_back(
                    sim::Table::num(r.ipc / oracleIpc, 3));
            }
            if (kind == ClassifierKind::Predictor) {
                accuracy = r.classifierAccuracy;
                missteers = r.missteered;
            }
        }
        row.push_back(sim::Table::pct(accuracy, 2));
        row.push_back(std::to_string(missteers));
        table.addRow(row);
    }
    table.print(std::cout);
    std::printf("\n(annotation/spbase/predictor columns are relative "
                "to the oracle IPC)\n");
    return 0;
}
