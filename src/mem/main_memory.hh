/**
 * @file
 * Main memory: fixed access latency, fully interleaved (no bank
 * contention), matching Table 1 of the paper.
 */

#ifndef DDSIM_MEM_MAIN_MEMORY_HH_
#define DDSIM_MEM_MAIN_MEMORY_HH_

#include "mem/cache.hh"
#include "stats/group.hh"
#include "stats/stat.hh"

namespace ddsim::mem {

/** The DRAM at the bottom of the hierarchy. */
class MainMemory : public MemLevel, public stats::Group
{
  public:
    MainMemory(stats::Group *parent, Cycle latency);

    Cycle access(Addr addr, bool isWrite, Cycle when) override;

    stats::Scalar accesses;
    stats::Scalar reads;
    stats::Scalar writes;

  private:
    Cycle latency;
};

} // namespace ddsim::mem

#endif // DDSIM_MEM_MAIN_MEMORY_HH_
