/**
 * @file
 * Timing-only set-associative cache model: LRU replacement, write-back
 * write-allocate, lockup-free via MSHRs. Data values live in the
 * functional VM; this model tracks tags and timing.
 */

#ifndef DDSIM_MEM_CACHE_HH_
#define DDSIM_MEM_CACHE_HH_

#include <string>
#include <vector>

#include "config/machine_config.hh"
#include "mem/mshr.hh"
#include "stats/group.hh"
#include "stats/stat.hh"
#include "util/types.hh"

namespace ddsim::mem {

/** Abstract next-level interface (another cache, or main memory). */
class MemLevel
{
  public:
    virtual ~MemLevel() = default;

    /**
     * Timing access. @p when is the cycle the request arrives;
     * @return the cycle the data is available to the requester.
     */
    virtual Cycle access(Addr addr, bool isWrite, Cycle when) = 0;

    /**
     * Functional warming (SMARTS fast-forward): update tag/LRU state
     * as @p addr being touched at @p when without charging any
     * latency, statistics or MSHR traffic. Default: no state to warm.
     */
    virtual void warm(Addr addr, bool isWrite, Cycle when)
    {
        (void)addr;
        (void)isWrite;
        (void)when;
    }
};

/** A set-associative, write-back, lockup-free cache. */
class Cache : public MemLevel, public stats::Group
{
  public:
    /**
     * @param parent Stats parent.
     * @param name Component name ("l1d", "lvc", "l2").
     * @param params Geometry and latency.
     * @param next Next level for misses and writebacks (not owned).
     * @param numMshrs Max outstanding misses.
     */
    Cache(stats::Group *parent, const std::string &name,
          const config::CacheParams &params, MemLevel *next,
          int numMshrs = 32);

    Cycle access(Addr addr, bool isWrite, Cycle when) override;

    /**
     * Install/touch the line for @p addr without stats, MSHR traffic
     * or writebacks, recursing into the next level on a miss — keeps
     * tag state tracking the instruction stream across a sampled
     * simulation's functional fast-forward.
     */
    void warm(Addr addr, bool isWrite, Cycle when) override;

    /** Non-timing probe: would @p addr hit right now? (tests) */
    bool probe(Addr addr) const;

    /** Invalidate everything (used between runs). */
    void flush();

    const config::CacheParams &params() const { return cacheParams; }

    double missRate() const;

    // Stats (public: formulas in benches read them directly).
    stats::Scalar accesses;
    stats::Scalar hits;
    stats::Scalar misses;
    stats::Scalar mshrMerges;   ///< Misses merged into in-flight fills.
    stats::Scalar evictions;
    stats::Scalar writebacks;   ///< Dirty evictions sent down.
    stats::Scalar readAccesses;
    stats::Scalar writeAccesses;
    stats::Formula missRateStat;    ///< misses / accesses.

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        Cycle lastUsed = 0;
        Cycle filledAt = 0; ///< Cycle the fill completes.
    };

    config::CacheParams cacheParams;
    MemLevel *next;
    std::vector<Line> lines;
    std::uint32_t numSets;
    std::uint32_t lineShift;
    MshrFile mshrs;

    Addr lineAddr(Addr addr) const
    {
        return addr >> lineShift;
    }
    std::uint32_t setIndex(Addr la) const
    {
        return static_cast<std::uint32_t>(la) & (numSets - 1);
    }
    Line *findLine(Addr la);
    const Line *findLine(Addr la) const;
    /** LRU victim slot for @p la's set — no stats, no writeback. */
    Line &lruLine(Addr la);
    Line &victimLine(Addr la, Cycle when);
};

} // namespace ddsim::mem

#endif // DDSIM_MEM_CACHE_HH_
