#include "mem/main_memory.hh"

namespace ddsim::mem {

MainMemory::MainMemory(stats::Group *parent, Cycle latency)
    : stats::Group(parent, "mem"),
      accesses(this, "accesses", "main memory accesses"),
      reads(this, "reads", "main memory reads"),
      writes(this, "writes", "main memory writes"),
      latency(latency)
{
}

Cycle
MainMemory::access(Addr addr, bool isWrite, Cycle when)
{
    (void)addr;
    ++accesses;
    if (isWrite)
        ++writes;
    else
        ++reads;
    return when + latency;
}

} // namespace ddsim::mem
