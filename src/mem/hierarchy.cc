#include "mem/hierarchy.hh"

namespace ddsim::mem {

Hierarchy::Hierarchy(stats::Group *parent,
                     const config::MachineConfig &cfg)
    : stats::Group(parent, "memhier")
{
    memory = std::make_unique<MainMemory>(this, cfg.memLatency);
    l2Cache = std::make_unique<Cache>(this, "l2", cfg.l2, memory.get(),
                                      cfg.l2.mshrs);
    l1Cache = std::make_unique<Cache>(this, "l1d", cfg.l1,
                                      l2Cache.get(), cfg.l1.mshrs);
    if (cfg.lvcEnabled) {
        lvcCache = std::make_unique<Cache>(this, "lvc", cfg.lvc,
                                           l2Cache.get(),
                                           cfg.lvc.mshrs);
    }
}

void
Hierarchy::flushAll()
{
    l1Cache->flush();
    l2Cache->flush();
    if (lvcCache)
        lvcCache->flush();
}

} // namespace ddsim::mem
