/**
 * @file
 * Miss Status Holding Registers: the bookkeeping that makes a cache
 * lockup-free. Tracks outstanding line fills so that later misses to
 * the same line merge instead of issuing duplicate requests, and
 * models a bounded number of outstanding misses.
 */

#ifndef DDSIM_MEM_MSHR_HH_
#define DDSIM_MEM_MSHR_HH_

#include <cstdint>
#include <map>

#include "util/types.hh"

namespace ddsim::mem {

/** Outstanding-miss tracker for one cache. */
class MshrFile
{
  public:
    explicit MshrFile(int capacity) : capacity(capacity) {}

    /**
     * If a fill for @p lineAddr is in flight at @p now, return its
     * completion cycle; otherwise 0.
     */
    Cycle outstandingFill(Addr lineAddr, Cycle now);

    /**
     * Register a new outstanding fill completing at @p fillCycle.
     * A miss on a line whose fill is already in flight coalesces into
     * the existing MSHR and returns that fill's (earlier) completion
     * unchanged. Otherwise, if all MSHRs are busy at @p now, the
     * request is delayed until one frees; the returned cycle is the
     * (possibly pushed-back) completion time actually recorded.
     */
    Cycle allocate(Addr lineAddr, Cycle now, Cycle fillCycle);

    /** Number of fills still outstanding at @p now. */
    int busy(Cycle now);

    int size() const { return capacity; }

  private:
    int capacity;
    std::map<Addr, Cycle> fills; // lineAddr -> completion cycle

    void expire(Cycle now);
    Cycle earliestCompletion() const;
};

} // namespace ddsim::mem

#endif // DDSIM_MEM_MSHR_HH_
