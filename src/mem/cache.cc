#include "mem/cache.hh"

#include <bit>

#include "util/log.hh"

namespace ddsim::mem {

Cache::Cache(stats::Group *parent, const std::string &name,
             const config::CacheParams &params, MemLevel *next,
             int numMshrs)
    : stats::Group(parent, name),
      accesses(this, "accesses", "total accesses"),
      hits(this, "hits", "accesses that hit"),
      misses(this, "misses", "accesses that missed"),
      mshrMerges(this, "mshr_merges",
                 "misses merged into an in-flight fill"),
      evictions(this, "evictions", "lines evicted"),
      writebacks(this, "writebacks", "dirty lines written back"),
      readAccesses(this, "reads", "read accesses"),
      writeAccesses(this, "writes", "write accesses"),
      missRateStat(this, "miss_rate", "misses / accesses",
                   [this] { return missRate(); }),
      cacheParams(params),
      next(next),
      mshrs(numMshrs)
{
    if (!next)
        panic("cache '%s' has no next level", name.c_str());
    numSets = params.numSets();
    lineShift =
        static_cast<std::uint32_t>(std::countr_zero(params.lineBytes));
    lines.assign(static_cast<std::size_t>(numSets) * params.assoc,
                 Line{});
}

Cache::Line *
Cache::findLine(Addr la)
{
    std::uint32_t set = setIndex(la);
    Line *base = &lines[static_cast<std::size_t>(set) *
                        cacheParams.assoc];
    for (std::uint32_t w = 0; w < cacheParams.assoc; ++w) {
        if (base[w].valid && base[w].tag == la)
            return &base[w];
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(Addr la) const
{
    return const_cast<Cache *>(this)->findLine(la);
}

Cache::Line &
Cache::lruLine(Addr la)
{
    std::uint32_t set = setIndex(la);
    Line *base = &lines[static_cast<std::size_t>(set) *
                        cacheParams.assoc];
    Line *victim = &base[0];
    for (std::uint32_t w = 0; w < cacheParams.assoc; ++w) {
        if (!base[w].valid)
            return base[w];
        if (base[w].lastUsed < victim->lastUsed)
            victim = &base[w];
    }
    return *victim;
}

Cache::Line &
Cache::victimLine(Addr la, Cycle when)
{
    Line &picked = lruLine(la);
    if (!picked.valid)
        return picked;
    Line *victim = &picked;
    ++evictions;
    if (victim->dirty) {
        ++writebacks;
        // Fire-and-forget: the writeback consumes next-level bandwidth
        // (counted there) but does not delay the demand fill.
        Addr victimAddr = victim->tag << lineShift;
        next->access(victimAddr, true, when);
    }
    victim->valid = false;
    return *victim;
}

Cycle
Cache::access(Addr addr, bool isWrite, Cycle when)
{
    ++accesses;
    if (isWrite)
        ++writeAccesses;
    else
        ++readAccesses;

    Addr la = lineAddr(addr);
    Cycle lookupDone = when + cacheParams.hitLatency;

    if (Line *line = findLine(la)) {
        // A hit -- but if the line's fill is still in flight, data is
        // not available until the fill completes.
        ++hits;
        line->lastUsed = when;
        if (isWrite)
            line->dirty = true;
        return std::max(lookupDone, line->filledAt);
    }

    ++misses;

    // Merge into an outstanding fill for the same line if any.
    if (Cycle fill = mshrs.outstandingFill(la, when)) {
        ++mshrMerges;
        // The line was installed by the original miss; find it and
        // mark usage/dirtiness.
        if (Line *line = findLine(la)) {
            line->lastUsed = when;
            if (isWrite)
                line->dirty = true;
        }
        return std::max(lookupDone, fill);
    }

    // Full miss: fetch the line from the next level.
    Cycle fill = next->access(la << lineShift, false, lookupDone);
    fill = mshrs.allocate(la, when, fill);

    Line &line = victimLine(la, when);
    line.valid = true;
    line.tag = la;
    line.dirty = isWrite;
    line.lastUsed = when;
    line.filledAt = fill;
    return fill;
}

void
Cache::warm(Addr addr, bool isWrite, Cycle when)
{
    Addr la = lineAddr(addr);
    if (Line *line = findLine(la)) {
        line->lastUsed = when;
        if (isWrite)
            line->dirty = true;
        return;
    }
    next->warm(la << lineShift, false, when);
    // Install over the LRU victim. A dirty victim's writeback is
    // dropped silently: warming has no timing to charge it to, and
    // tag state — the thing the measured windows depend on — does not
    // need it.
    Line &line = lruLine(la);
    line.valid = true;
    line.tag = la;
    line.dirty = isWrite;
    line.lastUsed = when;
    line.filledAt = when;
}

bool
Cache::probe(Addr addr) const
{
    return findLine(lineAddr(addr)) != nullptr;
}

void
Cache::flush()
{
    for (Line &l : lines)
        l = Line{};
}

double
Cache::missRate() const
{
    return stats::safeRatio(misses.report(), accesses.report());
}

} // namespace ddsim::mem
