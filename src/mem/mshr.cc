#include "mem/mshr.hh"

#include "util/log.hh"

namespace ddsim::mem {

void
MshrFile::expire(Cycle now)
{
    for (auto it = fills.begin(); it != fills.end();) {
        if (it->second <= now)
            it = fills.erase(it);
        else
            ++it;
    }
}

Cycle
MshrFile::earliestCompletion() const
{
    Cycle best = 0;
    for (const auto &[addr, fill] : fills) {
        if (best == 0 || fill < best)
            best = fill;
    }
    return best;
}

Cycle
MshrFile::outstandingFill(Addr lineAddr, Cycle now)
{
    expire(now);
    auto it = fills.find(lineAddr);
    return it == fills.end() ? 0 : it->second;
}

Cycle
MshrFile::allocate(Addr lineAddr, Cycle now, Cycle fillCycle)
{
    expire(now);
    // A fill for this line already in flight absorbs the new miss: it
    // coalesces into the existing MSHR and completes when that fill
    // does. Overwriting instead would push the line's completion
    // back and could charge a spurious capacity hazard.
    auto it = fills.find(lineAddr);
    if (it != fills.end())
        return it->second;
    if (static_cast<int>(fills.size()) >= capacity) {
        // Structural hazard: wait for the earliest outstanding fill,
        // pushing this one's completion back by the same amount.
        Cycle freeAt = earliestCompletion();
        if (freeAt > now)
            fillCycle += freeAt - now;
        expire(freeAt);
    }
    fills[lineAddr] = fillCycle;
    return fillCycle;
}

int
MshrFile::busy(Cycle now)
{
    expire(now);
    return static_cast<int>(fills.size());
}

} // namespace ddsim::mem
