/**
 * @file
 * The full data-memory hierarchy of Figure 1: an L1 data cache and
 * (when decoupling is enabled) a Local Variable Cache, both in front
 * of a shared L2 which talks to main memory. The LVC sits at the same
 * level as the L1 and misses to the same L2 bus (Section 2.2.2).
 */

#ifndef DDSIM_MEM_HIERARCHY_HH_
#define DDSIM_MEM_HIERARCHY_HH_

#include <memory>

#include "config/machine_config.hh"
#include "mem/cache.hh"
#include "mem/main_memory.hh"

namespace ddsim::mem {

/** Owns and wires the caches for one simulated machine. */
class Hierarchy : public stats::Group
{
  public:
    Hierarchy(stats::Group *parent, const config::MachineConfig &cfg);

    Cache &l1() { return *l1Cache; }
    Cache &l2() { return *l2Cache; }
    MainMemory &mainMemory() { return *memory; }

    /** The LVC, or nullptr when decoupling is disabled. */
    Cache *lvc() { return lvcCache.get(); }
    const Cache *lvc() const { return lvcCache.get(); }

    /**
     * Total traffic on the L1/LVC <-> L2 bus (the metric the paper
     * reports a 24% reduction of for 130.li in Section 4.2.1).
     */
    std::uint64_t l2BusTraffic() const
    {
        return l2Cache->accesses.value();
    }

    /** Invalidate all caches. */
    void flushAll();

  private:
    std::unique_ptr<MainMemory> memory;
    std::unique_ptr<Cache> l2Cache;
    std::unique_ptr<Cache> l1Cache;
    std::unique_ptr<Cache> lvcCache;
};

} // namespace ddsim::mem

#endif // DDSIM_MEM_HIERARCHY_HH_
