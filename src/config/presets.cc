#include "config/presets.hh"

#include "util/log.hh"
#include "util/str.hh"

namespace ddsim::config {

MachineConfig
baseline(int l1Ports)
{
    MachineConfig cfg;
    cfg.l1.ports = l1Ports;
    cfg.lvcEnabled = false;
    cfg.classifier = ClassifierKind::None;
    cfg.validate();
    return cfg;
}

MachineConfig
decoupled(int l1Ports, int lvcPorts)
{
    MachineConfig cfg;
    cfg.l1.ports = l1Ports;
    cfg.lvcEnabled = true;
    cfg.lvc.ports = lvcPorts;
    cfg.classifier = ClassifierKind::Oracle;
    cfg.fastForward = false;
    cfg.combining = 1;
    cfg.validate();
    return cfg;
}

MachineConfig
decoupledOptimized(int l1Ports, int lvcPorts, int combining)
{
    MachineConfig cfg = decoupled(l1Ports, lvcPorts);
    cfg.fastForward = true;
    cfg.combining = combining;
    cfg.validate();
    return cfg;
}

MachineConfig
fromNotation(const std::string &notation)
{
    std::string s = notation;
    // Strip optional parentheses.
    if (!s.empty() && s.front() == '(')
        s.erase(0, 1);
    if (!s.empty() && s.back() == ')')
        s.pop_back();
    auto parts = split(s, '+');
    if (parts.size() != 2)
        fatal("bad (N+M) notation '%s'", notation.c_str());
    std::int64_t n = 0, m = 0;
    if (!parseInt(parts[0], n) || !parseInt(parts[1], m) || n < 1 ||
        m < 0)
        fatal("bad (N+M) notation '%s'", notation.c_str());
    if (m == 0)
        return baseline(static_cast<int>(n));
    return decoupled(static_cast<int>(n), static_cast<int>(m));
}

} // namespace ddsim::config
