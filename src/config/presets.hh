/**
 * @file
 * The named machine configurations used in the paper's evaluation.
 */

#ifndef DDSIM_CONFIG_PRESETS_HH_
#define DDSIM_CONFIG_PRESETS_HH_

#include "config/machine_config.hh"

namespace ddsim::config {

/**
 * "(N+0)": the conventional machine with an N-port unified L1 data
 * cache and no LVC (Figure 5's configurations).
 */
MachineConfig baseline(int l1Ports);

/**
 * "(N+M)": decoupled machine, N-port L1 plus M-port 2 KB LVC, oracle
 * classification, optimizations off (Figure 7's configurations).
 */
MachineConfig decoupled(int l1Ports, int lvcPorts);

/**
 * "(N+M)" with both proposed optimizations on: fast data forwarding
 * and two-way access combining (Figure 9's configurations).
 */
MachineConfig decoupledOptimized(int l1Ports, int lvcPorts,
                                 int combining = 2);

/** Parse "(N+M)" / "N+M" notation into a config (M=0 -> baseline). */
MachineConfig fromNotation(const std::string &notation);

} // namespace ddsim::config

#endif // DDSIM_CONFIG_PRESETS_HH_
