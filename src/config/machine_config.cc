#include "config/machine_config.hh"

#include "util/log.hh"

namespace ddsim::config {

const char *
classifierName(ClassifierKind kind)
{
    switch (kind) {
      case ClassifierKind::None: return "none";
      case ClassifierKind::Annotation: return "annotation";
      case ClassifierKind::SpBase: return "spbase";
      case ClassifierKind::Oracle: return "oracle";
      case ClassifierKind::Predictor: return "predictor";
      case ClassifierKind::Replicate: return "replicate";
      case ClassifierKind::StaticHybrid: return "statichybrid";
    }
    return "?";
}

std::string
MachineConfig::notation() const
{
    int m = lvcEnabled ? lvc.ports : 0;
    return format("(%d+%d)", l1.ports, m);
}

std::string
MachineConfig::describe() const
{
    std::string s = notation();
    s += format(": %d-wide, ROB %d, LSQ %d", issueWidth, robSize,
                lsqSize);
    s += format(", L1 %uKB/%u-way/%llu-cyc/%d-port",
                l1.sizeBytes / 1024, l1.assoc,
                (unsigned long long)l1.hitLatency, l1.ports);
    if (lvcEnabled) {
        s += format(", LVC %uKB/%u-way/%llu-cyc/%d-port, LVAQ %d",
                    lvc.sizeBytes / 1024, lvc.assoc,
                    (unsigned long long)lvc.hitLatency, lvc.ports,
                    lvaqSize);
        s += format(", classify=%s", classifierName(classifier));
        if (fastForward)
            s += ", fastfwd";
        if (combining > 1)
            s += format(", combine=%d", combining);
    }
    return s;
}

namespace {

// Every rejection names the offending field: the message carries a
// "<field>: ..." prefix and the same dotted name rides on
// ConfigError::field() for machine consumption.
[[noreturn]] void
badField(const std::string &field, const std::string &why)
{
    raise(ConfigError(field, field + ": " + why));
}

void
validateCache(const std::string &name, const CacheParams &c)
{
    if (c.sizeBytes == 0)
        badField(name + ".sizeBytes", "cache size must be nonzero");
    if (c.lineBytes == 0)
        badField(name + ".lineBytes", "line size must be nonzero");
    if (c.assoc == 0)
        badField(name + ".assoc", "associativity must be nonzero");
    if ((c.lineBytes & (c.lineBytes - 1)) != 0)
        badField(name + ".lineBytes",
                 format("line size %u is not a power of two",
                        c.lineBytes));
    if (c.sizeBytes % (c.assoc * c.lineBytes) != 0)
        badField(name + ".sizeBytes",
                 format("size %u is not a multiple of assoc*line",
                        c.sizeBytes));
    std::uint32_t sets = c.numSets();
    if ((sets & (sets - 1)) != 0)
        badField(name + ".sizeBytes",
                 format("number of sets %u is not a power of two",
                        sets));
    if (c.ports < 1)
        badField(name + ".ports", "at least one port required");
    if (c.hitLatency < 1)
        badField(name + ".hitLatency",
                 "hit latency must be at least 1");
    if (c.banks < 0 || (c.banks > 0 && (c.banks & (c.banks - 1)) != 0))
        badField(name + ".banks",
                 "banks must be 0 (ideal) or a power of two");
    if (c.mshrs < 1)
        badField(name + ".mshrs", "at least one MSHR is required");
}

} // namespace

void
MachineConfig::validate() const
{
    if (fetchWidth < 1)
        badField("fetchWidth", "fetch width must be positive");
    if (issueWidth < 1)
        badField("issueWidth", "issue width must be positive");
    if (commitWidth < 1)
        badField("commitWidth", "commit width must be positive");
    if (robSize < 1)
        badField("robSize", "ROB must have at least one entry");
    if (lsqSize < 1)
        badField("lsqSize", "LSQ must have at least one entry");
    if (numIntAlu < 1)
        badField("numIntAlu", "at least one integer ALU is required");
    if (numFpAlu < 1)
        badField("numFpAlu", "at least one FP ALU is required");
    if (numIntMultDiv < 1)
        badField("numIntMultDiv",
                 "at least one integer mult/div unit is required");
    if (numFpMultDiv < 1)
        badField("numFpMultDiv",
                 "at least one FP mult/div unit is required");
    validateCache("l1", l1);
    validateCache("l2", l2);
    if (lvcEnabled) {
        validateCache("lvc", lvc);
        if (lvaqSize < 1)
            badField("lvaqSize", "LVAQ must have at least one entry");
        if (classifier == ClassifierKind::None)
            badField("classifier", "decoupling requires a classifier");
    }
    if (forwardLatency < 1)
        badField("forwardLatency",
                 "forward latency must be at least 1");
    if (memLatency < 1)
        badField("memLatency", "memory latency must be at least 1");
    if (combining < 1)
        badField("combining", "combining degree must be >= 1");
}

} // namespace ddsim::config
