#include "config/machine_config.hh"

#include "util/log.hh"

namespace ddsim::config {

const char *
classifierName(ClassifierKind kind)
{
    switch (kind) {
      case ClassifierKind::None: return "none";
      case ClassifierKind::Annotation: return "annotation";
      case ClassifierKind::SpBase: return "spbase";
      case ClassifierKind::Oracle: return "oracle";
      case ClassifierKind::Predictor: return "predictor";
      case ClassifierKind::Replicate: return "replicate";
    }
    return "?";
}

std::string
MachineConfig::notation() const
{
    int m = lvcEnabled ? lvc.ports : 0;
    return format("(%d+%d)", l1.ports, m);
}

std::string
MachineConfig::describe() const
{
    std::string s = notation();
    s += format(": %d-wide, ROB %d, LSQ %d", issueWidth, robSize,
                lsqSize);
    s += format(", L1 %uKB/%u-way/%llu-cyc/%d-port",
                l1.sizeBytes / 1024, l1.assoc,
                (unsigned long long)l1.hitLatency, l1.ports);
    if (lvcEnabled) {
        s += format(", LVC %uKB/%u-way/%llu-cyc/%d-port, LVAQ %d",
                    lvc.sizeBytes / 1024, lvc.assoc,
                    (unsigned long long)lvc.hitLatency, lvc.ports,
                    lvaqSize);
        s += format(", classify=%s", classifierName(classifier));
        if (fastForward)
            s += ", fastfwd";
        if (combining > 1)
            s += format(", combine=%d", combining);
    }
    return s;
}

namespace {

void
validateCache(const char *name, const CacheParams &c)
{
    if (c.sizeBytes == 0 || c.lineBytes == 0 || c.assoc == 0)
        fatal("%s: size, line size and associativity must be nonzero",
              name);
    if ((c.lineBytes & (c.lineBytes - 1)) != 0)
        fatal("%s: line size %u is not a power of two", name,
              c.lineBytes);
    if (c.sizeBytes % (c.assoc * c.lineBytes) != 0)
        fatal("%s: size %u is not a multiple of assoc*line", name,
              c.sizeBytes);
    std::uint32_t sets = c.numSets();
    if ((sets & (sets - 1)) != 0)
        fatal("%s: number of sets %u is not a power of two", name, sets);
    if (c.ports < 1)
        fatal("%s: at least one port required", name);
    if (c.hitLatency < 1)
        fatal("%s: hit latency must be at least 1", name);
    if (c.banks < 0 || (c.banks > 0 && (c.banks & (c.banks - 1)) != 0))
        fatal("%s: banks must be 0 (ideal) or a power of two", name);
    if (c.mshrs < 1)
        fatal("%s: at least one MSHR is required", name);
}

} // namespace

void
MachineConfig::validate() const
{
    if (fetchWidth < 1 || issueWidth < 1 || commitWidth < 1)
        fatal("machine widths must be positive");
    if (robSize < 1)
        fatal("ROB must have at least one entry");
    if (lsqSize < 1)
        fatal("LSQ must have at least one entry");
    if (numIntAlu < 1)
        fatal("at least one integer ALU is required");
    validateCache("l1", l1);
    validateCache("l2", l2);
    if (lvcEnabled) {
        validateCache("lvc", lvc);
        if (lvaqSize < 1)
            fatal("LVAQ must have at least one entry");
        if (classifier == ClassifierKind::None)
            fatal("decoupling requires a classifier");
    }
    if (combining < 1)
        fatal("combining degree must be >= 1");
}

} // namespace ddsim::config
