#include "config/cli.hh"

#include <algorithm>
#include <limits>

#include "util/error.hh"
#include "util/log.hh"
#include "util/str.hh"

namespace ddsim::config {

// GCC 12's -Wrestrict mis-fires on the std::string substr/indexing
// sequence below (GCC PR105329); the code is well-defined.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wrestrict"

CliArgs::CliArgs(int argc, const char *const *argv)
{
    bool passthrough = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--") {
            passthrough = true;
        } else if (startsWith(arg, "--")) {
            std::string key;
            auto eq = arg.find('=');
            if (eq == std::string::npos) {
                key = arg.substr(2);
                opts[key] = "1";
            } else {
                key = arg.substr(2, eq - 2);
                opts[key] = arg.substr(eq + 1);
            }
            if (passthrough)
                knownKeys.insert(key);
        } else {
            pos.push_back(arg);
        }
    }
}

#pragma GCC diagnostic pop

bool
CliArgs::has(const std::string &key) const
{
    knownKeys.insert(key);
    return opts.count(key) != 0;
}

std::string
CliArgs::get(const std::string &key, const std::string &def) const
{
    knownKeys.insert(key);
    auto it = opts.find(key);
    return it == opts.end() ? def : it->second;
}

std::int64_t
CliArgs::getInt(const std::string &key, std::int64_t def) const
{
    knownKeys.insert(key);
    auto it = opts.find(key);
    if (it == opts.end())
        return def;
    std::int64_t v;
    if (!parseInt(it->second, v))
        fatal("option --%s expects an integer, got '%s'", key.c_str(),
              it->second.c_str());
    return v;
}

double
CliArgs::getDouble(const std::string &key, double def) const
{
    knownKeys.insert(key);
    auto it = opts.find(key);
    if (it == opts.end())
        return def;
    double v;
    if (!parseDouble(it->second, v))
        fatal("option --%s expects a number, got '%s'", key.c_str(),
              it->second.c_str());
    return v;
}

std::size_t
CliArgs::getMbBytes(const std::string &key, std::size_t defBytes) const
{
    knownKeys.insert(key);
    auto it = opts.find(key);
    if (it == opts.end())
        return defBytes;
    std::int64_t mb;
    if (!parseInt(it->second, mb))
        raise(ConfigError(
            key, format("option --%s expects an integer megabyte "
                        "count, got '%s'",
                        key.c_str(), it->second.c_str())));
    if (mb < 0)
        raise(ConfigError(
            key,
            format("option --%s: a megabyte budget cannot be "
                   "negative (got %lld)",
                   key.c_str(), static_cast<long long>(mb))));
    constexpr std::uint64_t maxMb =
        std::numeric_limits<std::size_t>::max() >> 20;
    if (static_cast<std::uint64_t>(mb) > maxMb)
        raise(ConfigError(
            key, format("option --%s: %lld MB overflows the byte "
                        "count (max %llu MB)",
                        key.c_str(), static_cast<long long>(mb),
                        static_cast<unsigned long long>(maxMb))));
    return static_cast<std::size_t>(mb) << 20;
}

double
CliArgs::getSeconds(const std::string &key, double def) const
{
    knownKeys.insert(key);
    auto it = opts.find(key);
    if (it == opts.end())
        return def;
    double secs;
    if (!parseDouble(it->second, secs))
        raise(ConfigError(
            key, format("option --%s expects a seconds value, got "
                        "'%s'",
                        key.c_str(), it->second.c_str())));
    if (secs < 0)
        raise(ConfigError(
            key, format("option --%s: a duration cannot be negative "
                        "(got %s)",
                        key.c_str(), it->second.c_str())));
    return secs;
}

bool
CliArgs::getBool(const std::string &key, bool def) const
{
    knownKeys.insert(key);
    auto it = opts.find(key);
    if (it == opts.end())
        return def;
    std::string v = toLower(it->second);
    return v == "1" || v == "true" || v == "yes" || v == "on";
}

void
CliArgs::markKnown(const std::string &key) const
{
    knownKeys.insert(key);
}

namespace {

/** Plain Levenshtein distance, for did-you-mean suggestions. */
std::size_t
editDistance(const std::string &a, const std::string &b)
{
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t prev = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            std::size_t cur = row[j];
            std::size_t sub = prev + (a[i - 1] == b[j - 1] ? 0 : 1);
            row[j] = std::min({row[j] + 1, row[j - 1] + 1, sub});
            prev = cur;
        }
    }
    return row[b.size()];
}

} // namespace

void
CliArgs::rejectUnknown() const
{
    for (const auto &[key, value] : opts) {
        if (knownKeys.count(key))
            continue;
        std::string best;
        std::size_t bestDist = 3; // Suggest only close matches.
        for (const std::string &k : knownKeys) {
            std::size_t d = editDistance(key, k);
            if (d < bestDist) {
                bestDist = d;
                best = k;
            }
        }
        if (!best.empty())
            fatal("unrecognized option --%s (did you mean --%s?); "
                  "use \"--\" before tool-specific options to skip "
                  "this check",
                  key.c_str(), best.c_str());
        fatal("unrecognized option --%s; use \"--\" before "
              "tool-specific options to skip this check",
              key.c_str());
    }
}

namespace {

ClassifierKind
parseClassifier(const std::string &s)
{
    std::string v = toLower(s);
    if (v == "none")
        return ClassifierKind::None;
    if (v == "annotation")
        return ClassifierKind::Annotation;
    if (v == "spbase")
        return ClassifierKind::SpBase;
    if (v == "oracle")
        return ClassifierKind::Oracle;
    if (v == "predictor")
        return ClassifierKind::Predictor;
    if (v == "replicate")
        return ClassifierKind::Replicate;
    if (v == "statichybrid")
        return ClassifierKind::StaticHybrid;
    fatal("unknown classifier '%s'", s.c_str());
}

} // namespace

void
applyOverrides(MachineConfig &cfg, const CliArgs &args)
{
    auto intOpt = [&](const char *key, auto &field) {
        if (args.has(key))
            field = static_cast<std::remove_reference_t<decltype(field)>>(
                args.getInt(key, 0));
    };
    auto sizeOpt = [&](const char *key, std::uint32_t &field) {
        if (args.has(key)) {
            std::uint64_t v;
            if (!parseSize(args.get(key), v))
                fatal("option --%s expects a size (e.g. 2K)", key);
            field = static_cast<std::uint32_t>(v);
        }
    };

    intOpt("width", cfg.issueWidth);
    if (args.has("width")) {
        cfg.fetchWidth = cfg.issueWidth;
        cfg.commitWidth = cfg.issueWidth;
    }
    intOpt("rob", cfg.robSize);
    intOpt("lsq", cfg.lsqSize);
    intOpt("lvaq", cfg.lvaqSize);
    intOpt("l1.ports", cfg.l1.ports);
    sizeOpt("l1.size", cfg.l1.sizeBytes);
    intOpt("l1.assoc", cfg.l1.assoc);
    intOpt("l1.lat", cfg.l1.hitLatency);
    intOpt("l1.banks", cfg.l1.banks);
    intOpt("l1.mshrs", cfg.l1.mshrs);
    intOpt("lvc.ports", cfg.lvc.ports);
    intOpt("lvc.banks", cfg.lvc.banks);
    intOpt("lvc.mshrs", cfg.lvc.mshrs);
    sizeOpt("lvc.size", cfg.lvc.sizeBytes);
    intOpt("lvc.assoc", cfg.lvc.assoc);
    intOpt("lvc.lat", cfg.lvc.hitLatency);
    intOpt("l2.lat", cfg.l2.hitLatency);
    intOpt("mem.lat", cfg.memLatency);
    if (args.has("lvc"))
        cfg.lvcEnabled = args.getBool("lvc");
    if (args.has("classifier"))
        cfg.classifier = parseClassifier(args.get("classifier"));
    if (args.has("fastfwd"))
        cfg.fastForward = args.getBool("fastfwd");
    intOpt("combining", cfg.combining);

    // Every recognized config key has been queried above, so anything
    // left unqueried is a typo (e.g. --l1.siez) that would otherwise
    // silently run the wrong experiment.
    args.rejectUnknown();

    cfg.validate();
}

} // namespace ddsim::config
