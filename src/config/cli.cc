#include "config/cli.hh"

#include "util/log.hh"
#include "util/str.hh"

namespace ddsim::config {

// GCC 12's -Wrestrict mis-fires on the std::string substr/indexing
// sequence below (GCC PR105329); the code is well-defined.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wrestrict"

CliArgs::CliArgs(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (startsWith(arg, "--")) {
            auto eq = arg.find('=');
            if (eq == std::string::npos)
                opts[arg.substr(2)] = "1";
            else
                opts[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
        } else {
            pos.push_back(arg);
        }
    }
}

#pragma GCC diagnostic pop

bool
CliArgs::has(const std::string &key) const
{
    return opts.count(key) != 0;
}

std::string
CliArgs::get(const std::string &key, const std::string &def) const
{
    auto it = opts.find(key);
    return it == opts.end() ? def : it->second;
}

std::int64_t
CliArgs::getInt(const std::string &key, std::int64_t def) const
{
    auto it = opts.find(key);
    if (it == opts.end())
        return def;
    std::int64_t v;
    if (!parseInt(it->second, v))
        fatal("option --%s expects an integer, got '%s'", key.c_str(),
              it->second.c_str());
    return v;
}

double
CliArgs::getDouble(const std::string &key, double def) const
{
    auto it = opts.find(key);
    if (it == opts.end())
        return def;
    double v;
    if (!parseDouble(it->second, v))
        fatal("option --%s expects a number, got '%s'", key.c_str(),
              it->second.c_str());
    return v;
}

bool
CliArgs::getBool(const std::string &key, bool def) const
{
    auto it = opts.find(key);
    if (it == opts.end())
        return def;
    std::string v = toLower(it->second);
    return v == "1" || v == "true" || v == "yes" || v == "on";
}

namespace {

ClassifierKind
parseClassifier(const std::string &s)
{
    std::string v = toLower(s);
    if (v == "none")
        return ClassifierKind::None;
    if (v == "annotation")
        return ClassifierKind::Annotation;
    if (v == "spbase")
        return ClassifierKind::SpBase;
    if (v == "oracle")
        return ClassifierKind::Oracle;
    if (v == "predictor")
        return ClassifierKind::Predictor;
    if (v == "replicate")
        return ClassifierKind::Replicate;
    fatal("unknown classifier '%s'", s.c_str());
}

} // namespace

void
applyOverrides(MachineConfig &cfg, const CliArgs &args)
{
    auto intOpt = [&](const char *key, auto &field) {
        if (args.has(key))
            field = static_cast<std::remove_reference_t<decltype(field)>>(
                args.getInt(key, 0));
    };
    auto sizeOpt = [&](const char *key, std::uint32_t &field) {
        if (args.has(key)) {
            std::uint64_t v;
            if (!parseSize(args.get(key), v))
                fatal("option --%s expects a size (e.g. 2K)", key);
            field = static_cast<std::uint32_t>(v);
        }
    };

    intOpt("width", cfg.issueWidth);
    if (args.has("width")) {
        cfg.fetchWidth = cfg.issueWidth;
        cfg.commitWidth = cfg.issueWidth;
    }
    intOpt("rob", cfg.robSize);
    intOpt("lsq", cfg.lsqSize);
    intOpt("lvaq", cfg.lvaqSize);
    intOpt("l1.ports", cfg.l1.ports);
    sizeOpt("l1.size", cfg.l1.sizeBytes);
    intOpt("l1.assoc", cfg.l1.assoc);
    intOpt("l1.lat", cfg.l1.hitLatency);
    intOpt("l1.banks", cfg.l1.banks);
    intOpt("l1.mshrs", cfg.l1.mshrs);
    intOpt("lvc.ports", cfg.lvc.ports);
    intOpt("lvc.banks", cfg.lvc.banks);
    intOpt("lvc.mshrs", cfg.lvc.mshrs);
    sizeOpt("lvc.size", cfg.lvc.sizeBytes);
    intOpt("lvc.assoc", cfg.lvc.assoc);
    intOpt("lvc.lat", cfg.lvc.hitLatency);
    intOpt("l2.lat", cfg.l2.hitLatency);
    intOpt("mem.lat", cfg.memLatency);
    if (args.has("lvc"))
        cfg.lvcEnabled = args.getBool("lvc");
    if (args.has("classifier"))
        cfg.classifier = parseClassifier(args.get("classifier"));
    if (args.has("fastfwd"))
        cfg.fastForward = args.getBool("fastfwd");
    intOpt("combining", cfg.combining);

    cfg.validate();
}

} // namespace ddsim::config
