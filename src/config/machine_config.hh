/**
 * @file
 * MachineConfig: every knob of the simulated machine, defaulted to the
 * paper's Table 1 base model. Presets in config/presets.hh build the
 * "(N+M)" configurations used throughout the evaluation.
 */

#ifndef DDSIM_CONFIG_MACHINE_CONFIG_HH_
#define DDSIM_CONFIG_MACHINE_CONFIG_HH_

#include <cstdint>
#include <string>

#include "util/types.hh"

namespace ddsim::config {

/** Geometry and timing of one cache. */
struct CacheParams
{
    std::uint32_t sizeBytes = 0;
    std::uint32_t assoc = 1;
    std::uint32_t lineBytes = 32;
    Cycle hitLatency = 1;
    int ports = 1;
    /**
     * 0 = ideal multi-porting (the paper's footnote 8: any N accesses
     * per cycle). A power of two selects the interleaved-banks model
     * instead: single-ported banks chosen by line address, so
     * same-bank accesses conflict — the realistic technique whose
     * drawbacks (Section 1) motivate data decoupling.
     */
    int banks = 0;
    /** Outstanding-miss capacity (the caches are lockup-free). */
    int mshrs = 32;

    std::uint32_t numSets() const
    {
        return sizeBytes / (assoc * lineBytes);
    }
};

/** How memory instructions are classified into local / non-local. */
enum class ClassifierKind : std::uint8_t
{
    None,       ///< Everything goes to the LSQ (no decoupling).
    Annotation, ///< Trust the compiler's per-instruction local bit.
    SpBase,     ///< Hardware heuristic: base register is sp or fp.
    Oracle,     ///< Perfect: actual effective address in stack region.
    Predictor,  ///< Annotation + 1-bit region predictor w/ recovery.
    Replicate,  ///< Paper footnote 3: insert every memory access into
                ///< both queues and kill the wrong copy when the
                ///< address resolves — no prediction, no recovery,
                ///< at the cost of double queue occupancy.
    StaticHybrid, ///< ddlint verdict table: decided instructions
                  ///< steer statically; only Ambiguous ones consult
                  ///< the region predictor (with recovery).
};

const char *classifierName(ClassifierKind kind);

/** Complete machine description. Defaults = Table 1. */
struct MachineConfig
{
    // ---- Core ----
    int fetchWidth = 16;
    int issueWidth = 16;
    int commitWidth = 16;
    int robSize = 128;
    int lsqSize = 64;
    int lvaqSize = 64;

    // ---- Functional units (Table 1) ----
    int numIntAlu = 16;
    int numFpAlu = 16;
    int numIntMultDiv = 4;
    int numFpMultDiv = 4;

    // ---- Memory hierarchy ----
    /** L1 data cache: 32 KB 2-way, 2-cycle hit. Ports = the paper's N. */
    CacheParams l1{32 * 1024, 2, 32, 2, 4};
    /** LVC: 2 KB direct-mapped, 1-cycle hit. Ports = the paper's M. */
    CacheParams lvc{2 * 1024, 1, 32, 1, 2};
    bool lvcEnabled = false;
    /** L2: 512 KB 4-way, 12-cycle. Shared by L1 and LVC. */
    CacheParams l2{512 * 1024, 4, 32, 12, 16};
    /** Main memory: 50 cycles, fully interleaved (no contention). */
    Cycle memLatency = 50;

    // ---- Decoupling (the paper's contribution) ----
    ClassifierKind classifier = ClassifierKind::None;
    /** Fast data forwarding in the LVAQ (Section 2.2.2). */
    bool fastForward = false;
    /**
     * Access-combining degree: an LVC port may merge up to this many
     * consecutive same-line LVAQ accesses. 1 disables combining.
     */
    int combining = 1;
    /** Store-to-load forwarding latency inside a queue (Section 3.1). */
    Cycle forwardLatency = 1;
    /** Pipeline refill penalty for a classifier misprediction. */
    Cycle mispredictPenalty = 8;

    /** "(N+M)" notation string, e.g. "(3+2)". */
    std::string notation() const;
    /** Longer human-readable description. */
    std::string describe() const;

    /** Sanity-check all parameters; raises ConfigError (naming the
     *  offending field) on degenerate values. */
    void validate() const;
};

} // namespace ddsim::config

#endif // DDSIM_CONFIG_MACHINE_CONFIG_HH_
