/**
 * @file
 * Command-line parsing for the bench and example binaries: generic
 * "--key=value" options plus MachineConfig overrides.
 */

#ifndef DDSIM_CONFIG_CLI_HH_
#define DDSIM_CONFIG_CLI_HH_

#include <map>
#include <string>
#include <vector>

#include "config/machine_config.hh"

namespace ddsim::config {

/** Parsed command line: options plus positional arguments. */
class CliArgs
{
  public:
    /**
     * Parse argv. Accepted forms: "--key=value", "--flag" (value "1").
     * Anything else is positional.
     */
    CliArgs(int argc, const char *const *argv);

    bool has(const std::string &key) const;
    std::string get(const std::string &key,
                    const std::string &def = "") const;
    std::int64_t getInt(const std::string &key, std::int64_t def) const;
    double getDouble(const std::string &key, double def) const;
    bool getBool(const std::string &key, bool def = false) const;

    const std::vector<std::string> &positional() const { return pos; }
    const std::map<std::string, std::string> &options() const
    {
        return opts;
    }

  private:
    std::map<std::string, std::string> opts;
    std::vector<std::string> pos;
};

/**
 * Apply "--key=value" overrides to a machine configuration. Recognized
 * keys: width, rob, lsq, lvaq, l1.ports/size/assoc/lat,
 * lvc.ports/size/assoc/lat, l2.lat, mem.lat, classifier, fastfwd,
 * combining. Unknown "cfg."-prefixed keys are fatal; other keys are
 * ignored (they belong to the harness).
 */
void applyOverrides(MachineConfig &cfg, const CliArgs &args);

} // namespace ddsim::config

#endif // DDSIM_CONFIG_CLI_HH_
