/**
 * @file
 * Command-line parsing for the bench and example binaries: generic
 * "--key=value" options plus MachineConfig overrides.
 */

#ifndef DDSIM_CONFIG_CLI_HH_
#define DDSIM_CONFIG_CLI_HH_

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "config/machine_config.hh"

namespace ddsim::config {

/**
 * Parsed command line: options plus positional arguments.
 *
 * Every option a program actually consults (through has()/get*())
 * lands in a known-key registry; once all queries have run, a call to
 * rejectUnknown() turns any leftover "--option" — i.e. a typo like
 * "--l1.siez=64K" that would otherwise silently no-op an experiment —
 * into a fatal() with a did-you-mean suggestion. Options appearing
 * after a bare "--" are exempt (the passthrough escape for wrappers
 * that add their own keys).
 */
class CliArgs
{
  public:
    /**
     * Parse argv. Accepted forms: "--key=value", "--flag" (value "1").
     * A bare "--" marks every later option as passthrough (never
     * rejected). Anything else is positional.
     */
    CliArgs(int argc, const char *const *argv);

    bool has(const std::string &key) const;
    std::string get(const std::string &key,
                    const std::string &def = "") const;
    std::int64_t getInt(const std::string &key, std::int64_t def) const;
    double getDouble(const std::string &key, double def) const;
    bool getBool(const std::string &key, bool def = false) const;

    /**
     * Read a megabyte count and return it as bytes. The naive
     * `getInt() << 20` both wraps a negative value around to an
     * enormous budget and silently shift-overflows large ones; this
     * accessor raises ConfigError (named after @p key) for a
     * non-integer, negative, or overflowing value instead.
     */
    std::size_t getMbBytes(const std::string &key,
                           std::size_t defBytes) const;

    /**
     * Read a non-negative seconds value (fractions allowed: lease and
     * watchdog intervals are sub-second in tests). Raises ConfigError
     * (named after @p key) for a non-numeric or negative value —
     * getDouble()'s silent acceptance of "-3" would turn a typo into
     * a lease that never expires.
     */
    double getSeconds(const std::string &key, double def) const;

    /**
     * Register @p key as recognized without querying it (for options
     * only meaningful in branches the current invocation skipped).
     */
    void markKnown(const std::string &key) const;

    /**
     * fatal() on the first parsed "--option" that no accessor has
     * queried and no markKnown() registered, with the closest known
     * key suggested. Call after all option queries have run.
     */
    void rejectUnknown() const;

    const std::vector<std::string> &positional() const { return pos; }
    const std::map<std::string, std::string> &options() const
    {
        return opts;
    }

  private:
    std::map<std::string, std::string> opts;
    std::vector<std::string> pos;
    /** Keys some accessor consulted (mutable: queries are logically
     *  const but feed rejectUnknown's registry). */
    mutable std::set<std::string> knownKeys;
};

/**
 * Apply "--key=value" overrides to a machine configuration. Recognized
 * keys: width, rob, lsq, lvaq, l1.ports/size/assoc/lat,
 * lvc.ports/size/assoc/lat, l2.lat, mem.lat, classifier, fastfwd,
 * combining. Unknown "cfg."-prefixed keys are fatal; other keys are
 * ignored (they belong to the harness).
 */
void applyOverrides(MachineConfig &cfg, const CliArgs &args);

} // namespace ddsim::config

#endif // DDSIM_CONFIG_CLI_HH_
