/**
 * @file
 * JSON export of a stats Group tree: the machine-readable counterpart
 * of formatter.hh's text/CSV dumps. The tree shape (groups containing
 * stats and child groups) is preserved, histograms export their full
 * bucket vectors, and the standalone document carries a schema tag so
 * downstream tooling can detect format drift.
 */

#ifndef DDSIM_STATS_JSON_HH_
#define DDSIM_STATS_JSON_HH_

#include <iosfwd>
#include <string>

#include "stats/group.hh"
#include "util/json.hh"

namespace ddsim::stats {

/** Schema identifier stamped on standalone stat dumps. */
inline constexpr const char *kStatsSchema = "ddsim-stats-v1";

/** Options controlling the JSON dump. */
struct JsonFormatOptions
{
    bool includeDesc = false; ///< Emit per-stat description strings.
    bool includeZero = true;  ///< Emit stats that are still zero.
    int indent = 2;           ///< Spaces per level; 0 = compact.
};

/**
 * Write @p group and its descendants as one JSON object into an
 * already-positioned writer (value position). Shape:
 *
 *   { "name": "cpu",
 *     "stats": [ {"name": "cycles", "value": 123}, ... ],
 *     "groups": [ { ... child ... }, ... ] }
 *
 * Histogram stats additionally carry "samples", "min", "max", "mean",
 * "bucket_width", "buckets" (regular-bucket counts) and "overflow".
 */
void writeGroupJson(JsonWriter &w, const Group &group,
                    const JsonFormatOptions &opts = {});

/**
 * Dump @p root as a complete, schema-versioned JSON document:
 *   { "schema": "ddsim-stats-v1", "stats": { ...tree... } }
 */
void dumpJson(const Group &root, std::ostream &os,
              const JsonFormatOptions &opts = {});

/** Convenience: dumpJson into a string. */
std::string toJson(const Group &root,
                   const JsonFormatOptions &opts = {});

} // namespace ddsim::stats

#endif // DDSIM_STATS_JSON_HH_
