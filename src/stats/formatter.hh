/**
 * @file
 * Renders a stats Group tree as aligned text (gem5 stats.txt style) or
 * CSV rows.
 */

#ifndef DDSIM_STATS_FORMATTER_HH_
#define DDSIM_STATS_FORMATTER_HH_

#include <iosfwd>
#include <string>

#include "stats/group.hh"

namespace ddsim::stats {

/** Options controlling text output. */
struct FormatOptions
{
    bool skipZero = true;       ///< Omit stats that are still zero.
    int nameWidth = 44;         ///< Column width for the stat path.
    int valueWidth = 16;        ///< Column width for the value.
};

/** Dump @p root and descendants as aligned "path value # desc" lines. */
void dumpText(const Group &root, std::ostream &os,
              const FormatOptions &opts = {});

/** Dump as "path,value" CSV lines with a header row. */
void dumpCsv(const Group &root, std::ostream &os);

/** Convenience: text dump into a string. */
std::string toText(const Group &root, const FormatOptions &opts = {});

} // namespace ddsim::stats

#endif // DDSIM_STATS_FORMATTER_HH_
