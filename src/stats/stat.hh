/**
 * @file
 * Minimal statistics package, modelled after gem5's: named counters and
 * derived formulas that register themselves with a Group and can be
 * dumped as text or CSV at the end of a simulation.
 */

#ifndef DDSIM_STATS_STAT_HH_
#define DDSIM_STATS_STAT_HH_

#include <cstdint>
#include <functional>
#include <string>

namespace ddsim::stats {

class Group;

/** Base class for all statistics: a name, a description and a value. */
class StatBase
{
  public:
    StatBase(Group *parent, std::string name, std::string desc);
    virtual ~StatBase() = default;

    StatBase(const StatBase &) = delete;
    StatBase &operator=(const StatBase &) = delete;

    const std::string &name() const { return statName; }
    const std::string &desc() const { return statDesc; }

    /** Scalar view of the stat for reporting. */
    virtual double report() const = 0;

    /** Reset to the initial (zero) state. */
    virtual void reset() = 0;

    /** True if the stat has never been touched (suppress in output). */
    virtual bool zero() const { return report() == 0.0; }

  private:
    std::string statName;
    std::string statDesc;
};

/** A simple monotonically-updated counter. */
class Scalar : public StatBase
{
  public:
    Scalar(Group *parent, std::string name, std::string desc)
        : StatBase(parent, std::move(name), std::move(desc))
    {}

    Scalar &operator++() { ++val; return *this; }
    Scalar &operator+=(std::uint64_t v) { val += v; return *this; }
    void set(std::uint64_t v) { val = v; }

    std::uint64_t value() const { return val; }
    double report() const override { return static_cast<double>(val); }
    void reset() override { val = 0; }

  private:
    std::uint64_t val = 0;
};

/** A derived statistic computed on demand from other stats. */
class Formula : public StatBase
{
  public:
    using Fn = std::function<double()>;

    Formula(Group *parent, std::string name, std::string desc, Fn fn)
        : StatBase(parent, std::move(name), std::move(desc)),
          func(std::move(fn))
    {}

    double report() const override { return func ? func() : 0.0; }
    void reset() override {}
    bool zero() const override { return false; }

  private:
    Fn func;
};

/** Convenience: a formula computing numer/denom with 0/0 -> 0. */
double safeRatio(double numer, double denom);

} // namespace ddsim::stats

#endif // DDSIM_STATS_STAT_HH_
