#include "stats/formatter.hh"

#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace ddsim::stats {

namespace {

void
dumpGroupText(const Group &g, std::ostream &os, const FormatOptions &opts)
{
    std::string prefix = g.path();
    if (!prefix.empty())
        prefix += ".";
    for (const StatBase *s : g.stats()) {
        if (opts.skipZero && s->zero())
            continue;
        double v = s->report();
        std::ostringstream val;
        if (v == std::floor(v) && std::abs(v) < 1e15)
            val << static_cast<long long>(v);
        else
            val << std::fixed << std::setprecision(6) << v;
        os << std::left << std::setw(opts.nameWidth)
           << (prefix + s->name())
           << std::right << std::setw(opts.valueWidth) << val.str();
        if (!s->desc().empty())
            os << "  # " << s->desc();
        os << "\n";
    }
    for (const Group *c : g.children())
        dumpGroupText(*c, os, opts);
}

void
dumpGroupCsv(const Group &g, std::ostream &os)
{
    std::string prefix = g.path();
    if (!prefix.empty())
        prefix += ".";
    for (const StatBase *s : g.stats()) {
        os << prefix << s->name() << ","
           << std::setprecision(12) << s->report() << "\n";
    }
    for (const Group *c : g.children())
        dumpGroupCsv(*c, os);
}

} // namespace

void
dumpText(const Group &root, std::ostream &os, const FormatOptions &opts)
{
    dumpGroupText(root, os, opts);
}

void
dumpCsv(const Group &root, std::ostream &os)
{
    os << "stat,value\n";
    dumpGroupCsv(root, os);
}

std::string
toText(const Group &root, const FormatOptions &opts)
{
    std::ostringstream ss;
    dumpText(root, ss, opts);
    return ss.str();
}

} // namespace ddsim::stats
