#include "stats/stat.hh"

#include "stats/group.hh"

namespace ddsim::stats {

StatBase::StatBase(Group *parent, std::string name, std::string desc)
    : statName(std::move(name)), statDesc(std::move(desc))
{
    if (parent)
        parent->addStat(this);
}

double
safeRatio(double numer, double denom)
{
    if (denom == 0.0)
        return 0.0;
    return numer / denom;
}

} // namespace ddsim::stats
