#include "stats/histogram.hh"

#include <algorithm>
#include <cmath>

#include "util/log.hh"

namespace ddsim::stats {

Histogram::Histogram(Group *parent, std::string name, std::string desc,
                     int numBuckets, std::uint64_t bucketWidth)
    : StatBase(parent, std::move(name), std::move(desc)),
      buckets(static_cast<size_t>(numBuckets), 0),
      width(bucketWidth)
{
    if (numBuckets <= 0 || bucketWidth == 0)
        panic("Histogram: invalid geometry (%d buckets, width %llu)",
              numBuckets, (unsigned long long)bucketWidth);
}

void
Histogram::sample(std::uint64_t value, std::uint64_t count)
{
    if (count == 0)
        return;
    std::uint64_t idx = value / width;
    if (idx < buckets.size())
        buckets[idx] += count;
    else
        overflowCount += count;
    if (total == 0) {
        minVal = maxVal = value;
    } else {
        minVal = std::min(minVal, value);
        maxVal = std::max(maxVal, value);
    }
    total += count;
    sum += value * count;
}

double
Histogram::mean() const
{
    if (total == 0)
        return 0.0;
    return static_cast<double>(sum) / static_cast<double>(total);
}

std::uint64_t
Histogram::percentile(double fraction) const
{
    if (total == 0)
        return 0;
    fraction = std::clamp(fraction, 0.0, 1.0);
    // Ceiling, not truncation: the p-th percentile is the smallest
    // value with at least ceil(p * total) samples at or below it, and
    // at least one sample (a truncated or zero `needed` would stop in
    // a leading bucket that holds no samples at all).
    std::uint64_t needed = static_cast<std::uint64_t>(
        std::ceil(fraction * static_cast<double>(total)));
    needed = std::max<std::uint64_t>(needed, 1);
    std::uint64_t seen = 0;
    for (size_t i = 0; i < buckets.size(); ++i) {
        seen += buckets[i];
        if (seen >= needed) {
            std::uint64_t bHi =
                (static_cast<std::uint64_t>(i) + 1) * width - 1;
            return std::min(bHi, maxVal);
        }
    }
    // Lands in the overflow bucket: all that is known about those
    // samples is that the largest equals maxVal.
    return maxVal;
}

double
Histogram::fractionBetween(std::uint64_t lo, std::uint64_t hi) const
{
    if (total == 0 || hi < lo)
        return 0.0;
    double count = 0.0;
    for (size_t i = 0; i < buckets.size(); ++i) {
        if (buckets[i] == 0)
            continue;
        std::uint64_t bLo = static_cast<std::uint64_t>(i) * width;
        std::uint64_t bHi = bLo + width - 1;
        if (bHi < lo || bLo > hi)
            continue;
        // Partially covered buckets contribute proportionally to the
        // overlap, assuming samples uniform within a bucket. (The old
        // all-or-nothing rule dropped every partially covered bucket,
        // so e.g. [0, 8] with width 10 counted as zero.)
        std::uint64_t oLo = std::max(bLo, lo);
        std::uint64_t oHi = std::min(bHi, hi);
        count += static_cast<double>(buckets[i]) *
                 (static_cast<double>(oHi - oLo + 1) /
                  static_cast<double>(width));
    }
    // The overflow bucket spans [numBuckets*width, maxVal]; it has no
    // internal resolution, so it contributes only when the query range
    // covers it entirely. Either way it stays in the denominator.
    if (overflowCount != 0 &&
        lo <= buckets.size() * width && hi >= maxVal)
        count += static_cast<double>(overflowCount);
    return count / static_cast<double>(total);
}

void
Histogram::reset()
{
    std::fill(buckets.begin(), buckets.end(), 0);
    overflowCount = 0;
    total = 0;
    sum = 0;
    minVal = maxVal = 0;
}

} // namespace ddsim::stats
