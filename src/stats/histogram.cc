#include "stats/histogram.hh"

#include <algorithm>

#include "util/log.hh"

namespace ddsim::stats {

Histogram::Histogram(Group *parent, std::string name, std::string desc,
                     int numBuckets, std::uint64_t bucketWidth)
    : StatBase(parent, std::move(name), std::move(desc)),
      buckets(static_cast<size_t>(numBuckets), 0),
      width(bucketWidth)
{
    if (numBuckets <= 0 || bucketWidth == 0)
        panic("Histogram: invalid geometry (%d buckets, width %llu)",
              numBuckets, (unsigned long long)bucketWidth);
}

void
Histogram::sample(std::uint64_t value, std::uint64_t count)
{
    if (count == 0)
        return;
    std::uint64_t idx = value / width;
    if (idx < buckets.size())
        buckets[idx] += count;
    else
        overflowCount += count;
    if (total == 0) {
        minVal = maxVal = value;
    } else {
        minVal = std::min(minVal, value);
        maxVal = std::max(maxVal, value);
    }
    total += count;
    sum += value * count;
}

double
Histogram::mean() const
{
    if (total == 0)
        return 0.0;
    return static_cast<double>(sum) / static_cast<double>(total);
}

std::uint64_t
Histogram::percentile(double fraction) const
{
    if (total == 0)
        return 0;
    fraction = std::clamp(fraction, 0.0, 1.0);
    std::uint64_t needed = static_cast<std::uint64_t>(
        fraction * static_cast<double>(total));
    std::uint64_t seen = 0;
    for (size_t i = 0; i < buckets.size(); ++i) {
        seen += buckets[i];
        if (seen >= needed)
            return (static_cast<std::uint64_t>(i) + 1) * width - 1;
    }
    return maxVal;
}

double
Histogram::fractionBetween(std::uint64_t lo, std::uint64_t hi) const
{
    if (total == 0 || hi < lo)
        return 0.0;
    std::uint64_t count = 0;
    for (size_t i = 0; i < buckets.size(); ++i) {
        std::uint64_t bLo = static_cast<std::uint64_t>(i) * width;
        std::uint64_t bHi = bLo + width - 1;
        if (bLo >= lo && bHi <= hi)
            count += buckets[i];
    }
    return static_cast<double>(count) / static_cast<double>(total);
}

void
Histogram::reset()
{
    std::fill(buckets.begin(), buckets.end(), 0);
    overflowCount = 0;
    total = 0;
    sum = 0;
    minVal = maxVal = 0;
}

} // namespace ddsim::stats
