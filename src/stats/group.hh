/**
 * @file
 * Hierarchical grouping of statistics. Each simulated component owns a
 * Group; stats register themselves on construction and the tree can be
 * walked for dumping or resetting.
 */

#ifndef DDSIM_STATS_GROUP_HH_
#define DDSIM_STATS_GROUP_HH_

#include <string>
#include <vector>

#include "stats/stat.hh"

namespace ddsim::stats {

/** A named collection of stats and child groups. */
class Group
{
  public:
    /**
     * @param parent Enclosing group (nullptr for a root).
     * @param name Component name, e.g. "cpu" or "l1d".
     */
    Group(Group *parent, std::string name);
    virtual ~Group();

    Group(const Group &) = delete;
    Group &operator=(const Group &) = delete;

    /** Register a stat (called from StatBase's constructor). */
    void addStat(StatBase *stat);

    /** Full dotted path from the root, e.g. "cpu.lsq". */
    std::string path() const;

    const std::string &name() const { return groupName; }
    const std::vector<StatBase *> &stats() const { return statList; }
    const std::vector<Group *> &children() const { return childList; }

    /** Look up a stat by dotted path relative to this group. */
    const StatBase *find(const std::string &dottedPath) const;

    /** Reset all stats in this group and its descendants. */
    void resetAll();

  private:
    Group *parent;
    std::string groupName;
    std::vector<StatBase *> statList;
    std::vector<Group *> childList;

    void removeChild(Group *child);
};

} // namespace ddsim::stats

#endif // DDSIM_STATS_GROUP_HH_
