#include "stats/json.hh"

#include <ostream>
#include <sstream>

#include "stats/histogram.hh"

namespace ddsim::stats {

namespace {

void
writeStatJson(JsonWriter &w, const StatBase &stat,
              const JsonFormatOptions &opts)
{
    w.beginObject();
    w.field("name", stat.name());
    if (opts.includeDesc)
        w.field("desc", stat.desc());

    if (auto *s = dynamic_cast<const Scalar *>(&stat)) {
        // Exact integer, not through the double-valued report() path.
        w.field("value", s->value());
    } else if (auto *h = dynamic_cast<const Histogram *>(&stat)) {
        w.field("value", h->mean());
        w.field("samples", h->samples());
        w.field("min", h->minValue());
        w.field("max", h->maxValue());
        w.field("bucket_width", h->bucketWidth());
        w.key("buckets");
        w.beginArray();
        for (int i = 0; i < h->numBuckets(); ++i)
            w.value(h->bucket(i));
        w.endArray();
        w.field("overflow", h->overflow());
    } else {
        w.field("value", stat.report());
    }
    w.endObject();
}

} // namespace

void
writeGroupJson(JsonWriter &w, const Group &group,
               const JsonFormatOptions &opts)
{
    w.beginObject();
    w.field("name", group.name());

    w.key("stats");
    w.beginArray();
    for (const StatBase *stat : group.stats()) {
        if (!opts.includeZero && stat->zero())
            continue;
        writeStatJson(w, *stat, opts);
    }
    w.endArray();

    w.key("groups");
    w.beginArray();
    for (const Group *child : group.children())
        writeGroupJson(w, *child, opts);
    w.endArray();

    w.endObject();
}

void
dumpJson(const Group &root, std::ostream &os,
         const JsonFormatOptions &opts)
{
    JsonWriter w(os, opts.indent);
    w.beginObject();
    w.field("schema", kStatsSchema);
    w.key("stats");
    writeGroupJson(w, root, opts);
    w.endObject();
    os << '\n';
}

std::string
toJson(const Group &root, const JsonFormatOptions &opts)
{
    std::ostringstream os;
    dumpJson(root, os, opts);
    return os.str();
}

} // namespace ddsim::stats
