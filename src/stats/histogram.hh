/**
 * @file
 * Sample-based distribution statistics: a linear-bucket histogram with
 * overflow, plus running min/max/mean. Used for frame-size and queue
 * occupancy distributions.
 */

#ifndef DDSIM_STATS_HISTOGRAM_HH_
#define DDSIM_STATS_HISTOGRAM_HH_

#include <cstdint>
#include <vector>

#include "stats/stat.hh"

namespace ddsim::stats {

/**
 * Histogram over non-negative integer samples with fixed-width linear
 * buckets [0, width), [width, 2*width), ..., plus an overflow bucket.
 */
class Histogram : public StatBase
{
  public:
    /**
     * @param numBuckets Number of regular buckets.
     * @param bucketWidth Width of each bucket (>= 1).
     */
    Histogram(Group *parent, std::string name, std::string desc,
              int numBuckets, std::uint64_t bucketWidth);

    /** Record one sample. */
    void sample(std::uint64_t value, std::uint64_t count = 1);

    std::uint64_t samples() const { return total; }
    std::uint64_t minValue() const { return total ? minVal : 0; }
    std::uint64_t maxValue() const { return total ? maxVal : 0; }
    double mean() const;

    /** Count in regular bucket @p i. */
    std::uint64_t bucket(int i) const { return buckets.at(i); }
    std::uint64_t overflow() const { return overflowCount; }
    int numBuckets() const { return static_cast<int>(buckets.size()); }
    std::uint64_t bucketWidth() const { return width; }

    /**
     * Smallest sample value v such that at least
     * ceil(@p fraction * samples()) samples (at least one) are <= v,
     * computed from buckets at width resolution and clamped to
     * maxValue(). A percentile landing in the overflow bucket reports
     * maxValue().
     */
    std::uint64_t percentile(double fraction) const;

    /**
     * Fraction of samples falling in [lo, hi]. Partially covered
     * buckets contribute proportionally to the overlap (samples
     * assumed uniform within a bucket). The overflow bucket counts
     * only when [lo, hi] covers all of [numBuckets*width, maxValue()],
     * but always stays in the denominator.
     */
    double fractionBetween(std::uint64_t lo, std::uint64_t hi) const;

    double report() const override { return mean(); }
    void reset() override;
    bool zero() const override { return total == 0; }

  private:
    std::vector<std::uint64_t> buckets;
    std::uint64_t width;
    std::uint64_t overflowCount = 0;
    std::uint64_t total = 0;
    std::uint64_t sum = 0;
    std::uint64_t minVal = 0;
    std::uint64_t maxVal = 0;
};

} // namespace ddsim::stats

#endif // DDSIM_STATS_HISTOGRAM_HH_
