#include "stats/group.hh"

#include <algorithm>

#include "util/str.hh"

namespace ddsim::stats {

Group::Group(Group *parent, std::string name)
    : parent(parent), groupName(std::move(name))
{
    if (parent)
        parent->childList.push_back(this);
}

Group::~Group()
{
    if (parent)
        parent->removeChild(this);
}

void
Group::removeChild(Group *child)
{
    auto it = std::find(childList.begin(), childList.end(), child);
    if (it != childList.end())
        childList.erase(it);
}

void
Group::addStat(StatBase *stat)
{
    statList.push_back(stat);
}

std::string
Group::path() const
{
    if (!parent || parent->groupName.empty())
        return groupName;
    std::string p = parent->path();
    if (p.empty())
        return groupName;
    return p + "." + groupName;
}

const StatBase *
Group::find(const std::string &dottedPath) const
{
    auto parts = split(dottedPath, '.');
    const Group *g = this;
    for (size_t i = 0; i + 1 < parts.size(); ++i) {
        const Group *next = nullptr;
        for (Group *c : g->childList) {
            if (c->groupName == parts[i]) {
                next = c;
                break;
            }
        }
        if (!next)
            return nullptr;
        g = next;
    }
    const std::string &leaf = parts.back();
    for (StatBase *s : g->statList) {
        if (s->name() == leaf)
            return s;
    }
    return nullptr;
}

void
Group::resetAll()
{
    for (StatBase *s : statList)
        s->reset();
    for (Group *c : childList)
        c->resetAll();
}

} // namespace ddsim::stats
