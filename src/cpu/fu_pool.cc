#include "cpu/fu_pool.hh"

#include "util/log.hh"

namespace ddsim::cpu {

using isa::FuClass;

FuPool::FuPool(const config::MachineConfig &cfg)
{
    busyUntil[0].assign(static_cast<std::size_t>(cfg.numIntAlu), 0);
    busyUntil[1].assign(static_cast<std::size_t>(cfg.numIntMultDiv), 0);
    busyUntil[2].assign(static_cast<std::size_t>(cfg.numFpAlu), 0);
    busyUntil[3].assign(static_cast<std::size_t>(cfg.numFpMultDiv), 0);
}

int
FuPool::poolIndex(FuClass fc)
{
    switch (fc) {
      case FuClass::IntAlu:
        return 0;
      case FuClass::IntMult:
      case FuClass::IntDiv:
        return 1;
      case FuClass::FpAlu:
        return 2;
      case FuClass::FpMult:
      case FuClass::FpDiv:
        return 3;
      case FuClass::MemPort:
      case FuClass::NumClasses:
        break;
    }
    panic("no functional unit pool for class %d", static_cast<int>(fc));
}

bool
FuPool::tryIssue(FuClass fc, Cycle now, int latency, bool pipelined)
{
    std::size_t pi = static_cast<std::size_t>(poolIndex(fc));
    auto &pool = busyUntil[pi];
    std::size_t n = pool.size();
    std::size_t start = rotor[pi];
    for (std::size_t k = 0; k < n; ++k) {
        std::size_t u = start + k;
        if (u >= n)
            u -= n;
        Cycle &busy = pool[u];
        if (busy <= now) {
            // A pipelined unit accepts a new operation next cycle; an
            // unpipelined one (the divides) is held for the duration.
            busy = pipelined ? now + 1
                             : now + static_cast<Cycle>(latency);
            rotor[pi] = u + 1 < n ? u + 1 : 0;
            return true;
        }
    }
    return false;
}

int
FuPool::poolSize(FuClass fc) const
{
    return static_cast<int>(
        busyUntil[static_cast<std::size_t>(poolIndex(fc))].size());
}

} // namespace ddsim::cpu
