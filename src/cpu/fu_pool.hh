/**
 * @file
 * Functional unit pool: Table 1's 16 integer ALUs, 16 FP ALUs and the
 * 4 integer + 4 FP combined MULT/DIV units. ALUs and multipliers are
 * pipelined (one issue per unit per cycle); dividers occupy their unit
 * for the full operation latency.
 */

#ifndef DDSIM_CPU_FU_POOL_HH_
#define DDSIM_CPU_FU_POOL_HH_

#include <array>
#include <vector>

#include "config/machine_config.hh"
#include "isa/opcode.hh"
#include "util/types.hh"

namespace ddsim::cpu {

/** Tracks functional unit availability cycle by cycle. */
class FuPool
{
  public:
    explicit FuPool(const config::MachineConfig &cfg);

    /**
     * Try to start an operation of class @p fc at cycle @p now.
     * @return true and reserves a unit on success.
     */
    bool tryIssue(isa::FuClass fc, Cycle now, int latency,
                  bool pipelined);

    /** Units in the pool serving class @p fc. */
    int poolSize(isa::FuClass fc) const;

  private:
    // Physical pools: IntAlu, IntMultDiv, FpAlu, FpMultDiv.
    static constexpr int NumPools = 4;
    std::array<std::vector<Cycle>, NumPools> busyUntil;
    /**
     * Round-robin scan start per pool. Unit identity is invisible to
     * the model (tryIssue answers "is any unit free"), so starting
     * the search after the last grant changes nothing observable but
     * makes the common grant O(1) instead of a scan over the units
     * already granted this cycle.
     */
    std::array<std::size_t, NumPools> rotor{};

    static int poolIndex(isa::FuClass fc);
};

} // namespace ddsim::cpu

#endif // DDSIM_CPU_FU_POOL_HH_
