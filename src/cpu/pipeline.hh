/**
 * @file
 * The out-of-order core: a cycle-accurate model of the paper's
 * six-stage machine (fetch, dispatch, issue, execute, writeback,
 * commit) with an RUU/ROB window, per-stream memory access queues and
 * a perfect front end (Section 3.1).
 *
 * Each simulated cycle runs, in order: commit (stores write their
 * cache, taking port priority), memory tick (loads issue to the
 * caches or forward in-queue), issue (FU and address-generation
 * selection, oldest first), dispatch (rename + steer memory ops into
 * LSQ/LVAQ) and fetch (pull from the functional executor).
 */

#ifndef DDSIM_CPU_PIPELINE_HH_
#define DDSIM_CPU_PIPELINE_HH_

#include <algorithm>
#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "config/machine_config.hh"
#include "core/classifier.hh"
#include "core/mem_queue.hh"
#include "cpu/fu_pool.hh"
#include "cpu/rename.hh"
#include "cpu/rob.hh"
#include "isa/inst.hh"
#include "isa/opcode.hh"
#include "mem/hierarchy.hh"
#include "stats/group.hh"
#include "stats/histogram.hh"
#include "stats/stat.hh"
#include "vm/trace.hh"

namespace ddsim::obs {
class Sampler;
class PipelineTracer;
}

namespace ddsim::cpu {

/**
 * Forward-progress watchdog threshold: a non-empty window that goes
 * this many cycles without a commit is declared deadlocked and the
 * run raises DeadlockError. Far beyond any legitimate stall on this
 * machine (the longest chain is a handful of dependent memory-latency
 * round trips, ~10^2-10^3 cycles).
 */
inline constexpr Cycle kDeadlockCycles = 100000;

/** Hard limits enforced by the run loops (0 = unlimited). */
struct RunGuards
{
    std::uint64_t maxCycles = 0;  ///< Budget on simulated cycles.
    double maxWallSeconds = 0.0;  ///< Budget on host wall-clock time.
};

/** One entry of the last-committed-instructions ring (black box). */
struct CommittedRecord
{
    InstSeq seq = 0;
    std::uint32_t pcIdx = 0;
    isa::Inst inst;
    Cycle cycle = 0;
};

/** Point-in-time structure occupancies (black-box snapshot). */
struct OccupancySnapshot
{
    Cycle cycle = 0;
    Cycle lastCommitCycle = 0;
    int robOccupancy = 0, robSize = 0;
    int lsqOccupancy = 0, lsqSize = 0;
    int lvaqOccupancy = -1, lvaqSize = 0; ///< -1 = no LVAQ.
    std::size_t fetchQueue = 0;
    std::uint64_t fetched = 0;
    std::uint64_t committed = 0;
};

/** The complete simulated processor. */
class Pipeline : public stats::Group
{
  public:
    /**
     * @param parent Stats parent (the run's root group).
     * @param cfg Machine configuration (validated by the caller).
     * @param src Instruction stream — a live vm::Executor or a
     *        vm::TraceReplay; not owned.
     */
    Pipeline(stats::Group *parent, const config::MachineConfig &cfg,
             vm::InstSource &src);

    /**
     * Run until the program halts (or @p maxInsts instructions have
     * been fetched) and the pipeline drains.
     */
    void run(std::uint64_t maxInsts = 0);

    /**
     * Advance until at least @p insts instructions have been fetched
     * (or the stream ends) *without* draining the pipeline — the
     * warmup phase of a sampled simulation.
     */
    void runUntilFetched(std::uint64_t insts);

    /**
     * Zero all statistics (cycles, committed counts, cache and queue
     * counters) while keeping the microarchitectural state — caches
     * stay warm, in-flight instructions stay in flight. Used after
     * warmup.
     */
    void resetStats();

    /** Advance one cycle (exposed for tests). */
    void cycleOnce();

    /**
     * Stream a one-line-per-instruction timing trace (sequence, pc,
     * disassembly, dispatch/ready/commit cycles, memory-queue
     * placement) to @p os as instructions commit. Pass nullptr to
     * stop tracing. Intended for small programs and debugging.
     */
    void setTrace(std::ostream *os) { traceOut = os; }

    /**
     * Attach an interval stats sampler (nullptr to detach). Observed
     * after each commit batch; costs one pointer test per cycle when
     * detached and never perturbs timing.
     */
    void setSampler(obs::Sampler *s) { sampler = s; }

    /**
     * Attach a binary lifecycle tracer (nullptr to detach). The
     * tracer sees fetch/dispatch/issue/commit events; like the
     * sampler, detached operation is a null-pointer test per event
     * site and timing is never affected.
     */
    void setTracer(obs::PipelineTracer *t) { tracer = t; }

    /**
     * Arm the run-loop budgets. The wall-clock deadline starts when
     * this is called, so a warmup phase and the measured run share
     * one budget. Exceeding a budget raises BudgetExceededError from
     * the run loop; a cycle budget never perturbs the timing of runs
     * that finish within it.
     */
    void setGuards(const RunGuards &g);

    /**
     * Keep the last @p n committed instructions in a ring for crash
     * reports (0 disables). Costs one branch per commit when off.
     */
    void enableCommitLog(std::size_t n);

    /** The ring's contents, oldest first. */
    std::vector<CommittedRecord> commitLog() const;

    /** Current structure occupancies, for the black-box writer. */
    OccupancySnapshot snapshotOccupancy() const;

    /**
     * Fault injection: silently drop the @p nth (1-based) wakeup event
     * from now on — the woken instruction never issues and the
     * watchdog must catch the induced deadlock. 0 disarms. Zero-cost
     * when disarmed beyond one counter test per wakeup.
     */
    void armWakeupDrop(std::uint64_t nth) { wakeupDropCountdown = nth; }

    /** True when the stream is exhausted and the pipeline is empty. */
    bool done() const;

    /**
     * Instructions fetched from the source so far (monotonic across
     * resetStats). The batched and sampled drivers use this to
     * synchronise multiple pipelines against one shared decode ring
     * and to drain exactly the in-flight window.
     */
    std::uint64_t fetchedCount() const { return numFetched; }

    /**
     * Functional warming: account @p di to the stream statistics and,
     * for memory operations, touch the caches and train the region
     * predictor as the instruction would have — without advancing
     * time or any other statistic. The sampled engine calls this for
     * every instruction it fast-forwards past so measured windows
     * start with live microarchitectural state instead of state
     * frozen at the previous window's end.
     */
    void warmFunctional(const vm::DynInst &di);

    Cycle now() const { return curCycle; }
    double ipc() const;

    // Component access for tests and benches.
    mem::Hierarchy &hierarchy() { return *memHier; }
    core::MemQueue &lsq() { return *lsqQueue; }
    core::MemQueue *lvaq() { return lvaqQueue.get(); }
    core::Classifier &classifier() { return *memClassifier; }
    vm::StreamStats &streamStats() { return *stream; }
    const config::MachineConfig &machineConfig() const { return cfg; }

    // Stats.
    stats::Scalar numCycles;
    stats::Scalar committedInsts;
    stats::Scalar fetchedInsts;
    stats::Scalar issuedOps;
    stats::Scalar agIssues;          ///< Address generations issued.
    stats::Scalar robFullStalls;     ///< Dispatch halted: ROB full.
    stats::Scalar lsqFullStalls;
    stats::Scalar lvaqFullStalls;
    stats::Scalar commitPortStalls;  ///< Store commit blocked on ports.
    stats::Histogram robOccupancy;   ///< Sampled window occupancy.
    stats::Formula ipcStat;          ///< committed / cycles.

  private:
    config::MachineConfig cfg;
    vm::InstSource &executor;

    std::unique_ptr<mem::Hierarchy> memHier;
    std::unique_ptr<core::Classifier> memClassifier;
    std::unique_ptr<core::MemQueue> lsqQueue;
    std::unique_ptr<core::MemQueue> lvaqQueue;
    std::unique_ptr<vm::StreamStats> stream;
    FuPool fuPool;
    Rob rob;
    RenameTable renameTable;

    /**
     * Fixed-capacity ring of fetched-but-not-dispatched instructions
     * (the seed used a std::deque; the ring never allocates after
     * construction).
     */
    class FetchQueue
    {
      public:
        void init(std::size_t cap) { buf.resize(cap); }
        bool empty() const { return n == 0; }
        std::size_t size() const { return n; }
        std::size_t capacity() const { return buf.size(); }
        const vm::DynInst &front() const { return buf[headPos]; }
        void pop_front()
        {
            headPos = (headPos + 1) % buf.size();
            --n;
        }
        void push_back(const vm::DynInst &di)
        {
            buf[(headPos + n) % buf.size()] = di;
            ++n;
        }

      private:
        std::vector<vm::DynInst> buf;
        std::size_t headPos = 0;
        std::size_t n = 0;
    };

    /**
     * Per-static-instruction decode memo, indexed by pcIdx and built
     * lazily at first dispatch: operand register references and the
     * OpInfo pointer. Pure memoization of the isa:: decode helpers —
     * it replaces their per-dynamic-instruction Format switches and
     * table lookups on the dispatch/issue hot path.
     */
    struct StaticOp
    {
        const isa::OpInfo *info = nullptr; ///< null = not yet decoded
        isa::RegRef srcs[2];
        isa::RegRef dest;
        std::int8_t numSrc = 0;
        bool mem = false;
    };
    std::vector<StaticOp> decodeCache;

    const StaticOp &decoded(const vm::DynInst &di)
    {
        if (di.pcIdx >= decodeCache.size())
            decodeCache.resize(std::max<std::size_t>(
                decodeCache.size() * 2, di.pcIdx + 1));
        StaticOp &s = decodeCache[di.pcIdx];
        if (!s.info) {
            s.info = &isa::opInfo(di.inst.op);
            s.numSrc = static_cast<std::int8_t>(
                isa::srcRegs(di.inst, s.srcs));
            s.dest = isa::destReg(di.inst);
            s.mem = s.info->load || s.info->store;
        }
        return s;
    }

    FetchQueue fetchQueue;
    std::size_t fetchQueueCap;
    std::uint64_t fetchLimit = 0; ///< 0 = unlimited.
    std::uint64_t numFetched = 0;

    Cycle curCycle = 0;
    Cycle lastCommit = 0;
    std::vector<core::LoadCompletion> completions;
    std::ostream *traceOut = nullptr;
    obs::Sampler *sampler = nullptr;
    obs::PipelineTracer *tracer = nullptr;

    // ---- Run guards and crash reporting ----------------------------
    RunGuards guards;
    std::chrono::steady_clock::time_point wallDeadline;
    bool hasWallDeadline = false;
    /** Ring of the last N commits; empty = logging off. */
    std::vector<CommittedRecord> commitRing;
    std::size_t commitRingHead = 0;
    std::size_t commitRingCount = 0;
    /** Countdown to the injected wakeup drop; 0 = disarmed. */
    std::uint64_t wakeupDropCountdown = 0;

    /** Budget checks for the run loops; @p iter rate-limits the
     *  wall-clock read to every 256th iteration. */
    void checkGuards(std::uint64_t iter);
    [[noreturn]] void raiseDeadlock();

    // ---- Event-driven scheduling core ------------------------------
    /**
     * Cycle-bucketed event queue (a timing wheel): push (robIdx, seq)
     * at a cycle, drain everything due at or before `now`. Same-cycle
     * events are mutually independent (they set bits or push store
     * data for distinct entries), so bucket order is free and the
     * wheel replaces a priority queue without any semantic change.
     * Events land within a few hundred cycles (bounded by memory
     * latency); the rare farther ones overflow into a side list.
     */
    class EventRing
    {
      public:
        void push(Cycle c, int idx, InstSeq seq)
        {
            if (c - base < Span) {
                buckets[c & (Span - 1)].push_back({idx, seq});
                ++total;
            } else {
                far.push_back({c, idx, seq});
            }
        }

        /** Earliest pending event cycle, or core::kNoEvent. */
        Cycle nextEvent() const
        {
            Cycle best = core::kNoEvent;
            if (total != 0) {
                for (Cycle c = base; c < base + Span; ++c) {
                    if (!buckets[c & (Span - 1)].empty()) {
                        best = c;
                        break;
                    }
                }
            }
            for (const FarEvent &e : far)
                best = std::min(best, e.cycle);
            return best;
        }

        /** Invoke f(idx, seq) for every event due at cycle <= now. */
        template <class F>
        void drainUpTo(Cycle now, F &&f)
        {
            while (base <= now) {
                if (total == 0 && far.empty()) {
                    base = now + 1;
                    break;
                }
                auto &b = buckets[base & (Span - 1)];
                for (const Event &e : b)
                    f(e.idx, e.seq);
                total -= b.size();
                b.clear();
                ++base;
            }
            if (!far.empty()) {
                for (std::size_t i = 0; i < far.size();) {
                    FarEvent &e = far[i];
                    if (e.cycle <= now) {
                        f(e.idx, e.seq);
                        e = far.back();
                        far.pop_back();
                    } else if (e.cycle - base < Span) {
                        push(e.cycle, e.idx, e.seq);
                        far[i] = far.back();
                        far.pop_back();
                    } else {
                        ++i;
                    }
                }
            }
        }

      private:
        static constexpr Cycle Span = 256; // Power of two.
        struct Event
        {
            int idx;
            InstSeq seq;
        };
        struct FarEvent
        {
            Cycle cycle;
            int idx;
            InstSeq seq;
        };
        std::array<std::vector<Event>, Span> buckets;
        std::vector<FarEvent> far;
        Cycle base = 0;           ///< All events lie at >= base.
        std::size_t total = 0;    ///< Events currently in buckets.
    };

    /**
     * readyEvents holds instructions whose issue-relevant sources all
     * have known completion times; they join the issuable bitmap once
     * their cycle arrives and stay there until they act (FU- or
     * width-blocked entries simply keep their bit). storeDataEvents
     * holds stores whose data-operand push must run at a cycle — the
     * exact cycle the seed's per-window pushStoreData walk would
     * first have pushed.
     */
    EventRing readyEvents;
    EventRing storeDataEvents;
    /** Per-ROB-slot "visit me in the issue scan" bits, age-iterated. */
    std::vector<std::uint64_t> issuableBits;
    /** Last memory tick's scheduling summary, one per queue. */
    core::MemQueue::TickInfo lsqTick, lvaqTick;
    /** A store commit was denied a port this cycle (retries hot). */
    bool commitPortBlocked = false;

    /**
     * All wakeups route through here so the armed fault above can
     * swallow exactly one: the dropped instruction stays
     * un-issuable forever, which is precisely the "lost wakeup" bug
     * class the deadlock watchdog exists to catch.
     */
    void pushReady(Cycle c, int idx, InstSeq seq)
    {
        if (wakeupDropCountdown != 0 && --wakeupDropCountdown == 0)
            return;
        readyEvents.push(c, idx, seq);
    }

    void markIssuable(int idx)
    {
        issuableBits[static_cast<std::size_t>(idx) >> 6] |=
            std::uint64_t{1} << (idx & 63);
    }
    void clearIssuable(int idx)
    {
        issuableBits[static_cast<std::size_t>(idx) >> 6] &=
            ~(std::uint64_t{1} << (idx & 63));
    }

    /** Register @p idx's source edges at dispatch. */
    void registerConsumers(int idx);
    /**
     * Producer @p pIdx's completion time just became known: wake its
     * consumers. @p inIssueStage selects how store-data edges fire
     * (immediately mid-scan, as the seed's walk did, vs deferred to
     * this cycle's issue stage when the completion arrives from the
     * memory stage).
     */
    void onProducerComplete(int pIdx, bool inIssueStage);
    /** Run one issuable entry; false stops the scan (width spent). */
    bool visitIssuable(int idx, int &issued);
    /** Cycle the ROB head becomes commit-eligible, if already known. */
    Cycle headCommitEvent() const;
    /**
     * Cycle skip-ahead: when every pipeline structure is quiescent
     * and the earliest scheduled event is at cycle T > curCycle, jump
     * straight to T, replaying the per-cycle counters (stall charges,
     * occupancy samples) the skipped empty cycles would have accrued.
     * Timing is bit-identical to ticking through them. Only the run
     * loops call this; cycleOnce() alone stays strictly per-cycle.
     */
    void maybeSkipCycles();

    void traceCommit(const RobEntry &e);
    void recordCommit(const RobEntry &e, int idx);

    void commitStage();
    void memoryStage();
    void issueStage();
    void dispatchStage();
    void fetchStage();

    core::MemQueue &queueOf(QueueKind kind);
    bool srcReady(const ProducerTag &tag) const;
    Cycle srcReadyAt(const ProducerTag &tag, Cycle fallback) const;
    void pushStoreData(RobEntry &e);
};

} // namespace ddsim::cpu

#endif // DDSIM_CPU_PIPELINE_HH_
