/**
 * @file
 * The out-of-order core: a cycle-accurate model of the paper's
 * six-stage machine (fetch, dispatch, issue, execute, writeback,
 * commit) with an RUU/ROB window, per-stream memory access queues and
 * a perfect front end (Section 3.1).
 *
 * Each simulated cycle runs, in order: commit (stores write their
 * cache, taking port priority), memory tick (loads issue to the
 * caches or forward in-queue), issue (FU and address-generation
 * selection, oldest first), dispatch (rename + steer memory ops into
 * LSQ/LVAQ) and fetch (pull from the functional executor).
 */

#ifndef DDSIM_CPU_PIPELINE_HH_
#define DDSIM_CPU_PIPELINE_HH_

#include <deque>
#include <iosfwd>
#include <memory>

#include "config/machine_config.hh"
#include "core/classifier.hh"
#include "core/mem_queue.hh"
#include "cpu/fu_pool.hh"
#include "cpu/rename.hh"
#include "cpu/rob.hh"
#include "mem/hierarchy.hh"
#include "stats/group.hh"
#include "stats/histogram.hh"
#include "stats/stat.hh"
#include "vm/executor.hh"

namespace ddsim::cpu {

/** The complete simulated processor. */
class Pipeline : public stats::Group
{
  public:
    /**
     * @param parent Stats parent (the run's root group).
     * @param cfg Machine configuration (validated by the caller).
     * @param exec Functional executor providing the instruction
     *        stream; not owned.
     */
    Pipeline(stats::Group *parent, const config::MachineConfig &cfg,
             vm::Executor &exec);

    /**
     * Run until the program halts (or @p maxInsts instructions have
     * been fetched) and the pipeline drains.
     */
    void run(std::uint64_t maxInsts = 0);

    /**
     * Advance until at least @p insts instructions have been fetched
     * (or the stream ends) *without* draining the pipeline — the
     * warmup phase of a sampled simulation.
     */
    void runUntilFetched(std::uint64_t insts);

    /**
     * Zero all statistics (cycles, committed counts, cache and queue
     * counters) while keeping the microarchitectural state — caches
     * stay warm, in-flight instructions stay in flight. Used after
     * warmup.
     */
    void resetStats();

    /** Advance one cycle (exposed for tests). */
    void cycleOnce();

    /**
     * Stream a one-line-per-instruction timing trace (sequence, pc,
     * disassembly, dispatch/ready/commit cycles, memory-queue
     * placement) to @p os as instructions commit. Pass nullptr to
     * stop tracing. Intended for small programs and debugging.
     */
    void setTrace(std::ostream *os) { traceOut = os; }

    /** True when the stream is exhausted and the pipeline is empty. */
    bool done() const;

    Cycle now() const { return curCycle; }
    double ipc() const;

    // Component access for tests and benches.
    mem::Hierarchy &hierarchy() { return *memHier; }
    core::MemQueue &lsq() { return *lsqQueue; }
    core::MemQueue *lvaq() { return lvaqQueue.get(); }
    core::Classifier &classifier() { return *memClassifier; }
    vm::StreamStats &streamStats() { return *stream; }
    const config::MachineConfig &machineConfig() const { return cfg; }

    // Stats.
    stats::Scalar numCycles;
    stats::Scalar committedInsts;
    stats::Scalar fetchedInsts;
    stats::Scalar issuedOps;
    stats::Scalar agIssues;          ///< Address generations issued.
    stats::Scalar robFullStalls;     ///< Dispatch halted: ROB full.
    stats::Scalar lsqFullStalls;
    stats::Scalar lvaqFullStalls;
    stats::Scalar commitPortStalls;  ///< Store commit blocked on ports.
    stats::Histogram robOccupancy;   ///< Sampled window occupancy.
    stats::Formula ipcStat;          ///< committed / cycles.

  private:
    config::MachineConfig cfg;
    vm::Executor &executor;

    std::unique_ptr<mem::Hierarchy> memHier;
    std::unique_ptr<core::Classifier> memClassifier;
    std::unique_ptr<core::MemQueue> lsqQueue;
    std::unique_ptr<core::MemQueue> lvaqQueue;
    std::unique_ptr<vm::StreamStats> stream;
    FuPool fuPool;
    Rob rob;
    RenameTable renameTable;

    std::deque<vm::DynInst> fetchQueue;
    std::size_t fetchQueueCap;
    std::uint64_t fetchLimit = 0; ///< 0 = unlimited.
    std::uint64_t numFetched = 0;

    Cycle curCycle = 0;
    Cycle lastCommit = 0;
    std::vector<core::LoadCompletion> completions;
    std::ostream *traceOut = nullptr;

    void traceCommit(const RobEntry &e);

    void commitStage();
    void memoryStage();
    void issueStage();
    void dispatchStage();
    void fetchStage();

    core::MemQueue &queueOf(QueueKind kind);
    bool srcReady(const ProducerTag &tag) const;
    Cycle srcReadyAt(const ProducerTag &tag, Cycle fallback) const;
    void pushStoreData(RobEntry &e);
};

} // namespace ddsim::cpu

#endif // DDSIM_CPU_PIPELINE_HH_
