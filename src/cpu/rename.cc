#include "cpu/rename.hh"

#include "util/log.hh"

namespace ddsim::cpu {

void
RenameTable::reset()
{
    table.fill(ProducerTag{});
}

int
RenameTable::index(isa::RegRef r)
{
    if (r.file == isa::RegFile::None)
        panic("rename: invalid register reference");
    int base = r.file == isa::RegFile::Fpr ? 32 : 0;
    return base + static_cast<int>(r.idx);
}

ProducerTag
RenameTable::producer(isa::RegRef r) const
{
    return table[static_cast<std::size_t>(index(r))];
}

void
RenameTable::setProducer(isa::RegRef r, ProducerTag tag)
{
    table[static_cast<std::size_t>(index(r))] = tag;
}

void
RenameTable::clearIfProducer(isa::RegRef r, ProducerTag tag)
{
    auto &slot = table[static_cast<std::size_t>(index(r))];
    if (slot.robIdx == tag.robIdx && slot.seq == tag.seq)
        slot = ProducerTag{};
}

} // namespace ddsim::cpu
