#include "cpu/pipeline.hh"

#include <algorithm>
#include <bit>
#include <ostream>

#include "isa/disasm.hh"
#include "obs/pipeline_trace.hh"
#include "obs/sampler.hh"
#include "util/log.hh"

namespace ddsim::cpu {

using core::QueuePolicy;
using core::Stream;

Pipeline::Pipeline(stats::Group *parent,
                   const config::MachineConfig &cfg,
                   vm::InstSource &src)
    : stats::Group(parent, "cpu"),
      numCycles(this, "cycles", "simulated cycles"),
      committedInsts(this, "committed", "instructions committed"),
      fetchedInsts(this, "fetched", "instructions fetched"),
      issuedOps(this, "issued", "operations issued to FUs"),
      agIssues(this, "agen_issues", "address generations issued"),
      robFullStalls(this, "rob_full_stalls",
                    "dispatch halts due to a full ROB"),
      lsqFullStalls(this, "lsq_full_stalls",
                    "dispatch halts due to a full LSQ"),
      lvaqFullStalls(this, "lvaq_full_stalls",
                     "dispatch halts due to a full LVAQ"),
      commitPortStalls(this, "commit_port_stalls",
                       "store commits blocked on cache ports"),
      robOccupancy(this, "rob_occupancy",
                   "sampled reorder buffer occupancy", 33, 4),
      ipcStat(this, "ipc", "committed instructions per cycle",
              [this] { return ipc(); }),
      cfg(cfg),
      executor(src),
      fuPool(cfg),
      rob(cfg.robSize)
{
    cfg.validate();
    memHier = std::make_unique<mem::Hierarchy>(this, cfg);
    memClassifier =
        std::make_unique<core::Classifier>(this, cfg.classifier);
    stream = std::make_unique<vm::StreamStats>(this);

    QueuePolicy lsqPolicy;
    lsqPolicy.ports = cfg.l1.ports;
    lsqPolicy.combining = 1;      // Combining is an LVAQ optimization.
    lsqPolicy.banks = cfg.l1.banks;
    lsqPolicy.fastForward = false;
    lsqPolicy.forwardLatency = cfg.forwardLatency;
    lsqPolicy.mispredictPenalty = cfg.mispredictPenalty;
    lsqQueue = std::make_unique<core::MemQueue>(
        this, "lsq", cfg.lsqSize, &memHier->l1(), memHier->lvc(),
        lsqPolicy);

    if (cfg.lvcEnabled) {
        QueuePolicy lvaqPolicy;
        lvaqPolicy.ports = cfg.lvc.ports;
        lvaqPolicy.combining = cfg.combining;
        lvaqPolicy.banks = cfg.lvc.banks;
        lvaqPolicy.fastForward = cfg.fastForward;
        lvaqPolicy.forwardLatency = cfg.forwardLatency;
        lvaqPolicy.mispredictPenalty = cfg.mispredictPenalty;
        lvaqQueue = std::make_unique<core::MemQueue>(
            this, "lvaq", cfg.lvaqSize, memHier->lvc(), &memHier->l1(),
            lvaqPolicy);
    }

    fetchQueueCap = static_cast<std::size_t>(cfg.fetchWidth) * 2;
    fetchQueue.init(fetchQueueCap);
    issuableBits.assign(
        (static_cast<std::size_t>(cfg.robSize) + 63) / 64, 0);
    completions.reserve(static_cast<std::size_t>(cfg.lsqSize) +
                        static_cast<std::size_t>(cfg.lvaqSize));
}

core::MemQueue &
Pipeline::queueOf(QueueKind kind)
{
    if (kind == QueueKind::Lvaq) {
        if (!lvaqQueue)
            panic("LVAQ access on a machine without one");
        return *lvaqQueue;
    }
    return *lsqQueue;
}

bool
Pipeline::srcReady(const ProducerTag &tag) const
{
    if (!tag.valid())
        return true; // Value lives in the register file.
    const RobEntry &p = rob[tag.robIdx];
    if (!p.valid || p.di.seq != tag.seq)
        return true; // Producer already committed.
    return p.completed && p.readyAt <= curCycle;
}

Cycle
Pipeline::srcReadyAt(const ProducerTag &tag, Cycle fallback) const
{
    if (!tag.valid())
        return fallback;
    const RobEntry &p = rob[tag.robIdx];
    if (!p.valid || p.di.seq != tag.seq)
        return fallback;
    return p.readyAt;
}

// ---- Commit ---------------------------------------------------------------

void
Pipeline::commitStage()
{
    int n = 0;
    while (n < cfg.commitWidth && !rob.empty()) {
        int idx = rob.headIdx();
        RobEntry &e = rob[idx];

        if (e.isMem()) {
            core::MemQueue &q = e.replicated && e.di.stackAccess
                                    ? *lvaqQueue
                                    : queueOf(e.queueKind);
            int slot = e.replicated && e.di.stackAccess ? e.lvaqSlot
                                                        : e.queueSlot;
            if (decoded(e.di).info->store) {
                const core::QueueEntry &qe = q.entry(slot);
                bool ready = qe.addrKnown && qe.addrKnownAt <= curCycle &&
                             qe.dataReady && qe.dataReadyAt <= curCycle;
                if (!ready)
                    break;
                if (!q.commitStore(slot, curCycle)) {
                    ++commitPortStalls;
                    commitPortBlocked = true;
                    break;
                }
            } else {
                // Load completions are pushed into the ROB entry by
                // the memory stage (from whichever copy finished).
                if (!(e.completed && e.readyAt <= curCycle))
                    break;
            }
            if (tracer)
                recordCommit(e, idx);
            if (e.replicated) {
                lsqQueue->release(e.queueSlot);
                lvaqQueue->release(e.lvaqSlot);
            } else {
                queueOf(e.queueKind).release(e.queueSlot);
            }
        } else {
            if (!(e.completed && e.readyAt <= curCycle))
                break;
            if (tracer)
                recordCommit(e, idx);
        }

        const isa::RegRef d = decoded(e.di).dest;
        if (d.valid())
            renameTable.clearIfProducer(d, ProducerTag{idx, e.di.seq});

        if (traceOut)
            traceCommit(e);
        if (!commitRing.empty()) {
            CommittedRecord &r = commitRing[commitRingHead];
            r.seq = e.di.seq;
            r.pcIdx = e.di.pcIdx;
            r.inst = e.di.inst;
            r.cycle = curCycle;
            commitRingHead = (commitRingHead + 1) % commitRing.size();
            commitRingCount =
                std::min(commitRingCount + 1, commitRing.size());
        }
        rob.releaseHead();
        clearIssuable(idx);
        ++committedInsts;
        ++n;
        lastCommit = curCycle;
    }
    if (sampler && n > 0)
        sampler->onCommit(committedInsts.value(), curCycle);
}

void
Pipeline::recordCommit(const RobEntry &e, int idx)
{
    obs::TraceRecord r;
    r.seq = e.di.seq;
    r.pcIdx = e.di.pcIdx;
    r.dispatchCycle = e.dispatchedAt;
    r.commitCycle = curCycle;
    if (e.isMem()) {
        const isa::OpInfo &info = *decoded(e.di).info;
        r.isLoad = info.load;
        r.isStore = info.store;
        r.replicated = e.replicated;
        // Queue slots are allocated in the dispatch stage.
        r.queueCycle = e.dispatchedAt;

        // Find the copy that actually serviced the access. Under
        // Replicate steering the address resolution cancels the wrong
        // copy: stores keep the stackAccess-selected one, loads keep
        // whichever completed (the LVAQ copy can also win early via
        // fast forwarding; the LSQ copy is cancelled either way).
        bool useLvaq;
        int slot;
        if (e.replicated) {
            if (info.store) {
                useLvaq = e.di.stackAccess;
            } else {
                const core::QueueEntry &lq =
                    lvaqQueue->entry(e.lvaqSlot);
                useLvaq = lq.completed && !lq.cancelled;
            }
            slot = useLvaq ? e.lvaqSlot : e.queueSlot;
        } else {
            useLvaq = e.queueKind == QueueKind::Lvaq;
            slot = e.queueSlot;
        }
        const core::QueueEntry &qe =
            (useLvaq ? *lvaqQueue : *lsqQueue).entry(slot);
        r.lvaqStream = useLvaq;
        r.forwarded =
            qe.servedKind == core::QueueEntry::kServedForward;
        r.fastForwarded =
            qe.servedKind == core::QueueEntry::kServedFastForward;
        r.combined = qe.combinedGrant;
        r.missteered = qe.missteered;
        if (qe.servedKind != core::QueueEntry::kServedNone)
            r.accessCycle = qe.servedAt;
        if (info.load)
            r.wbCycle = e.readyAt;
    } else {
        r.wbCycle = e.readyAt;
    }
    tracer->onCommit(idx, r);
}

void
Pipeline::traceCommit(const RobEntry &e)
{
    std::string where;
    if (e.isMem()) {
        if (e.replicated)
            where = " [both]";
        else if (e.queueKind == QueueKind::Lvaq)
            where = " [lvaq]";
        else
            where = " [lsq]";
        if (e.di.isMem())
            where += format(" @0x%08x", e.di.effAddr);
    }
    *traceOut << format(
        "%8llu  pc=%06u  D%-8llu R%-8llu C%-8llu  %s%s\n",
        (unsigned long long)e.di.seq, e.di.pcIdx,
        (unsigned long long)e.dispatchedAt,
        (unsigned long long)e.readyAt, (unsigned long long)curCycle,
        isa::disassemble(e.di.inst).c_str(), where.c_str());
}

// ---- Memory ----------------------------------------------------------------

void
Pipeline::memoryStage()
{
    completions.clear();
    lsqQueue->tick(curCycle, completions, &lsqTick);
    if (lvaqQueue)
        lvaqQueue->tick(curCycle, completions, &lvaqTick);
    for (const core::LoadCompletion &c : completions) {
        RobEntry &e = rob[c.robIdx];
        if (!e.valid)
            panic("load completion for an invalid ROB entry");
        // Under Replicate steering both copies could in principle
        // report; the first one wins.
        if (e.completed)
            continue;
        e.completed = true;
        e.readyAt = c.readyAt;
        onProducerComplete(c.robIdx, /*inIssueStage=*/false);
        // A load completed by fast forwarding before its address
        // generation ran is the issue scan's fast-path case (mark
        // addrIssued, kill the LSQ replica): make sure the scan
        // visits it from this cycle on.
        if (!e.addrIssued)
            markIssuable(c.robIdx);
    }
}

// ---- Issue ------------------------------------------------------------------

void
Pipeline::pushStoreData(RobEntry &e)
{
    // src[1] is the store's data operand (srcRegs() order); an invalid
    // tag means the value already lives in the register file. The
    // *time* the data becomes available is pushed to the queue as
    // soon as the producer's completion time is known (the wakeup
    // broadcast), so a load polling the queue in the same cycle the
    // data arrives can still forward -- otherwise the store could
    // commit and leave the queue one cycle before the load sees it.
    ProducerTag data;
    if (e.numSrc > 1)
        data = e.src[1];

    Cycle at;
    if (!data.valid()) {
        at = e.dispatchedAt; // value already in the register file
    } else {
        const RobEntry &p = rob[data.robIdx];
        if (!p.valid || p.di.seq != data.seq)
            at = curCycle; // producer already committed
        else if (p.completed)
            at = p.readyAt; // may still be in the future
        else
            return; // completion time not known yet
    }
    queueOf(e.queueKind).setStoreData(e.queueSlot, at);
    if (e.replicated)
        lvaqQueue->setStoreData(e.lvaqSlot, at);
    e.storeDataSent = true;
}

void
Pipeline::registerConsumers(int idx)
{
    RobEntry &e = rob[idx];
    // The dispatch cycle's issue stage has already run: the seed's
    // window walk first reached a new entry one cycle after dispatch.
    e.eligibleAt = e.dispatchedAt + 1;

    // Issue eligibility tracks every source of an ALU operation but
    // only the base register (src[0]) of a memory operation; a
    // store's data operand (src[1]) instead drives the store-data
    // push, on its own schedule.
    bool isStore = e.isMem() && decoded(e.di).info->store;
    bool dataEdgeRegistered = false;
    for (int s = 0; s < e.numSrc; ++s) {
        bool issueEdge = !e.isMem() || s == 0;
        bool dataEdge = isStore && s == 1;
        if (!issueEdge && !dataEdge)
            continue;
        const ProducerTag &tag = e.src[s];
        if (!tag.valid())
            continue; // Value lives in the register file.
        RobEntry &p = rob[tag.robIdx];
        if (!p.valid || p.di.seq != tag.seq)
            continue; // Producer already committed.
        if (p.completed) {
            if (issueEdge)
                e.eligibleAt = std::max(e.eligibleAt, p.readyAt);
            continue; // Completion time already known.
        }
        e.consNext[s] = p.consHead;
        p.consHead = idx * 2 + s;
        if (issueEdge)
            ++e.waitCount;
        if (dataEdge)
            dataEdgeRegistered = true;
    }
    if (e.waitCount == 0)
        pushReady(e.eligibleAt, idx, e.di.seq);
    if (isStore && !dataEdgeRegistered)
        // The data operand's timing is already decided: run the
        // seed's push logic at the first post-dispatch issue stage.
        storeDataEvents.push(e.dispatchedAt + 1, idx, e.di.seq);
}

void
Pipeline::onProducerComplete(int pIdx, bool inIssueStage)
{
    RobEntry &p = rob[pIdx];
    int node = p.consHead;
    p.consHead = -1;
    while (node >= 0) {
        int cIdx = node >> 1;
        int slot = node & 1;
        RobEntry &c = rob[cIdx];
        node = c.consNext[slot];
        c.consNext[slot] = -1;
        if (slot == 1 && c.isMem()) {
            // Store-data edge. The seed pushed during the issue
            // stage's walk: from within it, push right away (nothing
            // between here and the walk position reads the queue's
            // data-ready state intra-cycle); from the memory stage,
            // defer to this cycle's issue stage so the commit stage
            // keeps seeing the un-pushed state it saw in the seed.
            if (c.storeDataSent)
                continue;
            if (inIssueStage)
                pushStoreData(c);
            else
                storeDataEvents.push(curCycle, cIdx, c.di.seq);
        } else {
            c.eligibleAt = std::max(c.eligibleAt, p.readyAt);
            if (--c.waitCount == 0)
                pushReady(c.eligibleAt, cIdx, c.di.seq);
        }
    }
}

bool
Pipeline::visitIssuable(int idx, int &issued)
{
    RobEntry &e = rob[idx];
    if (!e.valid) {
        clearIssuable(idx);
        return true;
    }
    if (issued >= cfg.issueWidth)
        return false; // Width spent; retry the kept bits next cycle.

    if (e.isMem()) {
        if (e.addrIssued) {
            clearIssuable(idx);
            return true;
        }
        // Fast-forwarded load: the value arrived through the LVAQ's
        // offset match; no address generation needed.
        const core::QueueEntry &fastQe =
            e.replicated ? lvaqQueue->entry(e.lvaqSlot)
                         : queueOf(e.queueKind).entry(e.queueSlot);
        if (fastQe.completed && !fastQe.cancelled) {
            e.addrIssued = true;
            if (e.replicated)
                lsqQueue->cancel(e.queueSlot);
            clearIssuable(idx);
            return true;
        }
        if (!srcReady(e.src[0]))
            return true; // Base register not ready.
        if (!fuPool.tryIssue(isa::FuClass::IntAlu, curCycle, 1, true))
            return true; // AGU busy: keep the bit, retry next cycle.
        e.addrIssued = true;
        clearIssuable(idx);
        ++issued;
        ++agIssues;
        if (tracer)
            tracer->onIssue(idx, curCycle);

        if (e.replicated) {
            // Replicated steering (paper footnote 3): the address
            // resolution picks the surviving copy and kills the
            // other -- no misprediction is possible.
            if (e.di.stackAccess) {
                lvaqQueue->setAddress(e.lvaqSlot, e.di.effAddr,
                                      curCycle + 1, false);
                lsqQueue->cancel(e.queueSlot);
            } else {
                lsqQueue->setAddress(e.queueSlot, e.di.effAddr,
                                     curCycle + 1, false);
                lvaqQueue->cancel(e.lvaqSlot);
            }
            return true;
        }

        bool missteered = false;
        if (lvaqQueue &&
            cfg.classifier != config::ClassifierKind::None) {
            Stream chosen = e.queueKind == QueueKind::Lvaq
                                ? Stream::Lvaq
                                : Stream::Lsq;
            missteered = !memClassifier->verify(e.di, chosen);
        }
        queueOf(e.queueKind)
            .setAddress(e.queueSlot, e.di.effAddr, curCycle + 1,
                        missteered);
    } else {
        if (e.completed) {
            clearIssuable(idx);
            return true;
        }
        bool ready = true;
        for (int s = 0; s < e.numSrc; ++s) {
            if (!srcReady(e.src[s])) {
                ready = false;
                break;
            }
        }
        if (!ready)
            return true;
        const isa::OpInfo &info = *decoded(e.di).info;
        if (!fuPool.tryIssue(info.fu, curCycle, info.latency,
                             info.pipelined))
            return true; // FU busy: keep the bit, retry next cycle.
        e.completed = true;
        e.readyAt = curCycle + info.latency;
        clearIssuable(idx);
        ++issued;
        ++issuedOps;
        if (tracer)
            tracer->onIssue(idx, curCycle);
        // The completion time is now known: wake consumers. Their
        // earliest eligibility is readyAt > curCycle, so no bit set
        // this scan changes behind the cursor.
        onProducerComplete(idx, /*inIssueStage=*/true);
    }
    return true;
}

void
Pipeline::issueStage()
{
    // Store-data pushes land first, exactly where the seed's window
    // walk performed them (never earlier in the cycle: the memory and
    // commit stages of this cycle already ran against the un-pushed
    // state).
    storeDataEvents.drainUpTo(curCycle, [this](int idx, InstSeq seq) {
        RobEntry &e = rob[idx];
        if (e.valid && e.di.seq == seq && !e.storeDataSent)
            pushStoreData(e);
    });

    // Entries whose issue-relevant sources are all ready (as of this
    // cycle) join the scan set; they stay in it until they act.
    readyEvents.drainUpTo(curCycle, [this](int idx, InstSeq seq) {
        const RobEntry &e = rob[idx];
        if (e.valid && e.di.seq == seq)
            markIssuable(idx);
    });

    // Age-ordered walk over the issuable bits only. Per-entry
    // behaviour (fast path, source checks, FU arbitration, counters)
    // is the seed's walk body verbatim; the bitmap merely skips the
    // entries for which that body would provably do nothing.
    int issued = 0;
    bool stop = false;
    auto scanRange = [&](int lo, int hi) { // slots [lo, hi)
        for (int w = lo >> 6; !stop && w <= (hi - 1) >> 6; ++w) {
            int base = w << 6;
            std::uint64_t bits =
                issuableBits[static_cast<std::size_t>(w)];
            if (base < lo)
                bits &= ~std::uint64_t{0} << (lo - base);
            if (base + 64 > hi)
                bits &= (std::uint64_t{1} << (hi - base)) - 1;
            while (bits) {
                int idx = base + std::countr_zero(bits);
                bits &= bits - 1;
                if (!visitIssuable(idx, issued)) {
                    stop = true;
                    break;
                }
            }
        }
    };
    int headIdx = rob.headIdx();
    int occ = rob.occupancy();
    if (headIdx + occ <= rob.size()) {
        scanRange(headIdx, headIdx + occ);
    } else {
        scanRange(headIdx, rob.size());
        scanRange(0, headIdx + occ - rob.size());
    }
}

// ---- Dispatch ---------------------------------------------------------------

void
Pipeline::dispatchStage()
{
    int n = 0;
    while (n < cfg.issueWidth && !fetchQueue.empty()) {
        const vm::DynInst &di = fetchQueue.front();

        if (rob.full()) {
            ++robFullStalls;
            break;
        }

        const StaticOp &sd = decoded(di);
        bool replicate =
            lvaqQueue &&
            cfg.classifier == config::ClassifierKind::Replicate;
        QueueKind kind = QueueKind::None;
        if (sd.mem) {
            if (replicate) {
                // Footnote 3: a copy goes into each queue, so both
                // must have room.
                kind = QueueKind::Lsq;
                if (lsqQueue->full()) {
                    ++lsqFullStalls;
                    break;
                }
                if (lvaqQueue->full()) {
                    ++lvaqFullStalls;
                    break;
                }
            } else {
                Stream s = Stream::Lsq;
                if (lvaqQueue)
                    s = memClassifier->classify(di);
                kind = s == Stream::Lvaq ? QueueKind::Lvaq
                                         : QueueKind::Lsq;
                core::MemQueue &q = queueOf(kind);
                if (q.full()) {
                    if (kind == QueueKind::Lvaq)
                        ++lvaqFullStalls;
                    else
                        ++lsqFullStalls;
                    break;
                }
            }
        }

        int idx = rob.allocate();
        RobEntry &e = rob[idx];
        e.di = di;
        e.dispatchedAt = curCycle;
        e.queueKind = kind;

        e.numSrc = sd.numSrc;
        for (int s = 0; s < e.numSrc; ++s)
            e.src[s] = renameTable.producer(sd.srcs[s]);

        if (kind != QueueKind::None) {
            e.queueSlot = queueOf(kind).allocate(
                di.seq, idx, sd.info->load, di.accessSize, di.inst.rs,
                di.inst.imm, di.baseVersion);
            if (replicate) {
                e.replicated = true;
                e.lvaqSlot = lvaqQueue->allocate(
                    di.seq, idx, sd.info->load, di.accessSize,
                    di.inst.rs, di.inst.imm, di.baseVersion);
            }
        }

        registerConsumers(idx);

        if (sd.dest.valid())
            renameTable.setProducer(sd.dest, ProducerTag{idx, di.seq});

        if (tracer)
            tracer->onDispatch(idx, di.seq, curCycle);
        fetchQueue.pop_front();
        ++n;
    }
}

// ---- Fetch -------------------------------------------------------------------

void
Pipeline::fetchStage()
{
    int n = 0;
    while (n < cfg.fetchWidth && fetchQueue.size() < fetchQueueCap) {
        if (executor.halted())
            break;
        if (fetchLimit != 0 && numFetched >= fetchLimit)
            break;
        vm::DynInst di = executor.step();
        stream->record(di);
        fetchQueue.push_back(di);
        ++numFetched;
        ++fetchedInsts;
        ++n;
        if (tracer)
            tracer->onFetch(curCycle);
    }
}

void
Pipeline::warmFunctional(const vm::DynInst &di)
{
    stream->record(di);
    if (!di.isMem())
        return;
    bool isWrite = di.isStore();
    mem::Cache *lvc = memHier->lvc();
    if (cfg.classifier == config::ClassifierKind::Replicate && lvc) {
        // Both queues get a copy and address resolution cancels the
        // wrong one, so only the true region's cache sees the access.
        (di.stackAccess ? lvc : &memHier->l1())
            ->warm(di.effAddr, isWrite, curCycle);
        return;
    }
    core::Stream chosen = memClassifier->warmClassify(di);
    bool toLvc = chosen == core::Stream::Lvaq && lvc;
    (toLvc ? lvc : &memHier->l1())
        ->warm(di.effAddr, isWrite, curCycle);
    // A mispredicted access replays into the correct queue after
    // address resolution; warm the cache that finally serviced it too.
    if (lvc && toLvc != di.stackAccess)
        (di.stackAccess ? lvc : &memHier->l1())
            ->warm(di.effAddr, isWrite, curCycle);
}

// ---- Top level ------------------------------------------------------------------

Cycle
Pipeline::headCommitEvent() const
{
    if (rob.empty())
        return core::kNoEvent;
    const RobEntry &e = rob[rob.headIdx()];
    if (e.isMem() && e.di.isStore()) {
        // Mirror of the commit stage's readiness test. A denied port
        // is handled separately (commitPortBlocked forbids skipping).
        const core::MemQueue &q =
            e.replicated && e.di.stackAccess
                ? *lvaqQueue
                : (e.queueKind == QueueKind::Lvaq ? *lvaqQueue
                                                  : *lsqQueue);
        int slot = e.replicated && e.di.stackAccess ? e.lvaqSlot
                                                    : e.queueSlot;
        const core::QueueEntry &qe = q.entry(slot);
        if (qe.addrKnown && qe.dataReady)
            return std::max(qe.addrKnownAt, qe.dataReadyAt);
        return core::kNoEvent; // Awaits a push; extEvent covers it.
    }
    if (e.completed)
        return e.readyAt;
    return core::kNoEvent; // Completion itself is covered elsewhere.
}

void
Pipeline::maybeSkipCycles()
{
    Cycle target = core::kNoEvent;
    auto fold = [&target](Cycle c) { target = std::min(target, c); };

    // Consume the queues' external-push events every decision (they
    // are sticky minima, not per-cycle state) and fold the last
    // tick's self-scheduled events.
    fold(lsqQueue->takeExternalEvent());
    fold(lsqTick.nextEvent);
    if (lvaqQueue) {
        fold(lvaqQueue->takeExternalEvent());
        fold(lvaqTick.nextEvent);
    }

    // Structures that re-evaluate every cycle must keep ticking.
    if (commitPortBlocked)
        return; // The denied store retries with fresh ports.
    bool fetchActive = !executor.halted() &&
                       !(fetchLimit != 0 && numFetched >= fetchLimit) &&
                       fetchQueue.size() < fetchQueueCap;
    if (fetchActive)
        return;
    if (!fetchQueue.empty() && !rob.full())
        return; // Dispatch acts (and classify() counts) every cycle.
    for (std::uint64_t w : issuableBits)
        if (w)
            return; // The issue scan has work or FU/width retries.

    fold(readyEvents.nextEvent());
    fold(storeDataEvents.nextEvent());
    fold(headCommitEvent());

    if (target == core::kNoEvent) {
        if (rob.empty())
            return; // The run loop is about to stop.
        // No event will ever fire: jump to where the per-cycle model
        // reports the deadlock (cycleOnce raises DeadlockError with
        // the same cycle count).
        target = lastCommit + kDeadlockCycles;
    }
    if (target <= curCycle)
        return;

    // ---- Jump. Replay the counters the idle cycles would accrue:
    // the window and the queues are untouched through the skipped
    // cycles, so occupancies are constant and the same loads re-take
    // the same disambiguation stall each cycle.
    Cycle delta = target - curCycle;
    for (Cycle t = (curCycle + 63) & ~Cycle{63}; t < target; t += 64)
        robOccupancy.sample(
            static_cast<std::uint64_t>(rob.occupancy()));
    if (!fetchQueue.empty()) // rob.full() held above
        robFullStalls += delta;
    lsqQueue->skipTo(curCycle - 1, target - 1, lsqTick.stalledLoads);
    if (lvaqQueue)
        lvaqQueue->skipTo(curCycle - 1, target - 1,
                          lvaqTick.stalledLoads);
    numCycles += delta;
    curCycle = target;
}

void
Pipeline::cycleOnce()
{
    commitPortBlocked = false;
    // The memory stage runs before commit so that a load polling its
    // queue can forward from a store in the same cycle the store
    // retires (otherwise every store that commits the cycle its data
    // arrives would silently steal its consumer's 1-cycle forward).
    // A consequence is that loads take cache ports ahead of
    // committing stores within a cycle.
    memoryStage();
    commitStage();
    issueStage();
    dispatchStage();
    fetchStage();
    if ((curCycle & 63) == 0)
        robOccupancy.sample(static_cast<std::uint64_t>(
            rob.occupancy()));
    ++curCycle;
    ++numCycles;

    if (curCycle - lastCommit > kDeadlockCycles && !rob.empty())
        raiseDeadlock();
}

void
Pipeline::raiseDeadlock()
{
    const RobEntry &h = rob[rob.headIdx()];
    DeadlockInfo info;
    info.cycle = curCycle;
    info.sinceCommit = curCycle - lastCommit;
    info.headSeq = h.di.seq;
    info.headPcIdx = h.di.pcIdx;
    info.headDisasm = isa::disassemble(h.di.inst);
    info.robOccupancy = rob.occupancy();
    info.robSize = rob.size();
    info.lsqOccupancy = lsqQueue->occupancy();
    info.lvaqOccupancy = lvaqQueue ? lvaqQueue->occupancy() : -1;
    info.fetchQueue = fetchQueue.size();
    raise(DeadlockError(
        info,
        format("pipeline deadlock: no commit for %llu cycles; head: "
               "seq=%llu %s",
               (unsigned long long)info.sinceCommit,
               (unsigned long long)info.headSeq,
               info.headDisasm.c_str())));
}

bool
Pipeline::done() const
{
    bool streamDone = executor.halted() ||
                      (fetchLimit != 0 && numFetched >= fetchLimit);
    return streamDone && fetchQueue.empty() && rob.empty();
}

void
Pipeline::run(std::uint64_t maxInsts)
{
    fetchLimit = maxInsts;
    std::uint64_t iter = 0;
    while (!done()) {
        cycleOnce();
        if (!done())
            maybeSkipCycles();
        checkGuards(iter++);
    }
}

void
Pipeline::runUntilFetched(std::uint64_t insts)
{
    fetchLimit = 0;
    std::uint64_t iter = 0;
    while (numFetched < insts && !executor.halted()) {
        cycleOnce();
        if (numFetched < insts && !executor.halted())
            maybeSkipCycles();
        checkGuards(iter++);
    }
}

void
Pipeline::setGuards(const RunGuards &g)
{
    guards = g;
    hasWallDeadline = g.maxWallSeconds > 0;
    if (hasWallDeadline)
        wallDeadline = std::chrono::steady_clock::now() +
                       std::chrono::duration_cast<
                           std::chrono::steady_clock::duration>(
                           std::chrono::duration<double>(
                               g.maxWallSeconds));
}

void
Pipeline::checkGuards(std::uint64_t iter)
{
    if (guards.maxCycles != 0 && curCycle > guards.maxCycles)
        raise(BudgetExceededError(
            "cycles", guards.maxCycles, curCycle,
            format("cycle budget exceeded: %llu simulated cycles "
                   "(budget %llu)",
                   (unsigned long long)curCycle,
                   (unsigned long long)guards.maxCycles)));
    // The wall-clock read is rate-limited; checking at iter == 0 keeps
    // the guard live even for runs of under 256 loop iterations.
    if (hasWallDeadline && (iter & 255) == 0 &&
        std::chrono::steady_clock::now() > wallDeadline) {
        auto ms = [](double s) {
            return static_cast<std::uint64_t>(s * 1000.0);
        };
        double spent =
            guards.maxWallSeconds +
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - wallDeadline)
                .count();
        raise(BudgetExceededError(
            "wall", ms(guards.maxWallSeconds), ms(spent),
            format("wall-clock budget exceeded: %.1fs spent "
                   "(budget %.1fs)",
                   spent, guards.maxWallSeconds)));
    }
}

void
Pipeline::enableCommitLog(std::size_t n)
{
    commitRing.assign(n, CommittedRecord{});
    if (n == 0)
        commitRing.shrink_to_fit();
    commitRingHead = 0;
    commitRingCount = 0;
}

std::vector<CommittedRecord>
Pipeline::commitLog() const
{
    std::vector<CommittedRecord> out;
    out.reserve(commitRingCount);
    std::size_t start =
        (commitRingHead + commitRing.size() - commitRingCount) %
        (commitRing.empty() ? 1 : commitRing.size());
    for (std::size_t i = 0; i < commitRingCount; ++i)
        out.push_back(commitRing[(start + i) % commitRing.size()]);
    return out;
}

OccupancySnapshot
Pipeline::snapshotOccupancy() const
{
    OccupancySnapshot s;
    s.cycle = curCycle;
    s.lastCommitCycle = lastCommit;
    s.robOccupancy = rob.occupancy();
    s.robSize = rob.size();
    s.lsqOccupancy = lsqQueue->occupancy();
    s.lsqSize = lsqQueue->size();
    if (lvaqQueue) {
        s.lvaqOccupancy = lvaqQueue->occupancy();
        s.lvaqSize = lvaqQueue->size();
    }
    s.fetchQueue = fetchQueue.size();
    s.fetched = numFetched;
    s.committed = committedInsts.value();
    return s;
}

void
Pipeline::resetStats()
{
    resetAll();
}

double
Pipeline::ipc() const
{
    return stats::safeRatio(committedInsts.report(), numCycles.report());
}

} // namespace ddsim::cpu
