#include "cpu/pipeline.hh"

#include <ostream>

#include "isa/disasm.hh"
#include "util/log.hh"

namespace ddsim::cpu {

using core::QueuePolicy;
using core::Stream;

Pipeline::Pipeline(stats::Group *parent,
                   const config::MachineConfig &cfg, vm::Executor &exec)
    : stats::Group(parent, "cpu"),
      numCycles(this, "cycles", "simulated cycles"),
      committedInsts(this, "committed", "instructions committed"),
      fetchedInsts(this, "fetched", "instructions fetched"),
      issuedOps(this, "issued", "operations issued to FUs"),
      agIssues(this, "agen_issues", "address generations issued"),
      robFullStalls(this, "rob_full_stalls",
                    "dispatch halts due to a full ROB"),
      lsqFullStalls(this, "lsq_full_stalls",
                    "dispatch halts due to a full LSQ"),
      lvaqFullStalls(this, "lvaq_full_stalls",
                     "dispatch halts due to a full LVAQ"),
      commitPortStalls(this, "commit_port_stalls",
                       "store commits blocked on cache ports"),
      robOccupancy(this, "rob_occupancy",
                   "sampled reorder buffer occupancy", 33, 4),
      ipcStat(this, "ipc", "committed instructions per cycle",
              [this] { return ipc(); }),
      cfg(cfg),
      executor(exec),
      fuPool(cfg),
      rob(cfg.robSize)
{
    cfg.validate();
    memHier = std::make_unique<mem::Hierarchy>(this, cfg);
    memClassifier =
        std::make_unique<core::Classifier>(this, cfg.classifier);
    stream = std::make_unique<vm::StreamStats>(this);

    QueuePolicy lsqPolicy;
    lsqPolicy.ports = cfg.l1.ports;
    lsqPolicy.combining = 1;      // Combining is an LVAQ optimization.
    lsqPolicy.banks = cfg.l1.banks;
    lsqPolicy.fastForward = false;
    lsqPolicy.forwardLatency = cfg.forwardLatency;
    lsqPolicy.mispredictPenalty = cfg.mispredictPenalty;
    lsqQueue = std::make_unique<core::MemQueue>(
        this, "lsq", cfg.lsqSize, &memHier->l1(), memHier->lvc(),
        lsqPolicy);

    if (cfg.lvcEnabled) {
        QueuePolicy lvaqPolicy;
        lvaqPolicy.ports = cfg.lvc.ports;
        lvaqPolicy.combining = cfg.combining;
        lvaqPolicy.banks = cfg.lvc.banks;
        lvaqPolicy.fastForward = cfg.fastForward;
        lvaqPolicy.forwardLatency = cfg.forwardLatency;
        lvaqPolicy.mispredictPenalty = cfg.mispredictPenalty;
        lvaqQueue = std::make_unique<core::MemQueue>(
            this, "lvaq", cfg.lvaqSize, memHier->lvc(), &memHier->l1(),
            lvaqPolicy);
    }

    fetchQueueCap = static_cast<std::size_t>(cfg.fetchWidth) * 2;
}

core::MemQueue &
Pipeline::queueOf(QueueKind kind)
{
    if (kind == QueueKind::Lvaq) {
        if (!lvaqQueue)
            panic("LVAQ access on a machine without one");
        return *lvaqQueue;
    }
    return *lsqQueue;
}

bool
Pipeline::srcReady(const ProducerTag &tag) const
{
    if (!tag.valid())
        return true; // Value lives in the register file.
    const RobEntry &p = rob[tag.robIdx];
    if (!p.valid || p.di.seq != tag.seq)
        return true; // Producer already committed.
    return p.completed && p.readyAt <= curCycle;
}

Cycle
Pipeline::srcReadyAt(const ProducerTag &tag, Cycle fallback) const
{
    if (!tag.valid())
        return fallback;
    const RobEntry &p = rob[tag.robIdx];
    if (!p.valid || p.di.seq != tag.seq)
        return fallback;
    return p.readyAt;
}

// ---- Commit ---------------------------------------------------------------

void
Pipeline::commitStage()
{
    int n = 0;
    while (n < cfg.commitWidth && !rob.empty()) {
        int idx = rob.headIdx();
        RobEntry &e = rob[idx];

        if (e.isMem()) {
            core::MemQueue &q = e.replicated && e.di.stackAccess
                                    ? *lvaqQueue
                                    : queueOf(e.queueKind);
            int slot = e.replicated && e.di.stackAccess ? e.lvaqSlot
                                                        : e.queueSlot;
            if (e.di.isStore()) {
                const core::QueueEntry &qe = q.entry(slot);
                bool ready = qe.addrKnown && qe.addrKnownAt <= curCycle &&
                             qe.dataReady && qe.dataReadyAt <= curCycle;
                if (!ready)
                    break;
                if (!q.commitStore(slot, curCycle)) {
                    ++commitPortStalls;
                    break;
                }
            } else {
                // Load completions are pushed into the ROB entry by
                // the memory stage (from whichever copy finished).
                if (!(e.completed && e.readyAt <= curCycle))
                    break;
            }
            if (e.replicated) {
                lsqQueue->release(e.queueSlot);
                lvaqQueue->release(e.lvaqSlot);
            } else {
                queueOf(e.queueKind).release(e.queueSlot);
            }
        } else {
            if (!(e.completed && e.readyAt <= curCycle))
                break;
        }

        isa::RegRef d = isa::destReg(e.di.inst);
        if (d.valid())
            renameTable.clearIfProducer(d, ProducerTag{idx, e.di.seq});

        if (traceOut)
            traceCommit(e);
        rob.releaseHead();
        ++committedInsts;
        ++n;
        lastCommit = curCycle;
    }
}

void
Pipeline::traceCommit(const RobEntry &e)
{
    std::string where;
    if (e.isMem()) {
        if (e.replicated)
            where = " [both]";
        else if (e.queueKind == QueueKind::Lvaq)
            where = " [lvaq]";
        else
            where = " [lsq]";
        if (e.di.isMem())
            where += format(" @0x%08x", e.di.effAddr);
    }
    *traceOut << format(
        "%8llu  pc=%06u  D%-8llu R%-8llu C%-8llu  %s%s\n",
        (unsigned long long)e.di.seq, e.di.pcIdx,
        (unsigned long long)e.dispatchedAt,
        (unsigned long long)e.readyAt, (unsigned long long)curCycle,
        isa::disassemble(e.di.inst).c_str(), where.c_str());
}

// ---- Memory ----------------------------------------------------------------

void
Pipeline::memoryStage()
{
    completions.clear();
    lsqQueue->tick(curCycle, completions);
    if (lvaqQueue)
        lvaqQueue->tick(curCycle, completions);
    for (const core::LoadCompletion &c : completions) {
        RobEntry &e = rob[c.robIdx];
        if (!e.valid)
            panic("load completion for an invalid ROB entry");
        // Under Replicate steering both copies could in principle
        // report; the first one wins.
        if (e.completed)
            continue;
        e.completed = true;
        e.readyAt = c.readyAt;
    }
}

// ---- Issue ------------------------------------------------------------------

void
Pipeline::pushStoreData(RobEntry &e)
{
    // src[1] is the store's data operand (srcRegs() order); an invalid
    // tag means the value already lives in the register file. The
    // *time* the data becomes available is pushed to the queue as
    // soon as the producer's completion time is known (the wakeup
    // broadcast), so a load polling the queue in the same cycle the
    // data arrives can still forward -- otherwise the store could
    // commit and leave the queue one cycle before the load sees it.
    ProducerTag data;
    if (e.numSrc > 1)
        data = e.src[1];

    Cycle at;
    if (!data.valid()) {
        at = e.dispatchedAt; // value already in the register file
    } else {
        const RobEntry &p = rob[data.robIdx];
        if (!p.valid || p.di.seq != data.seq)
            at = curCycle; // producer already committed
        else if (p.completed)
            at = p.readyAt; // may still be in the future
        else
            return; // completion time not known yet
    }
    queueOf(e.queueKind).setStoreData(e.queueSlot, at);
    if (e.replicated)
        lvaqQueue->setStoreData(e.lvaqSlot, at);
    e.storeDataSent = true;
}

void
Pipeline::issueStage()
{
    int issued = 0;
    for (int p = 0; p < rob.occupancy(); ++p) {
        int idx = rob.nth(p);
        RobEntry &e = rob[idx];
        if (!e.valid)
            continue;

        // Store data readiness is tracked continuously (it costs no
        // issue bandwidth: the value is read out of the window when
        // the store fires).
        if (e.isMem() && e.di.isStore() && !e.storeDataSent)
            pushStoreData(e);

        if (issued >= cfg.issueWidth)
            continue; // Keep scanning only for store-data pushes.

        if (e.isMem()) {
            if (e.addrIssued)
                continue;
            // Fast-forwarded load: the value arrived through the
            // LVAQ's offset match; no address generation needed.
            const core::QueueEntry &fastQe =
                e.replicated ? lvaqQueue->entry(e.lvaqSlot)
                             : queueOf(e.queueKind).entry(e.queueSlot);
            if (fastQe.completed && !fastQe.cancelled) {
                e.addrIssued = true;
                if (e.replicated)
                    lsqQueue->cancel(e.queueSlot);
                continue;
            }
            if (!srcReady(e.src[0]))
                continue; // Base register not ready.
            if (!fuPool.tryIssue(isa::FuClass::IntAlu, curCycle, 1,
                                 true))
                continue;
            e.addrIssued = true;
            ++issued;
            ++agIssues;

            if (e.replicated) {
                // Replicated steering (paper footnote 3): the address
                // resolution picks the surviving copy and kills the
                // other -- no misprediction is possible.
                if (e.di.stackAccess) {
                    lvaqQueue->setAddress(e.lvaqSlot, e.di.effAddr,
                                          curCycle + 1, false);
                    lsqQueue->cancel(e.queueSlot);
                } else {
                    lsqQueue->setAddress(e.queueSlot, e.di.effAddr,
                                         curCycle + 1, false);
                    lvaqQueue->cancel(e.lvaqSlot);
                }
                continue;
            }

            bool missteered = false;
            if (lvaqQueue && cfg.classifier !=
                                 config::ClassifierKind::None) {
                Stream chosen = e.queueKind == QueueKind::Lvaq
                                    ? Stream::Lvaq
                                    : Stream::Lsq;
                missteered = !memClassifier->verify(e.di, chosen);
            }
            queueOf(e.queueKind)
                .setAddress(e.queueSlot, e.di.effAddr, curCycle + 1,
                            missteered);
        } else {
            if (e.completed)
                continue;
            bool ready = true;
            for (int s = 0; s < e.numSrc; ++s) {
                if (!srcReady(e.src[s])) {
                    ready = false;
                    break;
                }
            }
            if (!ready)
                continue;
            const isa::OpInfo &info = isa::opInfo(e.di.inst.op);
            if (!fuPool.tryIssue(info.fu, curCycle, info.latency,
                                 info.pipelined))
                continue;
            e.completed = true;
            e.readyAt = curCycle + info.latency;
            ++issued;
            ++issuedOps;
        }
    }
}

// ---- Dispatch ---------------------------------------------------------------

void
Pipeline::dispatchStage()
{
    int n = 0;
    while (n < cfg.issueWidth && !fetchQueue.empty()) {
        const vm::DynInst &di = fetchQueue.front();

        if (rob.full()) {
            ++robFullStalls;
            break;
        }

        bool replicate =
            lvaqQueue &&
            cfg.classifier == config::ClassifierKind::Replicate;
        QueueKind kind = QueueKind::None;
        if (di.isMem()) {
            if (replicate) {
                // Footnote 3: a copy goes into each queue, so both
                // must have room.
                kind = QueueKind::Lsq;
                if (lsqQueue->full()) {
                    ++lsqFullStalls;
                    break;
                }
                if (lvaqQueue->full()) {
                    ++lvaqFullStalls;
                    break;
                }
            } else {
                Stream s = Stream::Lsq;
                if (lvaqQueue)
                    s = memClassifier->classify(di);
                kind = s == Stream::Lvaq ? QueueKind::Lvaq
                                         : QueueKind::Lsq;
                core::MemQueue &q = queueOf(kind);
                if (q.full()) {
                    if (kind == QueueKind::Lvaq)
                        ++lvaqFullStalls;
                    else
                        ++lsqFullStalls;
                    break;
                }
            }
        }

        int idx = rob.allocate();
        RobEntry &e = rob[idx];
        e.di = di;
        e.dispatchedAt = curCycle;
        e.queueKind = kind;

        isa::RegRef srcs[2];
        e.numSrc = isa::srcRegs(di.inst, srcs);
        for (int s = 0; s < e.numSrc; ++s)
            e.src[s] = renameTable.producer(srcs[s]);

        if (kind != QueueKind::None) {
            e.queueSlot = queueOf(kind).allocate(
                di.seq, idx, di.isLoad(), di.accessSize, di.inst.rs,
                di.inst.imm, di.baseVersion);
            if (replicate) {
                e.replicated = true;
                e.lvaqSlot = lvaqQueue->allocate(
                    di.seq, idx, di.isLoad(), di.accessSize,
                    di.inst.rs, di.inst.imm, di.baseVersion);
            }
        }

        isa::RegRef d = isa::destReg(di.inst);
        if (d.valid())
            renameTable.setProducer(d, ProducerTag{idx, di.seq});

        fetchQueue.pop_front();
        ++n;
    }
}

// ---- Fetch -------------------------------------------------------------------

void
Pipeline::fetchStage()
{
    int n = 0;
    while (n < cfg.fetchWidth && fetchQueue.size() < fetchQueueCap) {
        if (executor.halted())
            break;
        if (fetchLimit != 0 && numFetched >= fetchLimit)
            break;
        vm::DynInst di = executor.step();
        stream->record(di);
        fetchQueue.push_back(di);
        ++numFetched;
        ++fetchedInsts;
        ++n;
    }
}

// ---- Top level ------------------------------------------------------------------

void
Pipeline::cycleOnce()
{
    // The memory stage runs before commit so that a load polling its
    // queue can forward from a store in the same cycle the store
    // retires (otherwise every store that commits the cycle its data
    // arrives would silently steal its consumer's 1-cycle forward).
    // A consequence is that loads take cache ports ahead of
    // committing stores within a cycle.
    memoryStage();
    commitStage();
    issueStage();
    dispatchStage();
    fetchStage();
    if ((curCycle & 63) == 0)
        robOccupancy.sample(static_cast<std::uint64_t>(
            rob.occupancy()));
    ++curCycle;
    ++numCycles;

    if (curCycle - lastCommit > 100000 && !rob.empty()) {
        const RobEntry &h = rob[rob.headIdx()];
        panic("pipeline deadlock: no commit for %llu cycles; head: "
              "seq=%llu %s",
              (unsigned long long)(curCycle - lastCommit),
              (unsigned long long)h.di.seq,
              isa::disassemble(h.di.inst).c_str());
    }
}

bool
Pipeline::done() const
{
    bool streamDone = executor.halted() ||
                      (fetchLimit != 0 && numFetched >= fetchLimit);
    return streamDone && fetchQueue.empty() && rob.empty();
}

void
Pipeline::run(std::uint64_t maxInsts)
{
    fetchLimit = maxInsts;
    while (!done())
        cycleOnce();
}

void
Pipeline::runUntilFetched(std::uint64_t insts)
{
    fetchLimit = 0;
    while (numFetched < insts && !executor.halted())
        cycleOnce();
}

void
Pipeline::resetStats()
{
    resetAll();
}

double
Pipeline::ipc() const
{
    return stats::safeRatio(committedInsts.report(), numCycles.report());
}

} // namespace ddsim::cpu
