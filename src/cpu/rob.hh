/**
 * @file
 * The reorder buffer (the paper's RUU): a circular window of in-flight
 * instructions. Entries carry their producer tags and, for memory
 * operations, a link to their queue slot.
 */

#ifndef DDSIM_CPU_ROB_HH_
#define DDSIM_CPU_ROB_HH_

#include <vector>

#include "cpu/rename.hh"
#include "util/types.hh"
#include "vm/trace.hh"

namespace ddsim::cpu {

/** Which memory access queue a memory instruction lives in. */
enum class QueueKind : std::int8_t { None = -1, Lsq = 0, Lvaq = 1 };

/** One in-flight instruction. */
struct RobEntry
{
    bool valid = false;
    vm::DynInst di;

    // Execution status: an entry is "completed" once its completion
    // time is known; the result is usable from readyAt onward.
    bool completed = false;
    Cycle readyAt = 0;
    Cycle dispatchedAt = 0;

    // Register dependencies (producer tags; invalid = in regfile).
    ProducerTag src[2];
    int numSrc = 0;

    // Memory operations.
    QueueKind queueKind = QueueKind::None;
    int queueSlot = -1;
    /**
     * Second queue slot under Replicate steering (paper footnote 3):
     * queueSlot is the LSQ copy and lvaqSlot the LVAQ copy; the wrong
     * one is cancelled when the address resolves.
     */
    int lvaqSlot = -1;
    bool replicated = false;
    bool addrIssued = false;    ///< AGU operation started.
    bool storeDataSent = false; ///< Data readiness pushed to queue.

    // ---- Wakeup network (event-driven scheduling core) ----
    // With a perfect front end nothing is ever squashed, so consumer
    // links registered at dispatch stay valid until the producer's
    // completion walks them (always before the producer commits).
    int waitCount = 0;    ///< Issue-relevant producers still pending.
    Cycle eligibleAt = 0; ///< Earliest cycle the issue scan can act.
    int consHead = -1;    ///< Consumer list head (robIdx * 2 + slot).
    int consNext[2] = {-1, -1}; ///< Per-source-slot next link.

    bool isMem() const { return queueKind != QueueKind::None; }
};

/** Circular reorder buffer. */
class Rob
{
  public:
    explicit Rob(int size);

    bool full() const { return count == capacity; }
    bool empty() const { return count == 0; }
    int occupancy() const { return count; }
    int size() const { return capacity; }

    /** Allocate the tail entry; caller fills it in. */
    int allocate();

    /** Free the head entry (in-order commit). */
    void releaseHead();

    int headIdx() const { return head; }

    RobEntry &operator[](int idx)
    {
        return entries[static_cast<std::size_t>(idx)];
    }
    const RobEntry &operator[](int idx) const
    {
        return entries[static_cast<std::size_t>(idx)];
    }

    /** Iterate oldest-first: index of the p-th oldest entry. */
    int nth(int p) const { return (head + p) % capacity; }

  private:
    std::vector<RobEntry> entries;
    int capacity;
    int head = 0;
    int tail = 0;
    int count = 0;
};

} // namespace ddsim::cpu

#endif // DDSIM_CPU_ROB_HH_
