/**
 * @file
 * RUU-style register renaming: a map table from architectural register
 * to the ROB entry that will produce it. Producers are identified by
 * (ROB index, sequence number) so stale indices from reused ROB slots
 * are detected.
 */

#ifndef DDSIM_CPU_RENAME_HH_
#define DDSIM_CPU_RENAME_HH_

#include <array>

#include "isa/inst.hh"
#include "util/types.hh"

namespace ddsim::cpu {

/** A producer tag: ROB index plus the instruction's sequence number. */
struct ProducerTag
{
    int robIdx = -1;
    InstSeq seq = 0;

    bool valid() const { return robIdx >= 0; }
};

/** Architectural register -> in-flight producer map. */
class RenameTable
{
  public:
    RenameTable() { reset(); }

    void reset();

    /** Current in-flight producer of @p r (invalid if in regfile). */
    ProducerTag producer(isa::RegRef r) const;

    /** Instruction @p tag now produces @p r. */
    void setProducer(isa::RegRef r, ProducerTag tag);

    /**
     * Called at commit: if @p tag is still the newest producer of
     * @p r, the value is now in the register file.
     */
    void clearIfProducer(isa::RegRef r, ProducerTag tag);

  private:
    // 0..31 GPRs, 32..63 FPRs.
    std::array<ProducerTag, 64> table;

    static int index(isa::RegRef r);
};

} // namespace ddsim::cpu

#endif // DDSIM_CPU_RENAME_HH_
