#include "cpu/rob.hh"

#include "util/log.hh"

namespace ddsim::cpu {

Rob::Rob(int size)
    : entries(static_cast<std::size_t>(size)), capacity(size)
{
    if (size < 1)
        panic("ROB needs at least one entry");
}

int
Rob::allocate()
{
    if (full())
        panic("Rob::allocate on a full ROB");
    int idx = tail;
    tail = (tail + 1) % capacity;
    ++count;
    // Targeted reset: di, dispatchedAt, queueKind, numSrc and the
    // first numSrc src tags are unconditionally overwritten by the
    // dispatch stage before anything reads them, so only the
    // remaining state is cleared here (the full RobEntry{} assignment
    // copied ~150 bytes per dispatch).
    RobEntry &e = entries[static_cast<std::size_t>(idx)];
    e.valid = true;
    e.completed = false;
    e.readyAt = 0;
    e.src[0] = ProducerTag{};
    e.src[1] = ProducerTag{};
    e.queueSlot = -1;
    e.lvaqSlot = -1;
    e.replicated = false;
    e.addrIssued = false;
    e.storeDataSent = false;
    e.waitCount = 0;
    e.eligibleAt = 0;
    e.consHead = -1;
    e.consNext[0] = -1;
    e.consNext[1] = -1;
    return idx;
}

void
Rob::releaseHead()
{
    if (empty())
        panic("Rob::releaseHead on an empty ROB");
    entries[static_cast<std::size_t>(head)].valid = false;
    head = (head + 1) % capacity;
    --count;
}

} // namespace ddsim::cpu
