#include "cpu/rob.hh"

#include "util/log.hh"

namespace ddsim::cpu {

Rob::Rob(int size)
    : entries(static_cast<std::size_t>(size)), capacity(size)
{
    if (size < 1)
        panic("ROB needs at least one entry");
}

int
Rob::allocate()
{
    if (full())
        panic("Rob::allocate on a full ROB");
    int idx = tail;
    tail = (tail + 1) % capacity;
    ++count;
    entries[static_cast<std::size_t>(idx)] = RobEntry{};
    entries[static_cast<std::size_t>(idx)].valid = true;
    return idx;
}

void
Rob::releaseHead()
{
    if (empty())
        panic("Rob::releaseHead on an empty ROB");
    entries[static_cast<std::size_t>(head)].valid = false;
    head = (head + 1) % capacity;
    --count;
}

} // namespace ddsim::cpu
