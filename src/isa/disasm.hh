/**
 * @file
 * MISA disassembler: renders decoded instructions in the same textual
 * syntax the AsmParser accepts, so round-tripping is possible.
 */

#ifndef DDSIM_ISA_DISASM_HH_
#define DDSIM_ISA_DISASM_HH_

#include <string>

#include "isa/inst.hh"

namespace ddsim::isa {

/**
 * Render @p inst as assembly text, e.g. "lw t0, 8(sp) !local" or
 * "add v0, a0, a1". Memory instructions carrying the local hint are
 * suffixed with " !local".
 */
std::string disassemble(const Inst &inst);

} // namespace ddsim::isa

#endif // DDSIM_ISA_DISASM_HH_
