#include "isa/regs.hh"

#include <cstdlib>

#include "util/log.hh"
#include "util/str.hh"

namespace ddsim::isa {

namespace {

const char *const gprNames[NumGprs] = {
    "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
    "t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
    "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
    "t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
};

} // namespace

const char *
gprName(RegId r)
{
    if (r >= NumGprs)
        panic("gprName: register index %d out of range", (int)r);
    return gprNames[r];
}

std::string
fprName(RegId r)
{
    if (r >= NumFprs)
        panic("fprName: register index %d out of range", (int)r);
    return "f" + std::to_string(static_cast<int>(r));
}

bool
parseRegName(const std::string &name, RegId &idx, bool &isFpr)
{
    std::string s = toLower(name);
    if (!s.empty() && s[0] == '$')
        s.erase(0, 1);
    if (s.empty())
        return false;

    // Numeric forms: rN (GPR), fN (FPR).
    if ((s[0] == 'r' || s[0] == 'f') && s.size() > 1) {
        bool digits = true;
        for (size_t i = 1; i < s.size(); ++i) {
            if (s[i] < '0' || s[i] > '9') {
                digits = false;
                break;
            }
        }
        if (digits) {
            int n = std::atoi(s.c_str() + 1);
            if (n < 0 || n >= NumGprs)
                return false;
            idx = static_cast<RegId>(n);
            isFpr = (s[0] == 'f');
            return true;
        }
    }

    // ABI names.
    for (int i = 0; i < NumGprs; ++i) {
        if (s == gprNames[i]) {
            idx = static_cast<RegId>(i);
            isFpr = false;
            return true;
        }
    }
    return false;
}

} // namespace ddsim::isa
