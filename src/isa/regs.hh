/**
 * @file
 * MISA register conventions (MIPS o32-flavoured).
 *
 * The conventions matter to the paper's mechanisms: the stack pointer
 * (sp, r29) and frame pointer (fp, r30) are the base registers the
 * hardware heuristic classifier watches, and writes to them delimit the
 * sp-epochs used by fast data forwarding.
 */

#ifndef DDSIM_ISA_REGS_HH_
#define DDSIM_ISA_REGS_HH_

#include <string>

#include "util/types.hh"

namespace ddsim::isa {

namespace reg {

inline constexpr RegId zero = 0;    ///< Hard-wired zero.
inline constexpr RegId at = 1;      ///< Assembler temporary.
inline constexpr RegId v0 = 2;      ///< Return values.
inline constexpr RegId v1 = 3;
inline constexpr RegId a0 = 4;      ///< Arguments.
inline constexpr RegId a1 = 5;
inline constexpr RegId a2 = 6;
inline constexpr RegId a3 = 7;
inline constexpr RegId t0 = 8;      ///< Caller-saved temporaries.
inline constexpr RegId t1 = 9;
inline constexpr RegId t2 = 10;
inline constexpr RegId t3 = 11;
inline constexpr RegId t4 = 12;
inline constexpr RegId t5 = 13;
inline constexpr RegId t6 = 14;
inline constexpr RegId t7 = 15;
inline constexpr RegId s0 = 16;     ///< Callee-saved.
inline constexpr RegId s1 = 17;
inline constexpr RegId s2 = 18;
inline constexpr RegId s3 = 19;
inline constexpr RegId s4 = 20;
inline constexpr RegId s5 = 21;
inline constexpr RegId s6 = 22;
inline constexpr RegId s7 = 23;
inline constexpr RegId t8 = 24;
inline constexpr RegId t9 = 25;
inline constexpr RegId k0 = 26;     ///< Reserved (unused by ddsim).
inline constexpr RegId k1 = 27;
inline constexpr RegId gp = 28;     ///< Global data pointer.
inline constexpr RegId sp = 29;     ///< Stack pointer.
inline constexpr RegId fp = 30;     ///< Frame pointer.
inline constexpr RegId ra = 31;     ///< Return address.

} // namespace reg

/** True if @p r is a stack-frame base register (sp or fp). */
inline bool
isStackBase(RegId r)
{
    return r == reg::sp || r == reg::fp;
}

/** ABI name of GPR @p r, e.g. "sp" for 29. */
const char *gprName(RegId r);

/** Name of FPR @p r ("f0".."f31"). */
std::string fprName(RegId r);

/**
 * Parse a register name: ABI names ("sp", "t3"), "r<N>", or "$"-
 * prefixed forms. FPRs parse as "f<N>"/"$f<N>".
 *
 * @return true on success; @p idx receives the register number and
 *         @p isFpr is set accordingly.
 */
bool parseRegName(const std::string &name, RegId &idx, bool &isFpr);

} // namespace ddsim::isa

#endif // DDSIM_ISA_REGS_HH_
