#include "isa/disasm.hh"

#include "util/log.hh"

namespace ddsim::isa {

namespace {

std::string
regName(const Inst &inst, RegId idx, bool fpFile)
{
    (void)inst;
    return fpFile ? fprName(idx) : std::string(gprName(idx));
}

} // namespace

std::string
disassemble(const Inst &inst)
{
    const OpInfo &info = opInfo(inst.op);
    std::string out = info.mnemonic;
    bool fp = info.fp;

    auto space = [&] { out += " "; };

    switch (info.fmt) {
      case Format::None:
        break;
      case Format::R3: {
        // FP compares / cvt.w.d write a GPR from FPR sources.
        bool destFp = fp && inst.op != OpCode::C_LT_D &&
                      inst.op != OpCode::C_LE_D &&
                      inst.op != OpCode::C_EQ_D;
        space();
        out += regName(inst, inst.rd, destFp);
        out += ", " + regName(inst, inst.rs, fp);
        out += ", " + regName(inst, inst.rt, fp);
        break;
      }
      case Format::R2: {
        bool destFp = fp && inst.op != OpCode::CVT_W_D;
        bool srcFp = fp && inst.op != OpCode::CVT_D_W;
        space();
        out += regName(inst, inst.rd, destFp);
        out += ", " + regName(inst, inst.rs, srcFp);
        break;
      }
      case Format::RShift:
        space();
        out += regName(inst, inst.rd, false);
        out += ", " + regName(inst, inst.rs, false);
        out += ", " + std::to_string(inst.imm);
        break;
      case Format::I2:
        space();
        out += regName(inst, inst.rt, false);
        out += ", " + regName(inst, inst.rs, false);
        out += ", " + std::to_string(inst.imm);
        break;
      case Format::I1:
        space();
        out += regName(inst, inst.rt, false);
        out += ", " + std::to_string(inst.imm);
        break;
      case Format::Mem:
        space();
        out += regName(inst, inst.rt, fp);
        out += ", " + std::to_string(inst.imm) + "(" +
               regName(inst, inst.rs, false) + ")";
        if (inst.localHint)
            out += " !local";
        break;
      case Format::B2:
        space();
        out += regName(inst, inst.rs, false);
        out += ", " + regName(inst, inst.rt, false);
        out += ", " + std::to_string(inst.imm);
        break;
      case Format::B1:
        space();
        out += regName(inst, inst.rs, false);
        out += ", " + std::to_string(inst.imm);
        break;
      case Format::Jmp:
        space();
        out += std::to_string(inst.target);
        break;
      case Format::JmpR:
      case Format::Print:
        space();
        out += regName(inst, inst.rs, false);
        break;
      case Format::JmpLinkR:
        space();
        out += regName(inst, inst.rd, false);
        out += ", " + regName(inst, inst.rs, false);
        break;
    }
    return out;
}

} // namespace ddsim::isa
