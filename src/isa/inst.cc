#include "isa/inst.hh"

namespace ddsim::isa {

RegRef
destReg(const Inst &inst)
{
    const OpInfo &info = opInfo(inst.op);
    RegRef d;
    switch (info.fmt) {
      case Format::R3:
      case Format::R2:
        // FP compares and cvt.w.d produce a GPR; other FP ops an FPR.
        if (info.fp && inst.op != OpCode::C_LT_D &&
            inst.op != OpCode::C_LE_D && inst.op != OpCode::C_EQ_D &&
            inst.op != OpCode::CVT_W_D) {
            d = fprRef(inst.rd);
        } else {
            d = gprRef(inst.rd);
        }
        break;
      case Format::RShift:
        d = gprRef(inst.rd);
        break;
      case Format::I2:
      case Format::I1:
        d = gprRef(inst.rt);
        break;
      case Format::Mem:
        if (info.load)
            d = info.fp ? fprRef(inst.rt) : gprRef(inst.rt);
        break;
      case Format::Jmp:
        if (inst.op == OpCode::JAL)
            d = gprRef(reg::ra);
        break;
      case Format::JmpLinkR:
        d = gprRef(inst.rd);
        break;
      default:
        break;
    }
    // Writes to the zero register are architectural no-ops.
    if (d.file == RegFile::Gpr && d.idx == reg::zero)
        return {};
    return d;
}

int
srcRegs(const Inst &inst, RegRef out[2])
{
    const OpInfo &info = opInfo(inst.op);
    int n = 0;
    auto add = [&](RegRef r) {
        // The zero register is always ready; skip it as a dependency.
        if (r.file == RegFile::Gpr && r.idx == reg::zero)
            return;
        out[n++] = r;
    };

    switch (info.fmt) {
      case Format::R3:
        if (info.fp) {
            // FP compare sources are FPRs even though the dest is a GPR.
            add(fprRef(inst.rs));
            add(fprRef(inst.rt));
        } else {
            add(gprRef(inst.rs));
            add(gprRef(inst.rt));
        }
        break;
      case Format::R2:
        if (inst.op == OpCode::CVT_D_W)
            add(gprRef(inst.rs));
        else if (info.fp)
            add(fprRef(inst.rs));
        else
            add(gprRef(inst.rs));
        break;
      case Format::RShift:
      case Format::I2:
        add(gprRef(inst.rs));
        break;
      case Format::I1:
        break;
      case Format::Mem:
        // Memory operands are pushed unconditionally (even the zero
        // register, whose producer is always "ready") so that the
        // pipeline can rely on src[0] = base, src[1] = store data.
        out[n++] = gprRef(inst.rs);         // base address
        if (info.store)
            out[n++] = storeDataReg(inst);  // data
        break;
      case Format::B2:
        add(gprRef(inst.rs));
        add(gprRef(inst.rt));
        break;
      case Format::B1:
      case Format::JmpR:
      case Format::JmpLinkR:
      case Format::Print:
        add(gprRef(inst.rs));
        break;
      default:
        break;
    }
    return n;
}

bool
writesGpr(const Inst &inst, RegId r)
{
    RegRef d = destReg(inst);
    return d.file == RegFile::Gpr && d.idx == r;
}

} // namespace ddsim::isa
