/**
 * @file
 * Decoded MISA instruction representation and register-dependency
 * extraction, the form both the functional executor and the timing
 * model consume.
 */

#ifndef DDSIM_ISA_INST_HH_
#define DDSIM_ISA_INST_HH_

#include <cstdint>

#include "isa/opcode.hh"
#include "isa/regs.hh"
#include "util/types.hh"

namespace ddsim::isa {

/** A decoded instruction. */
struct Inst
{
    OpCode op = OpCode::NOP;
    RegId rd = 0;               ///< R-type destination field.
    RegId rs = 0;               ///< First source / base register.
    RegId rt = 0;               ///< Second source / I-type dest / data.
    std::int32_t imm = 0;       ///< Sign-extended imm / shamt.
    std::uint32_t target = 0;   ///< J-type absolute word index.
    bool localHint = false;     ///< Compiler "local variable" mark.

    bool operator==(const Inst &) const = default;
};

/** A reference into one of the register files. */
struct RegRef
{
    RegFile file = RegFile::None;
    RegId idx = 0;

    bool valid() const { return file != RegFile::None; }
    bool operator==(const RegRef &) const = default;
};

inline RegRef gprRef(RegId r) { return {RegFile::Gpr, r}; }
inline RegRef fprRef(RegId r) { return {RegFile::Fpr, r}; }

/**
 * The architectural destination of @p inst, or an invalid RegRef.
 * Writes to GPR 0 are reported as no destination (r0 is wired to 0).
 */
RegRef destReg(const Inst &inst);

/**
 * Collect the register sources of @p inst into @p out (capacity >= 2).
 * For stores, the base register comes first and the data register
 * second; the timing model treats them separately (address generation
 * needs only the base, forwarding needs only the data).
 *
 * @return Number of sources written (0..2).
 */
int srcRegs(const Inst &inst, RegRef out[2]);

/** Base (address) register of a memory instruction. */
inline RegRef
memBaseReg(const Inst &inst)
{
    return gprRef(inst.rs);
}

/** Data register of a store. */
inline RegRef
storeDataReg(const Inst &inst)
{
    return opInfo(inst.op).fp ? fprRef(inst.rt) : gprRef(inst.rt);
}

/** True if this instruction is a function return (jr ra). */
inline bool
isReturn(const Inst &inst)
{
    return inst.op == OpCode::JR && inst.rs == reg::ra;
}

/** True if this instruction writes GPR @p r. */
bool writesGpr(const Inst &inst, RegId r);

} // namespace ddsim::isa

#endif // DDSIM_ISA_INST_HH_
