/**
 * @file
 * MISA opcode definitions and static per-opcode properties.
 *
 * MISA is a 32-bit fixed-width RISC ISA in the MIPS mould: 32 GPRs
 * (r0 hard-wired to zero), 32 FPRs holding 64-bit doubles, base+offset
 * addressing. Memory instructions carry a 15-bit signed byte offset and
 * a one-bit compiler annotation ("local") marking accesses to stack
 * frame variables — the classification bit of Section 2.2.3 of the
 * paper. The short offset field deliberately reproduces the paper's
 * footnote 6: frames bigger than 4 K words overflow the offset and
 * force the compiler to use a secondary base register.
 */

#ifndef DDSIM_ISA_OPCODE_HH_
#define DDSIM_ISA_OPCODE_HH_

#include <cstdint>

namespace ddsim::isa {

/** All MISA opcodes. Values are the 6-bit primary opcode field. */
enum class OpCode : std::uint8_t
{
    NOP = 0,
    HALT,
    PRINT,      ///< Debug: print GPR rs (no architectural effect).

    // Integer register-register ALU (R3 format: rd, rs, rt).
    ADD, SUB, MUL, DIV,
    AND, OR, XOR, NOR,
    SLLV, SRLV, SRAV,   ///< Variable shifts: amount in rt[4:0].
    SLT, SLTU,

    // Immediate shifts (RShift format: rd, rs, shamt).
    SLL, SRL, SRA,

    // Integer immediate ALU (I format: rt, rs, imm).
    ADDI, ANDI, ORI, XORI, SLTI,
    LUI,        ///< rt = imm << 16 (I1 format: rt, imm).

    // Memory (M format: rt, offset(rs), local-hint bit).
    LW,         ///< Load 32-bit word into GPR rt.
    LB,         ///< Load signed byte.
    LBU,        ///< Load unsigned byte.
    SW,         ///< Store word from GPR rt.
    SB,         ///< Store low byte of GPR rt.
    LD,         ///< Load 64-bit double into FPR rt.
    SD,         ///< Store 64-bit double from FPR rt.

    // Conditional branches (B2: rs, rt, offset / B1: rs, offset).
    BEQ, BNE,
    BLEZ, BGTZ, BLTZ, BGEZ,

    // Unconditional jumps.
    J,          ///< J format: 26-bit word target.
    JAL,        ///< Like J; writes return address into r31 (ra).
    JR,         ///< Jump to GPR rs (function return when rs == ra).
    JALR,       ///< rd = return address; jump to rs.

    // Floating point (R3 on the FPR file unless noted).
    ADD_D, SUB_D, MUL_D, DIV_D,
    MOV_D, NEG_D,               ///< R2: rd, rs (FPR).
    CVT_D_W,    ///< FPR rd = (double)(int32)GPR rs.
    CVT_W_D,    ///< GPR rd = (int32)FPR rs (truncate).
    C_LT_D, C_LE_D, C_EQ_D,     ///< GPR rd = FPR rs <op> FPR rt.

    NumOpcodes
};

inline constexpr int NumOpcodesInt = static_cast<int>(OpCode::NumOpcodes);

/** Instruction encoding format. */
enum class Format : std::uint8_t
{
    None,       ///< NOP, HALT.
    R3,         ///< rd, rs, rt.
    R2,         ///< rd, rs.
    RShift,     ///< rd, rs, shamt (imm holds shamt 0..31).
    I2,         ///< rt, rs, imm16.
    I1,         ///< rt, imm16 (LUI).
    Mem,        ///< rt, imm15(rs), local bit.
    B2,         ///< rs, rt, imm16 branch offset (words).
    B1,         ///< rs, imm16 branch offset (words).
    Jmp,        ///< 26-bit absolute word target.
    JmpR,       ///< rs.
    JmpLinkR,   ///< rd, rs.
    Print,      ///< rs.
};

/** Functional unit class an instruction executes on. */
enum class FuClass : std::uint8_t
{
    IntAlu,     ///< 1-cycle integer ops, branches, address generation.
    IntMult,    ///< Pipelined integer multiply.
    IntDiv,     ///< Unpipelined integer divide.
    FpAlu,      ///< FP add/sub/convert/compare/move.
    FpMult,     ///< Pipelined FP multiply.
    FpDiv,      ///< Unpipelined FP divide.
    MemPort,    ///< Loads/stores: scheduled by the memory queues.
    NumClasses
};

inline constexpr int NumFuClasses =
    static_cast<int>(FuClass::NumClasses);

/** Which register file a register reference names. */
enum class RegFile : std::uint8_t { None, Gpr, Fpr };

/** Static properties of one opcode. */
struct OpInfo
{
    const char *mnemonic;
    Format fmt;
    FuClass fu;
    std::uint8_t latency;       ///< Execution latency in cycles.
    bool pipelined;             ///< False for the divide units.
    bool load;
    bool store;
    bool condBranch;
    bool uncondJump;
    bool call;                  ///< JAL / JALR.
    bool fp;                    ///< Touches the FPR file.
    std::uint8_t accessSize;    ///< Memory bytes (0 for non-memory).
};

/** Look up the static properties of @p op. */
const OpInfo &opInfo(OpCode op);

/** Mnemonic string for @p op. */
const char *mnemonic(OpCode op);

/** Parse a mnemonic (case-insensitive). Returns NumOpcodes on failure. */
OpCode parseMnemonic(const char *name);

inline bool isLoad(OpCode op) { return opInfo(op).load; }
inline bool isStore(OpCode op) { return opInfo(op).store; }
inline bool isMem(OpCode op) { return isLoad(op) || isStore(op); }
inline bool isCondBranch(OpCode op) { return opInfo(op).condBranch; }
inline bool isUncondJump(OpCode op) { return opInfo(op).uncondJump; }
inline bool
isControl(OpCode op)
{
    return isCondBranch(op) || isUncondJump(op);
}
inline bool isCall(OpCode op) { return opInfo(op).call; }

} // namespace ddsim::isa

#endif // DDSIM_ISA_OPCODE_HH_
