#include "isa/opcode.hh"

#include <array>
#include <cstring>

#include "util/log.hh"
#include "util/str.hh"

namespace ddsim::isa {

namespace {

// Latencies follow the MIPS R10000 (Table 1 of the paper): integer
// ALU 1, integer multiply 5, integer divide 34 (unpipelined), FP
// add/compare/convert 2, FP multiply 2, FP divide 19 (unpipelined).
constexpr std::uint8_t LatIntAlu = 1;
constexpr std::uint8_t LatIntMult = 5;
constexpr std::uint8_t LatIntDiv = 34;
constexpr std::uint8_t LatFpAlu = 2;
constexpr std::uint8_t LatFpMult = 2;
constexpr std::uint8_t LatFpDiv = 19;

struct Entry
{
    OpCode op;
    OpInfo info;
};

// One row per opcode:        mnem      fmt              fu             lat        pipe  ld     st     br     jmp    call   fp     sz
constexpr Entry table[] = {
    {OpCode::NOP,     {"nop",     Format::None,     FuClass::IntAlu,  LatIntAlu,  true, false, false, false, false, false, false, 0}},
    {OpCode::HALT,    {"halt",    Format::None,     FuClass::IntAlu,  LatIntAlu,  true, false, false, false, false, false, false, 0}},
    {OpCode::PRINT,   {"print",   Format::Print,    FuClass::IntAlu,  LatIntAlu,  true, false, false, false, false, false, false, 0}},

    {OpCode::ADD,     {"add",     Format::R3,       FuClass::IntAlu,  LatIntAlu,  true, false, false, false, false, false, false, 0}},
    {OpCode::SUB,     {"sub",     Format::R3,       FuClass::IntAlu,  LatIntAlu,  true, false, false, false, false, false, false, 0}},
    {OpCode::MUL,     {"mul",     Format::R3,       FuClass::IntMult, LatIntMult, true, false, false, false, false, false, false, 0}},
    {OpCode::DIV,     {"div",     Format::R3,       FuClass::IntDiv,  LatIntDiv,  false, false, false, false, false, false, false, 0}},
    {OpCode::AND,     {"and",     Format::R3,       FuClass::IntAlu,  LatIntAlu,  true, false, false, false, false, false, false, 0}},
    {OpCode::OR,      {"or",      Format::R3,       FuClass::IntAlu,  LatIntAlu,  true, false, false, false, false, false, false, 0}},
    {OpCode::XOR,     {"xor",     Format::R3,       FuClass::IntAlu,  LatIntAlu,  true, false, false, false, false, false, false, 0}},
    {OpCode::NOR,     {"nor",     Format::R3,       FuClass::IntAlu,  LatIntAlu,  true, false, false, false, false, false, false, 0}},
    {OpCode::SLLV,    {"sllv",    Format::R3,       FuClass::IntAlu,  LatIntAlu,  true, false, false, false, false, false, false, 0}},
    {OpCode::SRLV,    {"srlv",    Format::R3,       FuClass::IntAlu,  LatIntAlu,  true, false, false, false, false, false, false, 0}},
    {OpCode::SRAV,    {"srav",    Format::R3,       FuClass::IntAlu,  LatIntAlu,  true, false, false, false, false, false, false, 0}},
    {OpCode::SLT,     {"slt",     Format::R3,       FuClass::IntAlu,  LatIntAlu,  true, false, false, false, false, false, false, 0}},
    {OpCode::SLTU,    {"sltu",    Format::R3,       FuClass::IntAlu,  LatIntAlu,  true, false, false, false, false, false, false, 0}},

    {OpCode::SLL,     {"sll",     Format::RShift,   FuClass::IntAlu,  LatIntAlu,  true, false, false, false, false, false, false, 0}},
    {OpCode::SRL,     {"srl",     Format::RShift,   FuClass::IntAlu,  LatIntAlu,  true, false, false, false, false, false, false, 0}},
    {OpCode::SRA,     {"sra",     Format::RShift,   FuClass::IntAlu,  LatIntAlu,  true, false, false, false, false, false, false, 0}},

    {OpCode::ADDI,    {"addi",    Format::I2,       FuClass::IntAlu,  LatIntAlu,  true, false, false, false, false, false, false, 0}},
    {OpCode::ANDI,    {"andi",    Format::I2,       FuClass::IntAlu,  LatIntAlu,  true, false, false, false, false, false, false, 0}},
    {OpCode::ORI,     {"ori",     Format::I2,       FuClass::IntAlu,  LatIntAlu,  true, false, false, false, false, false, false, 0}},
    {OpCode::XORI,    {"xori",    Format::I2,       FuClass::IntAlu,  LatIntAlu,  true, false, false, false, false, false, false, 0}},
    {OpCode::SLTI,    {"slti",    Format::I2,       FuClass::IntAlu,  LatIntAlu,  true, false, false, false, false, false, false, 0}},
    {OpCode::LUI,     {"lui",     Format::I1,       FuClass::IntAlu,  LatIntAlu,  true, false, false, false, false, false, false, 0}},

    {OpCode::LW,      {"lw",      Format::Mem,      FuClass::MemPort, 0,          true, true,  false, false, false, false, false, 4}},
    {OpCode::LB,      {"lb",      Format::Mem,      FuClass::MemPort, 0,          true, true,  false, false, false, false, false, 1}},
    {OpCode::LBU,     {"lbu",     Format::Mem,      FuClass::MemPort, 0,          true, true,  false, false, false, false, false, 1}},
    {OpCode::SW,      {"sw",      Format::Mem,      FuClass::MemPort, 0,          true, false, true,  false, false, false, false, 4}},
    {OpCode::SB,      {"sb",      Format::Mem,      FuClass::MemPort, 0,          true, false, true,  false, false, false, false, 1}},
    {OpCode::LD,      {"ld",      Format::Mem,      FuClass::MemPort, 0,          true, true,  false, false, false, false, true,  8}},
    {OpCode::SD,      {"sd",      Format::Mem,      FuClass::MemPort, 0,          true, false, true,  false, false, false, true,  8}},

    {OpCode::BEQ,     {"beq",     Format::B2,       FuClass::IntAlu,  LatIntAlu,  true, false, false, true,  false, false, false, 0}},
    {OpCode::BNE,     {"bne",     Format::B2,       FuClass::IntAlu,  LatIntAlu,  true, false, false, true,  false, false, false, 0}},
    {OpCode::BLEZ,    {"blez",    Format::B1,       FuClass::IntAlu,  LatIntAlu,  true, false, false, true,  false, false, false, 0}},
    {OpCode::BGTZ,    {"bgtz",    Format::B1,       FuClass::IntAlu,  LatIntAlu,  true, false, false, true,  false, false, false, 0}},
    {OpCode::BLTZ,    {"bltz",    Format::B1,       FuClass::IntAlu,  LatIntAlu,  true, false, false, true,  false, false, false, 0}},
    {OpCode::BGEZ,    {"bgez",    Format::B1,       FuClass::IntAlu,  LatIntAlu,  true, false, false, true,  false, false, false, 0}},

    {OpCode::J,       {"j",       Format::Jmp,      FuClass::IntAlu,  LatIntAlu,  true, false, false, false, true,  false, false, 0}},
    {OpCode::JAL,     {"jal",     Format::Jmp,      FuClass::IntAlu,  LatIntAlu,  true, false, false, false, true,  true,  false, 0}},
    {OpCode::JR,      {"jr",      Format::JmpR,     FuClass::IntAlu,  LatIntAlu,  true, false, false, false, true,  false, false, 0}},
    {OpCode::JALR,    {"jalr",    Format::JmpLinkR, FuClass::IntAlu,  LatIntAlu,  true, false, false, false, true,  true,  false, 0}},

    {OpCode::ADD_D,   {"add.d",   Format::R3,       FuClass::FpAlu,   LatFpAlu,   true, false, false, false, false, false, true,  0}},
    {OpCode::SUB_D,   {"sub.d",   Format::R3,       FuClass::FpAlu,   LatFpAlu,   true, false, false, false, false, false, true,  0}},
    {OpCode::MUL_D,   {"mul.d",   Format::R3,       FuClass::FpMult,  LatFpMult,  true, false, false, false, false, false, true,  0}},
    {OpCode::DIV_D,   {"div.d",   Format::R3,       FuClass::FpDiv,   LatFpDiv,   false, false, false, false, false, false, true,  0}},
    {OpCode::MOV_D,   {"mov.d",   Format::R2,       FuClass::FpAlu,   LatFpAlu,   true, false, false, false, false, false, true,  0}},
    {OpCode::NEG_D,   {"neg.d",   Format::R2,       FuClass::FpAlu,   LatFpAlu,   true, false, false, false, false, false, true,  0}},
    {OpCode::CVT_D_W, {"cvt.d.w", Format::R2,       FuClass::FpAlu,   LatFpAlu,   true, false, false, false, false, false, true,  0}},
    {OpCode::CVT_W_D, {"cvt.w.d", Format::R2,       FuClass::FpAlu,   LatFpAlu,   true, false, false, false, false, false, true,  0}},
    {OpCode::C_LT_D,  {"c.lt.d",  Format::R3,       FuClass::FpAlu,   LatFpAlu,   true, false, false, false, false, false, true,  0}},
    {OpCode::C_LE_D,  {"c.le.d",  Format::R3,       FuClass::FpAlu,   LatFpAlu,   true, false, false, false, false, false, true,  0}},
    {OpCode::C_EQ_D,  {"c.eq.d",  Format::R3,       FuClass::FpAlu,   LatFpAlu,   true, false, false, false, false, false, true,  0}},
};

constexpr int tableSize = sizeof(table) / sizeof(table[0]);

static_assert(tableSize == NumOpcodesInt,
              "opcode table must cover every OpCode exactly once");

// Dense table indexed by opcode value, verified at startup.
const std::array<OpInfo, NumOpcodesInt> &
denseTable()
{
    static const std::array<OpInfo, NumOpcodesInt> dense = [] {
        std::array<OpInfo, NumOpcodesInt> d{};
        for (const Entry &e : table) {
            int idx = static_cast<int>(e.op);
            d[static_cast<size_t>(idx)] = e.info;
        }
        for (int i = 0; i < NumOpcodesInt; ++i) {
            if (d[static_cast<size_t>(i)].mnemonic == nullptr)
                panic("opcode table missing entry for opcode %d", i);
        }
        return d;
    }();
    return dense;
}

} // namespace

const OpInfo &
opInfo(OpCode op)
{
    int idx = static_cast<int>(op);
    if (idx < 0 || idx >= NumOpcodesInt)
        panic("opInfo: invalid opcode %d", idx);
    return denseTable()[static_cast<size_t>(idx)];
}

const char *
mnemonic(OpCode op)
{
    return opInfo(op).mnemonic;
}

OpCode
parseMnemonic(const char *name)
{
    std::string lower = toLower(name);
    for (int i = 0; i < NumOpcodesInt; ++i) {
        OpCode op = static_cast<OpCode>(i);
        if (lower == opInfo(op).mnemonic)
            return op;
    }
    return OpCode::NumOpcodes;
}

} // namespace ddsim::isa
