#include "isa/encode.hh"

#include "util/log.hh"

namespace ddsim::isa {

namespace {

std::uint32_t
checkField(std::uint32_t value, std::uint32_t max, const char *what)
{
    if (value > max)
        fatal("encode: %s field %u exceeds maximum %u", what, value, max);
    return value;
}

// Logical immediates are zero-extended (as on MIPS) so that the
// canonical "lui hi; ori lo" 32-bit constant idiom works. LUI's field
// is likewise raw 16 bits.
bool
isLogicalImm(OpCode op)
{
    return op == OpCode::ANDI || op == OpCode::ORI ||
           op == OpCode::XORI || op == OpCode::LUI;
}

std::int32_t
signExtend(std::uint32_t value, int bits)
{
    std::uint32_t mask = (1u << bits) - 1;
    value &= mask;
    std::uint32_t sign = 1u << (bits - 1);
    if (value & sign)
        value |= ~mask;
    return static_cast<std::int32_t>(value);
}

} // namespace

std::uint32_t
encode(const Inst &inst)
{
    const OpInfo &info = opInfo(inst.op);
    std::uint32_t word = static_cast<std::uint32_t>(inst.op) << 26;
    std::uint32_t rs = checkField(inst.rs, 31, "rs");
    std::uint32_t rt = checkField(inst.rt, 31, "rt");
    std::uint32_t rd = checkField(inst.rd, 31, "rd");

    switch (info.fmt) {
      case Format::None:
        break;
      case Format::R3:
        word |= (rs << 21) | (rt << 16) | (rd << 11);
        break;
      case Format::R2:
        word |= (rs << 21) | (rd << 11);
        break;
      case Format::RShift:
        if (inst.imm < 0 || inst.imm > 31)
            fatal("encode: shift amount %d out of range", inst.imm);
        word |= (rs << 21) | (rd << 11) |
                (static_cast<std::uint32_t>(inst.imm) << 6);
        break;
      case Format::I2:
      case Format::I1:
      case Format::B2:
      case Format::B1:
        if (isLogicalImm(inst.op)) {
            if (inst.imm < 0 || inst.imm > 0xffff)
                fatal("encode: logical immediate %d does not fit "
                      "16 unsigned bits", inst.imm);
        } else if (inst.imm < Imm16Min || inst.imm > Imm16Max) {
            fatal("encode: immediate %d does not fit 16 bits", inst.imm);
        }
        word |= (rs << 21) | (rt << 16) |
                (static_cast<std::uint32_t>(inst.imm) & 0xffffu);
        break;
      case Format::Mem:
        if (!memOffsetFits(inst.imm))
            fatal("encode: memory offset %d does not fit 15 bits "
                  "(use a secondary base register for large frames)",
                  inst.imm);
        word |= (rs << 21) | (rt << 16);
        if (inst.localHint)
            word |= 1u << 15;
        word |= static_cast<std::uint32_t>(inst.imm) & 0x7fffu;
        break;
      case Format::Jmp:
        if (inst.target > JumpTargetMax)
            fatal("encode: jump target %u does not fit 26 bits",
                  inst.target);
        word |= inst.target;
        break;
      case Format::JmpR:
      case Format::Print:
        word |= rs << 21;
        break;
      case Format::JmpLinkR:
        word |= (rs << 21) | (rd << 11);
        break;
    }
    return word;
}

Inst
decode(std::uint32_t word)
{
    std::uint32_t opField = word >> 26;
    if (opField >= static_cast<std::uint32_t>(NumOpcodesInt))
        fatal("decode: invalid opcode %u in word 0x%08x", opField, word);

    Inst inst;
    inst.op = static_cast<OpCode>(opField);
    const OpInfo &info = opInfo(inst.op);

    std::uint32_t rs = (word >> 21) & 0x1f;
    std::uint32_t rt = (word >> 16) & 0x1f;
    std::uint32_t rd = (word >> 11) & 0x1f;
    std::uint32_t shamt = (word >> 6) & 0x1f;

    switch (info.fmt) {
      case Format::None:
        break;
      case Format::R3:
        inst.rs = static_cast<RegId>(rs);
        inst.rt = static_cast<RegId>(rt);
        inst.rd = static_cast<RegId>(rd);
        break;
      case Format::R2:
        inst.rs = static_cast<RegId>(rs);
        inst.rd = static_cast<RegId>(rd);
        break;
      case Format::RShift:
        inst.rs = static_cast<RegId>(rs);
        inst.rd = static_cast<RegId>(rd);
        inst.imm = static_cast<std::int32_t>(shamt);
        break;
      case Format::I2:
      case Format::I1:
      case Format::B2:
      case Format::B1:
        inst.rs = static_cast<RegId>(rs);
        inst.rt = static_cast<RegId>(rt);
        if (isLogicalImm(inst.op))
            inst.imm = static_cast<std::int32_t>(word & 0xffffu);
        else
            inst.imm = signExtend(word & 0xffffu, 16);
        break;
      case Format::Mem:
        inst.rs = static_cast<RegId>(rs);
        inst.rt = static_cast<RegId>(rt);
        inst.localHint = (word >> 15) & 1;
        inst.imm = signExtend(word & 0x7fffu, 15);
        break;
      case Format::Jmp:
        inst.target = word & 0x03ff'ffffu;
        break;
      case Format::JmpR:
      case Format::Print:
        inst.rs = static_cast<RegId>(rs);
        break;
      case Format::JmpLinkR:
        inst.rs = static_cast<RegId>(rs);
        inst.rd = static_cast<RegId>(rd);
        break;
    }
    return inst;
}

} // namespace ddsim::isa
