/**
 * @file
 * MISA binary encoding.
 *
 * All instructions are 32 bits:
 *
 *   [31:26] opcode
 *   R-type: [25:21] rs, [20:16] rt, [15:11] rd, [10:6] shamt
 *   I-type: [25:21] rs, [20:16] rt, [15:0] signed imm16
 *   M-type: [25:21] rs, [20:16] rt, [15] local, [14:0] signed imm15
 *   J-type: [25:0] absolute word target
 *
 * The M-type "local" bit is the compiler classification annotation of
 * Section 2.2.3; its 15-bit offset field reproduces the paper's
 * footnote-6 overflow behaviour for very large frames.
 */

#ifndef DDSIM_ISA_ENCODE_HH_
#define DDSIM_ISA_ENCODE_HH_

#include <cstdint>

#include "isa/inst.hh"

namespace ddsim::isa {

/** Smallest/largest representable memory offset (signed 15-bit). */
inline constexpr std::int32_t MemOffsetMin = -(1 << 14);
inline constexpr std::int32_t MemOffsetMax = (1 << 14) - 1;

/** Smallest/largest representable I-type immediate (signed 16-bit). */
inline constexpr std::int32_t Imm16Min = -(1 << 15);
inline constexpr std::int32_t Imm16Max = (1 << 15) - 1;

/** Largest J-type word target. */
inline constexpr std::uint32_t JumpTargetMax = (1u << 26) - 1;

/**
 * Encode a decoded instruction into its 32-bit machine form.
 * Calls fatal() if a field does not fit (e.g. an offset overflowing
 * 15 bits), since that is a program-construction error.
 */
std::uint32_t encode(const Inst &inst);

/**
 * Decode a 32-bit machine word. Calls fatal() on an invalid opcode.
 */
Inst decode(std::uint32_t word);

/** True if @p imm fits the memory offset field. */
inline bool
memOffsetFits(std::int32_t imm)
{
    return imm >= MemOffsetMin && imm <= MemOffsetMax;
}

} // namespace ddsim::isa

#endif // DDSIM_ISA_ENCODE_HH_
