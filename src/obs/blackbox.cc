#include "obs/blackbox.hh"

#include <ostream>

#include "obs/manifest.hh"
#include "obs/version.hh"
#include "stats/json.hh"
#include "util/atomic_file.hh"
#include "util/json.hh"

namespace ddsim::obs {

void
writeBlackbox(const BlackboxInfo &info, std::ostream &os)
{
    JsonWriter w(os);
    w.beginObject();
    w.field("schema", kBlackboxSchema);

    w.key("generator");
    w.beginObject();
    w.field("name", simulatorName());
    w.field("version", simulatorVersion());
    w.field("git", gitDescribe());
    w.endObject();

    w.key("run");
    w.beginObject();
    w.field("workload", info.workload);
    if (!info.label.empty())
        w.field("label", info.label);
    w.key("config");
    writeMachineConfigJson(w, info.cfg);
    w.key("options");
    w.beginObject();
    w.field("max_insts", info.maxInsts);
    w.field("warmup_insts", info.warmupInsts);
    w.field("trace_replay", info.traceReplay);
    w.field("max_cycles", info.maxCycles);
    w.field("max_wall_seconds", info.maxWallSeconds);
    w.endObject();
    w.endObject();

    w.key("error");
    w.beginObject();
    w.field("kind", info.errorKind);
    w.field("message", info.errorMessage);
    w.field("transient", info.errorTransient);
    w.key("context");
    w.beginObject();
    for (const auto &[k, v] : info.errorContext)
        w.field(k, v);
    w.endObject();
    w.endObject();

    w.key("pipeline");
    w.beginObject();
    w.field("cycle", info.cycle);
    w.field("last_commit_cycle", info.lastCommitCycle);
    w.key("rob");
    w.beginObject();
    w.field("occupancy", info.robOccupancy);
    w.field("size", info.robSize);
    w.endObject();
    w.key("lsq");
    w.beginObject();
    w.field("occupancy", info.lsqOccupancy);
    w.field("size", info.lsqSize);
    w.endObject();
    if (info.lvaqOccupancy >= 0) {
        w.key("lvaq");
        w.beginObject();
        w.field("occupancy", info.lvaqOccupancy);
        w.field("size", info.lvaqSize);
        w.endObject();
    } else {
        w.key("lvaq");
        w.valueNull();
    }
    w.field("fetch_queue", info.fetchQueue);
    w.field("fetched", info.fetched);
    w.field("committed", info.committed);
    w.key("last_commits");
    w.beginArray();
    for (const BlackboxCommit &c : info.lastCommits) {
        w.beginObject();
        w.field("seq", c.seq);
        w.field("pc", static_cast<std::uint64_t>(c.pcIdx));
        w.field("disasm", c.disasm);
        w.field("cycle", c.cycle);
        w.endObject();
    }
    w.endArray();
    w.endObject();

    if (info.stats) {
        w.key("stats");
        stats::writeGroupJson(w, *info.stats);
    } else {
        w.key("stats");
        w.valueNull();
    }

    w.endObject();
    os << '\n';
}

void
writeBlackboxFile(const BlackboxInfo &info, const std::string &path)
{
    AtomicFile file(path);
    writeBlackbox(info, file.stream());
    file.commit();
}

} // namespace ddsim::obs
