/**
 * @file
 * Interval statistics sampling: snapshot a configurable subset of the
 * stat tree every N committed instructions into a columnar in-memory
 * buffer, so end-of-run aggregates (local-access fractions, miss
 * rates, IPC) become time series. Rows store cumulative values; deltas
 * are derived at read/dump time so the sampled stats are never
 * mutated and the simulation stays bit-identical.
 */

#ifndef DDSIM_OBS_SAMPLER_HH_
#define DDSIM_OBS_SAMPLER_HH_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ddsim::stats {
class Group;
class StatBase;
}

namespace ddsim::obs {

/** Schema identifier stamped on JSON sample dumps. */
inline constexpr const char *kSamplesSchema = "ddsim-samples-v1";

/**
 * Periodic snapshotter over a stats::Group tree.
 *
 * Construction walks the tree once and pins the selected stats (the
 * tree must outlive the sampler). The hot-path hook, onCommit(), is a
 * single integer compare until a sample boundary is crossed.
 */
class Sampler
{
  public:
    /**
     * @param root Tree to sample (selected stats are pinned now).
     * @param interval Committed instructions between samples (>= 1).
     * @param filter Comma-separated dotted-path prefixes selecting
     *        which stats to track ("cpu,l1d.misses"); empty = all.
     */
    Sampler(const stats::Group &root, std::uint64_t interval,
            const std::string &filter = "");

    /** Hot-path hook: called after each commit batch. */
    void onCommit(std::uint64_t committed, std::uint64_t cycle)
    {
        if (committed >= nextAt)
            capture(committed, cycle);
    }

    /** Capture the final partial interval (idempotent per endpoint). */
    void finish(std::uint64_t committed, std::uint64_t cycle);

    std::uint64_t interval() const { return intervalN; }
    std::size_t numRows() const { return rowInsts.size(); }
    std::size_t numColumns() const { return names.size(); }
    const std::vector<std::string> &columns() const { return names; }
    std::uint64_t rowInstructions(std::size_t row) const
    {
        return rowInsts.at(row);
    }
    std::uint64_t rowCycle(std::size_t row) const
    {
        return rowCycles.at(row);
    }

    /** Cumulative value of column @p col at row @p row. */
    double valueAt(std::size_t row, std::size_t col) const
    {
        return data.at(col).at(row);
    }
    /** Delta of column @p col over the interval ending at @p row. */
    double deltaAt(std::size_t row, std::size_t col) const
    {
        return row == 0 ? data.at(col).at(0)
                        : data.at(col).at(row) - data.at(col).at(row - 1);
    }

    /** CSV dump: instructions,cycle,<one column per stat> (cumulative). */
    void dumpCsv(std::ostream &os) const;
    /** JSON dump: schema-versioned, cumulative + delta matrices. */
    void dumpJson(std::ostream &os) const;
    /** Dump to a file; format by extension (.json = JSON, else CSV). */
    void dumpFile(const std::string &path) const;

  private:
    std::uint64_t intervalN;
    std::uint64_t nextAt;
    std::vector<const stats::StatBase *> tracked;
    std::vector<std::string> names;     ///< Dotted full paths.
    std::vector<std::uint64_t> rowInsts;
    std::vector<std::uint64_t> rowCycles;
    std::vector<std::vector<double>> data; ///< [column][row].

    void capture(std::uint64_t committed, std::uint64_t cycle);
    void select(const stats::Group &g, const std::string &prefix,
                const std::vector<std::string> &filters);
};

} // namespace ddsim::obs

#endif // DDSIM_OBS_SAMPLER_HH_
