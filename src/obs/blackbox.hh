/**
 * @file
 * Crash black box: when a run dies with a SimError, the runner dumps
 * a schema-versioned JSON report ("ddsim-blackbox-v1") capturing
 * everything needed to reproduce and triage without re-running —
 * the machine configuration, the run options, the typed error with
 * its machine-readable context, a ring of the last committed
 * instructions, a snapshot of pipeline/queue occupancy at the point
 * of death, and the full stats tree.
 *
 * Like the manifest writer, this layer depends only on config/,
 * stats/ and util/: the runner flattens its cpu:: state into the
 * plain BlackboxInfo below.
 */

#ifndef DDSIM_OBS_BLACKBOX_HH_
#define DDSIM_OBS_BLACKBOX_HH_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "config/machine_config.hh"

namespace ddsim::stats {
class Group;
}

namespace ddsim::obs {

/** Schema identifier stamped on crash reports. */
inline constexpr const char *kBlackboxSchema = "ddsim-blackbox-v1";

/** One entry of the last-committed-instructions ring. */
struct BlackboxCommit
{
    std::uint64_t seq = 0;
    std::uint32_t pcIdx = 0;
    std::string disasm;
    std::uint64_t cycle = 0;
};

/** Everything a crash report records, as plain data. */
struct BlackboxInfo
{
    // ---- What was running ----
    std::string workload;
    std::string label;
    config::MachineConfig cfg;
    std::uint64_t maxInsts = 0;
    std::uint64_t warmupInsts = 0;
    bool traceReplay = false;
    std::uint64_t maxCycles = 0;
    double maxWallSeconds = 0.0;

    // ---- The typed error ----
    std::string errorKind;     ///< SimError::kind().
    std::string errorMessage;  ///< SimError::what().
    bool errorTransient = false;
    std::vector<std::pair<std::string, std::string>> errorContext;

    // ---- Pipeline state at death ----
    std::uint64_t cycle = 0;
    std::uint64_t lastCommitCycle = 0;
    int robOccupancy = 0, robSize = 0;
    int lsqOccupancy = 0, lsqSize = 0;
    int lvaqOccupancy = -1, lvaqSize = 0; ///< -1 = no LVAQ.
    std::uint64_t fetchQueue = 0;
    std::uint64_t fetched = 0;
    std::uint64_t committed = 0;
    std::vector<BlackboxCommit> lastCommits; ///< Oldest first.

    /** Full stats tree to embed (nullptr = omit). */
    const stats::Group *stats = nullptr;
};

/** Write @p info as a complete JSON document to @p os. */
void writeBlackbox(const BlackboxInfo &info, std::ostream &os);

/** writeBlackbox into a file, atomically; raises IoError on failure. */
void writeBlackboxFile(const BlackboxInfo &info, const std::string &path);

} // namespace ddsim::obs

#endif // DDSIM_OBS_BLACKBOX_HH_
