#include "obs/manifest.hh"

#include <ostream>
#include <sstream>

#include "obs/version.hh"
#include "stats/json.hh"
#include "util/atomic_file.hh"
#include "util/json.hh"
#include "util/log.hh"

namespace ddsim::obs {

namespace {

void
writeCacheParams(JsonWriter &w, const config::CacheParams &c)
{
    w.beginObject();
    w.field("size_bytes", static_cast<std::uint64_t>(c.sizeBytes));
    w.field("assoc", static_cast<std::uint64_t>(c.assoc));
    w.field("line_bytes", static_cast<std::uint64_t>(c.lineBytes));
    w.field("hit_latency", static_cast<std::uint64_t>(c.hitLatency));
    w.field("ports", c.ports);
    w.field("banks", c.banks);
    w.field("mshrs", c.mshrs);
    w.endObject();
}

} // namespace

void
writeMachineConfigJson(JsonWriter &w, const config::MachineConfig &cfg)
{
    w.beginObject();
    w.field("notation", cfg.notation());
    w.field("fetch_width", cfg.fetchWidth);
    w.field("issue_width", cfg.issueWidth);
    w.field("commit_width", cfg.commitWidth);
    w.field("rob_size", cfg.robSize);
    w.field("lsq_size", cfg.lsqSize);
    w.field("lvaq_size", cfg.lvaqSize);
    w.field("num_int_alu", cfg.numIntAlu);
    w.field("num_fp_alu", cfg.numFpAlu);
    w.field("num_int_mult_div", cfg.numIntMultDiv);
    w.field("num_fp_mult_div", cfg.numFpMultDiv);
    w.key("l1");
    writeCacheParams(w, cfg.l1);
    w.field("lvc_enabled", cfg.lvcEnabled);
    w.key("lvc");
    writeCacheParams(w, cfg.lvc);
    w.key("l2");
    writeCacheParams(w, cfg.l2);
    w.field("mem_latency", static_cast<std::uint64_t>(cfg.memLatency));
    w.field("classifier", config::classifierName(cfg.classifier));
    w.field("fast_forward", cfg.fastForward);
    w.field("combining", cfg.combining);
    w.field("forward_latency",
            static_cast<std::uint64_t>(cfg.forwardLatency));
    w.field("mispredict_penalty",
            static_cast<std::uint64_t>(cfg.mispredictPenalty));
    w.endObject();
}

void
writeManifest(const ManifestInfo &info, std::ostream &os)
{
    JsonWriter w(os);
    w.beginObject();
    w.field("schema", kManifestSchema);

    w.key("generator");
    w.beginObject();
    w.field("name", simulatorName());
    w.field("version", simulatorVersion());
    w.field("git", gitDescribe());
    w.endObject();

    w.key("run");
    w.beginObject();
    w.field("workload", info.workload);
    if (!info.label.empty())
        w.field("label", info.label);
    w.key("config");
    writeMachineConfigJson(w, info.cfg);
    w.key("options");
    w.beginObject();
    w.field("max_insts", info.maxInsts);
    w.field("warmup_insts", info.warmupInsts);
    w.field("trace_replay", info.traceReplay);
    w.field("engine", info.engine);
    w.field("max_cycles", info.maxCycles);
    w.field("max_wall_seconds", info.maxWallSeconds);
    w.endObject();
    if (!info.traceSourceFormat.empty()) {
        // Ingested-stream provenance: present only when the run
        // replayed an external trace, so workload-driven manifests
        // stay byte-identical to previous schema revisions.
        w.key("trace_source");
        w.beginObject();
        w.field("format", info.traceSourceFormat);
        w.field("path", info.traceSourcePath);
        w.field("insts", info.traceSourceInsts);
        w.field("hints_valid", info.traceSourceHints);
        w.endObject();
    }
    w.key("observability");
    w.beginObject();
    w.field("trace_path", info.tracePath);
    w.field("sample_path", info.samplePath);
    w.field("sample_interval", info.sampleInterval);
    w.endObject();
    w.field("wall_seconds", info.wallSeconds);
    w.endObject();

    w.key("result");
    w.beginObject();
    w.field("cycles", info.cycles);
    w.field("committed", info.committed);
    w.field("ipc", info.ipc);
    w.key("streams");
    w.beginObject();
    w.key("lsq");
    w.beginObject();
    w.field("loads", info.lsqLoads);
    w.field("stores", info.lsqStores);
    w.endObject();
    w.key("lvaq");
    w.beginObject();
    w.field("loads", info.lvaqLoads);
    w.field("stores", info.lvaqStores);
    w.endObject();
    w.endObject();
    if (info.sampled) {
        // Estimate provenance: how the sampled engine arrived at
        // cycles/ipc and how tight the estimate is. Exact engines
        // omit the block entirely so their manifests stay stable.
        w.key("sampling");
        w.beginObject();
        w.field("period", info.samplingPeriod);
        w.field("detail", info.samplingDetail);
        w.field("warmup", info.samplingWarmup);
        w.field("windows", info.samplingWindows);
        w.field("detail_insts", info.samplingDetailInsts);
        w.field("detail_cycles", info.samplingDetailCycles);
        // A confidence interval needs at least two windows; with one
        // (or zero, for sub-window programs) the half-width would be
        // a meaningless 0.0, so the field is omitted instead.
        if (info.samplingWindows >= 2)
            w.field("ipc_ci95", info.samplingIpcCi95);
        w.endObject();
    }
    w.endObject();

    if (info.stats) {
        w.key("stats");
        stats::writeGroupJson(w, *info.stats);
    } else {
        w.key("stats");
        w.valueNull();
    }

    w.endObject();
    os << '\n';
}

std::string
manifestToJson(const ManifestInfo &info)
{
    std::ostringstream os;
    writeManifest(info, os);
    return os.str();
}

void
writeManifestFile(const ManifestInfo &info, const std::string &path)
{
    AtomicFile file(path);
    writeManifest(info, file.stream());
    file.commit();
}

} // namespace ddsim::obs
