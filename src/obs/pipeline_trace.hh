/**
 * @file
 * Per-instruction pipeline lifecycle tracing. Every committed
 * instruction produces one compact binary record: the cycle it passed
 * each stage (fetch, dispatch, queue entry, issue, cache access /
 * forward, writeback, commit), which memory stream served it (LSQ vs
 * LVAQ), and how (cache port, in-queue forward, fast forward,
 * combined grant). Records are written in commit order, which on this
 * machine (perfect front end, no squashes) is also fetch order.
 *
 * Binary format "ddtrace1" (all integers little-endian):
 *
 *   magic     8 bytes  "ddtrace1"
 *   version   u32      currently 1
 *   workload  u16 len + bytes
 *   notation  u16 len + bytes
 *   label     u16 len + bytes
 *   records   u64      record count (patched on finish; ~0 = writer
 *                      died before finish)
 *   then per record:
 *     seqDelta    varint  sequence number delta from previous record
 *     pcIdx       varint  static instruction index
 *     flags       u8      bit0 load, bit1 store, bit2 LVAQ stream,
 *                         bit3 replicated, bit4 forwarded,
 *                         bit5 fast-forwarded, bit6 combined,
 *                         bit7 missteered
 *     commitDelta varint  commit cycle delta from previous record
 *     6 x varint          backward offsets from the commit cycle for
 *                         fetch, dispatch, queue-enter, issue,
 *                         access, writeback; encoded as
 *                         (commit - cycle + 1), 0 = cycle unknown
 *
 * Varints are LEB128 (7 bits per byte, high bit = continuation).
 */

#ifndef DDSIM_OBS_PIPELINE_TRACE_HH_
#define DDSIM_OBS_PIPELINE_TRACE_HH_

#include <cstdint>
#include <deque>
#include <fstream>
#include <string>
#include <vector>

#include "util/atomic_file.hh"

namespace ddsim::obs {

/** Trace format version written by this build. */
inline constexpr std::uint32_t kTraceVersion = 1;
/** File magic. */
inline constexpr char kTraceMagic[8] = {'d', 'd', 't', 'r',
                                        'a', 'c', 'e', '1'};

/** Sentinel for "this cycle was never observed". */
inline constexpr std::uint64_t kNoCycle = ~std::uint64_t{0};

/** One decoded (or to-be-encoded) instruction lifecycle record. */
struct TraceRecord
{
    std::uint64_t seq = 0;      ///< Dynamic sequence number.
    std::uint32_t pcIdx = 0;    ///< Static instruction index.

    bool isLoad = false;
    bool isStore = false;
    bool lvaqStream = false;    ///< Served by the LVAQ (else LSQ).
    bool replicated = false;    ///< Inserted into both queues.
    bool forwarded = false;     ///< In-queue store-to-load forward.
    bool fastForwarded = false; ///< Offset-matched fast forward.
    bool combined = false;      ///< Rode a combined port grant.
    bool missteered = false;    ///< Classifier picked the wrong queue.

    std::uint64_t fetchCycle = kNoCycle;
    std::uint64_t dispatchCycle = kNoCycle;
    std::uint64_t queueCycle = kNoCycle;  ///< Memory queue entry.
    std::uint64_t issueCycle = kNoCycle;  ///< FU / AGU issue.
    std::uint64_t accessCycle = kNoCycle; ///< Cache access or forward.
    std::uint64_t wbCycle = kNoCycle;     ///< Result writeback.
    std::uint64_t commitCycle = 0;
};

/**
 * Streams TraceRecords to a binary file as instructions commit. The
 * cpu::Pipeline drives it through four hooks; all per-slot lifecycle
 * bookkeeping (fetch-cycle FIFO, per-ROB-slot fetch/issue cycles)
 * lives here so the pipeline pays nothing when tracing is off.
 */
class PipelineTracer
{
  public:
    /**
     * @param path Output file. The trace streams to "<path>.tmp" and
     *             only lands under @p path when finish() completes, so
     *             a killed run never leaves a torn trace; raises
     *             IoError if the temporary cannot be opened.
     * @param robSize Slots in the pipeline's reorder buffer.
     */
    PipelineTracer(const std::string &path, const std::string &workload,
                   const std::string &notation, const std::string &label,
                   int robSize);
    ~PipelineTracer();

    PipelineTracer(const PipelineTracer &) = delete;
    PipelineTracer &operator=(const PipelineTracer &) = delete;

    /** An instruction entered the fetch queue this cycle. */
    void onFetch(std::uint64_t cycle) { fetchFifo.push_back(cycle); }

    /** The oldest fetched instruction dispatched into ROB slot @p idx. */
    void onDispatch(int robIdx, std::uint64_t seq, std::uint64_t cycle);

    /** ROB slot @p idx issued (FU grant or address generation). */
    void onIssue(int robIdx, std::uint64_t cycle)
    {
        slots[static_cast<std::size_t>(robIdx)].issue = cycle;
    }

    /**
     * ROB slot @p robIdx committed. @p rec carries everything the
     * pipeline knows (pc, flags, dispatch/queue/access/wb/commit);
     * fetch and issue cycles are filled in from the slot state
     * recorded by the earlier hooks, then the record is encoded.
     */
    void onCommit(int robIdx, TraceRecord rec);

    /**
     * Patch the record count into the header, then atomically rename
     * the temporary onto the final path; raises IoError on failure.
     */
    void finish();

    /** Delete the temporary without publishing anything (error path). */
    void abandon();

    std::uint64_t records() const { return numRecords; }

  private:
    struct SlotState
    {
        std::uint64_t seq = kNoCycle; ///< Tag; kNoCycle = never set.
        std::uint64_t fetch = kNoCycle;
        std::uint64_t issue = kNoCycle;
    };

    AtomicFile file;
    std::ofstream &os; ///< file.stream(), for terse encode calls.
    std::vector<SlotState> slots;
    std::deque<std::uint64_t> fetchFifo;
    std::uint64_t numRecords = 0;
    std::uint64_t prevCommit = 0;
    std::uint64_t prevSeq = 0;
    std::streampos countPos;
    bool finished = false;

    void putVarint(std::uint64_t v);
};

/** Header fields of a trace file. */
struct TraceHeader
{
    std::uint32_t version = 0;
    std::string workload;
    std::string notation;
    std::string label;
    std::uint64_t recordCount = 0;
};

/** Sequentially decodes a trace file written by PipelineTracer. */
class TraceReader
{
  public:
    /**
     * Opens and validates the header. Raises IoError if the file
     * cannot be opened and TraceCorruptError (with the byte offset of
     * the first undecodable input) on bad magic, an unsupported
     * version, a truncated header, or an unfinalized count.
     */
    explicit TraceReader(const std::string &path);

    const TraceHeader &header() const { return hdr; }

    /**
     * Decode the next record; false at end of stream. Any truncation,
     * malformed varint or impossible stage offset raises
     * TraceCorruptError — corrupt input never reads out of bounds or
     * underflows a cycle computation.
     */
    bool next(TraceRecord &rec);

  private:
    std::ifstream is;
    std::string path_;
    TraceHeader hdr;
    std::uint64_t prevCommit = 0;
    std::uint64_t prevSeq = 0;
    std::uint64_t decodedCount = 0;

    bool getVarint(std::uint64_t &v);
    /** Current byte offset for corruption reports. */
    std::uint64_t offset();
    [[noreturn]] void corrupt(std::uint64_t off, const std::string &msg);
};

} // namespace ddsim::obs

#endif // DDSIM_OBS_PIPELINE_TRACE_HH_
