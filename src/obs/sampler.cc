#include "obs/sampler.hh"

#include <ostream>

#include "stats/group.hh"
#include "util/atomic_file.hh"
#include "util/json.hh"
#include "util/log.hh"
#include "util/str.hh"

namespace ddsim::obs {

namespace {

bool
matchesFilter(const std::string &path,
              const std::vector<std::string> &filters)
{
    if (filters.empty())
        return true;
    for (const std::string &f : filters) {
        if (f.empty())
            continue;
        // A filter selects the stat it names exactly, or everything
        // under the group it names.
        if (path == f)
            return true;
        if (path.size() > f.size() && path.compare(0, f.size(), f) == 0 &&
            path[f.size()] == '.')
            return true;
    }
    return false;
}

} // namespace

Sampler::Sampler(const stats::Group &root, std::uint64_t interval,
                 const std::string &filter)
    : intervalN(interval ? interval : 1), nextAt(intervalN)
{
    std::vector<std::string> filters;
    for (const std::string &f : split(filter, ','))
        if (!f.empty())
            filters.push_back(f);
    select(root, "", filters);
    data.resize(names.size());
}

void
Sampler::select(const stats::Group &g, const std::string &prefix,
                const std::vector<std::string> &filters)
{
    for (const stats::StatBase *s : g.stats()) {
        std::string path =
            prefix.empty() ? s->name() : prefix + "." + s->name();
        if (matchesFilter(path, filters)) {
            tracked.push_back(s);
            names.push_back(std::move(path));
        }
    }
    for (const stats::Group *c : g.children()) {
        std::string childPrefix = c->name().empty()
            ? prefix
            : (prefix.empty() ? c->name() : prefix + "." + c->name());
        select(*c, childPrefix, filters);
    }
}

void
Sampler::capture(std::uint64_t committed, std::uint64_t cycle)
{
    rowInsts.push_back(committed);
    rowCycles.push_back(cycle);
    for (std::size_t i = 0; i < tracked.size(); ++i)
        data[i].push_back(tracked[i]->report());
    // Advance past the instruction count actually reached, so a
    // commit batch that jumps several boundaries produces one row.
    while (nextAt <= committed)
        nextAt += intervalN;
}

void
Sampler::finish(std::uint64_t committed, std::uint64_t cycle)
{
    if (!rowInsts.empty() && rowInsts.back() == committed)
        return;
    capture(committed, cycle);
}

void
Sampler::dumpCsv(std::ostream &os) const
{
    os << "instructions,cycle";
    for (const std::string &n : names)
        os << ',' << n;
    os << '\n';
    for (std::size_t r = 0; r < rowInsts.size(); ++r) {
        os << rowInsts[r] << ',' << rowCycles[r];
        for (std::size_t c = 0; c < data.size(); ++c) {
            os << ',';
            double v = data[c][r];
            // Counters dominate; print them without a decimal point.
            if (v == static_cast<double>(static_cast<std::int64_t>(v)))
                os << static_cast<std::int64_t>(v);
            else
                os << v;
        }
        os << '\n';
    }
}

void
Sampler::dumpJson(std::ostream &os) const
{
    JsonWriter w(os);
    w.beginObject();
    w.field("schema", kSamplesSchema);
    w.field("interval", intervalN);
    w.key("columns");
    w.beginArray();
    for (const std::string &n : names)
        w.value(n);
    w.endArray();
    w.key("instructions");
    w.beginArray();
    for (std::uint64_t v : rowInsts)
        w.value(v);
    w.endArray();
    w.key("cycles");
    w.beginArray();
    for (std::uint64_t v : rowCycles)
        w.value(v);
    w.endArray();
    w.key("cumulative");
    w.beginArray();
    for (const auto &col : data) {
        w.beginArray();
        for (double v : col)
            w.value(v);
        w.endArray();
    }
    w.endArray();
    w.key("delta");
    w.beginArray();
    for (std::size_t c = 0; c < data.size(); ++c) {
        w.beginArray();
        for (std::size_t r = 0; r < data[c].size(); ++r)
            w.value(deltaAt(r, c));
        w.endArray();
    }
    w.endArray();
    w.endObject();
    os << '\n';
}

void
Sampler::dumpFile(const std::string &path) const
{
    AtomicFile file(path);
    if (path.size() >= 5 &&
        path.compare(path.size() - 5, 5, ".json") == 0)
        dumpJson(file.stream());
    else
        dumpCsv(file.stream());
    file.commit();
}

} // namespace ddsim::obs
