/**
 * @file
 * Build provenance for run manifests: the `git describe` string baked
 * in at configure time, plus the simulator name/version.
 */

#ifndef DDSIM_OBS_VERSION_HH_
#define DDSIM_OBS_VERSION_HH_

namespace ddsim::obs {

/** Simulator name as stamped into manifests. */
const char *simulatorName();

/** Semantic version from the CMake project(). */
const char *simulatorVersion();

/**
 * `git describe --always --dirty` captured when the build was
 * configured; "unknown" when the source tree was not a git checkout.
 */
const char *gitDescribe();

} // namespace ddsim::obs

#endif // DDSIM_OBS_VERSION_HH_
