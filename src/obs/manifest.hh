/**
 * @file
 * Run manifests: a schema-versioned JSON record of one simulation —
 * who produced it (git describe, simulator version), what ran
 * (workload, machine configuration, run options), how long it took,
 * a result summary, and the complete statistics tree. Written by
 * sim::run() when RunOptions::manifestPath / captureManifest is set.
 *
 * The obs layer deliberately depends only on config/, stats/ and
 * util/; the runner assembles a plain ManifestInfo so sim/ types never
 * leak down here.
 */

#ifndef DDSIM_OBS_MANIFEST_HH_
#define DDSIM_OBS_MANIFEST_HH_

#include <cstdint>
#include <iosfwd>
#include <string>

#include "config/machine_config.hh"

namespace ddsim {
class JsonWriter;
}

namespace ddsim::stats {
class Group;
}

namespace ddsim::obs {

/** Schema identifier stamped on per-run manifests. */
inline constexpr const char *kManifestSchema = "ddsim-manifest-v1";
/** Schema identifier stamped on sweep-level aggregate manifests. */
inline constexpr const char *kSweepManifestSchema =
    "ddsim-sweep-manifest-v1";

/** Everything a per-run manifest records, as plain data. */
struct ManifestInfo
{
    // ---- What ran ----
    std::string workload;            ///< Program name.
    std::string label;               ///< Free-form run label (optional).
    config::MachineConfig cfg;       ///< Machine configuration.
    std::uint64_t maxInsts = 0;      ///< RunOptions::maxInsts.
    std::uint64_t warmupInsts = 0;   ///< RunOptions::warmupInsts.
    bool traceReplay = false;        ///< Replayed a recorded trace?
    /**
     * The engine that effectively drove the run: "live", "replay" or
     * "sampled". Batched multi-config replay records "replay" — its
     * results are byte-identical to independent replays, and the
     * manifest must stay byte-identical too (the farm's merge
     * comparison depends on it).
     */
    std::string engine = "live";
    std::uint64_t maxCycles = 0;     ///< Cycle budget (0 = unlimited).
    double maxWallSeconds = 0.0;     ///< Wall budget (0 = unlimited).

    // ---- External-trace provenance ----
    /**
     * Where the instruction stream came from when it was ingested
     * rather than generated: "xtrace" (a ddsim-xtrace-v1 file),
     * "text" (converted from the public text trace format) or
     * "workload" (recorded from a registry program and saved). Empty
     * = the stream came from the named workload itself and the
     * run.trace_source block is omitted, keeping every pre-existing
     * manifest byte-identical.
     */
    std::string traceSourceFormat;
    std::string traceSourcePath;     ///< File the trace was loaded from.
    std::uint64_t traceSourceInsts = 0;   ///< Records in the trace.
    bool traceSourceHints = false;   ///< Local hints burned into text?

    // ---- Active observability outputs ----
    std::string tracePath;           ///< Binary pipeline trace ("" = off).
    std::string samplePath;          ///< Interval sample dump ("" = off).
    std::uint64_t sampleInterval = 0;

    // ---- Outcome summary ----
    std::uint64_t cycles = 0;
    std::uint64_t committed = 0;
    double ipc = 0.0;
    std::uint64_t lsqLoads = 0;      ///< Loads issued through the LSQ.
    std::uint64_t lsqStores = 0;
    std::uint64_t lvaqLoads = 0;     ///< Loads issued through the LVAQ.
    std::uint64_t lvaqStores = 0;
    double wallSeconds = 0.0;        ///< Host wall-clock for the run.

    // ---- Sampled-engine estimate provenance ----
    /** True = cycles/ipc above are SMARTS estimates; a "sampling"
     *  block with the plan and error bar joins the result. */
    bool sampled = false;
    std::uint64_t samplingPeriod = 0;
    std::uint64_t samplingDetail = 0;
    std::uint64_t samplingWarmup = 0;
    std::uint64_t samplingWindows = 0;
    std::uint64_t samplingDetailInsts = 0;
    std::uint64_t samplingDetailCycles = 0;
    double samplingIpcCi95 = 0.0;    ///< 95% CI half-width on IPC.

    /** Full stats tree to embed (nullptr = omit). */
    const stats::Group *stats = nullptr;
};

/** Write @p info as a complete JSON document to @p os. */
void writeManifest(const ManifestInfo &info, std::ostream &os);

/** Write @p cfg as a JSON object in value position (shared by the
 *  manifest and black-box writers). */
void writeMachineConfigJson(JsonWriter &w,
                            const config::MachineConfig &cfg);

/** writeManifest into a string. */
std::string manifestToJson(const ManifestInfo &info);

/** writeManifest into a file, atomically (write-temp-then-rename);
 *  raises IoError if the file cannot be written. */
void writeManifestFile(const ManifestInfo &info, const std::string &path);

} // namespace ddsim::obs

#endif // DDSIM_OBS_MANIFEST_HH_
