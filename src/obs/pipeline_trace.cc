#include "obs/pipeline_trace.hh"

#include <cstring>

#include "util/log.hh"

namespace ddsim::obs {

namespace {

void
putU16(std::ostream &os, std::uint16_t v)
{
    char b[2] = {static_cast<char>(v & 0xff),
                 static_cast<char>((v >> 8) & 0xff)};
    os.write(b, 2);
}

void
putU32(std::ostream &os, std::uint32_t v)
{
    char b[4];
    for (int i = 0; i < 4; ++i)
        b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    os.write(b, 4);
}

void
putU64(std::ostream &os, std::uint64_t v)
{
    char b[8];
    for (int i = 0; i < 8; ++i)
        b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    os.write(b, 8);
}

void
putString(std::ostream &os, const std::string &s)
{
    if (s.size() > 0xffff)
        fatal("trace header string too long (%zu bytes)", s.size());
    putU16(os, static_cast<std::uint16_t>(s.size()));
    os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool
getU16(std::istream &is, std::uint16_t &v)
{
    unsigned char b[2];
    if (!is.read(reinterpret_cast<char *>(b), 2))
        return false;
    v = static_cast<std::uint16_t>(b[0] | (b[1] << 8));
    return true;
}

bool
getU32(std::istream &is, std::uint32_t &v)
{
    unsigned char b[4];
    if (!is.read(reinterpret_cast<char *>(b), 4))
        return false;
    v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
    return true;
}

bool
getU64(std::istream &is, std::uint64_t &v)
{
    unsigned char b[8];
    if (!is.read(reinterpret_cast<char *>(b), 8))
        return false;
    v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
    return true;
}

bool
getString(std::istream &is, std::string &s)
{
    std::uint16_t len;
    if (!getU16(is, len))
        return false;
    s.resize(len);
    return len == 0 ||
           static_cast<bool>(is.read(s.data(), len));
}

/** Backward offset encoding: 0 = unknown, else commit - cycle + 1. */
std::uint64_t
encodeBack(std::uint64_t commit, std::uint64_t cycle)
{
    if (cycle == kNoCycle)
        return 0;
    if (cycle > commit)
        panic("trace event cycle %llu after its commit cycle %llu",
              (unsigned long long)cycle, (unsigned long long)commit);
    return commit - cycle + 1;
}

std::uint64_t
decodeBack(std::uint64_t commit, std::uint64_t back)
{
    return back == 0 ? kNoCycle : commit - (back - 1);
}

} // namespace

// ---- Writer ----------------------------------------------------------------

PipelineTracer::PipelineTracer(const std::string &path,
                               const std::string &workload,
                               const std::string &notation,
                               const std::string &label, int robSize)
    : file(path, /*binary=*/true), os(file.stream()),
      slots(static_cast<std::size_t>(robSize))
{
    os.write(kTraceMagic, sizeof(kTraceMagic));
    putU32(os, kTraceVersion);
    putString(os, workload);
    putString(os, notation);
    putString(os, label);
    countPos = os.tellp();
    putU64(os, ~std::uint64_t{0}); // Patched by finish().
}

PipelineTracer::~PipelineTracer()
{
    // A destructor must not throw; if the final flush/rename fails
    // here (rather than in an explicit finish() call), warn and leave
    // only the .tmp behind.
    try {
        finish();
    } catch (const SimError &e) {
        warn("discarding pipeline trace: %s", e.what());
    }
}

void
PipelineTracer::putVarint(std::uint64_t v)
{
    char buf[10];
    int n = 0;
    do {
        char byte = static_cast<char>(v & 0x7f);
        v >>= 7;
        if (v)
            byte |= static_cast<char>(0x80);
        buf[n++] = byte;
    } while (v);
    os.write(buf, n);
}

void
PipelineTracer::onDispatch(int robIdx, std::uint64_t seq,
                           std::uint64_t cycle)
{
    SlotState &s = slots[static_cast<std::size_t>(robIdx)];
    s.seq = seq;
    s.issue = kNoCycle;
    if (fetchFifo.empty()) {
        // Fetched before the tracer attached (warmup overlap).
        s.fetch = kNoCycle;
    } else {
        s.fetch = fetchFifo.front();
        fetchFifo.pop_front();
    }
    (void)cycle; // Dispatch cycle reaches onCommit via the ROB entry.
}

void
PipelineTracer::onCommit(int robIdx, TraceRecord rec)
{
    SlotState &s = slots[static_cast<std::size_t>(robIdx)];
    if (s.seq == rec.seq) {
        rec.fetchCycle = s.fetch;
        rec.issueCycle = s.issue;
    }
    // else: dispatched before the tracer attached; leave unknown.

    putVarint(rec.seq - prevSeq);
    prevSeq = rec.seq;
    putVarint(rec.pcIdx);
    std::uint8_t flags = 0;
    flags |= rec.isLoad ? 0x01 : 0;
    flags |= rec.isStore ? 0x02 : 0;
    flags |= rec.lvaqStream ? 0x04 : 0;
    flags |= rec.replicated ? 0x08 : 0;
    flags |= rec.forwarded ? 0x10 : 0;
    flags |= rec.fastForwarded ? 0x20 : 0;
    flags |= rec.combined ? 0x40 : 0;
    flags |= rec.missteered ? 0x80 : 0;
    os.put(static_cast<char>(flags));
    putVarint(rec.commitCycle - prevCommit);
    prevCommit = rec.commitCycle;
    putVarint(encodeBack(rec.commitCycle, rec.fetchCycle));
    putVarint(encodeBack(rec.commitCycle, rec.dispatchCycle));
    putVarint(encodeBack(rec.commitCycle, rec.queueCycle));
    putVarint(encodeBack(rec.commitCycle, rec.issueCycle));
    putVarint(encodeBack(rec.commitCycle, rec.accessCycle));
    putVarint(encodeBack(rec.commitCycle, rec.wbCycle));
    ++numRecords;
}

void
PipelineTracer::finish()
{
    if (finished)
        return;
    finished = true;
    os.seekp(countPos);
    putU64(os, numRecords);
    file.commit();
}

void
PipelineTracer::abandon()
{
    finished = true;
    file.abandon();
}

// ---- Reader ----------------------------------------------------------------

std::uint64_t
TraceReader::offset()
{
    // After a failed read the stream position is lost (tellg() is -1
    // with failbit set); report the last known-good position instead.
    if (!is) {
        is.clear();
        is.seekg(0, std::ios::end);
    }
    std::streampos p = is.tellg();
    return p < 0 ? 0 : static_cast<std::uint64_t>(p);
}

void
TraceReader::corrupt(std::uint64_t off, const std::string &msg)
{
    raise(TraceCorruptError(
        path_, off,
        format("'%s' at byte %llu: %s", path_.c_str(),
               (unsigned long long)off, msg.c_str())));
}

TraceReader::TraceReader(const std::string &path)
    : is(path, std::ios::binary), path_(path)
{
    if (!is)
        raise(IoError(path, format("cannot open trace file '%s'",
                                   path.c_str())));
    char magic[sizeof(kTraceMagic)];
    if (!is.read(magic, sizeof(magic)) ||
        std::memcmp(magic, kTraceMagic, sizeof(magic)) != 0)
        corrupt(0, "not a ddtrace file (bad magic)");
    if (!getU32(is, hdr.version))
        corrupt(offset(), "truncated trace header (version)");
    if (hdr.version != kTraceVersion)
        corrupt(sizeof(kTraceMagic),
                format("unsupported trace version %u", hdr.version));
    if (!getString(is, hdr.workload) || !getString(is, hdr.notation) ||
        !getString(is, hdr.label))
        corrupt(offset(), "truncated trace header (strings)");
    std::uint64_t countOff = offset();
    if (!getU64(is, hdr.recordCount))
        corrupt(countOff, "truncated trace header (record count)");
    if (hdr.recordCount == ~std::uint64_t{0})
        corrupt(countOff,
                "trace was never finalized (writer died mid-run)");
}

bool
TraceReader::getVarint(std::uint64_t &v)
{
    v = 0;
    int shift = 0;
    while (true) {
        int c = is.get();
        if (c == std::char_traits<char>::eof())
            return false;
        v |= static_cast<std::uint64_t>(c & 0x7f) << shift;
        if (!(c & 0x80))
            return true;
        shift += 7;
        if (shift >= 64)
            corrupt(offset(),
                    "malformed varint (continuation past 64 bits)");
    }
}

bool
TraceReader::next(TraceRecord &rec)
{
    if (decodedCount >= hdr.recordCount)
        return false;
    std::uint64_t seqDelta, pcIdx, commitDelta;
    std::uint64_t back[6];
    if (!getVarint(seqDelta))
        corrupt(offset(),
                format("truncated after %llu of %llu records",
                       (unsigned long long)decodedCount,
                       (unsigned long long)hdr.recordCount));
    if (!getVarint(pcIdx))
        corrupt(offset(), "record truncated (pc)");
    if (pcIdx > 0xffffffffu)
        corrupt(offset(), "pc index exceeds 32 bits");
    int flagsByte = is.get();
    if (flagsByte == std::char_traits<char>::eof())
        corrupt(offset(), "record truncated (flags)");
    if (!getVarint(commitDelta))
        corrupt(offset(), "record truncated (commit)");
    for (std::uint64_t &b : back)
        if (!getVarint(b))
            corrupt(offset(), "record truncated (stage offsets)");

    rec = TraceRecord{};
    rec.seq = prevSeq + seqDelta;
    prevSeq = rec.seq;
    rec.pcIdx = static_cast<std::uint32_t>(pcIdx);
    auto flags = static_cast<std::uint8_t>(flagsByte);
    rec.isLoad = flags & 0x01;
    rec.isStore = flags & 0x02;
    rec.lvaqStream = flags & 0x04;
    rec.replicated = flags & 0x08;
    rec.forwarded = flags & 0x10;
    rec.fastForwarded = flags & 0x20;
    rec.combined = flags & 0x40;
    rec.missteered = flags & 0x80;
    rec.commitCycle = prevCommit + commitDelta;
    prevCommit = rec.commitCycle;
    // A backward stage offset beyond the commit cycle would wrap the
    // subtraction in decodeBack; a bit-flipped offset must not turn
    // into a 10^19-cycle "event".
    for (std::uint64_t b : back)
        if (b != 0 && b - 1 > rec.commitCycle)
            corrupt(offset(),
                    format("stage offset %llu before cycle 0 "
                           "(commit cycle %llu)",
                           (unsigned long long)b,
                           (unsigned long long)rec.commitCycle));
    rec.fetchCycle = decodeBack(rec.commitCycle, back[0]);
    rec.dispatchCycle = decodeBack(rec.commitCycle, back[1]);
    rec.queueCycle = decodeBack(rec.commitCycle, back[2]);
    rec.issueCycle = decodeBack(rec.commitCycle, back[3]);
    rec.accessCycle = decodeBack(rec.commitCycle, back[4]);
    rec.wbCycle = decodeBack(rec.commitCycle, back[5]);
    ++decodedCount;
    return true;
}

} // namespace ddsim::obs
