#include "obs/version.hh"

#ifndef DDSIM_GIT_DESCRIBE
#define DDSIM_GIT_DESCRIBE "unknown"
#endif

#ifndef DDSIM_VERSION_STRING
#define DDSIM_VERSION_STRING "0.0.0"
#endif

namespace ddsim::obs {

const char *
simulatorName()
{
    return "ddsim";
}

const char *
simulatorVersion()
{
    return DDSIM_VERSION_STRING;
}

const char *
gitDescribe()
{
    return DDSIM_GIT_DESCRIBE;
}

} // namespace ddsim::obs
