#include "util/str.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace ddsim {

std::string_view
trim(std::string_view s)
{
    size_t b = 0;
    while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    size_t e = s.size();
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::vector<std::string>
split(std::string_view s, char delim)
{
    std::vector<std::string> out;
    size_t start = 0;
    for (size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == delim) {
            out.emplace_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::vector<std::string>
splitWs(std::string_view s)
{
    std::vector<std::string> out;
    size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() &&
               std::isspace(static_cast<unsigned char>(s[i])))
            ++i;
        size_t start = i;
        while (i < s.size() &&
               !std::isspace(static_cast<unsigned char>(s[i])))
            ++i;
        if (i > start)
            out.emplace_back(s.substr(start, i - start));
    }
    return out;
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() &&
           s.substr(0, prefix.size()) == prefix;
}

std::string
toLower(std::string_view s)
{
    std::string out(s);
    for (char &c : out)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return out;
}

bool
parseInt(std::string_view s, std::int64_t &out)
{
    s = trim(s);
    if (s.empty())
        return false;
    std::string tmp(s);
    errno = 0;
    char *end = nullptr;
    long long v = std::strtoll(tmp.c_str(), &end, 0);
    if (errno != 0 || end != tmp.c_str() + tmp.size())
        return false;
    out = v;
    return true;
}

bool
parseDouble(std::string_view s, double &out)
{
    s = trim(s);
    if (s.empty())
        return false;
    std::string tmp(s);
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(tmp.c_str(), &end);
    if (errno != 0 || end != tmp.c_str() + tmp.size())
        return false;
    out = v;
    return true;
}

bool
parseSize(std::string_view s, std::uint64_t &out)
{
    s = trim(s);
    if (s.empty())
        return false;
    std::uint64_t mult = 1;
    char last = s.back();
    if (last == 'K' || last == 'k') {
        mult = 1024;
        s.remove_suffix(1);
    } else if (last == 'M' || last == 'm') {
        mult = 1024 * 1024;
        s.remove_suffix(1);
    }
    std::int64_t v = 0;
    if (!parseInt(s, v) || v < 0)
        return false;
    out = static_cast<std::uint64_t>(v) * mult;
    return true;
}

} // namespace ddsim
