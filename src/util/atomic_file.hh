/**
 * @file
 * Crash-safe file output: write to "<path>.tmp", then fsync it and
 * rename onto the final path on commit() (the rename and directory
 * fsync route through io::vfs(), so tests can fault-inject every
 * step). A run killed mid-write (SIGKILL, OOM, power) can leave a
 * stale .tmp behind but never a torn manifest, sample dump or trace
 * under the real name — readers either see the complete old file, the
 * complete new file, or nothing.
 *
 * Every observability writer (run/sweep manifests, interval samples,
 * pipeline traces, black-box reports) goes through this class.
 */

#ifndef DDSIM_UTIL_ATOMIC_FILE_HH_
#define DDSIM_UTIL_ATOMIC_FILE_HH_

#include <fstream>
#include <string>

namespace ddsim {

class AtomicFile
{
  public:
    /**
     * Open "<path>.tmp" for writing (truncating any stale one).
     * @param binary Open in binary mode.
     * @throws IoError if the temporary cannot be opened.
     */
    explicit AtomicFile(std::string path, bool binary = false);

    /** Discards the temporary unless commit() ran. */
    ~AtomicFile();

    AtomicFile(const AtomicFile &) = delete;
    AtomicFile &operator=(const AtomicFile &) = delete;

    /** The stream to write; valid until commit()/abandon(). */
    std::ofstream &stream() { return os; }

    /**
     * Flush, close and rename the temporary onto the final path.
     * @throws IoError if the stream failed or the rename does.
     */
    void commit();

    /** Close and delete the temporary (no-op after commit()). */
    void abandon();

    const std::string &path() const { return path_; }
    const std::string &tempPath() const { return tmp_; }

  private:
    std::string path_;
    std::string tmp_;
    std::ofstream os;
    bool done_ = false;
};

} // namespace ddsim

#endif // DDSIM_UTIL_ATOMIC_FILE_HH_
