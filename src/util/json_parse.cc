#include "util/json_parse.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/log.hh"

namespace ddsim {

namespace {

class Parser
{
  public:
    explicit Parser(std::string_view text) : text(text) {}

    JsonValue parse()
    {
        JsonValue v = value();
        skipWs();
        if (pos != text.size())
            fail("trailing content after the JSON document");
        return v;
    }

  private:
    std::string_view text;
    std::size_t pos = 0;

    [[noreturn]] void fail(const std::string &msg)
    {
        throw JsonParseError(pos, format("JSON parse error at byte "
                                         "%zu: %s",
                                         pos, msg.c_str()));
    }

    void skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    char peek()
    {
        if (pos >= text.size())
            fail("unexpected end of input");
        return text[pos];
    }

    void expect(char c)
    {
        if (peek() != c)
            fail(format("expected '%c'", c));
        ++pos;
    }

    bool consumeLiteral(std::string_view lit)
    {
        if (text.substr(pos, lit.size()) != lit)
            return false;
        pos += lit.size();
        return true;
    }

    JsonValue value()
    {
        skipWs();
        char c = peek();
        switch (c) {
          case '{': return object();
          case '[': return array();
          case '"': {
              JsonValue v;
              v.kind = JsonValue::Kind::String;
              v.str = string();
              return v;
          }
          case 't':
          case 'f': {
              JsonValue v;
              v.kind = JsonValue::Kind::Bool;
              if (consumeLiteral("true"))
                  v.boolean = true;
              else if (consumeLiteral("false"))
                  v.boolean = false;
              else
                  fail("bad literal");
              return v;
          }
          case 'n':
              if (!consumeLiteral("null"))
                  fail("bad literal");
              return {};
          default:
              return number();
        }
    }

    JsonValue object()
    {
        expect('{');
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        skipWs();
        if (peek() == '}') {
            ++pos;
            return v;
        }
        for (;;) {
            skipWs();
            std::string key = string();
            skipWs();
            expect(':');
            v.members.emplace_back(std::move(key), value());
            skipWs();
            char c = peek();
            if (c == ',') {
                ++pos;
                continue;
            }
            if (c == '}') {
                ++pos;
                return v;
            }
            fail("expected ',' or '}' in object");
        }
    }

    JsonValue array()
    {
        expect('[');
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        skipWs();
        if (peek() == ']') {
            ++pos;
            return v;
        }
        for (;;) {
            v.items.push_back(value());
            skipWs();
            char c = peek();
            if (c == ',') {
                ++pos;
                continue;
            }
            if (c == ']') {
                ++pos;
                return v;
            }
            fail("expected ',' or ']' in array");
        }
    }

    int hexDigit()
    {
        char c = peek();
        ++pos;
        if (c >= '0' && c <= '9')
            return c - '0';
        if (c >= 'a' && c <= 'f')
            return c - 'a' + 10;
        if (c >= 'A' && c <= 'F')
            return c - 'A' + 10;
        fail("bad \\u escape digit");
    }

    void appendUtf8(std::string &out, unsigned cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    std::string string()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos >= text.size())
                fail("unterminated string");
            char c = text[pos++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("raw control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= text.size())
                fail("unterminated escape");
            char e = text[pos++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                  unsigned cp = 0;
                  for (int i = 0; i < 4; ++i)
                      cp = cp * 16 +
                           static_cast<unsigned>(hexDigit());
                  if (cp >= 0xD800 && cp <= 0xDBFF &&
                      text.substr(pos, 2) == "\\u") {
                      pos += 2;
                      unsigned lo = 0;
                      for (int i = 0; i < 4; ++i)
                          lo = lo * 16 +
                               static_cast<unsigned>(hexDigit());
                      cp = 0x10000 + ((cp - 0xD800) << 10) +
                           (lo - 0xDC00);
                  }
                  appendUtf8(out, cp);
                  break;
              }
              default: fail("bad escape character");
            }
        }
    }

    JsonValue number()
    {
        std::size_t start = pos;
        if (peek() == '-')
            ++pos;
        bool integral = true;
        while (pos < text.size()) {
            char c = text[pos];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                ++pos;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                integral = false;
                ++pos;
            } else {
                break;
            }
        }
        if (pos == start ||
            (pos == start + 1 && text[start] == '-'))
            fail("bad number");
        std::string lit(text.substr(start, pos - start));
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        errno = 0;
        char *end = nullptr;
        v.number = std::strtod(lit.c_str(), &end);
        if (end != lit.c_str() + lit.size())
            fail("bad number");
        if (integral) {
            errno = 0;
            long long i = std::strtoll(lit.c_str(), &end, 10);
            if (errno == 0 && end == lit.c_str() + lit.size()) {
                v.integer = i;
                v.isInteger = true;
            }
        }
        return v;
    }
};

} // namespace

const JsonValue *
JsonValue::get(std::string_view key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : members)
        if (k == key)
            return &v;
    return nullptr;
}

bool
JsonValue::asBool(const std::string &what) const
{
    if (kind != Kind::Bool)
        throw JsonParseError(0, what + ": expected a boolean");
    return boolean;
}

double
JsonValue::asDouble(const std::string &what) const
{
    if (kind != Kind::Number)
        throw JsonParseError(0, what + ": expected a number");
    return number;
}

std::int64_t
JsonValue::asInt(const std::string &what) const
{
    if (kind != Kind::Number || !isInteger)
        throw JsonParseError(0, what + ": expected an integer");
    return integer;
}

std::uint64_t
JsonValue::asUint(const std::string &what) const
{
    std::int64_t i = asInt(what);
    if (i < 0)
        throw JsonParseError(0, what + ": expected a non-negative "
                                       "integer");
    return static_cast<std::uint64_t>(i);
}

const std::string &
JsonValue::asString(const std::string &what) const
{
    if (kind != Kind::String)
        throw JsonParseError(0, what + ": expected a string");
    return str;
}

const std::vector<JsonValue> &
JsonValue::asArray(const std::string &what) const
{
    if (kind != Kind::Array)
        throw JsonParseError(0, what + ": expected an array");
    return items;
}

const JsonValue &
JsonValue::at(std::string_view key, const std::string &what) const
{
    const JsonValue *v = get(key);
    if (!v)
        throw JsonParseError(0, what + ": missing key '" +
                                    std::string(key) + "'");
    return *v;
}

JsonValue
parseJson(std::string_view text)
{
    return Parser(text).parse();
}

JsonValue
parseJsonFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw IoError(path, "cannot open '" + path + "' for reading");
    std::ostringstream ss;
    ss << in.rdbuf();
    if (in.bad())
        throw IoError(path, "read error on '" + path + "'");
    try {
        return parseJson(ss.str());
    } catch (JsonParseError &e) {
        e.addContext("path", path);
        throw;
    }
}

} // namespace ddsim
