/**
 * @file
 * A minimal streaming JSON writer: object/array nesting, correct
 * string escaping, and number formatting that round-trips uint64
 * counters exactly. Used by the observability layer (stats export,
 * run manifests, interval samples); there is deliberately no DOM —
 * everything is written in one forward pass.
 */

#ifndef DDSIM_UTIL_JSON_HH_
#define DDSIM_UTIL_JSON_HH_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace ddsim {

/**
 * Emits syntactically valid JSON to an ostream. The caller drives the
 * structure (beginObject/endObject, beginArray/endArray, key, value);
 * the writer tracks nesting and inserts commas, newlines and
 * indentation. Misuse (a key outside an object, unbalanced ends) is a
 * panic — JSON validity is enforced, not hoped for.
 */
class JsonWriter
{
  public:
    /** @param indentStep Spaces per nesting level; 0 = compact. */
    explicit JsonWriter(std::ostream &os, int indentStep = 2);
    ~JsonWriter();

    JsonWriter(const JsonWriter &) = delete;
    JsonWriter &operator=(const JsonWriter &) = delete;

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Write an object member's key; a value call must follow. */
    JsonWriter &key(std::string_view k);

    void value(std::string_view v);
    void value(const char *v) { value(std::string_view(v)); }
    void value(bool v);
    void value(double v);
    void value(std::uint64_t v);
    void value(std::int64_t v);
    void value(int v) { value(static_cast<std::int64_t>(v)); }
    void valueNull();

    /**
     * Splice pre-rendered JSON (e.g. a captured per-run manifest into
     * a sweep-level document). The fragment must itself be valid JSON;
     * it is emitted verbatim in value position.
     */
    void rawValue(std::string_view json);

    /** Convenience: key + value in one call. */
    template <class T>
    void field(std::string_view k, T v)
    {
        key(k);
        value(v);
    }

    /** All containers closed? (checked by the destructor in debug). */
    bool balanced() const { return nesting.empty(); }

  private:
    enum class Ctx : std::uint8_t { Object, Array };

    std::ostream &os;
    int indentStep;
    std::vector<Ctx> nesting;
    bool firstInContainer = true;
    bool keyPending = false;

    void beforeValue();
    void beforeContainerEnd();
    void indent();
    void writeEscaped(std::string_view s);
};

/** Escape @p s per RFC 8259 and return it wrapped in quotes. */
std::string jsonQuote(std::string_view s);

} // namespace ddsim

#endif // DDSIM_UTIL_JSON_HH_
