#include "util/thread_pool.hh"

#include <exception>
#include <memory>
#include <utility>

#include "util/log.hh"

namespace ddsim {

unsigned
ThreadPool::defaultThreads()
{
    unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = defaultThreads();
    workers.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mu);
        stopping = true;
    }
    hasWork.notify_all();
    for (std::thread &t : workers)
        t.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    if (!task)
        panic("ThreadPool::submit: empty task");
    {
        std::unique_lock<std::mutex> lock(mu);
        if (stopping)
            panic("ThreadPool::submit: pool is shutting down");
        queue.push_back(std::move(task));
    }
    hasWork.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mu);
    allIdle.wait(lock,
                 [this] { return queue.empty() && running == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu);
            hasWork.wait(lock, [this] {
                return stopping || !queue.empty();
            });
            if (queue.empty())
                return; // stopping and drained
            task = std::move(queue.front());
            queue.pop_front();
            ++running;
        }
        task();
        {
            std::unique_lock<std::mutex> lock(mu);
            --running;
            if (queue.empty() && running == 0)
                allIdle.notify_all();
        }
    }
}

void
parallelFor(ThreadPool &pool, std::size_t n,
            const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    // Stable per-index error slots; each task writes only its own.
    auto errors = std::make_unique<std::exception_ptr[]>(n);
    for (std::size_t i = 0; i < n; ++i) {
        pool.submit([&fn, &errors, i] {
            try {
                fn(i);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        });
    }
    pool.wait();
    for (std::size_t i = 0; i < n; ++i)
        if (errors[i])
            std::rethrow_exception(errors[i]);
}

} // namespace ddsim
