#include "util/rng.hh"

#include "util/log.hh"

namespace ddsim {

std::uint64_t
Rng::range(std::uint64_t lo, std::uint64_t hi)
{
    if (lo > hi)
        panic("Rng::range: lo (%llu) > hi (%llu)",
              (unsigned long long)lo, (unsigned long long)hi);
    std::uint64_t span = hi - lo + 1;
    if (span == 0) // full 64-bit range
        return next();
    return lo + next() % span;
}

std::size_t
Rng::weighted(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights) {
        if (w < 0.0)
            panic("Rng::weighted: negative weight");
        total += w;
    }
    if (total <= 0.0)
        panic("Rng::weighted: all weights zero");
    double x = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        x -= weights[i];
        if (x < 0.0)
            return i;
    }
    return weights.size() - 1;
}

int
Rng::geometric(int min, int max, double decay)
{
    if (min > max)
        panic("Rng::geometric: min > max");
    int k = min;
    while (k < max && chance(decay))
        ++k;
    return k;
}

} // namespace ddsim
