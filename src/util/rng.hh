/**
 * @file
 * Deterministic pseudo-random number generator.
 *
 * Workload generators must be exactly reproducible across platforms and
 * standard-library versions, so ddsim carries its own small xorshift64*
 * generator instead of using <random> distributions (whose outputs are
 * implementation-defined).
 */

#ifndef DDSIM_UTIL_RNG_HH_
#define DDSIM_UTIL_RNG_HH_

#include <cstdint>
#include <vector>

namespace ddsim {

/** xorshift64* PRNG with convenience distributions. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state(seed ? seed : 1)
    {}

    /** Raw 64 random bits. */
    std::uint64_t
    next()
    {
        std::uint64_t x = state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state = x;
        return x * 0x2545f4914f6cdd1dull;
    }

    /** Uniform integer in [lo, hi] inclusive. Requires lo <= hi. */
    std::uint64_t range(std::uint64_t lo, std::uint64_t hi);

    /** Uniform integer in [0, n). Requires n > 0. */
    std::uint64_t below(std::uint64_t n) { return range(0, n - 1); }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial: true with probability p. */
    bool chance(double p) { return uniform() < p; }

    /**
     * Pick an index according to a weight vector.
     *
     * @param weights Non-negative weights; at least one must be positive.
     * @return index in [0, weights.size()).
     */
    std::size_t weighted(const std::vector<double> &weights);

    /**
     * Geometric-flavoured small integer: returns k >= min with
     * probability proportional to decay^k, capped at max. Used for frame
     * size and call-depth shaping in the workload generators.
     */
    int geometric(int min, int max, double decay);

  private:
    std::uint64_t state;
};

} // namespace ddsim

#endif // DDSIM_UTIL_RNG_HH_
