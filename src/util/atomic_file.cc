#include "util/atomic_file.hh"

#include <cstdio>

#include "io/vfs.hh"
#include "util/error.hh"
#include "util/log.hh"

namespace ddsim {

AtomicFile::AtomicFile(std::string path, bool binary)
    : path_(std::move(path)), tmp_(path_ + ".tmp")
{
    std::ios_base::openmode mode = std::ios::trunc;
    if (binary)
        mode |= std::ios::binary;
    os.open(tmp_, mode);
    if (!os)
        raise(IoError(path_, format("cannot open '%s' for writing",
                                    tmp_.c_str())));
}

AtomicFile::~AtomicFile()
{
    abandon();
}

void
AtomicFile::commit()
{
    if (done_)
        return;
    done_ = true;
    os.flush();
    bool ok = static_cast<bool>(os);
    os.close();
    if (!ok) {
        std::remove(tmp_.c_str());
        raise(IoError(path_, format("write to '%s' failed (disk full?)",
                                    tmp_.c_str())));
    }
    // fsync the temporary and its directory around the rename (via
    // the active Vfs, so faults are injectable): atomicity must hold
    // across power loss, not just process death.
    try {
        io::vfs().commitFile(tmp_, path_);
    } catch (const io::SimulatedCrash &) {
        // A simulated crash leaves the disk exactly as a dead process
        // would — torn temporary included.
        throw;
    } catch (...) {
        std::remove(tmp_.c_str());
        throw;
    }
}

void
AtomicFile::abandon()
{
    if (done_)
        return;
    done_ = true;
    os.close();
    std::remove(tmp_.c_str());
}

} // namespace ddsim

