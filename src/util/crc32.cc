#include "util/crc32.hh"

#include <array>

#include "util/log.hh"

namespace ddsim {

namespace {

/** The reflected-polynomial table, computed once at first use. */
const std::array<std::uint32_t, 256> &
table()
{
    static const std::array<std::uint32_t, 256> t = [] {
        std::array<std::uint32_t, 256> out{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            out[i] = c;
        }
        return out;
    }();
    return t;
}

} // namespace

std::uint32_t
crc32(const void *data, std::size_t n)
{
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint32_t c = 0xffffffffu;
    for (std::size_t i = 0; i < n; ++i)
        c = table()[(c ^ p[i]) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

std::string
crc32Hex(std::uint32_t crc)
{
    return format("%08x", crc);
}

} // namespace ddsim
