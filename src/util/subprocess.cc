#include "util/subprocess.hh"

#include <cerrno>
#include <cstring>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "util/error.hh"
#include "util/log.hh"

namespace ddsim {

std::string
ProcessExit::describe() const
{
    if (exited)
        return format("exited with status %d", code);
    if (signaled)
        return format("killed by signal %d (%s)", sig,
                      strsignal(sig));
    return "still running";
}

pid_t
spawnProcess(const std::vector<std::string> &argv)
{
    if (argv.empty())
        panic("spawnProcess: empty argv");
    std::vector<char *> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string &a : argv)
        cargv.push_back(const_cast<char *>(a.c_str()));
    cargv.push_back(nullptr);

    pid_t pid = ::fork();
    if (pid < 0)
        raise(IoError(argv[0], format("fork failed: %s",
                                      std::strerror(errno))));
    if (pid == 0) {
        ::execv(cargv[0], cargv.data());
        // exec failed; 127 is the shell's convention for it.
        ::_exit(127);
    }
    return pid;
}

namespace {

ProcessExit
decodeStatus(int status)
{
    ProcessExit e;
    if (WIFEXITED(status)) {
        e.exited = true;
        e.code = WEXITSTATUS(status);
    } else if (WIFSIGNALED(status)) {
        e.signaled = true;
        e.sig = WTERMSIG(status);
    }
    return e;
}

} // namespace

ProcessExit
waitProcess(pid_t pid)
{
    int status = 0;
    for (;;) {
        pid_t r = ::waitpid(pid, &status, 0);
        if (r == pid)
            return decodeStatus(status);
        if (r < 0 && errno == EINTR)
            continue;
        panic("waitpid(%d) failed: %s", static_cast<int>(pid),
              std::strerror(errno));
    }
}

bool
tryWaitProcess(pid_t pid, ProcessExit &out)
{
    int status = 0;
    for (;;) {
        pid_t r = ::waitpid(pid, &status, WNOHANG);
        if (r == 0)
            return false;
        if (r == pid) {
            out = decodeStatus(status);
            return true;
        }
        if (r < 0 && errno == EINTR)
            continue;
        panic("waitpid(%d) failed: %s", static_cast<int>(pid),
              std::strerror(errno));
    }
}

void
killProcess(pid_t pid, int sig)
{
    if (::kill(pid, sig) < 0 && errno != ESRCH)
        warn("kill(%d, %d) failed: %s", static_cast<int>(pid), sig,
             std::strerror(errno));
}

std::string
currentExecutable(const std::string &argv0)
{
    char buf[4096];
    ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
        buf[n] = '\0';
        return buf;
    }
    return argv0;
}

} // namespace ddsim
