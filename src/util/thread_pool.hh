/**
 * @file
 * A small fixed-size worker pool: N threads pulling tasks from a
 * mutex-guarded queue. This is the concurrency primitive underneath
 * sim::SweepRunner; it is deliberately minimal (no futures, no task
 * priorities) so it can be reused anywhere in ddsim that needs to
 * fan work out across cores.
 */

#ifndef DDSIM_UTIL_THREAD_POOL_HH_
#define DDSIM_UTIL_THREAD_POOL_HH_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ddsim {

/** Fixed-size thread pool with a FIFO work queue. */
class ThreadPool
{
  public:
    /**
     * @param threads Number of worker threads; 0 means "one per
     *                hardware thread" (at least one).
     */
    explicit ThreadPool(unsigned threads = 0);

    /** Drains the queue, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue @p task for execution on some worker. Tasks must not
     * throw: wrap anything that can fail and capture the error
     * (see parallelFor / SweepRunner for the pattern).
     */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished. */
    void wait();

    /** Number of worker threads. */
    unsigned size() const { return static_cast<unsigned>(workers.size()); }

    /** hardware_concurrency with a floor of 1. */
    static unsigned defaultThreads();

  private:
    std::vector<std::thread> workers;
    std::deque<std::function<void()>> queue;
    std::mutex mu;
    std::condition_variable hasWork;   ///< signalled on submit/stop
    std::condition_variable allIdle;   ///< signalled when work drains
    std::size_t running = 0;           ///< tasks currently executing
    bool stopping = false;

    void workerLoop();
};

/**
 * Run fn(0), fn(1), ... fn(n-1) on @p pool and block until all are
 * done. Each index runs exactly once; the assignment of indices to
 * threads is unspecified. If any invocation throws, the exception for
 * the lowest index is rethrown after the loop completes (the other
 * indices still run).
 */
void parallelFor(ThreadPool &pool, std::size_t n,
                 const std::function<void(std::size_t)> &fn);

} // namespace ddsim

#endif // DDSIM_UTIL_THREAD_POOL_HH_
