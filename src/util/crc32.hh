/**
 * @file
 * CRC-32 (IEEE 802.3, the zlib/PNG polynomial) for spool-artifact
 * checksums. The exact variant matters: Python's binascii.crc32
 * computes the same function, so tools/validate_manifest.py can
 * verify every checksummed artifact without a C++ helper.
 */

#ifndef DDSIM_UTIL_CRC32_HH_
#define DDSIM_UTIL_CRC32_HH_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace ddsim {

/** CRC-32 of @p n bytes at @p data (init 0xffffffff, reflected,
 *  final xor — identical to zlib's crc32() and binascii.crc32). */
std::uint32_t crc32(const void *data, std::size_t n);

inline std::uint32_t
crc32(std::string_view bytes)
{
    return crc32(bytes.data(), bytes.size());
}

/** The fixed-width lowercase hex form artifacts embed ("89abcdef"). */
std::string crc32Hex(std::uint32_t crc);

} // namespace ddsim

#endif // DDSIM_UTIL_CRC32_HH_
