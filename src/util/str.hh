/**
 * @file
 * Small string utilities shared by the assembler, CLI parsing and the
 * stats formatter.
 */

#ifndef DDSIM_UTIL_STR_HH_
#define DDSIM_UTIL_STR_HH_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ddsim {

/** Strip leading and trailing whitespace. */
std::string_view trim(std::string_view s);

/** Split on a delimiter character; empty fields are preserved. */
std::vector<std::string> split(std::string_view s, char delim);

/** Split on any run of whitespace; empty fields are dropped. */
std::vector<std::string> splitWs(std::string_view s);

/** True if @p s starts with @p prefix. */
bool startsWith(std::string_view s, std::string_view prefix);

/** ASCII lower-case copy. */
std::string toLower(std::string_view s);

/**
 * Parse a signed integer with optional 0x prefix and +/- sign.
 * @return true on success, false on malformed input or overflow.
 */
bool parseInt(std::string_view s, std::int64_t &out);

/** Parse a double. @return true on success. */
bool parseDouble(std::string_view s, double &out);

/**
 * Parse a size with an optional K/M suffix (powers of two), e.g. "2K"
 * -> 2048. @return true on success.
 */
bool parseSize(std::string_view s, std::uint64_t &out);

} // namespace ddsim

#endif // DDSIM_UTIL_STR_HH_
