/**
 * @file
 * Fundamental scalar types used throughout ddsim.
 *
 * The simulated machine is a 32-bit RISC: addresses and general
 * registers are 32 bits wide, floating-point registers hold 64-bit
 * doubles. Simulated time is counted in clock cycles.
 */

#ifndef DDSIM_UTIL_TYPES_HH_
#define DDSIM_UTIL_TYPES_HH_

#include <cstdint>

namespace ddsim {

/** A 32-bit virtual address in the simulated machine. */
using Addr = std::uint32_t;

/** A 32-bit machine word (contents of a general-purpose register). */
using Word = std::uint32_t;

/** Signed view of a machine word. */
using SWord = std::int32_t;

/** A clock cycle count. Monotonically increasing simulated time. */
using Cycle = std::uint64_t;

/** A dynamic instruction sequence number (program order). */
using InstSeq = std::uint64_t;

/** An architectural register index (0..31 in either the GPR or FPR file). */
using RegId = std::uint8_t;

/** Number of general-purpose registers. */
inline constexpr int NumGprs = 32;

/** Number of floating-point registers (each holds a 64-bit double). */
inline constexpr int NumFprs = 32;

/** Bytes per machine word. Frame sizes in the paper are quoted in words. */
inline constexpr Addr WordBytes = 4;

/**
 * Simulated address-space layout.
 *
 * The layout mirrors a classic MIPS/SimpleScalar process image: text at
 * the bottom, static data above it, heap growing up, stack growing down
 * from just under 2 GB. The stack base is what the oracle classifier
 * uses to decide whether an access touches the run-time stack.
 */
namespace layout {

inline constexpr Addr TextBase = 0x0040'0000;
inline constexpr Addr DataBase = 0x1000'0000;
inline constexpr Addr HeapBase = 0x2000'0000;
inline constexpr Addr StackBase = 0x7fff'fff0;

/** True if @p addr lies in the run-time stack region. */
inline bool
isStackAddr(Addr addr)
{
    // Anything in the top quarter of the address space is stack; the
    // heap would have to grow past 1.25 GB to collide, which no ddsim
    // workload approaches.
    return addr >= 0x7000'0000 && addr <= StackBase;
}

} // namespace layout

} // namespace ddsim

#endif // DDSIM_UTIL_TYPES_HH_
