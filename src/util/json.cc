#include "util/json.hh"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "util/log.hh"

namespace ddsim {

JsonWriter::JsonWriter(std::ostream &os, int indentStep)
    : os(os), indentStep(indentStep)
{
}

JsonWriter::~JsonWriter()
{
    if (!nesting.empty())
        warn("JsonWriter destroyed with %zu unclosed containers",
             nesting.size());
}

void
JsonWriter::indent()
{
    if (indentStep <= 0)
        return;
    os << '\n';
    int n = static_cast<int>(nesting.size()) * indentStep;
    for (int i = 0; i < n; ++i)
        os << ' ';
}

void
JsonWriter::beforeValue()
{
    if (nesting.empty()) {
        // Top-level value: exactly one is allowed.
        return;
    }
    if (nesting.back() == Ctx::Object && !keyPending)
        panic("JsonWriter: value without a key inside an object");
    if (keyPending) {
        keyPending = false;
        return; // key() already wrote the separator and indent.
    }
    if (!firstInContainer)
        os << ',';
    indent();
    firstInContainer = false;
}

void
JsonWriter::beforeContainerEnd()
{
    if (keyPending)
        panic("JsonWriter: container closed with a dangling key");
}

void
JsonWriter::beginObject()
{
    beforeValue();
    os << '{';
    nesting.push_back(Ctx::Object);
    firstInContainer = true;
}

void
JsonWriter::endObject()
{
    beforeContainerEnd();
    if (nesting.empty() || nesting.back() != Ctx::Object)
        panic("JsonWriter: endObject outside an object");
    bool wasEmpty = firstInContainer;
    nesting.pop_back();
    if (!wasEmpty)
        indent();
    os << '}';
    firstInContainer = false;
}

void
JsonWriter::beginArray()
{
    beforeValue();
    os << '[';
    nesting.push_back(Ctx::Array);
    firstInContainer = true;
}

void
JsonWriter::endArray()
{
    beforeContainerEnd();
    if (nesting.empty() || nesting.back() != Ctx::Array)
        panic("JsonWriter: endArray outside an array");
    bool wasEmpty = firstInContainer;
    nesting.pop_back();
    if (!wasEmpty)
        indent();
    os << ']';
    firstInContainer = false;
}

JsonWriter &
JsonWriter::key(std::string_view k)
{
    if (nesting.empty() || nesting.back() != Ctx::Object)
        panic("JsonWriter: key outside an object");
    if (keyPending)
        panic("JsonWriter: two keys in a row");
    if (!firstInContainer)
        os << ',';
    indent();
    firstInContainer = false;
    writeEscaped(k);
    os << (indentStep > 0 ? ": " : ":");
    keyPending = true;
    return *this;
}

void
JsonWriter::writeEscaped(std::string_view s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\b': os << "\\b"; break;
          case '\f': os << "\\f"; break;
          case '\n': os << "\\n"; break;
          case '\r': os << "\\r"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
JsonWriter::value(std::string_view v)
{
    beforeValue();
    writeEscaped(v);
}

void
JsonWriter::value(bool v)
{
    beforeValue();
    os << (v ? "true" : "false");
}

void
JsonWriter::value(std::uint64_t v)
{
    beforeValue();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    os << buf;
}

void
JsonWriter::value(std::int64_t v)
{
    beforeValue();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRId64, v);
    os << buf;
}

void
JsonWriter::value(double v)
{
    beforeValue();
    if (!std::isfinite(v)) {
        // JSON has no NaN/Inf; null is the conventional stand-in.
        os << "null";
        return;
    }
    // Counters are exact integers; everything else keeps enough
    // digits to round-trip a double.
    char buf[40];
    if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15)
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
    else
        std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << buf;
}

void
JsonWriter::valueNull()
{
    beforeValue();
    os << "null";
}

void
JsonWriter::rawValue(std::string_view json)
{
    beforeValue();
    os << json;
}

std::string
jsonQuote(std::string_view s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += format("\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
            else
                out += c;
        }
    }
    out += '"';
    return out;
}

} // namespace ddsim
