/**
 * @file
 * Child-process plumbing for the sweep farm supervisor: spawn a worker
 * binary, poll or block on its exit, and decode how it died. Crash
 * isolation beyond in-process quarantine rests on this — a job that
 * takes its worker down with a segfault is visible here as a signaled
 * exit, and the supervisor respawns around it.
 *
 * POSIX (fork/execv/waitpid) only, like the rest of the toolchain this
 * repo targets.
 */

#ifndef DDSIM_UTIL_SUBPROCESS_HH_
#define DDSIM_UTIL_SUBPROCESS_HH_

#include <string>
#include <vector>

#include <sys/types.h>

namespace ddsim {

/** How a child process ended. */
struct ProcessExit
{
    bool exited = false;   ///< Normal exit (code is valid).
    int code = 0;          ///< Exit status when exited.
    bool signaled = false; ///< Killed by a signal (sig is valid).
    int sig = 0;           ///< Terminating signal when signaled.

    bool ok() const { return exited && code == 0; }
    /** Died abnormally: a signal, e.g. SIGSEGV from a crashing job. */
    bool crashed() const { return signaled; }
    std::string describe() const;
};

/**
 * fork + execv @p argv (argv[0] is the executable path). stdout and
 * stderr are inherited. Raises IoError if the fork fails; an exec
 * failure surfaces as exit code 127 from waitProcess().
 */
pid_t spawnProcess(const std::vector<std::string> &argv);

/** Block until @p pid exits; raises PanicError on waitpid failure. */
ProcessExit waitProcess(pid_t pid);

/** Non-blocking reap: true (and fills @p out) if @p pid has exited. */
bool tryWaitProcess(pid_t pid, ProcessExit &out);

/** Send @p sig to @p pid; missing processes are ignored. */
void killProcess(pid_t pid, int sig);

/**
 * Absolute path of the running executable (/proc/self/exe), so a
 * supervisor can respawn itself in worker mode; falls back to
 * @p argv0 when /proc is unavailable.
 */
std::string currentExecutable(const std::string &argv0);

} // namespace ddsim

#endif // DDSIM_UTIL_SUBPROCESS_HH_
