#include "util/file_claim.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/atomic_file.hh"
#include "util/error.hh"
#include "util/log.hh"

namespace fs = std::filesystem;

namespace ddsim {

bool
claimFile(const std::string &src, const std::string &dst)
{
    // std::filesystem::rename throws on every failure; the ENOENT
    // race is the expected outcome for claim losers, so use rename(2)
    // directly and fold that case into `false`.
    if (std::rename(src.c_str(), dst.c_str()) == 0)
        return true;
    if (errno == ENOENT)
        return false;
    raise(IoError(src, format("cannot claim '%s' -> '%s': %s",
                              src.c_str(), dst.c_str(),
                              std::strerror(errno))));
}

void
ensureDir(const std::string &path)
{
    std::error_code ec;
    fs::create_directories(path, ec);
    if (ec)
        raise(IoError(path, format("cannot create directory '%s': %s",
                                   path.c_str(),
                                   ec.message().c_str())));
}

std::vector<std::string>
listDir(const std::string &dir)
{
    std::error_code ec;
    std::vector<std::string> names;
    fs::directory_iterator it(dir, ec);
    if (ec)
        raise(IoError(dir, format("cannot list directory '%s': %s",
                                  dir.c_str(), ec.message().c_str())));
    for (const fs::directory_entry &e : it) {
        if (e.is_regular_file(ec))
            names.push_back(e.path().filename().string());
    }
    std::sort(names.begin(), names.end());
    return names;
}

bool
fileExists(const std::string &path)
{
    std::error_code ec;
    return fs::is_regular_file(path, ec);
}

void
removeFileIfExists(const std::string &path)
{
    std::error_code ec;
    fs::remove(path, ec);
    if (ec)
        warn("could not remove '%s': %s", path.c_str(),
             ec.message().c_str());
}

std::string
readFileText(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        raise(IoError(path, format("cannot open '%s' for reading",
                                   path.c_str())));
    std::ostringstream ss;
    ss << in.rdbuf();
    if (in.bad())
        raise(IoError(path,
                      format("read error on '%s'", path.c_str())));
    return ss.str();
}

void
writeFileTextAtomic(const std::string &path, const std::string &text)
{
    AtomicFile file(path, /*binary=*/true);
    file.stream() << text;
    file.commit();
}

} // namespace ddsim
