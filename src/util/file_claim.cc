#include "util/file_claim.hh"

#include "io/vfs.hh"

namespace ddsim {

// Thin forwarding onto the active io::Vfs backend, so every spool
// primitive — claims, scans, artifact writes — is fault-injectable
// through io::FaultFs while production code keeps these short names.

bool
claimFile(const std::string &src, const std::string &dst)
{
    return io::vfs().renameFile(src, dst);
}

void
ensureDir(const std::string &path)
{
    io::vfs().makeDirs(path);
}

std::vector<std::string>
listDir(const std::string &dir)
{
    return io::vfs().listDir(dir);
}

bool
fileExists(const std::string &path)
{
    return io::vfs().exists(path);
}

void
removeFileIfExists(const std::string &path)
{
    io::vfs().removeFile(path);
}

std::string
readFileText(const std::string &path)
{
    return io::vfs().readFile(path);
}

void
writeFileTextAtomic(const std::string &path, const std::string &text)
{
    io::vfs().writeFileAtomic(path, text);
}

} // namespace ddsim
