/**
 * @file
 * Filesystem primitives for the spooled job queue: atomic claim via
 * rename(2), directory listing/creation, and small whole-file reads.
 *
 * The farm's mutual-exclusion story is claimFile(): rename is atomic
 * on POSIX filesystems, so when several workers (threads or separate
 * processes) race to move the same spooled job file into their claim
 * path, exactly one rename succeeds and every loser observes ENOENT.
 * No lock files, no fcntl ranges, no daemon — the spool directory IS
 * the queue, and it survives any crash that the filesystem does.
 */

#ifndef DDSIM_UTIL_FILE_CLAIM_HH_
#define DDSIM_UTIL_FILE_CLAIM_HH_

#include <string>
#include <vector>

namespace ddsim {

/**
 * Atomically claim @p src by renaming it onto @p dst.
 * @return true if this caller won the claim; false if @p src was
 * already gone (another claimant won). Any other failure raises
 * IoError.
 */
bool claimFile(const std::string &src, const std::string &dst);

/** Create @p path and any missing parents; raises IoError. */
void ensureDir(const std::string &path);

/**
 * Names (not paths) of the regular files in @p dir, sorted, so spool
 * scans are deterministic. Raises IoError if unlistable.
 */
std::vector<std::string> listDir(const std::string &dir);

bool fileExists(const std::string &path);

/** Delete @p path if present; missing files are not an error. */
void removeFileIfExists(const std::string &path);

/** Whole-file read; raises IoError on any failure. */
std::string readFileText(const std::string &path);

/** Write @p text to @p path atomically (write-temp-then-rename). */
void writeFileTextAtomic(const std::string &path,
                         const std::string &text);

} // namespace ddsim

#endif // DDSIM_UTIL_FILE_CLAIM_HH_
