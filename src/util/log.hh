/**
 * @file
 * Error and status reporting, following the gem5 convention:
 *
 *  - panic():  an internal invariant was violated (a ddsim bug);
 *              throws PanicError.
 *  - fatal():  the user asked for something impossible (bad config,
 *              malformed program); throws FatalError. Code with a
 *              specific failure class throws the matching SimError
 *              subclass from util/error.hh via raise() instead.
 *  - warn():   something is suspicious but the simulation continues.
 *  - inform(): plain status output.
 *
 * All four are thread-safe: simulations run concurrently under
 * sim::SweepRunner, and messages from different threads serialize
 * rather than interleave.
 */

#ifndef DDSIM_UTIL_LOG_HH_
#define DDSIM_UTIL_LOG_HH_

#include <cstdarg>
#include <cstdio>
#include <string>

// FatalError and PanicError live in the SimError taxonomy now; the
// whole hierarchy comes along for every log.hh user.
#include "util/error.hh"

namespace ddsim {

/** Format a printf-style message into a std::string. */
std::string vformat(const char *fmt, std::va_list ap);
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an internal simulator bug and abort (throws PanicError). */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a user error and terminate the run (throws FatalError). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a suspicious-but-survivable condition to stderr. */
void warn(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report normal status to stderr. */
void inform(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Suppress warn()/inform() output (used by tests). */
void setQuiet(bool quiet);

} // namespace ddsim

#endif // DDSIM_UTIL_LOG_HH_
