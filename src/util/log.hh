/**
 * @file
 * Error and status reporting, following the gem5 convention:
 *
 *  - panic():  an internal invariant was violated (a ddsim bug); aborts.
 *  - fatal():  the user asked for something impossible (bad config,
 *              malformed program); exits with an error code.
 *  - warn():   something is suspicious but the simulation continues.
 *  - inform(): plain status output.
 *
 * All four are thread-safe: simulations run concurrently under
 * sim::SweepRunner, and messages from different threads serialize
 * rather than interleave.
 */

#ifndef DDSIM_UTIL_LOG_HH_
#define DDSIM_UTIL_LOG_HH_

#include <cstdarg>
#include <cstdio>
#include <stdexcept>
#include <string>

namespace ddsim {

/** Thrown by fatal() so that tests can catch user-level errors. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Thrown by panic() so that tests can assert on invariant violations. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg)
    {}
};

/** Format a printf-style message into a std::string. */
std::string vformat(const char *fmt, std::va_list ap);
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an internal simulator bug and abort (throws PanicError). */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a user error and terminate the run (throws FatalError). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a suspicious-but-survivable condition to stderr. */
void warn(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report normal status to stderr. */
void inform(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Suppress warn()/inform() output (used by tests). */
void setQuiet(bool quiet);

} // namespace ddsim

#endif // DDSIM_UTIL_LOG_HH_
