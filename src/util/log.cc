#include "util/log.hh"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <vector>

namespace ddsim {

namespace {

// Simulations run concurrently under sim::SweepRunner, so the logging
// state is atomic and each message is emitted under a lock: concurrent
// warn()/inform() calls serialize instead of interleaving on stderr.
std::atomic<bool> quietMode{false};
std::mutex outputMutex;

void
emit(const char *prefix, const std::string &msg)
{
    std::lock_guard<std::mutex> lock(outputMutex);
    std::fprintf(stderr, "%s: %s\n", prefix, msg.c_str());
}

} // namespace

void
setQuiet(bool quiet)
{
    quietMode.store(quiet, std::memory_order_relaxed);
}

void
logRaw(const char *prefix, const std::string &msg)
{
    if (quietMode.load(std::memory_order_relaxed))
        return;
    emit(prefix, msg);
}

std::string
vformat(const char *fmt, std::va_list ap)
{
    std::va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap2);
    va_end(ap2);
    if (n < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(n));
}

std::string
format(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    return s;
}

void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    emit("panic", msg);
    throw PanicError(msg);
}

void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    emit("fatal", msg);
    throw FatalError(msg);
}

void
warn(const char *fmt, ...)
{
    if (quietMode.load(std::memory_order_relaxed))
        return;
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    emit("warn", msg);
}

void
inform(const char *fmt, ...)
{
    if (quietMode.load(std::memory_order_relaxed))
        return;
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    emit("info", msg);
}

} // namespace ddsim
