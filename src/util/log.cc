#include "util/log.hh"

#include <cstdio>
#include <vector>

namespace ddsim {

namespace {
bool quietMode = false;
} // namespace

void
setQuiet(bool quiet)
{
    quietMode = quiet;
}

std::string
vformat(const char *fmt, std::va_list ap)
{
    std::va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap2);
    va_end(ap2);
    if (n < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(n));
}

std::string
format(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    return s;
}

void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    throw PanicError(msg);
}

void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    throw FatalError(msg);
}

void
warn(const char *fmt, ...)
{
    if (quietMode)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (quietMode)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace ddsim
