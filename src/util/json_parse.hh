/**
 * @file
 * A minimal JSON reader: one recursive-descent pass into a small DOM.
 * The counterpart of JsonWriter for the handful of places that consume
 * JSON instead of producing it — grid specs, spooled job files and
 * per-job result records in the sweep farm. Strict by default: no
 * comments, no trailing commas, exactly one top-level value.
 *
 * Numbers keep both a double and (when the text was integral and in
 * range) an exact int64 rendering, so job ids and stat counters
 * round-trip without floating-point surprises.
 */

#ifndef DDSIM_UTIL_JSON_PARSE_HH_
#define DDSIM_UTIL_JSON_PARSE_HH_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/error.hh"

namespace ddsim {

/** Malformed JSON input; carries the byte offset of the problem. */
class JsonParseError : public FatalError
{
  public:
    JsonParseError(std::uint64_t byteOffset, const std::string &msg)
        : FatalError("json", msg), offset_(byteOffset)
    {
        addContext("byte_offset", std::to_string(offset_));
    }

    std::uint64_t byteOffset() const { return offset_; }

  private:
    std::uint64_t offset_;
};

/** One parsed JSON value; objects preserve member order. */
class JsonValue
{
  public:
    enum class Kind : std::uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    /** Exact integer rendering; valid only when isInteger. */
    std::int64_t integer = 0;
    /** The literal had no '.', 'e' and fit an int64. */
    bool isInteger = false;
    std::string str;
    std::vector<JsonValue> items;                          ///< Array.
    std::vector<std::pair<std::string, JsonValue>> members; ///< Object.

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Object member lookup; nullptr when absent (or not an object). */
    const JsonValue *get(std::string_view key) const;

    // Checked accessors: raise JsonParseError (offset 0) naming
    // @p what when the value has the wrong shape. They make consumers
    // read like schemas instead of kind-switch ladders.
    bool asBool(const std::string &what) const;
    double asDouble(const std::string &what) const;
    std::int64_t asInt(const std::string &what) const;
    std::uint64_t asUint(const std::string &what) const;
    const std::string &asString(const std::string &what) const;
    const std::vector<JsonValue> &asArray(const std::string &what) const;

    /** Checked member access: the key must exist in this object. */
    const JsonValue &at(std::string_view key,
                        const std::string &what) const;
};

/** Parse exactly one JSON document from @p text. */
JsonValue parseJson(std::string_view text);

/** Parse the JSON document in @p path; IoError if unreadable. */
JsonValue parseJsonFile(const std::string &path);

} // namespace ddsim

#endif // DDSIM_UTIL_JSON_PARSE_HH_
