/**
 * @file
 * The ddsim error taxonomy. Every failure a simulation can hit is a
 * SimError subclass carrying a machine-readable kind plus key/value
 * context, so supervisors (sim::SweepRunner, the black-box writer,
 * callers embedding the library) can classify, retry, quarantine and
 * report without parsing message strings.
 *
 *   SimError                       base; kind() + context()
 *    |- FatalError                 thrown by fatal(): user error
 *    |   |- ConfigError            bad MachineConfig field (names it)
 *    |   |- ProgramError           malformed program / assembly
 *    |   |- IoError                file unreadable/unwritable (transient)
 *    |   |- CorruptArtifactError   checksummed spool artifact damaged
 *    |   `- TraceCorruptError      corrupt ddtrace input, byte offset
 *    |- PanicError                 thrown by panic(): a ddsim bug
 *    |- DeadlockError              pipeline made no forward progress
 *    `- BudgetExceededError        cycle or wall-clock budget blown
 *
 * No abort() is reachable from library code: every path throws one of
 * these, and everything a test or sweep needs to recover rides on the
 * exception. transient() marks the classes worth retrying (I/O and
 * resource pressure); deterministic simulation errors are permanent.
 */

#ifndef DDSIM_UTIL_ERROR_HH_
#define DDSIM_UTIL_ERROR_HH_

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "util/types.hh"

namespace ddsim {

/** Base of the taxonomy: a message plus machine-readable context. */
class SimError : public std::runtime_error
{
  public:
    SimError(std::string kind, const std::string &msg)
        : std::runtime_error(msg), kind_(std::move(kind))
    {}

    /** Stable machine-readable class tag ("config", "deadlock", ...). */
    const std::string &kind() const { return kind_; }

    /** Worth retrying? Only I/O-flavoured failures are. */
    virtual bool transient() const { return false; }

    /** Attach one key/value context pair (call before throwing). */
    void addContext(std::string key, std::string value)
    {
        ctx_.emplace_back(std::move(key), std::move(value));
    }

    /** All attached context, in attachment order. */
    const std::vector<std::pair<std::string, std::string>> &
    context() const
    {
        return ctx_;
    }

  private:
    std::string kind_;
    std::vector<std::pair<std::string, std::string>> ctx_;
};

/** Thrown by fatal(): the user asked for something impossible. */
class FatalError : public SimError
{
  public:
    explicit FatalError(const std::string &msg)
        : SimError("fatal", msg)
    {}

  protected:
    FatalError(std::string kind, const std::string &msg)
        : SimError(std::move(kind), msg)
    {}
};

/** Thrown by panic(): an internal invariant was violated (a bug). */
class PanicError : public SimError
{
  public:
    explicit PanicError(const std::string &msg)
        : SimError("internal", msg)
    {}
};

/** A MachineConfig field has a degenerate or impossible value. */
class ConfigError : public FatalError
{
  public:
    ConfigError(std::string field, const std::string &msg)
        : FatalError("config", msg), field_(std::move(field))
    {
        addContext("field", field_);
    }

    /** Dotted name of the offending field, e.g. "l1.lineBytes". */
    const std::string &field() const { return field_; }

  private:
    std::string field_;
};

/** A program (workload, assembly source) is malformed. */
class ProgramError : public FatalError
{
  public:
    explicit ProgramError(const std::string &msg)
        : FatalError("program", msg)
    {}
};

/** A host file could not be opened, read or written. */
class IoError : public FatalError
{
  public:
    IoError(std::string path, const std::string &msg)
        : FatalError("io", msg), path_(std::move(path))
    {
        addContext("path", path_);
    }

    bool transient() const override { return true; }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

/** A checksummed on-disk artifact (spooled job spec, result record,
 *  captured manifest bytes) failed verification: the CRC32 the writer
 *  sealed in no longer matches the payload. Never transient — the
 *  artifact must be quarantined and its grid point re-run, not
 *  retried in place. */
class CorruptArtifactError : public FatalError
{
  public:
    CorruptArtifactError(std::string path, const std::string &msg)
        : FatalError("corrupt-artifact", msg), path_(std::move(path))
    {
        addContext("path", path_);
    }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

/** A ddtrace stream failed to decode: truncated, bit-flipped, wrong
 *  magic. Carries the byte offset where decoding stopped. */
class TraceCorruptError : public FatalError
{
  public:
    TraceCorruptError(std::string path, std::uint64_t byteOffset,
                      const std::string &msg)
        : FatalError("trace-corrupt", msg), path_(std::move(path)),
          offset_(byteOffset)
    {
        addContext("path", path_);
        addContext("byte_offset", std::to_string(offset_));
    }

    const std::string &path() const { return path_; }
    /** Byte offset of the first undecodable input. */
    std::uint64_t byteOffset() const { return offset_; }

  private:
    std::string path_;
    std::uint64_t offset_;
};

/** Everything the deadlock watchdog knew when it fired. */
struct DeadlockInfo
{
    Cycle cycle = 0;          ///< Cycle the watchdog fired.
    Cycle sinceCommit = 0;    ///< Cycles since the last commit.
    InstSeq headSeq = 0;      ///< ROB head dynamic sequence number.
    std::uint32_t headPcIdx = 0;
    std::string headDisasm;   ///< Disassembly of the stuck head.
    int robOccupancy = 0;
    int robSize = 0;
    int lsqOccupancy = 0;
    int lvaqOccupancy = -1;   ///< -1 = machine has no LVAQ.
    std::size_t fetchQueue = 0;
};

/** The pipeline stopped committing: no forward progress. */
class DeadlockError : public SimError
{
  public:
    DeadlockError(DeadlockInfo info, const std::string &msg)
        : SimError("deadlock", msg), info_(std::move(info))
    {
        addContext("cycle", std::to_string(info_.cycle));
        addContext("since_commit", std::to_string(info_.sinceCommit));
        addContext("head_seq", std::to_string(info_.headSeq));
        addContext("head_disasm", info_.headDisasm);
        addContext("rob_occupancy",
                   std::to_string(info_.robOccupancy));
    }

    const DeadlockInfo &info() const { return info_; }

  private:
    DeadlockInfo info_;
};

/** A run guard tripped: the cycle or wall-clock budget was spent. */
class BudgetExceededError : public SimError
{
  public:
    BudgetExceededError(std::string budget, std::uint64_t limit,
                        std::uint64_t actual, const std::string &msg)
        : SimError("budget", msg), budget_(std::move(budget)),
          limit_(limit), actual_(actual)
    {
        addContext("budget", budget_);
        addContext("limit", std::to_string(limit_));
        addContext("actual", std::to_string(actual_));
    }

    /** Which budget: "cycles" or "wall". */
    const std::string &budget() const { return budget_; }
    std::uint64_t limit() const { return limit_; }
    std::uint64_t actual() const { return actual_; }

  private:
    std::string budget_;
    std::uint64_t limit_;
    std::uint64_t actual_;
};

/** Serialized stderr line "<prefix>: <msg>" (suppressed by setQuiet;
 *  implemented in log.cc so all output shares one mutex). */
void logRaw(const char *prefix, const std::string &msg);

/**
 * Report and throw a typed error: prints "<kind>: <msg>" like fatal()
 * and panic() do, then throws @p e with its dynamic type intact.
 */
template <class E>
[[noreturn]] inline void
raise(E e)
{
    logRaw(e.kind().c_str(), e.what());
    throw e;
}

} // namespace ddsim

#endif // DDSIM_UTIL_ERROR_HH_
