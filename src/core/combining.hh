/**
 * @file
 * Access combining (Section 2.2.2): the LVC port scheduler may merge
 * up to C consecutive queue entries that touch the same cache line
 * into a single (wide) port access. The same scheduler, with C = 1,
 * serves as the plain port arbiter for the L1 data cache.
 */

#ifndef DDSIM_CORE_COMBINING_HH_
#define DDSIM_CORE_COMBINING_HH_

#include <cstdint>
#include <vector>

#include "util/types.hh"

namespace ddsim::core {

/** What kind of access is requesting a port. */
enum class AccessKind : std::uint8_t
{
    Load,       ///< Load that will access the cache.
    Store,      ///< Committing store writing the cache.
    Forward,    ///< Load satisfied by in-queue forwarding; it still
                ///< occupies a port (as in sim-outorder) but finishes
                ///< in the forwarding latency, so it must not share a
                ///< combining group with real cache accesses.
};

/** Per-cycle cache-port arbiter with optional access combining. */
class PortScheduler
{
  public:
    /**
     * @param ports Number of cache ports.
     * @param degree Combining degree C (1 = no combining).
     * @param lineBytes Cache line size defining combinable groups.
     * @param banks 0 for ideal ports (footnote 8 of the paper: any N
     *        accesses per cycle); otherwise the cache is interleaved
     *        across this many single-ported banks selected by line
     *        address, and two accesses to the same bank conflict even
     *        when ports are free — the realistic multi-porting
     *        technique whose drawbacks motivate the paper (Section 1).
     */
    PortScheduler(int ports, int degree, std::uint32_t lineBytes,
                  int banks = 0);

    /** Start a new cycle; all ports and groups are released. */
    void newCycle(Cycle now);

    /** Result of a port request. */
    struct Grant
    {
        bool granted = false;
        bool combined = false;  ///< Joined an existing group.
        bool bankConflict = false; ///< Denied by a busy bank.
        int groupId = -1;
    };

    /**
     * Request a port for an access at @p addr in cycle position
     * @p queuePos (logical index from queue head; used to enforce the
     * "consecutive entries" window of the combining hardware). Only
     * same-kind accesses to the same line may combine.
     */
    Grant request(Addr addr, AccessKind kind, int queuePos);

    /** Record the leader's cache completion time for a group. */
    void setGroupCompletion(int groupId, Cycle completeAt);

    /** Completion time recorded for @p groupId. */
    Cycle groupCompletion(int groupId) const;

    int portsInUse() const { return portsUsed; }
    int numPorts() const { return ports; }
    Cycle cycle() const { return curCycle; }

  private:
    struct Group
    {
        Addr line = 0;
        AccessKind kind = AccessKind::Load;
        int leaderPos = 0;
        int members = 1;
        Cycle completeAt = 0;
    };

    int ports;
    int degree;
    std::uint32_t lineShift;
    int banks;                      ///< 0 = ideal ports.
    Cycle curCycle = ~Cycle{0};
    int portsUsed = 0;
    std::vector<Group> groups;
    std::vector<bool> bankBusy;     ///< Per-cycle bank occupancy.
};

} // namespace ddsim::core

#endif // DDSIM_CORE_COMBINING_HH_
