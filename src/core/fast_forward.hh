/**
 * @file
 * Fast data forwarding (Section 2.2.2): match a load to an older store
 * in the LVAQ *by offset*, before either effective address has been
 * computed. Within a function frame the stack pointer does not change,
 * so two accesses with the same base register, the same version of
 * that register's value and the same offset are guaranteed to alias —
 * no later verification is required.
 */

#ifndef DDSIM_CORE_FAST_FORWARD_HH_
#define DDSIM_CORE_FAST_FORWARD_HH_

#include <vector>

#include "core/queue_entry.hh"

namespace ddsim::core {

/**
 * Scan older queue entries for a store the load can fast-forward from.
 *
 * @param entries Physical queue storage.
 * @param olderSlots Slots older than the load, youngest first.
 * @param load The just-dispatched load.
 * @return The slot of the matched store, or -1.
 *
 * The scan stops conservatively at the first older store whose
 * relationship to the load cannot be proven from static information:
 * a store with a different base register or a different base-register
 * version. Stores with the same base+version but a provably disjoint
 * byte range are skipped.
 */
int findFastForwardStore(const std::vector<QueueEntry> &entries,
                         const std::vector<int> &olderSlots,
                         const QueueEntry &load);

} // namespace ddsim::core

#endif // DDSIM_CORE_FAST_FORWARD_HH_
