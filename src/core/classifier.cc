#include "core/classifier.hh"

#include "util/log.hh"

namespace ddsim::core {

Classifier::Classifier(stats::Group *parent, config::ClassifierKind kind,
                       int predictorEntries)
    : stats::Group(parent, "classifier"),
      classified(this, "classified", "memory instructions classified"),
      toLvaq(this, "to_lvaq", "classified as local (steered to LVAQ)"),
      verified(this, "verified", "classifications verified"),
      mispredicted(this, "mispredicted", "wrongly steered accesses"),
      classifierKind(kind)
{
    if (kind == config::ClassifierKind::Predictor)
        predictor = std::make_unique<RegionPredictor>(predictorEntries);
}

Stream
Classifier::classify(const vm::DynInst &di)
{
    ++classified;
    bool local = false;
    switch (classifierKind) {
      case config::ClassifierKind::None:
        local = false;
        break;
      case config::ClassifierKind::Annotation:
        local = di.inst.localHint;
        break;
      case config::ClassifierKind::SpBase:
        local = isa::isStackBase(di.inst.rs);
        break;
      case config::ClassifierKind::Oracle:
        local = di.stackAccess;
        break;
      case config::ClassifierKind::Predictor:
        local = predictor->predictLocal(di.pcIdx, di.inst.localHint);
        break;
      case config::ClassifierKind::Replicate:
        // Replicated steering is handled in the pipeline (both queues
        // get a copy); if asked, answer with the true region.
        local = di.stackAccess;
        break;
    }
    if (local)
        ++toLvaq;
    return local ? Stream::Lvaq : Stream::Lsq;
}

bool
Classifier::verify(const vm::DynInst &di, Stream chosen)
{
    ++verified;
    bool actuallyLocal = di.stackAccess;
    bool chosenLocal = chosen == Stream::Lvaq;
    if (predictor)
        predictor->update(di.pcIdx, actuallyLocal);
    if (actuallyLocal != chosenLocal) {
        ++mispredicted;
        return false;
    }
    return true;
}

double
Classifier::accuracy() const
{
    if (verified.value() == 0)
        return 1.0;
    return 1.0 - stats::safeRatio(mispredicted.report(),
                                  verified.report());
}

} // namespace ddsim::core
