#include "core/classifier.hh"

#include "util/log.hh"

namespace ddsim::core {

Classifier::Classifier(stats::Group *parent, config::ClassifierKind kind,
                       int predictorEntries)
    : stats::Group(parent, "classifier"),
      classified(this, "classified", "memory instructions classified"),
      toLvaq(this, "to_lvaq", "classified as local (steered to LVAQ)"),
      verified(this, "verified", "classifications verified"),
      mispredicted(this, "mispredicted", "wrongly steered accesses"),
      staticDecided(this, "static_decided",
                    "accesses decided by the static verdict table"),
      classifierKind(kind)
{
    if (kind == config::ClassifierKind::Predictor ||
        kind == config::ClassifierKind::StaticHybrid)
        predictor = std::make_unique<RegionPredictor>(predictorEntries);
}

void
Classifier::setStaticVerdicts(std::vector<StaticVerdict> table)
{
    verdicts = std::move(table);
}

bool
Classifier::decideLocal(const vm::DynInst &di, bool count)
{
    bool local = false;
    switch (classifierKind) {
      case config::ClassifierKind::None:
        local = false;
        break;
      case config::ClassifierKind::Annotation:
        local = di.inst.localHint;
        break;
      case config::ClassifierKind::SpBase:
        local = isa::isStackBase(di.inst.rs);
        break;
      case config::ClassifierKind::Oracle:
        local = di.stackAccess;
        break;
      case config::ClassifierKind::Predictor:
        local = predictor->predictLocal(di.pcIdx, di.inst.localHint);
        break;
      case config::ClassifierKind::Replicate:
        // Replicated steering is handled in the pipeline (both queues
        // get a copy); if asked, answer with the true region.
        local = di.stackAccess;
        break;
      case config::ClassifierKind::StaticHybrid:
        // Decided verdicts steer outright; only the Ambiguous
        // remainder pays for (and trains) the region predictor.
        switch (verdictAt(di.pcIdx)) {
          case StaticVerdict::Local:
            local = true;
            if (count)
                ++staticDecided;
            break;
          case StaticVerdict::NonLocal:
            local = false;
            if (count)
                ++staticDecided;
            break;
          case StaticVerdict::Ambiguous:
            local = predictor->predictLocal(di.pcIdx,
                                            di.inst.localHint);
            break;
        }
        break;
    }
    return local;
}

Stream
Classifier::classify(const vm::DynInst &di)
{
    ++classified;
    bool local = decideLocal(di, true);
    if (local)
        ++toLvaq;
    return local ? Stream::Lvaq : Stream::Lsq;
}

Stream
Classifier::warmClassify(const vm::DynInst &di)
{
    bool local = decideLocal(di, false);
    if (predictor &&
        (classifierKind != config::ClassifierKind::StaticHybrid ||
         verdictAt(di.pcIdx) == StaticVerdict::Ambiguous))
        predictor->update(di.pcIdx, di.stackAccess);
    return local ? Stream::Lvaq : Stream::Lsq;
}

bool
Classifier::verify(const vm::DynInst &di, Stream chosen)
{
    ++verified;
    bool actuallyLocal = di.stackAccess;
    bool chosenLocal = chosen == Stream::Lvaq;
    // StaticHybrid trains the predictor only on Ambiguous
    // instructions: decided pcs never consult it, and letting them
    // write entries would pollute aliased Ambiguous slots.
    if (predictor &&
        (classifierKind != config::ClassifierKind::StaticHybrid ||
         verdictAt(di.pcIdx) == StaticVerdict::Ambiguous))
        predictor->update(di.pcIdx, actuallyLocal);
    if (actuallyLocal != chosenLocal) {
        ++mispredicted;
        return false;
    }
    return true;
}

double
Classifier::accuracy() const
{
    if (verified.value() == 0)
        return 1.0;
    return 1.0 - stats::safeRatio(mispredicted.report(),
                                  verified.report());
}

} // namespace ddsim::core
