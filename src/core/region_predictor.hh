/**
 * @file
 * The 1-bit access-region predictor of Section 2.2.3: a small
 * direct-mapped table indexed by instruction address, each entry
 * remembering whether that static memory instruction last touched the
 * stack region. The paper reports ~99.9% of dynamic references
 * correctly classified with this scheme.
 */

#ifndef DDSIM_CORE_REGION_PREDICTOR_HH_
#define DDSIM_CORE_REGION_PREDICTOR_HH_

#include <cstdint>
#include <vector>

#include "util/types.hh"

namespace ddsim::core {

/** Direct-mapped 1-bit last-region predictor. */
class RegionPredictor
{
  public:
    /** @param entries Table size; rounded up to a power of two. */
    explicit RegionPredictor(int entries);

    /**
     * Predict whether the memory instruction at text index @p pcIdx
     * accesses the stack region. @p compilerHint seeds entries that
     * have never been trained.
     */
    bool predictLocal(std::uint32_t pcIdx, bool compilerHint);

    /** Train with the resolved region of the access. */
    void update(std::uint32_t pcIdx, bool wasLocal);

    int size() const { return static_cast<int>(table.size()); }

  private:
    struct Entry
    {
        bool trained = false;
        bool lastLocal = false;
    };

    std::vector<Entry> table;
    std::uint32_t mask;

    std::uint32_t index(std::uint32_t pcIdx) const
    {
        return pcIdx & mask;
    }
};

} // namespace ddsim::core

#endif // DDSIM_CORE_REGION_PREDICTOR_HH_
