/**
 * @file
 * Memory-stream classification (Section 2 of the paper): at dispatch,
 * every memory instruction is steered either to the conventional LSQ
 * (backed by the L1 data cache) or to the LVAQ (backed by the LVC).
 *
 * Four classification schemes are modelled:
 *  - Annotation: trust the compiler's per-instruction local bit
 *    (Section 2.2.3's "a bit associated with each memory access
 *    instruction").
 *  - SpBase: the hardware heuristic — base register is sp or fp
 *    (the paper notes <5% of stack references escape this rule).
 *  - Oracle: perfect classification by the actual effective address,
 *    the evaluation default ("this paper assumes that a processor can
 *    accurately separate the local accesses").
 *  - Predictor: compiler annotation for unambiguous instructions plus
 *    a 1-bit last-region predictor for the rest, with misprediction
 *    recovery (Section 2.1).
 */

#ifndef DDSIM_CORE_CLASSIFIER_HH_
#define DDSIM_CORE_CLASSIFIER_HH_

#include <memory>
#include <vector>

#include "config/machine_config.hh"
#include "core/region_predictor.hh"
#include "stats/group.hh"
#include "stats/stat.hh"
#include "vm/trace.hh"

namespace ddsim::core {

/** Which memory access queue an instruction is steered to. */
enum class Stream : std::uint8_t
{
    Lsq,    ///< Non-local: conventional load/store queue + L1 D-cache.
    Lvaq,   ///< Local: local variable access queue + LVC.
};

/**
 * One per-pc entry of the static verdict table consumed by
 * ClassifierKind::StaticHybrid — the hardware-facing mirror of
 * analysis::Verdict (core does not depend on the analyzer; the runner
 * translates).
 */
enum class StaticVerdict : std::uint8_t
{
    Ambiguous,  ///< No static decision: consult the region predictor.
    Local,      ///< Statically proven local: steer to the LVAQ.
    NonLocal,   ///< Statically proven non-local: steer to the LSQ.
};

/** Dispatch-time memory stream classifier. */
class Classifier : public stats::Group
{
  public:
    Classifier(stats::Group *parent, config::ClassifierKind kind,
               int predictorEntries = 2048);

    /**
     * Classify a memory instruction at dispatch. Only dispatch-time
     * information may be used (the oracle mode "peeks" at the
     * effective address the front end already computed, standing in
     * for a perfectly annotated binary).
     */
    Stream classify(const vm::DynInst &di);

    /**
     * Resolution-time verification: once the effective address is
     * known, was the dispatch decision correct? Updates the predictor
     * and the accuracy statistics.
     *
     * @return true if the access was steered to the right queue.
     */
    bool verify(const vm::DynInst &di, Stream chosen);

    /**
     * Functional warming: make the steering decision and train the
     * region predictor exactly as a classify()+verify() pair would,
     * but without touching any statistics. Keeps predictor state
     * tracking the instruction stream across a sampled simulation's
     * fast-forward phases. @return the stream the access would have
     * been steered to.
     */
    Stream warmClassify(const vm::DynInst &di);

    config::ClassifierKind kind() const { return classifierKind; }

    /**
     * Attach the per-pc static verdict table (indexed by text word
     * index) for StaticHybrid operation. Instructions beyond the
     * table, and programs with no table at all, classify as
     * Ambiguous — the predictor carries them.
     */
    void setStaticVerdicts(std::vector<StaticVerdict> table);

    double accuracy() const;

    stats::Scalar classified;
    stats::Scalar toLvaq;
    stats::Scalar verified;
    stats::Scalar mispredicted;
    /** Accesses decided by the static table (StaticHybrid only). */
    stats::Scalar staticDecided;

  private:
    /** The steering decision shared by classify() and warmClassify();
     *  @p count enables the static-decided statistic. */
    bool decideLocal(const vm::DynInst &di, bool count);

    StaticVerdict verdictAt(std::uint64_t pcIdx) const
    {
        return pcIdx < verdicts.size()
                   ? verdicts[static_cast<std::size_t>(pcIdx)]
                   : StaticVerdict::Ambiguous;
    }

    config::ClassifierKind classifierKind;
    std::unique_ptr<RegionPredictor> predictor;
    std::vector<StaticVerdict> verdicts;
};

} // namespace ddsim::core

#endif // DDSIM_CORE_CLASSIFIER_HH_
