#include "core/region_predictor.hh"

#include <bit>

#include "util/log.hh"

namespace ddsim::core {

RegionPredictor::RegionPredictor(int entries)
{
    if (entries < 1)
        fatal("region predictor needs at least one entry");
    std::uint32_t n = std::bit_ceil(static_cast<std::uint32_t>(entries));
    table.assign(n, Entry{});
    mask = n - 1;
}

bool
RegionPredictor::predictLocal(std::uint32_t pcIdx, bool compilerHint)
{
    const Entry &e = table[index(pcIdx)];
    return e.trained ? e.lastLocal : compilerHint;
}

void
RegionPredictor::update(std::uint32_t pcIdx, bool wasLocal)
{
    Entry &e = table[index(pcIdx)];
    e.trained = true;
    e.lastLocal = wasLocal;
}

} // namespace ddsim::core
