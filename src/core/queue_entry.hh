/**
 * @file
 * The per-entry state of a memory access queue (LSQ or LVAQ).
 */

#ifndef DDSIM_CORE_QUEUE_ENTRY_HH_
#define DDSIM_CORE_QUEUE_ENTRY_HH_

#include <cstdint>

#include "util/types.hh"

namespace ddsim::core {

/** One load or store resident in a memory access queue. */
struct QueueEntry
{
    bool valid = false;
    InstSeq seq = 0;            ///< Program-order sequence number.
    int robIdx = -1;            ///< Owning ROB entry.
    bool isLoad = false;
    bool isStore = false;
    std::uint8_t size = 0;      ///< Access width in bytes.

    // Effective address, filled in by address generation.
    Addr addr = 0;
    bool addrKnown = false;
    Cycle addrKnownAt = 0;

    // Store data availability.
    bool dataReady = false;
    Cycle dataReadyAt = 0;

    // Progress.
    bool issued = false;        ///< Load sent to cache / forwarded.
    bool completed = false;
    Cycle completeAt = 0;
    bool committed = false;     ///< Store written to its cache.

    // Static addressing info used by fast data forwarding: a
    // store/load pair with the same base register, the same version of
    // that register's value and the same offset is guaranteed to match
    // addresses (Section 2.2.2).
    RegId baseReg = 0;
    std::int32_t offset = 0;
    std::uint32_t baseVersion = 0;

    /** Fast-forward source: (slot, seq) of the matched older store. */
    int fastFwdSlot = -1;
    InstSeq fastFwdSeq = 0;

    /** Steered into the wrong queue (Predictor classifier only). */
    bool missteered = false;

    /**
     * Killed replica (Replicate steering, paper footnote 3): the
     * access was inserted into both queues and this copy turned out
     * to be in the wrong one. Cancelled entries never issue, never
     * block disambiguation, and release normally.
     */
    bool cancelled = false;

    // How the access was ultimately served. Written by the queue,
    // read only by the observability layer — never by timing code.
    enum : std::uint8_t
    {
        kServedNone = 0,
        kServedCache = 1,       ///< Issued through a cache port.
        kServedForward = 2,     ///< In-queue store-to-load forward.
        kServedFastForward = 3, ///< Offset-matched fast forward.
    };
    std::uint8_t servedKind = kServedNone;
    Cycle servedAt = 0;         ///< Cycle the serving action ran.
    bool combinedGrant = false; ///< Rode another access's port grant.

    /** Bytes [addr, addr+size) overlap with @p other's range? */
    bool
    overlaps(const QueueEntry &other) const
    {
        return addr < other.addr + other.size &&
               other.addr < addr + size;
    }

    /** Does @p other (a store) fully cover this entry's bytes? */
    bool
    coveredBy(const QueueEntry &other) const
    {
        return other.addr <= addr &&
               addr + size <= other.addr + other.size;
    }
};

} // namespace ddsim::core

#endif // DDSIM_CORE_QUEUE_ENTRY_HH_
