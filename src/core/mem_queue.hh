/**
 * @file
 * MemQueue: one memory access queue plus its port-scheduled cache.
 * Instantiated twice per decoupled machine — once as the conventional
 * LSQ in front of the L1 data cache, once as the LVAQ in front of the
 * LVC — exactly the symmetric structure of Figure 1(b).
 *
 * Semantics follow sim-outorder (Section 3.1):
 *  - a load may access its cache once its own address and the
 *    addresses of all earlier stores *in this queue* are known;
 *  - a load whose bytes are fully covered by an earlier store with
 *    ready data is satisfied by in-queue forwarding in one cycle;
 *  - stores write their cache at commit, competing for the same ports.
 *
 * On top of that, the LVAQ instance adds the paper's two
 * optimizations: fast data forwarding (offset matching before address
 * generation) and access combining in the port scheduler.
 */

#ifndef DDSIM_CORE_MEM_QUEUE_HH_
#define DDSIM_CORE_MEM_QUEUE_HH_

#include <string>
#include <vector>

#include "core/combining.hh"
#include "core/queue_entry.hh"
#include "mem/cache.hh"
#include "stats/group.hh"
#include "stats/histogram.hh"
#include "stats/stat.hh"

namespace ddsim::core {

/** Scheduling policy knobs for one queue. */
struct QueuePolicy
{
    int ports = 1;
    int combining = 1;              ///< Max accesses per port grant.
    int banks = 0;                  ///< 0 = ideal; else interleaved.
    bool fastForward = false;
    Cycle forwardLatency = 1;
    Cycle mispredictPenalty = 8;    ///< Extra latency when missteered.
};

/** A completed load to hand back to the ROB. */
struct LoadCompletion
{
    int slot = -1;
    int robIdx = -1;
    Cycle readyAt = 0;
};

/** One memory access queue (LSQ or LVAQ). */
class MemQueue : public stats::Group
{
  public:
    /**
     * @param cache The cache this queue's ports reach.
     * @param altCache Cache used by missteered accesses (the "other"
     *        stream's cache); may be nullptr when classification is
     *        exact.
     */
    MemQueue(stats::Group *parent, const std::string &name, int size,
             mem::Cache *cache, mem::Cache *altCache,
             const QueuePolicy &policy);

    bool full() const { return count == capacity; }
    int occupancy() const { return count; }
    int size() const { return capacity; }

    /**
     * Allocate a queue slot for a just-dispatched memory instruction.
     * The caller must check full() first. Performs the fast-forward
     * match for loads when the policy enables it.
     *
     * @return The slot index.
     */
    int allocate(InstSeq seq, int robIdx, bool isLoad,
                 std::uint8_t accessSize, RegId baseReg,
                 std::int32_t offset, std::uint32_t baseVersion);

    /** Address generation finished for @p slot. */
    void setAddress(int slot, Addr addr, Cycle when, bool missteered);

    /** The store's data operand became available. */
    void setStoreData(int slot, Cycle readyAt);

    /**
     * Kill a replica (Replicate steering, paper footnote 3): this
     * copy was inserted speculatively and the access belongs to the
     * other queue. The slot stays allocated for ordering but is inert
     * until released.
     */
    void cancel(int slot);

    /**
     * Per-cycle load processing: issue eligible loads to the cache (or
     * forward them) and report completions. Must be called once per
     * cycle after stores have committed (stores get port priority).
     */
    void tick(Cycle now, std::vector<LoadCompletion> &completions);

    /**
     * Try to write a committing store to the cache. @return false if
     * no port could be granted this cycle (the caller stalls commit).
     */
    bool commitStore(int slot, Cycle now);

    /** Free @p slot. Entries must be released oldest-first. */
    void release(int slot);

    const QueueEntry &entry(int slot) const
    {
        return entries[static_cast<std::size_t>(slot)];
    }

    /** Fraction of loads satisfied in-queue (paper: 50-90% for LVAQ). */
    double queueSatisfiedFrac() const;

    // Stats.
    stats::Scalar allocated;
    stats::Scalar loadsTotal;
    stats::Scalar storesTotal;
    stats::Scalar loadsForwarded;       ///< Normal in-queue forwards.
    stats::Scalar loadsFastForwarded;   ///< Offset-matched forwards.
    stats::Scalar loadsFromCache;
    stats::Scalar combinedAccesses;     ///< Accesses riding a group.
    stats::Scalar portDenials;          ///< Port-full rejections.
    stats::Scalar bankConflicts;        ///< Banked-mode denials.
    stats::Scalar disambiguationStalls; ///< Load-blocked cycles.
    stats::Scalar missteeredAccesses;
    stats::Scalar cancelledReplicas;    ///< Killed copies (Replicate).
    stats::Histogram occupancyHist;

  private:
    int capacity;
    mem::Cache *cache;
    mem::Cache *altCache;
    QueuePolicy policy;
    std::vector<QueueEntry> entries;
    int head = 0;
    int tail = 0;
    int count = 0;
    PortScheduler scheduler;
    Cycle lastSampled = 0;

    int positionOf(int slot) const;
    /** Collect valid slots older than @p slot, youngest first. */
    std::vector<int> olderSlots(int slot) const;

    /** Issue one load to the cache via the port scheduler. */
    bool tryCacheAccess(QueueEntry &e, int pos, Cycle now);
};

} // namespace ddsim::core

#endif // DDSIM_CORE_MEM_QUEUE_HH_
