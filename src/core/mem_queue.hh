/**
 * @file
 * MemQueue: one memory access queue plus its port-scheduled cache.
 * Instantiated twice per decoupled machine — once as the conventional
 * LSQ in front of the L1 data cache, once as the LVAQ in front of the
 * LVC — exactly the symmetric structure of Figure 1(b).
 *
 * Semantics follow sim-outorder (Section 3.1):
 *  - a load may access its cache once its own address and the
 *    addresses of all earlier stores *in this queue* are known;
 *  - a load whose bytes are fully covered by an earlier store with
 *    ready data is satisfied by in-queue forwarding in one cycle;
 *  - stores write their cache at commit, competing for the same ports.
 *
 * On top of that, the LVAQ instance adds the paper's two
 * optimizations: fast data forwarding (offset matching before address
 * generation) and access combining in the port scheduler.
 *
 * The implementation is indexed rather than scanned: tick() visits
 * only the resident loads (never stores or empty slots), the
 * conservative disambiguation barrier is the head of an age-ordered
 * deque of stores with still-unknown addresses, and the
 * youngest-older-store search runs against a per-8-byte-chunk store
 * index instead of re-walking all older entries per load per cycle.
 * The timing model is bit-identical to the original full scan.
 */

#ifndef DDSIM_CORE_MEM_QUEUE_HH_
#define DDSIM_CORE_MEM_QUEUE_HH_

#include <deque>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/combining.hh"
#include "core/queue_entry.hh"
#include "mem/cache.hh"
#include "stats/group.hh"
#include "stats/histogram.hh"
#include "stats/stat.hh"

namespace ddsim::core {

/** Scheduling policy knobs for one queue. */
struct QueuePolicy
{
    int ports = 1;
    int combining = 1;              ///< Max accesses per port grant.
    int banks = 0;                  ///< 0 = ideal; else interleaved.
    bool fastForward = false;
    Cycle forwardLatency = 1;
    Cycle mispredictPenalty = 8;    ///< Extra latency when missteered.
};

/** A completed load to hand back to the ROB. */
struct LoadCompletion
{
    int slot = -1;
    int robIdx = -1;
    Cycle readyAt = 0;
};

/** "No scheduled event" sentinel for event-driven cycle skipping. */
inline constexpr Cycle kNoEvent = ~Cycle{0};

/** One memory access queue (LSQ or LVAQ). */
class MemQueue : public stats::Group
{
  public:
    /**
     * Per-tick scheduling summary, advisory input to the pipeline's
     * cycle skip-ahead. nextEvent is the earliest future cycle at
     * which this queue can make progress from *already-pushed* state
     * (an address or store datum arriving, or a denied port retry);
     * progress that needs a new external push (setAddress,
     * setStoreData, commitStore, cancel) is reported through
     * takeExternalEvent() instead. stalledLoads counts the loads that
     * took a disambiguation stall this tick; while the queue is left
     * unticked every skipped cycle accrues the same stalls.
     */
    struct TickInfo
    {
        Cycle nextEvent = kNoEvent;
        std::uint64_t stalledLoads = 0;
    };

    /**
     * @param cache The cache this queue's ports reach.
     * @param altCache Cache used by missteered accesses (the "other"
     *        stream's cache); may be nullptr when classification is
     *        exact.
     */
    MemQueue(stats::Group *parent, const std::string &name, int size,
             mem::Cache *cache, mem::Cache *altCache,
             const QueuePolicy &policy);

    bool full() const { return count == capacity; }
    int occupancy() const { return count; }
    int size() const { return capacity; }

    /**
     * Allocate a queue slot for a just-dispatched memory instruction.
     * The caller must check full() first. Performs the fast-forward
     * match for loads when the policy enables it.
     *
     * @return The slot index.
     */
    int allocate(InstSeq seq, int robIdx, bool isLoad,
                 std::uint8_t accessSize, RegId baseReg,
                 std::int32_t offset, std::uint32_t baseVersion);

    /** Address generation finished for @p slot. */
    void setAddress(int slot, Addr addr, Cycle when, bool missteered);

    /** The store's data operand became available. */
    void setStoreData(int slot, Cycle readyAt);

    /**
     * Kill a replica (Replicate steering, paper footnote 3): this
     * copy was inserted speculatively and the access belongs to the
     * other queue. The slot stays allocated for ordering but is inert
     * until released.
     */
    void cancel(int slot);

    /**
     * Per-cycle load processing: issue eligible loads to the cache (or
     * forward them) and report completions. Must be called once per
     * cycle after stores have committed (stores get port priority).
     */
    void tick(Cycle now, std::vector<LoadCompletion> &completions,
              TickInfo *info = nullptr);

    /**
     * Replay the queue-side effects of leaving the queue unticked for
     * cycles (@p from, @p to]: each load that stalled on
     * disambiguation in the tick at @p from stalls again every skipped
     * cycle, and the occupancy histogram keeps sampling every 64
     * cycles. Only valid while the queue is quiescent (the pipeline
     * skips only when no allocate/release/setAddress/setStoreData/
     * commitStore/cancel lands in the window).
     */
    void skipTo(Cycle from, Cycle to, std::uint64_t stalledLoads);

    /**
     * Earliest cycle at which state pushed from outside since the last
     * call (setAddress, setStoreData, commitStore, cancel) can change
     * this queue's behaviour. Consumed: resets to kNoEvent.
     */
    Cycle takeExternalEvent()
    {
        Cycle e = extEvent;
        extEvent = kNoEvent;
        return e;
    }

    /**
     * Try to write a committing store to the cache. @return false if
     * no port could be granted this cycle (the caller stalls commit).
     */
    bool commitStore(int slot, Cycle now);

    /** Free @p slot. Entries must be released oldest-first. */
    void release(int slot);

    const QueueEntry &entry(int slot) const
    {
        return entries[static_cast<std::size_t>(slot)];
    }

    /** Fraction of loads satisfied in-queue (paper: 50-90% for LVAQ). */
    double queueSatisfiedFrac() const;

    // Stats.
    stats::Scalar allocated;
    stats::Scalar loadsTotal;
    stats::Scalar storesTotal;
    stats::Scalar loadsForwarded;       ///< Normal in-queue forwards.
    stats::Scalar loadsFastForwarded;   ///< Offset-matched forwards.
    stats::Scalar loadsFromCache;
    stats::Scalar combinedAccesses;     ///< Accesses riding a group.
    stats::Scalar portDenials;          ///< Port-full rejections.
    stats::Scalar bankConflicts;        ///< Banked-mode denials.
    stats::Scalar disambiguationStalls; ///< Load-blocked cycles.
    stats::Scalar missteeredAccesses;
    stats::Scalar cancelledReplicas;    ///< Killed copies (Replicate).
    stats::Histogram occupancyHist;

  private:
    /** Address chunks indexing the store-overlap search. */
    static constexpr unsigned kChunkShift = 3;

    int capacity;
    mem::Cache *cache;
    mem::Cache *altCache;
    QueuePolicy policy;
    std::vector<QueueEntry> entries;
    int head = 0;
    int tail = 0;
    int count = 0;
    PortScheduler scheduler;
    Cycle lastSampled = 0;

    // ---- Indexes (derived state; the entries array stays the truth).
    /**
     * Resident loads in age order, identified by (slot, seq); entries
     * whose load issued, completed, cancelled or released are dropped
     * lazily during the tick walk.
     */
    std::vector<std::pair<int, InstSeq>> pendingLoads;
    /**
     * Resident stores whose address was unknown as of the last tick,
     * in age order. The front (after popping resolved/cancelled/stale
     * heads) is the conservative disambiguation barrier: a load is
     * blocked iff it is younger than the front store.
     */
    std::deque<std::pair<int, InstSeq>> noAddrStores;
    /**
     * All resident stores in age order (cancelled ones included and
     * skipped at use), for the fast-forward offset match at allocate.
     */
    std::deque<std::pair<int, InstSeq>> storesByAge;
    /**
     * Known-address, non-cancelled resident stores bucketed by the
     * 8-byte chunks their bytes touch (an access spans at most two).
     * Maintained eagerly by setAddress/cancel/release.
     */
    std::unordered_map<Addr, std::vector<int>> chunkStores;
    /** Scratch for the fast-forward candidate list (no per-call alloc). */
    std::vector<int> ffScratch;

    /** Earliest effect cycle of external pushes since last taken. */
    Cycle extEvent = kNoEvent;

    int positionOf(int slot) const;

    /** Enter @p slot (a known-address store) into chunkStores. */
    void indexStore(const QueueEntry &e, int slot);
    /** Remove @p slot from chunkStores if present. */
    void unindexStore(const QueueEntry &e, int slot);
    /**
     * Youngest store older than @p load overlapping its bytes, or -1.
     * Pre-condition (guaranteed by the disambiguation barrier): every
     * older store's address is known.
     */
    int youngestOlderStore(const QueueEntry &load) const;

    /**
     * One load's per-cycle processing (the body of the original full
     * scan). @return true when the load left the pending set.
     */
    bool processLoad(QueueEntry &e, int slot, Cycle now,
                     InstSeq barrierSeq, Cycle barrierEvent,
                     std::vector<LoadCompletion> &completions,
                     TickInfo &info);

    /** Issue one load to the cache via the port scheduler. */
    bool tryCacheAccess(QueueEntry &e, int pos, Cycle now);
};

} // namespace ddsim::core

#endif // DDSIM_CORE_MEM_QUEUE_HH_
