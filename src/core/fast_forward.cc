#include "core/fast_forward.hh"

namespace ddsim::core {

namespace {

/** Byte range [offset, offset+size) disjoint from the load's range? */
bool
disjointByOffset(const QueueEntry &store, const QueueEntry &load)
{
    std::int64_t sLo = store.offset;
    std::int64_t sHi = sLo + store.size;
    std::int64_t lLo = load.offset;
    std::int64_t lHi = lLo + load.size;
    return sHi <= lLo || lHi <= sLo;
}

} // namespace

int
findFastForwardStore(const std::vector<QueueEntry> &entries,
                     const std::vector<int> &olderSlots,
                     const QueueEntry &load)
{
    for (int slot : olderSlots) {
        const QueueEntry &e = entries[static_cast<std::size_t>(slot)];
        if (!e.valid || e.cancelled || !e.isStore)
            continue;

        bool sameBase = e.baseReg == load.baseReg &&
                        e.baseVersion == load.baseVersion;
        if (!sameBase) {
            // Unknown aliasing relationship: the hardware cannot prove
            // anything from the offset fields -- stop the scan.
            return -1;
        }
        if (e.offset == load.offset && e.size == load.size) {
            // Exact match: guaranteed same address, forward from here.
            return slot;
        }
        if (!disjointByOffset(e, load)) {
            // Partial overlap within the frame: cannot forward.
            return -1;
        }
        // Provably disjoint frame slots: keep scanning older stores.
    }
    return -1;
}

} // namespace ddsim::core
