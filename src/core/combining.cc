#include "core/combining.hh"

#include <bit>
#include <cstdlib>

#include "util/log.hh"

namespace ddsim::core {

PortScheduler::PortScheduler(int ports, int degree,
                             std::uint32_t lineBytes, int banks)
    : ports(ports), degree(degree), banks(banks)
{
    if (ports < 1)
        fatal("port scheduler needs at least one port");
    if (degree < 1)
        fatal("combining degree must be >= 1");
    if (lineBytes == 0 || (lineBytes & (lineBytes - 1)) != 0)
        fatal("combining line size must be a power of two");
    if (banks < 0 ||
        (banks > 0 && (banks & (banks - 1)) != 0))
        fatal("bank count must be 0 (ideal) or a power of two");
    lineShift = static_cast<std::uint32_t>(std::countr_zero(lineBytes));
    if (banks > 0)
        bankBusy.assign(static_cast<std::size_t>(banks), false);
}

void
PortScheduler::newCycle(Cycle now)
{
    if (now == curCycle)
        return;
    curCycle = now;
    portsUsed = 0;
    groups.clear();
    if (banks > 0)
        bankBusy.assign(static_cast<std::size_t>(banks), false);
}

PortScheduler::Grant
PortScheduler::request(Addr addr, AccessKind kind, int queuePos)
{
    Addr line = addr >> lineShift;

    // Try to join an existing same-line same-kind group first: this
    // consumes no additional port, modelling the wide LVC port of the
    // paper.
    if (degree > 1) {
        for (std::size_t i = 0; i < groups.size(); ++i) {
            Group &g = groups[i];
            if (g.line == line && g.kind == kind &&
                g.members < degree &&
                std::abs(queuePos - g.leaderPos) < degree) {
                ++g.members;
                return {true, true, false, static_cast<int>(i)};
            }
        }
    }

    if (portsUsed >= ports)
        return {false, false, false, -1};

    // Interleaved mode: the bank holding this line must be free.
    std::size_t bank = 0;
    if (banks > 0) {
        bank = static_cast<std::size_t>(line) &
               static_cast<std::size_t>(banks - 1);
        if (bankBusy[bank])
            return {false, false, true, -1};
    }

    ++portsUsed;
    if (banks > 0)
        bankBusy[bank] = true;
    groups.push_back(Group{line, kind, queuePos, 1, 0});
    return {true, false, false, static_cast<int>(groups.size()) - 1};
}

void
PortScheduler::setGroupCompletion(int groupId, Cycle completeAt)
{
    groups.at(static_cast<std::size_t>(groupId)).completeAt = completeAt;
}

Cycle
PortScheduler::groupCompletion(int groupId) const
{
    return groups.at(static_cast<std::size_t>(groupId)).completeAt;
}

} // namespace ddsim::core
