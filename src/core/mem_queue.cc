#include "core/mem_queue.hh"

#include <algorithm>

#include "core/fast_forward.hh"
#include "util/log.hh"

namespace ddsim::core {

MemQueue::MemQueue(stats::Group *parent, const std::string &name,
                   int size, mem::Cache *cache, mem::Cache *altCache,
                   const QueuePolicy &policy)
    : stats::Group(parent, name),
      allocated(this, "allocated", "entries allocated"),
      loadsTotal(this, "loads", "loads passed through this queue"),
      storesTotal(this, "stores", "stores passed through this queue"),
      loadsForwarded(this, "loads_forwarded",
                     "loads satisfied by in-queue store forwarding"),
      loadsFastForwarded(this, "loads_fast_forwarded",
                         "loads satisfied by offset-matched fast "
                         "forwarding"),
      loadsFromCache(this, "loads_from_cache",
                     "loads that accessed the cache"),
      combinedAccesses(this, "combined_accesses",
                       "accesses merged into another port grant"),
      portDenials(this, "port_denials",
                  "port requests denied (all ports busy)"),
      bankConflicts(this, "bank_conflicts",
                    "requests denied by a busy bank (banked mode)"),
      disambiguationStalls(this, "disambiguation_stalls",
                           "load-cycles blocked on unknown older "
                           "store addresses"),
      missteeredAccesses(this, "missteered",
                         "accesses steered to the wrong queue"),
      cancelledReplicas(this, "cancelled_replicas",
                        "replicated copies killed at resolution"),
      occupancyHist(this, "occupancy", "queue occupancy distribution",
                    65, 1),
      capacity(size),
      cache(cache),
      altCache(altCache),
      policy(policy),
      entries(static_cast<std::size_t>(size)),
      scheduler(policy.ports, policy.combining,
                cache->params().lineBytes, policy.banks)
{
    if (size < 1)
        panic("memory queue needs at least one entry");
    pendingLoads.reserve(static_cast<std::size_t>(size));
    ffScratch.reserve(static_cast<std::size_t>(size));
}

int
MemQueue::positionOf(int slot) const
{
    return (slot - head + capacity) % capacity;
}

void
MemQueue::indexStore(const QueueEntry &e, int slot)
{
    if (e.size == 0)
        return; // A zero-width access overlaps nothing.
    Addr lo = e.addr >> kChunkShift;
    Addr hi = (e.addr + e.size - 1) >> kChunkShift;
    for (Addr c = lo;; ++c) {
        chunkStores[c].push_back(slot);
        if (c == hi)
            break;
    }
}

void
MemQueue::unindexStore(const QueueEntry &e, int slot)
{
    if (!e.addrKnown || e.size == 0)
        return;
    Addr lo = e.addr >> kChunkShift;
    Addr hi = (e.addr + e.size - 1) >> kChunkShift;
    for (Addr c = lo;; ++c) {
        auto it = chunkStores.find(c);
        if (it != chunkStores.end()) {
            auto &v = it->second;
            auto pos = std::find(v.begin(), v.end(), slot);
            if (pos != v.end()) {
                *pos = v.back(); // Order-free: lookups pick by seq.
                v.pop_back();
            }
            // The node and the vector's capacity are kept: the next
            // store to this chunk reuses them instead of paying a
            // map-node plus vector allocation (this pair was the
            // hottest malloc/free site in the whole simulator).
        }
        if (c == hi)
            break;
    }
}

int
MemQueue::youngestOlderStore(const QueueEntry &load) const
{
    if (load.size == 0)
        return -1;
    int best = -1;
    InstSeq bestSeq = 0;
    Addr lo = load.addr >> kChunkShift;
    Addr hi = (load.addr + load.size - 1) >> kChunkShift;
    for (Addr c = lo;; ++c) {
        auto it = chunkStores.find(c);
        if (it != chunkStores.end()) {
            for (int slot : it->second) {
                const QueueEntry &st =
                    entries[static_cast<std::size_t>(slot)];
                if (st.seq >= load.seq || !st.overlaps(load))
                    continue;
                if (best < 0 || st.seq > bestSeq) {
                    best = slot;
                    bestSeq = st.seq;
                }
            }
        }
        if (c == hi)
            break;
    }
    return best;
}

int
MemQueue::allocate(InstSeq seq, int robIdx, bool isLoad,
                   std::uint8_t accessSize, RegId baseReg,
                   std::int32_t offset, std::uint32_t baseVersion)
{
    if (full())
        panic("MemQueue::allocate on a full queue");

    int slot = tail;
    tail = (tail + 1) % capacity;
    ++count;
    ++allocated;

    QueueEntry &e = entries[static_cast<std::size_t>(slot)];
    e = QueueEntry{};
    e.valid = true;
    e.seq = seq;
    e.robIdx = robIdx;
    e.isLoad = isLoad;
    e.isStore = !isLoad;
    e.size = accessSize;
    e.baseReg = baseReg;
    e.offset = offset;
    e.baseVersion = baseVersion;

    if (isLoad) {
        ++loadsTotal;
        if (policy.fastForward) {
            // Candidates: resident stores only, youngest first (the
            // original scan walked all older slots but skipped
            // non-stores, so the result is identical).
            ffScratch.clear();
            for (auto it = storesByAge.rbegin();
                 it != storesByAge.rend(); ++it)
                ffScratch.push_back(it->first);
            int match = findFastForwardStore(entries, ffScratch, e);
            if (match >= 0) {
                e.fastFwdSlot = match;
                e.fastFwdSeq =
                    entries[static_cast<std::size_t>(match)].seq;
            }
        }
        pendingLoads.emplace_back(slot, seq);
    } else {
        ++storesTotal;
        noAddrStores.emplace_back(slot, seq);
        storesByAge.emplace_back(slot, seq);
    }
    return slot;
}

void
MemQueue::setAddress(int slot, Addr addr, Cycle when, bool missteered)
{
    QueueEntry &e = entries[static_cast<std::size_t>(slot)];
    if (!e.valid)
        panic("setAddress on an invalid queue slot");
    if (e.isStore && e.addrKnown)
        unindexStore(e, slot); // Re-addressing: replace the old entry.
    e.addr = addr;
    e.addrKnown = true;
    e.addrKnownAt = when;
    if (missteered) {
        e.missteered = true;
        ++missteeredAccesses;
    }
    if (e.isStore && !e.cancelled)
        indexStore(e, slot);
    extEvent = std::min(extEvent, when);
}

void
MemQueue::setStoreData(int slot, Cycle readyAt)
{
    QueueEntry &e = entries[static_cast<std::size_t>(slot)];
    if (!e.valid || !e.isStore)
        panic("setStoreData on a non-store queue slot");
    e.dataReady = true;
    e.dataReadyAt = readyAt;
    extEvent = std::min(extEvent, readyAt);
}

void
MemQueue::cancel(int slot)
{
    QueueEntry &e = entries[static_cast<std::size_t>(slot)];
    if (!e.valid)
        panic("cancel of an invalid queue slot");
    if (e.cancelled)
        return;
    e.cancelled = true;
    ++cancelledReplicas;
    if (e.isStore)
        unindexStore(e, slot);
    extEvent = 0; // Barrier and fast-forward waiters re-evaluate.
}

bool
MemQueue::tryCacheAccess(QueueEntry &e, int pos, Cycle now)
{
    auto grant = scheduler.request(e.addr, AccessKind::Load, pos);
    if (!grant.granted) {
        ++portDenials;
        if (grant.bankConflict)
            ++bankConflicts;
        return false;
    }

    Cycle done;
    if (grant.combined) {
        // Ride the leader's wide access: same line, same completion.
        ++combinedAccesses;
        done = scheduler.groupCompletion(grant.groupId);
    } else {
        mem::Cache *target = e.missteered && altCache ? altCache : cache;
        Cycle start = e.missteered ? now + policy.mispredictPenalty : now;
        done = target->access(e.addr, false, start);
        scheduler.setGroupCompletion(grant.groupId, done);
    }
    ++loadsFromCache;
    e.issued = true;
    e.completed = true;
    e.completeAt = done;
    e.servedKind = QueueEntry::kServedCache;
    e.servedAt = now;
    e.combinedGrant = grant.combined;
    return true;
}

bool
MemQueue::processLoad(QueueEntry &e, int slot, Cycle now,
                      InstSeq barrierSeq, Cycle barrierEvent,
                      std::vector<LoadCompletion> &completions,
                      TickInfo &info)
{
    auto wantEvent = [&info](Cycle c) {
        info.nextEvent = std::min(info.nextEvent, c);
    };

    // --- Fast data forwarding: may complete before addresses. ---
    if (e.fastFwdSlot >= 0) {
        QueueEntry &s =
            entries[static_cast<std::size_t>(e.fastFwdSlot)];
        if (s.valid && s.seq == e.fastFwdSeq && !s.cancelled) {
            if (s.dataReady && s.dataReadyAt <= now) {
                e.issued = true;
                e.completed = true;
                e.completeAt = now + policy.forwardLatency;
                e.servedKind = QueueEntry::kServedFastForward;
                e.servedAt = now;
                ++loadsFastForwarded;
                completions.push_back({slot, e.robIdx, e.completeAt});
                return true;
            }
            // Else: wait for the store's data; either way this load
            // never consults the cache.
            if (s.dataReady)
                wantEvent(s.dataReadyAt);
            return false;
        }
        // The matched store left the queue (committed); its value is
        // in the cache now -- fall through to the normal path.
        e.fastFwdSlot = -1;
    }

    // --- Normal path: needs this load's address. ---
    if (!e.addrKnown)
        return false;
    if (e.addrKnownAt > now) {
        wantEvent(e.addrKnownAt);
        return false;
    }

    if (e.seq > barrierSeq) {
        ++disambiguationStalls;
        ++info.stalledLoads;
        wantEvent(barrierEvent); // kNoEvent while the barrier store's
                                 // address generation has not issued.
        return false;
    }

    // All older store addresses are known: the youngest overlapping
    // store decides (committed -> read the cache; covering -> forward
    // in-queue; partial overlap -> wait for its commit).
    int pos = positionOf(slot);
    int storeSlot = youngestOlderStore(e);
    if (storeSlot >= 0) {
        QueueEntry &st = entries[static_cast<std::size_t>(storeSlot)];
        if (!st.committed) {
            if (!e.coveredBy(st))
                return false; // Partial overlap: wait for the commit.
            if (!(st.dataReady && st.dataReadyAt <= now)) {
                if (st.dataReady)
                    wantEvent(st.dataReadyAt);
                return false; // Wait for the store's data.
            }
            // As in sim-outorder, a load satisfied by in-queue
            // forwarding still issues through a cache port; only the
            // latency is the 1-cycle forward. (Fast data forwarding
            // above is what bypasses the port.)
            auto grant =
                scheduler.request(e.addr, AccessKind::Forward, pos);
            if (!grant.granted) {
                ++portDenials;
                if (grant.bankConflict)
                    ++bankConflicts;
                wantEvent(now + 1); // Ports reset next cycle.
                return false;
            }
            e.issued = true;
            e.completed = true;
            e.completeAt = now + policy.forwardLatency;
            e.servedKind = QueueEntry::kServedForward;
            e.servedAt = now;
            e.combinedGrant = grant.combined;
            if (grant.combined)
                ++combinedAccesses;
            else
                scheduler.setGroupCompletion(grant.groupId,
                                             e.completeAt);
            ++loadsForwarded;
            completions.push_back({slot, e.robIdx, e.completeAt});
            return true;
        }
        // Committed: the value is already in the cache.
    }

    // Cache access, subject to port availability.
    if (tryCacheAccess(e, pos, now)) {
        completions.push_back({slot, e.robIdx, e.completeAt});
        return true;
    }
    wantEvent(now + 1); // Ports reset next cycle.
    return false;
}

void
MemQueue::tick(Cycle now, std::vector<LoadCompletion> &completions,
               TickInfo *infoOut)
{
    scheduler.newCycle(now);
    if (now >= lastSampled + 64) {
        occupancyHist.sample(static_cast<std::uint64_t>(count));
        lastSampled = now;
    }

    // Advance the disambiguation barrier: drop released, cancelled
    // and address-resolved stores from the front. An address, once
    // known, never becomes unknown again, so popping is final. The
    // surviving front is the oldest store whose address is unknown as
    // of this cycle; exactly the loads younger than it are blocked —
    // the same set the original progressive walk blocked.
    while (!noAddrStores.empty()) {
        auto [slot, seq] = noAddrStores.front();
        const QueueEntry &st = entries[static_cast<std::size_t>(slot)];
        if (st.valid && st.seq == seq && !st.cancelled &&
            (!st.addrKnown || st.addrKnownAt > now))
            break;
        noAddrStores.pop_front();
    }
    InstSeq barrierSeq = ~InstSeq{0};
    Cycle barrierEvent = kNoEvent;
    if (!noAddrStores.empty()) {
        auto [slot, seq] = noAddrStores.front();
        const QueueEntry &st = entries[static_cast<std::size_t>(slot)];
        barrierSeq = seq;
        if (st.addrKnown) // In flight: resolves at a known cycle.
            barrierEvent = st.addrKnownAt;
    }

    // Visit the pending loads oldest-first (preserving the port
    // request order of the original walk), compacting out the ones
    // that issued, completed, cancelled or left the queue.
    TickInfo info;
    std::size_t keep = 0;
    for (std::size_t i = 0; i < pendingLoads.size(); ++i) {
        auto [slot, seq] = pendingLoads[i];
        QueueEntry &e = entries[static_cast<std::size_t>(slot)];
        if (!e.valid || e.seq != seq || e.cancelled || e.issued ||
            e.completed)
            continue;
        if (processLoad(e, slot, now, barrierSeq, barrierEvent,
                        completions, info))
            continue;
        pendingLoads[keep++] = pendingLoads[i];
    }
    pendingLoads.resize(keep);
    if (infoOut)
        *infoOut = info;
}

void
MemQueue::skipTo(Cycle from, Cycle to, std::uint64_t stalledLoads)
{
    if (to <= from)
        return;
    // The per-cycle model ticked every cycle in (from, to]: each tick
    // re-charged the same disambiguation stalls (nothing changes in a
    // quiescent window) and re-sampled occupancy once 64 cycles had
    // passed since the last sample. Occupancy is constant across the
    // window, so the catch-up samples all record the current count.
    disambiguationStalls += stalledLoads * (to - from);
    while (to >= lastSampled + 64) {
        occupancyHist.sample(static_cast<std::uint64_t>(count));
        lastSampled += 64;
    }
}

bool
MemQueue::commitStore(int slot, Cycle now)
{
    scheduler.newCycle(now);
    QueueEntry &e = entries[static_cast<std::size_t>(slot)];
    if (!e.valid || !e.isStore)
        panic("commitStore on a non-store queue slot");
    if (e.committed || e.cancelled)
        return true;

    auto grant =
        scheduler.request(e.addr, AccessKind::Store, positionOf(slot));
    if (!grant.granted) {
        ++portDenials;
        if (grant.bankConflict)
            ++bankConflicts;
        return false;
    }
    if (grant.combined) {
        ++combinedAccesses;
    } else {
        mem::Cache *target = e.missteered && altCache ? altCache : cache;
        Cycle start = e.missteered ? now + policy.mispredictPenalty : now;
        Cycle done = target->access(e.addr, true, start);
        scheduler.setGroupCompletion(grant.groupId, done);
    }
    e.committed = true;
    e.servedKind = QueueEntry::kServedCache;
    e.servedAt = now;
    e.combinedGrant = grant.combined;
    extEvent = std::min(extEvent, now + 1); // Unblocks partial waits.
    return true;
}

void
MemQueue::release(int slot)
{
    QueueEntry &e = entries[static_cast<std::size_t>(slot)];
    if (!e.valid)
        panic("release of an invalid queue slot");
    if (slot != head)
        panic("queue entries must be released oldest-first "
              "(slot %d, head %d)", slot, head);
    if (e.isStore) {
        if (!e.cancelled)
            unindexStore(e, slot);
        // Releases run oldest-first, so this store is the front.
        if (!storesByAge.empty() && storesByAge.front().first == slot)
            storesByAge.pop_front();
    }
    e.valid = false;
    head = (head + 1) % capacity;
    --count;
}

double
MemQueue::queueSatisfiedFrac() const
{
    double fwd =
        loadsForwarded.report() + loadsFastForwarded.report();
    return stats::safeRatio(fwd, loadsTotal.report());
}

} // namespace ddsim::core
