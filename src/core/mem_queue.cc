#include "core/mem_queue.hh"

#include "core/fast_forward.hh"
#include "util/log.hh"

namespace ddsim::core {

MemQueue::MemQueue(stats::Group *parent, const std::string &name,
                   int size, mem::Cache *cache, mem::Cache *altCache,
                   const QueuePolicy &policy)
    : stats::Group(parent, name),
      allocated(this, "allocated", "entries allocated"),
      loadsTotal(this, "loads", "loads passed through this queue"),
      storesTotal(this, "stores", "stores passed through this queue"),
      loadsForwarded(this, "loads_forwarded",
                     "loads satisfied by in-queue store forwarding"),
      loadsFastForwarded(this, "loads_fast_forwarded",
                         "loads satisfied by offset-matched fast "
                         "forwarding"),
      loadsFromCache(this, "loads_from_cache",
                     "loads that accessed the cache"),
      combinedAccesses(this, "combined_accesses",
                       "accesses merged into another port grant"),
      portDenials(this, "port_denials",
                  "port requests denied (all ports busy)"),
      bankConflicts(this, "bank_conflicts",
                    "requests denied by a busy bank (banked mode)"),
      disambiguationStalls(this, "disambiguation_stalls",
                           "load-cycles blocked on unknown older "
                           "store addresses"),
      missteeredAccesses(this, "missteered",
                         "accesses steered to the wrong queue"),
      cancelledReplicas(this, "cancelled_replicas",
                        "replicated copies killed at resolution"),
      occupancyHist(this, "occupancy", "queue occupancy distribution",
                    65, 1),
      capacity(size),
      cache(cache),
      altCache(altCache),
      policy(policy),
      entries(static_cast<std::size_t>(size)),
      scheduler(policy.ports, policy.combining,
                cache->params().lineBytes, policy.banks)
{
    if (size < 1)
        panic("memory queue needs at least one entry");
}

int
MemQueue::positionOf(int slot) const
{
    return (slot - head + capacity) % capacity;
}

std::vector<int>
MemQueue::olderSlots(int slot) const
{
    std::vector<int> out;
    int pos = positionOf(slot);
    out.reserve(static_cast<std::size_t>(pos));
    for (int p = pos - 1; p >= 0; --p)
        out.push_back((head + p) % capacity);
    return out;
}

int
MemQueue::allocate(InstSeq seq, int robIdx, bool isLoad,
                   std::uint8_t accessSize, RegId baseReg,
                   std::int32_t offset, std::uint32_t baseVersion)
{
    if (full())
        panic("MemQueue::allocate on a full queue");

    int slot = tail;
    tail = (tail + 1) % capacity;
    ++count;
    ++allocated;

    QueueEntry &e = entries[static_cast<std::size_t>(slot)];
    e = QueueEntry{};
    e.valid = true;
    e.seq = seq;
    e.robIdx = robIdx;
    e.isLoad = isLoad;
    e.isStore = !isLoad;
    e.size = accessSize;
    e.baseReg = baseReg;
    e.offset = offset;
    e.baseVersion = baseVersion;

    if (isLoad) {
        ++loadsTotal;
        if (policy.fastForward) {
            int match = findFastForwardStore(entries, olderSlots(slot), e);
            if (match >= 0) {
                e.fastFwdSlot = match;
                e.fastFwdSeq =
                    entries[static_cast<std::size_t>(match)].seq;
            }
        }
    } else {
        ++storesTotal;
    }
    return slot;
}

void
MemQueue::setAddress(int slot, Addr addr, Cycle when, bool missteered)
{
    QueueEntry &e = entries[static_cast<std::size_t>(slot)];
    if (!e.valid)
        panic("setAddress on an invalid queue slot");
    e.addr = addr;
    e.addrKnown = true;
    e.addrKnownAt = when;
    if (missteered) {
        e.missteered = true;
        ++missteeredAccesses;
    }
}

void
MemQueue::setStoreData(int slot, Cycle readyAt)
{
    QueueEntry &e = entries[static_cast<std::size_t>(slot)];
    if (!e.valid || !e.isStore)
        panic("setStoreData on a non-store queue slot");
    e.dataReady = true;
    e.dataReadyAt = readyAt;
}

void
MemQueue::cancel(int slot)
{
    QueueEntry &e = entries[static_cast<std::size_t>(slot)];
    if (!e.valid)
        panic("cancel of an invalid queue slot");
    if (e.cancelled)
        return;
    e.cancelled = true;
    ++cancelledReplicas;
}

bool
MemQueue::tryCacheAccess(QueueEntry &e, int pos, Cycle now)
{
    auto grant = scheduler.request(e.addr, AccessKind::Load, pos);
    if (!grant.granted) {
        ++portDenials;
        if (grant.bankConflict)
            ++bankConflicts;
        return false;
    }

    Cycle done;
    if (grant.combined) {
        // Ride the leader's wide access: same line, same completion.
        ++combinedAccesses;
        done = scheduler.groupCompletion(grant.groupId);
    } else {
        mem::Cache *target = e.missteered && altCache ? altCache : cache;
        Cycle start = e.missteered ? now + policy.mispredictPenalty : now;
        done = target->access(e.addr, false, start);
        scheduler.setGroupCompletion(grant.groupId, done);
    }
    ++loadsFromCache;
    e.issued = true;
    e.completed = true;
    e.completeAt = done;
    return true;
}

void
MemQueue::tick(Cycle now, std::vector<LoadCompletion> &completions)
{
    scheduler.newCycle(now);
    if (now >= lastSampled + 64) {
        occupancyHist.sample(static_cast<std::uint64_t>(count));
        lastSampled = now;
    }

    // Walk the queue oldest-first. Track whether any older store still
    // has an unknown address (conservative disambiguation barrier).
    bool unknownStoreAddr = false;

    for (int p = 0; p < count; ++p) {
        int slot = (head + p) % capacity;
        QueueEntry &e = entries[static_cast<std::size_t>(slot)];
        if (!e.valid || e.cancelled)
            continue;

        if (e.isStore) {
            if (!e.addrKnown || e.addrKnownAt > now)
                unknownStoreAddr = true;
            continue;
        }

        if (e.issued || e.completed)
            continue;

        // --- Fast data forwarding: may complete before addresses. ---
        if (e.fastFwdSlot >= 0) {
            QueueEntry &s =
                entries[static_cast<std::size_t>(e.fastFwdSlot)];
            if (s.valid && s.seq == e.fastFwdSeq && !s.cancelled) {
                if (s.dataReady && s.dataReadyAt <= now) {
                    e.issued = true;
                    e.completed = true;
                    e.completeAt = now + policy.forwardLatency;
                    ++loadsFastForwarded;
                    completions.push_back(
                        {slot, e.robIdx, e.completeAt});
                }
                // Else: wait for the store's data; either way this
                // load never consults the cache.
                continue;
            }
            // The matched store left the queue (committed); its value
            // is in the cache now -- fall through to the normal path.
            e.fastFwdSlot = -1;
        }

        // --- Normal path: needs this load's address. ---
        if (!e.addrKnown || e.addrKnownAt > now)
            continue;

        if (unknownStoreAddr) {
            ++disambiguationStalls;
            continue;
        }

        // All older store addresses are known: find the youngest
        // matching store.
        QueueEntry *match = nullptr;
        bool blocked = false;
        for (int q = p - 1; q >= 0; --q) {
            int s2 = (head + q) % capacity;
            QueueEntry &st = entries[static_cast<std::size_t>(s2)];
            if (!st.valid || st.cancelled || !st.isStore ||
                !st.overlaps(e))
                continue;
            if (st.committed) {
                // Value already written to the cache.
                break;
            }
            if (e.coveredBy(st)) {
                match = &st;
            } else {
                // Partial overlap: wait until the store commits.
                blocked = true;
            }
            break;
        }
        if (blocked)
            continue;

        if (match) {
            if (match->dataReady && match->dataReadyAt <= now) {
                // As in sim-outorder, a load satisfied by in-queue
                // forwarding still issues through a cache port; only
                // the latency is the 1-cycle forward. (Fast data
                // forwarding above is what bypasses the port.)
                auto grant =
                    scheduler.request(e.addr, AccessKind::Forward, p);
                if (!grant.granted) {
                    ++portDenials;
                    if (grant.bankConflict)
                        ++bankConflicts;
                    continue;
                }
                e.issued = true;
                e.completed = true;
                e.completeAt = now + policy.forwardLatency;
                if (grant.combined)
                    ++combinedAccesses;
                else
                    scheduler.setGroupCompletion(grant.groupId,
                                                 e.completeAt);
                ++loadsForwarded;
                completions.push_back({slot, e.robIdx, e.completeAt});
            }
            // Else wait for the store's data.
            continue;
        }

        // Cache access, subject to port availability.
        if (tryCacheAccess(e, p, now))
            completions.push_back({slot, e.robIdx, e.completeAt});
    }
}

bool
MemQueue::commitStore(int slot, Cycle now)
{
    scheduler.newCycle(now);
    QueueEntry &e = entries[static_cast<std::size_t>(slot)];
    if (!e.valid || !e.isStore)
        panic("commitStore on a non-store queue slot");
    if (e.committed || e.cancelled)
        return true;

    auto grant =
        scheduler.request(e.addr, AccessKind::Store, positionOf(slot));
    if (!grant.granted) {
        ++portDenials;
        if (grant.bankConflict)
            ++bankConflicts;
        return false;
    }
    if (grant.combined) {
        ++combinedAccesses;
    } else {
        mem::Cache *target = e.missteered && altCache ? altCache : cache;
        Cycle start = e.missteered ? now + policy.mispredictPenalty : now;
        Cycle done = target->access(e.addr, true, start);
        scheduler.setGroupCompletion(grant.groupId, done);
    }
    e.committed = true;
    return true;
}

void
MemQueue::release(int slot)
{
    QueueEntry &e = entries[static_cast<std::size_t>(slot)];
    if (!e.valid)
        panic("release of an invalid queue slot");
    if (slot != head)
        panic("queue entries must be released oldest-first "
              "(slot %d, head %d)", slot, head);
    e.valid = false;
    head = (head + 1) % capacity;
    --count;
}

double
MemQueue::queueSatisfiedFrac() const
{
    double fwd =
        loadsForwarded.report() + loadsFastForwarded.report();
    return stats::safeRatio(fwd, loadsTotal.report());
}

} // namespace ddsim::core
