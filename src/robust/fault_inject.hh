/**
 * @file
 * Deterministic fault injection for exercising the fault-tolerant run
 * supervisor. Off by default: no injector is active unless a test (or
 * a bench run with --inject) installs one via ScopedFaultInjection,
 * and the probe sites in sim::run / cpu::Pipeline cost one null /
 * zero-counter test when nothing is installed.
 *
 * A FaultInjector holds a list of FaultSpecs, each targeting a sweep
 * point by workload name and/or machine notation. At the start of a
 * run the runner asks planFor() what (if anything) should go wrong
 * for that point; the plan is resolved once per run, never per cycle,
 * and — given the same seed and specs — identically on every attempt
 * except where a spec says otherwise (JobTransient fails a bounded
 * number of attempts, then stops: exactly the failure shape retry
 * logic must recover from).
 *
 * Fault classes:
 *  - JobTransient:  run raises IoError (transient) for the first
 *                   `arg` attempts at the point, then succeeds.
 *  - JobPersistent: run raises ProgramError on every attempt.
 *  - AllocFail:     run throws std::bad_alloc (forced allocation
 *                   failure at setup).
 *  - DropWakeup:    the pipeline silently drops its `arg`-th wakeup
 *                   event; the instruction never issues and the
 *                   deadlock watchdog must catch the stall.
 *  - CorruptTrace:  after the run's pipeline trace is finalized, the
 *                   file is deterministically damaged (truncated and
 *                   bit-flipped); trace verification must raise
 *                   TraceCorruptError.
 *  - JobCrash:      run calls abort() — the whole process dies with
 *                   SIGABRT. Unrecoverable in-process by design: the
 *                   fault the sweep farm's worker-process isolation
 *                   and supervisor respawn/crash-quarantine logic
 *                   exist for. Never install this in a process whose
 *                   death you are not prepared to observe.
 *  - JobHang:       run sleeps `arg` seconds at setup before doing
 *                   any work — a worker that is alive (heartbeating)
 *                   but making no progress. The farm supervisor's
 *                   per-job wall-clock watchdog (--job-wall-secs)
 *                   exists for exactly this shape.
 */

#ifndef DDSIM_ROBUST_FAULT_INJECT_HH_
#define DDSIM_ROBUST_FAULT_INJECT_HH_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace ddsim::robust {

enum class FaultKind : std::uint8_t
{
    JobTransient,
    JobPersistent,
    AllocFail,
    DropWakeup,
    CorruptTrace,
    JobCrash,
    JobHang,
};

const char *faultKindName(FaultKind k);

/** One injected fault, targeted at a sweep point. */
struct FaultSpec
{
    FaultKind kind = FaultKind::JobTransient;
    std::string workload; ///< Exact workload to hit ("" = any).
    std::string notation; ///< Exact "(N+M)" notation to hit ("" = any).
    /**
     * JobTransient: how many attempts fail before success (default 1).
     * DropWakeup: which wakeup event (1-based) to drop.
     * JobHang: how many seconds the run sleeps before working.
     */
    std::uint64_t arg = 1;
};

/** What planFor() decided should go wrong for one run attempt. */
struct RunFaultPlan
{
    bool failTransient = false;
    bool failPersistent = false;
    bool allocFail = false;
    std::uint64_t dropWakeupAt = 0; ///< 0 = no wakeup dropped.
    bool corruptTrace = false;
    bool crashProcess = false;
    std::uint64_t hangSeconds = 0; ///< 0 = no injected hang.

    bool any() const
    {
        return failTransient || failPersistent || allocFail ||
               dropWakeupAt != 0 || corruptTrace || crashProcess ||
               hangSeconds != 0;
    }
};

class FaultInjector
{
  public:
    explicit FaultInjector(std::uint64_t seed) : seed_(seed) {}

    void add(FaultSpec spec) { specs.push_back(std::move(spec)); }

    /**
     * Resolve the plan for one attempt at (workload, notation).
     * Thread-safe: sweep workers probe concurrently. Counts the
     * attempt for JobTransient bookkeeping.
     */
    RunFaultPlan planFor(const std::string &workload,
                         const std::string &notation);

    /**
     * Deterministically damage a finalized ddtrace file: truncate the
     * last 4 bytes (guarantees the reader hits EOF short of the
     * declared record count) and flip one seed-chosen bit near the
     * tail (exercises payload corruption without touching the
     * header's record count).
     */
    void corruptFile(const std::string &path) const;

    std::uint64_t seed() const { return seed_; }

    /** The globally active injector, or nullptr (the common case). */
    static FaultInjector *active();

  private:
    friend class ScopedFaultInjection;

    std::uint64_t seed_;
    std::vector<FaultSpec> specs;
    std::mutex mu;
    /** Attempts seen per "workload|notation" point. */
    std::map<std::string, std::uint64_t> attempts;
};

/** RAII activation: install in the constructor, remove in the
 *  destructor. Nesting is a programming error (panics). */
class ScopedFaultInjection
{
  public:
    explicit ScopedFaultInjection(FaultInjector &inj);
    ~ScopedFaultInjection();

    ScopedFaultInjection(const ScopedFaultInjection &) = delete;
    ScopedFaultInjection &operator=(const ScopedFaultInjection &) =
        delete;
};

} // namespace ddsim::robust

#endif // DDSIM_ROBUST_FAULT_INJECT_HH_
