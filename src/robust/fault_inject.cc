#include "robust/fault_inject.hh"

#include <atomic>
#include <cstdio>
#include <fstream>

#include "util/error.hh"
#include "util/log.hh"

namespace ddsim::robust {

namespace {

std::atomic<FaultInjector *> activeInjector{nullptr};

} // namespace

const char *
faultKindName(FaultKind k)
{
    switch (k) {
      case FaultKind::JobTransient: return "job-transient";
      case FaultKind::JobPersistent: return "job-persistent";
      case FaultKind::AllocFail: return "alloc-fail";
      case FaultKind::DropWakeup: return "drop-wakeup";
      case FaultKind::CorruptTrace: return "corrupt-trace";
      case FaultKind::JobCrash: return "job-crash";
      case FaultKind::JobHang: return "job-hang";
    }
    return "?";
}

FaultInjector *
FaultInjector::active()
{
    return activeInjector.load(std::memory_order_acquire);
}

RunFaultPlan
FaultInjector::planFor(const std::string &workload,
                       const std::string &notation)
{
    RunFaultPlan plan;
    std::lock_guard<std::mutex> lock(mu);
    std::uint64_t attempt = ++attempts[workload + "|" + notation];
    for (const FaultSpec &s : specs) {
        if (!s.workload.empty() && s.workload != workload)
            continue;
        if (!s.notation.empty() && s.notation != notation)
            continue;
        switch (s.kind) {
          case FaultKind::JobTransient:
            if (attempt <= s.arg)
                plan.failTransient = true;
            break;
          case FaultKind::JobPersistent:
            plan.failPersistent = true;
            break;
          case FaultKind::AllocFail:
            plan.allocFail = true;
            break;
          case FaultKind::DropWakeup:
            plan.dropWakeupAt = s.arg;
            break;
          case FaultKind::CorruptTrace:
            plan.corruptTrace = true;
            break;
          case FaultKind::JobCrash:
            plan.crashProcess = true;
            break;
          case FaultKind::JobHang:
            plan.hangSeconds = s.arg;
            break;
        }
    }
    return plan;
}

void
FaultInjector::corruptFile(const std::string &path) const
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        raise(IoError(path, format("fault injector: cannot read '%s'",
                                   path.c_str())));
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    if (bytes.size() < 8)
        raise(IoError(path,
                      format("fault injector: '%s' too small to "
                             "corrupt (%zu bytes)",
                             path.c_str(), bytes.size())));

    // Truncate: the reader now hits EOF before reaching the record
    // count the (intact) header still declares.
    bytes.resize(bytes.size() - std::min<std::size_t>(4, bytes.size() - 8));

    // Flip one seeded bit in the last quarter of what remains — far
    // from the header, so the record count stays intact and the
    // failure is a payload decode error, not a shortened count.
    std::size_t window =
        std::min<std::size_t>(bytes.size() / 4 + 1, 4096);
    std::size_t pos = bytes.size() - 1 - (seed_ % window);
    bytes[pos] = static_cast<char>(
        bytes[pos] ^ static_cast<char>(1u << (seed_ / window % 8)));

    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out.write(bytes.data(),
                   static_cast<std::streamsize>(bytes.size())) ||
        !out.flush())
        raise(IoError(path,
                      format("fault injector: cannot rewrite '%s'",
                             path.c_str())));
}

ScopedFaultInjection::ScopedFaultInjection(FaultInjector &inj)
{
    FaultInjector *expected = nullptr;
    if (!activeInjector.compare_exchange_strong(
            expected, &inj, std::memory_order_release,
            std::memory_order_relaxed))
        panic("nested fault injection scopes");
}

ScopedFaultInjection::~ScopedFaultInjection()
{
    activeInjector.store(nullptr, std::memory_order_release);
}

} // namespace ddsim::robust
