/**
 * @file
 * The I/O layer every durable artifact goes through: a small virtual
 * filesystem interface (Vfs) with one concrete production backend
 * (RealFs) and, in tests, a deterministic fault-injecting wrapper
 * (io::FaultFs). Spool job files, claims, result records, manifests
 * and black boxes are all written via io::vfs(), so a test can make
 * any single write short, any rename fail with EIO, or the whole
 * process "crash" at exactly the N-th mutating operation — and then
 * prove that recovery yields byte-identical results.
 *
 * The interface is deliberately primitive-level: writeFileAtomic()
 * and commitFile() are non-virtual compositions of the virtual
 * primitives (writeBytes, syncFile, renameFile, syncDir), so a fault
 * injector sees — and can target — every individual step of the
 * write-temp / fsync-temp / rename / fsync-dir discipline.
 *
 * Durability contract: RealFs fsyncs the temporary file AND its
 * directory before/after the rename, so "atomic" holds across power
 * loss, not just process death. syncDir failures are ignored
 * (filesystems without directory fsync); syncFile failures raise.
 */

#ifndef DDSIM_IO_VFS_HH_
#define DDSIM_IO_VFS_HH_

#include <exception>
#include <string>
#include <vector>

namespace ddsim::io {

/**
 * Thrown by a fault-injecting backend to simulate the process dying
 * at an I/O operation. Deliberately NOT a SimError: no retry or
 * quarantine path may classify it as a job failure. Once thrown, the
 * backend is "dead" — every later operation rethrows — so even a
 * catch(...) between the crash point and the test harness cannot
 * resurrect the run.
 */
class SimulatedCrash : public std::exception
{
  public:
    explicit SimulatedCrash(std::string what) : what_(std::move(what))
    {}

    const char *what() const noexcept override
    {
        return what_.c_str();
    }

  private:
    std::string what_;
};

class Vfs
{
  public:
    virtual ~Vfs() = default;

    // -- Mutating primitives (fault-injection points) -------------

    /** Create/truncate @p path and write @p bytes; raises IoError. */
    virtual void writeBytes(const std::string &path,
                            const std::string &bytes) = 0;

    /** fsync @p path's data and metadata; raises IoError. */
    virtual void syncFile(const std::string &path) = 0;

    /** fsync the directory @p dir (so a rename inside it is durable);
     *  best-effort — unsupported filesystems are ignored. */
    virtual void syncDir(const std::string &dir) = 0;

    /**
     * rename(2) @p src onto @p dst.
     * @return true on success; false when @p src does not exist (the
     * expected outcome for a lost claim race). Raises IoError on any
     * other failure.
     */
    virtual bool renameFile(const std::string &src,
                            const std::string &dst) = 0;

    /** Delete @p path; missing files are not an error. */
    virtual void removeFile(const std::string &path) = 0;

    /** mkdir -p; raises IoError. */
    virtual void makeDirs(const std::string &path) = 0;

    /** Bump @p path's mtime to now (lease heartbeat); missing files
     *  are ignored (the claim may have just been released). */
    virtual void touchFile(const std::string &path) = 0;

    // -- Reads ----------------------------------------------------

    /** Whole-file read; raises IoError. */
    virtual std::string readFile(const std::string &path) = 0;

    /** Sorted names of the regular files in @p dir; raises IoError. */
    virtual std::vector<std::string>
    listDir(const std::string &dir) = 0;

    virtual bool exists(const std::string &path) = 0;

    /** Seconds since @p path's mtime, or a negative value when the
     *  file is missing/unstattable. */
    virtual double fileAgeSeconds(const std::string &path) = 0;

    // -- Composed operations --------------------------------------

    /**
     * The full atomic-write discipline in one call: write
     * "<path>.tmp", fsync it, rename onto @p path, fsync the
     * directory. Each step is a separate primitive, individually
     * fault-injectable.
     */
    void writeFileAtomic(const std::string &path,
                         const std::string &bytes);

    /**
     * Durably publish an already-written temporary: fsync @p tmp,
     * rename it onto @p path, fsync the directory. AtomicFile streams
     * its bytes directly and commits through this.
     */
    void commitFile(const std::string &tmp, const std::string &path);
};

/** The process-wide production backend. */
Vfs &realFs();

/** The active backend: realFs() unless a ScopedVfs overrides it. */
Vfs &vfs();

/** RAII override of the active backend (tests). Nesting panics. */
class ScopedVfs
{
  public:
    explicit ScopedVfs(Vfs &v);
    ~ScopedVfs();

    ScopedVfs(const ScopedVfs &) = delete;
    ScopedVfs &operator=(const ScopedVfs &) = delete;
};

} // namespace ddsim::io

#endif // DDSIM_IO_VFS_HH_
