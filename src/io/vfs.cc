#include "io/vfs.hh"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "util/error.hh"
#include "util/log.hh"

namespace fs = std::filesystem;

namespace ddsim::io {

namespace {

std::string
dirOf(const std::string &path)
{
    std::string::size_type slash = path.rfind('/');
    if (slash == std::string::npos)
        return ".";
    if (slash == 0)
        return "/";
    return path.substr(0, slash);
}

class RealFs final : public Vfs
{
  public:
    void writeBytes(const std::string &path,
                    const std::string &bytes) override
    {
        int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                        0644);
        if (fd < 0)
            raise(IoError(path,
                          format("cannot open '%s' for writing: %s",
                                 path.c_str(),
                                 std::strerror(errno))));
        std::size_t off = 0;
        while (off < bytes.size()) {
            ssize_t n = ::write(fd, bytes.data() + off,
                                bytes.size() - off);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                int err = errno;
                ::close(fd);
                raise(IoError(path,
                              format("write to '%s' failed: %s",
                                     path.c_str(),
                                     std::strerror(err))));
            }
            off += static_cast<std::size_t>(n);
        }
        if (::close(fd) != 0)
            raise(IoError(path, format("close of '%s' failed: %s",
                                       path.c_str(),
                                       std::strerror(errno))));
    }

    void syncFile(const std::string &path) override
    {
        int fd = ::open(path.c_str(), O_RDONLY);
        if (fd < 0)
            raise(IoError(path,
                          format("cannot open '%s' to fsync: %s",
                                 path.c_str(),
                                 std::strerror(errno))));
        int rc = ::fsync(fd);
        int err = errno;
        ::close(fd);
        if (rc != 0)
            raise(IoError(path, format("fsync of '%s' failed: %s",
                                       path.c_str(),
                                       std::strerror(err))));
    }

    void syncDir(const std::string &dir) override
    {
        // Best-effort: a filesystem without directory fsync (EINVAL/
        // ENOTSUP) should not fail the write it is merely hardening.
        int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
        if (fd < 0)
            return;
        ::fsync(fd);
        ::close(fd);
    }

    bool renameFile(const std::string &src,
                    const std::string &dst) override
    {
        if (std::rename(src.c_str(), dst.c_str()) == 0)
            return true;
        if (errno == ENOENT)
            return false;
        raise(IoError(src, format("cannot rename '%s' -> '%s': %s",
                                  src.c_str(), dst.c_str(),
                                  std::strerror(errno))));
    }

    void removeFile(const std::string &path) override
    {
        std::error_code ec;
        fs::remove(path, ec);
        if (ec)
            warn("could not remove '%s': %s", path.c_str(),
                 ec.message().c_str());
    }

    void makeDirs(const std::string &path) override
    {
        std::error_code ec;
        fs::create_directories(path, ec);
        if (ec)
            raise(IoError(path,
                          format("cannot create directory '%s': %s",
                                 path.c_str(),
                                 ec.message().c_str())));
    }

    void touchFile(const std::string &path) override
    {
        // nullptr times = "now"; a vanished claim is not an error
        // (the worker released it between our scan and the touch).
        if (::utimensat(AT_FDCWD, path.c_str(), nullptr, 0) != 0 &&
            errno != ENOENT)
            warn("could not touch '%s': %s", path.c_str(),
                 std::strerror(errno));
    }

    std::string readFile(const std::string &path) override
    {
        std::ifstream in(path, std::ios::binary);
        if (!in)
            raise(IoError(path,
                          format("cannot open '%s' for reading",
                                 path.c_str())));
        std::ostringstream ss;
        ss << in.rdbuf();
        if (in.bad())
            raise(IoError(path, format("read error on '%s'",
                                       path.c_str())));
        return ss.str();
    }

    std::vector<std::string> listDir(const std::string &dir) override
    {
        std::error_code ec;
        std::vector<std::string> names;
        fs::directory_iterator it(dir, ec);
        if (ec)
            raise(IoError(dir,
                          format("cannot list directory '%s': %s",
                                 dir.c_str(),
                                 ec.message().c_str())));
        for (const fs::directory_entry &e : it) {
            if (e.is_regular_file(ec))
                names.push_back(e.path().filename().string());
        }
        std::sort(names.begin(), names.end());
        return names;
    }

    bool exists(const std::string &path) override
    {
        std::error_code ec;
        return fs::is_regular_file(path, ec);
    }

    double fileAgeSeconds(const std::string &path) override
    {
        struct stat st;
        if (::stat(path.c_str(), &st) != 0)
            return -1.0;
        struct timespec now;
        ::clock_gettime(CLOCK_REALTIME, &now);
        return static_cast<double>(now.tv_sec - st.st_mtim.tv_sec) +
               static_cast<double>(now.tv_nsec -
                                   st.st_mtim.tv_nsec) *
                   1e-9;
    }
};

std::atomic<Vfs *> activeVfs{nullptr};

} // namespace

void
Vfs::writeFileAtomic(const std::string &path,
                     const std::string &bytes)
{
    const std::string tmp = path + ".tmp";
    writeBytes(tmp, bytes);
    commitFile(tmp, path);
}

void
Vfs::commitFile(const std::string &tmp, const std::string &path)
{
    syncFile(tmp);
    if (!renameFile(tmp, path))
        raise(IoError(path,
                      format("cannot publish '%s': temporary '%s' "
                             "vanished",
                             path.c_str(), tmp.c_str())));
    syncDir(dirOf(path));
}

Vfs &
realFs()
{
    static RealFs fs;
    return fs;
}

Vfs &
vfs()
{
    Vfs *v = activeVfs.load(std::memory_order_acquire);
    return v ? *v : realFs();
}

ScopedVfs::ScopedVfs(Vfs &v)
{
    Vfs *expected = nullptr;
    if (!activeVfs.compare_exchange_strong(expected, &v,
                                           std::memory_order_release,
                                           std::memory_order_relaxed))
        panic("nested Vfs override scopes");
}

ScopedVfs::~ScopedVfs()
{
    activeVfs.store(nullptr, std::memory_order_release);
}

} // namespace ddsim::io
