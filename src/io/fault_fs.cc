#include "io/fault_fs.hh"

#include "util/error.hh"
#include "util/log.hh"

namespace ddsim::io {

const char *
fsFaultKindName(FsFaultKind k)
{
    switch (k) {
      case FsFaultKind::ShortWrite: return "short-write";
      case FsFaultKind::Eio: return "eio";
      case FsFaultKind::Enospc: return "enospc";
      case FsFaultKind::CrashAtOp: return "crash-at-op";
    }
    return "?";
}

std::uint64_t
FaultFs::mutatingOps() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return ops_;
}

std::vector<std::string>
FaultFs::journal() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return journal_;
}

bool
FaultFs::crashed() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return crashed_;
}

void
FaultFs::checkAlive() const
{
    std::lock_guard<std::mutex> lock(mu_);
    if (crashed_)
        throw SimulatedCrash("simulated crash: process is dead");
}

const FsFault *
FaultFs::beforeMutation(const char *kind, const std::string &path)
{
    std::unique_lock<std::mutex> lock(mu_);
    if (crashed_)
        throw SimulatedCrash("simulated crash: process is dead");
    ++ops_;
    journal_.push_back(std::string(kind) + ":" + path);

    FsFault *hit = nullptr;
    for (FsFault &f : faults_) {
        if (f.fired)
            continue;
        bool match = f.atOp != 0
                         ? ops_ == f.atOp
                         : f.pathContains.empty() ||
                               path.find(f.pathContains) !=
                                   std::string::npos;
        if (!match)
            continue;
        f.fired = true;
        hit = &f;
        break;
    }
    if (!hit)
        return nullptr;

    std::uint64_t op = ops_;
    switch (hit->kind) {
      case FsFaultKind::CrashAtOp:
        crashed_ = true;
        lock.unlock();
        throw SimulatedCrash(format("simulated crash at I/O op %llu "
                                    "(%s:%s)",
                                    static_cast<unsigned long long>(
                                        op),
                                    kind, path.c_str()));
      case FsFaultKind::Eio:
        lock.unlock();
        raise(IoError(path, format("injected EIO on %s '%s' (op "
                                   "%llu)",
                                   kind, path.c_str(),
                                   static_cast<unsigned long long>(
                                       op))));
      case FsFaultKind::Enospc:
        lock.unlock();
        raise(IoError(path, format("injected ENOSPC on %s '%s' (op "
                                   "%llu)",
                                   kind, path.c_str(),
                                   static_cast<unsigned long long>(
                                       op))));
      case FsFaultKind::ShortWrite:
        // Only writeBytes can tear a payload; elsewhere the fault
        // degenerates to a plain I/O failure.
        return hit;
    }
    return nullptr;
}

void
FaultFs::writeBytes(const std::string &path, const std::string &bytes)
{
    const FsFault *f = beforeMutation("write", path);
    if (f) {
        // Persist a torn prefix — what a real short write leaves
        // behind — then fail like the kernel would have.
        inner_.writeBytes(path, bytes.substr(0, bytes.size() / 2));
        raise(IoError(path,
                      format("injected short write on '%s' (%zu of "
                             "%zu bytes)",
                             path.c_str(), bytes.size() / 2,
                             bytes.size())));
    }
    inner_.writeBytes(path, bytes);
}

void
FaultFs::syncFile(const std::string &path)
{
    if (beforeMutation("fsync", path))
        raise(IoError(path, format("injected fault on fsync '%s'",
                                   path.c_str())));
    inner_.syncFile(path);
}

void
FaultFs::syncDir(const std::string &dir)
{
    if (beforeMutation("fsyncdir", dir))
        raise(IoError(dir, format("injected fault on fsyncdir '%s'",
                                  dir.c_str())));
    inner_.syncDir(dir);
}

bool
FaultFs::renameFile(const std::string &src, const std::string &dst)
{
    if (beforeMutation("rename", src + "->" + dst))
        raise(IoError(src, format("injected fault on rename '%s' -> "
                                  "'%s'",
                                  src.c_str(), dst.c_str())));
    return inner_.renameFile(src, dst);
}

void
FaultFs::removeFile(const std::string &path)
{
    if (beforeMutation("remove", path))
        raise(IoError(path, format("injected fault on remove '%s'",
                                   path.c_str())));
    inner_.removeFile(path);
}

void
FaultFs::makeDirs(const std::string &path)
{
    if (beforeMutation("mkdir", path))
        raise(IoError(path, format("injected fault on mkdir '%s'",
                                   path.c_str())));
    inner_.makeDirs(path);
}

void
FaultFs::touchFile(const std::string &path)
{
    if (beforeMutation("touch", path))
        raise(IoError(path, format("injected fault on touch '%s'",
                                   path.c_str())));
    inner_.touchFile(path);
}

std::string
FaultFs::readFile(const std::string &path)
{
    checkAlive();
    return inner_.readFile(path);
}

std::vector<std::string>
FaultFs::listDir(const std::string &dir)
{
    checkAlive();
    return inner_.listDir(dir);
}

bool
FaultFs::exists(const std::string &path)
{
    checkAlive();
    return inner_.exists(path);
}

double
FaultFs::fileAgeSeconds(const std::string &path)
{
    checkAlive();
    return inner_.fileAgeSeconds(path);
}

} // namespace ddsim::io
