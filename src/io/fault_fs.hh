/**
 * @file
 * Deterministic fault injection at the filesystem boundary. FaultFs
 * wraps another Vfs (normally io::realFs()) and counts every
 * *mutating* primitive — writes, fsyncs, renames, removes, mkdirs,
 * touches — in call order. Against that counter a test can schedule:
 *
 *  - ShortWrite: the targeted writeBytes persists only a prefix of
 *    its payload, then raises IoError (transient) — a torn write the
 *    atomic-rename discipline must keep invisible.
 *  - Eio / Enospc: the targeted operation raises IoError without
 *    touching the filesystem — a failed disk or a full one.
 *  - CrashAtOp: the targeted operation never happens; SimulatedCrash
 *    is thrown and the backend turns permanently dead (every later
 *    call, reads included, rethrows). This is the primitive behind
 *    systematic crash-point exploration: run once to count the ops,
 *    then re-run crashing at op 1, 2, ..., N and prove each recovery
 *    byte-identical.
 *
 * Determinism: single-threaded farm harnesses issue an identical
 * operation sequence on every run (sorted directory listings, no
 * heartbeat threads when leases are off), so "op N" names the same
 * operation every time. The journal records each mutating op as
 * "kind:path" for order assertions (e.g. fsync-before-rename).
 */

#ifndef DDSIM_IO_FAULT_FS_HH_
#define DDSIM_IO_FAULT_FS_HH_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "io/vfs.hh"

namespace ddsim::io {

enum class FsFaultKind : std::uint8_t
{
    ShortWrite,
    Eio,
    Enospc,
    CrashAtOp,
};

const char *fsFaultKindName(FsFaultKind k);

/** One scheduled filesystem fault. */
struct FsFault
{
    FsFaultKind kind = FsFaultKind::Eio;
    /** 1-based mutating-op index to hit; 0 = match by path instead. */
    std::uint64_t atOp = 0;
    /** Path substring filter (used when atOp == 0; "" matches any
     *  op, which with atOp == 0 means "the first mutating op"). */
    std::string pathContains;
    /** Each fault fires once, then disarms (CrashAtOp stays fatal
     *  through the dead flag instead). */
    bool fired = false;
};

class FaultFs final : public Vfs
{
  public:
    explicit FaultFs(Vfs &inner) : inner_(inner) {}

    void add(FsFault f) { faults_.push_back(std::move(f)); }

    /** Mutating primitives issued so far (the crash-point domain). */
    std::uint64_t mutatingOps() const;

    /** "kind:path" per mutating op, in order. */
    std::vector<std::string> journal() const;

    /** Did a CrashAtOp fire? (Every op now rethrows.) */
    bool crashed() const;

    // Vfs --------------------------------------------------------
    void writeBytes(const std::string &path,
                    const std::string &bytes) override;
    void syncFile(const std::string &path) override;
    void syncDir(const std::string &dir) override;
    bool renameFile(const std::string &src,
                    const std::string &dst) override;
    void removeFile(const std::string &path) override;
    void makeDirs(const std::string &path) override;
    void touchFile(const std::string &path) override;

    std::string readFile(const std::string &path) override;
    std::vector<std::string> listDir(const std::string &dir) override;
    bool exists(const std::string &path) override;
    double fileAgeSeconds(const std::string &path) override;

  private:
    /**
     * Count one mutating op and decide its fate. Returns the matched
     * fault kind, or nullptr when the op should proceed normally.
     * Throws SimulatedCrash for CrashAtOp (after setting the dead
     * flag) and IoError for Eio/Enospc; ShortWrite is returned to the
     * caller (only writeBytes can act on it).
     */
    const FsFault *beforeMutation(const char *kind,
                                  const std::string &path);

    /** Reads do not count, but a dead backend rejects them too. */
    void checkAlive() const;

    Vfs &inner_;
    mutable std::mutex mu_;
    std::vector<FsFault> faults_;
    std::vector<std::string> journal_;
    std::uint64_t ops_ = 0;
    bool crashed_ = false;
};

} // namespace ddsim::io

#endif // DDSIM_IO_FAULT_FS_HH_
