/**
 * @file
 * Runner: the one-call top-level API — simulate a program on a machine
 * configuration and return a SimResult. This is the entry point the
 * examples and every bench binary use.
 */

#ifndef DDSIM_SIM_RUNNER_HH_
#define DDSIM_SIM_RUNNER_HH_

#include <cstdint>
#include <memory>
#include <string>

#include "config/machine_config.hh"
#include "prog/program.hh"
#include "sim/result.hh"

namespace ddsim::vm {
class RecordedTrace;
}

namespace ddsim::sim {

/** Options for one simulation run. */
struct RunOptions
{
    /** Stop fetching after this many instructions (0 = run to HALT). */
    std::uint64_t maxInsts = 0;
    /**
     * Warm up the machine for this many instructions before the
     * measurement starts: caches and queues keep their state but all
     * statistics are zeroed, so the reported IPC and miss rates
     * exclude the cold-start transient.
     */
    std::uint64_t warmupInsts = 0;
    /** Capture the full stats dump into SimResult::statsText. */
    bool captureStats = false;
    /**
     * Replay this pre-recorded dynamic trace instead of functionally
     * executing the program. Must have been recorded from the same
     * program object; the result is bit-identical to a live run (the
     * front end is configuration-oblivious), only faster. Sweeps use
     * this to pay the functional execution once per program instead
     * of once per grid point.
     */
    std::shared_ptr<const vm::RecordedTrace> trace;

    // ---- Observability (all off by default; timing-invisible) ----
    /** Write a JSON run manifest here ("" = none). */
    std::string manifestPath;
    /** Capture the manifest JSON into SimResult::manifestJson. */
    bool captureManifest = false;
    /** Free-form label recorded in the manifest and trace header. */
    std::string label;
    /** Write a binary pipeline lifecycle trace here ("" = none). */
    std::string tracePath;
    /**
     * Snapshot stats every this many committed instructions
     * (0 = sampling off). Samples cover the measured phase only —
     * the sampler attaches after warmup.
     */
    std::uint64_t sampleInterval = 0;
    /** Dump the samples here (.json = JSON, else CSV; "" = none). */
    std::string samplePath;
    /**
     * Comma-separated dotted-path prefixes selecting which stats the
     * sampler tracks ("cpu,l1d"); empty = the whole tree.
     */
    std::string sampleFilter;
};

/**
 * Simulate @p program on @p cfg to completion.
 * @throws FatalError on configuration or program errors.
 */
SimResult run(const prog::Program &program,
              const config::MachineConfig &cfg,
              const RunOptions &opts = {});

} // namespace ddsim::sim

#endif // DDSIM_SIM_RUNNER_HH_
