/**
 * @file
 * Runner: the one-call top-level API — simulate a program on a machine
 * configuration and return a SimResult. This is the entry point the
 * examples and every bench binary use.
 */

#ifndef DDSIM_SIM_RUNNER_HH_
#define DDSIM_SIM_RUNNER_HH_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "config/machine_config.hh"
#include "prog/program.hh"
#include "sim/result.hh"

namespace ddsim::vm {
class ExternalTrace;
class RecordedTrace;
}

namespace ddsim::sim {

/**
 * Which execution engine drives the run. All exact engines are
 * bit-identical to each other (pinned by the differential suite);
 * Sampled trades exactness for O(samples) detailed cycles.
 */
enum class Engine : std::uint8_t
{
    /** Replay when RunOptions::trace is set, otherwise live. */
    Auto,
    /** Functional execution feeding the pipeline directly. */
    Live,
    /** Replay a recorded trace (recording one first if needed). */
    Replay,
    /**
     * Batched multi-config replay: one trace decode pass shared by a
     * whole sweep column (see runBatch). For a single run() this is
     * plain replay — batching is a sweep-level behavior; SweepRunner
     * and the farm group same-program jobs into runBatch columns.
     */
    Batched,
    /**
     * SMARTS-style interval sampling: functional fast-forward between
     * detailed windows per RunOptions::sampling. IPC/cycles are
     * estimates with a confidence interval (SimResult::sampling).
     */
    Sampled,
};

/** Canonical lowercase name ("auto", "live", ...). */
const char *engineName(Engine e);

/**
 * Parse an engine name as CLI input. Unknown names raise ConfigError
 * with a did-you-mean suggestion when one is close enough.
 */
Engine engineFromName(const std::string &name);

/**
 * The sampled engine's measurement plan: every @p period instructions,
 * warm the pipeline in detail for @p warmup instructions, then measure
 * a @p detail window; the remaining period - warmup - detail
 * instructions fast-forward functionally with cache/predictor warming
 * (stream stats stay exact, timing is skipped; the skip length is
 * jittered deterministically to decorrelate window placement from
 * loop periodicity). Defaults hold every workload's |ΔIPC| within 2%
 * of a full run at registry default scale (pinned by
 * tests/test_sampled.cpp); longer programs tolerate much sparser
 * plans — at fixed window count the speedup grows with program
 * length, which is the engine's whole point.
 */
struct SamplingPlan
{
    std::uint64_t period = 4096; ///< Instructions per sampling unit.
    std::uint64_t detail = 2560; ///< Measured window length.
    std::uint64_t warmup = 256;  ///< Detailed warm-up per window.

    bool operator==(const SamplingPlan &o) const
    {
        return period == o.period && detail == o.detail &&
               warmup == o.warmup;
    }
};

/** Options for one simulation run. */
struct RunOptions
{
    /** Stop fetching after this many instructions (0 = run to HALT). */
    std::uint64_t maxInsts = 0;
    /**
     * Warm up the machine for this many instructions before the
     * measurement starts: caches and queues keep their state but all
     * statistics are zeroed, so the reported IPC and miss rates
     * exclude the cold-start transient.
     */
    std::uint64_t warmupInsts = 0;
    /** Capture the full stats dump into SimResult::statsText. */
    bool captureStats = false;
    /**
     * Replay this pre-recorded dynamic trace instead of functionally
     * executing the program. Must have been recorded from the same
     * program object; the result is bit-identical to a live run (the
     * front end is configuration-oblivious), only faster. Sweeps use
     * this to pay the functional execution once per program instead
     * of once per grid point.
     */
    std::shared_ptr<const vm::RecordedTrace> trace;
    /**
     * Run an ingested external trace (vm::ExternalTrace) instead of a
     * registry workload. The runner derives everything from it: the
     * program and replay trace (so `trace` must be unset), the
     * static-classifier verdict table from the ingestion-time
     * annotation pass (replacing the ddlint analysis, which would see
     * only the reconstructed text), and a run.trace_source provenance
     * block in the manifest. Engine::Live is a ConfigError — there is
     * no functional semantics to execute, only the recorded stream;
     * Auto resolves to replay. Batched and sampled work unchanged.
     */
    std::shared_ptr<const vm::ExternalTrace> externalTrace;
    /**
     * Execution engine (see Engine). Auto preserves the historical
     * behavior: replay when a trace is supplied, live otherwise.
     */
    Engine engine = Engine::Auto;
    /**
     * Sampled-engine plan; ignored by the exact engines. All-zero
     * disables sampling even under Engine::Sampled (ConfigError).
     */
    SamplingPlan sampling;

    // ---- Run guards (0 = unlimited) ----
    /**
     * Abort the run with BudgetExceededError once this many cycles
     * have been simulated (warmup included). Runs that finish within
     * the budget are bit-identical to unbudgeted runs.
     */
    std::uint64_t maxCycles = 0;
    /**
     * Abort with BudgetExceededError once this much host wall-clock
     * time has elapsed (measured from the start of warmup).
     */
    double maxWallSeconds = 0.0;

    // ---- Observability (all off by default; timing-invisible) ----
    /** Write a JSON run manifest here ("" = none). */
    std::string manifestPath;
    /** Capture the manifest JSON into SimResult::manifestJson. */
    bool captureManifest = false;
    /**
     * Make the manifest a pure function of (program, config, options):
     * the host wall-clock is recorded as 0 so two identical runs emit
     * byte-identical manifests. The sweep farm sets this on every job
     * so a merged multi-process manifest can be compared bit-for-bit
     * against a single-process reference.
     */
    bool canonicalManifest = false;
    /** Free-form label recorded in the manifest and trace header. */
    std::string label;
    /** Write a binary pipeline lifecycle trace here ("" = none). */
    std::string tracePath;
    /**
     * Snapshot stats every this many committed instructions
     * (0 = sampling off). Samples cover the measured phase only —
     * the sampler attaches after warmup.
     */
    std::uint64_t sampleInterval = 0;
    /** Dump the samples here (.json = JSON, else CSV; "" = none). */
    std::string samplePath;
    /**
     * Comma-separated dotted-path prefixes selecting which stats the
     * sampler tracks ("cpu,l1d"); empty = the whole tree.
     */
    std::string sampleFilter;

    // ---- Fault tolerance ----
    /**
     * On any SimError during the run, write a "ddsim-blackbox-v1"
     * JSON crash report here before rethrowing ("" = none). Enables
     * the last-committed-instructions ring in the pipeline.
     */
    std::string blackboxPath;
    /**
     * After the pipeline trace is finalized, decode the whole file
     * back as a self-check; corruption (including injected
     * corruption) raises TraceCorruptError. No-op without tracePath.
     */
    bool verifyTrace = false;
};

/**
 * Simulate @p program on @p cfg to completion.
 *
 * Every failure raises a typed ddsim::SimError: ConfigError for a bad
 * configuration, ProgramError for a malformed program, DeadlockError
 * when the watchdog fires, BudgetExceededError when a guard trips,
 * IoError / TraceCorruptError from the observability outputs. All of
 * these derive std::runtime_error; no failure path aborts.
 */
SimResult run(const prog::Program &program,
              const config::MachineConfig &cfg,
              const RunOptions &opts = {});

/**
 * Batched multi-config replay: simulate @p program under every
 * configuration in @p cfgs with ONE pass over the shared dynamic
 * trace. Each config gets its own complete pipeline (ROB, LSQ, LVAQ,
 * caches, stats — structure-of-arrays per-config timing state); the
 * driver interleaves their cycles against a bounded decode ring, so
 * trace decoding and memory traffic over the encoded words are paid
 * once per column instead of once per point. Results (manifests
 * included) are byte-identical to N independent run() calls with the
 * same options — pinned by the differential and sweep suites.
 *
 * @p opts applies to every lane. Options that name output files
 * (manifestPath, tracePath, samplePath, blackboxPath), wall-clock
 * budgets, interval sampling, and trace verification are per-run
 * concepts and raise ConfigError here; captureManifest/captureStats,
 * maxInsts/warmupInsts, maxCycles and label are supported. If
 * opts.trace is unset, the trace is recorded once internally.
 *
 * Any SimError aborts the whole column (deterministic: a caller
 * falling back to per-point run() calls reproduces the same failure
 * only on the offending point).
 */
std::vector<SimResult>
runBatch(const prog::Program &program,
         const std::vector<config::MachineConfig> &cfgs,
         const RunOptions &opts = {});

} // namespace ddsim::sim

#endif // DDSIM_SIM_RUNNER_HH_
