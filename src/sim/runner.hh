/**
 * @file
 * Runner: the one-call top-level API — simulate a program on a machine
 * configuration and return a SimResult. This is the entry point the
 * examples and every bench binary use.
 */

#ifndef DDSIM_SIM_RUNNER_HH_
#define DDSIM_SIM_RUNNER_HH_

#include <cstdint>
#include <memory>
#include <string>

#include "config/machine_config.hh"
#include "prog/program.hh"
#include "sim/result.hh"

namespace ddsim::vm {
class RecordedTrace;
}

namespace ddsim::sim {

/** Options for one simulation run. */
struct RunOptions
{
    /** Stop fetching after this many instructions (0 = run to HALT). */
    std::uint64_t maxInsts = 0;
    /**
     * Warm up the machine for this many instructions before the
     * measurement starts: caches and queues keep their state but all
     * statistics are zeroed, so the reported IPC and miss rates
     * exclude the cold-start transient.
     */
    std::uint64_t warmupInsts = 0;
    /** Capture the full stats dump into SimResult::statsText. */
    bool captureStats = false;
    /**
     * Replay this pre-recorded dynamic trace instead of functionally
     * executing the program. Must have been recorded from the same
     * program object; the result is bit-identical to a live run (the
     * front end is configuration-oblivious), only faster. Sweeps use
     * this to pay the functional execution once per program instead
     * of once per grid point.
     */
    std::shared_ptr<const vm::RecordedTrace> trace;

    // ---- Run guards (0 = unlimited) ----
    /**
     * Abort the run with BudgetExceededError once this many cycles
     * have been simulated (warmup included). Runs that finish within
     * the budget are bit-identical to unbudgeted runs.
     */
    std::uint64_t maxCycles = 0;
    /**
     * Abort with BudgetExceededError once this much host wall-clock
     * time has elapsed (measured from the start of warmup).
     */
    double maxWallSeconds = 0.0;

    // ---- Observability (all off by default; timing-invisible) ----
    /** Write a JSON run manifest here ("" = none). */
    std::string manifestPath;
    /** Capture the manifest JSON into SimResult::manifestJson. */
    bool captureManifest = false;
    /**
     * Make the manifest a pure function of (program, config, options):
     * the host wall-clock is recorded as 0 so two identical runs emit
     * byte-identical manifests. The sweep farm sets this on every job
     * so a merged multi-process manifest can be compared bit-for-bit
     * against a single-process reference.
     */
    bool canonicalManifest = false;
    /** Free-form label recorded in the manifest and trace header. */
    std::string label;
    /** Write a binary pipeline lifecycle trace here ("" = none). */
    std::string tracePath;
    /**
     * Snapshot stats every this many committed instructions
     * (0 = sampling off). Samples cover the measured phase only —
     * the sampler attaches after warmup.
     */
    std::uint64_t sampleInterval = 0;
    /** Dump the samples here (.json = JSON, else CSV; "" = none). */
    std::string samplePath;
    /**
     * Comma-separated dotted-path prefixes selecting which stats the
     * sampler tracks ("cpu,l1d"); empty = the whole tree.
     */
    std::string sampleFilter;

    // ---- Fault tolerance ----
    /**
     * On any SimError during the run, write a "ddsim-blackbox-v1"
     * JSON crash report here before rethrowing ("" = none). Enables
     * the last-committed-instructions ring in the pipeline.
     */
    std::string blackboxPath;
    /**
     * After the pipeline trace is finalized, decode the whole file
     * back as a self-check; corruption (including injected
     * corruption) raises TraceCorruptError. No-op without tracePath.
     */
    bool verifyTrace = false;
};

/**
 * Simulate @p program on @p cfg to completion.
 *
 * Every failure raises a typed ddsim::SimError: ConfigError for a bad
 * configuration, ProgramError for a malformed program, DeadlockError
 * when the watchdog fires, BudgetExceededError when a guard trips,
 * IoError / TraceCorruptError from the observability outputs. All of
 * these derive std::runtime_error; no failure path aborts.
 */
SimResult run(const prog::Program &program,
              const config::MachineConfig &cfg,
              const RunOptions &opts = {});

} // namespace ddsim::sim

#endif // DDSIM_SIM_RUNNER_HH_
