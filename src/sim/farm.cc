#include "sim/farm.hh"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <map>
#include <set>
#include <sstream>
#include <thread>
#include <utility>

#include <unistd.h>

#include "obs/version.hh"
#include "util/atomic_file.hh"
#include "util/file_claim.hh"
#include "util/json.hh"
#include "util/json_parse.hh"
#include "util/log.hh"
#include "util/subprocess.hh"
#include "vm/xtrace.hh"

namespace ddsim::sim::farm {

namespace {

/** Cache key under which workers and the serial reference share one
 *  built program per distinct (workload, scale, seed, annotate,
 *  trace file) — annotation rewrites hint bits and an external trace
 *  replaces the program wholesale, so such jobs must not share a
 *  Program. */
std::string
programKey(const GridJob &job)
{
    return format("%s@%llu#%llu!%s|%s", job.workload.c_str(),
                  static_cast<unsigned long long>(job.scale),
                  static_cast<unsigned long long>(job.seed),
                  job.annotate.c_str(), job.tracePath.c_str());
}

/**
 * Resolve a grid job's program: the decoded external trace when the
 * point names one (loadCached, so one worker process decodes each
 * file once), the registry build otherwise. The ExternalTrace lands
 * in @p xt for the caller to hang on its RunOptions.
 */
std::shared_ptr<const prog::Program>
resolveJobProgram(const GridJob &job, ProgramCache &programs,
                  std::shared_ptr<const vm::ExternalTrace> &xt)
{
    if (!job.tracePath.empty()) {
        xt = vm::ExternalTrace::loadCached(job.tracePath);
        return xt->sharedProgram();
    }
    return programs.get(programKey(job),
                        [&] { return buildGridProgram(job); });
}

bool
allDigits(std::string_view s)
{
    if (s.empty())
        return false;
    for (char c : s)
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return false;
    return true;
}

/** "job-000012.json" (a result record) -> id. */
bool
parseResultName(const std::string &name, std::uint64_t &id)
{
    if (name.rfind("job-", 0) != 0)
        return false;
    std::string::size_type dot = name.find('.');
    if (dot == std::string::npos || name.substr(dot) != ".json")
        return false;
    std::string_view digits(name.data() + 4, dot - 4);
    if (!allDigits(digits))
        return false;
    id = 0;
    for (char c : digits)
        id = id * 10 + static_cast<std::uint64_t>(c - '0');
    return true;
}

JobStatus
jobStatusFromName(const std::string &name, const std::string &where)
{
    for (JobStatus s : {JobStatus::Ok, JobStatus::Recovered,
                        JobStatus::Quarantined}) {
        if (name == jobStatusName(s))
            return s;
    }
    fatal("%s: unknown job status '%s'", where.c_str(), name.c_str());
}

/** Serialize and atomically write one ddsim-job-result-v1 record. */
void
writeJobRecord(const Spool &sp, const JobRecord &rec)
{
    std::ostringstream os;
    {
        JsonWriter w(os);
        w.beginObject();
        w.field("schema", kJobResultSchema);
        w.field("id", rec.id);
        w.field("status", jobStatusName(rec.status));
        w.field("attempts", static_cast<std::uint64_t>(rec.attempts));
        if (rec.error.kind.empty()) {
            w.key("error");
            w.valueNull();
        } else {
            w.key("error");
            w.beginObject();
            w.field("kind", rec.error.kind);
            w.field("message", rec.error.message);
            w.field("transient", rec.error.transient);
            w.endObject();
        }
        w.field("worker", rec.worker);
        w.field("shard", rec.shard);
        w.field("wall_seconds", rec.wallSeconds);
        w.endObject();
    }
    os << '\n';
    writeFileTextAtomic(
        sp.resultsDir() + "/" + Spool::resultFileName(rec.id),
        os.str());
}

/** Number of grid points in the spool, without a full spec parse. */
std::size_t
spoolNumJobs(const Spool &sp)
{
    JsonValue doc = parseJsonFile(sp.gridPath());
    return doc.at("num_jobs", "grid").asUint("grid.num_jobs");
}

} // namespace

std::string
Spool::jobFileName(std::uint64_t id, int shard)
{
    return format("job-%06llu.s%03d.json",
                  static_cast<unsigned long long>(id), shard);
}

std::string
Spool::claimFileName(std::uint64_t id, int shard,
                     const std::string &worker)
{
    return format("job-%06llu.s%03d.%s.json",
                  static_cast<unsigned long long>(id), shard,
                  worker.c_str());
}

std::string
Spool::resultFileName(std::uint64_t id)
{
    return format("job-%06llu.json",
                  static_cast<unsigned long long>(id));
}

std::string
Spool::manifestFileName(std::uint64_t id)
{
    return format("job-%06llu.manifest.json",
                  static_cast<unsigned long long>(id));
}

std::string
Spool::blackboxFileName(std::uint64_t id)
{
    return format("job-%06llu.json",
                  static_cast<unsigned long long>(id));
}

bool
parseSpoolName(const std::string &name, SpoolEntry &out)
{
    if (name.rfind("job-", 0) != 0)
        return false;
    std::vector<std::string> tokens;
    std::string::size_type start = 0;
    while (true) {
        std::string::size_type dot = name.find('.', start);
        if (dot == std::string::npos) {
            tokens.push_back(name.substr(start));
            break;
        }
        tokens.push_back(name.substr(start, dot - start));
        start = dot + 1;
    }
    if (tokens.size() != 3 && tokens.size() != 4)
        return false;
    if (tokens.back() != "json")
        return false;
    std::string_view digits(tokens[0].data() + 4,
                            tokens[0].size() - 4);
    if (!allDigits(digits))
        return false;
    if (tokens[1].size() < 2 || tokens[1][0] != 's' ||
        !allDigits(std::string_view(tokens[1]).substr(1)))
        return false;

    SpoolEntry e;
    e.id = 0;
    for (char c : digits)
        e.id = e.id * 10 + static_cast<std::uint64_t>(c - '0');
    e.shard = 0;
    for (std::size_t i = 1; i < tokens[1].size(); ++i)
        e.shard = e.shard * 10 + (tokens[1][i] - '0');
    if (tokens.size() == 4) {
        if (tokens[2].empty())
            return false;
        e.worker = tokens[2];
    }
    out = e;
    return true;
}

void
spoolGrid(const GridSpec &spec, const std::string &root, int numShards)
{
    spec.validate();
    if (numShards < 1)
        numShards = 1;
    if (numShards > 999)
        fatal("spoolGrid: %d shards exceeds the spool name format "
              "(max 999)",
              numShards);

    Spool sp(root);
    ensureDir(sp.root);
    ensureDir(sp.jobsDir());
    ensureDir(sp.claimsDir());
    ensureDir(sp.resultsDir());
    ensureDir(sp.blackboxDir());
    if (fileExists(sp.gridPath()))
        fatal("spool '%s' already holds a grid — spooling is for "
              "fresh directories (resume an existing spool instead)",
              root.c_str());
    for (const std::string &dir :
         {sp.jobsDir(), sp.claimsDir(), sp.resultsDir()}) {
        if (!listDir(dir).empty())
            fatal("spool '%s' has stale content in '%s'", root.c_str(),
                  dir.c_str());
    }

    spec.writeFile(sp.gridPath());
    // Batched points shard by column (program), not by id: a column
    // split across shards would land on different workers and lose
    // the shared trace pass. Sharding is still only a locality hint —
    // stealing and the worker-side column claim keep correctness
    // independent of the assignment.
    std::map<std::string, int> columnShard;
    for (const GridJob &job : spec.jobs) {
        std::ostringstream os;
        {
            JsonWriter w(os);
            w.beginObject();
            w.field("schema", kJobSchema);
            w.key("job");
            writeGridJobJson(w, job);
            w.endObject();
        }
        os << '\n';
        int shard;
        if (job.engine == Engine::Batched) {
            auto [it, inserted] = columnShard.try_emplace(
                programKey(job),
                static_cast<int>(columnShard.size()) % numShards);
            (void)inserted;
            shard = it->second;
        } else {
            shard = static_cast<int>(
                job.id % static_cast<std::uint64_t>(numShards));
        }
        writeFileTextAtomic(sp.jobsDir() + "/" +
                                Spool::jobFileName(job.id, shard),
                            os.str());
    }
}

JobRecord
jobRecordFromFile(const std::string &path)
{
    JsonValue doc = parseJsonFile(path);
    const std::string w = "job result";
    const std::string &schema =
        doc.at("schema", w).asString(w + ".schema");
    if (schema != kJobResultSchema)
        fatal("'%s': schema is '%s', expected '%s'", path.c_str(),
              schema.c_str(), kJobResultSchema);

    JobRecord rec;
    rec.id = doc.at("id", w).asUint(w + ".id");
    rec.status = jobStatusFromName(
        doc.at("status", w).asString(w + ".status"), path);
    rec.attempts = static_cast<int>(
        doc.at("attempts", w).asInt(w + ".attempts"));
    const JsonValue &err = doc.at("error", w);
    if (err.kind != JsonValue::Kind::Null) {
        rec.error.kind = err.at("kind", w).asString(w + ".error.kind");
        rec.error.message =
            err.at("message", w).asString(w + ".error.message");
        rec.error.transient =
            err.at("transient", w).asBool(w + ".error.transient");
    }
    rec.worker = doc.at("worker", w).asString(w + ".worker");
    rec.shard =
        static_cast<int>(doc.at("shard", w).asInt(w + ".shard"));
    rec.wallSeconds =
        doc.at("wall_seconds", w).asDouble(w + ".wall_seconds");

    if (rec.status == JobStatus::Quarantined &&
        rec.error.kind.empty())
        fatal("'%s': quarantined result carries no error",
              path.c_str());
    return rec;
}

SpoolStatus
scanSpool(const std::string &root)
{
    Spool sp(root);
    SpoolStatus st;
    st.total = spoolNumJobs(sp);

    int maxShard = 0;
    for (const std::string &name : listDir(sp.jobsDir())) {
        SpoolEntry e;
        if (!parseSpoolName(name, e) || !e.worker.empty())
            continue;
        ++st.pending;
        maxShard = std::max(maxShard, e.shard);
    }
    for (const std::string &name : listDir(sp.claimsDir())) {
        SpoolEntry e;
        if (!parseSpoolName(name, e) || e.worker.empty())
            continue;
        maxShard = std::max(maxShard, e.shard);
        // A claim whose result already landed is just an unlink the
        // dead worker never got to — not an in-flight job.
        if (!fileExists(sp.resultsDir() + "/" +
                        Spool::resultFileName(e.id)))
            ++st.claimed;
    }
    for (const std::string &name : listDir(sp.resultsDir())) {
        std::uint64_t id;
        if (!parseResultName(name, id))
            continue;
        JobRecord rec =
            jobRecordFromFile(sp.resultsDir() + "/" + name);
        maxShard = std::max(maxShard, rec.shard);
        switch (rec.status) {
          case JobStatus::Ok: ++st.ok; break;
          case JobStatus::Recovered: ++st.recovered; break;
          case JobStatus::Quarantined: ++st.quarantined; break;
        }
    }
    st.shards = maxShard + 1;
    return st;
}

std::size_t
requeueIncomplete(const std::string &root, bool retryQuarantined)
{
    Spool sp(root);
    GridSpec grid = GridSpec::fromFile(sp.gridPath());

    std::set<std::uint64_t> pendingIds;
    int maxShard = 0;
    for (const std::string &name : listDir(sp.jobsDir())) {
        SpoolEntry e;
        if (parseSpoolName(name, e) && e.worker.empty()) {
            pendingIds.insert(e.id);
            maxShard = std::max(maxShard, e.shard);
        }
    }
    // id -> stranded claim (name + shard); keep the first if a job
    // somehow accumulated several.
    std::map<std::uint64_t, SpoolEntry> claims;
    std::map<std::uint64_t, std::string> claimNames;
    for (const std::string &name : listDir(sp.claimsDir())) {
        SpoolEntry e;
        if (parseSpoolName(name, e) && !e.worker.empty()) {
            maxShard = std::max(maxShard, e.shard);
            if (claims.emplace(e.id, e).second)
                claimNames.emplace(e.id, name);
        }
    }
    int shards = maxShard + 1;

    std::size_t requeued = 0;
    for (const GridJob &job : grid.jobs) {
        const std::string resultPath =
            sp.resultsDir() + "/" + Spool::resultFileName(job.id);
        if (fileExists(resultPath)) {
            bool retry =
                retryQuarantined &&
                jobRecordFromFile(resultPath).status ==
                    JobStatus::Quarantined;
            if (!retry) {
                // Done. Sweep away anything stale for this id.
                auto it = claimNames.find(job.id);
                if (it != claimNames.end())
                    removeFileIfExists(sp.claimsDir() + "/" +
                                       it->second);
                continue;
            }
            removeFileIfExists(resultPath);
            removeFileIfExists(sp.resultsDir() + "/" +
                               Spool::manifestFileName(job.id));
        }

        if (pendingIds.count(job.id))
            continue; // Already queued; nothing was lost.

        auto it = claims.find(job.id);
        if (it != claims.end()) {
            // A dead worker stranded it; rename restores the original
            // spec file (the claim IS the job file, moved).
            if (claimFile(sp.claimsDir() + "/" + claimNames[job.id],
                          sp.jobsDir() + "/" +
                              Spool::jobFileName(job.id,
                                                 it->second.shard))) {
                ++requeued;
                continue;
            }
        }

        // No job file, no claim (or the rename lost an impossible
        // race): rebuild the spec file from grid.json, the source of
        // truth.
        std::ostringstream os;
        {
            JsonWriter w(os);
            w.beginObject();
            w.field("schema", kJobSchema);
            w.key("job");
            writeGridJobJson(w, job);
            w.endObject();
        }
        os << '\n';
        int shard = static_cast<int>(
            job.id % static_cast<std::uint64_t>(shards));
        writeFileTextAtomic(sp.jobsDir() + "/" +
                                Spool::jobFileName(job.id, shard),
                            os.str());
        ++requeued;
    }
    return requeued;
}

namespace {

/**
 * Run one claimed job spec through sim::run with bounded retry.
 * Fills @p rec (status/attempts/error) and, on success, @p result.
 * Never throws: any failure — unparsable spec, unknown workload,
 * simulation error — becomes a quarantined record.
 */
void
runClaimedJob(const Spool &sp, const std::string &claimPath,
              std::uint64_t id, const WorkerOptions &opts,
              ProgramCache &programs, TraceCache &traces,
              JobRecord &rec, SimResult &result, bool &okRun)
{
    okRun = false;
    try {
        JsonValue doc = parseJsonFile(claimPath);
        const std::string w = "job spec";
        const std::string &schema =
            doc.at("schema", w).asString(w + ".schema");
        if (schema != kJobSchema)
            fatal("'%s': schema is '%s', expected '%s'",
                  claimPath.c_str(), schema.c_str(), kJobSchema);
        GridJob job = gridJobFromJson(doc.at("job", w));
        if (job.id != id)
            fatal("'%s': spec holds id %llu but is spooled as job "
                  "%llu",
                  claimPath.c_str(),
                  static_cast<unsigned long long>(job.id),
                  static_cast<unsigned long long>(id));

        std::shared_ptr<const vm::ExternalTrace> xt;
        std::shared_ptr<const prog::Program> program =
            resolveJobProgram(job, programs, xt);

        RunOptions ro;
        ro.maxInsts = job.maxInsts;
        ro.warmupInsts = job.warmupInsts;
        ro.engine = job.engine;
        ro.sampling = job.sampling;
        ro.externalTrace = xt;
        ro.maxCycles = opts.cycleBudget;
        ro.maxWallSeconds = opts.wallBudget;
        ro.captureManifest = true;
        ro.canonicalManifest = true;
        ro.blackboxPath =
            sp.blackboxDir() + "/" + Spool::blackboxFileName(id);

        // The same bounded retry SweepRunner applies on its worker
        // threads: transient failures back off and re-run; anything
        // else quarantines immediately.
        std::uint64_t backoff = opts.retry.backoffMs;
        for (int attempt = 1;; ++attempt) {
            rec.attempts = attempt;
            try {
                if (!xt)
                    ro.trace = traces.get(
                        program, job.maxInsts
                                     ? job.maxInsts + job.warmupInsts
                                     : 0);
                result = run(*program, job.cfg, ro);
                okRun = true;
                rec.status = attempt > 1 ? JobStatus::Recovered
                                         : JobStatus::Ok;
                return;
            } catch (...) {
                rec.error = classifyError(std::current_exception());
                if (!rec.error.transient ||
                    attempt >= opts.retry.maxAttempts) {
                    rec.status = JobStatus::Quarantined;
                    return;
                }
            }
            if (backoff > 0)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(backoff));
            backoff = std::min(backoff * 2, opts.retry.maxBackoffMs);
        }
    } catch (...) {
        // Spec-level trouble (bad JSON, unknown workload, id clash):
        // quarantine the point rather than kill the worker.
        rec.error = classifyError(std::current_exception());
        rec.status = JobStatus::Quarantined;
    }
}

} // namespace

std::size_t
runWorker(const std::string &root, const WorkerOptions &opts)
{
    if (opts.workerId.empty() ||
        opts.workerId.find_first_of("./ ") != std::string::npos)
        raise(ConfigError("worker",
                          format("invalid worker id '%s'",
                                 opts.workerId.c_str())));

    Spool sp(root);
    ProgramCache programs;
    TraceCache traces;
    if (opts.traceCacheBytes)
        traces.setByteBudget(opts.traceCacheBytes);
    std::size_t completed = 0;

    /** Persist one finished point: manifest before result (a result
     *  record's existence implies its manifest is readable, whatever
     *  instant we die at), then drop the claim. */
    auto persist = [&](const SpoolEntry &e, const std::string &cp,
                       JobRecord &rec, const SimResult &result,
                       bool okRun, double wallSeconds) {
        rec.wallSeconds = wallSeconds;
        const std::string manifestPath =
            sp.resultsDir() + "/" + Spool::manifestFileName(e.id);
        if (okRun)
            writeFileTextAtomic(manifestPath, result.manifestJson);
        else
            removeFileIfExists(manifestPath);
        writeJobRecord(sp, rec);
        removeFileIfExists(cp);
        ++completed;
    };

    /** The ordinary per-point path (also the batch-failure
     *  fallback). */
    auto runOne = [&](const SpoolEntry &e, const std::string &cp) {
        JobRecord rec;
        rec.id = e.id;
        rec.shard = e.shard;
        rec.worker = opts.workerId;
        SimResult result;
        bool okRun = false;
        auto t0 = std::chrono::steady_clock::now();
        runClaimedJob(sp, cp, e.id, opts, programs, traces, rec,
                      result, okRun);
        persist(e, cp, rec, result, okRun,
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count());
    };

    while (true) {
        if (opts.maxJobs && completed >= opts.maxJobs)
            break;
        if (opts.exitIfReparented &&
            getppid() != opts.exitIfReparented)
            break; // Supervisor died; stop claiming new work.

        // Pick a candidate: own shard first, then steal from any.
        std::vector<std::string> names = listDir(sp.jobsDir());
        const std::string *pick = nullptr;
        SpoolEntry picked;
        for (const std::string &name : names) {
            SpoolEntry e;
            if (!parseSpoolName(name, e) || !e.worker.empty())
                continue;
            if (!pick) {
                pick = &name;
                picked = e;
            }
            if (opts.shard >= 0 && e.shard == opts.shard) {
                pick = &name;
                picked = e;
                break;
            }
        }
        if (!pick)
            break; // Spool drained (or everything is claimed).

        const std::string claimPath =
            sp.claimsDir() + "/" +
            Spool::claimFileName(picked.id, picked.shard,
                                 opts.workerId);
        if (!claimFile(sp.jobsDir() + "/" + *pick, claimPath))
            continue; // Another worker won the rename; re-scan.

        // Column batching: a Batched lead job pulls its whole column
        // into one runBatch pass. Wall-budgeted runs stay per-point
        // (runBatch refuses wall clocks — they are per-run concepts).
        GridJob lead;
        bool leadBatched = false;
        if (opts.wallBudget == 0.0) {
            try {
                JsonValue doc = parseJsonFile(claimPath);
                const std::string w = "job spec";
                if (doc.at("schema", w).asString(w + ".schema") ==
                    kJobSchema) {
                    lead = gridJobFromJson(doc.at("job", w));
                    leadBatched = lead.id == picked.id &&
                                  lead.engine == Engine::Batched;
                }
            } catch (...) {
                // Unparsable spec: the per-point path quarantines it.
            }
        }
        if (!leadBatched) {
            runOne(picked, claimPath);
            continue;
        }

        struct Claimed
        {
            SpoolEntry e;
            std::string path;
            GridJob job;
        };
        std::vector<Claimed> column;
        column.push_back({picked, claimPath, lead});
        std::size_t allow =
            opts.maxJobs ? opts.maxJobs - completed : names.size();
        for (const std::string &name : listDir(sp.jobsDir())) {
            if (column.size() >= allow && allow > 0)
                break;
            SpoolEntry e;
            if (!parseSpoolName(name, e) || !e.worker.empty())
                continue;
            GridJob cand;
            try {
                JsonValue doc =
                    parseJsonFile(sp.jobsDir() + "/" + name);
                const std::string w = "job spec";
                if (doc.at("schema", w).asString(w + ".schema") !=
                    kJobSchema)
                    continue;
                cand = gridJobFromJson(doc.at("job", w));
            } catch (...) {
                continue; // Claimed/removed mid-scan, or malformed.
            }
            if (cand.id != e.id || cand.engine != Engine::Batched ||
                programKey(cand) != programKey(lead) ||
                cand.maxInsts != lead.maxInsts ||
                cand.warmupInsts != lead.warmupInsts)
                continue;
            const std::string cp =
                sp.claimsDir() + "/" +
                Spool::claimFileName(e.id, e.shard, opts.workerId);
            if (!claimFile(sp.jobsDir() + "/" + name, cp))
                continue; // Another worker won this point.
            column.push_back({e, cp, cand});
        }

        bool columnOk = false;
        if (column.size() > 1) {
            try {
                std::shared_ptr<const vm::ExternalTrace> xt;
                std::shared_ptr<const prog::Program> program =
                    resolveJobProgram(lead, programs, xt);
                RunOptions ro;
                ro.maxInsts = lead.maxInsts;
                ro.warmupInsts = lead.warmupInsts;
                ro.engine = Engine::Batched;
                ro.externalTrace = xt;
                ro.maxCycles = opts.cycleBudget;
                ro.captureManifest = true;
                ro.canonicalManifest = true;
                if (!xt)
                    ro.trace = traces.get(
                        program,
                        lead.maxInsts
                            ? lead.maxInsts + lead.warmupInsts
                            : 0);
                std::vector<config::MachineConfig> cfgs;
                cfgs.reserve(column.size());
                for (const Claimed &c : column)
                    cfgs.push_back(c.job.cfg);
                auto t0 = std::chrono::steady_clock::now();
                std::vector<SimResult> rs =
                    runBatch(*program, cfgs, ro);
                double wall =
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count() /
                    static_cast<double>(column.size());
                for (std::size_t i = 0; i < column.size(); ++i) {
                    JobRecord rec;
                    rec.id = column[i].e.id;
                    rec.shard = column[i].e.shard;
                    rec.worker = opts.workerId;
                    rec.status = JobStatus::Ok;
                    persist(column[i].e, column[i].path, rec, rs[i],
                            true, wall);
                }
                columnOk = true;
            } catch (...) {
                // Fall back point-by-point below: a batch aborts on
                // the first error, so re-running each claim alone
                // reproduces the failure only on the offending point
                // (with blackbox + retry, exactly the normal path).
                columnOk = false;
            }
        }
        if (!columnOk)
            for (const Claimed &c : column)
                runOne(c.e, c.path);
    }
    return completed;
}

void
mergeSpool(const std::string &root, const std::string &mergedPath,
           const std::string &farmManifestPath)
{
    Spool sp(root);
    GridSpec grid = GridSpec::fromFile(sp.gridPath());

    SweepOutcome out;
    std::vector<JobRecord> records;
    out.results.reserve(grid.jobs.size());
    out.jobs.reserve(grid.jobs.size());
    records.reserve(grid.jobs.size());

    std::size_t missing = 0;
    for (const GridJob &job : grid.jobs) {
        const std::string resultPath =
            sp.resultsDir() + "/" + Spool::resultFileName(job.id);
        if (!fileExists(resultPath)) {
            ++missing;
            continue;
        }
        JobRecord rec = jobRecordFromFile(resultPath);
        if (rec.id != job.id)
            fatal("'%s' holds id %llu", resultPath.c_str(),
                  static_cast<unsigned long long>(rec.id));

        JobOutcome jo;
        jo.status = rec.status;
        jo.attempts = rec.attempts;
        jo.error = rec.error;
        if (rec.status == JobStatus::Quarantined) {
            ++out.numQuarantined;
            out.degraded = true;
            out.results.emplace_back();
            out.results.back().quarantined = true;
        } else {
            if (rec.status == JobStatus::Recovered)
                ++out.numRecovered;
            SimResult r;
            // The raw bytes the worker captured — never re-parsed,
            // never re-serialized, so the merged document is
            // byte-identical to an in-process sweep's by construction.
            r.manifestJson = readFileText(
                sp.resultsDir() + "/" +
                Spool::manifestFileName(job.id));
            out.results.push_back(std::move(r));
        }
        out.jobs.push_back(std::move(jo));
        records.push_back(std::move(rec));
    }
    if (missing)
        fatal("spool '%s' is incomplete: %zu of %zu points have no "
              "result (resume it first)",
              root.c_str(), missing, grid.jobs.size());

    writeSweepManifestFile(grid.title, out, mergedPath);

    if (farmManifestPath.empty())
        return;

    // The provenance document: who ran what, where. Deliberately a
    // separate schema — shard and worker assignment are nondeterminism
    // the merged sweep manifest must not see.
    int maxShard = 0;
    std::set<std::string> workers;
    for (const JobRecord &rec : records) {
        maxShard = std::max(maxShard, rec.shard);
        workers.insert(rec.worker);
    }

    AtomicFile file(farmManifestPath);
    {
        JsonWriter w(file.stream());
        w.beginObject();
        w.field("schema", kFarmManifestSchema);
        w.field("title", grid.title);
        w.key("generator");
        w.beginObject();
        w.field("name", obs::simulatorName());
        w.field("version", obs::simulatorVersion());
        w.field("git", obs::gitDescribe());
        w.endObject();
        w.field("num_jobs",
                static_cast<std::uint64_t>(records.size()));
        w.key("workers");
        w.beginArray();
        for (const std::string &worker : workers)
            w.value(worker);
        w.endArray();
        w.key("shards");
        w.beginArray();
        for (int s = 0; s <= maxShard; ++s) {
            w.beginObject();
            w.field("shard", s);
            std::size_t count = 0;
            for (const JobRecord &rec : records)
                if (rec.shard == s)
                    ++count;
            w.field("num_jobs", static_cast<std::uint64_t>(count));
            w.key("jobs");
            w.beginArray();
            for (const JobRecord &rec : records) {
                if (rec.shard != s)
                    continue;
                w.beginObject();
                w.field("id", rec.id);
                w.field("worker", rec.worker);
                w.field("status", jobStatusName(rec.status));
                w.field("attempts",
                        static_cast<std::uint64_t>(rec.attempts));
                w.field("wall_seconds", rec.wallSeconds);
                if (!rec.error.kind.empty()) {
                    w.key("error");
                    w.beginObject();
                    w.field("kind", rec.error.kind);
                    w.field("message", rec.error.message);
                    w.field("transient", rec.error.transient);
                    w.endObject();
                }
                w.endObject();
            }
            w.endArray();
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    file.stream() << '\n';
    file.commit();
}

SpoolStatus
superviseFarm(const std::string &root, const SupervisorOptions &opts)
{
    if (opts.exePath.empty())
        raise(ConfigError("farm", "supervisor has no worker binary"));

    Spool sp(root);
    // Claims can only belong to dead workers at this point — we have
    // not spawned any yet. Fold them back in.
    requeueIncomplete(root, false);
    SpoolStatus st = scanSpool(root);
    if (st.complete())
        return st;

    struct Live
    {
        pid_t pid;
        std::string worker;
        int shard;
    };
    std::vector<Live> alive;
    int spawned = 0;
    int respawns = 0;
    std::map<std::uint64_t, int> crashCounts;

    auto spawnOne = [&](int shard) {
        std::string worker = format("w%d", spawned);
        std::vector<std::string> argv = {
            opts.exePath,
            "worker",
            "--spool=" + root,
            "--worker=" + worker,
            format("--shard=%d", shard),
            format("--parent=%d", static_cast<int>(getpid())),
        };
        argv.insert(argv.end(), opts.workerArgs.begin(),
                    opts.workerArgs.end());
        alive.push_back({spawnProcess(argv), worker, shard});
        ++spawned;
    };

    // Requeue what a dead worker left in claims/; a point that keeps
    // killing workers gets crash-quarantined instead of another turn.
    // Empty @p worker matches every claim (post-mortem sweep).
    auto reapClaims = [&](const std::string &worker,
                          const std::string &why) {
        for (const std::string &name : listDir(sp.claimsDir())) {
            SpoolEntry e;
            if (!parseSpoolName(name, e) || e.worker.empty())
                continue;
            if (!worker.empty() && e.worker != worker)
                continue;
            const std::string claimPath =
                sp.claimsDir() + "/" + name;
            if (fileExists(sp.resultsDir() + "/" +
                           Spool::resultFileName(e.id))) {
                removeFileIfExists(claimPath);
                continue;
            }
            int crashes = ++crashCounts[e.id];
            if (crashes >= opts.crashQuarantineAfter) {
                warn("farm: job %llu crashed its worker %d times; "
                     "quarantining it",
                     static_cast<unsigned long long>(e.id), crashes);
                JobRecord rec;
                rec.id = e.id;
                rec.status = JobStatus::Quarantined;
                rec.attempts = crashes;
                rec.error = {"crash",
                             format("job took its worker process down "
                                    "%d time(s); last: %s",
                                    crashes, why.c_str()),
                             false};
                rec.worker = e.worker;
                rec.shard = e.shard;
                removeFileIfExists(sp.resultsDir() + "/" +
                                   Spool::manifestFileName(e.id));
                writeJobRecord(sp, rec);
                removeFileIfExists(claimPath);
            } else {
                claimFile(claimPath,
                          sp.jobsDir() + "/" +
                              Spool::jobFileName(e.id, e.shard));
            }
        }
    };

    while (true) {
        std::size_t todo = st.total - st.done();
        int batch = std::max(
            1, std::min(opts.workers,
                        static_cast<int>(std::min<std::size_t>(
                            todo, 1000000))));
        for (int i = 0; i < batch; ++i)
            spawnOne(i % st.shards);

        while (!alive.empty()) {
            bool reaped = false;
            for (std::size_t i = 0; i < alive.size();) {
                ProcessExit ex;
                if (!tryWaitProcess(alive[i].pid, ex)) {
                    ++i;
                    continue;
                }
                Live dead = alive[i];
                alive.erase(alive.begin() +
                            static_cast<std::ptrdiff_t>(i));
                reaped = true;
                if (ex.ok())
                    continue; // Drained its share and left.

                warn("farm worker %s died (%s)", dead.worker.c_str(),
                     ex.describe().c_str());
                reapClaims(dead.worker, ex.describe());
                st = scanSpool(root);
                if (st.complete())
                    continue;
                if (respawns < opts.respawnLimit) {
                    ++respawns;
                    spawnOne(dead.shard);
                } else {
                    warn("farm: respawn budget (%d) exhausted",
                         opts.respawnLimit);
                }
            }
            if (!reaped)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(10));
        }

        // Post-mortem: no worker is alive, so every remaining claim
        // is stranded.
        reapClaims("", "worker exited without finishing its claim");
        st = scanSpool(root);
        if (st.complete())
            return st;
        if (st.pending == 0 || respawns >= opts.respawnLimit)
            fatal("farm on '%s' did not complete: %zu of %zu points "
                  "done, %zu pending, %d respawns used",
                  root.c_str(), st.done(), st.total, st.pending,
                  respawns);
        ++respawns;
    }
}

SweepOutcome
runSerial(const GridSpec &spec, unsigned workers,
          const RetryPolicy &retry, std::uint64_t cycleBudget,
          double wallBudget, const std::string &mergedPath,
          std::size_t traceCacheBytes)
{
    spec.validate();
    SweepRunner runner(workers);
    runner.setRetryPolicy(retry);
    if (traceCacheBytes)
        runner.setTraceCacheBudget(traceCacheBytes);
    ProgramCache programs;
    for (const GridJob &job : spec.jobs) {
        std::shared_ptr<const vm::ExternalTrace> xt;
        std::shared_ptr<const prog::Program> program =
            resolveJobProgram(job, programs, xt);
        RunOptions ro;
        ro.maxInsts = job.maxInsts;
        ro.warmupInsts = job.warmupInsts;
        ro.engine = job.engine;
        ro.sampling = job.sampling;
        ro.externalTrace = xt;
        ro.maxCycles = cycleBudget;
        ro.maxWallSeconds = wallBudget;
        ro.captureManifest = true;
        ro.canonicalManifest = true;
        runner.submit(program, job.cfg, ro);
    }
    SweepOutcome out = runner.collectOutcome();
    if (!mergedPath.empty())
        writeSweepManifestFile(spec.title, out, mergedPath);
    return out;
}

} // namespace ddsim::sim::farm
