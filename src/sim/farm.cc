#include "sim/farm.hh"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstring>
#include <ctime>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <sstream>
#include <thread>
#include <utility>

#include <unistd.h>

#include "io/vfs.hh"
#include "obs/version.hh"
#include "util/atomic_file.hh"
#include "util/crc32.hh"
#include "util/file_claim.hh"
#include "util/json.hh"
#include "util/json_parse.hh"
#include "util/log.hh"
#include "util/subprocess.hh"
#include "vm/xtrace.hh"

namespace ddsim::sim::farm {

namespace {

/** Cache key under which workers and the serial reference share one
 *  built program per distinct (workload, scale, seed, annotate,
 *  trace file) — annotation rewrites hint bits and an external trace
 *  replaces the program wholesale, so such jobs must not share a
 *  Program. */
std::string
programKey(const GridJob &job)
{
    return format("%s@%llu#%llu!%s|%s", job.workload.c_str(),
                  static_cast<unsigned long long>(job.scale),
                  static_cast<unsigned long long>(job.seed),
                  job.annotate.c_str(), job.tracePath.c_str());
}

/**
 * Resolve a grid job's program: the decoded external trace when the
 * point names one (loadCached, so one worker process decodes each
 * file once), the registry build otherwise. The ExternalTrace lands
 * in @p xt for the caller to hang on its RunOptions.
 */
std::shared_ptr<const prog::Program>
resolveJobProgram(const GridJob &job, ProgramCache &programs,
                  std::shared_ptr<const vm::ExternalTrace> &xt)
{
    if (!job.tracePath.empty()) {
        xt = vm::ExternalTrace::loadCached(job.tracePath);
        return xt->sharedProgram();
    }
    return programs.get(programKey(job),
                        [&] { return buildGridProgram(job); });
}

bool
allDigits(std::string_view s)
{
    if (s.empty())
        return false;
    for (char c : s)
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return false;
    return true;
}

/** "job-000012.json" (a result record) -> id. */
bool
parseResultName(const std::string &name, std::uint64_t &id)
{
    if (name.rfind("job-", 0) != 0)
        return false;
    std::string::size_type dot = name.find('.');
    if (dot == std::string::npos || name.substr(dot) != ".json")
        return false;
    std::string_view digits(name.data() + 4, dot - 4);
    if (!allDigits(digits))
        return false;
    id = 0;
    for (char c : digits)
        id = id * 10 + static_cast<std::uint64_t>(c - '0');
    return true;
}

JobStatus
jobStatusFromName(const std::string &name, const std::string &where)
{
    for (JobStatus s : {JobStatus::Ok, JobStatus::Recovered,
                        JobStatus::Quarantined}) {
        if (name == jobStatusName(s))
            return s;
    }
    fatal("%s: unknown job status '%s'", where.c_str(), name.c_str());
}

// ---------------------------------------------------------------------
// CRC32 sealing
//
// Checksummed wrappers share one layout: the wrapper object opens
// with "schema", then a "crc32" field holding an 8-hex-char seal,
// then the payload object ("job" in spec files, "record" in result
// records) as the final member. The seal covers exactly the payload
// object's bytes, so it can be computed after serialization and
// patched over a fixed-width placeholder without re-serializing —
// and verified by any reader (including the Python validator, via
// binascii.crc32) from the raw text alone.
// ---------------------------------------------------------------------

constexpr const char *kCrcPlaceholder = "00000000";
constexpr const char *kCrcMarker = "\"crc32\": \"";

/** Byte range [begin, end) of the payload object "<key>": {...}. */
bool
crcPayloadRange(const std::string &text, const char *key,
                std::size_t &begin, std::size_t &end)
{
    const std::string marker = std::string("\"") + key + "\": ";
    const std::string::size_type pos = text.find(marker);
    if (pos == std::string::npos)
        return false;
    begin = pos + marker.size();
    if (begin >= text.size() || text[begin] != '{')
        return false;
    // The payload is the wrapper's last member: its closing brace is
    // the second-to-last '}' in the document.
    const std::string::size_type outer = text.rfind('}');
    if (outer == std::string::npos || outer == 0)
        return false;
    const std::string::size_type inner = text.rfind('}', outer - 1);
    if (inner == std::string::npos || inner < begin)
        return false;
    end = inner + 1;
    return true;
}

/** Patch the placeholder "crc32" field with the payload's CRC32. */
std::string
sealCrc(std::string text, const char *payloadKey)
{
    std::size_t begin = 0, end = 0;
    if (!crcPayloadRange(text, payloadKey, begin, end))
        panic("sealCrc: no '%s' payload in artifact", payloadKey);
    const std::string::size_type pos = text.find(kCrcMarker);
    if (pos == std::string::npos)
        panic("sealCrc: artifact has no crc32 placeholder");
    // Note "\"crc32\": \"" cannot match the manifest_crc32 field (its
    // key is preceded by '_', not '"'), so find() is the seal.
    text.replace(pos + std::strlen(kCrcMarker), 8,
                 crc32Hex(crc32(std::string_view(text).substr(
                     begin, end - begin))));
    return text;
}

/** Does @p text carry @p schema and a CRC32 seal matching its
 *  payload? False on any damage — truncation, bit flips, a torn
 *  write, the wrong schema generation. */
bool
artifactIntact(const std::string &text, const char *payloadKey,
               const char *schema)
{
    if (text.find(std::string("\"schema\": \"") + schema + "\"") ==
        std::string::npos)
        return false;
    std::size_t begin = 0, end = 0;
    if (!crcPayloadRange(text, payloadKey, begin, end))
        return false;
    const std::string::size_type pos = text.find(kCrcMarker);
    if (pos == std::string::npos)
        return false;
    const std::string::size_type at = pos + std::strlen(kCrcMarker);
    if (at + 8 > text.size())
        return false;
    return text.compare(at, 8,
                        crc32Hex(crc32(std::string_view(text).substr(
                            begin, end - begin)))) == 0;
}

/** The sealed CRC a wrapper document embeds ("00000000" if none). */
std::string
embeddedCrc(const std::string &text)
{
    const std::string::size_type pos = text.find(kCrcMarker);
    if (pos == std::string::npos ||
        pos + std::strlen(kCrcMarker) + 8 > text.size())
        return kCrcPlaceholder;
    return text.substr(pos + std::strlen(kCrcMarker), 8);
}

// ---------------------------------------------------------------------
// Artifact writers and verified readers
// ---------------------------------------------------------------------

/** Serialize one CRC-sealed ddsim-job-v2 spec document. */
std::string
renderJobFile(const GridJob &job)
{
    std::ostringstream os;
    {
        JsonWriter w(os);
        w.beginObject();
        w.field("schema", kJobSchema);
        w.field("crc32", kCrcPlaceholder);
        w.key("job");
        writeGridJobJson(w, job);
        w.endObject();
    }
    os << '\n';
    return sealCrc(os.str(), "job");
}

void
writeJobFile(const Spool &sp, const GridJob &job, int shard)
{
    writeFileTextAtomic(sp.jobsDir() + "/" +
                            Spool::jobFileName(job.id, shard),
                        renderJobFile(job));
}

/**
 * Parse and verify one spooled job spec.
 * @throws CorruptArtifactError on schema/CRC damage or an id clash.
 */
GridJob
parseJobSpecText(const std::string &text, const std::string &where,
                 std::uint64_t expectId)
{
    if (!artifactIntact(text, "job", kJobSchema))
        throw CorruptArtifactError(
            where, format("job spec '%s' failed its schema/CRC32 "
                          "check",
                          where.c_str()));
    GridJob job = gridJobFromJson(parseJson(text).at("job", "job spec"));
    if (job.id != expectId)
        throw CorruptArtifactError(
            where,
            format("'%s' holds id %llu but is spooled as job %llu",
                   where.c_str(),
                   static_cast<unsigned long long>(job.id),
                   static_cast<unsigned long long>(expectId)));
    return job;
}

/** Serialize and atomically write one ddsim-job-result-v2 record. */
void
writeJobRecord(const Spool &sp, const JobRecord &rec)
{
    std::ostringstream os;
    {
        JsonWriter w(os);
        w.beginObject();
        w.field("schema", kJobResultSchema);
        w.field("crc32", kCrcPlaceholder);
        w.key("record");
        w.beginObject();
        w.field("id", rec.id);
        w.field("status", jobStatusName(rec.status));
        w.field("attempts", static_cast<std::uint64_t>(rec.attempts));
        if (rec.error.kind.empty()) {
            w.key("error");
            w.valueNull();
        } else {
            w.key("error");
            w.beginObject();
            w.field("kind", rec.error.kind);
            w.field("message", rec.error.message);
            w.field("transient", rec.error.transient);
            w.endObject();
        }
        w.field("worker", rec.worker);
        w.field("shard", rec.shard);
        w.field("wall_seconds", rec.wallSeconds);
        if (rec.manifestCrc.empty()) {
            w.key("manifest_crc32");
            w.valueNull();
        } else {
            w.field("manifest_crc32", rec.manifestCrc);
        }
        w.endObject();
        w.endObject();
    }
    os << '\n';
    writeFileTextAtomic(
        sp.resultsDir() + "/" + Spool::resultFileName(rec.id),
        sealCrc(os.str(), "record"));
}

/** Serialize one ddsim-claim-v1 lease document. @p jobCrc is the
 *  sealed CRC of the spec this claim replaced (provenance only — the
 *  spec itself is always recoverable from grid.json). */
std::string
renderClaimDoc(const SpoolEntry &e, const std::string &worker,
               const std::string &jobCrc)
{
    std::ostringstream os;
    {
        JsonWriter w(os);
        w.beginObject();
        w.field("schema", kClaimSchema);
        w.field("id", e.id);
        w.field("shard", e.shard);
        w.field("worker", worker);
        w.field("pid", static_cast<std::int64_t>(::getpid()));
        w.field("acquired_unix",
                static_cast<std::uint64_t>(std::time(nullptr)));
        w.field("job_crc32", jobCrc);
        w.endObject();
    }
    os << '\n';
    return os.str();
}

/** Number of grid points in the spool, without a full spec parse. */
std::size_t
spoolNumJobs(const Spool &sp)
{
    JsonValue doc = parseJsonFile(sp.gridPath());
    return doc.at("num_jobs", "grid").asUint("grid.num_jobs");
}

/** Does the manifest file match the CRC its record promised? Fills
 *  @p bytes with the manifest text when it does. */
bool
manifestMatchesRecord(const Spool &sp, const JobRecord &rec,
                      std::string &bytes)
{
    const std::string path =
        sp.resultsDir() + "/" + Spool::manifestFileName(rec.id);
    if (!fileExists(path))
        return false;
    bytes = readFileText(path);
    return crc32Hex(crc32(bytes)) == rec.manifestCrc;
}

/** Move one artifact into corrupt/ (never deleted: the damaged bytes
 *  are the evidence). */
void
quarantineArtifact(const Spool &sp, const std::string &dir,
                   const std::string &name, const char *what)
{
    ensureDir(sp.corruptDir());
    const std::string dst = sp.corruptDir() + "/" + name;
    removeFileIfExists(dst);
    if (claimFile(dir + "/" + name, dst))
        warn("spool '%s': quarantined corrupt %s '%s' into corrupt/",
             sp.root.c_str(), what, name.c_str());
}

// ---------------------------------------------------------------------
// Worker-side liveness machinery
// ---------------------------------------------------------------------

/** Refreshes the mtime of every held claim at a quarter of the lease
 *  interval, so a live worker's lease never expires. Touches go
 *  through io::vfs() but are absorbed on failure — a heartbeat must
 *  never take the worker down. */
class HeartbeatThread
{
  public:
    explicit HeartbeatThread(double leaseSecs)
        : interval_(leaseSecs / 4.0)
    {
        if (leaseSecs > 0)
            thread_ = std::thread([this] { loop(); });
    }

    ~HeartbeatThread()
    {
        if (!thread_.joinable())
            return;
        {
            std::lock_guard<std::mutex> g(mutex_);
            stop_ = true;
        }
        cv_.notify_all();
        thread_.join();
    }

    void hold(const std::string &path)
    {
        if (!thread_.joinable())
            return;
        std::lock_guard<std::mutex> g(mutex_);
        held_.insert(path);
    }

    void release(const std::string &path)
    {
        if (!thread_.joinable())
            return;
        std::lock_guard<std::mutex> g(mutex_);
        held_.erase(path);
    }

  private:
    void loop()
    {
        std::unique_lock<std::mutex> lk(mutex_);
        while (!stop_) {
            cv_.wait_for(lk, std::chrono::duration<double>(interval_),
                         [this] { return stop_; });
            if (stop_)
                break;
            for (const std::string &path : held_) {
                try {
                    io::vfs().touchFile(path);
                } catch (...) {
                    // Including SimulatedCrash: the main thread hits
                    // the dead flag itself on its next I/O op.
                }
            }
        }
    }

    double interval_;
    std::thread thread_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
    std::set<std::string> held_;
};

/** SIGTERM sets this; the worker loop drains at the next claim
 *  boundary. sig_atomic_t + no locking: handler-safe by fiat. */
volatile std::sig_atomic_t g_drainRequested = 0;

void
installDrainHandler()
{
    struct sigaction sa = {};
    sa.sa_handler = +[](int) { g_drainRequested = 1; };
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    sigaction(SIGTERM, &sa, nullptr);
}

} // namespace

std::string
Spool::jobFileName(std::uint64_t id, int shard)
{
    return format("job-%06llu.s%03d.json",
                  static_cast<unsigned long long>(id), shard);
}

std::string
Spool::claimFileName(std::uint64_t id, int shard,
                     const std::string &worker)
{
    return format("job-%06llu.s%03d.%s.json",
                  static_cast<unsigned long long>(id), shard,
                  worker.c_str());
}

std::string
Spool::resultFileName(std::uint64_t id)
{
    return format("job-%06llu.json",
                  static_cast<unsigned long long>(id));
}

std::string
Spool::manifestFileName(std::uint64_t id)
{
    return format("job-%06llu.manifest.json",
                  static_cast<unsigned long long>(id));
}

std::string
Spool::blackboxFileName(std::uint64_t id)
{
    return format("job-%06llu.json",
                  static_cast<unsigned long long>(id));
}

bool
parseSpoolName(const std::string &name, SpoolEntry &out)
{
    if (name.rfind("job-", 0) != 0)
        return false;
    std::vector<std::string> tokens;
    std::string::size_type start = 0;
    while (true) {
        std::string::size_type dot = name.find('.', start);
        if (dot == std::string::npos) {
            tokens.push_back(name.substr(start));
            break;
        }
        tokens.push_back(name.substr(start, dot - start));
        start = dot + 1;
    }
    if (tokens.size() != 3 && tokens.size() != 4)
        return false;
    if (tokens.back() != "json")
        return false;
    std::string_view digits(tokens[0].data() + 4,
                            tokens[0].size() - 4);
    if (!allDigits(digits))
        return false;
    if (tokens[1].size() < 2 || tokens[1][0] != 's' ||
        !allDigits(std::string_view(tokens[1]).substr(1)))
        return false;

    SpoolEntry e;
    e.id = 0;
    for (char c : digits)
        e.id = e.id * 10 + static_cast<std::uint64_t>(c - '0');
    e.shard = 0;
    for (std::size_t i = 1; i < tokens[1].size(); ++i)
        e.shard = e.shard * 10 + (tokens[1][i] - '0');
    if (tokens.size() == 4) {
        if (tokens[2].empty())
            return false;
        e.worker = tokens[2];
    }
    out = e;
    return true;
}

void
spoolGrid(const GridSpec &spec, const std::string &root, int numShards)
{
    spec.validate();
    if (numShards < 1)
        numShards = 1;
    if (numShards > 999)
        fatal("spoolGrid: %d shards exceeds the spool name format "
              "(max 999)",
              numShards);

    Spool sp(root);
    ensureDir(sp.root);
    ensureDir(sp.jobsDir());
    ensureDir(sp.claimsDir());
    ensureDir(sp.resultsDir());
    ensureDir(sp.blackboxDir());
    if (fileExists(sp.gridPath()))
        fatal("spool '%s' already holds a grid — spooling is for "
              "fresh directories (resume an existing spool instead)",
              root.c_str());
    for (const std::string &dir :
         {sp.jobsDir(), sp.claimsDir(), sp.resultsDir()}) {
        if (!listDir(dir).empty())
            fatal("spool '%s' has stale content in '%s'", root.c_str(),
                  dir.c_str());
    }

    spec.writeFile(sp.gridPath());
    // Batched points shard by column (program), not by id: a column
    // split across shards would land on different workers and lose
    // the shared trace pass. Sharding is still only a locality hint —
    // stealing and the worker-side column claim keep correctness
    // independent of the assignment.
    std::map<std::string, int> columnShard;
    for (const GridJob &job : spec.jobs) {
        int shard;
        if (job.engine == Engine::Batched) {
            auto [it, inserted] = columnShard.try_emplace(
                programKey(job),
                static_cast<int>(columnShard.size()) % numShards);
            (void)inserted;
            shard = it->second;
        } else {
            shard = static_cast<int>(
                job.id % static_cast<std::uint64_t>(numShards));
        }
        writeJobFile(sp, job, shard);
    }
}

JobRecord
jobRecordFromFile(const std::string &path)
{
    const std::string text = readFileText(path);
    if (!artifactIntact(text, "record", kJobResultSchema))
        throw CorruptArtifactError(
            path, format("result record '%s' failed its schema/CRC32 "
                         "check",
                         path.c_str()));

    JsonValue doc = parseJson(text);
    const std::string w = "job result";
    const JsonValue &r = doc.at("record", w);

    JobRecord rec;
    rec.id = r.at("id", w).asUint(w + ".id");
    rec.status = jobStatusFromName(
        r.at("status", w).asString(w + ".status"), path);
    rec.attempts = static_cast<int>(
        r.at("attempts", w).asInt(w + ".attempts"));
    const JsonValue &err = r.at("error", w);
    if (err.kind != JsonValue::Kind::Null) {
        rec.error.kind = err.at("kind", w).asString(w + ".error.kind");
        rec.error.message =
            err.at("message", w).asString(w + ".error.message");
        rec.error.transient =
            err.at("transient", w).asBool(w + ".error.transient");
    }
    rec.worker = r.at("worker", w).asString(w + ".worker");
    rec.shard =
        static_cast<int>(r.at("shard", w).asInt(w + ".shard"));
    rec.wallSeconds =
        r.at("wall_seconds", w).asDouble(w + ".wall_seconds");
    const JsonValue &mc = r.at("manifest_crc32", w);
    if (mc.kind != JsonValue::Kind::Null)
        rec.manifestCrc = mc.asString(w + ".manifest_crc32");

    if (rec.status == JobStatus::Quarantined &&
        rec.error.kind.empty())
        fatal("'%s': quarantined result carries no error",
              path.c_str());
    if (rec.status != JobStatus::Quarantined &&
        rec.manifestCrc.empty())
        throw CorruptArtifactError(
            path, format("'%s' carries no manifest checksum",
                         path.c_str()));
    return rec;
}

SpoolStatus
scanSpool(const std::string &root)
{
    Spool sp(root);
    SpoolStatus st;
    st.total = spoolNumJobs(sp);

    int maxShard = 0;
    for (const std::string &name : listDir(sp.jobsDir())) {
        SpoolEntry e;
        if (!parseSpoolName(name, e) || !e.worker.empty())
            continue;
        ++st.pending;
        maxShard = std::max(maxShard, e.shard);
    }
    for (const std::string &name : listDir(sp.claimsDir())) {
        SpoolEntry e;
        if (!parseSpoolName(name, e) || e.worker.empty())
            continue;
        maxShard = std::max(maxShard, e.shard);
        // A claim whose result already landed is just an unlink the
        // dead worker never got to — not an in-flight job.
        if (fileExists(sp.resultsDir() + "/" +
                       Spool::resultFileName(e.id)))
            continue;
        ++st.claimed;

        ClaimInfo ci;
        ci.id = e.id;
        ci.shard = e.shard;
        ci.worker = e.worker;
        const std::string claimPath = sp.claimsDir() + "/" + name;
        ci.heartbeatAge = io::vfs().fileAgeSeconds(claimPath);
        try {
            JsonValue doc = parseJson(readFileText(claimPath));
            const std::string w = "claim";
            if (doc.at("schema", w).asString(w + ".schema") ==
                kClaimSchema) {
                ci.pid = static_cast<pid_t>(
                    doc.at("pid", w).asInt(w + ".pid"));
                ci.jobAge = std::difftime(
                    std::time(nullptr),
                    static_cast<std::time_t>(
                        doc.at("acquired_unix", w)
                            .asUint(w + ".acquired_unix")));
            }
        } catch (...) {
            // Pre-lease window (the claim still holds the job spec)
            // or a vanished file: heartbeat age is all we know.
        }
        st.leases.push_back(std::move(ci));
    }
    for (const std::string &name : listDir(sp.resultsDir())) {
        std::uint64_t id;
        if (!parseResultName(name, id))
            continue;
        JobRecord rec;
        try {
            rec = jobRecordFromFile(sp.resultsDir() + "/" + name);
        } catch (const CorruptArtifactError &) {
            ++st.corrupt;
            continue;
        }
        maxShard = std::max(maxShard, rec.shard);
        switch (rec.status) {
          case JobStatus::Ok: ++st.ok; break;
          case JobStatus::Recovered: ++st.recovered; break;
          case JobStatus::Quarantined: ++st.quarantined; break;
        }
    }
    st.shards = maxShard + 1;
    return st;
}

std::size_t
verifySpoolIntegrity(const std::string &root)
{
    Spool sp(root);
    std::size_t quarantined = 0;

    for (const std::string &name : listDir(sp.resultsDir())) {
        std::uint64_t id;
        if (!parseResultName(name, id))
            continue;
        JobRecord rec;
        try {
            rec = jobRecordFromFile(sp.resultsDir() + "/" + name);
        } catch (const CorruptArtifactError &) {
            quarantineArtifact(sp, sp.resultsDir(), name,
                               "result record");
            // The sibling manifest is unprovable without its record.
            const std::string mname = Spool::manifestFileName(id);
            if (fileExists(sp.resultsDir() + "/" + mname))
                quarantineArtifact(sp, sp.resultsDir(), mname,
                                   "unprovable manifest");
            ++quarantined;
            continue;
        }
        if (rec.status == JobStatus::Quarantined)
            continue; // No manifest to check.
        std::string bytes;
        if (!manifestMatchesRecord(sp, rec, bytes)) {
            const std::string mname = Spool::manifestFileName(id);
            if (fileExists(sp.resultsDir() + "/" + mname))
                quarantineArtifact(sp, sp.resultsDir(), mname,
                                   "manifest");
            quarantineArtifact(sp, sp.resultsDir(), name,
                               "record (manifest missing/mismatched)");
            ++quarantined;
        }
    }

    for (const std::string &name : listDir(sp.jobsDir())) {
        SpoolEntry e;
        if (!parseSpoolName(name, e) || !e.worker.empty())
            continue;
        const std::string path = sp.jobsDir() + "/" + name;
        try {
            parseJobSpecText(readFileText(path), path, e.id);
        } catch (const CorruptArtifactError &) {
            quarantineArtifact(sp, sp.jobsDir(), name, "job spec");
            ++quarantined;
        }
    }
    return quarantined;
}

std::size_t
requeueIncomplete(const std::string &root, bool retryQuarantined)
{
    Spool sp(root);
    // First pass: quarantine anything damaged, so the rebuild below
    // sees corrupt results as missing and re-queues those points.
    std::size_t corrupt = verifySpoolIntegrity(root);
    if (corrupt)
        warn("spool '%s': %zu corrupt artifact(s) quarantined; their "
             "points will re-run",
             root.c_str(), corrupt);

    GridSpec grid = GridSpec::fromFile(sp.gridPath());

    std::set<std::uint64_t> pendingIds;
    int maxShard = 0;
    for (const std::string &name : listDir(sp.jobsDir())) {
        SpoolEntry e;
        if (parseSpoolName(name, e) && e.worker.empty()) {
            pendingIds.insert(e.id);
            maxShard = std::max(maxShard, e.shard);
        }
    }
    // id -> stranded claim (name + shard); keep the first if a job
    // somehow accumulated several.
    std::map<std::uint64_t, SpoolEntry> claims;
    std::map<std::uint64_t, std::string> claimNames;
    for (const std::string &name : listDir(sp.claimsDir())) {
        SpoolEntry e;
        if (parseSpoolName(name, e) && !e.worker.empty()) {
            maxShard = std::max(maxShard, e.shard);
            if (claims.emplace(e.id, e).second)
                claimNames.emplace(e.id, name);
        }
    }
    int shards = maxShard + 1;

    std::size_t requeued = 0;
    for (const GridJob &job : grid.jobs) {
        const std::string resultPath =
            sp.resultsDir() + "/" + Spool::resultFileName(job.id);
        if (fileExists(resultPath)) {
            bool retry =
                retryQuarantined &&
                jobRecordFromFile(resultPath).status ==
                    JobStatus::Quarantined;
            if (!retry) {
                // Done. Sweep away anything stale for this id.
                auto it = claimNames.find(job.id);
                if (it != claimNames.end())
                    removeFileIfExists(sp.claimsDir() + "/" +
                                       it->second);
                continue;
            }
            removeFileIfExists(resultPath);
            removeFileIfExists(sp.resultsDir() + "/" +
                               Spool::manifestFileName(job.id));
        }

        if (pendingIds.count(job.id))
            continue; // Already queued; nothing was lost.

        // Stranded claim or no trace at all: either way the spec file
        // is rebuilt from grid.json, the source of truth — a claim
        // holds a lease document, not the spec, so there is nothing
        // to rename back. Keep the claim's shard tag when one exists.
        int shard = static_cast<int>(
            job.id % static_cast<std::uint64_t>(shards));
        auto it = claims.find(job.id);
        if (it != claims.end()) {
            shard = it->second.shard;
            removeFileIfExists(sp.claimsDir() + "/" +
                               claimNames[job.id]);
        }
        writeJobFile(sp, job, shard);
        ++requeued;
    }
    return requeued;
}

namespace {

/**
 * Run one resolved job through sim::run with bounded retry. Fills
 * @p rec (status/attempts/error) and, on success, @p result. Never
 * throws (except a SimulatedCrash, which must keep propagating —
 * a dead process runs nothing): any failure — unknown workload,
 * simulation error — becomes a quarantined record.
 */
void
runJob(const Spool &sp, const GridJob &job, const WorkerOptions &opts,
       ProgramCache &programs, TraceCache &traces, JobRecord &rec,
       SimResult &result, bool &okRun)
{
    okRun = false;
    try {
        std::shared_ptr<const vm::ExternalTrace> xt;
        std::shared_ptr<const prog::Program> program =
            resolveJobProgram(job, programs, xt);

        RunOptions ro;
        ro.maxInsts = job.maxInsts;
        ro.warmupInsts = job.warmupInsts;
        ro.engine = job.engine;
        ro.sampling = job.sampling;
        ro.externalTrace = xt;
        ro.maxCycles = opts.cycleBudget;
        ro.maxWallSeconds = opts.wallBudget;
        ro.captureManifest = true;
        ro.canonicalManifest = true;
        ro.blackboxPath =
            sp.blackboxDir() + "/" + Spool::blackboxFileName(job.id);

        // The same bounded retry SweepRunner applies on its worker
        // threads: transient failures back off and re-run; anything
        // else quarantines immediately.
        std::uint64_t backoff = opts.retry.backoffMs;
        for (int attempt = 1;; ++attempt) {
            rec.attempts = attempt;
            try {
                if (!xt)
                    ro.trace = traces.get(
                        program, job.maxInsts
                                     ? job.maxInsts + job.warmupInsts
                                     : 0);
                result = run(*program, job.cfg, ro);
                okRun = true;
                rec.status = attempt > 1 ? JobStatus::Recovered
                                         : JobStatus::Ok;
                return;
            } catch (const io::SimulatedCrash &) {
                throw;
            } catch (...) {
                rec.error = classifyError(std::current_exception());
                if (!rec.error.transient ||
                    attempt >= opts.retry.maxAttempts) {
                    rec.status = JobStatus::Quarantined;
                    return;
                }
            }
            if (backoff > 0)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(backoff));
            backoff = std::min(backoff * 2, opts.retry.maxBackoffMs);
        }
    } catch (const io::SimulatedCrash &) {
        throw;
    } catch (...) {
        // Program-level trouble (unknown workload, unreadable trace):
        // quarantine the point rather than kill the worker.
        rec.error = classifyError(std::current_exception());
        rec.status = JobStatus::Quarantined;
    }
}

} // namespace

std::size_t
runWorker(const std::string &root, const WorkerOptions &opts)
{
    if (opts.workerId.empty() ||
        opts.workerId.find_first_of("./ ") != std::string::npos)
        raise(ConfigError("worker",
                          format("invalid worker id '%s'",
                                 opts.workerId.c_str())));

    if (opts.gracefulDrain) {
        g_drainRequested = 0;
        installDrainHandler();
    }

    Spool sp(root);
    ProgramCache programs;
    TraceCache traces;
    if (opts.traceCacheBytes)
        traces.setByteBudget(opts.traceCacheBytes);
    std::size_t completed = 0;
    HeartbeatThread heartbeat(opts.leaseSecs);
    bool stallPending = opts.stallAfterFirstClaim;

    // grid.json is only parsed if a claimed spec fails verification —
    // the happy path never touches it.
    std::optional<GridSpec> gridCache;
    auto jobFromGrid = [&](std::uint64_t id) -> const GridJob & {
        if (!gridCache)
            gridCache.emplace(GridSpec::fromFile(sp.gridPath()));
        if (id >= gridCache->jobs.size())
            fatal("spool '%s': job id %llu is outside the grid "
                  "(%zu points)",
                  sp.root.c_str(), static_cast<unsigned long long>(id),
                  gridCache->jobs.size());
        return gridCache->jobs[id];
    };

    /** Persist one finished point: manifest before result (a result
     *  record's existence implies its manifest is readable, whatever
     *  instant we die at), then drop the claim. */
    auto persist = [&](const SpoolEntry &e, const std::string &cp,
                       JobRecord &rec, const SimResult &result,
                       bool okRun, double wallSeconds) {
        rec.wallSeconds = wallSeconds;
        const std::string manifestPath =
            sp.resultsDir() + "/" + Spool::manifestFileName(e.id);
        if (okRun) {
            rec.manifestCrc = crc32Hex(crc32(result.manifestJson));
            writeFileTextAtomic(manifestPath, result.manifestJson);
        } else {
            rec.manifestCrc.clear();
            removeFileIfExists(manifestPath);
        }
        writeJobRecord(sp, rec);
        heartbeat.release(cp);
        removeFileIfExists(cp);
        ++completed;
    };

    /** Claim one pending job file and convert the claim into a lease
     *  document (pid + acquisition time, mtime refreshed by the
     *  heartbeat). The spec text read back from the claim lands in
     *  @p specText. */
    auto acquire = [&](const SpoolEntry &e, const std::string &jobName,
                       std::string &claimPath,
                       std::string &specText) -> bool {
        claimPath = sp.claimsDir() + "/" +
                    Spool::claimFileName(e.id, e.shard, opts.workerId);
        if (!claimFile(sp.jobsDir() + "/" + jobName, claimPath))
            return false; // Another worker won the rename.
        specText = readFileText(claimPath);
        writeFileTextAtomic(
            claimPath,
            renderClaimDoc(e, opts.workerId, embeddedCrc(specText)));
        heartbeat.hold(claimPath);
        if (stallPending) {
            // Simulate a wedged worker: stop (not die) holding the
            // lease. Only SIGKILL from the supervisor ends this.
            stallPending = false;
            warn("worker %s: stalling on job %llu (SIGSTOP self)",
                 opts.workerId.c_str(),
                 static_cast<unsigned long long>(e.id));
            ::kill(::getpid(), SIGSTOP);
        }
        return true;
    };

    /** The ordinary per-point path (also the batch-failure fallback).
     *  @p parsed skips re-verification when the caller already holds
     *  the verified spec. */
    auto runOne = [&](const SpoolEntry &e, const std::string &cp,
                      const GridJob *parsed,
                      const std::string &specText) {
        JobRecord rec;
        rec.id = e.id;
        rec.shard = e.shard;
        rec.worker = opts.workerId;
        SimResult result;
        bool okRun = false;
        auto t0 = std::chrono::steady_clock::now();
        try {
            GridJob job;
            if (parsed) {
                job = *parsed;
            } else {
                try {
                    job = parseJobSpecText(specText, cp, e.id);
                } catch (const CorruptArtifactError &err) {
                    // The claimed copy is damaged, but grid.json
                    // still holds the truth: rebuild and run, don't
                    // quarantine a healthy point.
                    warn("worker %s: %s; rebuilding job %llu from "
                         "grid.json",
                         opts.workerId.c_str(), err.what(),
                         static_cast<unsigned long long>(e.id));
                    job = jobFromGrid(e.id);
                }
            }
            runJob(sp, job, opts, programs, traces, rec, result,
                   okRun);
        } catch (const io::SimulatedCrash &) {
            throw;
        } catch (...) {
            // grid.json unreadable or the id out of range: quarantine
            // the point rather than kill the worker.
            rec.error = classifyError(std::current_exception());
            rec.status = JobStatus::Quarantined;
        }
        persist(e, cp, rec, result, okRun,
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count());
    };

    while (true) {
        if (opts.maxJobs && completed >= opts.maxJobs)
            break;
        if (opts.exitIfReparented &&
            getppid() != opts.exitIfReparented)
            break; // Supervisor died; stop claiming new work.
        if (opts.gracefulDrain && g_drainRequested) {
            inform("worker %s: SIGTERM received; drained cleanly "
                   "after %zu job(s)",
                   opts.workerId.c_str(), completed);
            break;
        }

        // Pick a candidate: own shard first, then steal from any.
        std::vector<std::string> names = listDir(sp.jobsDir());
        const std::string *pick = nullptr;
        SpoolEntry picked;
        for (const std::string &name : names) {
            SpoolEntry e;
            if (!parseSpoolName(name, e) || !e.worker.empty())
                continue;
            if (!pick) {
                pick = &name;
                picked = e;
            }
            if (opts.shard >= 0 && e.shard == opts.shard) {
                pick = &name;
                picked = e;
                break;
            }
        }
        if (!pick)
            break; // Spool drained (or everything is claimed).

        std::string claimPath, specText;
        if (!acquire(picked, *pick, claimPath, specText))
            continue; // Lost the race; re-scan.

        // Column batching: a Batched lead job pulls its whole column
        // into one runBatch pass. Wall-budgeted runs stay per-point
        // (runBatch refuses wall clocks — they are per-run concepts).
        GridJob lead;
        bool leadValid = false;
        bool leadBatched = false;
        if (opts.wallBudget == 0.0) {
            try {
                lead = parseJobSpecText(specText, claimPath,
                                        picked.id);
                leadValid = true;
                leadBatched = lead.engine == Engine::Batched;
            } catch (const CorruptArtifactError &) {
                // runOne's rebuild path handles it per-point.
            }
        }
        if (!leadBatched) {
            runOne(picked, claimPath, leadValid ? &lead : nullptr,
                   specText);
            continue;
        }

        struct Claimed
        {
            SpoolEntry e;
            std::string path;
            GridJob job;
        };
        std::vector<Claimed> column;
        column.push_back({picked, claimPath, lead});
        std::size_t allow =
            opts.maxJobs ? opts.maxJobs - completed : names.size();
        for (const std::string &name : listDir(sp.jobsDir())) {
            if (column.size() >= allow && allow > 0)
                break;
            if (opts.gracefulDrain && g_drainRequested)
                break; // Drain with what we already hold.
            SpoolEntry e;
            if (!parseSpoolName(name, e) || !e.worker.empty())
                continue;
            GridJob cand;
            try {
                cand = parseJobSpecText(
                    readFileText(sp.jobsDir() + "/" + name),
                    sp.jobsDir() + "/" + name, e.id);
            } catch (const io::SimulatedCrash &) {
                throw;
            } catch (...) {
                continue; // Claimed/removed mid-scan, or damaged —
                          // the per-point path deals with it later.
            }
            if (cand.engine != Engine::Batched ||
                programKey(cand) != programKey(lead) ||
                cand.maxInsts != lead.maxInsts ||
                cand.warmupInsts != lead.warmupInsts)
                continue;
            std::string cp, ctext;
            if (!acquire(e, name, cp, ctext))
                continue; // Another worker won this point.
            column.push_back({e, cp, cand});
        }

        bool columnOk = false;
        if (column.size() > 1) {
            try {
                std::shared_ptr<const vm::ExternalTrace> xt;
                std::shared_ptr<const prog::Program> program =
                    resolveJobProgram(lead, programs, xt);
                RunOptions ro;
                ro.maxInsts = lead.maxInsts;
                ro.warmupInsts = lead.warmupInsts;
                ro.engine = Engine::Batched;
                ro.externalTrace = xt;
                ro.maxCycles = opts.cycleBudget;
                ro.captureManifest = true;
                ro.canonicalManifest = true;
                if (!xt)
                    ro.trace = traces.get(
                        program,
                        lead.maxInsts
                            ? lead.maxInsts + lead.warmupInsts
                            : 0);
                std::vector<config::MachineConfig> cfgs;
                cfgs.reserve(column.size());
                for (const Claimed &c : column)
                    cfgs.push_back(c.job.cfg);
                auto t0 = std::chrono::steady_clock::now();
                std::vector<SimResult> rs =
                    runBatch(*program, cfgs, ro);
                double wall =
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count() /
                    static_cast<double>(column.size());
                for (std::size_t i = 0; i < column.size(); ++i) {
                    JobRecord rec;
                    rec.id = column[i].e.id;
                    rec.shard = column[i].e.shard;
                    rec.worker = opts.workerId;
                    rec.status = JobStatus::Ok;
                    persist(column[i].e, column[i].path, rec, rs[i],
                            true, wall);
                }
                columnOk = true;
            } catch (const io::SimulatedCrash &) {
                throw;
            } catch (...) {
                // Fall back point-by-point below: a batch aborts on
                // the first error, so re-running each claim alone
                // reproduces the failure only on the offending point
                // (with blackbox + retry, exactly the normal path).
                columnOk = false;
            }
        }
        if (!columnOk)
            for (const Claimed &c : column)
                runOne(c.e, c.path, &c.job, "");
    }
    return completed;
}

void
mergeSpool(const std::string &root, const std::string &mergedPath,
           const std::string &farmManifestPath)
{
    Spool sp(root);
    GridSpec grid = GridSpec::fromFile(sp.gridPath());

    SweepOutcome out;
    std::vector<JobRecord> records;
    out.results.reserve(grid.jobs.size());
    out.jobs.reserve(grid.jobs.size());
    records.reserve(grid.jobs.size());

    std::size_t missing = 0;
    std::size_t corrupt = 0;
    auto quarantineResult = [&](std::uint64_t id, const char *what) {
        const std::string rname = Spool::resultFileName(id);
        const std::string mname = Spool::manifestFileName(id);
        if (fileExists(sp.resultsDir() + "/" + rname))
            quarantineArtifact(sp, sp.resultsDir(), rname, what);
        if (fileExists(sp.resultsDir() + "/" + mname))
            quarantineArtifact(sp, sp.resultsDir(), mname, what);
        ++corrupt;
    };

    for (const GridJob &job : grid.jobs) {
        const std::string resultPath =
            sp.resultsDir() + "/" + Spool::resultFileName(job.id);
        if (!fileExists(resultPath)) {
            ++missing;
            continue;
        }
        JobRecord rec;
        try {
            rec = jobRecordFromFile(resultPath);
        } catch (const CorruptArtifactError &) {
            quarantineResult(job.id, "result record");
            continue;
        }
        if (rec.id != job.id)
            fatal("'%s' holds id %llu", resultPath.c_str(),
                  static_cast<unsigned long long>(rec.id));

        JobOutcome jo;
        jo.status = rec.status;
        jo.attempts = rec.attempts;
        jo.error = rec.error;
        if (rec.status == JobStatus::Quarantined) {
            ++out.numQuarantined;
            out.degraded = true;
            out.results.emplace_back();
            out.results.back().quarantined = true;
        } else {
            if (rec.status == JobStatus::Recovered)
                ++out.numRecovered;
            SimResult r;
            // The raw bytes the worker captured — never re-parsed,
            // never re-serialized, so the merged document is
            // byte-identical to an in-process sweep's by
            // construction. CRC-verified first: damaged bytes are
            // quarantined, never spliced.
            std::string bytes;
            if (!manifestMatchesRecord(sp, rec, bytes)) {
                quarantineResult(job.id, "manifest");
                continue;
            }
            r.manifestJson = std::move(bytes);
            out.results.push_back(std::move(r));
        }
        out.jobs.push_back(std::move(jo));
        records.push_back(std::move(rec));
    }
    if (corrupt)
        raise(CorruptArtifactError(
            root,
            format("merge of '%s' found %zu corrupt artifact(s); "
                   "they were moved to corrupt/ — resume the spool "
                   "to re-run those points",
                   root.c_str(), corrupt)));
    if (missing)
        fatal("spool '%s' is incomplete: %zu of %zu points have no "
              "result (resume it first)",
              root.c_str(), missing, grid.jobs.size());

    writeSweepManifestFile(grid.title, out, mergedPath);

    if (farmManifestPath.empty())
        return;

    // The provenance document: who ran what, where. Deliberately a
    // separate schema — shard and worker assignment are nondeterminism
    // the merged sweep manifest must not see.
    int maxShard = 0;
    std::set<std::string> workers;
    for (const JobRecord &rec : records) {
        maxShard = std::max(maxShard, rec.shard);
        workers.insert(rec.worker);
    }

    AtomicFile file(farmManifestPath);
    {
        JsonWriter w(file.stream());
        w.beginObject();
        w.field("schema", kFarmManifestSchema);
        w.field("title", grid.title);
        w.key("generator");
        w.beginObject();
        w.field("name", obs::simulatorName());
        w.field("version", obs::simulatorVersion());
        w.field("git", obs::gitDescribe());
        w.endObject();
        w.field("num_jobs",
                static_cast<std::uint64_t>(records.size()));
        w.key("workers");
        w.beginArray();
        for (const std::string &worker : workers)
            w.value(worker);
        w.endArray();
        w.key("shards");
        w.beginArray();
        for (int s = 0; s <= maxShard; ++s) {
            w.beginObject();
            w.field("shard", s);
            std::size_t count = 0;
            for (const JobRecord &rec : records)
                if (rec.shard == s)
                    ++count;
            w.field("num_jobs", static_cast<std::uint64_t>(count));
            w.key("jobs");
            w.beginArray();
            for (const JobRecord &rec : records) {
                if (rec.shard != s)
                    continue;
                w.beginObject();
                w.field("id", rec.id);
                w.field("worker", rec.worker);
                w.field("status", jobStatusName(rec.status));
                w.field("attempts",
                        static_cast<std::uint64_t>(rec.attempts));
                w.field("wall_seconds", rec.wallSeconds);
                if (!rec.error.kind.empty()) {
                    w.key("error");
                    w.beginObject();
                    w.field("kind", rec.error.kind);
                    w.field("message", rec.error.message);
                    w.field("transient", rec.error.transient);
                    w.endObject();
                }
                w.endObject();
            }
            w.endArray();
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    file.stream() << '\n';
    file.commit();
}

SpoolStatus
superviseFarm(const std::string &root, const SupervisorOptions &opts)
{
    if (opts.exePath.empty())
        raise(ConfigError("farm", "supervisor has no worker binary"));

    Spool sp(root);
    GridSpec grid = GridSpec::fromFile(sp.gridPath());
    // Claims can only belong to dead workers at this point — we have
    // not spawned any yet. Verify artifacts and fold claims back in.
    requeueIncomplete(root, false);
    SpoolStatus st = scanSpool(root);
    if (st.complete())
        return st;

    struct Live
    {
        pid_t pid;
        std::string worker;
        int shard;
    };
    std::vector<Live> alive;
    int spawned = 0;
    int respawns = 0;
    std::map<std::uint64_t, int> crashCounts;

    auto spawnOne = [&](int shard) {
        std::string worker = format("w%d", spawned);
        std::vector<std::string> argv = {
            opts.exePath,
            "worker",
            "--spool=" + root,
            "--worker=" + worker,
            format("--shard=%d", shard),
            format("--parent=%d", static_cast<int>(getpid())),
        };
        if (opts.leaseSecs > 0)
            argv.push_back(
                format("--lease-secs=%g", opts.leaseSecs));
        argv.insert(argv.end(), opts.workerArgs.begin(),
                    opts.workerArgs.end());
        alive.push_back({spawnProcess(argv), worker, shard});
        ++spawned;
    };

    auto rebuildJobFile = [&](std::uint64_t id, int shard) {
        if (id >= grid.jobs.size()) {
            warn("farm: stray claim names job %llu, outside the grid "
                 "(%zu points); dropping it",
                 static_cast<unsigned long long>(id),
                 grid.jobs.size());
            return;
        }
        writeJobFile(sp, grid.jobs[id], shard);
    };

    /** SIGKILL one of our own workers by name; never signals a pid we
     *  did not spawn. The poll loop reaps the corpse. */
    auto killWorker = [&](const std::string &worker) {
        for (const Live &l : alive)
            if (l.worker == worker) {
                killProcess(l.pid, SIGKILL);
                return true;
            }
        return false;
    };

    /** Write a quarantined placeholder record for a point the lease
     *  machinery gave up on, and drop its claim. */
    auto quarantinePoint = [&](const SpoolEntry &e, int attempts,
                               const std::string &claimPath,
                               const std::string &message) {
        JobRecord rec;
        rec.id = e.id;
        rec.status = JobStatus::Quarantined;
        rec.attempts = std::max(attempts, 1);
        rec.error = {"hung", message, false};
        rec.worker = e.worker;
        rec.shard = e.shard;
        removeFileIfExists(sp.resultsDir() + "/" +
                           Spool::manifestFileName(e.id));
        writeJobRecord(sp, rec);
        removeFileIfExists(claimPath);
    };

    // Requeue what a dead worker left in claims/; a point that keeps
    // killing workers gets crash-quarantined instead of another turn.
    // Empty @p worker matches every claim (post-mortem sweep).
    auto reapClaims = [&](const std::string &worker,
                          const std::string &why) {
        for (const std::string &name : listDir(sp.claimsDir())) {
            SpoolEntry e;
            if (!parseSpoolName(name, e) || e.worker.empty())
                continue;
            if (!worker.empty() && e.worker != worker)
                continue;
            const std::string claimPath =
                sp.claimsDir() + "/" + name;
            if (fileExists(sp.resultsDir() + "/" +
                           Spool::resultFileName(e.id))) {
                removeFileIfExists(claimPath);
                continue;
            }
            int crashes = ++crashCounts[e.id];
            if (crashes >= opts.crashQuarantineAfter) {
                warn("farm: job %llu crashed its worker %d times; "
                     "quarantining it",
                     static_cast<unsigned long long>(e.id), crashes);
                JobRecord rec;
                rec.id = e.id;
                rec.status = JobStatus::Quarantined;
                rec.attempts = crashes;
                rec.error = {"crash",
                             format("job took its worker process down "
                                    "%d time(s); last: %s",
                                    crashes, why.c_str()),
                             false};
                rec.worker = e.worker;
                rec.shard = e.shard;
                removeFileIfExists(sp.resultsDir() + "/" +
                                   Spool::manifestFileName(e.id));
                writeJobRecord(sp, rec);
                removeFileIfExists(claimPath);
            } else {
                removeFileIfExists(claimPath);
                rebuildJobFile(e.id, e.shard);
            }
        }
    };

    /** Lease expiry + per-job wall-clock watchdog: a claim whose
     *  heartbeat went stale marks a wedged worker (kill + reclaim,
     *  quarantine after repeated losses); a claim older than the job
     *  wall budget marks a hung job (kill + quarantine now). */
    auto superviseLeases = [&] {
        if (opts.leaseSecs <= 0 && opts.jobWallSecs <= 0)
            return;
        for (const std::string &name : listDir(sp.claimsDir())) {
            SpoolEntry e;
            if (!parseSpoolName(name, e) || e.worker.empty())
                continue;
            const std::string claimPath =
                sp.claimsDir() + "/" + name;
            if (fileExists(sp.resultsDir() + "/" +
                           Spool::resultFileName(e.id)))
                continue; // Persisted; the unlink is imminent.
            double heartbeatAge =
                io::vfs().fileAgeSeconds(claimPath);
            if (heartbeatAge < 0)
                continue; // Claim vanished mid-scan.

            double jobAge = -1;
            try {
                JsonValue doc = parseJson(readFileText(claimPath));
                const std::string w = "claim";
                if (doc.at("schema", w).asString(w + ".schema") ==
                    kClaimSchema)
                    jobAge = std::difftime(
                        std::time(nullptr),
                        static_cast<std::time_t>(
                            doc.at("acquired_unix", w)
                                .asUint(w + ".acquired_unix")));
            } catch (...) {
                // Pre-lease window or vanished file: only the
                // heartbeat age is known.
            }

            if (opts.jobWallSecs > 0 && jobAge > opts.jobWallSecs) {
                warn("farm: job %llu has held its claim %.1fs "
                     "(> --job-wall-secs=%.1f); quarantining it and "
                     "killing worker %s",
                     static_cast<unsigned long long>(e.id), jobAge,
                     opts.jobWallSecs, e.worker.c_str());
                killWorker(e.worker);
                quarantinePoint(
                    e, crashCounts[e.id] + 1, claimPath,
                    format("job exceeded the per-job wall clock "
                           "(ran %.1fs, budget %.1fs); worker %s was "
                           "SIGKILLed",
                           jobAge, opts.jobWallSecs,
                           e.worker.c_str()));
                continue;
            }

            if (opts.leaseSecs > 0 && heartbeatAge > opts.leaseSecs) {
                int losses = ++crashCounts[e.id];
                warn("farm: lease on job %llu went stale (heartbeat "
                     "%.1fs old > --lease-secs=%.1f); killing worker "
                     "%s and %s",
                     static_cast<unsigned long long>(e.id),
                     heartbeatAge, opts.leaseSecs, e.worker.c_str(),
                     losses >= opts.crashQuarantineAfter
                         ? "quarantining the point"
                         : "reclaiming the point");
                killWorker(e.worker);
                if (losses >= opts.crashQuarantineAfter) {
                    quarantinePoint(
                        e, losses, claimPath,
                        format("lease went stale %d time(s); the "
                               "point hangs its workers",
                               losses));
                } else {
                    removeFileIfExists(claimPath);
                    rebuildJobFile(e.id, e.shard);
                }
            }
        }
    };

    while (true) {
        std::size_t todo = st.total - st.done();
        int batch = std::max(
            1, std::min(opts.workers,
                        static_cast<int>(std::min<std::size_t>(
                            todo, 1000000))));
        for (int i = 0; i < batch; ++i)
            spawnOne(i % st.shards);

        int idleTicks = 0;
        while (!alive.empty()) {
            bool reaped = false;
            for (std::size_t i = 0; i < alive.size();) {
                ProcessExit ex;
                if (!tryWaitProcess(alive[i].pid, ex)) {
                    ++i;
                    continue;
                }
                Live dead = alive[i];
                alive.erase(alive.begin() +
                            static_cast<std::ptrdiff_t>(i));
                reaped = true;
                if (ex.ok())
                    continue; // Drained its share and left.

                warn("farm worker %s died (%s)", dead.worker.c_str(),
                     ex.describe().c_str());
                reapClaims(dead.worker, ex.describe());
                st = scanSpool(root);
                if (st.complete())
                    continue;
                if (respawns < opts.respawnLimit) {
                    ++respawns;
                    spawnOne(dead.shard);
                } else {
                    warn("farm: respawn budget (%d) exhausted",
                         opts.respawnLimit);
                }
            }
            if (!reaped) {
                // Sweep leases at ~5 Hz, not every 10 ms tick: stat +
                // read per claim is cheap but not free.
                if (++idleTicks >= 20) {
                    idleTicks = 0;
                    superviseLeases();
                }
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(10));
            }
        }

        // Post-mortem: no worker is alive, so every remaining claim
        // is stranded.
        reapClaims("", "worker exited without finishing its claim");
        st = scanSpool(root);
        if (st.complete())
            return st;
        if (st.pending == 0 || respawns >= opts.respawnLimit)
            fatal("farm on '%s' did not complete: %zu of %zu points "
                  "done, %zu pending, %d respawns used",
                  root.c_str(), st.done(), st.total, st.pending,
                  respawns);
        ++respawns;
    }
}

SweepOutcome
runSerial(const GridSpec &spec, unsigned workers,
          const RetryPolicy &retry, std::uint64_t cycleBudget,
          double wallBudget, const std::string &mergedPath,
          std::size_t traceCacheBytes)
{
    spec.validate();
    SweepRunner runner(workers);
    runner.setRetryPolicy(retry);
    if (traceCacheBytes)
        runner.setTraceCacheBudget(traceCacheBytes);
    ProgramCache programs;
    for (const GridJob &job : spec.jobs) {
        std::shared_ptr<const vm::ExternalTrace> xt;
        std::shared_ptr<const prog::Program> program =
            resolveJobProgram(job, programs, xt);
        RunOptions ro;
        ro.maxInsts = job.maxInsts;
        ro.warmupInsts = job.warmupInsts;
        ro.engine = job.engine;
        ro.sampling = job.sampling;
        ro.externalTrace = xt;
        ro.maxCycles = cycleBudget;
        ro.maxWallSeconds = wallBudget;
        ro.captureManifest = true;
        ro.canonicalManifest = true;
        runner.submit(program, job.cfg, ro);
    }
    SweepOutcome out = runner.collectOutcome();
    if (!mergedPath.empty())
        writeSweepManifestFile(spec.title, out, mergedPath);
    return out;
}

} // namespace ddsim::sim::farm
