/**
 * @file
 * SimResult: a plain snapshot of everything a bench or test wants to
 * know after one simulation run.
 */

#ifndef DDSIM_SIM_RESULT_HH_
#define DDSIM_SIM_RESULT_HH_

#include <cstdint>
#include <string>

namespace ddsim::sim {

/**
 * How a sampled (SMARTS-style) run arrived at its estimate: the plan
 * actually used, how much of the stream ran in detail, and the
 * statistical confidence of the IPC estimate.
 */
struct SamplingStats
{
    bool active = false;          ///< This result is an estimate.
    std::uint64_t period = 0;     ///< Instructions per sampling unit.
    std::uint64_t detail = 0;     ///< Measured window length.
    std::uint64_t warmup = 0;     ///< Detailed warm-up before each window.
    std::uint64_t windows = 0;    ///< Measured windows taken.
    std::uint64_t detailInsts = 0; ///< Instructions measured in detail.
    std::uint64_t detailCycles = 0; ///< Cycles spent in measured windows.
    double ipcCi95 = 0.0;         ///< 95% confidence half-width on IPC.
};

/** Outcome of one (program, configuration) simulation. */
struct SimResult
{
    std::string program;
    std::string notation;       ///< "(N+M)" machine notation.

    std::uint64_t cycles = 0;
    std::uint64_t committed = 0;
    double ipc = 0.0;

    // Stream characterization (Fig. 2 / Fig. 3 inputs).
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t localLoads = 0;
    std::uint64_t localStores = 0;
    double meanDynFrameWords = 0.0;
    double meanStaticFrameWords = 0.0;

    // Caches.
    std::uint64_t l1Accesses = 0;
    std::uint64_t l1Misses = 0;
    double l1MissRate = 0.0;
    std::uint64_t lvcAccesses = 0;
    std::uint64_t lvcMisses = 0;
    double lvcMissRate = 0.0;
    std::uint64_t l2Accesses = 0;   ///< L1/LVC <-> L2 bus traffic.
    std::uint64_t memAccesses = 0;

    // Queues.
    std::uint64_t lsqForwards = 0;
    std::uint64_t lvaqForwards = 0;
    std::uint64_t lvaqFastForwards = 0;
    std::uint64_t lvaqCombined = 0;
    std::uint64_t lvaqLoads = 0;
    double lvaqSatisfiedFrac = 0.0; ///< Loads satisfied in-queue.

    // Classification.
    double classifierAccuracy = 1.0;
    std::uint64_t missteered = 0;
    std::uint64_t classified = 0;    ///< Accesses seen at dispatch.
    std::uint64_t toLvaq = 0;        ///< ...steered to the LVAQ.
    /** Decided by the static verdict table (StaticHybrid only). */
    std::uint64_t staticDecided = 0;

    /** Full stats dump (filled only when requested). */
    std::string statsText;

    /**
     * Complete run-manifest JSON (filled only when
     * RunOptions::captureManifest is set). SweepRunner splices these
     * into its sweep-level aggregate manifest.
     */
    std::string manifestJson;

    /**
     * This slot is a quarantined-job placeholder, not a real run: the
     * sweep supervisor could not produce a result for this grid point
     * and every stat above is a meaningless zero. Downstream table and
     * CSV code must render such slots with an explicit degraded marker
     * instead of passing the zeros off as data.
     */
    bool quarantined = false;

    /**
     * Sampling provenance: default-inactive for the exact engines;
     * active (with window counts and the IPC confidence interval)
     * when the sampled engine produced this result. cycles/ipc above
     * are then estimates, committed is the exact stream length.
     */
    SamplingStats sampling;

    /** One-line summary for logs. */
    std::string summary() const;
};

/** Speedup of @p a over @p b (by IPC). */
double speedup(const SimResult &a, const SimResult &b);

} // namespace ddsim::sim

#endif // DDSIM_SIM_RESULT_HH_
