#include "sim/result.hh"

#include "stats/stat.hh"
#include "util/log.hh"

namespace ddsim::sim {

std::string
SimResult::summary() const
{
    return format("%s %s: %llu insts, %llu cycles, IPC %.3f",
                  program.c_str(), notation.c_str(),
                  (unsigned long long)committed,
                  (unsigned long long)cycles, ipc);
}

double
speedup(const SimResult &a, const SimResult &b)
{
    return stats::safeRatio(a.ipc, b.ipc);
}

} // namespace ddsim::sim
