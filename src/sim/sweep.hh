/**
 * @file
 * SweepRunner: execute a grid of independent simulations across a
 * fixed-size worker pool, returning results in submission order.
 *
 * Every paper figure is a sweep of independent sim::run() calls —
 * programs x machine configurations — and simulation is deterministic,
 * so the grid can saturate all cores while producing results that are
 * bit-identical to a serial loop in submission order. SweepRunner is
 * the engine behind every bench binary's --jobs flag.
 *
 * Determinism guarantee: for a given (program, config, options) job,
 * the SimResult is a pure function of its inputs. Worker count and
 * completion order affect only wall-clock time, never the results or
 * their order. See docs/SWEEPS.md.
 */

#ifndef DDSIM_SIM_SWEEP_HH_
#define DDSIM_SIM_SWEEP_HH_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "config/machine_config.hh"
#include "prog/program.hh"
#include "sim/result.hh"
#include "sim/runner.hh"
#include "util/thread_pool.hh"
#include "vm/trace.hh"

namespace ddsim::sim {

/** One (program, machine, options) point of a sweep grid. */
struct SweepJob
{
    /**
     * The program is shared read-only across jobs: build each workload
     * once (see ProgramCache) and reference it from every
     * configuration that sweeps it.
     */
    std::shared_ptr<const prog::Program> program;
    config::MachineConfig cfg;
    RunOptions opts{};
};

/**
 * Memoizes dynamic-trace recording so each (program, instruction cap)
 * is functionally executed exactly once and the recording is shared
 * read-only by every job that replays it. Thread-safe: concurrent
 * get() calls for the same key block on one std::call_once while the
 * first caller records; different keys record in parallel.
 */
class TraceCache
{
  public:
    /** The trace for @p program capped at @p maxInsts (0 = full). */
    std::shared_ptr<const vm::RecordedTrace>
    get(const std::shared_ptr<const prog::Program> &program,
        std::uint64_t maxInsts = 0);

    /** Number of distinct traces recorded so far. */
    std::size_t size() const;

  private:
    struct Entry
    {
        std::once_flag once;
        std::shared_ptr<const vm::RecordedTrace> trace;
        /**
         * Keeps the recorded program alive (the trace replays against
         * it) and its address un-reusable as a future cache key.
         */
        std::shared_ptr<const prog::Program> pin;
    };

    using Key = std::pair<const prog::Program *, std::uint64_t>;

    mutable std::mutex mu;
    std::map<Key, std::shared_ptr<Entry>> cache;
};

/**
 * Runs sweep jobs on a worker pool; results come back in submission
 * order regardless of completion order.
 */
class SweepRunner
{
  public:
    /**
     * @param workers Worker threads; 0 means one per hardware thread.
     */
    explicit SweepRunner(unsigned workers = 0);
    ~SweepRunner();

    SweepRunner(const SweepRunner &) = delete;
    SweepRunner &operator=(const SweepRunner &) = delete;

    /**
     * Enqueue one job; execution may begin immediately on an idle
     * worker. @return the job's submission index, which is also its
     * index in the vector collect() returns.
     */
    std::size_t submit(SweepJob job);
    std::size_t submit(std::shared_ptr<const prog::Program> program,
                       const config::MachineConfig &cfg,
                       const RunOptions &opts = {});

    /**
     * Block until every submitted job has finished and return their
     * SimResults in submission order. If any job threw, the exception
     * of the lowest-indexed failed job is rethrown (after all jobs
     * have finished). Resets the runner: after collect() the next
     * submit() starts a fresh grid at index 0.
     */
    std::vector<SimResult> collect();

    /** Jobs submitted since the last collect(). */
    std::size_t pending() const { return slots.size(); }

    /** Number of worker threads. */
    unsigned workers() const { return pool.size(); }

    /** Convenience: run a whole grid and collect in one call. */
    static std::vector<SimResult> runAll(std::vector<SweepJob> jobs,
                                         unsigned workers = 0);

    /**
     * Share one recorded dynamic trace per (program, fetch-cap) across
     * all jobs that did not bring their own RunOptions::trace (on by
     * default). The first worker to touch a program records it; the
     * rest replay. Results are bit-identical either way (see the
     * differential suite); only wall-clock changes.
     */
    void setTraceSharing(bool on) { shareTraces = on; }

  private:
    struct Slot
    {
        SimResult result;
        std::exception_ptr error;
    };

    ThreadPool pool;
    std::deque<Slot> slots; ///< deque: stable addresses across submit()
    TraceCache traces;
    bool shareTraces = true;
};

/**
 * Aggregate the per-run manifests captured by a sweep (jobs submitted
 * with RunOptions::captureManifest) into one sweep-level JSON
 * document ("ddsim-sweep-manifest-v1"): generator provenance, the
 * sweep title, and a "runs" array holding each run's full manifest in
 * submission order. Results without a captured manifest appear as
 * null entries so indices still line up with the submission grid.
 */
void writeSweepManifest(const std::string &title,
                        const std::vector<SimResult> &results,
                        std::ostream &os);

/** writeSweepManifest into a file; fatal() if unwritable. */
void writeSweepManifestFile(const std::string &title,
                            const std::vector<SimResult> &results,
                            const std::string &path);

/**
 * Memoizes program construction so each workload is built exactly
 * once and shared read-only across every job that sweeps it.
 * Thread-safe; the builder runs under the cache lock, so concurrent
 * get() calls for the same key build once.
 */
class ProgramCache
{
  public:
    using Builder = std::function<prog::Program()>;

    /** Return the program cached under @p key, building on first use. */
    std::shared_ptr<const prog::Program> get(const std::string &key,
                                             const Builder &build);

    /** Number of distinct programs built so far. */
    std::size_t size() const;

  private:
    mutable std::mutex mu;
    std::map<std::string, std::shared_ptr<const prog::Program>> cache;
};

} // namespace ddsim::sim

#endif // DDSIM_SIM_SWEEP_HH_
