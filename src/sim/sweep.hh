/**
 * @file
 * SweepRunner: execute a grid of independent simulations across a
 * fixed-size worker pool, returning results in submission order.
 *
 * Every paper figure is a sweep of independent sim::run() calls —
 * programs x machine configurations — and simulation is deterministic,
 * so the grid can saturate all cores while producing results that are
 * bit-identical to a serial loop in submission order. SweepRunner is
 * the engine behind every bench binary's --jobs flag.
 *
 * Determinism guarantee: for a given (program, config, options) job,
 * the SimResult is a pure function of its inputs. Worker count and
 * completion order affect only wall-clock time, never the results or
 * their order. See docs/SWEEPS.md.
 */

#ifndef DDSIM_SIM_SWEEP_HH_
#define DDSIM_SIM_SWEEP_HH_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "config/machine_config.hh"
#include "prog/program.hh"
#include "sim/result.hh"
#include "sim/runner.hh"
#include "util/thread_pool.hh"
#include "vm/trace.hh"

namespace ddsim::sim {

/**
 * How SweepRunner retries transiently-failed jobs. Simulation is
 * deterministic, so a retried job that eventually succeeds returns
 * exactly the SimResult a first-try success would have — retry count
 * affects wall-clock only, never results.
 */
struct RetryPolicy
{
    /** Total attempts per job; 1 disables retry. */
    int maxAttempts = 3;
    /** Backoff before the first retry; doubles per further retry. */
    std::uint64_t backoffMs = 10;
    /** Backoff ceiling. */
    std::uint64_t maxBackoffMs = 1000;
};

/** Final disposition of one sweep job. */
enum class JobStatus : std::uint8_t
{
    Ok,          ///< Succeeded on the first attempt.
    Recovered,   ///< Failed transiently, succeeded on a retry.
    Quarantined, ///< Still failing after retries (or non-transient).
};

const char *jobStatusName(JobStatus s);

/** A classified failure: what any exception looks like to the
 *  supervisor. */
struct ErrorClass
{
    std::string kind;    ///< SimError::kind(), "alloc", or "unknown".
    std::string message;
    bool transient = false;
};

/** Classify @p e for retry/quarantine decisions. SimErrors report
 *  their own kind and transience; std::bad_alloc maps to "alloc"
 *  (transient — concurrent jobs release memory); anything else is
 *  "unknown" and permanent. */
ErrorClass classifyError(const std::exception_ptr &e);

/** Per-job record in a SweepOutcome. */
struct JobOutcome
{
    JobStatus status = JobStatus::Ok;
    int attempts = 1;
    /** The last (or recovered-from) error; empty kind = never failed. */
    ErrorClass error;
};

/**
 * Everything collectOutcome() reports: results in submission order
 * (quarantined indices hold a default-constructed SimResult) plus the
 * per-job status table.
 */
struct SweepOutcome
{
    std::vector<SimResult> results;
    std::vector<JobOutcome> jobs;
    bool degraded = false;        ///< Any job quarantined.
    std::size_t numQuarantined = 0;
    std::size_t numRecovered = 0;

    bool ok() const { return !degraded; }
};

/** One (program, machine, options) point of a sweep grid. */
struct SweepJob
{
    /**
     * The program is shared read-only across jobs: build each workload
     * once (see ProgramCache) and reference it from every
     * configuration that sweeps it.
     */
    std::shared_ptr<const prog::Program> program;
    config::MachineConfig cfg;
    RunOptions opts{};
    /**
     * Provenance for --emit-grid: the HintPolicy name this job's
     * program was annotated with ("" = stock registry program). The
     * program above already carries the rewritten hint bits; this
     * string only lets the exported GridJob reproduce them.
     */
    std::string annotate{};
};

/**
 * Memoizes dynamic-trace recording so each (program, instruction cap)
 * is functionally executed exactly once and the recording is shared
 * read-only by every job that replays it. Thread-safe: concurrent
 * get() calls for the same key block on one std::call_once while the
 * first caller records; different keys record in parallel.
 */
class TraceCache
{
  public:
    /** The trace for @p program capped at @p maxInsts (0 = full). */
    std::shared_ptr<const vm::RecordedTrace>
    get(const std::shared_ptr<const prog::Program> &program,
        std::uint64_t maxInsts = 0);

    /** Number of distinct traces resident right now. */
    std::size_t size() const;

    /** Distinct traces recorded over the cache's lifetime (resident
     *  or since evicted) — lets tests observe re-recording. */
    std::size_t recordings() const;

    /**
     * Bound the resident recordings to @p bytes of encoded trace
     * (0 = unlimited, the default). When an insertion pushes the
     * total over the budget, least-recently-used traces are evicted —
     * never the one just requested, so a single over-budget trace
     * still works. Evicted traces stay alive for jobs still holding
     * their shared_ptr; only the cache lets go, so a long farm run
     * over many programs keeps bounded RSS at the cost of
     * re-recording on a future touch.
     */
    void setByteBudget(std::size_t bytes);

    /** Encoded bytes of all resident recordings. */
    std::size_t residentBytes() const;

  private:
    struct Entry
    {
        std::once_flag once;
        std::shared_ptr<const vm::RecordedTrace> trace;
        /**
         * Keeps the recorded program alive (the trace replays against
         * it) and its address un-reusable as a future cache key.
         */
        std::shared_ptr<const prog::Program> pin;
        std::size_t bytes = 0;    ///< Set inside the call_once.
        bool counted = false;     ///< Folded into totalBytes (under mu).
        std::uint64_t lastUse = 0;
    };

    using Key = std::pair<const prog::Program *, std::uint64_t>;

    /** Caller holds mu. Evict LRU entries until within budget. */
    void evictLocked(const Entry *keep);

    mutable std::mutex mu;
    std::map<Key, std::shared_ptr<Entry>> cache;
    std::size_t byteBudget = 0;   ///< 0 = unlimited.
    std::size_t totalBytes = 0;
    std::uint64_t useClock = 0;
    std::size_t numRecorded = 0;
};

/**
 * Runs sweep jobs on a worker pool; results come back in submission
 * order regardless of completion order.
 */
class SweepRunner
{
  public:
    /**
     * @param workers Worker threads; 0 means one per hardware thread.
     */
    explicit SweepRunner(unsigned workers = 0);
    ~SweepRunner();

    SweepRunner(const SweepRunner &) = delete;
    SweepRunner &operator=(const SweepRunner &) = delete;

    /**
     * Enqueue one job; execution may begin immediately on an idle
     * worker. @return the job's submission index, which is also its
     * index in the vector collect() returns.
     */
    std::size_t submit(SweepJob job);
    std::size_t submit(std::shared_ptr<const prog::Program> program,
                       const config::MachineConfig &cfg,
                       const RunOptions &opts = {});

    /**
     * Block until every submitted job has finished and return their
     * SimResults in submission order. If any job threw, the exception
     * of the lowest-indexed failed job is rethrown (after all jobs
     * have finished). Resets the runner: after collect() the next
     * submit() starts a fresh grid at index 0.
     */
    std::vector<SimResult> collect();

    /**
     * Fault-isolating collection: block until every job has finished
     * (transient failures having been retried per the RetryPolicy on
     * the workers), then return all results plus the per-job status
     * table instead of throwing. A failed job is quarantined — its
     * result slot is default-constructed and the sweep is marked
     * degraded — and never takes the rest of the grid down with it.
     * Resets the runner like collect().
     */
    SweepOutcome collectOutcome();

    /** Replace the transient-failure retry policy (default: 3
     *  attempts, 10 ms exponential backoff). Affects jobs submitted
     *  after the call. */
    void setRetryPolicy(const RetryPolicy &p) { retryPolicy = p; }

    /** Jobs submitted since the last collect(). */
    std::size_t pending() const { return slots.size(); }

    /** Number of worker threads. */
    unsigned workers() const { return pool.size(); }

    /** Convenience: run a whole grid and collect in one call. */
    static std::vector<SimResult> runAll(std::vector<SweepJob> jobs,
                                         unsigned workers = 0);

    /**
     * Share one recorded dynamic trace per (program, fetch-cap) across
     * all jobs that did not bring their own RunOptions::trace (on by
     * default). The first worker to touch a program records it; the
     * rest replay. Results are bit-identical either way (see the
     * differential suite); only wall-clock changes.
     */
    void setTraceSharing(bool on) { shareTraces = on; }

    /** Bound the shared trace cache (see TraceCache::setByteBudget). */
    void setTraceCacheBudget(std::size_t bytes)
    {
        traces.setByteBudget(bytes);
    }

  private:
    struct Slot
    {
        SimResult result;
        std::exception_ptr error; ///< Set only if the job finally failed.
        int attempts = 1;
        ErrorClass lastError;     ///< Last failure, kept across recovery.
    };

    /** A submitted Engine::Batched job waiting to be grouped into a
     *  column at collect time. */
    struct PendingBatch
    {
        SweepJob job;
        Slot *slot;
    };

    /** The per-job retry loop shared by the normal path and the
     *  batch-failure fallback. Runs on a worker thread. */
    static void runJobWithRetry(SweepJob job, Slot *slot,
                                TraceCache *tc,
                                const RetryPolicy &policy);

    /**
     * Group the pending Engine::Batched jobs into per-(program,
     * options) columns and submit one runBatch task per column.
     * Called by collect()/collectOutcome() once the grid is final —
     * batching needs the whole column, which only exists then.
     */
    void flushBatches();

    ThreadPool pool;
    std::deque<Slot> slots; ///< deque: stable addresses across submit()
    std::vector<PendingBatch> batchQueue;
    TraceCache traces;
    bool shareTraces = true;
    RetryPolicy retryPolicy;
};

/**
 * Aggregate the per-run manifests captured by a sweep (jobs submitted
 * with RunOptions::captureManifest) into one sweep-level JSON
 * document ("ddsim-sweep-manifest-v1"): generator provenance, the
 * sweep title, and a "runs" array holding each run's full manifest in
 * submission order. Results without a captured manifest appear as
 * null entries so indices still line up with the submission grid.
 */
void writeSweepManifest(const std::string &title,
                        const std::vector<SimResult> &results,
                        std::ostream &os);

/** writeSweepManifest into a file, atomically; raises IoError if
 *  unwritable. */
void writeSweepManifestFile(const std::string &title,
                            const std::vector<SimResult> &results,
                            const std::string &path);

/**
 * Sweep manifest for a fault-isolated sweep: the same document plus
 * `"degraded"`, quarantine/recovery counts, and a `"jobs"` array with
 * each job's status, attempt count and classified error. A degraded
 * sweep still validates — downstream tooling sees exactly which
 * points are missing instead of getting no manifest at all.
 */
void writeSweepManifest(const std::string &title,
                        const SweepOutcome &outcome, std::ostream &os);

void writeSweepManifestFile(const std::string &title,
                            const SweepOutcome &outcome,
                            const std::string &path);

/**
 * Memoizes program construction so each workload is built exactly
 * once and shared read-only across every job that sweeps it.
 * Thread-safe; the builder runs under the cache lock, so concurrent
 * get() calls for the same key build once.
 */
class ProgramCache
{
  public:
    using Builder = std::function<prog::Program()>;

    /** Return the program cached under @p key, building on first use. */
    std::shared_ptr<const prog::Program> get(const std::string &key,
                                             const Builder &build);

    /** Number of distinct programs built so far. */
    std::size_t size() const;

  private:
    mutable std::mutex mu;
    std::map<std::string, std::shared_ptr<const prog::Program>> cache;
};

} // namespace ddsim::sim

#endif // DDSIM_SIM_SWEEP_HH_
