#include "sim/table.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "sim/result.hh"

namespace ddsim::sim {

Table::Table(std::vector<std::string> headers)
    : headers(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    cells.resize(headers.size());
    rows.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << v;
    return ss.str();
}

std::string
Table::pct(double fraction, int precision)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision)
       << fraction * 100.0 << "%";
    return ss.str();
}

std::string
Table::cell(const SimResult &r, double v, int precision)
{
    return r.quarantined ? kQuarantined : num(v, precision);
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers.size());
    for (std::size_t c = 0; c < headers.size(); ++c)
        widths[c] = headers[c].size();
    for (const auto &row : rows) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto printRow = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << (c == 0 ? "" : "  ") << std::left
               << std::setw(static_cast<int>(widths[c])) << cells[c];
        }
        os << "\n";
    };

    printRow(headers);
    std::vector<std::string> rule;
    for (std::size_t w : widths)
        rule.push_back(std::string(w, '-'));
    printRow(rule);
    for (const auto &row : rows)
        printRow(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c)
                os << ',';
            const std::string &s = cells[c];
            if (s.find_first_of(",\"\n") == std::string::npos) {
                os << s;
                continue;
            }
            os << '"';
            for (char ch : s) {
                if (ch == '"')
                    os << '"';
                os << ch;
            }
            os << '"';
        }
        os << '\n';
    };
    emit(headers);
    for (const auto &row : rows)
        emit(row);
}

void
printHeading(std::ostream &os, const std::string &title,
             const std::string &subtitle)
{
    os << "\n=== " << title << " ===\n";
    if (!subtitle.empty())
        os << subtitle << "\n";
    os << "\n";
}

} // namespace ddsim::sim
