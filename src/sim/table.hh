/**
 * @file
 * Aligned text tables for the bench binaries, which print the paper's
 * figures and tables as rows of numbers.
 */

#ifndef DDSIM_SIM_TABLE_HH_
#define DDSIM_SIM_TABLE_HH_

#include <iosfwd>
#include <string>
#include <vector>

namespace ddsim::sim {

struct SimResult;

/** A simple aligned-column text table. */
class Table
{
  public:
    /**
     * The cell rendered for a quarantined grid point. Distinct from
     * any legitimate number or "n/a": a degraded sweep's missing
     * points must be visibly missing, not silently zero.
     */
    static constexpr const char *kQuarantined = "(quarantined)";

    /**
     * The cell rendered for a metric that does not apply to a row's
     * configuration (e.g. the static-decided fraction of a policy
     * with no verdict table). Like kQuarantined, it keeps benches
     * from passing structural zeros off as measurements.
     */
    static constexpr const char *kNotApplicable = "(n/a)";

    explicit Table(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /** Append formatted cells: strings pass through unchanged. */
    static std::string num(double v, int precision = 3);
    static std::string pct(double fraction, int precision = 1);

    /**
     * Format @p v derived from result @p r — kQuarantined when @p r
     * is a quarantined placeholder, the formatted number otherwise.
     * Benches route every per-result numeric cell through this so a
     * degraded sweep can never print placeholder zeros as data.
     */
    static std::string cell(const SimResult &r, double v,
                            int precision = 3);

    void print(std::ostream &os) const;

    /** RFC-4180-style CSV (quoting cells that need it). */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
};

/** Print a section heading for a bench ("=== Figure 7 ==="). */
void printHeading(std::ostream &os, const std::string &title,
                  const std::string &subtitle = "");

} // namespace ddsim::sim

#endif // DDSIM_SIM_TABLE_HH_
