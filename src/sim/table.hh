/**
 * @file
 * Aligned text tables for the bench binaries, which print the paper's
 * figures and tables as rows of numbers.
 */

#ifndef DDSIM_SIM_TABLE_HH_
#define DDSIM_SIM_TABLE_HH_

#include <iosfwd>
#include <string>
#include <vector>

namespace ddsim::sim {

/** A simple aligned-column text table. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /** Append formatted cells: strings pass through unchanged. */
    static std::string num(double v, int precision = 3);
    static std::string pct(double fraction, int precision = 1);

    void print(std::ostream &os) const;

  private:
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
};

/** Print a section heading for a bench ("=== Figure 7 ==="). */
void printHeading(std::ostream &os, const std::string &title,
                  const std::string &subtitle = "");

} // namespace ddsim::sim

#endif // DDSIM_SIM_TABLE_HH_
