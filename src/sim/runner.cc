#include "sim/runner.hh"

#include "cpu/pipeline.hh"
#include "stats/formatter.hh"
#include "util/log.hh"
#include "vm/executor.hh"

#include <optional>

namespace ddsim::sim {

SimResult
run(const prog::Program &program, const config::MachineConfig &cfg,
    const RunOptions &opts)
{
    cfg.validate();

    stats::Group root(nullptr, "");
    // The instruction stream: replay the shared recording when one is
    // supplied, otherwise execute functionally.
    std::optional<vm::Executor> exec;
    std::optional<vm::TraceReplay> replay;
    vm::InstSource *src;
    if (opts.trace) {
        if (&opts.trace->program() != &program)
            panic("RunOptions::trace was recorded from a different "
                  "program");
        src = &replay.emplace(*opts.trace);
    } else {
        src = &exec.emplace(program);
    }
    cpu::Pipeline pipe(&root, cfg, *src);

    if (opts.warmupInsts > 0) {
        pipe.runUntilFetched(opts.warmupInsts);
        pipe.resetStats();
    }
    // maxInsts counts measured instructions, i.e. excludes warmup.
    std::uint64_t limit =
        opts.maxInsts ? opts.maxInsts + opts.warmupInsts : 0;
    pipe.run(limit);

    SimResult r;
    r.program = program.name();
    r.notation = cfg.notation();
    r.cycles = pipe.numCycles.value();
    r.committed = pipe.committedInsts.value();
    r.ipc = pipe.ipc();

    const vm::StreamStats &ss = pipe.streamStats();
    r.loads = ss.loads.value();
    r.stores = ss.stores.value();
    r.localLoads = ss.localLoads.value();
    r.localStores = ss.localStores.value();
    r.meanDynFrameWords = ss.frameWords.mean();
    r.meanStaticFrameWords = ss.meanStaticFrameWords();

    mem::Hierarchy &h = pipe.hierarchy();
    r.l1Accesses = h.l1().accesses.value();
    r.l1Misses = h.l1().misses.value();
    r.l1MissRate = h.l1().missRate();
    if (const mem::Cache *lvc = h.lvc()) {
        r.lvcAccesses = lvc->accesses.value();
        r.lvcMisses = lvc->misses.value();
        r.lvcMissRate = lvc->missRate();
    }
    r.l2Accesses = h.l2().accesses.value();
    r.memAccesses = h.mainMemory().accesses.value();

    r.lsqForwards = pipe.lsq().loadsForwarded.value();
    if (core::MemQueue *lvaq = pipe.lvaq()) {
        r.lvaqForwards = lvaq->loadsForwarded.value();
        r.lvaqFastForwards = lvaq->loadsFastForwarded.value();
        r.lvaqCombined = lvaq->combinedAccesses.value();
        r.lvaqLoads = lvaq->loadsTotal.value();
        r.lvaqSatisfiedFrac = lvaq->queueSatisfiedFrac();
        r.missteered = lvaq->missteeredAccesses.value() +
                       pipe.lsq().missteeredAccesses.value();
    }
    r.classifierAccuracy = pipe.classifier().accuracy();

    if (opts.captureStats)
        r.statsText = stats::toText(root);
    return r;
}

} // namespace ddsim::sim
