#include "sim/runner.hh"

#include "cpu/pipeline.hh"
#include "obs/manifest.hh"
#include "obs/pipeline_trace.hh"
#include "obs/sampler.hh"
#include "stats/formatter.hh"
#include "util/log.hh"
#include "vm/executor.hh"

#include <chrono>
#include <optional>

namespace ddsim::sim {

SimResult
run(const prog::Program &program, const config::MachineConfig &cfg,
    const RunOptions &opts)
{
    cfg.validate();

    stats::Group root(nullptr, "");
    // The instruction stream: replay the shared recording when one is
    // supplied, otherwise execute functionally.
    std::optional<vm::Executor> exec;
    std::optional<vm::TraceReplay> replay;
    vm::InstSource *src;
    if (opts.trace) {
        if (&opts.trace->program() != &program)
            panic("RunOptions::trace was recorded from a different "
                  "program");
        src = &replay.emplace(*opts.trace);
    } else {
        src = &exec.emplace(program);
    }
    cpu::Pipeline pipe(&root, cfg, *src);

    if (opts.warmupInsts > 0) {
        pipe.runUntilFetched(opts.warmupInsts);
        pipe.resetStats();
    }

    // Observability attaches after warmup so samples and trace
    // records cover exactly the measured phase.
    std::optional<obs::Sampler> sampler;
    if (opts.sampleInterval > 0) {
        sampler.emplace(root, opts.sampleInterval, opts.sampleFilter);
        pipe.setSampler(&*sampler);
    }
    std::optional<obs::PipelineTracer> tracer;
    if (!opts.tracePath.empty()) {
        tracer.emplace(opts.tracePath, program.name(), cfg.notation(),
                       opts.label, cfg.robSize);
        pipe.setTracer(&*tracer);
    }

    // maxInsts counts measured instructions, i.e. excludes warmup.
    std::uint64_t limit =
        opts.maxInsts ? opts.maxInsts + opts.warmupInsts : 0;
    auto t0 = std::chrono::steady_clock::now();
    pipe.run(limit);
    double wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();

    if (sampler)
        sampler->finish(pipe.committedInsts.value(),
                        pipe.numCycles.value());
    if (tracer)
        tracer->finish();
    pipe.setSampler(nullptr);
    pipe.setTracer(nullptr);
    if (sampler && !opts.samplePath.empty())
        sampler->dumpFile(opts.samplePath);

    SimResult r;
    r.program = program.name();
    r.notation = cfg.notation();
    r.cycles = pipe.numCycles.value();
    r.committed = pipe.committedInsts.value();
    r.ipc = pipe.ipc();

    const vm::StreamStats &ss = pipe.streamStats();
    r.loads = ss.loads.value();
    r.stores = ss.stores.value();
    r.localLoads = ss.localLoads.value();
    r.localStores = ss.localStores.value();
    r.meanDynFrameWords = ss.frameWords.mean();
    r.meanStaticFrameWords = ss.meanStaticFrameWords();

    mem::Hierarchy &h = pipe.hierarchy();
    r.l1Accesses = h.l1().accesses.value();
    r.l1Misses = h.l1().misses.value();
    r.l1MissRate = h.l1().missRate();
    if (const mem::Cache *lvc = h.lvc()) {
        r.lvcAccesses = lvc->accesses.value();
        r.lvcMisses = lvc->misses.value();
        r.lvcMissRate = lvc->missRate();
    }
    r.l2Accesses = h.l2().accesses.value();
    r.memAccesses = h.mainMemory().accesses.value();

    r.lsqForwards = pipe.lsq().loadsForwarded.value();
    if (core::MemQueue *lvaq = pipe.lvaq()) {
        r.lvaqForwards = lvaq->loadsForwarded.value();
        r.lvaqFastForwards = lvaq->loadsFastForwarded.value();
        r.lvaqCombined = lvaq->combinedAccesses.value();
        r.lvaqLoads = lvaq->loadsTotal.value();
        r.lvaqSatisfiedFrac = lvaq->queueSatisfiedFrac();
        r.missteered = lvaq->missteeredAccesses.value() +
                       pipe.lsq().missteeredAccesses.value();
    }
    r.classifierAccuracy = pipe.classifier().accuracy();

    if (opts.captureStats)
        r.statsText = stats::toText(root);

    if (opts.captureManifest || !opts.manifestPath.empty()) {
        obs::ManifestInfo mi;
        mi.workload = program.name();
        mi.label = opts.label;
        mi.cfg = cfg;
        mi.maxInsts = opts.maxInsts;
        mi.warmupInsts = opts.warmupInsts;
        mi.traceReplay = static_cast<bool>(opts.trace);
        mi.tracePath = opts.tracePath;
        mi.samplePath = opts.samplePath;
        mi.sampleInterval = opts.sampleInterval;
        mi.cycles = r.cycles;
        mi.committed = r.committed;
        mi.ipc = r.ipc;
        mi.lsqLoads = pipe.lsq().loadsTotal.value();
        mi.lsqStores = pipe.lsq().storesTotal.value();
        if (core::MemQueue *lvaq = pipe.lvaq()) {
            mi.lvaqLoads = lvaq->loadsTotal.value();
            mi.lvaqStores = lvaq->storesTotal.value();
        }
        mi.wallSeconds = wallSeconds;
        mi.stats = &root;
        if (opts.captureManifest)
            r.manifestJson = obs::manifestToJson(mi);
        if (!opts.manifestPath.empty())
            obs::writeManifestFile(mi, opts.manifestPath);
    }
    return r;
}

} // namespace ddsim::sim
