#include "sim/runner.hh"

#include "analysis/analyzer.hh"
#include "cpu/pipeline.hh"
#include "isa/disasm.hh"
#include "obs/blackbox.hh"
#include "obs/manifest.hh"
#include "obs/pipeline_trace.hh"
#include "obs/sampler.hh"
#include "robust/fault_inject.hh"
#include "stats/formatter.hh"
#include "util/log.hh"
#include "vm/executor.hh"
#include "vm/xtrace.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <new>
#include <optional>
#include <thread>

namespace ddsim::sim {

const char *
engineName(Engine e)
{
    switch (e) {
      case Engine::Auto: return "auto";
      case Engine::Live: return "live";
      case Engine::Replay: return "replay";
      case Engine::Batched: return "batched";
      case Engine::Sampled: return "sampled";
    }
    return "?";
}

namespace {

/** Levenshtein distance for the --engine= did-you-mean suggestion. */
std::size_t
editDistance(const std::string &a, const std::string &b)
{
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t diag = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            std::size_t next = std::min(
                {row[j] + 1, row[j - 1] + 1,
                 diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
            diag = row[j];
            row[j] = next;
        }
    }
    return row[b.size()];
}

} // namespace

Engine
engineFromName(const std::string &name)
{
    static constexpr Engine kEngines[] = {
        Engine::Auto, Engine::Live, Engine::Replay, Engine::Batched,
        Engine::Sampled};
    std::string best;
    std::size_t bestDist = 4;
    for (Engine e : kEngines) {
        std::string canon = engineName(e);
        if (name == canon)
            return e;
        std::size_t d = editDistance(name, canon);
        if (d < bestDist) {
            bestDist = d;
            best = canon;
        }
    }
    std::string msg = format("unknown engine '%s' (expected auto, "
                             "live, replay, batched or sampled",
                             name.c_str());
    if (!best.empty())
        msg += format("; did you mean '%s'?", best.c_str());
    msg += ")";
    raise(ConfigError("engine", msg));
}

namespace {

/** Number of committed instructions the crash report retains. */
constexpr std::size_t kBlackboxCommits = 32;

/**
 * Flatten the dying run's state into a BlackboxInfo and write it.
 * Never throws: a failing crash report must not mask the crash.
 */
void
emitBlackbox(const RunOptions &opts, const prog::Program &program,
             const config::MachineConfig &cfg, cpu::Pipeline &pipe,
             const stats::Group &root, const SimError &e)
{
    obs::BlackboxInfo bi;
    bi.workload = program.name();
    bi.label = opts.label;
    bi.cfg = cfg;
    bi.maxInsts = opts.maxInsts;
    bi.warmupInsts = opts.warmupInsts;
    bi.traceReplay = static_cast<bool>(opts.trace);
    bi.maxCycles = opts.maxCycles;
    bi.maxWallSeconds = opts.maxWallSeconds;

    bi.errorKind = e.kind();
    bi.errorMessage = e.what();
    bi.errorTransient = e.transient();
    bi.errorContext = e.context();

    cpu::OccupancySnapshot s = pipe.snapshotOccupancy();
    bi.cycle = s.cycle;
    bi.lastCommitCycle = s.lastCommitCycle;
    bi.robOccupancy = s.robOccupancy;
    bi.robSize = s.robSize;
    bi.lsqOccupancy = s.lsqOccupancy;
    bi.lsqSize = s.lsqSize;
    bi.lvaqOccupancy = s.lvaqOccupancy;
    bi.lvaqSize = s.lvaqSize;
    bi.fetchQueue = s.fetchQueue;
    bi.fetched = s.fetched;
    bi.committed = s.committed;
    for (const cpu::CommittedRecord &c : pipe.commitLog())
        bi.lastCommits.push_back({c.seq, c.pcIdx,
                                  isa::disassemble(c.inst), c.cycle});
    bi.stats = &root;

    try {
        obs::writeBlackboxFile(bi, opts.blackboxPath);
    } catch (const std::exception &we) {
        warn("could not write black-box report '%s': %s",
             opts.blackboxPath.c_str(), we.what());
    }
}

/**
 * Fault-injection probe: resolved once per run attempt, before any
 * machine state exists. Null injector (the normal case) costs one
 * atomic load. Raises (or aborts) when an injected failure is due;
 * otherwise returns the plan so the caller can arm the in-run faults.
 */
robust::RunFaultPlan
probeFaults(const prog::Program &program,
            const config::MachineConfig &cfg)
{
    robust::RunFaultPlan plan;
    if (robust::FaultInjector *inj = robust::FaultInjector::active())
        plan = inj->planFor(program.name(), cfg.notation());
    if (plan.failTransient)
        raise(IoError(program.name(),
                      format("injected transient fault for '%s'",
                             program.name().c_str())));
    if (plan.failPersistent)
        raise(ProgramError(
            format("injected persistent fault for '%s'",
                   program.name().c_str())));
    if (plan.allocFail)
        throw std::bad_alloc{};
    if (plan.crashProcess)
        // The injected catastrophe: takes the whole process down, the
        // way a real segfaulting job would. Only the farm supervisor's
        // process isolation can contain it.
        std::abort();
    if (plan.hangSeconds) {
        // A live-but-stuck job: the process keeps running (and
        // heartbeating, in a farm worker) while the run makes no
        // progress. Sleep in short slices so the injected hang stays
        // interruptible by process-level signals only, like a real
        // wedged computation.
        auto until = std::chrono::steady_clock::now() +
                     std::chrono::seconds(plan.hangSeconds);
        while (std::chrono::steady_clock::now() < until)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));
    }
    return plan;
}

/**
 * The hardware half of the static partitioning pipeline: run the
 * analyzer over the program text and build the per-pc verdict table
 * the classifier consumes. The analysis is deterministic, so live
 * execution, trace replay, batched lanes and farm workers all see the
 * same table; runBatch computes it once per column.
 */
std::vector<core::StaticVerdict>
staticVerdictTable(const prog::Program &program)
{
    analysis::AnalysisResult ar = analysis::analyze(program);
    std::vector<core::StaticVerdict> table(
        program.textSize(), core::StaticVerdict::Ambiguous);
    for (const auto &[idx, v] : ar.verdicts)
        table[idx] = v == analysis::Verdict::Local
                         ? core::StaticVerdict::Local
                     : v == analysis::Verdict::NonLocal
                         ? core::StaticVerdict::NonLocal
                         : core::StaticVerdict::Ambiguous;
    return table;
}

// vm cannot depend on core, so the annotation pass publishes
// vm::XVerdict and the runner translates by numeric value. Pin the
// mirror here, where both headers are visible.
static_assert(static_cast<int>(vm::XVerdict::Ambiguous) ==
                  static_cast<int>(core::StaticVerdict::Ambiguous) &&
              static_cast<int>(vm::XVerdict::Local) ==
                  static_cast<int>(core::StaticVerdict::Local) &&
              static_cast<int>(vm::XVerdict::NonLocal) ==
                  static_cast<int>(core::StaticVerdict::NonLocal),
              "XVerdict must mirror StaticVerdict value-for-value");

/**
 * The ingested-stream counterpart of staticVerdictTable: the
 * annotation pass ran once at ingest (over the real dynamic stream,
 * which the ddlint analysis of the reconstructed text cannot see), so
 * the table is a straight per-value translation.
 */
std::vector<core::StaticVerdict>
externalVerdictTable(const vm::ExternalTrace &xt)
{
    const std::vector<vm::XVerdict> &xv = xt.verdicts();
    std::vector<core::StaticVerdict> table(xv.size());
    for (std::size_t i = 0; i < xv.size(); ++i)
        table[i] = static_cast<core::StaticVerdict>(xv[i]);
    return table;
}

/**
 * Shared up-front validation for RunOptions::externalTrace. An
 * external trace *is* the instruction stream, so it cannot coexist
 * with an explicit replay trace, and there is nothing for the live
 * engine to execute.
 */
void
checkExternalOptions(const RunOptions &opts)
{
    if (!opts.externalTrace)
        return;
    if (opts.engine == Engine::Live)
        raise(ConfigError("engine",
                          "an external trace has no functional "
                          "semantics to execute live; use the replay, "
                          "batched or sampled engine"));
    if (opts.trace)
        raise(ConfigError("trace",
                          "RunOptions::trace and externalTrace are "
                          "mutually exclusive; the external trace "
                          "supplies the replay stream itself"));
}

/** Copy the pipeline's counters into @p r (everything except
 *  cycles/committed/ipc, which the engine owns). */
void
extractCounters(SimResult &r, cpu::Pipeline &pipe)
{
    const vm::StreamStats &ss = pipe.streamStats();
    r.loads = ss.loads.value();
    r.stores = ss.stores.value();
    r.localLoads = ss.localLoads.value();
    r.localStores = ss.localStores.value();
    r.meanDynFrameWords = ss.frameWords.mean();
    r.meanStaticFrameWords = ss.meanStaticFrameWords();

    mem::Hierarchy &h = pipe.hierarchy();
    r.l1Accesses = h.l1().accesses.value();
    r.l1Misses = h.l1().misses.value();
    r.l1MissRate = h.l1().missRate();
    if (const mem::Cache *lvc = h.lvc()) {
        r.lvcAccesses = lvc->accesses.value();
        r.lvcMisses = lvc->misses.value();
        r.lvcMissRate = lvc->missRate();
    }
    r.l2Accesses = h.l2().accesses.value();
    r.memAccesses = h.mainMemory().accesses.value();

    r.lsqForwards = pipe.lsq().loadsForwarded.value();
    if (core::MemQueue *lvaq = pipe.lvaq()) {
        r.lvaqForwards = lvaq->loadsForwarded.value();
        r.lvaqFastForwards = lvaq->loadsFastForwarded.value();
        r.lvaqCombined = lvaq->combinedAccesses.value();
        r.lvaqLoads = lvaq->loadsTotal.value();
        r.lvaqSatisfiedFrac = lvaq->queueSatisfiedFrac();
        r.missteered = lvaq->missteeredAccesses.value() +
                       pipe.lsq().missteeredAccesses.value();
    }
    r.classifierAccuracy = pipe.classifier().accuracy();
    r.classified = pipe.classifier().classified.value();
    r.toLvaq = pipe.classifier().toLvaq.value();
    r.staticDecided = pipe.classifier().staticDecided.value();
}

/**
 * Assemble and attach/write the run manifest for an already-final
 * SimResult. @p engine is the *effective* engine string — "live",
 * "replay" or "sampled"; batched lanes pass "replay" so their
 * manifests stay byte-identical to independent replays.
 */
void
attachManifest(SimResult &r, const prog::Program &program,
               const config::MachineConfig &cfg,
               const RunOptions &opts, cpu::Pipeline &pipe,
               const stats::Group &root, double wallSeconds,
               bool usedTrace, const char *engine)
{
    if (!opts.captureManifest && opts.manifestPath.empty())
        return;
    obs::ManifestInfo mi;
    mi.workload = program.name();
    mi.label = opts.label;
    mi.cfg = cfg;
    mi.maxInsts = opts.maxInsts;
    mi.warmupInsts = opts.warmupInsts;
    mi.traceReplay = usedTrace;
    mi.engine = engine;
    mi.maxCycles = opts.maxCycles;
    mi.maxWallSeconds = opts.maxWallSeconds;
    mi.tracePath = opts.tracePath;
    mi.samplePath = opts.samplePath;
    mi.sampleInterval = opts.sampleInterval;
    mi.cycles = r.cycles;
    mi.committed = r.committed;
    mi.ipc = r.ipc;
    mi.lsqLoads = pipe.lsq().loadsTotal.value();
    mi.lsqStores = pipe.lsq().storesTotal.value();
    if (core::MemQueue *lvaq = pipe.lvaq()) {
        mi.lvaqLoads = lvaq->loadsTotal.value();
        mi.lvaqStores = lvaq->storesTotal.value();
    }
    mi.wallSeconds = opts.canonicalManifest ? 0.0 : wallSeconds;
    if (opts.externalTrace) {
        mi.traceSourceFormat = opts.externalTrace->format();
        mi.traceSourcePath = opts.externalTrace->path();
        mi.traceSourceInsts = opts.externalTrace->instCount();
        mi.traceSourceHints = opts.externalTrace->hintsValid();
    }
    if (r.sampling.active) {
        mi.sampled = true;
        mi.samplingPeriod = r.sampling.period;
        mi.samplingDetail = r.sampling.detail;
        mi.samplingWarmup = r.sampling.warmup;
        mi.samplingWindows = r.sampling.windows;
        mi.samplingDetailInsts = r.sampling.detailInsts;
        mi.samplingDetailCycles = r.sampling.detailCycles;
        mi.samplingIpcCi95 = r.sampling.ipcCi95;
    }
    mi.stats = &root;
    if (opts.captureManifest)
        r.manifestJson = obs::manifestToJson(mi);
    if (!opts.manifestPath.empty())
        obs::writeManifestFile(mi, opts.manifestPath);
}

/**
 * The exact engines: live functional execution or trace replay, both
 * bit-identical (the front end is configuration-oblivious). Handles
 * Engine::Auto/Live/Replay — and Engine::Batched for a single run,
 * where batching degenerates to plain replay (grouping whole columns
 * is SweepRunner's and the farm's job).
 */
SimResult
runExact(const prog::Program &program,
         const config::MachineConfig &cfg, const RunOptions &opts)
{
    checkExternalOptions(opts);
    robust::RunFaultPlan plan = probeFaults(program, cfg);

    cfg.validate();

    // The instruction stream: replay the shared recording when one is
    // supplied (or the engine demands one), otherwise execute
    // functionally. An ingested external trace always replays.
    bool wantReplay =
        opts.engine == Engine::Replay ||
        opts.engine == Engine::Batched || opts.externalTrace ||
        (opts.engine == Engine::Auto && opts.trace);
    std::shared_ptr<const vm::RecordedTrace> trace;
    if (wantReplay) {
        trace = opts.externalTrace
                    ? vm::ExternalTrace::sharedTrace(opts.externalTrace)
                    : opts.trace;
        if (trace) {
            if (&trace->program() != &program)
                panic("RunOptions::trace was recorded from a "
                      "different program");
        } else {
            std::uint64_t cap =
                opts.maxInsts ? opts.maxInsts + opts.warmupInsts : 0;
            trace = std::make_shared<const vm::RecordedTrace>(
                vm::RecordedTrace::record(program, cap));
        }
    }

    stats::Group root(nullptr, "");
    std::optional<vm::Executor> exec;
    std::optional<vm::TraceReplay> replay;
    vm::InstSource *src;
    if (trace)
        src = &replay.emplace(*trace);
    else
        src = &exec.emplace(program);
    cpu::Pipeline pipe(&root, cfg, *src);

    if (cfg.classifier == config::ClassifierKind::StaticHybrid)
        pipe.classifier().setStaticVerdicts(
            opts.externalTrace
                ? externalVerdictTable(*opts.externalTrace)
                : staticVerdictTable(program));

    if (!opts.blackboxPath.empty())
        pipe.enableCommitLog(kBlackboxCommits);
    if (opts.maxCycles != 0 || opts.maxWallSeconds > 0)
        // Armed before warmup: warmup and measurement share budgets.
        pipe.setGuards({opts.maxCycles, opts.maxWallSeconds});
    if (plan.dropWakeupAt != 0)
        pipe.armWakeupDrop(plan.dropWakeupAt);

    std::optional<obs::Sampler> sampler;
    std::optional<obs::PipelineTracer> tracer;
    double wallSeconds = 0.0;
    try {
        if (opts.warmupInsts > 0) {
            pipe.runUntilFetched(opts.warmupInsts);
            pipe.resetStats();
        }

        // Observability attaches after warmup so samples and trace
        // records cover exactly the measured phase.
        if (opts.sampleInterval > 0) {
            sampler.emplace(root, opts.sampleInterval,
                            opts.sampleFilter);
            pipe.setSampler(&*sampler);
        }
        if (!opts.tracePath.empty()) {
            tracer.emplace(opts.tracePath, program.name(),
                           cfg.notation(), opts.label, cfg.robSize);
            pipe.setTracer(&*tracer);
        }

        // maxInsts counts measured instructions, excluding warmup.
        std::uint64_t limit =
            opts.maxInsts ? opts.maxInsts + opts.warmupInsts : 0;
        auto t0 = std::chrono::steady_clock::now();
        pipe.run(limit);
        wallSeconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();

        if (sampler)
            sampler->finish(pipe.committedInsts.value(),
                            pipe.numCycles.value());
        if (tracer)
            tracer->finish();
        pipe.setSampler(nullptr);
        pipe.setTracer(nullptr);
        if (sampler && !opts.samplePath.empty())
            sampler->dumpFile(opts.samplePath);

        if (plan.corruptTrace && !opts.tracePath.empty())
            robust::FaultInjector::active()->corruptFile(
                opts.tracePath);
        if (opts.verifyTrace && !opts.tracePath.empty()) {
            // Full decode self-check; raises TraceCorruptError on any
            // damage between finalize and here.
            obs::TraceReader verify(opts.tracePath);
            obs::TraceRecord rec;
            while (verify.next(rec)) {
            }
        }
    } catch (const SimError &e) {
        // Leave no torn observability outputs behind, write the
        // crash report, and hand the typed error to the supervisor.
        pipe.setSampler(nullptr);
        pipe.setTracer(nullptr);
        if (tracer)
            tracer->abandon();
        if (!opts.blackboxPath.empty())
            emitBlackbox(opts, program, cfg, pipe, root, e);
        throw;
    }

    SimResult r;
    r.program = program.name();
    r.notation = cfg.notation();
    r.cycles = pipe.numCycles.value();
    r.committed = pipe.committedInsts.value();
    r.ipc = pipe.ipc();
    extractCounters(r, pipe);

    if (opts.captureStats)
        r.statsText = stats::toText(root);

    attachManifest(r, program, cfg, opts, pipe, root, wallSeconds,
                   static_cast<bool>(trace),
                   trace ? "replay" : "live");
    return r;
}

/**
 * The sampled engine: SMARTS-style interval sampling. Every
 * SamplingPlan::period instructions the pipeline runs a detailed
 * warm-up followed by a measured window; the rest of the period
 * fast-forwards through the functional source with no timing model at
 * all (stream characterization stays exact — every skipped
 * instruction is still recorded). One persistent pipeline carries the
 * microarchitectural state (caches, classifier history) across gaps,
 * and the per-window warm-up re-fills the in-flight structures before
 * each measurement — the "detailed warm-up" SMARTS variant.
 *
 * IPC is the ratio estimator sum(window insts)/sum(window cycles);
 * the 95% confidence half-width over per-window IPCs lands in
 * SimResult::sampling.ipcCi95. cycles is back-derived from the
 * estimate so the manifest invariant ipc == committed/cycles holds.
 */
SimResult
runSampled(const prog::Program &program,
           const config::MachineConfig &cfg, const RunOptions &opts)
{
    const SamplingPlan &sp = opts.sampling;
    if (sp.period == 0 || sp.detail == 0)
        raise(ConfigError("sampling",
                          "sampled engine needs a non-zero sampling "
                          "period and detail window"));
    // Checked as two subtraction-safe comparisons: the obvious
    // `warmup + detail > period` wraps around for plans near
    // UINT64_MAX and would wave an impossible plan through (the
    // fast-forward length `period - warmup - detail` then underflows
    // to an astronomically long skip).
    if (sp.warmup > sp.period || sp.detail > sp.period - sp.warmup)
        raise(ConfigError(
            "sampling",
            format("sampling warmup (%llu) + detail (%llu) must fit "
                   "within the period (%llu)",
                   static_cast<unsigned long long>(sp.warmup),
                   static_cast<unsigned long long>(sp.detail),
                   static_cast<unsigned long long>(sp.period))));
    if (opts.warmupInsts > 0)
        raise(ConfigError("warmup_insts",
                          "the sampled engine warms up per window "
                          "(SamplingPlan::warmup); a whole-run warmup "
                          "phase does not compose with sampling"));
    if (!opts.tracePath.empty() || opts.verifyTrace)
        raise(ConfigError("trace_path",
                          "a pipeline lifecycle trace of a sampled "
                          "run would cover only the detailed windows; "
                          "use an exact engine"));

    checkExternalOptions(opts);
    robust::RunFaultPlan plan = probeFaults(program, cfg);

    cfg.validate();

    std::shared_ptr<const vm::RecordedTrace> trace =
        opts.externalTrace
            ? vm::ExternalTrace::sharedTrace(opts.externalTrace)
            : opts.trace;
    stats::Group root(nullptr, "");
    std::optional<vm::Executor> exec;
    std::optional<vm::TraceReplay> replay;
    vm::InstSource *src;
    if (trace) {
        if (&trace->program() != &program)
            panic("RunOptions::trace was recorded from a different "
                  "program");
        src = &replay.emplace(*trace);
    } else {
        src = &exec.emplace(program);
    }
    cpu::Pipeline pipe(&root, cfg, *src);

    if (cfg.classifier == config::ClassifierKind::StaticHybrid)
        pipe.classifier().setStaticVerdicts(
            opts.externalTrace
                ? externalVerdictTable(*opts.externalTrace)
                : staticVerdictTable(program));

    if (!opts.blackboxPath.empty())
        pipe.enableCommitLog(kBlackboxCommits);
    if (opts.maxCycles != 0 || opts.maxWallSeconds > 0)
        pipe.setGuards({opts.maxCycles, opts.maxWallSeconds});
    if (plan.dropWakeupAt != 0)
        pipe.armWakeupDrop(plan.dropWakeupAt);

    std::optional<obs::Sampler> sampler;
    const std::uint64_t limit = opts.maxInsts; // 0 = whole program
    std::uint64_t ffSkipped = 0;
    std::uint64_t diSum = 0;
    std::uint64_t dcSum = 0;
    std::vector<double> winIpc;
    double wallSeconds = 0.0;

    // Instructions consumed from the source so far: fetched in detail
    // plus functionally skipped.
    auto consumed = [&] { return pipe.fetchedCount() + ffSkipped; };

    // Deterministic jitter on the fast-forward length (xorshift64,
    // fixed seed): loop workloads have iteration periods that alias
    // with a fixed sampling period, biasing every window onto the
    // same phase offset. Randomising each skip within [skip/2,
    // 3*skip/2) keeps the mean sampling rate while decorrelating
    // window placement from program periodicity. The fixed seed keeps
    // sampled runs reproducible run-to-run.
    std::uint64_t rngState = 0x9e3779b97f4a7c15ull;
    auto nextRand = [&rngState] {
        rngState ^= rngState << 13;
        rngState ^= rngState >> 7;
        rngState ^= rngState << 17;
        return rngState;
    };

    try {
        if (opts.sampleInterval > 0) {
            sampler.emplace(root, opts.sampleInterval,
                            opts.sampleFilter);
            pipe.setSampler(&*sampler);
        }

        auto t0 = std::chrono::steady_clock::now();
        while (!src->halted() && (limit == 0 || consumed() < limit)) {
            // Detailed (but unmeasured) warm-up: re-fill the ROB and
            // queues so the window sees steady state, not a restart
            // transient.
            std::uint64_t w = sp.warmup;
            if (limit)
                w = std::min(w, limit - consumed());
            if (w > 0)
                pipe.runUntilFetched(pipe.fetchedCount() + w);
            if (src->halted() || (limit && consumed() >= limit))
                break;

            // Measured window.
            std::uint64_t d = sp.detail;
            if (limit)
                d = std::min(d, limit - consumed());
            std::uint64_t c0 = pipe.numCycles.value();
            std::uint64_t i0 = pipe.committedInsts.value();
            pipe.runUntilFetched(pipe.fetchedCount() + d);
            std::uint64_t dc = pipe.numCycles.value() - c0;
            std::uint64_t di = pipe.committedInsts.value() - i0;
            if (dc > 0 && di > 0) {
                dcSum += dc;
                diSum += di;
                winIpc.push_back(static_cast<double>(di) / dc);
            }

            // Drain the in-flight window (its cycles are not part of
            // the measurement), then fast-forward the remainder of
            // the period functionally.
            pipe.run(pipe.fetchedCount());
            std::uint64_t skip = sp.period - sp.warmup - sp.detail;
            if (skip > 1)
                skip = skip / 2 + nextRand() % skip;
            if (limit && consumed() < limit)
                skip = std::min(skip, limit - consumed());
            else if (limit)
                skip = 0;
            for (std::uint64_t k = 0; k < skip && !src->halted();
                 ++k) {
                // Functional warming: caches and the region predictor
                // keep tracking the stream, so the next window's
                // warm-up only has to refill the pipeline — not
                // rebuild megabytes of cold tag state.
                pipe.warmFunctional(src->step());
                ++ffSkipped;
            }
        }
        // Drain whatever the final partial window left in flight.
        pipe.run(pipe.fetchedCount());
        wallSeconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();

        if (sampler) {
            sampler->finish(pipe.committedInsts.value(),
                            pipe.numCycles.value());
            pipe.setSampler(nullptr);
            if (!opts.samplePath.empty())
                sampler->dumpFile(opts.samplePath);
        }
    } catch (const SimError &e) {
        pipe.setSampler(nullptr);
        if (!opts.blackboxPath.empty())
            emitBlackbox(opts, program, cfg, pipe, root, e);
        throw;
    }

    const std::uint64_t totalInsts = consumed();
    double ipcEst = dcSum > 0
                        ? static_cast<double>(diSum) / dcSum
                        : pipe.ipc(); // program shorter than a window
    SimResult r;
    r.program = program.name();
    r.notation = cfg.notation();
    r.committed = totalInsts;
    // Integer cycles first, then the IPC recomputed from them, so the
    // manifest invariant ipc == committed/cycles holds exactly.
    r.cycles = ipcEst > 0
                   ? static_cast<std::uint64_t>(
                         std::llround(totalInsts / ipcEst))
                   : pipe.numCycles.value();
    if (r.cycles == 0)
        r.cycles = pipe.numCycles.value();
    r.ipc = r.cycles ? static_cast<double>(r.committed) / r.cycles
                     : 0.0;

    r.sampling.active = true;
    r.sampling.period = sp.period;
    r.sampling.detail = sp.detail;
    r.sampling.warmup = sp.warmup;
    r.sampling.windows = winIpc.size();
    r.sampling.detailInsts = diSum;
    r.sampling.detailCycles = dcSum;
    if (winIpc.size() > 1) {
        double mean = 0.0;
        for (double v : winIpc)
            mean += v;
        mean /= static_cast<double>(winIpc.size());
        double var = 0.0;
        for (double v : winIpc)
            var += (v - mean) * (v - mean);
        var /= static_cast<double>(winIpc.size() - 1);
        r.sampling.ipcCi95 =
            1.96 * std::sqrt(var /
                             static_cast<double>(winIpc.size()));
    }

    extractCounters(r, pipe);
    if (opts.captureStats)
        r.statsText = stats::toText(root);

    attachManifest(r, program, cfg, opts, pipe, root, wallSeconds,
                   static_cast<bool>(trace), "sampled");
    return r;
}

} // namespace

SimResult
run(const prog::Program &program, const config::MachineConfig &cfg,
    const RunOptions &opts)
{
    if (opts.engine == Engine::Sampled)
        return runSampled(program, cfg, opts);
    return runExact(program, cfg, opts);
}

std::vector<SimResult>
runBatch(const prog::Program &program,
         const std::vector<config::MachineConfig> &cfgs,
         const RunOptions &opts)
{
    if (cfgs.empty())
        return {};
    if (!opts.manifestPath.empty() || !opts.tracePath.empty() ||
        !opts.samplePath.empty() || !opts.blackboxPath.empty())
        raise(ConfigError("engine",
                          "runBatch: per-run output paths (manifest, "
                          "trace, sample, blackbox) do not apply to a "
                          "whole column; use captureManifest"));
    if (opts.sampleInterval > 0 || opts.verifyTrace)
        raise(ConfigError("engine",
                          "runBatch: interval sampling and trace "
                          "verification are per-run options"));
    if (opts.maxWallSeconds > 0)
        raise(ConfigError("engine",
                          "runBatch: a wall-clock budget cannot be "
                          "attributed to interleaved lanes; use "
                          "maxCycles"));

    // Fault injection makes a column non-batchable: one lane's
    // injected failure would abort every lane. Refuse up front so the
    // caller falls back to per-point run() calls, which reproduce the
    // injected behavior point by point.
    if (robust::FaultInjector *inj = robust::FaultInjector::active()) {
        for (const config::MachineConfig &cfg : cfgs) {
            robust::RunFaultPlan plan =
                inj->planFor(program.name(), cfg.notation());
            if (plan.failTransient || plan.failPersistent ||
                plan.allocFail || plan.crashProcess ||
                plan.dropWakeupAt != 0 || plan.hangSeconds != 0)
                raise(IoError(
                    program.name(),
                    format("fault injection active for '%s'; batched "
                           "column refused (falling back to per-point "
                           "runs reproduces the injection)",
                           program.name().c_str())));
        }
    }

    checkExternalOptions(opts);
    for (const config::MachineConfig &cfg : cfgs)
        cfg.validate();

    std::shared_ptr<const vm::RecordedTrace> trace =
        opts.externalTrace
            ? vm::ExternalTrace::sharedTrace(opts.externalTrace)
            : opts.trace;
    std::uint64_t limit =
        opts.maxInsts ? opts.maxInsts + opts.warmupInsts : 0;
    if (trace) {
        if (&trace->program() != &program)
            panic("RunOptions::trace was recorded from a different "
                  "program");
    } else {
        trace = std::make_shared<const vm::RecordedTrace>(
            vm::RecordedTrace::record(program, limit));
    }

    // One pipeline per configuration, all fed from one decode ring.
    // Lane order is cfgs order; results come back in the same order.
    struct Lane
    {
        stats::Group root{nullptr, ""};
        vm::BatchedReplay::Cursor src;
        cpu::Pipeline pipe;

        Lane(vm::BatchedReplay &batch, const config::MachineConfig &c)
            : src(batch), pipe(&root, c, src)
        {}
    };

    std::uint64_t margin = 0;
    for (const config::MachineConfig &cfg : cfgs)
        margin = std::max(margin,
                          static_cast<std::uint64_t>(cfg.fetchWidth));

    constexpr std::size_t kRingCap = 4096;
    vm::BatchedReplay batch(*trace, kRingCap);
    const std::uint64_t chunk = batch.capacity() - margin;
    const std::uint64_t total = batch.instCount();

    std::vector<std::unique_ptr<Lane>> lanes;
    lanes.reserve(cfgs.size());
    std::vector<core::StaticVerdict> verdicts;
    bool haveVerdicts = false;
    for (const config::MachineConfig &cfg : cfgs) {
        lanes.push_back(std::make_unique<Lane>(batch, cfg));
        Lane &lane = *lanes.back();
        if (cfg.classifier == config::ClassifierKind::StaticHybrid) {
            // Analyze once per column, copy the table per lane.
            if (!haveVerdicts) {
                verdicts =
                    opts.externalTrace
                        ? externalVerdictTable(*opts.externalTrace)
                        : staticVerdictTable(program);
                haveVerdicts = true;
            }
            lane.pipe.classifier().setStaticVerdicts(
                std::vector<core::StaticVerdict>(verdicts));
        }
        if (opts.maxCycles != 0)
            lane.pipe.setGuards({opts.maxCycles, 0.0});
    }

    // The driver: advance the decode frontier one chunk at a time and
    // bring every lane up to the chunk boundary before decoding more.
    // Per-lane fetch may overshoot a runUntilFetched() target by up to
    // fetchWidth-1, which the decode margin covers; chunk targets are
    // kept at least `margin` short of a fetch limit so no lane ever
    // fetches an instruction a serial run(limit) would not have.
    const std::uint64_t end =
        limit != 0 && limit < total ? limit : total;
    std::uint64_t pos = 0;
    auto chunkTo = [&](std::uint64_t target) {
        while (pos < target) {
            std::uint64_t t = std::min(pos + chunk, target);
            batch.decodeTo(std::min(t + margin, total));
            for (std::unique_ptr<Lane> &lane : lanes)
                lane->pipe.runUntilFetched(t);
            pos = t;
        }
    };

    auto t0 = std::chrono::steady_clock::now();
    if (opts.warmupInsts > 0) {
        // Identical call sequence to the serial path: warm to the
        // fetch target, then zero the stats with the machine hot.
        chunkTo(std::min(opts.warmupInsts, total));
        for (std::unique_ptr<Lane> &lane : lanes)
            lane->pipe.resetStats();
    }
    while (pos + chunk + margin <= end) {
        std::uint64_t t = pos + chunk;
        batch.decodeTo(std::min(t + margin, total));
        for (std::unique_ptr<Lane> &lane : lanes)
            lane->pipe.runUntilFetched(t);
        pos = t;
    }
    // Final stretch: run(limit) stops fetch exactly at the limit (no
    // overshoot) and drains each lane completely.
    batch.decodeTo(end);
    for (std::unique_ptr<Lane> &lane : lanes)
        lane->pipe.run(limit);
    double wallSeconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count();

    std::vector<SimResult> results;
    results.reserve(lanes.size());
    for (std::size_t i = 0; i < lanes.size(); ++i) {
        Lane &lane = *lanes[i];
        SimResult r;
        r.program = program.name();
        r.notation = cfgs[i].notation();
        r.cycles = lane.pipe.numCycles.value();
        r.committed = lane.pipe.committedInsts.value();
        r.ipc = lane.pipe.ipc();
        extractCounters(r, lane.pipe);
        if (opts.captureStats)
            r.statsText = stats::toText(lane.root);
        attachManifest(r, program, cfgs[i], opts, lane.pipe,
                       lane.root, wallSeconds, true, "replay");
        results.push_back(std::move(r));
    }
    return results;
}

} // namespace ddsim::sim
