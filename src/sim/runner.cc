#include "sim/runner.hh"

#include "analysis/analyzer.hh"
#include "cpu/pipeline.hh"
#include "isa/disasm.hh"
#include "obs/blackbox.hh"
#include "obs/manifest.hh"
#include "obs/pipeline_trace.hh"
#include "obs/sampler.hh"
#include "robust/fault_inject.hh"
#include "stats/formatter.hh"
#include "util/log.hh"
#include "vm/executor.hh"

#include <chrono>
#include <cstdlib>
#include <new>
#include <optional>

namespace ddsim::sim {

namespace {

/** Number of committed instructions the crash report retains. */
constexpr std::size_t kBlackboxCommits = 32;

/**
 * Flatten the dying run's state into a BlackboxInfo and write it.
 * Never throws: a failing crash report must not mask the crash.
 */
void
emitBlackbox(const RunOptions &opts, const prog::Program &program,
             const config::MachineConfig &cfg, cpu::Pipeline &pipe,
             const stats::Group &root, const SimError &e)
{
    obs::BlackboxInfo bi;
    bi.workload = program.name();
    bi.label = opts.label;
    bi.cfg = cfg;
    bi.maxInsts = opts.maxInsts;
    bi.warmupInsts = opts.warmupInsts;
    bi.traceReplay = static_cast<bool>(opts.trace);
    bi.maxCycles = opts.maxCycles;
    bi.maxWallSeconds = opts.maxWallSeconds;

    bi.errorKind = e.kind();
    bi.errorMessage = e.what();
    bi.errorTransient = e.transient();
    bi.errorContext = e.context();

    cpu::OccupancySnapshot s = pipe.snapshotOccupancy();
    bi.cycle = s.cycle;
    bi.lastCommitCycle = s.lastCommitCycle;
    bi.robOccupancy = s.robOccupancy;
    bi.robSize = s.robSize;
    bi.lsqOccupancy = s.lsqOccupancy;
    bi.lsqSize = s.lsqSize;
    bi.lvaqOccupancy = s.lvaqOccupancy;
    bi.lvaqSize = s.lvaqSize;
    bi.fetchQueue = s.fetchQueue;
    bi.fetched = s.fetched;
    bi.committed = s.committed;
    for (const cpu::CommittedRecord &c : pipe.commitLog())
        bi.lastCommits.push_back({c.seq, c.pcIdx,
                                  isa::disassemble(c.inst), c.cycle});
    bi.stats = &root;

    try {
        obs::writeBlackboxFile(bi, opts.blackboxPath);
    } catch (const std::exception &we) {
        warn("could not write black-box report '%s': %s",
             opts.blackboxPath.c_str(), we.what());
    }
}

} // namespace

SimResult
run(const prog::Program &program, const config::MachineConfig &cfg,
    const RunOptions &opts)
{
    // Fault-injection probe: resolved once per run attempt, before
    // any machine state exists. Null injector (the normal case) costs
    // one atomic load.
    robust::RunFaultPlan plan;
    if (robust::FaultInjector *inj = robust::FaultInjector::active())
        plan = inj->planFor(program.name(), cfg.notation());
    if (plan.failTransient)
        raise(IoError(program.name(),
                      format("injected transient fault for '%s'",
                             program.name().c_str())));
    if (plan.failPersistent)
        raise(ProgramError(
            format("injected persistent fault for '%s'",
                   program.name().c_str())));
    if (plan.allocFail)
        throw std::bad_alloc{};
    if (plan.crashProcess)
        // The injected catastrophe: takes the whole process down, the
        // way a real segfaulting job would. Only the farm supervisor's
        // process isolation can contain it.
        std::abort();

    cfg.validate();

    stats::Group root(nullptr, "");
    // The instruction stream: replay the shared recording when one is
    // supplied, otherwise execute functionally.
    std::optional<vm::Executor> exec;
    std::optional<vm::TraceReplay> replay;
    vm::InstSource *src;
    if (opts.trace) {
        if (&opts.trace->program() != &program)
            panic("RunOptions::trace was recorded from a different "
                  "program");
        src = &replay.emplace(*opts.trace);
    } else {
        src = &exec.emplace(program);
    }
    cpu::Pipeline pipe(&root, cfg, *src);

    if (cfg.classifier == config::ClassifierKind::StaticHybrid) {
        // The hardware half of the static partitioning pipeline: run
        // the analyzer over the program text and hand its per-pc
        // verdicts to the classifier. The analysis is deterministic,
        // so live execution, trace replay and farm workers all see
        // the same table.
        analysis::AnalysisResult ar = analysis::analyze(program);
        std::vector<core::StaticVerdict> table(
            program.textSize(), core::StaticVerdict::Ambiguous);
        for (const auto &[idx, v] : ar.verdicts)
            table[idx] = v == analysis::Verdict::Local
                             ? core::StaticVerdict::Local
                         : v == analysis::Verdict::NonLocal
                             ? core::StaticVerdict::NonLocal
                             : core::StaticVerdict::Ambiguous;
        pipe.classifier().setStaticVerdicts(std::move(table));
    }

    if (!opts.blackboxPath.empty())
        pipe.enableCommitLog(kBlackboxCommits);
    if (opts.maxCycles != 0 || opts.maxWallSeconds > 0)
        // Armed before warmup: warmup and measurement share budgets.
        pipe.setGuards({opts.maxCycles, opts.maxWallSeconds});
    if (plan.dropWakeupAt != 0)
        pipe.armWakeupDrop(plan.dropWakeupAt);

    std::optional<obs::Sampler> sampler;
    std::optional<obs::PipelineTracer> tracer;
    double wallSeconds = 0.0;
    try {
        if (opts.warmupInsts > 0) {
            pipe.runUntilFetched(opts.warmupInsts);
            pipe.resetStats();
        }

        // Observability attaches after warmup so samples and trace
        // records cover exactly the measured phase.
        if (opts.sampleInterval > 0) {
            sampler.emplace(root, opts.sampleInterval,
                            opts.sampleFilter);
            pipe.setSampler(&*sampler);
        }
        if (!opts.tracePath.empty()) {
            tracer.emplace(opts.tracePath, program.name(),
                           cfg.notation(), opts.label, cfg.robSize);
            pipe.setTracer(&*tracer);
        }

        // maxInsts counts measured instructions, excluding warmup.
        std::uint64_t limit =
            opts.maxInsts ? opts.maxInsts + opts.warmupInsts : 0;
        auto t0 = std::chrono::steady_clock::now();
        pipe.run(limit);
        wallSeconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();

        if (sampler)
            sampler->finish(pipe.committedInsts.value(),
                            pipe.numCycles.value());
        if (tracer)
            tracer->finish();
        pipe.setSampler(nullptr);
        pipe.setTracer(nullptr);
        if (sampler && !opts.samplePath.empty())
            sampler->dumpFile(opts.samplePath);

        if (plan.corruptTrace && !opts.tracePath.empty())
            robust::FaultInjector::active()->corruptFile(
                opts.tracePath);
        if (opts.verifyTrace && !opts.tracePath.empty()) {
            // Full decode self-check; raises TraceCorruptError on any
            // damage between finalize and here.
            obs::TraceReader verify(opts.tracePath);
            obs::TraceRecord rec;
            while (verify.next(rec)) {
            }
        }
    } catch (const SimError &e) {
        // Leave no torn observability outputs behind, write the
        // crash report, and hand the typed error to the supervisor.
        pipe.setSampler(nullptr);
        pipe.setTracer(nullptr);
        if (tracer)
            tracer->abandon();
        if (!opts.blackboxPath.empty())
            emitBlackbox(opts, program, cfg, pipe, root, e);
        throw;
    }

    SimResult r;
    r.program = program.name();
    r.notation = cfg.notation();
    r.cycles = pipe.numCycles.value();
    r.committed = pipe.committedInsts.value();
    r.ipc = pipe.ipc();

    const vm::StreamStats &ss = pipe.streamStats();
    r.loads = ss.loads.value();
    r.stores = ss.stores.value();
    r.localLoads = ss.localLoads.value();
    r.localStores = ss.localStores.value();
    r.meanDynFrameWords = ss.frameWords.mean();
    r.meanStaticFrameWords = ss.meanStaticFrameWords();

    mem::Hierarchy &h = pipe.hierarchy();
    r.l1Accesses = h.l1().accesses.value();
    r.l1Misses = h.l1().misses.value();
    r.l1MissRate = h.l1().missRate();
    if (const mem::Cache *lvc = h.lvc()) {
        r.lvcAccesses = lvc->accesses.value();
        r.lvcMisses = lvc->misses.value();
        r.lvcMissRate = lvc->missRate();
    }
    r.l2Accesses = h.l2().accesses.value();
    r.memAccesses = h.mainMemory().accesses.value();

    r.lsqForwards = pipe.lsq().loadsForwarded.value();
    if (core::MemQueue *lvaq = pipe.lvaq()) {
        r.lvaqForwards = lvaq->loadsForwarded.value();
        r.lvaqFastForwards = lvaq->loadsFastForwarded.value();
        r.lvaqCombined = lvaq->combinedAccesses.value();
        r.lvaqLoads = lvaq->loadsTotal.value();
        r.lvaqSatisfiedFrac = lvaq->queueSatisfiedFrac();
        r.missteered = lvaq->missteeredAccesses.value() +
                       pipe.lsq().missteeredAccesses.value();
    }
    r.classifierAccuracy = pipe.classifier().accuracy();
    r.classified = pipe.classifier().classified.value();
    r.toLvaq = pipe.classifier().toLvaq.value();
    r.staticDecided = pipe.classifier().staticDecided.value();

    if (opts.captureStats)
        r.statsText = stats::toText(root);

    if (opts.captureManifest || !opts.manifestPath.empty()) {
        obs::ManifestInfo mi;
        mi.workload = program.name();
        mi.label = opts.label;
        mi.cfg = cfg;
        mi.maxInsts = opts.maxInsts;
        mi.warmupInsts = opts.warmupInsts;
        mi.traceReplay = static_cast<bool>(opts.trace);
        mi.maxCycles = opts.maxCycles;
        mi.maxWallSeconds = opts.maxWallSeconds;
        mi.tracePath = opts.tracePath;
        mi.samplePath = opts.samplePath;
        mi.sampleInterval = opts.sampleInterval;
        mi.cycles = r.cycles;
        mi.committed = r.committed;
        mi.ipc = r.ipc;
        mi.lsqLoads = pipe.lsq().loadsTotal.value();
        mi.lsqStores = pipe.lsq().storesTotal.value();
        if (core::MemQueue *lvaq = pipe.lvaq()) {
            mi.lvaqLoads = lvaq->loadsTotal.value();
            mi.lvaqStores = lvaq->storesTotal.value();
        }
        mi.wallSeconds = opts.canonicalManifest ? 0.0 : wallSeconds;
        mi.stats = &root;
        if (opts.captureManifest)
            r.manifestJson = obs::manifestToJson(mi);
        if (!opts.manifestPath.empty())
            obs::writeManifestFile(mi, opts.manifestPath);
    }
    return r;
}

} // namespace ddsim::sim
