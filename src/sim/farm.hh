/**
 * @file
 * The sweep farm: durable, sharded, resumable multi-process execution
 * of a ddsim-grid-v1 parameter grid, layered on the same sim::run /
 * retry / quarantine machinery sim::SweepRunner uses in-process.
 *
 * A grid is persisted as a *spool* directory — one atomic job-spec
 * file per grid point — and executed by worker processes that claim
 * jobs via atomic rename(2):
 *
 *   <spool>/
 *     grid.json                        the full ddsim-grid-v1 spec
 *     jobs/job-000012.s003.json        pending point 12, shard 3
 *     claims/job-000012.s003.w1.json   lease doc held by worker "w1"
 *     results/job-000012.json          ddsim-job-result-v2 record
 *     results/job-000012.manifest.json raw per-run manifest bytes
 *     blackbox/job-000012.json         crash report of a failed attempt
 *     corrupt/...                      quarantined damaged artifacts
 *
 * Sharding is a locality hint, not a partition: each worker prefers
 * job files carrying its shard tag and *steals* from any other shard
 * once its own is drained, so an unlucky shard never strands the
 * farm. Because a claim is a rename, a job can never run twice
 * concurrently and can never be lost: it exists in exactly one of
 * jobs/, claims/ or (by id) results/ at any instant.
 *
 * Leases: immediately after the claim rename, the worker overwrites
 * the claim file with a ddsim-claim-v1 lease document (worker id,
 * pid, acquisition time) and refreshes its mtime from a heartbeat
 * thread while the job runs. The supervisor reads heartbeat age as
 * liveness: a claim whose mtime goes stale past the lease interval
 * belongs to a wedged worker — the worker is SIGKILLed and the point
 * reclaimed — and a claim older than the per-job wall budget marks a
 * truly hung job, which is quarantined rather than rerun forever.
 *
 * Integrity: spooled job specs and result records carry a CRC32 seal
 * over their payload, and each result records the CRC32 of its
 * manifest bytes. Artifacts are verified at claim, resume and merge
 * time; anything damaged is moved to corrupt/ and its grid point
 * re-run from grid.json (the source of truth), never spliced into a
 * merged manifest.
 *
 * Crash isolation: workers are separate processes. A job that
 * segfaults kills only its worker; the supervisor observes the
 * signaled exit, requeues the dead worker's claims, respawns a
 * replacement, and — after a bounded number of crashes at the same
 * point — quarantines that job with a "crash" error instead of
 * retrying forever. Workers asked to stop (SIGTERM) drain
 * gracefully: the in-flight point completes and persists, no claim
 * is stranded, and the process exits cleanly.
 *
 * Resume: every artifact is written atomically through io::vfs()
 * (write, fsync, rename, directory fsync — each step
 * fault-injectable), so an interrupted farm (SIGKILL, power loss,
 * any I/O op) leaves a spool from which requeueIncomplete()
 * re-derives exactly the missing and (optionally) quarantined
 * points; re-running those and merging yields a sweep manifest
 * byte-identical to an uninterrupted run. Jobs request canonical
 * manifests (RunOptions::canonicalManifest), so the merged document
 * is also byte-identical to a single-process SweepRunner reference
 * over the same grid — the farm is, observably, just a faster
 * SweepRunner that survives crashes.
 */

#ifndef DDSIM_SIM_FARM_HH_
#define DDSIM_SIM_FARM_HH_

#include <cstdint>
#include <string>
#include <vector>

#include <sys/types.h>

#include "sim/grid_spec.hh"
#include "sim/sweep.hh"

namespace ddsim::sim::farm {

/** Schema stamped on spooled per-job spec files (v2: CRC32 seal). */
inline constexpr const char *kJobSchema = "ddsim-job-v2";
/** Schema stamped on per-job result records (v2: CRC32 seal over the
 *  record payload plus the CRC32 of the captured manifest bytes). */
inline constexpr const char *kJobResultSchema = "ddsim-job-result-v2";
/** Schema stamped on the lease document a worker leaves in claims/. */
inline constexpr const char *kClaimSchema = "ddsim-claim-v1";
/** Schema stamped on the merged farm (shard-provenance) manifest. */
inline constexpr const char *kFarmManifestSchema =
    "ddsim-farm-manifest-v1";

/** Path arithmetic for one spool directory. */
struct Spool
{
    explicit Spool(std::string root) : root(std::move(root)) {}

    std::string root;

    std::string gridPath() const { return root + "/grid.json"; }
    std::string jobsDir() const { return root + "/jobs"; }
    std::string claimsDir() const { return root + "/claims"; }
    std::string resultsDir() const { return root + "/results"; }
    std::string blackboxDir() const { return root + "/blackbox"; }
    /** Quarantine for artifacts that failed CRC verification. */
    std::string corruptDir() const { return root + "/corrupt"; }

    /** "job-000012.s003.json" */
    static std::string jobFileName(std::uint64_t id, int shard);
    /** "job-000012.s003.w1.json" */
    static std::string claimFileName(std::uint64_t id, int shard,
                                     const std::string &worker);
    /** "job-000012.json" */
    static std::string resultFileName(std::uint64_t id);
    /** "job-000012.manifest.json" */
    static std::string manifestFileName(std::uint64_t id);
    static std::string blackboxFileName(std::uint64_t id);
};

/** Parsed spooled-file name (job or claim). */
struct SpoolEntry
{
    std::uint64_t id = 0;
    int shard = 0;
    std::string worker; ///< Empty for a pending job file.
};

/** Parse a jobs/ or claims/ file name; false if it is not one. */
bool parseSpoolName(const std::string &name, SpoolEntry &out);

/**
 * Create (or re-create) the spool for @p spec under @p root: write
 * grid.json and one job file per point, assigned round-robin to
 * @p numShards shards. Any stale spool content under @p root is an
 * error — spooling is for fresh directories only.
 */
void spoolGrid(const GridSpec &spec, const std::string &root,
               int numShards);

/** One parsed ddsim-job-result-v2 record. */
struct JobRecord
{
    std::uint64_t id = 0;
    JobStatus status = JobStatus::Ok;
    int attempts = 1;
    ErrorClass error;       ///< Empty kind = never failed.
    std::string worker;     ///< Who produced the result.
    int shard = 0;          ///< The spool shard the job came from.
    double wallSeconds = 0; ///< Worker-side wall clock (provenance).
    /** CRC32 (8 hex chars) of the sibling manifest file's bytes;
     *  empty for quarantined points, which have no manifest. */
    std::string manifestCrc;
};

/**
 * Parse one result record, verifying its schema and CRC32 seal.
 * @throws CorruptArtifactError when the file fails verification.
 */
JobRecord jobRecordFromFile(const std::string &path);

/** One in-flight claim, as a spool scan saw it. */
struct ClaimInfo
{
    std::uint64_t id = 0;
    int shard = 0;
    std::string worker;
    pid_t pid = 0;            ///< 0 until the lease document lands.
    double heartbeatAge = -1; ///< Claim mtime age in seconds (-1 n/a).
    double jobAge = -1;       ///< Seconds since acquisition (-1 n/a).
};

/** What a spool scan found. */
struct SpoolStatus
{
    std::size_t total = 0;       ///< Grid points (from grid.json).
    std::size_t pending = 0;     ///< Job files awaiting a claim.
    std::size_t claimed = 0;     ///< Claims without a result yet.
    std::size_t ok = 0;
    std::size_t recovered = 0;
    std::size_t quarantined = 0;
    /** Results whose record or manifest failed CRC verification. */
    std::size_t corrupt = 0;
    int shards = 1;              ///< Distinct shard tags spooled.
    /** Lease state per in-flight claim (ddsweep status shows it). */
    std::vector<ClaimInfo> leases;

    std::size_t done() const { return ok + recovered + quarantined; }
    bool complete() const { return done() == total; }
};

SpoolStatus scanSpool(const std::string &root);

/**
 * Verify every checksummed artifact in the spool: result records
 * against their CRC32 seal, manifests against the CRC32 their record
 * promised, pending job specs against theirs. Damaged artifacts are
 * moved to corrupt/ (so the point re-runs on resume) and counted.
 * Run only while no worker is active.
 * @return the number of artifacts quarantined.
 */
std::size_t verifySpoolIntegrity(const std::string &root);

/**
 * Resume bookkeeping (run only while no worker is active): every grid
 * point without a result — including points stranded in claims/ by
 * dead workers, points whose job file vanished mid-spool, and (when
 * @p retryQuarantined) points previously quarantined — gets a fresh
 * job file; stale claims and retried quarantine records are removed.
 * @return the number of points requeued.
 */
std::size_t requeueIncomplete(const std::string &root,
                              bool retryQuarantined);

/** Knobs for one worker's claim-run loop. */
struct WorkerOptions
{
    std::string workerId = "w0"; ///< Unique; no '.', '/' or spaces.
    /** Preferred shard; -1 = no preference (pure stealing). */
    int shard = -1;
    RetryPolicy retry;
    /** Per-job run guards (0 = unlimited). */
    std::uint64_t cycleBudget = 0;
    double wallBudget = 0.0;
    /** Byte budget for the worker's shared trace cache (LRU eviction;
     *  0 = unlimited). See TraceCache::setByteBudget. */
    std::size_t traceCacheBytes = 0;
    /** Stop after this many jobs (0 = drain the spool). Tests use
     *  this to interrupt a farm at a known point. */
    std::size_t maxJobs = 0;
    /** Exit before the next claim if our parent is no longer this
     *  pid (the supervisor died); 0 disables the check. */
    pid_t exitIfReparented = 0;
    /** Lease interval the supervisor enforces. When > 0, a heartbeat
     *  thread refreshes the mtime of every held claim at a quarter of
     *  this period so the lease never goes stale while the worker is
     *  alive. 0 = no heartbeat (single-process and test use). */
    double leaseSecs = 0.0;
    /** Install a SIGTERM handler that finishes the in-flight point,
     *  persists its result, and exits cleanly instead of dying with a
     *  stranded claim. Only the ddsweep worker entry point sets this —
     *  library embedders keep their own signal disposition. */
    bool gracefulDrain = false;
    /** Test hook: SIGSTOP ourselves right after writing the first
     *  lease document, simulating a wedged (not dead) worker whose
     *  heartbeat stops. The lease-expiry smoke test uses this. */
    bool stallAfterFirstClaim = false;
};

/**
 * The worker: claim spooled jobs (own shard first, then steal), run
 * each through sim::run with SweepRunner's retry/quarantine policy,
 * write the manifest and result record atomically, and loop until the
 * spool offers nothing claimable. Traces and programs are cached per
 * worker process, so a worker amortizes functional execution across
 * every grid point of a program exactly like SweepRunner does.
 *
 * Column batching: when a claimed job requests Engine::Batched, the
 * worker additionally claims every still-pending job of the same
 * column (same program, annotation and instruction caps) and runs the
 * whole set through sim::runBatch — one trace pass for N configs,
 * results byte-identical to per-point runs. If the batch fails for
 * any reason, every claimed point falls back to the ordinary
 * per-point retry path, reproducing failures point-by-point.
 *
 * Per-job failures never propagate — they become quarantined result
 * records; only spool-level I/O failures raise.
 *
 * @return the number of jobs this worker completed.
 */
std::size_t runWorker(const std::string &root,
                      const WorkerOptions &opts);

/**
 * Merge a complete spool into (a) @p mergedPath — a
 * ddsim-sweep-manifest-v1 document byte-identical to what a
 * single-process SweepRunner::collectOutcome over the same grid would
 * produce, and (b) @p farmManifestPath — a ddsim-farm-manifest-v1
 * document recording shard/worker provenance per job (empty path =
 * skip). Every record and manifest is CRC-verified before splicing;
 * damaged artifacts are moved to corrupt/ and CorruptArtifactError
 * raised (resume the spool to re-run those points). Raises FatalError
 * when any grid point lacks a result.
 */
void mergeSpool(const std::string &root, const std::string &mergedPath,
                const std::string &farmManifestPath);

/** Supervisor policy. */
struct SupervisorOptions
{
    /** The ddsweep binary to exec in worker mode. */
    std::string exePath;
    int workers = 2;
    /** Total worker respawns allowed across the farm. */
    int respawnLimit = 8;
    /** Crashes at one grid point before it is crash-quarantined. */
    int crashQuarantineAfter = 2;
    /** Lease interval: a claim whose heartbeat mtime is older than
     *  this belongs to a wedged worker — the worker is SIGKILLed and
     *  the point reclaimed (crash-quarantined after
     *  crashQuarantineAfter losses). 0 disables lease expiry. Workers
     *  must be passed the same value (--lease-secs) so they heartbeat
     *  faster than the supervisor expires. */
    double leaseSecs = 0.0;
    /** Per-job wall-clock watchdog: a claim held longer than this is
     *  a hung job — the worker is SIGKILLed and the point quarantined
     *  with a "hung" error. 0 disables the watchdog. */
    double jobWallSecs = 0.0;
    /** Extra argv forwarded verbatim to every worker (budgets,
     *  fault-injection flags, ...). */
    std::vector<std::string> workerArgs;
};

/**
 * Drive worker processes over the spool until it is complete: spawn
 * @p opts.workers workers (one preferred shard each), respawn workers
 * that die abnormally, requeue the claims a dead worker stranded, and
 * crash-quarantine any point that keeps killing its workers. Raises
 * FatalError if the farm cannot complete within the respawn budget.
 */
SpoolStatus superviseFarm(const std::string &root,
                          const SupervisorOptions &opts);

/**
 * The uninterrupted single-process reference: run @p spec through one
 * SweepRunner (canonical manifests, shared traces) and, when
 * @p mergedPath is non-empty, write the sweep manifest there. This is
 * the document a farm run's merged manifest must be byte-identical
 * to.
 */
SweepOutcome runSerial(const GridSpec &spec, unsigned workers,
                       const RetryPolicy &retry,
                       std::uint64_t cycleBudget, double wallBudget,
                       const std::string &mergedPath,
                       std::size_t traceCacheBytes = 0);

} // namespace ddsim::sim::farm

#endif // DDSIM_SIM_FARM_HH_
