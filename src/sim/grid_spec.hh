/**
 * @file
 * "ddsim-grid-v1": the portable description of a sweep grid. Every
 * figure bench can export the exact job list it would run as one JSON
 * document (bench --emit-grid=<f>), and the sweep farm (sim/farm.hh,
 * tools/ddsweep) can execute that document anywhere — in-process, or
 * spooled across worker processes — reproducing the bench's results
 * bit-for-bit.
 *
 * A grid point is fully self-describing: registry workload name, the
 * resolved generator scale and seed (not the bench's --scale factor,
 * so the program rebuilt later is byte-identical), per-job RunOptions
 * that affect timing (instruction cap, warmup), and the complete
 * MachineConfig. Nothing in the spec depends on the machine that
 * wrote it.
 */

#ifndef DDSIM_SIM_GRID_SPEC_HH_
#define DDSIM_SIM_GRID_SPEC_HH_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "config/machine_config.hh"
#include "prog/program.hh"
#include "sim/runner.hh"

namespace ddsim {
class JsonValue;
class JsonWriter;
}

namespace ddsim::sim {

/** Schema identifier stamped on grid-spec documents. */
inline constexpr const char *kGridSchema = "ddsim-grid-v1";

/** One self-describing grid point. */
struct GridJob
{
    /** Dense job id; equals the job's index in GridSpec::jobs and the
     *  point's submission index in an in-process sweep. */
    std::uint64_t id = 0;
    /** Workload registry short name ("li", "gcc", ...). When
     *  tracePath is set this is a display name only (the trace's
     *  program name) and need not exist in the registry. */
    std::string workload;
    /**
     * Ingest this ddsim-xtrace-v1 file instead of building a registry
     * workload ("" = none, the default — pre-existing specs stay
     * byte-identical). The trace supplies the program, the dynamic
     * stream, and the annotation verdicts; scale/seed are recorded
     * for provenance but unused, and annotate must be empty (hints
     * are burned at conversion time, not rebuild time).
     */
    std::string tracePath;
    /** Resolved WorkloadParams::scale (not a multiplier). */
    std::uint64_t scale = 1;
    /** WorkloadParams::seed. */
    std::uint64_t seed = 0;
    /** RunOptions::maxInsts / warmupInsts for this point. */
    std::uint64_t maxInsts = 0;
    std::uint64_t warmupInsts = 0;
    /**
     * Static-partitioning pass applied to the program after building:
     * "" (none, the default) or a HintPolicy name ("safe",
     * "speculative", "hybrid"). buildGridProgram re-runs the analyzer
     * and rewrites the local-hint bits deterministically, so a farm
     * worker reproduces an annotating bench's program bit-for-bit.
     */
    std::string annotate;
    /**
     * Execution engine for this point (RunOptions::engine). Auto — the
     * default, and the only value specs written before engines existed
     * can hold — lets the executor pick (farm workers and SweepRunner
     * share replay traces either way). Batched opts the point into
     * column batching; Sampled runs the SMARTS plan below.
     */
    Engine engine = Engine::Auto;
    /** Sampled-engine plan; meaningful only when engine == Sampled. */
    SamplingPlan sampling;
    config::MachineConfig cfg;
};

/** A whole grid: title plus dense, id-ordered jobs. */
struct GridSpec
{
    std::string title;
    std::vector<GridJob> jobs;

    /**
     * Structural validation: non-empty, ids dense 0..n-1 in order,
     * workloads known to the registry, configs validate(). Raises the
     * matching typed error on the first violation.
     */
    void validate() const;

    void writeTo(std::ostream &os) const;
    /** Atomic write; raises IoError. */
    void writeFile(const std::string &path) const;

    /** Parse + validate; raises JsonParseError / FatalError. */
    static GridSpec fromFile(const std::string &path);
    static GridSpec fromJson(const JsonValue &doc);
};

/** Emit one GridJob as a JSON object in value position. */
void writeGridJobJson(JsonWriter &w, const GridJob &job);

/** Parse one GridJob object (the inverse of writeGridJobJson). */
GridJob gridJobFromJson(const JsonValue &v);

/**
 * Parse a MachineConfig from the JSON object layout that
 * obs::writeMachineConfigJson emits (the same block run manifests
 * embed). The "notation" field is cross-checked against the rebuilt
 * config; a mismatch means the spec was hand-edited inconsistently
 * and raises ConfigError.
 */
config::MachineConfig machineConfigFromJson(const JsonValue &v);

/**
 * Build the grid job's program: registry factory at the spec's scale
 * and seed. Deterministic — every call (any process, any host) yields
 * the same program.
 */
prog::Program buildGridProgram(const GridJob &job);

} // namespace ddsim::sim

#endif // DDSIM_SIM_GRID_SPEC_HH_
