#include "sim/grid_spec.hh"

#include <ostream>
#include <sstream>

#include "analysis/annotate.hh"
#include "obs/manifest.hh"
#include "util/atomic_file.hh"
#include "util/json.hh"
#include "util/json_parse.hh"
#include "util/log.hh"
#include "workloads/common.hh"

namespace ddsim::sim {

namespace {

config::ClassifierKind
classifierFromName(const std::string &name)
{
    using config::ClassifierKind;
    for (ClassifierKind k :
         {ClassifierKind::None, ClassifierKind::Annotation,
          ClassifierKind::SpBase, ClassifierKind::Oracle,
          ClassifierKind::Predictor, ClassifierKind::Replicate,
          ClassifierKind::StaticHybrid}) {
        if (name == config::classifierName(k))
            return k;
    }
    raise(ConfigError("classifier",
                      format("unknown classifier '%s' in grid spec",
                             name.c_str())));
}

config::CacheParams
cacheParamsFromJson(const JsonValue &v, const std::string &what)
{
    config::CacheParams c;
    c.sizeBytes = static_cast<std::uint32_t>(
        v.at("size_bytes", what).asUint(what + ".size_bytes"));
    c.assoc = static_cast<std::uint32_t>(
        v.at("assoc", what).asUint(what + ".assoc"));
    c.lineBytes = static_cast<std::uint32_t>(
        v.at("line_bytes", what).asUint(what + ".line_bytes"));
    c.hitLatency = v.at("hit_latency", what)
                       .asUint(what + ".hit_latency");
    c.ports = static_cast<int>(
        v.at("ports", what).asInt(what + ".ports"));
    c.banks = static_cast<int>(
        v.at("banks", what).asInt(what + ".banks"));
    c.mshrs = static_cast<int>(
        v.at("mshrs", what).asInt(what + ".mshrs"));
    return c;
}

} // namespace

config::MachineConfig
machineConfigFromJson(const JsonValue &v)
{
    const std::string w = "config";
    config::MachineConfig cfg;
    cfg.fetchWidth = static_cast<int>(
        v.at("fetch_width", w).asInt(w + ".fetch_width"));
    cfg.issueWidth = static_cast<int>(
        v.at("issue_width", w).asInt(w + ".issue_width"));
    cfg.commitWidth = static_cast<int>(
        v.at("commit_width", w).asInt(w + ".commit_width"));
    cfg.robSize = static_cast<int>(
        v.at("rob_size", w).asInt(w + ".rob_size"));
    cfg.lsqSize = static_cast<int>(
        v.at("lsq_size", w).asInt(w + ".lsq_size"));
    cfg.lvaqSize = static_cast<int>(
        v.at("lvaq_size", w).asInt(w + ".lvaq_size"));
    cfg.numIntAlu = static_cast<int>(
        v.at("num_int_alu", w).asInt(w + ".num_int_alu"));
    cfg.numFpAlu = static_cast<int>(
        v.at("num_fp_alu", w).asInt(w + ".num_fp_alu"));
    cfg.numIntMultDiv = static_cast<int>(
        v.at("num_int_mult_div", w).asInt(w + ".num_int_mult_div"));
    cfg.numFpMultDiv = static_cast<int>(
        v.at("num_fp_mult_div", w).asInt(w + ".num_fp_mult_div"));
    cfg.l1 = cacheParamsFromJson(v.at("l1", w), w + ".l1");
    cfg.lvcEnabled = v.at("lvc_enabled", w).asBool(w + ".lvc_enabled");
    cfg.lvc = cacheParamsFromJson(v.at("lvc", w), w + ".lvc");
    cfg.l2 = cacheParamsFromJson(v.at("l2", w), w + ".l2");
    cfg.memLatency = v.at("mem_latency", w).asUint(w + ".mem_latency");
    cfg.classifier = classifierFromName(
        v.at("classifier", w).asString(w + ".classifier"));
    cfg.fastForward =
        v.at("fast_forward", w).asBool(w + ".fast_forward");
    cfg.combining = static_cast<int>(
        v.at("combining", w).asInt(w + ".combining"));
    cfg.forwardLatency =
        v.at("forward_latency", w).asUint(w + ".forward_latency");
    cfg.mispredictPenalty = v.at("mispredict_penalty", w)
                                .asUint(w + ".mispredict_penalty");

    // The notation in the document is redundant with the fields above;
    // a mismatch means someone edited one without the other.
    const std::string &notation =
        v.at("notation", w).asString(w + ".notation");
    if (notation != cfg.notation())
        raise(ConfigError(
            "notation",
            format("grid spec notation '%s' disagrees with its config "
                   "fields ('%s')",
                   notation.c_str(), cfg.notation().c_str())));
    return cfg;
}

void
writeGridJobJson(JsonWriter &w, const GridJob &job)
{
    w.beginObject();
    w.field("id", job.id);
    w.field("workload", job.workload);
    w.field("scale", job.scale);
    w.field("seed", job.seed);
    w.field("max_insts", job.maxInsts);
    w.field("warmup_insts", job.warmupInsts);
    // Only annotated points carry the field, so specs written before
    // the static-partitioning pass existed stay byte-identical.
    if (!job.annotate.empty())
        w.field("annotate", job.annotate);
    // Same rule for external-trace points.
    if (!job.tracePath.empty())
        w.field("trace_path", job.tracePath);
    // Same byte-compat rule for the engine selector and sampling
    // plan: Auto-engine points (all pre-engine specs) write neither.
    if (job.engine != Engine::Auto) {
        w.field("engine", engineName(job.engine));
        if (job.engine == Engine::Sampled) {
            w.key("sampling");
            w.beginObject();
            w.field("period", job.sampling.period);
            w.field("detail", job.sampling.detail);
            w.field("warmup", job.sampling.warmup);
            w.endObject();
        }
    }
    w.key("config");
    obs::writeMachineConfigJson(w, job.cfg);
    w.endObject();
}

GridJob
gridJobFromJson(const JsonValue &v)
{
    const std::string w = "job";
    GridJob job;
    job.id = v.at("id", w).asUint(w + ".id");
    job.workload = v.at("workload", w).asString(w + ".workload");
    job.scale = v.at("scale", w).asUint(w + ".scale");
    job.seed = v.at("seed", w).asUint(w + ".seed");
    job.maxInsts = v.at("max_insts", w).asUint(w + ".max_insts");
    job.warmupInsts =
        v.at("warmup_insts", w).asUint(w + ".warmup_insts");
    if (const JsonValue *a = v.get("annotate"))
        job.annotate = a->asString(w + ".annotate");
    if (const JsonValue *t = v.get("trace_path"))
        job.tracePath = t->asString(w + ".trace_path");
    if (const JsonValue *e = v.get("engine"))
        job.engine = engineFromName(e->asString(w + ".engine"));
    if (const JsonValue *s = v.get("sampling")) {
        const std::string sw = w + ".sampling";
        job.sampling.period =
            s->at("period", sw).asUint(sw + ".period");
        job.sampling.detail =
            s->at("detail", sw).asUint(sw + ".detail");
        job.sampling.warmup =
            s->at("warmup", sw).asUint(sw + ".warmup");
    }
    job.cfg = machineConfigFromJson(v.at("config", w));
    return job;
}

void
GridSpec::validate() const
{
    if (jobs.empty())
        fatal("grid spec '%s' has no jobs", title.c_str());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const GridJob &job = jobs[i];
        if (job.id != i)
            fatal("grid spec '%s': job %zu has id %llu (ids must be "
                  "dense and in order)",
                  title.c_str(), i,
                  static_cast<unsigned long long>(job.id));
        if (job.tracePath.empty()) {
            if (!workloads::find(job.workload))
                fatal("grid spec '%s': job %zu names unknown workload "
                      "'%s'",
                      title.c_str(), i, job.workload.c_str());
            if (job.scale == 0)
                fatal("grid spec '%s': job %zu has scale 0",
                      title.c_str(), i);
        } else {
            // External-trace point: the program comes from the file,
            // so the workload name is display-only; hint rewriting
            // happened at conversion time and cannot be re-run here,
            // and the live engine has nothing to execute.
            if (!job.annotate.empty())
                fatal("grid spec '%s': job %zu combines trace_path "
                      "with an annotate policy (hints are burned by "
                      "the converter, not at rebuild time)",
                      title.c_str(), i);
            if (job.engine == Engine::Live)
                fatal("grid spec '%s': job %zu demands the live "
                      "engine for an external trace, which has no "
                      "functional semantics to execute",
                      title.c_str(), i);
        }
        if (!job.annotate.empty() &&
            !analysis::hintPolicyFromName(job.annotate))
            fatal("grid spec '%s': job %zu names unknown annotate "
                  "policy '%s'",
                  title.c_str(), i, job.annotate.c_str());
        if (job.engine == Engine::Sampled) {
            // Subtraction form: the sum wraps for plans near
            // UINT64_MAX (same hazard runSampled guards against).
            if (job.sampling.detail == 0 || job.sampling.period == 0 ||
                job.sampling.warmup > job.sampling.period ||
                job.sampling.detail >
                    job.sampling.period - job.sampling.warmup)
                fatal("grid spec '%s': job %zu has an invalid "
                      "sampling plan (period %llu, detail %llu, "
                      "warmup %llu)",
                      title.c_str(), i,
                      static_cast<unsigned long long>(
                          job.sampling.period),
                      static_cast<unsigned long long>(
                          job.sampling.detail),
                      static_cast<unsigned long long>(
                          job.sampling.warmup));
            if (job.warmupInsts != 0)
                fatal("grid spec '%s': job %zu combines a whole-run "
                      "warmup with the sampled engine",
                      title.c_str(), i);
        }
        job.cfg.validate();
    }
}

void
GridSpec::writeTo(std::ostream &os) const
{
    JsonWriter w(os);
    w.beginObject();
    w.field("schema", kGridSchema);
    w.field("title", title);
    w.field("num_jobs", static_cast<std::uint64_t>(jobs.size()));
    w.key("jobs");
    w.beginArray();
    for (const GridJob &job : jobs)
        writeGridJobJson(w, job);
    w.endArray();
    w.endObject();
    os << '\n';
}

void
GridSpec::writeFile(const std::string &path) const
{
    AtomicFile file(path);
    writeTo(file.stream());
    file.commit();
}

GridSpec
GridSpec::fromJson(const JsonValue &doc)
{
    const std::string w = "grid";
    const std::string &schema =
        doc.at("schema", w).asString(w + ".schema");
    if (schema != kGridSchema)
        fatal("grid spec schema is '%s', expected '%s'",
              schema.c_str(), kGridSchema);
    GridSpec spec;
    spec.title = doc.at("title", w).asString(w + ".title");
    const auto &arr = doc.at("jobs", w).asArray(w + ".jobs");
    spec.jobs.reserve(arr.size());
    for (const JsonValue &jv : arr)
        spec.jobs.push_back(gridJobFromJson(jv));
    if (doc.at("num_jobs", w).asUint(w + ".num_jobs") !=
        spec.jobs.size())
        fatal("grid spec '%s': num_jobs disagrees with the jobs array",
              spec.title.c_str());
    spec.validate();
    return spec;
}

GridSpec
GridSpec::fromFile(const std::string &path)
{
    return fromJson(parseJsonFile(path));
}

prog::Program
buildGridProgram(const GridJob &job)
{
    if (!job.tracePath.empty())
        fatal("grid job %llu: an external-trace point has no program "
              "to build (load its trace_path instead)",
              static_cast<unsigned long long>(job.id));
    workloads::WorkloadParams p;
    p.scale = job.scale;
    p.seed = job.seed;
    prog::Program program = workloads::build(job.workload, p);
    if (job.annotate.empty())
        return program;
    auto policy = analysis::hintPolicyFromName(job.annotate);
    if (!policy)
        fatal("grid job %llu: unknown annotate policy '%s'",
              static_cast<unsigned long long>(job.id),
              job.annotate.c_str());
    return analysis::annotateProgram(program, *policy);
}

} // namespace ddsim::sim
