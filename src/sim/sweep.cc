#include "sim/sweep.hh"

#include <algorithm>
#include <chrono>
#include <new>
#include <ostream>
#include <thread>
#include <tuple>
#include <utility>

#include "obs/manifest.hh"
#include "obs/version.hh"
#include "util/atomic_file.hh"
#include "util/json.hh"
#include "util/log.hh"
#include "util/str.hh"

namespace ddsim::sim {

const char *
jobStatusName(JobStatus s)
{
    switch (s) {
      case JobStatus::Ok: return "ok";
      case JobStatus::Recovered: return "recovered";
      case JobStatus::Quarantined: return "quarantined";
    }
    return "?";
}

ErrorClass
classifyError(const std::exception_ptr &e)
{
    try {
        std::rethrow_exception(e);
    } catch (const SimError &se) {
        return {se.kind(), se.what(), se.transient()};
    } catch (const std::bad_alloc &ba) {
        // Memory pressure in a loaded sweep: concurrent jobs finish
        // and free theirs, so a retry has a real chance.
        return {"alloc", ba.what(), true};
    } catch (const std::exception &ex) {
        return {"unknown", ex.what(), false};
    } catch (...) {
        return {"unknown", "non-exception throw", false};
    }
}

SweepRunner::SweepRunner(unsigned workers) : pool(workers) {}

SweepRunner::~SweepRunner()
{
    // Jobs still in flight write into `slots`, which must outlive
    // them: drain the pool before the deque is destroyed.
    pool.wait();
}

void
SweepRunner::runJobWithRetry(SweepJob job, Slot *slot, TraceCache *tc,
                             const RetryPolicy &policy)
{
    // Bounded retry with exponential backoff. Only transiently
    // classified failures retry; simulation is deterministic, so
    // a deadlock or config error would just fail identically
    // again, while an I/O hiccup or allocation failure may pass.
    std::uint64_t backoff = policy.backoffMs;
    for (int attempt = 1;; ++attempt) {
        slot->attempts = attempt;
        try {
            if (tc) {
                std::uint64_t cap =
                    job.opts.maxInsts
                        ? job.opts.maxInsts + job.opts.warmupInsts
                        : 0;
                job.opts.trace = tc->get(job.program, cap);
            }
            slot->result = run(*job.program, job.cfg, job.opts);
            slot->error = nullptr;
            return;
        } catch (...) {
            slot->error = std::current_exception();
            slot->lastError = classifyError(slot->error);
            if (!slot->lastError.transient ||
                attempt >= policy.maxAttempts)
                return;
        }
        if (backoff > 0)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(backoff));
        backoff = std::min(backoff * 2, policy.maxBackoffMs);
    }
}

namespace {

/**
 * Can this job join a batched column? runBatch() shares one
 * RunOptions across the whole column, so per-run outputs and
 * wall-clock budgets disqualify a job (it falls back to plain replay,
 * which is bit-identical anyway).
 */
bool
batchable(const SweepJob &job)
{
    const RunOptions &o = job.opts;
    return o.engine == Engine::Batched && o.manifestPath.empty() &&
           o.tracePath.empty() && o.samplePath.empty() &&
           o.blackboxPath.empty() && o.sampleInterval == 0 &&
           !o.verifyTrace && o.maxWallSeconds == 0.0;
}

/** Jobs with equal column keys share one runBatch() call. */
struct ColumnKey
{
    const prog::Program *program;
    const vm::RecordedTrace *trace;
    std::uint64_t maxInsts;
    std::uint64_t warmupInsts;
    std::uint64_t maxCycles;
    bool captureStats;
    bool captureManifest;
    bool canonicalManifest;
    std::string label;

    explicit ColumnKey(const SweepJob &job)
        : program(job.program.get()), trace(job.opts.trace.get()),
          maxInsts(job.opts.maxInsts),
          warmupInsts(job.opts.warmupInsts),
          maxCycles(job.opts.maxCycles),
          captureStats(job.opts.captureStats),
          captureManifest(job.opts.captureManifest),
          canonicalManifest(job.opts.canonicalManifest),
          label(job.opts.label)
    {}

    bool operator<(const ColumnKey &o) const
    {
        auto tie = [](const ColumnKey &k) {
            return std::tie(k.program, k.trace, k.maxInsts,
                            k.warmupInsts, k.maxCycles, k.captureStats,
                            k.captureManifest, k.canonicalManifest,
                            k.label);
        };
        return tie(*this) < tie(o);
    }
};

} // namespace

void
SweepRunner::flushBatches()
{
    if (batchQueue.empty())
        return;
    std::map<ColumnKey, std::vector<PendingBatch>> columns;
    for (PendingBatch &pb : batchQueue)
        columns[ColumnKey(pb.job)].push_back(std::move(pb));
    batchQueue.clear();

    for (auto &[key, column] : columns) {
        TraceCache *tc = shareTraces &&
                                 !column.front().job.opts.trace &&
                                 !column.front().job.opts.externalTrace
                             ? &traces
                             : nullptr;
        RetryPolicy policy = retryPolicy;
        pool.submit([tc, policy, column = std::move(column)]() mutable {
            std::shared_ptr<const prog::Program> program =
                column.front().job.program;
            RunOptions opts = column.front().job.opts;
            std::vector<config::MachineConfig> cfgs;
            cfgs.reserve(column.size());
            for (const PendingBatch &pb : column)
                cfgs.push_back(pb.job.cfg);
            try {
                if (tc) {
                    std::uint64_t cap =
                        opts.maxInsts
                            ? opts.maxInsts + opts.warmupInsts
                            : 0;
                    opts.trace = tc->get(program, cap);
                }
                std::vector<SimResult> rs =
                    runBatch(*program, cfgs, opts);
                for (std::size_t i = 0; i < column.size(); ++i) {
                    column[i].slot->result = std::move(rs[i]);
                    column[i].slot->error = nullptr;
                    column[i].slot->attempts = 1;
                }
                return;
            } catch (...) {
                // A failing column falls back to independent runs:
                // only the genuinely bad point keeps failing (with
                // the standard retry/quarantine treatment) and the
                // healthy lanes still produce their results.
            }
            for (PendingBatch &pb : column)
                runJobWithRetry(std::move(pb.job), pb.slot, tc,
                                policy);
        });
    }
}

std::size_t
SweepRunner::submit(SweepJob job)
{
    if (!job.program)
        panic("SweepRunner::submit: job has no program");
    std::size_t index = slots.size();
    slots.emplace_back();
    // deque never relocates elements, so this pointer stays valid
    // while submit() grows the grid under the workers.
    Slot *slot = &slots.back();
    if (batchable(job)) {
        // Whole columns run as one trace pass; grouping happens at
        // collect time, once the full grid is known.
        batchQueue.push_back({std::move(job), slot});
        return index;
    }
    // Trace resolution runs on the worker, not here: the first job to
    // reach a program records its trace while workers on other
    // programs keep simulating. External traces bring their own
    // stream — recording their reconstructed program would be wrong.
    TraceCache *tc = shareTraces && !job.opts.trace &&
                             !job.opts.externalTrace
                         ? &traces
                         : nullptr;
    RetryPolicy policy = retryPolicy;
    pool.submit([slot, tc, policy, job = std::move(job)]() mutable {
        runJobWithRetry(std::move(job), slot, tc, policy);
    });
    return index;
}

std::size_t
SweepRunner::submit(std::shared_ptr<const prog::Program> program,
                    const config::MachineConfig &cfg,
                    const RunOptions &opts)
{
    return submit(SweepJob{std::move(program), cfg, opts});
}

std::vector<SimResult>
SweepRunner::collect()
{
    flushBatches();
    pool.wait();
    std::vector<SimResult> results;
    results.reserve(slots.size());
    std::exception_ptr firstError;
    for (Slot &slot : slots) {
        if (slot.error && !firstError)
            firstError = slot.error;
        results.push_back(std::move(slot.result));
    }
    slots.clear();
    if (firstError)
        std::rethrow_exception(firstError);
    return results;
}

SweepOutcome
SweepRunner::collectOutcome()
{
    flushBatches();
    pool.wait();
    SweepOutcome out;
    out.results.reserve(slots.size());
    out.jobs.reserve(slots.size());
    for (Slot &slot : slots) {
        JobOutcome jo;
        jo.attempts = slot.attempts;
        jo.error = slot.lastError;
        if (slot.error) {
            jo.status = JobStatus::Quarantined;
            ++out.numQuarantined;
            out.degraded = true;
            // Placeholder keeps indices; the flag keeps it from being
            // mistaken for a legitimate zero-stat result downstream.
            out.results.emplace_back();
            out.results.back().quarantined = true;
        } else {
            jo.status = slot.attempts > 1 ? JobStatus::Recovered
                                          : JobStatus::Ok;
            if (jo.status == JobStatus::Recovered)
                ++out.numRecovered;
            out.results.push_back(std::move(slot.result));
        }
        out.jobs.push_back(std::move(jo));
    }
    slots.clear();
    return out;
}

std::vector<SimResult>
SweepRunner::runAll(std::vector<SweepJob> jobs, unsigned workers)
{
    SweepRunner runner(workers);
    for (SweepJob &job : jobs)
        runner.submit(std::move(job));
    return runner.collect();
}

namespace {

void
writeSweepManifestDoc(const std::string &title,
                      const std::vector<SimResult> &results,
                      const std::vector<JobOutcome> *jobs,
                      bool degraded, std::size_t numQuarantined,
                      std::size_t numRecovered, std::ostream &os)
{
    JsonWriter w(os);
    w.beginObject();
    w.field("schema", obs::kSweepManifestSchema);
    w.field("title", title);
    w.key("generator");
    w.beginObject();
    w.field("name", obs::simulatorName());
    w.field("version", obs::simulatorVersion());
    w.field("git", obs::gitDescribe());
    w.endObject();
    w.field("num_runs", static_cast<std::uint64_t>(results.size()));
    if (jobs) {
        w.field("degraded", degraded);
        w.field("num_quarantined",
                static_cast<std::uint64_t>(numQuarantined));
        w.field("num_recovered",
                static_cast<std::uint64_t>(numRecovered));
        w.key("jobs");
        w.beginArray();
        for (std::size_t i = 0; i < jobs->size(); ++i) {
            const JobOutcome &jo = (*jobs)[i];
            w.beginObject();
            w.field("index", static_cast<std::uint64_t>(i));
            w.field("status", jobStatusName(jo.status));
            w.field("attempts",
                    static_cast<std::uint64_t>(jo.attempts));
            if (jo.error.kind.empty()) {
                w.key("error");
                w.valueNull();
            } else {
                w.key("error");
                w.beginObject();
                w.field("kind", jo.error.kind);
                w.field("message", jo.error.message);
                w.field("transient", jo.error.transient);
                w.endObject();
            }
            w.endObject();
        }
        w.endArray();
    }
    w.key("runs");
    w.beginArray();
    for (const SimResult &r : results) {
        if (r.manifestJson.empty())
            w.valueNull();
        else
            w.rawValue(trim(r.manifestJson));
    }
    w.endArray();
    w.endObject();
    os << '\n';
}

} // namespace

void
writeSweepManifest(const std::string &title,
                   const std::vector<SimResult> &results,
                   std::ostream &os)
{
    writeSweepManifestDoc(title, results, nullptr, false, 0, 0, os);
}

void
writeSweepManifest(const std::string &title, const SweepOutcome &outcome,
                   std::ostream &os)
{
    writeSweepManifestDoc(title, outcome.results, &outcome.jobs,
                          outcome.degraded, outcome.numQuarantined,
                          outcome.numRecovered, os);
}

void
writeSweepManifestFile(const std::string &title,
                       const std::vector<SimResult> &results,
                       const std::string &path)
{
    AtomicFile file(path);
    writeSweepManifest(title, results, file.stream());
    file.commit();
}

void
writeSweepManifestFile(const std::string &title,
                       const SweepOutcome &outcome,
                       const std::string &path)
{
    AtomicFile file(path);
    writeSweepManifest(title, outcome, file.stream());
    file.commit();
}

std::shared_ptr<const vm::RecordedTrace>
TraceCache::get(const std::shared_ptr<const prog::Program> &program,
                std::uint64_t maxInsts)
{
    std::shared_ptr<Entry> entry;
    {
        std::lock_guard<std::mutex> lock(mu);
        std::shared_ptr<Entry> &slot =
            cache[Key{program.get(), maxInsts}];
        if (!slot)
            slot = std::make_shared<Entry>();
        entry = slot;
    }
    // Record outside the map lock: only callers wanting this same
    // trace wait; other programs record concurrently.
    std::call_once(entry->once, [&] {
        entry->pin = program;
        entry->trace = std::make_shared<const vm::RecordedTrace>(
            vm::RecordedTrace::record(*program, maxInsts));
        entry->bytes =
            entry->trace->wordCount() * sizeof(std::uint32_t);
    });
    {
        std::lock_guard<std::mutex> lock(mu);
        entry->lastUse = ++useClock;
        if (!entry->counted) {
            // First completion of this recording (a re-recorded
            // evictee counts again — that is what recordings()
            // observes).
            entry->counted = true;
            totalBytes += entry->bytes;
            ++numRecorded;
        }
        evictLocked(entry.get());
    }
    return entry->trace;
}

void
TraceCache::evictLocked(const Entry *keep)
{
    if (byteBudget == 0)
        return;
    while (totalBytes > byteBudget) {
        auto victim = cache.end();
        for (auto it = cache.begin(); it != cache.end(); ++it) {
            Entry *e = it->second.get();
            // Only completed recordings carry counted bytes; never
            // evict the entry being returned to the caller.
            if (e == keep || !e->counted)
                continue;
            if (victim == cache.end() ||
                e->lastUse < victim->second->lastUse)
                victim = it;
        }
        if (victim == cache.end())
            return; // Only the kept (possibly over-budget) trace left.
        totalBytes -= victim->second->bytes;
        // Jobs still replaying the evicted trace hold their own
        // shared_ptr; only the cache reference goes away.
        cache.erase(victim);
    }
}

std::size_t
TraceCache::size() const
{
    std::lock_guard<std::mutex> lock(mu);
    return cache.size();
}

std::size_t
TraceCache::recordings() const
{
    std::lock_guard<std::mutex> lock(mu);
    return numRecorded;
}

void
TraceCache::setByteBudget(std::size_t bytes)
{
    std::lock_guard<std::mutex> lock(mu);
    byteBudget = bytes;
    evictLocked(nullptr);
}

std::size_t
TraceCache::residentBytes() const
{
    std::lock_guard<std::mutex> lock(mu);
    return totalBytes;
}

std::shared_ptr<const prog::Program>
ProgramCache::get(const std::string &key, const Builder &build)
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = cache.find(key);
    if (it == cache.end()) {
        it = cache
                 .emplace(key, std::make_shared<const prog::Program>(
                                   build()))
                 .first;
    }
    return it->second;
}

std::size_t
ProgramCache::size() const
{
    std::lock_guard<std::mutex> lock(mu);
    return cache.size();
}

} // namespace ddsim::sim
