#include "sim/sweep.hh"

#include <algorithm>
#include <chrono>
#include <new>
#include <ostream>
#include <thread>
#include <utility>

#include "obs/manifest.hh"
#include "obs/version.hh"
#include "util/atomic_file.hh"
#include "util/json.hh"
#include "util/log.hh"
#include "util/str.hh"

namespace ddsim::sim {

const char *
jobStatusName(JobStatus s)
{
    switch (s) {
      case JobStatus::Ok: return "ok";
      case JobStatus::Recovered: return "recovered";
      case JobStatus::Quarantined: return "quarantined";
    }
    return "?";
}

ErrorClass
classifyError(const std::exception_ptr &e)
{
    try {
        std::rethrow_exception(e);
    } catch (const SimError &se) {
        return {se.kind(), se.what(), se.transient()};
    } catch (const std::bad_alloc &ba) {
        // Memory pressure in a loaded sweep: concurrent jobs finish
        // and free theirs, so a retry has a real chance.
        return {"alloc", ba.what(), true};
    } catch (const std::exception &ex) {
        return {"unknown", ex.what(), false};
    } catch (...) {
        return {"unknown", "non-exception throw", false};
    }
}

SweepRunner::SweepRunner(unsigned workers) : pool(workers) {}

SweepRunner::~SweepRunner()
{
    // Jobs still in flight write into `slots`, which must outlive
    // them: drain the pool before the deque is destroyed.
    pool.wait();
}

std::size_t
SweepRunner::submit(SweepJob job)
{
    if (!job.program)
        panic("SweepRunner::submit: job has no program");
    std::size_t index = slots.size();
    slots.emplace_back();
    // deque never relocates elements, so this pointer stays valid
    // while submit() grows the grid under the workers.
    Slot *slot = &slots.back();
    // Trace resolution runs on the worker, not here: the first job to
    // reach a program records its trace while workers on other
    // programs keep simulating.
    TraceCache *tc = shareTraces && !job.opts.trace ? &traces : nullptr;
    RetryPolicy policy = retryPolicy;
    pool.submit([slot, tc, policy, job = std::move(job)]() mutable {
        // Bounded retry with exponential backoff. Only transiently
        // classified failures retry; simulation is deterministic, so
        // a deadlock or config error would just fail identically
        // again, while an I/O hiccup or allocation failure may pass.
        std::uint64_t backoff = policy.backoffMs;
        for (int attempt = 1;; ++attempt) {
            slot->attempts = attempt;
            try {
                if (tc) {
                    std::uint64_t cap =
                        job.opts.maxInsts
                            ? job.opts.maxInsts + job.opts.warmupInsts
                            : 0;
                    job.opts.trace = tc->get(job.program, cap);
                }
                slot->result = run(*job.program, job.cfg, job.opts);
                slot->error = nullptr;
                return;
            } catch (...) {
                slot->error = std::current_exception();
                slot->lastError = classifyError(slot->error);
                if (!slot->lastError.transient ||
                    attempt >= policy.maxAttempts)
                    return;
            }
            if (backoff > 0)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(backoff));
            backoff = std::min(backoff * 2, policy.maxBackoffMs);
        }
    });
    return index;
}

std::size_t
SweepRunner::submit(std::shared_ptr<const prog::Program> program,
                    const config::MachineConfig &cfg,
                    const RunOptions &opts)
{
    return submit(SweepJob{std::move(program), cfg, opts});
}

std::vector<SimResult>
SweepRunner::collect()
{
    pool.wait();
    std::vector<SimResult> results;
    results.reserve(slots.size());
    std::exception_ptr firstError;
    for (Slot &slot : slots) {
        if (slot.error && !firstError)
            firstError = slot.error;
        results.push_back(std::move(slot.result));
    }
    slots.clear();
    if (firstError)
        std::rethrow_exception(firstError);
    return results;
}

SweepOutcome
SweepRunner::collectOutcome()
{
    pool.wait();
    SweepOutcome out;
    out.results.reserve(slots.size());
    out.jobs.reserve(slots.size());
    for (Slot &slot : slots) {
        JobOutcome jo;
        jo.attempts = slot.attempts;
        jo.error = slot.lastError;
        if (slot.error) {
            jo.status = JobStatus::Quarantined;
            ++out.numQuarantined;
            out.degraded = true;
            // Placeholder keeps indices; the flag keeps it from being
            // mistaken for a legitimate zero-stat result downstream.
            out.results.emplace_back();
            out.results.back().quarantined = true;
        } else {
            jo.status = slot.attempts > 1 ? JobStatus::Recovered
                                          : JobStatus::Ok;
            if (jo.status == JobStatus::Recovered)
                ++out.numRecovered;
            out.results.push_back(std::move(slot.result));
        }
        out.jobs.push_back(std::move(jo));
    }
    slots.clear();
    return out;
}

std::vector<SimResult>
SweepRunner::runAll(std::vector<SweepJob> jobs, unsigned workers)
{
    SweepRunner runner(workers);
    for (SweepJob &job : jobs)
        runner.submit(std::move(job));
    return runner.collect();
}

namespace {

void
writeSweepManifestDoc(const std::string &title,
                      const std::vector<SimResult> &results,
                      const std::vector<JobOutcome> *jobs,
                      bool degraded, std::size_t numQuarantined,
                      std::size_t numRecovered, std::ostream &os)
{
    JsonWriter w(os);
    w.beginObject();
    w.field("schema", obs::kSweepManifestSchema);
    w.field("title", title);
    w.key("generator");
    w.beginObject();
    w.field("name", obs::simulatorName());
    w.field("version", obs::simulatorVersion());
    w.field("git", obs::gitDescribe());
    w.endObject();
    w.field("num_runs", static_cast<std::uint64_t>(results.size()));
    if (jobs) {
        w.field("degraded", degraded);
        w.field("num_quarantined",
                static_cast<std::uint64_t>(numQuarantined));
        w.field("num_recovered",
                static_cast<std::uint64_t>(numRecovered));
        w.key("jobs");
        w.beginArray();
        for (std::size_t i = 0; i < jobs->size(); ++i) {
            const JobOutcome &jo = (*jobs)[i];
            w.beginObject();
            w.field("index", static_cast<std::uint64_t>(i));
            w.field("status", jobStatusName(jo.status));
            w.field("attempts",
                    static_cast<std::uint64_t>(jo.attempts));
            if (jo.error.kind.empty()) {
                w.key("error");
                w.valueNull();
            } else {
                w.key("error");
                w.beginObject();
                w.field("kind", jo.error.kind);
                w.field("message", jo.error.message);
                w.field("transient", jo.error.transient);
                w.endObject();
            }
            w.endObject();
        }
        w.endArray();
    }
    w.key("runs");
    w.beginArray();
    for (const SimResult &r : results) {
        if (r.manifestJson.empty())
            w.valueNull();
        else
            w.rawValue(trim(r.manifestJson));
    }
    w.endArray();
    w.endObject();
    os << '\n';
}

} // namespace

void
writeSweepManifest(const std::string &title,
                   const std::vector<SimResult> &results,
                   std::ostream &os)
{
    writeSweepManifestDoc(title, results, nullptr, false, 0, 0, os);
}

void
writeSweepManifest(const std::string &title, const SweepOutcome &outcome,
                   std::ostream &os)
{
    writeSweepManifestDoc(title, outcome.results, &outcome.jobs,
                          outcome.degraded, outcome.numQuarantined,
                          outcome.numRecovered, os);
}

void
writeSweepManifestFile(const std::string &title,
                       const std::vector<SimResult> &results,
                       const std::string &path)
{
    AtomicFile file(path);
    writeSweepManifest(title, results, file.stream());
    file.commit();
}

void
writeSweepManifestFile(const std::string &title,
                       const SweepOutcome &outcome,
                       const std::string &path)
{
    AtomicFile file(path);
    writeSweepManifest(title, outcome, file.stream());
    file.commit();
}

std::shared_ptr<const vm::RecordedTrace>
TraceCache::get(const std::shared_ptr<const prog::Program> &program,
                std::uint64_t maxInsts)
{
    std::shared_ptr<Entry> entry;
    {
        std::lock_guard<std::mutex> lock(mu);
        std::shared_ptr<Entry> &slot =
            cache[Key{program.get(), maxInsts}];
        if (!slot)
            slot = std::make_shared<Entry>();
        entry = slot;
    }
    // Record outside the map lock: only callers wanting this same
    // trace wait; other programs record concurrently.
    std::call_once(entry->once, [&] {
        entry->pin = program;
        entry->trace = std::make_shared<const vm::RecordedTrace>(
            vm::RecordedTrace::record(*program, maxInsts));
    });
    return entry->trace;
}

std::size_t
TraceCache::size() const
{
    std::lock_guard<std::mutex> lock(mu);
    return cache.size();
}

std::shared_ptr<const prog::Program>
ProgramCache::get(const std::string &key, const Builder &build)
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = cache.find(key);
    if (it == cache.end()) {
        it = cache
                 .emplace(key, std::make_shared<const prog::Program>(
                                   build()))
                 .first;
    }
    return it->second;
}

std::size_t
ProgramCache::size() const
{
    std::lock_guard<std::mutex> lock(mu);
    return cache.size();
}

} // namespace ddsim::sim
