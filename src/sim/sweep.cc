#include "sim/sweep.hh"

#include <fstream>
#include <ostream>
#include <utility>

#include "obs/manifest.hh"
#include "obs/version.hh"
#include "util/json.hh"
#include "util/log.hh"
#include "util/str.hh"

namespace ddsim::sim {

SweepRunner::SweepRunner(unsigned workers) : pool(workers) {}

SweepRunner::~SweepRunner()
{
    // Jobs still in flight write into `slots`, which must outlive
    // them: drain the pool before the deque is destroyed.
    pool.wait();
}

std::size_t
SweepRunner::submit(SweepJob job)
{
    if (!job.program)
        panic("SweepRunner::submit: job has no program");
    std::size_t index = slots.size();
    slots.emplace_back();
    // deque never relocates elements, so this pointer stays valid
    // while submit() grows the grid under the workers.
    Slot *slot = &slots.back();
    // Trace resolution runs on the worker, not here: the first job to
    // reach a program records its trace while workers on other
    // programs keep simulating.
    TraceCache *tc = shareTraces && !job.opts.trace ? &traces : nullptr;
    pool.submit([slot, tc, job = std::move(job)]() mutable {
        try {
            if (tc) {
                std::uint64_t cap =
                    job.opts.maxInsts
                        ? job.opts.maxInsts + job.opts.warmupInsts
                        : 0;
                job.opts.trace = tc->get(job.program, cap);
            }
            slot->result = run(*job.program, job.cfg, job.opts);
        } catch (...) {
            slot->error = std::current_exception();
        }
    });
    return index;
}

std::size_t
SweepRunner::submit(std::shared_ptr<const prog::Program> program,
                    const config::MachineConfig &cfg,
                    const RunOptions &opts)
{
    return submit(SweepJob{std::move(program), cfg, opts});
}

std::vector<SimResult>
SweepRunner::collect()
{
    pool.wait();
    std::vector<SimResult> results;
    results.reserve(slots.size());
    std::exception_ptr firstError;
    for (Slot &slot : slots) {
        if (slot.error && !firstError)
            firstError = slot.error;
        results.push_back(std::move(slot.result));
    }
    slots.clear();
    if (firstError)
        std::rethrow_exception(firstError);
    return results;
}

std::vector<SimResult>
SweepRunner::runAll(std::vector<SweepJob> jobs, unsigned workers)
{
    SweepRunner runner(workers);
    for (SweepJob &job : jobs)
        runner.submit(std::move(job));
    return runner.collect();
}

void
writeSweepManifest(const std::string &title,
                   const std::vector<SimResult> &results,
                   std::ostream &os)
{
    JsonWriter w(os);
    w.beginObject();
    w.field("schema", obs::kSweepManifestSchema);
    w.field("title", title);
    w.key("generator");
    w.beginObject();
    w.field("name", obs::simulatorName());
    w.field("version", obs::simulatorVersion());
    w.field("git", obs::gitDescribe());
    w.endObject();
    w.field("num_runs", static_cast<std::uint64_t>(results.size()));
    w.key("runs");
    w.beginArray();
    for (const SimResult &r : results) {
        if (r.manifestJson.empty())
            w.valueNull();
        else
            w.rawValue(trim(r.manifestJson));
    }
    w.endArray();
    w.endObject();
    os << '\n';
}

void
writeSweepManifestFile(const std::string &title,
                       const std::vector<SimResult> &results,
                       const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open sweep manifest file '%s' for writing",
              path.c_str());
    writeSweepManifest(title, results, os);
}

std::shared_ptr<const vm::RecordedTrace>
TraceCache::get(const std::shared_ptr<const prog::Program> &program,
                std::uint64_t maxInsts)
{
    std::shared_ptr<Entry> entry;
    {
        std::lock_guard<std::mutex> lock(mu);
        std::shared_ptr<Entry> &slot =
            cache[Key{program.get(), maxInsts}];
        if (!slot)
            slot = std::make_shared<Entry>();
        entry = slot;
    }
    // Record outside the map lock: only callers wanting this same
    // trace wait; other programs record concurrently.
    std::call_once(entry->once, [&] {
        entry->pin = program;
        entry->trace = std::make_shared<const vm::RecordedTrace>(
            vm::RecordedTrace::record(*program, maxInsts));
    });
    return entry->trace;
}

std::size_t
TraceCache::size() const
{
    std::lock_guard<std::mutex> lock(mu);
    return cache.size();
}

std::shared_ptr<const prog::Program>
ProgramCache::get(const std::string &key, const Builder &build)
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = cache.find(key);
    if (it == cache.end()) {
        it = cache
                 .emplace(key, std::make_shared<const prog::Program>(
                                   build()))
                 .first;
    }
    return it->second;
}

std::size_t
ProgramCache::size() const
{
    std::lock_guard<std::mutex> lock(mu);
    return cache.size();
}

} // namespace ddsim::sim
