#include "analysis/cfg.hh"

#include <algorithm>
#include <cstdint>
#include <set>

#include "isa/inst.hh"
#include "isa/opcode.hh"

namespace ddsim::analysis {

using isa::Inst;
using isa::OpCode;

namespace {

/**
 * Raw intra-procedural successor candidates, unchecked against the
 * text bounds. Order matters: fall-through first, taken target second.
 */
std::vector<std::int64_t>
rawSuccessors(const prog::Program &prog, std::size_t idx)
{
    const Inst &inst = prog.fetch(idx);
    auto next = static_cast<std::int64_t>(idx) + 1;

    if (isa::isCondBranch(inst.op))
        return {next, next + inst.imm};
    switch (inst.op) {
      case OpCode::J:
        return {static_cast<std::int64_t>(inst.target)};
      case OpCode::JAL:
      case OpCode::JALR:
        return {next}; // Callee is a call target, not a successor.
      case OpCode::JR:
      case OpCode::HALT:
        return {};
      default:
        return {next};
    }
}

bool
inText(const prog::Program &prog, std::int64_t idx)
{
    return idx >= 0 &&
           idx < static_cast<std::int64_t>(prog.textSize());
}

} // namespace

std::vector<std::size_t>
instSuccessors(const prog::Program &prog, std::size_t idx)
{
    std::vector<std::size_t> out;
    for (std::int64_t t : rawSuccessors(prog, idx))
        if (inText(prog, t))
            out.push_back(static_cast<std::size_t>(t));
    return out;
}

int
Cfg::blockContaining(std::size_t idx) const
{
    auto it = blockAt.upper_bound(idx);
    if (it == blockAt.begin())
        return -1;
    --it;
    const BasicBlock &bb = blocks[static_cast<std::size_t>(it->second)];
    return (bb.first <= idx && idx <= bb.last) ? bb.id : -1;
}

Cfg
buildCfg(const prog::Program &prog, std::size_t entryIdx)
{
    Cfg cfg;
    cfg.entry = entryIdx;

    // Pass 1: reachable instructions plus call / indirect / bad-target
    // bookkeeping.
    std::set<std::size_t> reachable;
    std::set<std::size_t> callTargets;
    std::vector<std::size_t> work{entryIdx};
    while (!work.empty()) {
        std::size_t idx = work.back();
        work.pop_back();
        if (!inText(prog, static_cast<std::int64_t>(idx)) ||
            !reachable.insert(idx).second)
            continue;

        const Inst &inst = prog.fetch(idx);
        if (inst.op == OpCode::JAL) {
            if (inText(prog, static_cast<std::int64_t>(inst.target)))
                callTargets.insert(inst.target);
            else
                cfg.outOfTextAt.push_back(idx);
        } else if (inst.op == OpCode::JALR ||
                   (inst.op == OpCode::JR && !isa::isReturn(inst))) {
            cfg.indirectAt.push_back(idx);
        }
        for (std::int64_t t : rawSuccessors(prog, idx)) {
            if (inText(prog, t))
                work.push_back(static_cast<std::size_t>(t));
            else
                cfg.outOfTextAt.push_back(idx);
        }
    }
    cfg.callTargets.assign(callTargets.begin(), callTargets.end());

    // Pass 2: leaders — the entry plus every successor of a control
    // transfer (both taken targets and fall-throughs).
    std::set<std::size_t> leaders{entryIdx};
    for (std::size_t idx : reachable)
        if (isa::isControl(prog.fetch(idx).op))
            for (std::size_t s : instSuccessors(prog, idx))
                if (reachable.count(s))
                    leaders.insert(s);

    // Pass 3: blocks — maximal runs from a leader to the next control
    // instruction, leader, or reachability gap.
    for (std::size_t leader : leaders) {
        if (!reachable.count(leader))
            continue;
        BasicBlock bb;
        bb.id = static_cast<int>(cfg.blocks.size());
        bb.first = leader;
        std::size_t idx = leader;
        while (!isa::isControl(prog.fetch(idx).op) &&
               reachable.count(idx + 1) && !leaders.count(idx + 1))
            ++idx;
        bb.last = idx;
        cfg.blockAt[leader] = bb.id;
        cfg.blocks.push_back(bb);
    }

    // The entry block must be blocks[0]; leaders iterate in index
    // order, so swap it into place if the entry isn't the lowest.
    int entryId = cfg.blockAt.at(entryIdx);
    if (entryId != 0) {
        std::swap(cfg.blocks[0],
                  cfg.blocks[static_cast<std::size_t>(entryId)]);
        cfg.blocks[0].id = 0;
        cfg.blocks[static_cast<std::size_t>(entryId)].id = entryId;
        cfg.blockAt[cfg.blocks[0].first] = 0;
        cfg.blockAt[cfg.blocks[static_cast<std::size_t>(entryId)]
                        .first] = entryId;
    }

    // Pass 4: edges.
    for (BasicBlock &bb : cfg.blocks)
        for (std::size_t s : instSuccessors(prog, bb.last))
            if (reachable.count(s))
                bb.succs.push_back(cfg.blockAt.at(s));
    for (const BasicBlock &bb : cfg.blocks)
        for (int s : bb.succs)
            cfg.blocks[static_cast<std::size_t>(s)].preds.push_back(
                bb.id);

    std::sort(cfg.indirectAt.begin(), cfg.indirectAt.end());
    std::sort(cfg.outOfTextAt.begin(), cfg.outOfTextAt.end());
    cfg.outOfTextAt.erase(std::unique(cfg.outOfTextAt.begin(),
                                      cfg.outOfTextAt.end()),
                          cfg.outOfTextAt.end());
    return cfg;
}

std::vector<std::size_t>
discoverFunctions(const prog::Program &prog)
{
    std::set<std::size_t> seen;
    std::vector<std::size_t> work{prog.entry()};
    while (!work.empty()) {
        std::size_t entry = work.back();
        work.pop_back();
        if (!seen.insert(entry).second)
            continue;
        Cfg cfg = buildCfg(prog, entry);
        for (std::size_t callee : cfg.callTargets)
            work.push_back(callee);
    }
    return {seen.begin(), seen.end()};
}

} // namespace ddsim::analysis
