#include "analysis/analyzer.hh"

#include <algorithm>
#include <deque>

#include "isa/disasm.hh"
#include "isa/encode.hh"
#include "isa/opcode.hh"
#include "isa/regs.hh"
#include "util/log.hh"

namespace ddsim::analysis {

using isa::Inst;
using isa::OpCode;
namespace reg = isa::reg;

const char *
verdictName(Verdict v)
{
    switch (v) {
      case Verdict::Local: return "local";
      case Verdict::NonLocal: return "nonlocal";
      case Verdict::Ambiguous: return "ambiguous";
    }
    return "?";
}

const char *
severityName(Severity s)
{
    switch (s) {
      case Severity::Note: return "note";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    return "?";
}

void
Mix::add(Verdict v)
{
    switch (v) {
      case Verdict::Local: ++local; break;
      case Verdict::NonLocal: ++nonLocal; break;
      case Verdict::Ambiguous: ++ambiguous; break;
    }
}

std::size_t
AnalysisResult::count(Severity s) const
{
    return static_cast<std::size_t>(
        std::count_if(diagnostics.begin(), diagnostics.end(),
                      [s](const Diagnostic &d) {
                          return d.severity == s;
                      }));
}

namespace {

std::string
functionName(const prog::Program &prog, std::size_t entry)
{
    for (const auto &[name, idx] : prog.symbols())
        if (idx == entry)
            return name;
    return format("fn@%zu", entry);
}

/** Joined abstract a0..a3 values per callee entry index. */
using ArgMap = std::map<std::size_t, std::array<AbsValue, 4>>;
/** Joined abstract v0/v1 at the return sites of each function. */
using RetMap = std::map<std::size_t, std::array<AbsValue, 2>>;

template <std::size_t N>
std::array<AbsValue, N>
bottoms()
{
    std::array<AbsValue, N> a;
    a.fill(AbsValue::bottom());
    return a;
}

/**
 * Translate an abstract value across a function boundary (a0..a3 at
 * a call site, v0/v1 at a return site). StackOff offsets are
 * entry-sp-relative *per function*, so an exact offset in one frame's
 * coordinate system is meaningless — and dangerously misleading — in
 * another's. Degrade to StackDerived: still provably a stack address,
 * no longer an exact slot.
 */
AbsValue
crossFunctionBoundary(const AbsValue &v)
{
    return v.isStackOff() ? AbsValue::stackDerived() : v;
}

/** Analysis of one function: fixpoint, then a reporting walk. */
class FunctionAnalyzer
{
  public:
    FunctionAnalyzer(const prog::Program &prog, std::size_t entry,
                     std::vector<Diagnostic> &diags,
                     const ArgMap &argsIn, const RetMap &retsIn)
        : prog(prog), diags(diags), retsIn(retsIn)
    {
        info.entry = entry;
        info.name = functionName(prog, entry);
        info.cfg = buildCfg(prog, entry);
        entryState = RegState::functionEntry();
        if (auto it = argsIn.find(entry); it != argsIn.end())
            for (int i = 0; i < 4; ++i) {
                const AbsValue &v =
                    it->second[static_cast<std::size_t>(i)];
                if (v.kind != ValueKind::Bottom)
                    entryState.set(
                        static_cast<RegId>(reg::a0 + i), v);
            }
    }

    /**
     * Analyze; when @p callArgs / @p retVals are non-null,
     * additionally join the abstract a0..a3 at every jal site (keyed
     * by callee) and the abstract v0/v1 at every return site (keyed
     * by this function) into them.
     */
    FunctionInfo run(ArgMap *callArgs, RetMap *retVals);

  private:
    void fixpoint();
    void reportBlock(const BasicBlock &bb, RegState state);
    void transfer(RegState &state, std::size_t idx, bool report);
    void checkMem(const RegState &state, const Inst &inst,
                  std::size_t idx);
    void checkReturn(const RegState &state, const Inst &inst,
                     std::size_t idx);
    void trackFrame(const RegState &state, std::size_t idx);
    void checkMerges();

    void diag(Severity sev, const char *id, std::size_t idx,
              std::string message)
    {
        diags.push_back({sev, id, idx, info.name,
                         std::move(message)});
    }

    /** "'lw t0, 8(sp) !local'" for messages. */
    std::string
    dis(std::size_t idx) const
    {
        return "'" + isa::disassemble(prog.fetch(idx)) + "'";
    }

    const prog::Program &prog;
    std::vector<Diagnostic> &diags;
    const RetMap &retsIn;
    RetMap *retCollect = nullptr;
    FunctionInfo info;
    RegState entryState;
    std::vector<RegState> inStates;
    std::vector<RegState> outStates;
    bool spLostReported = false;
    bool spInexactReported = false;
    bool bigFrameReported = false;
};

void
FunctionAnalyzer::fixpoint()
{
    const auto &blocks = info.cfg.blocks;
    inStates.assign(blocks.size(), RegState());
    outStates.assign(blocks.size(), RegState());
    inStates[0] = entryState;

    std::deque<int> work{0};
    std::vector<bool> queued(blocks.size(), false);
    queued[0] = true;
    while (!work.empty()) {
        int b = work.front();
        work.pop_front();
        queued[static_cast<std::size_t>(b)] = false;

        const BasicBlock &bb = blocks[static_cast<std::size_t>(b)];
        RegState st = inStates[static_cast<std::size_t>(b)];
        for (std::size_t idx = bb.first; idx <= bb.last; ++idx)
            transfer(st, idx, /*report=*/false);
        outStates[static_cast<std::size_t>(b)] = st;

        for (int s : bb.succs) {
            RegState joined =
                joinStates(inStates[static_cast<std::size_t>(s)], st);
            if (joined == inStates[static_cast<std::size_t>(s)])
                continue;
            inStates[static_cast<std::size_t>(s)] = std::move(joined);
            if (!queued[static_cast<std::size_t>(s)]) {
                queued[static_cast<std::size_t>(s)] = true;
                work.push_back(s);
            }
        }
    }
}

void
FunctionAnalyzer::transfer(RegState &state, std::size_t idx,
                           bool report)
{
    const Inst &inst = prog.fetch(idx);
    if (report) {
        if (isa::isMem(inst.op))
            checkMem(state, inst, idx);
        if (isa::isReturn(inst))
            checkReturn(state, inst, idx);
    }

    AbsValue spBefore = state.get(reg::sp);
    applyInst(state, inst);
    // Interprocedural refinement: replace the clobbered v0/v1 with
    // the join of the callee's return-site values, when known.
    if (inst.op == OpCode::JAL) {
        if (auto it = retsIn.find(inst.target); it != retsIn.end())
            for (int i = 0; i < 2; ++i) {
                const AbsValue &v =
                    it->second[static_cast<std::size_t>(i)];
                if (v.kind != ValueKind::Bottom)
                    state.set(static_cast<RegId>(reg::v0 + i), v);
            }
    }
    const AbsValue &spAfter = state.get(reg::sp);
    if (spAfter != spBefore && !spAfter.isStackOff()) {
        if (spAfter.kind == ValueKind::StackDerived) {
            // Alloca-style dynamic adjustment: sp moved by a
            // statically unknown amount but is still rooted in the
            // stack. Accesses stay classifiable (StackDerived bases
            // are Local); only the exact-offset frame checks and the
            // frame-size bound are forfeit.
            if (report && !spInexactReported) {
                spInexactReported = true;
                diag(Severity::Warning, "sp-inexact", idx,
                     format("sp adjusted by a statically unknown "
                            "amount at %s; frame size is dynamic",
                            dis(idx).c_str()));
            }
        } else {
            if (report && !spLostReported) {
                spLostReported = true;
                diag(Severity::Error, "sp-lost", idx,
                     format("sp is no longer a known stack offset "
                            "after %s (now %s)",
                            dis(idx).c_str(), spAfter.str().c_str()));
            }
            // Pin sp to "somewhere on the stack" so one bad write
            // does not cascade into a diagnostic per downstream
            // instruction.
            state.set(reg::sp, AbsValue::stackDerived());
        }
    }
    if (report)
        trackFrame(state, idx);
}

void
FunctionAnalyzer::checkMem(const RegState &state, const Inst &inst,
                           std::size_t idx)
{
    const AbsValue &base = state.get(inst.rs);

    MemAccess acc;
    acc.instIdx = idx;
    acc.load = isa::isLoad(inst.op);
    acc.annotatedLocal = inst.localHint;

    if (base.isStackOff()) {
        acc.verdict = Verdict::Local;
        acc.spOffset = base.n + inst.imm;
        acc.spOffsetKnown = true;
    } else if (base.isConst()) {
        acc.verdict =
            layout::isStackAddr(base.word() +
                                static_cast<Word>(inst.imm))
                ? Verdict::Local
                : Verdict::NonLocal;
    } else if (base.kind == ValueKind::NonStack) {
        acc.verdict = Verdict::NonLocal;
    } else if (base.kind == ValueKind::StackDerived) {
        // Rooted-pointer assumption (value.hh): arithmetic rooted at
        // sp stays inside the stack region, so a stack-derived base
        // with an unknown offset is still a local access — it just
        // forfeits the exact-offset frame checks below. The Oracle
        // cross-check in tests/test_analysis.cpp validates this
        // dynamically on every workload.
        acc.verdict = Verdict::Local;
    } else {
        acc.verdict = Verdict::Ambiguous;
    }

    if (acc.spOffsetKnown) {
        const AbsValue &sp = state.get(reg::sp);
        auto off = static_cast<long long>(acc.spOffset);
        if (sp.isStackOff() && acc.spOffset < sp.n)
            diag(Severity::Error, "access-below-frame", idx,
                 format("access at entry%+lld is below the live "
                        "frame (sp at entry%+lld): %s",
                        off, static_cast<long long>(sp.n),
                        dis(idx).c_str()));
        else if (acc.spOffset >= 0)
            diag(Severity::Warning, "access-above-entry", idx,
                 format("access at entry%+lld reaches the caller's "
                        "frame: %s",
                        off, dis(idx).c_str()));
    }

    if (acc.annotatedLocal && acc.verdict == Verdict::NonLocal)
        diag(Severity::Error, "annotation-local-but-nonlocal", idx,
             format("annotated !local but provably non-local "
                    "(base %s): %s",
                    base.str().c_str(), dis(idx).c_str()));
    else if (!acc.annotatedLocal && acc.verdict == Verdict::Local)
        diag(Severity::Warning, "annotation-missing-local", idx,
             format("provably local but not annotated !local: %s",
                    dis(idx).c_str()));

    info.accesses.push_back(acc);
}

void
FunctionAnalyzer::checkReturn(const RegState &state, const Inst &,
                              std::size_t idx)
{
    if (retCollect != nullptr) {
        auto &rets =
            retCollect->try_emplace(info.entry, bottoms<2>())
                .first->second;
        for (int i = 0; i < 2; ++i)
            rets[static_cast<std::size_t>(i)] = join(
                rets[static_cast<std::size_t>(i)],
                crossFunctionBoundary(state.get(
                    static_cast<RegId>(reg::v0 + i))));
    }
    const AbsValue &sp = state.get(reg::sp);
    if (sp.isStackOff() && sp.n != 0)
        diag(Severity::Error, "sp-unbalanced-return", idx,
             format("returns with sp at entry%+lld bytes: %s",
                    static_cast<long long>(sp.n), dis(idx).c_str()));
    else if (!sp.isStackOff() && !spLostReported)
        diag(Severity::Error, "sp-unbalanced-return", idx,
             format("returns with sp at an unknown depth: %s",
                    dis(idx).c_str()));
}

void
FunctionAnalyzer::trackFrame(const RegState &state, std::size_t idx)
{
    const AbsValue &sp = state.get(reg::sp);
    if (!sp.isStackOff()) {
        info.frameKnown = false;
        return;
    }
    if (sp.n >= 0)
        return;
    auto bytes = static_cast<std::size_t>(-sp.n);
    info.frameWords =
        std::max(info.frameWords, (bytes + WordBytes - 1) / WordBytes);
    if (bytes > static_cast<std::size_t>(isa::MemOffsetMax) &&
        !bigFrameReported) {
        bigFrameReported = true;
        diag(Severity::Note, "frame-exceeds-offset-field", idx,
             format("frame of %zu bytes exceeds the 15-bit offset "
                    "field; needs a secondary base register "
                    "(paper footnote 6)",
                    bytes));
    }
}

void
FunctionAnalyzer::checkMerges()
{
    for (const BasicBlock &bb : info.cfg.blocks) {
        if (bb.preds.size() < 2 ||
            !inStates[static_cast<std::size_t>(bb.id)].reachable)
            continue;
        bool haveDepth = false;
        std::int64_t depth = 0;
        for (int p : bb.preds) {
            const RegState &out =
                outStates[static_cast<std::size_t>(p)];
            if (!out.reachable || !out.get(reg::sp).isStackOff())
                continue;
            std::int64_t d = out.get(reg::sp).n;
            if (!haveDepth) {
                haveDepth = true;
                depth = d;
            } else if (d != depth) {
                diag(Severity::Error, "sp-merge-mismatch", bb.first,
                     format("sp depth differs across predecessors "
                            "(entry%+lld vs entry%+lld) at %s",
                            static_cast<long long>(depth),
                            static_cast<long long>(d),
                            dis(bb.first).c_str()));
                break;
            }
        }
    }
}

FunctionInfo
FunctionAnalyzer::run(ArgMap *callArgs, RetMap *retVals)
{
    retCollect = retVals;
    fixpoint();

    for (const BasicBlock &bb : info.cfg.blocks) {
        RegState st = inStates[static_cast<std::size_t>(bb.id)];
        if (!st.reachable)
            continue;
        for (std::size_t idx = bb.first; idx <= bb.last; ++idx) {
            const Inst &inst = prog.fetch(idx);
            if (callArgs != nullptr && inst.op == OpCode::JAL &&
                inst.target < prog.textSize()) {
                auto &args =
                    callArgs->try_emplace(inst.target, bottoms<4>())
                        .first->second;
                for (int i = 0; i < 4; ++i)
                    args[static_cast<std::size_t>(i)] = join(
                        args[static_cast<std::size_t>(i)],
                        crossFunctionBoundary(st.get(
                            static_cast<RegId>(reg::a0 + i))));
            }
            transfer(st, idx, /*report=*/true);
        }
    }
    checkMerges();

    for (std::size_t idx : info.cfg.indirectAt)
        diag(Severity::Warning, "unresolved-indirect-jump", idx,
             format("statically unresolvable indirect jump: %s",
                    dis(idx).c_str()));
    for (std::size_t idx : info.cfg.outOfTextAt)
        diag(Severity::Error, "control-flow-out-of-text", idx,
             format("control transfer leaves the text segment: %s",
                    dis(idx).c_str()));

    return std::move(info);
}

} // namespace

AnalysisResult
analyze(const prog::Program &prog)
{
    AnalysisResult res;
    res.program = prog.name();
    if (prog.textSize() == 0)
        return res;

    // Context-insensitive interprocedural argument propagation:
    // analyze with Top arguments first, then re-analyze with the
    // join of the abstract a0..a3 seen at every jal site, until the
    // argument map stops widening. The refinement is sound only when
    // every call site is visible, so any indirect jump disables it.
    const std::vector<std::size_t> entries = discoverFunctions(prog);
    ArgMap argsIn;
    RetMap retsIn;
    for (int round = 0; round < 8; ++round) {
        res.functions.clear();
        res.diagnostics.clear();
        ArgMap argsOut;
        RetMap retsOut;
        bool indirect = false;
        for (std::size_t entry : entries) {
            res.functions.push_back(
                FunctionAnalyzer(prog, entry, res.diagnostics,
                                 argsIn, retsIn)
                    .run(&argsOut, &retsOut));
            indirect |= !res.functions.back().cfg.indirectAt.empty();
        }
        if (indirect || (argsOut == argsIn && retsOut == retsIn))
            break;
        argsIn = std::move(argsOut);
        retsIn = std::move(retsOut);
    }

    // Merge per-function verdicts; shared code with conflicting
    // verdicts degrades to Ambiguous.
    for (const FunctionInfo &fn : res.functions)
        for (const MemAccess &acc : fn.accesses) {
            auto [it, inserted] =
                res.verdicts.emplace(acc.instIdx, acc.verdict);
            if (!inserted && it->second != acc.verdict)
                it->second = Verdict::Ambiguous;
        }

    for (const auto &[idx, verdict] : res.verdicts)
        (isa::isLoad(prog.fetch(idx).op) ? res.loads : res.stores)
            .add(verdict);

    std::sort(res.diagnostics.begin(), res.diagnostics.end(),
              [](const Diagnostic &a, const Diagnostic &b) {
                  if (a.instIdx != b.instIdx)
                      return a.instIdx < b.instIdx;
                  if (a.severity != b.severity)
                      return a.severity > b.severity;
                  return a.id < b.id;
              });
    return res;
}

} // namespace ddsim::analysis
