#include "analysis/annotate.hh"

#include "isa/encode.hh"
#include "isa/opcode.hh"

namespace ddsim::analysis {

const char *
hintPolicyName(HintPolicy p)
{
    switch (p) {
      case HintPolicy::Safe: return "safe";
      case HintPolicy::Speculative: return "speculative";
      case HintPolicy::Hybrid: return "hybrid";
    }
    return "?";
}

std::optional<HintPolicy>
hintPolicyFromName(std::string_view name)
{
    for (HintPolicy p : {HintPolicy::Safe, HintPolicy::Speculative,
                         HintPolicy::Hybrid}) {
        if (name == hintPolicyName(p))
            return p;
    }
    return std::nullopt;
}

prog::Program
annotateProgram(const prog::Program &prog, const AnalysisResult &res,
                HintPolicy policy, AnnotateStats *stats)
{
    prog::Program out = prog;
    AnnotateStats st;
    for (const auto &[idx, verdict] : res.verdicts) {
        const isa::Inst &inst = prog.fetch(
            static_cast<std::uint32_t>(idx));
        ++st.memInsts;

        bool hint = inst.localHint;
        switch (verdict) {
          case Verdict::Local:
            hint = true;
            break;
          case Verdict::NonLocal:
            hint = false;
            break;
          case Verdict::Ambiguous:
            ++st.ambiguous;
            if (policy == HintPolicy::Safe)
                hint = false;
            else if (policy == HintPolicy::Speculative)
                hint = true;
            // Hybrid: keep the existing bit as the predictor seed.
            break;
        }

        (hint ? st.hinted : st.cleared)++;
        if (hint == inst.localHint)
            continue;
        ++st.changed;
        isa::Inst rewritten = inst;
        rewritten.localHint = hint;
        out.patch(static_cast<std::uint32_t>(idx),
                  isa::encode(rewritten));
    }
    if (stats != nullptr)
        *stats = st;
    return out;
}

prog::Program
annotateProgram(const prog::Program &prog, HintPolicy policy,
                AnnotateStats *stats)
{
    return annotateProgram(prog, analyze(prog), policy, stats);
}

} // namespace ddsim::analysis
