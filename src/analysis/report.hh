/**
 * @file
 * Rendering of analysis results: a human-readable text report and a
 * machine-readable JSON document (schema in docs/ANALYSIS.md).
 */

#ifndef DDSIM_ANALYSIS_REPORT_HH_
#define DDSIM_ANALYSIS_REPORT_HH_

#include <string>
#include <vector>

#include "analysis/analyzer.hh"

namespace ddsim::analysis {

/**
 * Human-readable report: summary line, static access mix, per-function
 * frame table, then every diagnostic. @p verbose additionally lists
 * each memory instruction with its verdict.
 */
std::string textReport(const AnalysisResult &res, bool verbose = false);

/** JSON report. Stable key order; schema in docs/ANALYSIS.md. */
std::string jsonReport(const AnalysisResult &res);

/**
 * The versioned ddsim-lint-v1 document: a generator provenance block,
 * one per-program object (the jsonReport shape, including the
 * per-instruction verdicts array) per analyzed program, and a summary
 * block whose counts are the element-wise totals — the contract
 * tools/validate_manifest.py checks and tools/check_lint_golden.py
 * pins per workload.
 */
std::string jsonDocument(const std::vector<AnalysisResult> &results);

} // namespace ddsim::analysis

#endif // DDSIM_ANALYSIS_REPORT_HH_
