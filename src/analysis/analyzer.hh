/**
 * @file
 * The static MISA program analyzer.
 *
 * Runs the abstract interpretation of value.hh over every function's
 * CFG to a fixpoint, then makes one reporting pass that (a) verifies
 * stack discipline — sp balanced on every return path, no access
 * below the live frame, frames reachable within the 15-bit offset
 * field (paper footnote 6), (b) classifies every memory instruction
 * as local / non-local / ambiguous (the static columns of Fig. 2/3),
 * and (c) cross-checks the classification against each instruction's
 * annotation bit (Section 2.2.3).
 *
 * Diagnostics catalogue (ids are stable; docs/ANALYSIS.md documents
 * each with an example):
 *
 *   error   sp-lost                     sp no longer sp-relative
 *   error   sp-unbalanced-return        jr ra with sp != entry sp
 *   error   sp-merge-mismatch           join of unequal sp depths
 *   error   access-below-frame          sp-relative access below the
 *                                       live frame's low edge
 *   error   annotation-local-but-nonlocal  !local proved wrong
 *   error   control-flow-out-of-text    branch/jump target outside text
 *   warning access-above-entry          sp-relative access at or above
 *                                       the caller's frame
 *   warning sp-inexact                  sp adjusted by a statically
 *                                       unknown amount (alloca-style
 *                                       dynamic frame); still
 *                                       stack-rooted
 *   warning annotation-missing-local    provably-local access lacking
 *                                       the annotation bit
 *   warning unresolved-indirect-jump    jalr / jr through non-ra
 *   note    frame-exceeds-offset-field  frame larger than the 15-bit
 *                                       offset field spans
 */

#ifndef DDSIM_ANALYSIS_ANALYZER_HH_
#define DDSIM_ANALYSIS_ANALYZER_HH_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "analysis/cfg.hh"
#include "analysis/value.hh"
#include "prog/program.hh"

namespace ddsim::analysis {

/** Static classification of one memory instruction. */
enum class Verdict : std::uint8_t
{
    Local,      ///< Provably a stack (local-variable) access.
    NonLocal,   ///< Provably not a stack access.
    Ambiguous,  ///< The analysis cannot decide.
};

const char *verdictName(Verdict v);

enum class Severity : std::uint8_t { Note, Warning, Error };

const char *severityName(Severity s);

/** One finding, anchored to an instruction. */
struct Diagnostic
{
    Severity severity = Severity::Note;
    std::string id;       ///< Catalogue id (kebab-case, stable).
    std::size_t instIdx = 0;
    std::string function; ///< Name of the enclosing function.
    std::string message;  ///< Human-readable, includes disassembly.
};

/** One statically classified memory instruction. */
struct MemAccess
{
    std::size_t instIdx = 0;
    Verdict verdict = Verdict::Ambiguous;
    bool load = false;          ///< Load if true, store otherwise.
    bool annotatedLocal = false;///< The instruction's localHint bit.
    /** Byte offset of the access from the entry sp, when exact. */
    std::int64_t spOffset = 0;
    bool spOffsetKnown = false;
};

/** Per-function results. */
struct FunctionInfo
{
    std::size_t entry = 0;
    std::string name;
    Cfg cfg;
    /** Max stack depth in words over all reachable points. */
    std::size_t frameWords = 0;
    /** False when sp tracking was lost somewhere in the function. */
    bool frameKnown = true;
    std::vector<MemAccess> accesses;
};

/** Local / non-local / ambiguous static instruction counts. */
struct Mix
{
    std::size_t local = 0;
    std::size_t nonLocal = 0;
    std::size_t ambiguous = 0;

    std::size_t total() const { return local + nonLocal + ambiguous; }
    void add(Verdict v);
};

/** Whole-program analysis results. */
struct AnalysisResult
{
    std::string program;
    std::vector<FunctionInfo> functions;
    std::vector<Diagnostic> diagnostics;
    /**
     * Per-instruction verdicts, joined across functions when code is
     * shared: conflicting verdicts degrade to Ambiguous.
     */
    std::map<std::size_t, Verdict> verdicts;
    Mix loads;
    Mix stores;

    std::size_t count(Severity s) const;
    std::size_t errors() const { return count(Severity::Error); }
    std::size_t warnings() const { return count(Severity::Warning); }
};

/** Analyze @p prog: dataflow fixpoint plus one reporting pass. */
AnalysisResult analyze(const prog::Program &prog);

} // namespace ddsim::analysis

#endif // DDSIM_ANALYSIS_ANALYZER_HH_
