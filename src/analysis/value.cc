#include "analysis/value.hh"

#include <cstdint>

#include "isa/opcode.hh"
#include "isa/regs.hh"
#include "util/log.hh"

namespace ddsim::analysis {

using isa::Inst;
using isa::OpCode;
namespace reg = isa::reg;

namespace {

/** Wrap to 32 bits and sign-extend, matching executor arithmetic. */
std::int64_t
wrap32(std::int64_t v)
{
    return static_cast<std::int64_t>(
        static_cast<std::int32_t>(static_cast<std::uint32_t>(v)));
}

/**
 * A constant that plausibly roots address arithmetic: anything from
 * the text base up to the stack region. Values below the text base
 * are plain integers (loop bounds, LCG multipliers) whose sums we
 * must not over-claim as non-stack.
 */
bool
isPointerConst(const AbsValue &v)
{
    Word w = v.word();
    return v.isConst() && w >= layout::TextBase && w < 0x7000'0000u;
}

/**
 * A value that roots address arithmetic on the non-stack side: a
 * pointer-looking constant or anything already proven non-stack.
 */
bool
isRoot(const AbsValue &v)
{
    return v.kind == ValueKind::NonStack || isPointerConst(v);
}

} // namespace

AbsValue
AbsValue::konst(std::int64_t v)
{
    return {ValueKind::Const, wrap32(v)};
}

bool
AbsValue::isNonStackish() const
{
    if (kind == ValueKind::NonStack)
        return true;
    return isConst() && !layout::isStackAddr(word());
}

std::string
AbsValue::str() const
{
    switch (kind) {
      case ValueKind::Bottom:
        return "bottom";
      case ValueKind::Const:
        return format("const 0x%x", word());
      case ValueKind::StackOff:
        return n >= 0 ? format("sp+%lld", static_cast<long long>(n))
                      : format("sp%lld", static_cast<long long>(n));
      case ValueKind::StackDerived:
        return "stack?";
      case ValueKind::NonStack:
        return "nonstack";
      case ValueKind::Top:
        return "top";
    }
    return "?";
}

AbsValue
join(const AbsValue &a, const AbsValue &b)
{
    if (a.kind == ValueKind::Bottom)
        return b;
    if (b.kind == ValueKind::Bottom)
        return a;
    if (a == b)
        return a;
    if (a.isStackish() && b.isStackish())
        return AbsValue::stackDerived();
    if (a.isNonStackish() && b.isNonStackish())
        return AbsValue::nonStack();
    return AbsValue::top();
}

AbsValue
absAdd(const AbsValue &a, const AbsValue &b)
{
    if (a.kind == ValueKind::Bottom || b.kind == ValueKind::Bottom)
        return AbsValue::bottom();
    if (a.isConst() && b.isConst())
        return AbsValue::konst(a.n + b.n);
    if (a.isStackOff() && b.isConst())
        return AbsValue::stackOff(a.n + b.n);
    if (b.isStackOff() && a.isConst())
        return AbsValue::stackOff(b.n + a.n);
    if (a.isStackish() && b.isStackish())
        return AbsValue::top();
    // Stack pointer plus an index stays inside the stack region.
    if (a.isStackish() || b.isStackish())
        return AbsValue::stackDerived();
    // Arithmetic rooted at a non-stack pointer stays outside the
    // stack region, whatever the index operand is.
    if (isRoot(a) || isRoot(b))
        return AbsValue::nonStack();
    if (a.isNonStackish() && b.isNonStackish())
        return AbsValue::nonStack();
    return AbsValue::top();
}

AbsValue
absSub(const AbsValue &a, const AbsValue &b)
{
    if (a.kind == ValueKind::Bottom || b.kind == ValueKind::Bottom)
        return AbsValue::bottom();
    if (a.isConst() && b.isConst())
        return AbsValue::konst(a.n - b.n);
    if (a.isStackOff() && b.isConst())
        return AbsValue::stackOff(a.n - b.n);
    if (a.isStackOff() && b.isStackOff())
        return AbsValue::konst(a.n - b.n);
    if (a.isStackish() && !b.isStackish())
        return AbsValue::stackDerived();
    if (isRoot(a) && !b.isStackish())
        return AbsValue::nonStack();
    if (a.isNonStackish() && b.isNonStackish())
        return AbsValue::nonStack();
    return AbsValue::top();
}

RegState
RegState::functionEntry()
{
    RegState s;
    s.reachable = true;
    s.gpr.fill(AbsValue::top());
    s.gpr[reg::zero] = AbsValue::konst(0);
    s.gpr[reg::sp] = AbsValue::stackOff(0);
    s.gpr[reg::fp] = AbsValue::stackDerived();
    s.gpr[reg::gp] = AbsValue::konst(layout::DataBase);
    s.gpr[reg::ra] = AbsValue::nonStack();
    return s;
}

void
RegState::set(RegId r, const AbsValue &v)
{
    if (r == reg::zero)
        return; // r0 is hard-wired.
    gpr[r] = v;
}

RegState
joinStates(const RegState &a, const RegState &b)
{
    if (!a.reachable)
        return b;
    if (!b.reachable)
        return a;
    RegState out;
    out.reachable = true;
    for (int r = 0; r < NumGprs; ++r)
        out.gpr[static_cast<std::size_t>(r)] =
            join(a.gpr[static_cast<std::size_t>(r)],
                 b.gpr[static_cast<std::size_t>(r)]);
    // Frame slots: keep only offsets known on both paths; joins that
    // widen to Top are dropped (a missing key already means Top).
    for (const auto &[off, va] : a.frame) {
        auto it = b.frame.find(off);
        if (it == b.frame.end())
            continue;
        AbsValue v = join(va, it->second);
        if (v.kind != ValueKind::Top)
            out.frame.emplace(off, v);
    }
    return out;
}

namespace {

AbsValue
logicalFold(OpCode op, const AbsValue &a, const AbsValue &b)
{
    if (a.isConst() && b.isConst()) {
        Word x = a.word(), y = b.word();
        switch (op) {
          case OpCode::AND:
          case OpCode::ANDI: return AbsValue::konst(x & y);
          case OpCode::OR:
          case OpCode::ORI:  return AbsValue::konst(x | y);
          case OpCode::XOR:
          case OpCode::XORI: return AbsValue::konst(x ^ y);
          case OpCode::NOR:  return AbsValue::konst(~(x | y));
          default: break;
        }
    }
    return AbsValue::top();
}

/** AND result is numerically bounded by any constant operand. */
AbsValue
andValue(const AbsValue &a, const AbsValue &b)
{
    AbsValue folded = logicalFold(OpCode::AND, a, b);
    if (folded.isConst())
        return folded;
    auto boundedMask = [](const AbsValue &v) {
        return v.isConst() && v.word() < 0x7000'0000u;
    };
    if (boundedMask(a) || boundedMask(b))
        return AbsValue::nonStack();
    return AbsValue::top();
}

/** OR with zero is the canonical move idiom. */
AbsValue
orValue(const AbsValue &a, const AbsValue &b)
{
    if (a.isConst() && a.n == 0)
        return b;
    if (b.isConst() && b.n == 0)
        return a;
    AbsValue folded = logicalFold(OpCode::OR, a, b);
    if (folded.isConst())
        return folded;
    if (a.isNonStackish() && b.isNonStackish())
        return AbsValue::nonStack();
    return AbsValue::top();
}

AbsValue
shiftValue(OpCode op, const AbsValue &v, std::int64_t amount)
{
    if (!v.isConst())
        return AbsValue::top();
    Word x = v.word();
    int sh = static_cast<int>(amount) & 31;
    switch (op) {
      case OpCode::SLL:
      case OpCode::SLLV: return AbsValue::konst(x << sh);
      case OpCode::SRL:
      case OpCode::SRLV: return AbsValue::konst(x >> sh);
      case OpCode::SRA:
      case OpCode::SRAV:
        return AbsValue::konst(static_cast<SWord>(x) >> sh);
      default: break;
    }
    return AbsValue::top();
}

AbsValue
mulValue(const AbsValue &a, const AbsValue &b)
{
    if (a.isConst() && b.isConst())
        return AbsValue::konst(a.n * b.n);
    return AbsValue::top();
}

AbsValue
divValue(const AbsValue &a, const AbsValue &b)
{
    if (!a.isConst() || !b.isConst())
        return AbsValue::top();
    auto x = static_cast<SWord>(a.word());
    auto y = static_cast<SWord>(b.word());
    if (y == 0)
        return AbsValue::konst(0);
    if (x == INT32_MIN && y == -1)
        return AbsValue::konst(INT32_MIN);
    return AbsValue::konst(x / y);
}

/** 0/1 comparison results are provably not stack addresses. */
AbsValue
cmpValue(bool known, bool result)
{
    if (known)
        return AbsValue::konst(result ? 1 : 0);
    return AbsValue::nonStack();
}

/** Drop frame slots overlapping [off, off+size) bytes. */
void
eraseFrameRange(RegState &state, std::int64_t off, int size)
{
    state.frame.erase(state.frame.lower_bound(off - 3),
                      state.frame.lower_bound(off + size));
}

/** A store's effect on the tracked frame slots. */
void
applyStore(RegState &state, const Inst &inst, const AbsValue &base,
           const AbsValue &value)
{
    int size = static_cast<int>(isa::opInfo(inst.op).accessSize);
    if (base.isStackOff()) {
        std::int64_t off = base.n + inst.imm;
        eraseFrameRange(state, off, size);
        if (inst.op == OpCode::SW && value.kind != ValueKind::Top &&
            value.kind != ValueKind::Bottom)
            state.frame.emplace(off, value);
        return;
    }
    // Any store that might hit the stack at an unknown offset wipes
    // everything we know about the frame.
    bool mayBeStack =
        base.isStackish() || base.kind == ValueKind::Top ||
        (base.isConst() &&
         layout::isStackAddr(base.word() +
                             static_cast<Word>(inst.imm)));
    if (mayBeStack)
        state.frame.clear();
}

/** Clobber the caller-saved registers across a call (o32 ABI). */
void
clobberCallerSaved(RegState &state)
{
    static constexpr RegId callerSaved[] = {
        reg::at, reg::v0, reg::v1, reg::a0, reg::a1, reg::a2,
        reg::a3, reg::t0, reg::t1, reg::t2, reg::t3, reg::t4,
        reg::t5, reg::t6, reg::t7, reg::t8, reg::t9, reg::k0,
        reg::k1, reg::ra,
    };
    for (RegId r : callerSaved)
        state.set(r, AbsValue::top());
}

} // namespace

void
applyInst(RegState &state, const Inst &inst)
{
    const AbsValue &rs = state.get(inst.rs);
    const AbsValue &rt = state.get(inst.rt);

    switch (inst.op) {
      case OpCode::ADD:
        state.set(inst.rd, absAdd(rs, rt));
        break;
      case OpCode::SUB:
        state.set(inst.rd, absSub(rs, rt));
        break;
      case OpCode::MUL:
        state.set(inst.rd, mulValue(rs, rt));
        break;
      case OpCode::DIV:
        state.set(inst.rd, divValue(rs, rt));
        break;
      case OpCode::AND:
        state.set(inst.rd, andValue(rs, rt));
        break;
      case OpCode::OR:
        state.set(inst.rd, orValue(rs, rt));
        break;
      case OpCode::XOR:
      case OpCode::NOR:
        state.set(inst.rd, logicalFold(inst.op, rs, rt));
        break;
      case OpCode::SLLV:
      case OpCode::SRLV:
      case OpCode::SRAV:
        state.set(inst.rd, rt.isConst()
                               ? shiftValue(inst.op, rs, rt.n)
                               : AbsValue::top());
        break;
      case OpCode::SLT:
        state.set(inst.rd,
                  cmpValue(rs.isConst() && rt.isConst(),
                           static_cast<SWord>(rs.word()) <
                               static_cast<SWord>(rt.word())));
        break;
      case OpCode::SLTU:
        state.set(inst.rd, cmpValue(rs.isConst() && rt.isConst(),
                                    rs.word() < rt.word()));
        break;

      case OpCode::SLL:
      case OpCode::SRL:
      case OpCode::SRA:
        state.set(inst.rd, shiftValue(inst.op, rs, inst.imm));
        break;

      case OpCode::ADDI:
        state.set(inst.rt, absAdd(rs, AbsValue::konst(inst.imm)));
        break;
      case OpCode::ANDI:
        // Logical immediates are zero-extended 16-bit fields, so the
        // mask always bounds the result below the stack region.
        state.set(inst.rt, andValue(rs, AbsValue::konst(inst.imm)));
        break;
      case OpCode::ORI:
        state.set(inst.rt, orValue(rs, AbsValue::konst(inst.imm)));
        break;
      case OpCode::XORI:
        state.set(inst.rt,
                  logicalFold(inst.op, rs, AbsValue::konst(inst.imm)));
        break;
      case OpCode::SLTI:
        state.set(inst.rt,
                  cmpValue(rs.isConst(),
                           static_cast<SWord>(rs.word()) < inst.imm));
        break;
      case OpCode::LUI:
        state.set(inst.rt, AbsValue::konst(
                               static_cast<std::int64_t>(inst.imm)
                               << 16));
        break;

      case OpCode::LW: {
        AbsValue v = AbsValue::top();
        if (rs.isStackOff()) {
            auto it = state.frame.find(rs.n + inst.imm);
            if (it != state.frame.end())
                v = it->second;
        }
        state.set(inst.rt, v);
        break;
      }
      case OpCode::LB:
      case OpCode::LBU:
        state.set(inst.rt, AbsValue::top());
        break;

      case OpCode::SW:
      case OpCode::SB:
        applyStore(state, inst, rs, rt);
        break;
      case OpCode::SD:
        applyStore(state, inst, rs, AbsValue::top());
        break;

      case OpCode::JAL:
      case OpCode::JALR:
        // The callee runs below our sp and must not touch this frame
        // — unless we hand it a stack address to write through.
        for (int i = 0; i < 4; ++i)
            if (state.get(static_cast<RegId>(reg::a0 + i))
                    .isStackish()) {
                state.frame.clear();
                break;
            }
        clobberCallerSaved(state);
        state.set(inst.op == OpCode::JAL ? reg::ra : inst.rd,
                  AbsValue::nonStack());
        break;

      case OpCode::CVT_W_D:
        state.set(inst.rd, AbsValue::top());
        break;
      case OpCode::C_LT_D:
      case OpCode::C_LE_D:
      case OpCode::C_EQ_D:
        state.set(inst.rd, cmpValue(false, false));
        break;

      default:
        // Stores, FP arithmetic, branches, j/jr, nop/halt/print:
        // no GPR side effects.
        break;
    }
}

} // namespace ddsim::analysis
