/**
 * @file
 * Control-flow graph construction over a decoded program's text.
 *
 * Functions are discovered from the program entry point plus every
 * jal target; each function gets its own CFG of basic blocks with
 * fall-through, branch, and jump edges. Calls (jal/jalr) end a block
 * but edge to their own fall-through successor — the callee is
 * recorded as a call target, not a successor, so the per-function
 * dataflow stays intra-procedural the way the paper's compiler-side
 * annotation pass is.
 */

#ifndef DDSIM_ANALYSIS_CFG_HH_
#define DDSIM_ANALYSIS_CFG_HH_

#include <cstddef>
#include <map>
#include <vector>

#include "prog/program.hh"

namespace ddsim::analysis {

/** A maximal straight-line run of instructions. */
struct BasicBlock
{
    int id = -1;
    std::size_t first = 0;  ///< Index of the leader instruction.
    std::size_t last = 0;   ///< Index of the final instruction (inclusive).
    std::vector<int> succs; ///< Successor block ids, in edge order.
    std::vector<int> preds; ///< Predecessor block ids.

    std::size_t size() const { return last - first + 1; }
};

/** Per-function control-flow graph. */
struct Cfg
{
    std::size_t entry = 0;          ///< Entry instruction index.
    std::vector<BasicBlock> blocks; ///< blocks[0] is the entry block.
    /** Leader instruction index -> block id. */
    std::map<std::size_t, int> blockAt;
    /** jal targets reached from this function (entry indices). */
    std::vector<std::size_t> callTargets;
    /** Branch/jump instructions whose target falls outside the text. */
    std::vector<std::size_t> outOfTextAt;
    /** jr-through-non-ra / jalr sites (statically unresolvable). */
    std::vector<std::size_t> indirectAt;

    /** The block containing instruction @p idx, or -1. */
    int blockContaining(std::size_t idx) const;
};

/**
 * Intra-procedural successor instruction indices of @p idx. Call
 * instructions report only their fall-through; returns and halts
 * report none. Targets outside the text are dropped (the CFG builder
 * records them in Cfg::outOfTextAt).
 */
std::vector<std::size_t> instSuccessors(const prog::Program &prog,
                                        std::size_t idx);

/** Build the CFG of the function entered at instruction @p entryIdx. */
Cfg buildCfg(const prog::Program &prog, std::size_t entryIdx);

/**
 * Entry indices of every function reachable from the program entry
 * via direct calls, sorted ascending. The program entry is always
 * included.
 */
std::vector<std::size_t> discoverFunctions(const prog::Program &prog);

} // namespace ddsim::analysis

#endif // DDSIM_ANALYSIS_CFG_HH_
