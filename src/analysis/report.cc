#include "analysis/report.hh"

#include <sstream>

#include "util/log.hh"

namespace ddsim::analysis {

namespace {

double
pct(std::size_t part, std::size_t whole)
{
    return whole == 0 ? 0.0
                      : 100.0 * static_cast<double>(part) /
                            static_cast<double>(whole);
}

std::string
mixLine(const char *what, const Mix &m)
{
    return format("%s %zu: %zu local (%.1f%%) / %zu non-local / "
                  "%zu ambiguous",
                  what, m.total(), m.local, pct(m.local, m.total()),
                  m.nonLocal, m.ambiguous);
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += format("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

std::string
jsonMix(const Mix &m)
{
    return format("{\"local\": %zu, \"nonlocal\": %zu, "
                  "\"ambiguous\": %zu}",
                  m.local, m.nonLocal, m.ambiguous);
}

} // namespace

std::string
textReport(const AnalysisResult &res, bool verbose)
{
    std::ostringstream os;
    os << "== ddlint: " << res.program << " ==\n";
    os << format("functions: %zu\n", res.functions.size());
    os << "  " << mixLine("loads", res.loads) << "\n";
    os << "  " << mixLine("stores", res.stores) << "\n";

    os << "frames:\n";
    for (const FunctionInfo &fn : res.functions) {
        os << format("  %-24s entry @%-6zu %3zu blocks  ",
                     fn.name.c_str(), fn.entry,
                     fn.cfg.blocks.size());
        if (fn.frameKnown)
            os << format("%zu words\n", fn.frameWords);
        else
            os << format(">=%zu words (sp tracking lost)\n",
                         fn.frameWords);
        if (verbose)
            for (const MemAccess &acc : fn.accesses)
                os << format("    @%-6zu %-9s %s%s\n", acc.instIdx,
                             verdictName(acc.verdict),
                             acc.spOffsetKnown
                                 ? format("entry%+lld ",
                                          static_cast<long long>(
                                              acc.spOffset))
                                       .c_str()
                                 : "",
                             acc.annotatedLocal ? "!local" : "");
    }

    os << format("diagnostics: %zu error(s), %zu warning(s), "
                 "%zu note(s)\n",
                 res.errors(), res.warnings(),
                 res.count(Severity::Note));
    for (const Diagnostic &d : res.diagnostics)
        os << format("  %-7s %-27s @%-6zu %s: %s\n",
                     severityName(d.severity), d.id.c_str(),
                     d.instIdx, d.function.c_str(),
                     d.message.c_str());
    return os.str();
}

std::string
jsonReport(const AnalysisResult &res)
{
    std::ostringstream os;
    os << "{\n";
    os << format("  \"program\": \"%s\",\n",
                 jsonEscape(res.program).c_str());
    os << format("  \"errors\": %zu,\n", res.errors());
    os << format("  \"warnings\": %zu,\n", res.warnings());
    os << format("  \"notes\": %zu,\n", res.count(Severity::Note));
    os << "  \"loads\": " << jsonMix(res.loads) << ",\n";
    os << "  \"stores\": " << jsonMix(res.stores) << ",\n";

    os << "  \"functions\": [";
    for (std::size_t i = 0; i < res.functions.size(); ++i) {
        const FunctionInfo &fn = res.functions[i];
        Mix mix;
        for (const MemAccess &acc : fn.accesses)
            mix.add(acc.verdict);
        os << (i ? ",\n    " : "\n    ");
        os << format("{\"name\": \"%s\", \"entry\": %zu, "
                     "\"blocks\": %zu, \"frame_words\": %zu, "
                     "\"frame_known\": %s, \"accesses\": %s}",
                     jsonEscape(fn.name).c_str(), fn.entry,
                     fn.cfg.blocks.size(), fn.frameWords,
                     fn.frameKnown ? "true" : "false",
                     jsonMix(mix).c_str());
    }
    os << "\n  ],\n";

    os << "  \"diagnostics\": [";
    for (std::size_t i = 0; i < res.diagnostics.size(); ++i) {
        const Diagnostic &d = res.diagnostics[i];
        os << (i ? ",\n    " : "\n    ");
        os << format("{\"severity\": \"%s\", \"id\": \"%s\", "
                     "\"inst\": %zu, \"function\": \"%s\", "
                     "\"message\": \"%s\"}",
                     severityName(d.severity),
                     jsonEscape(d.id).c_str(), d.instIdx,
                     jsonEscape(d.function).c_str(),
                     jsonEscape(d.message).c_str());
    }
    os << "\n  ]\n}\n";
    return os.str();
}

} // namespace ddsim::analysis
