#include "analysis/report.hh"

#include <map>
#include <sstream>

#include "obs/version.hh"
#include "util/log.hh"

namespace ddsim::analysis {

namespace {

double
pct(std::size_t part, std::size_t whole)
{
    return whole == 0 ? 0.0
                      : 100.0 * static_cast<double>(part) /
                            static_cast<double>(whole);
}

std::string
mixLine(const char *what, const Mix &m)
{
    return format("%s %zu: %zu local (%.1f%%) / %zu non-local / "
                  "%zu ambiguous",
                  what, m.total(), m.local, pct(m.local, m.total()),
                  m.nonLocal, m.ambiguous);
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += format("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

std::string
jsonMix(const Mix &m)
{
    return format("{\"local\": %zu, \"nonlocal\": %zu, "
                  "\"ambiguous\": %zu}",
                  m.local, m.nonLocal, m.ambiguous);
}

} // namespace

std::string
textReport(const AnalysisResult &res, bool verbose)
{
    std::ostringstream os;
    os << "== ddlint: " << res.program << " ==\n";
    os << format("functions: %zu\n", res.functions.size());
    os << "  " << mixLine("loads", res.loads) << "\n";
    os << "  " << mixLine("stores", res.stores) << "\n";

    os << "frames:\n";
    for (const FunctionInfo &fn : res.functions) {
        os << format("  %-24s entry @%-6zu %3zu blocks  ",
                     fn.name.c_str(), fn.entry,
                     fn.cfg.blocks.size());
        if (fn.frameKnown)
            os << format("%zu words\n", fn.frameWords);
        else
            os << format(">=%zu words (sp tracking lost)\n",
                         fn.frameWords);
        if (verbose)
            for (const MemAccess &acc : fn.accesses)
                os << format("    @%-6zu %-9s %s%s\n", acc.instIdx,
                             verdictName(acc.verdict),
                             acc.spOffsetKnown
                                 ? format("entry%+lld ",
                                          static_cast<long long>(
                                              acc.spOffset))
                                       .c_str()
                                 : "",
                             acc.annotatedLocal ? "!local" : "");
    }

    os << format("diagnostics: %zu error(s), %zu warning(s), "
                 "%zu note(s)\n",
                 res.errors(), res.warnings(),
                 res.count(Severity::Note));
    for (const Diagnostic &d : res.diagnostics)
        os << format("  %-7s %-27s @%-6zu %s: %s\n",
                     severityName(d.severity), d.id.c_str(),
                     d.instIdx, d.function.c_str(),
                     d.message.c_str());
    return os.str();
}

namespace {

/**
 * One per-program JSON object, every line prefixed by @p ind so the
 * same renderer serves the standalone jsonReport and the programs
 * array of the ddsim-lint-v1 document.
 */
std::string
programJson(const AnalysisResult &res, const std::string &ind)
{
    std::ostringstream os;
    os << ind << "{\n";
    os << ind << format("  \"program\": \"%s\",\n",
                        jsonEscape(res.program).c_str());
    os << ind << format("  \"errors\": %zu,\n", res.errors());
    os << ind << format("  \"warnings\": %zu,\n", res.warnings());
    os << ind
       << format("  \"notes\": %zu,\n", res.count(Severity::Note));
    os << ind << "  \"loads\": " << jsonMix(res.loads) << ",\n";
    os << ind << "  \"stores\": " << jsonMix(res.stores) << ",\n";

    // Per-instruction verdict export: dense ordinal ids, strictly
    // increasing instruction indices (res.verdicts is an ordered
    // map), the annotation bit as the program carries it today.
    std::map<std::size_t, const MemAccess *> byInst;
    for (const FunctionInfo &fn : res.functions)
        for (const MemAccess &acc : fn.accesses)
            byInst.emplace(acc.instIdx, &acc);
    os << ind << "  \"verdicts\": [";
    std::size_t id = 0;
    for (const auto &[idx, verdict] : res.verdicts) {
        const MemAccess *acc = byInst.at(idx);
        os << (id ? "," : "") << "\n" << ind << "    ";
        os << format("{\"id\": %zu, \"inst\": %zu, \"load\": %s, "
                     "\"verdict\": \"%s\", \"annotated\": %s}",
                     id, idx, acc->load ? "true" : "false",
                     verdictName(verdict),
                     acc->annotatedLocal ? "true" : "false");
        ++id;
    }
    os << (id ? "\n" + ind + "  " : "") << "],\n";

    os << ind << "  \"functions\": [";
    for (std::size_t i = 0; i < res.functions.size(); ++i) {
        const FunctionInfo &fn = res.functions[i];
        Mix mix;
        for (const MemAccess &acc : fn.accesses)
            mix.add(acc.verdict);
        os << (i ? "," : "") << "\n" << ind << "    ";
        os << format("{\"name\": \"%s\", \"entry\": %zu, "
                     "\"blocks\": %zu, \"frame_words\": %zu, "
                     "\"frame_known\": %s, \"accesses\": %s}",
                     jsonEscape(fn.name).c_str(), fn.entry,
                     fn.cfg.blocks.size(), fn.frameWords,
                     fn.frameKnown ? "true" : "false",
                     jsonMix(mix).c_str());
    }
    os << (res.functions.empty() ? "" : "\n" + ind + "  ") << "],\n";

    os << ind << "  \"diagnostics\": [";
    for (std::size_t i = 0; i < res.diagnostics.size(); ++i) {
        const Diagnostic &d = res.diagnostics[i];
        os << (i ? "," : "") << "\n" << ind << "    ";
        os << format("{\"severity\": \"%s\", \"id\": \"%s\", "
                     "\"inst\": %zu, \"function\": \"%s\", "
                     "\"message\": \"%s\"}",
                     severityName(d.severity),
                     jsonEscape(d.id).c_str(), d.instIdx,
                     jsonEscape(d.function).c_str(),
                     jsonEscape(d.message).c_str());
    }
    os << (res.diagnostics.empty() ? "" : "\n" + ind + "  ") << "]\n";
    os << ind << "}";
    return os.str();
}

} // namespace

std::string
jsonReport(const AnalysisResult &res)
{
    return programJson(res, "") + "\n";
}

std::string
jsonDocument(const std::vector<AnalysisResult> &results)
{
    Mix loads;
    Mix stores;
    std::size_t errors = 0;
    std::size_t warnings = 0;
    std::size_t notes = 0;
    for (const AnalysisResult &res : results) {
        errors += res.errors();
        warnings += res.warnings();
        notes += res.count(Severity::Note);
        for (const Mix *m : {&res.loads, &res.stores}) {
            Mix &sum = m == &res.loads ? loads : stores;
            sum.local += m->local;
            sum.nonLocal += m->nonLocal;
            sum.ambiguous += m->ambiguous;
        }
    }

    std::ostringstream os;
    os << "{\n";
    os << "  \"schema\": \"ddsim-lint-v1\",\n";
    os << "  \"generator\": {";
    os << format("\"name\": \"%s\", \"version\": \"%s\", "
                 "\"git\": \"%s\"},\n",
                 jsonEscape(obs::simulatorName()).c_str(),
                 jsonEscape(obs::simulatorVersion()).c_str(),
                 jsonEscape(obs::gitDescribe()).c_str());
    os << "  \"programs\": [";
    for (std::size_t i = 0; i < results.size(); ++i)
        os << (i ? ",\n" : "\n") << programJson(results[i], "    ");
    os << (results.empty() ? "" : "\n  ") << "],\n";
    os << "  \"summary\": {\n";
    os << format("    \"programs\": %zu,\n", results.size());
    os << format("    \"errors\": %zu,\n", errors);
    os << format("    \"warnings\": %zu,\n", warnings);
    os << format("    \"notes\": %zu,\n", notes);
    os << "    \"loads\": " << jsonMix(loads) << ",\n";
    os << "    \"stores\": " << jsonMix(stores) << "\n";
    os << "  }\n}\n";
    return os.str();
}

} // namespace ddsim::analysis
