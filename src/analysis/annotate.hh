/**
 * @file
 * The static partitioning pass: rewrite a Program's per-instruction
 * local-hint bits (the M-type annotation bit of Section 2.2.3) from
 * the analyzer's Local/NonLocal/Ambiguous verdicts.
 *
 * This closes the compiler half of the paper's loop: ddlint computes
 * the static classification, annotateProgram burns it into the
 * encoding, and the hardware consumes it through
 * ClassifierKind::Annotation (trust the bit outright) or
 * ClassifierKind::StaticHybrid (trust decided verdicts, fall back to
 * the region predictor only for Ambiguous instructions).
 */

#ifndef DDSIM_ANALYSIS_ANNOTATE_HH_
#define DDSIM_ANALYSIS_ANNOTATE_HH_

#include <cstddef>
#include <optional>
#include <string_view>

#include "analysis/analyzer.hh"
#include "prog/program.hh"

namespace ddsim::analysis {

/** How Ambiguous verdicts map onto the one-bit hint. */
enum class HintPolicy : std::uint8_t
{
    /**
     * Hint only what is provably Local; NonLocal and Ambiguous clear
     * the bit. An Annotation classifier steering on these hints never
     * mispartitions a non-local access into the LVAQ, at the cost of
     * sending every Ambiguous access through the L1 path.
     */
    Safe,
    /**
     * Hint Local *and* Ambiguous. Relies on the hardware's
     * verify/mispartition-recovery path (Section 2.2.2) to catch the
     * Ambiguous instructions that turn out non-local at run time.
     */
    Speculative,
    /**
     * Decided verdicts overwrite the bit; Ambiguous instructions keep
     * whatever hint the program already carried, as the seed for the
     * region predictor under ClassifierKind::StaticHybrid.
     */
    Hybrid,
};

const char *hintPolicyName(HintPolicy p);

/** Inverse of hintPolicyName; nullopt for anything unknown. */
std::optional<HintPolicy> hintPolicyFromName(std::string_view name);

/** What annotateProgram did, for coverage reporting. */
struct AnnotateStats
{
    std::size_t memInsts = 0;   ///< Memory instructions seen.
    std::size_t hinted = 0;     ///< localHint set after the pass.
    std::size_t cleared = 0;    ///< localHint clear after the pass.
    std::size_t ambiguous = 0;  ///< Verdicts left to the hardware.
    std::size_t changed = 0;    ///< Bits actually flipped.
};

/**
 * Return a copy of @p prog with every memory instruction's localHint
 * bit rewritten from @p res under @p policy. @p res must come from
 * analyze() over the same program text. Instructions without a
 * verdict (unreachable code) are left untouched.
 */
prog::Program annotateProgram(const prog::Program &prog,
                              const AnalysisResult &res,
                              HintPolicy policy,
                              AnnotateStats *stats = nullptr);

/** Convenience overload: analyze then annotate. */
prog::Program annotateProgram(const prog::Program &prog,
                              HintPolicy policy,
                              AnnotateStats *stats = nullptr);

} // namespace ddsim::analysis

#endif // DDSIM_ANALYSIS_ANNOTATE_HH_
