/**
 * @file
 * The abstract value domain of the static MISA analyzer.
 *
 * Every GPR is tracked as an element of a small lattice that answers
 * the one question the paper's compiler-side classification needs
 * (Section 2.2.3): "is this register a stack address, a non-stack
 * address, or unknown?" — refined with exact constants (so lui/ori
 * address materialization folds) and exact sp-relative offsets (so
 * stack discipline is checkable):
 *
 *                      Top (anything)
 *                    /                \
 *          StackDerived              NonStack
 *          /          \              /      \
 *   StackOff(k) StackOff(k') ... Const(v) Const(v') ...
 *                    \                /
 *                        Bottom (unreachable)
 *
 *  - Const(v):      exactly the 32-bit value v.
 *  - StackOff(k):   exactly (function-entry sp) + k bytes.
 *  - StackDerived:  sp-derived with an unknown offset — assumed to
 *                   stay inside the run-time stack region.
 *  - NonStack:      provably (under the rooted-pointer assumption
 *                   below) not a stack address.
 *
 * Rooted-pointer assumption: address arithmetic rooted at a non-stack
 * constant (data/heap/text base materialized by li/la) stays out of
 * the stack region, and arithmetic rooted at sp stays inside it.
 * Index registers never carry a pointer across the boundary. This is
 * exactly the assumption the paper's hardware sp/fp-base heuristic
 * makes, and the Oracle cross-check in tests/test_analysis.cpp
 * validates it dynamically on whole workload runs.
 */

#ifndef DDSIM_ANALYSIS_VALUE_HH_
#define DDSIM_ANALYSIS_VALUE_HH_

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "isa/inst.hh"
#include "util/types.hh"

namespace ddsim::analysis {

/** Lattice element kinds, in increasing order of ignorance. */
enum class ValueKind : std::uint8_t
{
    Bottom,         ///< Unreachable / no value yet.
    Const,          ///< Exactly a known 32-bit constant.
    StackOff,       ///< Exactly entry-sp + known byte offset.
    StackDerived,   ///< Stack address, offset unknown.
    NonStack,       ///< Provably not a stack address.
    Top,            ///< Unknown.
};

/** One abstract register value. */
struct AbsValue
{
    ValueKind kind = ValueKind::Top;
    /** Const: the value (sign-extended); StackOff: byte offset. */
    std::int64_t n = 0;

    static AbsValue bottom() { return {ValueKind::Bottom, 0}; }
    static AbsValue top() { return {ValueKind::Top, 0}; }
    static AbsValue konst(std::int64_t v);
    static AbsValue stackOff(std::int64_t k)
    {
        return {ValueKind::StackOff, k};
    }
    static AbsValue stackDerived()
    {
        return {ValueKind::StackDerived, 0};
    }
    static AbsValue nonStack() { return {ValueKind::NonStack, 0}; }

    bool isConst() const { return kind == ValueKind::Const; }
    bool isStackOff() const { return kind == ValueKind::StackOff; }
    /** Stack-rooted (exact or derived). */
    bool isStackish() const
    {
        return kind == ValueKind::StackOff ||
               kind == ValueKind::StackDerived;
    }
    /** Provably outside the stack region. */
    bool isNonStackish() const;

    /** The 32-bit machine word of a Const (wrapped, sign-extended). */
    Word word() const { return static_cast<Word>(n); }

    bool operator==(const AbsValue &) const = default;

    /** "const 0x1000", "sp-24", "stack?", "nonstack", "top". */
    std::string str() const;
};

/** Least upper bound of two abstract values. */
AbsValue join(const AbsValue &a, const AbsValue &b);

// Abstract arithmetic mirroring the executor's 32-bit semantics.
AbsValue absAdd(const AbsValue &a, const AbsValue &b);
AbsValue absSub(const AbsValue &a, const AbsValue &b);

/**
 * Dataflow state: one abstract value per GPR (r0 pinned to 0), plus
 * the known contents of frame slots — word stores through an exact
 * sp-relative base record the stored value, so spill/reload clusters
 * (the dominant local traffic in the workloads) don't lose tracking.
 * Slots are keyed by entry-sp-relative byte offset; a missing key
 * means Top. Stores through inexact stack bases, and calls that
 * receive a stack address in a0..a3, invalidate the whole map.
 */
struct RegState
{
    std::array<AbsValue, NumGprs> gpr;
    std::map<std::int64_t, AbsValue> frame;
    bool reachable = false;

    RegState()
    {
        gpr.fill(AbsValue::bottom());
    }

    /**
     * The ABI state at a function entry: sp is the frame base
     * (StackOff 0), fp is some caller frame address, gp is the global
     * pointer, ra a text address; arguments and temporaries unknown.
     */
    static RegState functionEntry();

    const AbsValue &get(RegId r) const { return gpr[r]; }
    void set(RegId r, const AbsValue &v);

    bool operator==(const RegState &) const = default;
};

/** Pointwise join; marks the result reachable if either input is. */
RegState joinStates(const RegState &a, const RegState &b);

/**
 * Apply one instruction's effect on the register state. Memory and
 * control instructions fall through to their GPR side effects only
 * (a load destination becomes Top, jal clobbers caller-saved
 * registers per the ABI).
 */
void applyInst(RegState &state, const isa::Inst &inst);

} // namespace ddsim::analysis

#endif // DDSIM_ANALYSIS_VALUE_HH_
