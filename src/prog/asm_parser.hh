/**
 * @file
 * A small text assembler for MISA, matching the disassembler syntax.
 *
 * Grammar (line-oriented; '#' starts a comment):
 *
 *   .text                    switch to the text segment (default)
 *   .data                    switch to the data segment
 *   .entry <label>           set the entry point (default "main")
 *   <label>:                 bind a label (text: word index;
 *                            data: absolute address)
 *   .word <int>              emit an initialized data word
 *   .space <bytes>           reserve zeroed data bytes
 *   .align <bytes>           align the data cursor
 *   .double <float>          emit an 8-byte double
 *   <mnemonic> operands...   one instruction per line
 *
 * Operand forms: register names (ABI, rN, fN, optionally $-prefixed),
 * integer immediates (decimal or 0x hex), "off(base)" memory operands
 * with an optional "!local" suffix, and label names for branch/jump
 * targets. Branch targets may also be raw word offsets and jump
 * targets raw word indices — the forms the disassembler emits — so
 * disassemble/reassemble round-trips are exact. The
 * pseudo-instructions li/la/move/ret of ProgramBuilder are accepted;
 * li and la to a data label require the label to be defined earlier
 * in the file.
 */

#ifndef DDSIM_PROG_ASM_PARSER_HH_
#define DDSIM_PROG_ASM_PARSER_HH_

#include <string>

#include "prog/program.hh"

namespace ddsim::prog {

/**
 * Assemble @p source into a Program named @p name.
 * Calls fatal() with a line-numbered message on any syntax error.
 */
Program assemble(const std::string &source,
                 const std::string &name = "asm");

} // namespace ddsim::prog

#endif // DDSIM_PROG_ASM_PARSER_HH_
