#include "prog/program.hh"

#include "isa/encode.hh"
#include "util/log.hh"

namespace ddsim::prog {

std::uint32_t
Program::fetchRaw(std::uint32_t idx) const
{
    if (idx >= text.size())
        fatal("program '%s': fetch past end of text (index %u of %zu) "
              "-- runaway control flow?",
              progName.c_str(), idx, text.size());
    return text[idx];
}

const isa::Inst &
Program::fetch(std::uint32_t idx) const
{
    fetchRaw(idx); // bounds check
    return decoded[idx];
}

std::uint32_t
Program::append(std::uint32_t word)
{
    std::uint32_t idx = static_cast<std::uint32_t>(text.size());
    text.push_back(word);
    decoded.push_back(isa::decode(word));
    return idx;
}

void
Program::patch(std::uint32_t idx, std::uint32_t word)
{
    if (idx >= text.size())
        panic("Program::patch: index %u out of range", idx);
    text[idx] = word;
    decoded[idx] = isa::decode(word);
}

void
Program::defineSymbol(const std::string &name, std::uint32_t idx)
{
    auto [it, inserted] = symtab.emplace(name, idx);
    if (!inserted)
        fatal("program '%s': duplicate symbol '%s'",
              progName.c_str(), name.c_str());
}

std::uint32_t
Program::symbol(const std::string &name) const
{
    auto it = symtab.find(name);
    if (it == symtab.end())
        fatal("program '%s': undefined symbol '%s'",
              progName.c_str(), name.c_str());
    return it->second;
}

bool
Program::hasSymbol(const std::string &name) const
{
    return symtab.count(name) != 0;
}

} // namespace ddsim::prog
