#include "prog/builder.hh"

#include <cstring>

#include "util/log.hh"

namespace ddsim::prog {

using isa::Inst;
using isa::OpCode;

ProgramBuilder::ProgramBuilder(std::string name)
    : program(std::move(name))
{
}

void
ProgramBuilder::checkNotFinished() const
{
    if (finished)
        panic("ProgramBuilder: use after finish()");
}

Label
ProgramBuilder::newLabel(const std::string &name)
{
    checkNotFinished();
    Label l{static_cast<int>(labels.size())};
    labels.push_back(LabelInfo{name, -1, {}});
    return l;
}

ProgramBuilder::LabelInfo &
ProgramBuilder::labelInfo(Label l)
{
    if (!l.valid() || static_cast<std::size_t>(l.id) >= labels.size())
        panic("ProgramBuilder: invalid label");
    return labels[static_cast<std::size_t>(l.id)];
}

void
ProgramBuilder::bind(Label l)
{
    checkNotFinished();
    LabelInfo &info = labelInfo(l);
    if (info.boundAt >= 0)
        fatal("label '%s' bound twice", info.name.c_str());
    info.boundAt = pc();
    if (!info.name.empty())
        program.defineSymbol(info.name, pc());
}

Label
ProgramBuilder::here(const std::string &name)
{
    Label l = newLabel(name);
    bind(l);
    return l;
}

std::uint32_t
ProgramBuilder::emit(const Inst &inst)
{
    checkNotFinished();
    return program.append(isa::encode(inst));
}

std::uint32_t
ProgramBuilder::pc() const
{
    return static_cast<std::uint32_t>(program.textSize());
}

namespace {

Inst
r3(OpCode op, RegId rd, RegId rs, RegId rt)
{
    Inst i;
    i.op = op;
    i.rd = rd;
    i.rs = rs;
    i.rt = rt;
    return i;
}

Inst
r2(OpCode op, RegId rd, RegId rs)
{
    Inst i;
    i.op = op;
    i.rd = rd;
    i.rs = rs;
    return i;
}

Inst
i2(OpCode op, RegId rt, RegId rs, std::int32_t imm)
{
    Inst i;
    i.op = op;
    i.rt = rt;
    i.rs = rs;
    i.imm = imm;
    return i;
}

Inst
mem(OpCode op, RegId rt, std::int32_t off, RegId base, bool local)
{
    Inst i;
    i.op = op;
    i.rt = rt;
    i.rs = base;
    i.imm = off;
    i.localHint = local;
    return i;
}

} // namespace

// ---- Integer ALU --------------------------------------------------------

void ProgramBuilder::add(RegId rd, RegId rs, RegId rt)
{ emit(r3(OpCode::ADD, rd, rs, rt)); }
void ProgramBuilder::sub(RegId rd, RegId rs, RegId rt)
{ emit(r3(OpCode::SUB, rd, rs, rt)); }
void ProgramBuilder::mul(RegId rd, RegId rs, RegId rt)
{ emit(r3(OpCode::MUL, rd, rs, rt)); }
void ProgramBuilder::div(RegId rd, RegId rs, RegId rt)
{ emit(r3(OpCode::DIV, rd, rs, rt)); }
void ProgramBuilder::and_(RegId rd, RegId rs, RegId rt)
{ emit(r3(OpCode::AND, rd, rs, rt)); }
void ProgramBuilder::or_(RegId rd, RegId rs, RegId rt)
{ emit(r3(OpCode::OR, rd, rs, rt)); }
void ProgramBuilder::xor_(RegId rd, RegId rs, RegId rt)
{ emit(r3(OpCode::XOR, rd, rs, rt)); }
void ProgramBuilder::nor(RegId rd, RegId rs, RegId rt)
{ emit(r3(OpCode::NOR, rd, rs, rt)); }
void ProgramBuilder::slt(RegId rd, RegId rs, RegId rt)
{ emit(r3(OpCode::SLT, rd, rs, rt)); }
void ProgramBuilder::sltu(RegId rd, RegId rs, RegId rt)
{ emit(r3(OpCode::SLTU, rd, rs, rt)); }
void ProgramBuilder::sllv(RegId rd, RegId rs, RegId rt)
{ emit(r3(OpCode::SLLV, rd, rs, rt)); }
void ProgramBuilder::srlv(RegId rd, RegId rs, RegId rt)
{ emit(r3(OpCode::SRLV, rd, rs, rt)); }
void ProgramBuilder::srav(RegId rd, RegId rs, RegId rt)
{ emit(r3(OpCode::SRAV, rd, rs, rt)); }

void
ProgramBuilder::sll(RegId rd, RegId rs, int shamt)
{
    Inst i;
    i.op = OpCode::SLL;
    i.rd = rd;
    i.rs = rs;
    i.imm = shamt;
    emit(i);
}

void
ProgramBuilder::srl(RegId rd, RegId rs, int shamt)
{
    Inst i;
    i.op = OpCode::SRL;
    i.rd = rd;
    i.rs = rs;
    i.imm = shamt;
    emit(i);
}

void
ProgramBuilder::sra(RegId rd, RegId rs, int shamt)
{
    Inst i;
    i.op = OpCode::SRA;
    i.rd = rd;
    i.rs = rs;
    i.imm = shamt;
    emit(i);
}

void ProgramBuilder::addi(RegId rt, RegId rs, std::int32_t imm)
{ emit(i2(OpCode::ADDI, rt, rs, imm)); }
void ProgramBuilder::andi(RegId rt, RegId rs, std::int32_t imm)
{ emit(i2(OpCode::ANDI, rt, rs, imm)); }
void ProgramBuilder::ori(RegId rt, RegId rs, std::int32_t imm)
{ emit(i2(OpCode::ORI, rt, rs, imm)); }
void ProgramBuilder::xori(RegId rt, RegId rs, std::int32_t imm)
{ emit(i2(OpCode::XORI, rt, rs, imm)); }
void ProgramBuilder::slti(RegId rt, RegId rs, std::int32_t imm)
{ emit(i2(OpCode::SLTI, rt, rs, imm)); }
void ProgramBuilder::lui(RegId rt, std::int32_t imm)
{ emit(i2(OpCode::LUI, rt, isa::reg::zero, imm)); }

// ---- Memory ---------------------------------------------------------------

void ProgramBuilder::lw(RegId rt, std::int32_t off, RegId base, bool local)
{ emit(mem(OpCode::LW, rt, off, base, local)); }
void ProgramBuilder::lb(RegId rt, std::int32_t off, RegId base, bool local)
{ emit(mem(OpCode::LB, rt, off, base, local)); }
void ProgramBuilder::lbu(RegId rt, std::int32_t off, RegId base, bool local)
{ emit(mem(OpCode::LBU, rt, off, base, local)); }
void ProgramBuilder::sw(RegId rt, std::int32_t off, RegId base, bool local)
{ emit(mem(OpCode::SW, rt, off, base, local)); }
void ProgramBuilder::sb(RegId rt, std::int32_t off, RegId base, bool local)
{ emit(mem(OpCode::SB, rt, off, base, local)); }
void ProgramBuilder::ld(RegId ft, std::int32_t off, RegId base, bool local)
{ emit(mem(OpCode::LD, ft, off, base, local)); }
void ProgramBuilder::sd(RegId ft, std::int32_t off, RegId base, bool local)
{ emit(mem(OpCode::SD, ft, off, base, local)); }

// ---- Control ----------------------------------------------------------------

void
ProgramBuilder::addFixup(Label l, std::uint32_t instIdx, bool isBranch)
{
    labelInfo(l).fixups.emplace_back(instIdx, isBranch);
}

void
ProgramBuilder::emitBranch(OpCode op, RegId rs, RegId rt, Label target)
{
    Inst i;
    i.op = op;
    i.rs = rs;
    i.rt = rt;
    i.imm = 0; // patched at finish()
    std::uint32_t idx = emit(i);
    addFixup(target, idx, true);
}

void
ProgramBuilder::emitJump(OpCode op, Label target)
{
    Inst i;
    i.op = op;
    i.target = 0; // patched at finish()
    std::uint32_t idx = emit(i);
    addFixup(target, idx, false);
}

void ProgramBuilder::beq(RegId rs, RegId rt, Label target)
{ emitBranch(OpCode::BEQ, rs, rt, target); }
void ProgramBuilder::bne(RegId rs, RegId rt, Label target)
{ emitBranch(OpCode::BNE, rs, rt, target); }
void ProgramBuilder::blez(RegId rs, Label target)
{ emitBranch(OpCode::BLEZ, rs, 0, target); }
void ProgramBuilder::bgtz(RegId rs, Label target)
{ emitBranch(OpCode::BGTZ, rs, 0, target); }
void ProgramBuilder::bltz(RegId rs, Label target)
{ emitBranch(OpCode::BLTZ, rs, 0, target); }
void ProgramBuilder::bgez(RegId rs, Label target)
{ emitBranch(OpCode::BGEZ, rs, 0, target); }
void ProgramBuilder::j(Label target) { emitJump(OpCode::J, target); }
void ProgramBuilder::jal(Label target) { emitJump(OpCode::JAL, target); }

void
ProgramBuilder::jr(RegId rs)
{
    Inst i;
    i.op = OpCode::JR;
    i.rs = rs;
    emit(i);
}

void
ProgramBuilder::jalr(RegId rd, RegId rs)
{
    Inst i;
    i.op = OpCode::JALR;
    i.rd = rd;
    i.rs = rs;
    emit(i);
}

// ---- Floating point --------------------------------------------------------

void ProgramBuilder::addD(RegId fd, RegId fs, RegId ft)
{ emit(r3(OpCode::ADD_D, fd, fs, ft)); }
void ProgramBuilder::subD(RegId fd, RegId fs, RegId ft)
{ emit(r3(OpCode::SUB_D, fd, fs, ft)); }
void ProgramBuilder::mulD(RegId fd, RegId fs, RegId ft)
{ emit(r3(OpCode::MUL_D, fd, fs, ft)); }
void ProgramBuilder::divD(RegId fd, RegId fs, RegId ft)
{ emit(r3(OpCode::DIV_D, fd, fs, ft)); }
void ProgramBuilder::movD(RegId fd, RegId fs)
{ emit(r2(OpCode::MOV_D, fd, fs)); }
void ProgramBuilder::negD(RegId fd, RegId fs)
{ emit(r2(OpCode::NEG_D, fd, fs)); }
void ProgramBuilder::cvtDW(RegId fd, RegId rs)
{ emit(r2(OpCode::CVT_D_W, fd, rs)); }
void ProgramBuilder::cvtWD(RegId rd, RegId fs)
{ emit(r2(OpCode::CVT_W_D, rd, fs)); }
void ProgramBuilder::cLtD(RegId rd, RegId fs, RegId ft)
{ emit(r3(OpCode::C_LT_D, rd, fs, ft)); }
void ProgramBuilder::cLeD(RegId rd, RegId fs, RegId ft)
{ emit(r3(OpCode::C_LE_D, rd, fs, ft)); }
void ProgramBuilder::cEqD(RegId rd, RegId fs, RegId ft)
{ emit(r3(OpCode::C_EQ_D, rd, fs, ft)); }

// ---- Misc --------------------------------------------------------------------

void ProgramBuilder::nop() { emit(Inst{}); }

void
ProgramBuilder::halt()
{
    Inst i;
    i.op = OpCode::HALT;
    emit(i);
}

void
ProgramBuilder::print(RegId rs)
{
    Inst i;
    i.op = OpCode::PRINT;
    i.rs = rs;
    emit(i);
}

// ---- Pseudo-instructions --------------------------------------------------------

void
ProgramBuilder::li(RegId rt, std::int32_t value)
{
    if (value >= isa::Imm16Min && value <= isa::Imm16Max) {
        addi(rt, isa::reg::zero, value);
        return;
    }
    std::uint32_t uval = static_cast<std::uint32_t>(value);
    std::int32_t hi = static_cast<std::int32_t>((uval >> 16) & 0xffffu);
    std::int32_t lo = static_cast<std::int32_t>(uval & 0xffffu);
    lui(rt, hi);
    if (lo != 0)
        ori(rt, rt, lo);
}

void
ProgramBuilder::move(RegId rd, RegId rs)
{
    or_(rd, rs, isa::reg::zero);
}

void
ProgramBuilder::ret()
{
    jr(isa::reg::ra);
}

// ---- Frames and calls -----------------------------------------------------------

void
ProgramBuilder::prologue(const FrameSpec &frame)
{
    using namespace isa::reg;
    int bytes = frame.frameBytes();
    if (bytes == 0)
        return;
    addi(sp, sp, -bytes);
    int slot = frame.localWords;
    if (frame.saveRa)
        sw(ra, localOffset(slot++), sp, true);
    for (RegId r : frame.savedRegs)
        sw(r, localOffset(slot++), sp, true);
}

void
ProgramBuilder::epilogue(const FrameSpec &frame)
{
    using namespace isa::reg;
    int bytes = frame.frameBytes();
    if (bytes == 0) {
        ret();
        return;
    }
    int slot = frame.localWords;
    if (frame.saveRa)
        lw(ra, localOffset(slot++), sp, true);
    for (RegId r : frame.savedRegs)
        lw(r, localOffset(slot++), sp, true);
    addi(sp, sp, bytes);
    ret();
}

void
ProgramBuilder::storeLocal(RegId rt, int slot)
{
    sw(rt, localOffset(slot), isa::reg::sp, true);
}

void
ProgramBuilder::loadLocal(RegId rt, int slot)
{
    lw(rt, localOffset(slot), isa::reg::sp, true);
}

void
ProgramBuilder::storeLocalD(RegId ft, int slotPair)
{
    sd(ft, localOffset(slotPair), isa::reg::sp, true);
}

void
ProgramBuilder::loadLocalD(RegId ft, int slotPair)
{
    ld(ft, localOffset(slotPair), isa::reg::sp, true);
}

// ---- Data segment -----------------------------------------------------------------

Addr
ProgramBuilder::dataWords(std::size_t n)
{
    dataAlign(4);
    auto &data = program.dataSegment();
    Addr addr = layout::DataBase + static_cast<Addr>(data.size());
    data.resize(data.size() + n * 4, 0);
    return addr;
}

Addr
ProgramBuilder::dataWord(Word value)
{
    Addr addr = dataWords(1);
    auto &data = program.dataSegment();
    std::memcpy(&data[addr - layout::DataBase], &value, 4);
    return addr;
}

Addr
ProgramBuilder::dataDouble(double value)
{
    dataAlign(8);
    auto &data = program.dataSegment();
    Addr addr = layout::DataBase + static_cast<Addr>(data.size());
    data.resize(data.size() + 8, 0);
    std::memcpy(&data[addr - layout::DataBase], &value, 8);
    return addr;
}

void
ProgramBuilder::dataAlign(std::size_t alignment)
{
    auto &data = program.dataSegment();
    while (data.size() % alignment != 0)
        data.push_back(0);
}

// ---- Finalization -------------------------------------------------------------------

Program
ProgramBuilder::finish()
{
    checkNotFinished();
    for (const LabelInfo &info : labels) {
        if (info.boundAt < 0) {
            if (!info.fixups.empty())
                fatal("program '%s': label '%s' used but never bound",
                      program.name().c_str(),
                      info.name.empty() ? "<anon>" : info.name.c_str());
            continue;
        }
        for (auto [instIdx, isBranch] : info.fixups) {
            isa::Inst inst = isa::decode(program.fetchRaw(instIdx));
            if (isBranch) {
                std::int64_t off = info.boundAt -
                                   (static_cast<std::int64_t>(instIdx) + 1);
                if (off < isa::Imm16Min || off > isa::Imm16Max)
                    fatal("branch at %u to label '%s': offset %lld "
                          "out of range",
                          instIdx, info.name.c_str(), (long long)off);
                inst.imm = static_cast<std::int32_t>(off);
            } else {
                inst.target = static_cast<std::uint32_t>(info.boundAt);
            }
            program.patch(instIdx, isa::encode(inst));
        }
    }
    finished = true;
    return std::move(program);
}

} // namespace ddsim::prog
