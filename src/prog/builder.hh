/**
 * @file
 * ProgramBuilder: a label-resolving code emitter with frame/call
 * helpers, the back end all the workload generators target.
 *
 * The frame helpers emit the same prologue/epilogue idiom a MIPS C
 * compiler produces — decrement sp, save ra and callee-saved registers
 * to frame slots, restore and pop on exit — and mark every frame-slot
 * access with the ISA's "local" annotation bit, playing the role of the
 * compiler classification described in Section 2.2.3 of the paper.
 */

#ifndef DDSIM_PROG_BUILDER_HH_
#define DDSIM_PROG_BUILDER_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "isa/encode.hh"
#include "prog/program.hh"

namespace ddsim::prog {

/** An abstract code location, bindable before or after use. */
struct Label
{
    int id = -1;
    bool valid() const { return id >= 0; }
};

/** Layout of one function's stack frame. */
struct FrameSpec
{
    /** Number of 4-byte local variable slots. */
    int localWords = 0;
    /** Callee-saved registers to preserve (ra is added if saveRa). */
    std::vector<RegId> savedRegs;
    /** Save/restore the return address (needed by non-leaf functions). */
    bool saveRa = true;

    int frameWords() const
    {
        return localWords + static_cast<int>(savedRegs.size()) +
               (saveRa ? 1 : 0);
    }
    int frameBytes() const { return frameWords() * 4; }
};

/** Builds a Program instruction by instruction. */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(std::string name);

    // ---- Labels -------------------------------------------------------
    /** Create an unbound label (optionally named for the symbol table). */
    Label newLabel(const std::string &name = "");
    /** Bind @p l to the next emitted instruction. */
    void bind(Label l);
    /** Create a label already bound to the next instruction. */
    Label here(const std::string &name = "");

    // ---- Raw emission -------------------------------------------------
    /** Emit a decoded instruction; returns its word index. */
    std::uint32_t emit(const isa::Inst &inst);

    std::uint32_t pc() const; ///< Word index of the next instruction.

    // ---- Integer ALU ---------------------------------------------------
    void add(RegId rd, RegId rs, RegId rt);
    void sub(RegId rd, RegId rs, RegId rt);
    void mul(RegId rd, RegId rs, RegId rt);
    void div(RegId rd, RegId rs, RegId rt);
    void and_(RegId rd, RegId rs, RegId rt);
    void or_(RegId rd, RegId rs, RegId rt);
    void xor_(RegId rd, RegId rs, RegId rt);
    void nor(RegId rd, RegId rs, RegId rt);
    void slt(RegId rd, RegId rs, RegId rt);
    void sltu(RegId rd, RegId rs, RegId rt);
    void sllv(RegId rd, RegId rs, RegId rt);
    void srlv(RegId rd, RegId rs, RegId rt);
    void srav(RegId rd, RegId rs, RegId rt);
    void sll(RegId rd, RegId rs, int shamt);
    void srl(RegId rd, RegId rs, int shamt);
    void sra(RegId rd, RegId rs, int shamt);
    void addi(RegId rt, RegId rs, std::int32_t imm);
    void andi(RegId rt, RegId rs, std::int32_t imm);
    void ori(RegId rt, RegId rs, std::int32_t imm);
    void xori(RegId rt, RegId rs, std::int32_t imm);
    void slti(RegId rt, RegId rs, std::int32_t imm);
    void lui(RegId rt, std::int32_t imm);

    // ---- Memory --------------------------------------------------------
    void lw(RegId rt, std::int32_t off, RegId base, bool local = false);
    void lb(RegId rt, std::int32_t off, RegId base, bool local = false);
    void lbu(RegId rt, std::int32_t off, RegId base, bool local = false);
    void sw(RegId rt, std::int32_t off, RegId base, bool local = false);
    void sb(RegId rt, std::int32_t off, RegId base, bool local = false);
    void ld(RegId ft, std::int32_t off, RegId base, bool local = false);
    void sd(RegId ft, std::int32_t off, RegId base, bool local = false);

    // ---- Control -------------------------------------------------------
    void beq(RegId rs, RegId rt, Label target);
    void bne(RegId rs, RegId rt, Label target);
    void blez(RegId rs, Label target);
    void bgtz(RegId rs, Label target);
    void bltz(RegId rs, Label target);
    void bgez(RegId rs, Label target);
    void j(Label target);
    void jal(Label target);
    void jr(RegId rs);
    void jalr(RegId rd, RegId rs);

    // ---- Floating point --------------------------------------------------
    void addD(RegId fd, RegId fs, RegId ft);
    void subD(RegId fd, RegId fs, RegId ft);
    void mulD(RegId fd, RegId fs, RegId ft);
    void divD(RegId fd, RegId fs, RegId ft);
    void movD(RegId fd, RegId fs);
    void negD(RegId fd, RegId fs);
    void cvtDW(RegId fd, RegId rs);
    void cvtWD(RegId rd, RegId fs);
    void cLtD(RegId rd, RegId fs, RegId ft);
    void cLeD(RegId rd, RegId fs, RegId ft);
    void cEqD(RegId rd, RegId fs, RegId ft);

    // ---- Misc ------------------------------------------------------------
    void nop();
    void halt();
    void print(RegId rs);

    // ---- Pseudo-instructions ----------------------------------------------
    /** Load a 32-bit constant (addi or lui+ori as needed). */
    void li(RegId rt, std::int32_t value);
    /** Load an address constant. */
    void la(RegId rt, Addr addr) { li(rt, static_cast<SWord>(addr)); }
    void move(RegId rd, RegId rs);
    /** Function return: jr ra. */
    void ret();

    // ---- Frames and calls ---------------------------------------------------
    /**
     * Emit a function prologue for @p frame: sp -= frameBytes, then
     * save ra and the callee-saved registers into the top frame slots.
     * All saving stores carry the local annotation.
     */
    void prologue(const FrameSpec &frame);

    /**
     * Emit the matching epilogue: restore saved registers, pop the
     * frame and return.
     */
    void epilogue(const FrameSpec &frame);

    /** Byte offset from sp of local slot @p slot (0-based). */
    static std::int32_t localOffset(int slot) { return slot * 4; }

    /** Store/load a local variable slot (always annotated local). */
    void storeLocal(RegId rt, int slot);
    void loadLocal(RegId rt, int slot);
    void storeLocalD(RegId ft, int slotPair);
    void loadLocalD(RegId ft, int slotPair);

    /** Call a function label (jal). */
    void call(Label fn) { jal(fn); }

    // ---- Data segment --------------------------------------------------------
    /** Reserve @p n zeroed words in the data segment; returns address. */
    Addr dataWords(std::size_t n);
    /** Append one initialized word; returns its address. */
    Addr dataWord(Word value);
    /** Append an 8-byte double; returns its (8-aligned) address. */
    Addr dataDouble(double value);
    /** Align the data segment to @p alignment bytes. */
    void dataAlign(std::size_t alignment);

    // ---- Finalization ----------------------------------------------------------
    /**
     * Resolve all label fixups and return the finished Program.
     * Calls fatal() if any used label is still unbound.
     */
    Program finish();

  private:
    struct LabelInfo
    {
        std::string name;
        std::int64_t boundAt = -1; // word index, -1 if unbound
        // Fixups: (instruction index, is-branch) pairs.
        std::vector<std::pair<std::uint32_t, bool>> fixups;
    };

    Program program;
    std::vector<LabelInfo> labels;
    bool finished = false;

    void emitBranch(isa::OpCode op, RegId rs, RegId rt, Label target);
    void emitJump(isa::OpCode op, Label target);
    void addFixup(Label l, std::uint32_t instIdx, bool isBranch);
    LabelInfo &labelInfo(Label l);
    void checkNotFinished() const;
};

} // namespace ddsim::prog

#endif // DDSIM_PROG_BUILDER_HH_
