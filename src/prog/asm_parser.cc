#include "prog/asm_parser.hh"

#include <map>
#include <optional>
#include <sstream>

#include "isa/encode.hh"
#include "prog/builder.hh"
#include "util/log.hh"
#include "util/str.hh"

namespace ddsim::prog {

namespace {

using isa::Format;
using isa::OpCode;

/** Parser state threaded through the line handlers. */
struct AsmState
{
    ProgramBuilder builder;
    std::map<std::string, Label> textLabels;  // name -> builder label
    std::map<std::string, Addr> dataLabels;   // name -> absolute address
    std::map<std::string, int> labelFirstUse; // name -> line of first ref
    std::map<std::string, int> labelBoundAt;  // name -> line of definition
    std::string entryName = "main";
    int entryLine = 0; // line of the .entry directive, 0 if defaulted
    bool inData = false;
    int lineNo = 0;

    explicit AsmState(const std::string &name) : builder(name) {}

    [[noreturn]] void
    error(const std::string &msg) const
    {
        fatal("asm line %d: %s", lineNo, msg.c_str());
    }

    Label
    textLabel(const std::string &name)
    {
        labelFirstUse.try_emplace(name, lineNo);
        auto it = textLabels.find(name);
        if (it != textLabels.end())
            return it->second;
        Label l = builder.newLabel(name);
        textLabels.emplace(name, l);
        return l;
    }
};

/** A parsed operand. */
struct Operand
{
    enum class Kind { Reg, FpReg, Imm, Mem, LabelRef } kind;
    RegId reg = 0;
    std::int64_t imm = 0;
    RegId base = 0;     // Mem
    bool local = false; // Mem
    std::string label;  // LabelRef
    std::string text;   // original token, for diagnostics
};

std::optional<Operand>
parseOperand(AsmState &st, std::string tok, bool localFlag)
{
    tok = std::string(trim(tok));
    if (tok.empty())
        return std::nullopt;

    // Memory operand: off(base)
    auto open = tok.find('(');
    if (open != std::string::npos && tok.back() == ')') {
        Operand op;
        op.kind = Operand::Kind::Mem;
        op.local = localFlag;
        op.text = tok;
        std::string offStr = tok.substr(0, open);
        std::string baseStr =
            tok.substr(open + 1, tok.size() - open - 2);
        std::int64_t off = 0;
        if (!offStr.empty() && !parseInt(offStr, off))
            st.error("bad memory offset '" + offStr + "'");
        if (off < isa::MemOffsetMin || off > isa::MemOffsetMax)
            st.error("memory offset " + std::to_string(off) +
                     " outside the 15-bit field [" +
                     std::to_string(isa::MemOffsetMin) + ", " +
                     std::to_string(isa::MemOffsetMax) + "]");
        op.imm = off;
        bool isFpr = false;
        if (!isa::parseRegName(baseStr, op.base, isFpr) || isFpr)
            st.error("bad base register '" + baseStr + "'");
        return op;
    }

    // Register?
    RegId idx;
    bool isFpr;
    if (isa::parseRegName(tok, idx, isFpr)) {
        Operand op;
        op.kind = isFpr ? Operand::Kind::FpReg : Operand::Kind::Reg;
        op.reg = idx;
        op.text = tok;
        return op;
    }

    // Immediate?
    std::int64_t value;
    if (parseInt(tok, value)) {
        Operand op;
        op.kind = Operand::Kind::Imm;
        op.imm = value;
        op.text = tok;
        return op;
    }

    // Label reference.
    Operand op;
    op.kind = Operand::Kind::LabelRef;
    op.label = tok;
    op.text = tok;
    return op;
}

/** Split "a, b, c !local" into tokens; returns (tokens, localFlag). */
std::pair<std::vector<std::string>, bool>
splitOperands(std::string rest)
{
    bool local = false;
    auto bang = rest.find("!local");
    if (bang != std::string::npos) {
        local = true;
        rest.erase(bang);
    }
    std::vector<std::string> out;
    for (auto &tok : split(rest, ',')) {
        auto t = trim(tok);
        if (!t.empty())
            out.emplace_back(t);
    }
    return {out, local};
}

RegId
wantReg(AsmState &st, const Operand &op)
{
    if (op.kind != Operand::Kind::Reg)
        st.error("expected a general-purpose register, got '" +
                 op.text + "'");
    return op.reg;
}

RegId
wantFpReg(AsmState &st, const Operand &op)
{
    if (op.kind != Operand::Kind::FpReg)
        st.error("expected a floating-point register, got '" +
                 op.text + "'");
    return op.reg;
}

std::int32_t
wantImm(AsmState &st, const Operand &op)
{
    if (op.kind != Operand::Kind::Imm)
        st.error("expected an immediate, got '" + op.text + "'");
    return static_cast<std::int32_t>(op.imm);
}

void
handleInstruction(AsmState &st, const std::string &mnem,
                  const std::string &rest)
{
    auto [toks, localFlag] = splitOperands(rest);
    std::vector<Operand> ops;
    for (const auto &t : toks) {
        auto op = parseOperand(st, t, localFlag);
        if (op)
            ops.push_back(*op);
    }
    auto &b = st.builder;
    auto need = [&](size_t n) {
        if (ops.size() != n)
            st.error("'" + mnem + "' expects " + std::to_string(n) +
                     " operands, got " + std::to_string(ops.size()));
    };

    // Pseudo-instructions first.
    if (mnem == "li") {
        need(2);
        b.li(wantReg(st, ops[0]), wantImm(st, ops[1]));
        return;
    }
    if (mnem == "la") {
        need(2);
        RegId rt = wantReg(st, ops[0]);
        if (ops[1].kind == Operand::Kind::LabelRef) {
            auto it = st.dataLabels.find(ops[1].label);
            if (it == st.dataLabels.end())
                st.error("la: data label '" + ops[1].label +
                         "' not defined yet (define data before use)");
            b.la(rt, it->second);
        } else {
            b.la(rt, static_cast<Addr>(wantImm(st, ops[1])));
        }
        return;
    }
    if (mnem == "move") {
        need(2);
        b.move(wantReg(st, ops[0]), wantReg(st, ops[1]));
        return;
    }
    if (mnem == "ret") {
        need(0);
        b.ret();
        return;
    }

    OpCode op = isa::parseMnemonic(mnem.c_str());
    if (op == OpCode::NumOpcodes)
        st.error("unknown mnemonic '" + mnem + "'");
    const isa::OpInfo &info = isa::opInfo(op);

    switch (info.fmt) {
      case Format::None:
        need(0);
        if (op == OpCode::NOP)
            b.nop();
        else
            b.halt();
        break;
      case Format::Print:
        need(1);
        b.print(wantReg(st, ops[0]));
        break;
      case Format::R3: {
        need(3);
        isa::Inst i;
        i.op = op;
        if (info.fp) {
            bool destGpr = op == OpCode::C_LT_D || op == OpCode::C_LE_D ||
                           op == OpCode::C_EQ_D;
            i.rd = destGpr ? wantReg(st, ops[0]) : wantFpReg(st, ops[0]);
            i.rs = wantFpReg(st, ops[1]);
            i.rt = wantFpReg(st, ops[2]);
        } else {
            i.rd = wantReg(st, ops[0]);
            i.rs = wantReg(st, ops[1]);
            i.rt = wantReg(st, ops[2]);
        }
        b.emit(i);
        break;
      }
      case Format::R2: {
        need(2);
        isa::Inst i;
        i.op = op;
        bool destFp = info.fp && op != OpCode::CVT_W_D;
        bool srcFp = info.fp && op != OpCode::CVT_D_W;
        i.rd = destFp ? wantFpReg(st, ops[0]) : wantReg(st, ops[0]);
        i.rs = srcFp ? wantFpReg(st, ops[1]) : wantReg(st, ops[1]);
        b.emit(i);
        break;
      }
      case Format::RShift: {
        need(3);
        isa::Inst i;
        i.op = op;
        i.rd = wantReg(st, ops[0]);
        i.rs = wantReg(st, ops[1]);
        i.imm = wantImm(st, ops[2]);
        b.emit(i);
        break;
      }
      case Format::I2: {
        need(3);
        isa::Inst i;
        i.op = op;
        i.rt = wantReg(st, ops[0]);
        i.rs = wantReg(st, ops[1]);
        i.imm = wantImm(st, ops[2]);
        b.emit(i);
        break;
      }
      case Format::I1: {
        need(2);
        b.lui(wantReg(st, ops[0]), wantImm(st, ops[1]));
        break;
      }
      case Format::Mem: {
        need(2);
        if (ops[1].kind != Operand::Kind::Mem)
            st.error("'" + mnem + "' expects an off(base) operand");
        isa::Inst i;
        i.op = op;
        i.rt = info.fp ? wantFpReg(st, ops[0]) : wantReg(st, ops[0]);
        i.rs = ops[1].base;
        i.imm = static_cast<std::int32_t>(ops[1].imm);
        i.localHint = ops[1].local;
        b.emit(i);
        break;
      }
      case Format::B2: {
        need(3);
        isa::Inst i;
        i.op = op;
        i.rs = wantReg(st, ops[0]);
        i.rt = wantReg(st, ops[1]);
        if (ops[2].kind == Operand::Kind::Imm) {
            // Raw word offset (what the disassembler emits).
            i.imm = static_cast<std::int32_t>(ops[2].imm);
            b.emit(i);
        } else if (ops[2].kind == Operand::Kind::LabelRef) {
            Label l = st.textLabel(ops[2].label);
            if (op == OpCode::BEQ)
                b.beq(i.rs, i.rt, l);
            else
                b.bne(i.rs, i.rt, l);
        } else {
            st.error("branch target must be a label or offset");
        }
        break;
      }
      case Format::B1: {
        need(2);
        RegId rs = wantReg(st, ops[0]);
        if (ops[1].kind == Operand::Kind::Imm) {
            isa::Inst i;
            i.op = op;
            i.rs = rs;
            i.imm = static_cast<std::int32_t>(ops[1].imm);
            b.emit(i);
            break;
        }
        if (ops[1].kind != Operand::Kind::LabelRef)
            st.error("branch target must be a label or offset");
        Label l = st.textLabel(ops[1].label);
        switch (op) {
          case OpCode::BLEZ: b.blez(rs, l); break;
          case OpCode::BGTZ: b.bgtz(rs, l); break;
          case OpCode::BLTZ: b.bltz(rs, l); break;
          case OpCode::BGEZ: b.bgez(rs, l); break;
          default: st.error("internal: bad B1 opcode");
        }
        break;
      }
      case Format::Jmp: {
        need(1);
        if (ops[0].kind == Operand::Kind::Imm) {
            // Absolute word target (what the disassembler emits).
            isa::Inst i;
            i.op = op;
            i.target = static_cast<std::uint32_t>(ops[0].imm);
            b.emit(i);
            break;
        }
        if (ops[0].kind != Operand::Kind::LabelRef)
            st.error("jump target must be a label or word index");
        Label l = st.textLabel(ops[0].label);
        if (op == OpCode::J)
            b.j(l);
        else
            b.jal(l);
        break;
      }
      case Format::JmpR:
        need(1);
        b.jr(wantReg(st, ops[0]));
        break;
      case Format::JmpLinkR:
        need(2);
        b.jalr(wantReg(st, ops[0]), wantReg(st, ops[1]));
        break;
    }
}

void
handleDirective(AsmState &st, const std::string &directive,
                const std::string &rest)
{
    auto &b = st.builder;
    if (directive == ".text") {
        st.inData = false;
    } else if (directive == ".data") {
        st.inData = true;
    } else if (directive == ".entry") {
        auto name = trim(rest);
        if (name.empty())
            st.error(".entry requires a label name");
        st.entryName = std::string(name);
        st.entryLine = st.lineNo;
    } else if (directive == ".word") {
        std::int64_t v;
        if (!parseInt(rest, v))
            st.error(".word requires an integer");
        b.dataWord(static_cast<Word>(v));
    } else if (directive == ".space") {
        std::int64_t v;
        if (!parseInt(rest, v) || v < 0)
            st.error(".space requires a non-negative byte count");
        b.dataWords((static_cast<std::size_t>(v) + 3) / 4);
    } else if (directive == ".align") {
        std::int64_t v;
        if (!parseInt(rest, v) || v <= 0)
            st.error(".align requires a positive alignment");
        b.dataAlign(static_cast<std::size_t>(v));
    } else if (directive == ".double") {
        double v;
        if (!parseDouble(rest, v))
            st.error(".double requires a number");
        b.dataDouble(v);
    } else {
        st.error("unknown directive '" + directive + "'");
    }
}

} // namespace

Program
assemble(const std::string &source, const std::string &name)
{
    AsmState st(name);
    std::istringstream in(source);
    std::string line;

    while (std::getline(in, line)) {
        ++st.lineNo;
        auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::string_view sv = trim(line);
        if (sv.empty())
            continue;

        // Labels (possibly several per line).
        while (true) {
            auto colon = sv.find(':');
            if (colon == std::string_view::npos)
                break;
            std::string label(trim(sv.substr(0, colon)));
            if (label.empty())
                st.error("empty label");
            auto bound = st.labelBoundAt.find(label);
            if (bound != st.labelBoundAt.end())
                st.error("label '" + label + "' already defined at line " +
                         std::to_string(bound->second));
            st.labelBoundAt.emplace(label, st.lineNo);
            if (st.inData) {
                // Current (word-aligned) data cursor as an address.
                Addr addr = st.builder.dataWords(0);
                st.dataLabels.emplace(label, addr);
            } else {
                Label l = st.textLabel(label);
                st.builder.bind(l);
            }
            sv = trim(sv.substr(colon + 1));
        }
        if (sv.empty())
            continue;

        // Directive or instruction.
        std::string text(sv);
        auto space = text.find_first_of(" \t");
        std::string head = text.substr(0, space);
        std::string rest =
            space == std::string::npos ? "" : text.substr(space + 1);
        // Builder- and encode-level errors (immediate out of range,
        // bad shift amount, ...) carry no source position of their
        // own; re-raise them with this line's number attached.
        try {
            if (head[0] == '.') {
                handleDirective(st, toLower(head), rest);
            } else {
                if (st.inData)
                    st.error("instruction in .data segment");
                handleInstruction(st, toLower(head), rest);
            }
        } catch (const FatalError &e) {
            std::string msg = e.what();
            if (msg.rfind("asm line", 0) == 0)
                throw;
            st.error(msg);
        }
    }

    // Report unbound text labels against the line that first used
    // them; the builder's own check would only name the label.
    for (const auto &[label, line] : st.labelFirstUse) {
        if (!st.labelBoundAt.count(label))
            fatal("asm line %d: label '%s' referenced but never defined",
                  line, label.c_str());
    }

    Program p = st.builder.finish();
    if (!p.hasSymbol(st.entryName)) {
        if (st.entryLine > 0)
            fatal("asm line %d: entry label '%s' not defined",
                  st.entryLine, st.entryName.c_str());
        fatal("asm: entry label '%s' not defined", st.entryName.c_str());
    }
    p.setEntry(p.symbol(st.entryName));
    return p;
}

} // namespace ddsim::prog
