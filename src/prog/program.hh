/**
 * @file
 * A loadable MISA program image: encoded text, an initial data segment
 * and a symbol table. Produced by ProgramBuilder or AsmParser and
 * consumed by the functional executor.
 */

#ifndef DDSIM_PROG_PROGRAM_HH_
#define DDSIM_PROG_PROGRAM_HH_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/inst.hh"
#include "util/types.hh"

namespace ddsim::prog {

/** A complete program image. */
class Program
{
  public:
    Program() = default;
    explicit Program(std::string name) : progName(std::move(name)) {}

    const std::string &name() const { return progName; }
    void setName(std::string n) { progName = std::move(n); }

    /** Number of instructions in the text segment. */
    std::size_t textSize() const { return text.size(); }

    /** Encoded instruction at word index @p idx. */
    std::uint32_t fetchRaw(std::uint32_t idx) const;

    /**
     * Decoded instruction at word index @p idx. Instructions are
     * decoded eagerly on append()/patch(), so a finished Program is
     * immutable through its const interface and safe to share
     * read-only across concurrently running simulations.
     */
    const isa::Inst &fetch(std::uint32_t idx) const;

    /** Append one encoded instruction; returns its word index. */
    std::uint32_t append(std::uint32_t word);

    /** Overwrite the instruction at @p idx (used for label fixups). */
    void patch(std::uint32_t idx, std::uint32_t word);

    /** Entry point as a text word index. */
    std::uint32_t entry() const { return entryIdx; }
    void setEntry(std::uint32_t idx) { entryIdx = idx; }

    /** Initial data segment, loaded at layout::DataBase. */
    const std::vector<std::uint8_t> &dataSegment() const { return data; }
    std::vector<std::uint8_t> &dataSegment() { return data; }

    /** Define symbol @p name at text word index @p idx. */
    void defineSymbol(const std::string &name, std::uint32_t idx);

    /** Look up a symbol; calls fatal() if missing. */
    std::uint32_t symbol(const std::string &name) const;
    bool hasSymbol(const std::string &name) const;
    const std::map<std::string, std::uint32_t> &symbols() const
    {
        return symtab;
    }

    /** Byte address of the first text word (layout::TextBase). */
    static Addr textAddr(std::uint32_t idx)
    {
        return layout::TextBase + idx * WordBytes;
    }

  private:
    std::string progName;
    std::vector<std::uint32_t> text;
    std::vector<isa::Inst> decoded;
    std::vector<std::uint8_t> data;
    std::map<std::string, std::uint32_t> symtab;
    std::uint32_t entryIdx = 0;
};

} // namespace ddsim::prog

#endif // DDSIM_PROG_PROGRAM_HH_
