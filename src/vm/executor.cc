#include "vm/executor.hh"

#include <cmath>

#include "util/log.hh"

namespace ddsim::vm {

using isa::Inst;
using isa::OpCode;
namespace reg = isa::reg;

Executor::Executor(const prog::Program &program)
    : program(program)
{
    const auto &data = program.dataSegment();
    if (!data.empty())
        mem.writeBlock(layout::DataBase, data.data(), data.size());

    gprs[reg::sp] = layout::StackBase;
    gprs[reg::gp] = layout::DataBase;
    gprs[reg::fp] = layout::StackBase;
    gprs[reg::ra] = ExitRa;
    pc = program.entry();
}

void
Executor::setGpr(RegId r, Word v)
{
    writeGpr(r, v);
}

void
Executor::writeGpr(RegId r, Word v)
{
    if (r == reg::zero)
        return;
    gprs[r] = v;
    ++gprVersions[r];
    if (r == reg::sp && v < minSp)
        minSp = v;
}

Addr
Executor::toTextIdx(Addr byteAddr) const
{
    if (byteAddr < layout::TextBase || byteAddr % 4 != 0)
        fatal("jump to non-text address 0x%08x", byteAddr);
    return (byteAddr - layout::TextBase) / 4;
}

DynInst
Executor::step()
{
    if (haltFlag)
        panic("Executor::step() called on a halted machine");

    const Inst &inst = program.fetch(pc);
    DynInst di;
    di.seq = seq++;
    di.pcIdx = pc;
    di.inst = inst;

    std::uint32_t next = pc + 1;
    Word rsv = gprs[inst.rs];
    Word rtv = gprs[inst.rt];
    SWord rss = static_cast<SWord>(rsv);
    SWord rts = static_cast<SWord>(rtv);

    switch (inst.op) {
      case OpCode::NOP:
        break;
      case OpCode::HALT:
        haltFlag = true;
        break;
      case OpCode::PRINT:
        output.push_back(rsv);
        break;

      case OpCode::ADD: writeGpr(inst.rd, rsv + rtv); break;
      case OpCode::SUB: writeGpr(inst.rd, rsv - rtv); break;
      case OpCode::MUL: writeGpr(inst.rd, rsv * rtv); break;
      case OpCode::DIV:
        // Division by zero is architecturally defined as 0 in MISA;
        // INT_MIN / -1 wraps to INT_MIN.
        if (rts == 0)
            writeGpr(inst.rd, 0);
        else if (rss == INT32_MIN && rts == -1)
            writeGpr(inst.rd, static_cast<Word>(INT32_MIN));
        else
            writeGpr(inst.rd, static_cast<Word>(rss / rts));
        break;
      case OpCode::AND: writeGpr(inst.rd, rsv & rtv); break;
      case OpCode::OR:  writeGpr(inst.rd, rsv | rtv); break;
      case OpCode::XOR: writeGpr(inst.rd, rsv ^ rtv); break;
      case OpCode::NOR: writeGpr(inst.rd, ~(rsv | rtv)); break;
      case OpCode::SLLV: writeGpr(inst.rd, rsv << (rtv & 31)); break;
      case OpCode::SRLV: writeGpr(inst.rd, rsv >> (rtv & 31)); break;
      case OpCode::SRAV:
        writeGpr(inst.rd, static_cast<Word>(rss >> (rtv & 31)));
        break;
      case OpCode::SLT: writeGpr(inst.rd, rss < rts ? 1 : 0); break;
      case OpCode::SLTU: writeGpr(inst.rd, rsv < rtv ? 1 : 0); break;

      case OpCode::SLL:
        writeGpr(inst.rd, rsv << (inst.imm & 31));
        break;
      case OpCode::SRL:
        writeGpr(inst.rd, rsv >> (inst.imm & 31));
        break;
      case OpCode::SRA:
        writeGpr(inst.rd, static_cast<Word>(rss >> (inst.imm & 31)));
        break;

      case OpCode::ADDI:
        writeGpr(inst.rt, rsv + static_cast<Word>(inst.imm));
        break;
      case OpCode::ANDI:
        writeGpr(inst.rt, rsv & static_cast<Word>(inst.imm));
        break;
      case OpCode::ORI:
        writeGpr(inst.rt, rsv | static_cast<Word>(inst.imm));
        break;
      case OpCode::XORI:
        writeGpr(inst.rt, rsv ^ static_cast<Word>(inst.imm));
        break;
      case OpCode::SLTI:
        writeGpr(inst.rt, rss < inst.imm ? 1 : 0);
        break;
      case OpCode::LUI:
        writeGpr(inst.rt, static_cast<Word>(inst.imm) << 16);
        break;

      case OpCode::LW:
      case OpCode::LB:
      case OpCode::LBU:
      case OpCode::SW:
      case OpCode::SB:
      case OpCode::LD:
      case OpCode::SD: {
        Addr addr = rsv + static_cast<Word>(inst.imm);
        di.effAddr = addr;
        di.accessSize = isa::opInfo(inst.op).accessSize;
        di.stackAccess = layout::isStackAddr(addr);
        di.baseVersion = gprVersions[inst.rs];
        switch (inst.op) {
          case OpCode::LW: writeGpr(inst.rt, mem.readWord(addr)); break;
          case OpCode::LB:
            writeGpr(inst.rt, static_cast<Word>(static_cast<SWord>(
                                  static_cast<std::int8_t>(
                                      mem.readByte(addr)))));
            break;
          case OpCode::LBU:
            writeGpr(inst.rt, mem.readByte(addr));
            break;
          case OpCode::SW: mem.writeWord(addr, rtv); break;
          case OpCode::SB:
            mem.writeByte(addr, static_cast<std::uint8_t>(rtv));
            break;
          case OpCode::LD: fprs[inst.rt] = mem.readDouble(addr); break;
          case OpCode::SD: mem.writeDouble(addr, fprs[inst.rt]); break;
          default: break;
        }
        break;
      }

      case OpCode::BEQ:
        di.taken = rsv == rtv;
        break;
      case OpCode::BNE:
        di.taken = rsv != rtv;
        break;
      case OpCode::BLEZ:
        di.taken = rss <= 0;
        break;
      case OpCode::BGTZ:
        di.taken = rss > 0;
        break;
      case OpCode::BLTZ:
        di.taken = rss < 0;
        break;
      case OpCode::BGEZ:
        di.taken = rss >= 0;
        break;

      case OpCode::J:
        di.taken = true;
        next = inst.target;
        break;
      case OpCode::JAL:
        di.taken = true;
        writeGpr(reg::ra, prog::Program::textAddr(pc + 1));
        next = inst.target;
        break;
      case OpCode::JR: {
        di.taken = true;
        if (rsv == ExitRa) {
            haltFlag = true;
            next = pc; // arbitrary; machine is halted
        } else {
            next = toTextIdx(rsv);
        }
        break;
      }
      case OpCode::JALR: {
        di.taken = true;
        Word target = rsv; // read before rd write (rd may equal rs)
        writeGpr(inst.rd, prog::Program::textAddr(pc + 1));
        if (target == ExitRa) {
            haltFlag = true;
            next = pc;
        } else {
            next = toTextIdx(target);
        }
        break;
      }

      case OpCode::ADD_D:
        fprs[inst.rd] = fprs[inst.rs] + fprs[inst.rt];
        break;
      case OpCode::SUB_D:
        fprs[inst.rd] = fprs[inst.rs] - fprs[inst.rt];
        break;
      case OpCode::MUL_D:
        fprs[inst.rd] = fprs[inst.rs] * fprs[inst.rt];
        break;
      case OpCode::DIV_D:
        fprs[inst.rd] = fprs[inst.rt] == 0.0
                            ? 0.0
                            : fprs[inst.rs] / fprs[inst.rt];
        break;
      case OpCode::MOV_D:
        fprs[inst.rd] = fprs[inst.rs];
        break;
      case OpCode::NEG_D:
        fprs[inst.rd] = -fprs[inst.rs];
        break;
      case OpCode::CVT_D_W:
        fprs[inst.rd] = static_cast<double>(rss);
        break;
      case OpCode::CVT_W_D: {
        // Saturating conversion: out-of-range and NaN inputs clamp,
        // keeping the architectural result well defined.
        double v = std::trunc(fprs[inst.rs]);
        SWord w;
        if (std::isnan(v))
            w = 0;
        else if (v >= 2147483647.0)
            w = INT32_MAX;
        else if (v <= -2147483648.0)
            w = INT32_MIN;
        else
            w = static_cast<SWord>(v);
        writeGpr(inst.rd, static_cast<Word>(w));
        break;
      }
      case OpCode::C_LT_D:
        writeGpr(inst.rd, fprs[inst.rs] < fprs[inst.rt] ? 1 : 0);
        break;
      case OpCode::C_LE_D:
        writeGpr(inst.rd, fprs[inst.rs] <= fprs[inst.rt] ? 1 : 0);
        break;
      case OpCode::C_EQ_D:
        writeGpr(inst.rd, fprs[inst.rs] == fprs[inst.rt] ? 1 : 0);
        break;

      case OpCode::NumOpcodes:
        panic("invalid opcode in executor");
    }

    if (isa::isCondBranch(inst.op) && di.taken)
        next = static_cast<std::uint32_t>(
            static_cast<std::int64_t>(pc) + 1 + inst.imm);

    di.nextPcIdx = next;
    pc = next;
    return di;
}

std::uint64_t
Executor::run(std::uint64_t maxInsts)
{
    std::uint64_t n = 0;
    while (!haltFlag && n < maxInsts) {
        step();
        ++n;
    }
    return n;
}

} // namespace ddsim::vm
