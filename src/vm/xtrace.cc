#include "vm/xtrace.hh"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <utility>

#include "isa/encode.hh"
#include "prog/program.hh"
#include "util/atomic_file.hh"
#include "util/error.hh"
#include "util/log.hh"

namespace ddsim::vm {

using isa::OpCode;

namespace {

/** Largest pc index the record head (and RecordedTrace) can carry. */
constexpr std::uint32_t kMaxPcIdx = (1u << 29) - 1;

/** True if @p op consumes the IndirectBit payload (dynamic target). */
bool
indirectOp(OpCode op)
{
    return op == OpCode::JR || op == OpCode::JALR;
}

/**
 * Validate one record against the program text. Returns "" when the
 * record is well-formed, else a description of the problem. Shared by
 * the file decoder (-> TraceCorruptError) and make() (-> ProgramError).
 */
std::string
recordIssue(const prog::Program &program, const XRecord &rec)
{
    const std::size_t textCount = program.textSize();
    if (rec.pcIdx >= textCount)
        return "record pc index out of range";
    const isa::Inst &inst = program.fetch(rec.pcIdx);
    const isa::OpInfo &oi = isa::opInfo(inst.op);
    if (rec.mem != isa::isMem(inst.op))
        return rec.mem ? "memory payload on a non-memory instruction"
                       : "memory instruction without address payload";
    if (rec.indirect != indirectOp(inst.op))
        return rec.indirect
                   ? "indirect target on a direct instruction"
                   : "register-indirect jump without target payload";
    if (oi.uncondJump && !rec.taken)
        return "unconditional jump recorded as not taken";
    if (rec.taken && !isa::isControl(inst.op))
        return "taken flag on a non-control instruction";
    if (rec.indirect && rec.nextPcIdx >= textCount)
        return "indirect jump target out of range";
    return "";
}

/**
 * Where control goes after @p rec — the same derivation
 * TraceReplay::step() performs, used to validate record chaining.
 */
std::int64_t
derivedNext(const isa::Inst &inst, const XRecord &rec)
{
    if (rec.indirect)
        return rec.nextPcIdx;
    if (inst.op == OpCode::J || inst.op == OpCode::JAL)
        return inst.target;
    if (isa::isCondBranch(inst.op) && rec.taken)
        return static_cast<std::int64_t>(rec.pcIdx) + 1 + inst.imm;
    return static_cast<std::int64_t>(rec.pcIdx) + 1;
}

/** Append one record to the internal RecordedTrace word encoding. */
void
packRecord(std::vector<std::uint32_t> &words, const XRecord &rec)
{
    std::uint32_t w0 = rec.pcIdx;
    if (rec.taken)
        w0 |= 1u << 31;
    if (rec.mem)
        w0 |= 1u << 30;
    if (rec.indirect)
        w0 |= 1u << 29;
    words.push_back(w0);
    if (rec.mem) {
        words.push_back(rec.effAddr);
        words.push_back(rec.baseVersion);
    }
    if (rec.indirect)
        words.push_back(rec.nextPcIdx);
}

/** Sequential decoder over an in-memory file image with typed
 *  corruption reporting, mirroring obs::TraceReader. */
struct ByteReader
{
    const std::string &buf;
    const std::string &path;
    std::size_t pos = 0;

    [[noreturn]] void
    corrupt(std::size_t off, const std::string &msg)
    {
        raise(TraceCorruptError(path, off, msg));
    }

    std::uint64_t
    varint(const char *what)
    {
        const std::size_t start = pos;
        std::uint64_t v = 0;
        int shift = 0;
        while (true) {
            if (pos >= buf.size())
                corrupt(start,
                        std::string("truncated varint (") + what + ")");
            std::uint8_t b =
                static_cast<std::uint8_t>(buf[pos++]);
            if (shift == 63 && (b & 0x7f) > 1)
                corrupt(start,
                        std::string("varint overflows 64 bits (") +
                            what + ")");
            v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
            if (!(b & 0x80))
                return v;
            shift += 7;
            if (shift > 63)
                corrupt(start,
                        std::string("varint overflows 64 bits (") +
                            what + ")");
        }
    }

    std::uint32_t
    varint32(const char *what)
    {
        const std::size_t start = pos;
        std::uint64_t v = varint(what);
        if (v > UINT32_MAX)
            corrupt(start,
                    std::string("value overflows 32 bits (") + what +
                        ")");
        return static_cast<std::uint32_t>(v);
    }

    std::uint32_t
    u32le()
    {
        if (buf.size() - pos < 4)
            corrupt(pos, "truncated text segment");
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(
                     static_cast<std::uint8_t>(buf[pos + i]))
                 << (8 * i);
        pos += 4;
        return v;
    }
};

void
putVarint(std::ostream &os, std::uint64_t v)
{
    do {
        std::uint8_t b = v & 0x7f;
        v >>= 7;
        if (v)
            b |= 0x80;
        os.put(static_cast<char>(b));
    } while (v);
}

void
putU32le(std::ostream &os, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        os.put(static_cast<char>((v >> (8 * i)) & 0xff));
}

} // namespace

std::shared_ptr<const ExternalTrace>
ExternalTrace::load(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        raise(IoError(path, "cannot open xtrace file '" + path + "'"));
    std::string buf((std::istreambuf_iterator<char>(is)),
                    std::istreambuf_iterator<char>());
    if (is.bad())
        raise(IoError(path, "read error on xtrace file '" + path + "'"));

    ByteReader r{buf, path};
    if (buf.size() < sizeof(kXtraceMagic) ||
        std::memcmp(buf.data(), kXtraceMagic, sizeof(kXtraceMagic)) != 0)
        r.corrupt(0, "bad magic (not a ddsim-xtrace-v1 file)");
    r.pos = sizeof(kXtraceMagic);

    const std::size_t versionOff = r.pos;
    const std::uint64_t version = r.varint("version");
    if (version != kXtraceVersion)
        r.corrupt(versionOff,
                  "unsupported xtrace version " + std::to_string(version));
    const std::size_t flagsOff = r.pos;
    const std::uint64_t flags = r.varint("flags");
    if (flags & ~kXtraceFlagHintsValid)
        r.corrupt(flagsOff, "unknown flag bits set");

    const std::size_t nameOff = r.pos;
    const std::uint64_t nameLen = r.varint("name length");
    if (nameLen > buf.size() - r.pos)
        r.corrupt(nameOff, "truncated program name");
    std::string name =
        buf.substr(r.pos, static_cast<std::size_t>(nameLen));
    r.pos += static_cast<std::size_t>(nameLen);

    const std::uint32_t entry = r.varint32("entry point");
    const std::size_t textCountOff = r.pos;
    const std::uint32_t textCount = r.varint32("text count");
    if (textCount == 0)
        r.corrupt(textCountOff, "empty text segment");
    if (textCount > kMaxPcIdx + 1)
        r.corrupt(textCountOff, "text segment too large to index");
    if (static_cast<std::uint64_t>(textCount) * 4 > buf.size() - r.pos)
        r.corrupt(textCountOff, "truncated text segment");
    if (entry >= textCount)
        r.corrupt(textCountOff, "entry point outside the text segment");

    auto program = std::make_shared<prog::Program>(name);
    for (std::uint32_t i = 0; i < textCount; ++i) {
        const std::size_t wordOff = r.pos;
        const std::uint32_t word = r.u32le();
        if ((word >> 26) >=
            static_cast<std::uint32_t>(OpCode::NumOpcodes))
            r.corrupt(wordOff, "invalid opcode in text segment");
        try {
            program->append(word);
        } catch (const FatalError &e) {
            r.corrupt(wordOff,
                      std::string("undecodable instruction: ") +
                          e.what());
        }
    }
    program->setEntry(entry);

    const std::size_t instCountOff = r.pos;
    const std::uint64_t instCount = r.varint("record count");
    if (instCount == 0)
        r.corrupt(instCountOff, "empty dynamic record stream");

    auto ext =
        std::shared_ptr<ExternalTrace>(new ExternalTrace());
    ext->prog_ = program;
    ext->path_ = path;
    ext->format_ = "xtrace";
    ext->hintsValid_ = (flags & kXtraceFlagHintsValid) != 0;
    ext->trace_.prog = program.get();
    ext->trace_.numInsts = instCount;
    ext->trace_.words.reserve(
        static_cast<std::size_t>(std::min<std::uint64_t>(
            instCount * 2, (buf.size() - r.pos) + 1)));

    std::int64_t expected = -1;
    for (std::uint64_t k = 0; k < instCount; ++k) {
        const std::size_t headOff = r.pos;
        const std::uint64_t head = r.varint("record head");
        if ((head >> 3) > kMaxPcIdx)
            r.corrupt(headOff, "record pc index overflows encoding");
        XRecord rec;
        rec.pcIdx = static_cast<std::uint32_t>(head >> 3);
        rec.taken = (head & 1) != 0;
        rec.mem = (head & 2) != 0;
        rec.indirect = (head & 4) != 0;
        if (rec.mem) {
            rec.effAddr = r.varint32("effective address");
            rec.baseVersion = r.varint32("base version");
        }
        if (rec.indirect)
            rec.nextPcIdx = r.varint32("indirect target");
        const std::string issue = recordIssue(*program, rec);
        if (!issue.empty())
            r.corrupt(headOff, issue);
        if (k == 0) {
            if (rec.pcIdx != entry)
                r.corrupt(headOff,
                          "first record does not start at the entry "
                          "point");
        } else if (rec.pcIdx != expected) {
            r.corrupt(headOff, "control-flow chain broken");
        }
        expected = derivedNext(program->fetch(rec.pcIdx), rec);
        packRecord(ext->trace_.words, rec);
    }
    if (r.pos != buf.size())
        r.corrupt(r.pos, "trailing bytes after the last record");

    ext->annotate();
    return ext;
}

std::shared_ptr<const ExternalTrace>
ExternalTrace::loadCached(const std::string &path)
{
    static std::mutex mtx;
    static std::map<std::string, std::shared_ptr<const ExternalTrace>>
        cache;
    {
        std::lock_guard<std::mutex> lock(mtx);
        auto it = cache.find(path);
        if (it != cache.end())
            return it->second;
    }
    auto ext = load(path);
    std::lock_guard<std::mutex> lock(mtx);
    return cache.emplace(path, std::move(ext)).first->second;
}

std::shared_ptr<const ExternalTrace>
ExternalTrace::fromProgram(std::shared_ptr<const prog::Program> program,
                           std::uint64_t maxInsts, std::string format,
                           bool hintsValid)
{
    if (!program || program->textSize() == 0)
        raise(ProgramError("external trace needs a non-empty program"));
    auto ext = std::shared_ptr<ExternalTrace>(new ExternalTrace());
    ext->prog_ = std::move(program);
    ext->format_ = std::move(format);
    ext->hintsValid_ = hintsValid;
    ext->trace_ = RecordedTrace::record(*ext->prog_, maxInsts);
    ext->annotate();
    return ext;
}

std::shared_ptr<const ExternalTrace>
ExternalTrace::make(std::shared_ptr<const prog::Program> program,
                    const std::vector<XRecord> &records,
                    std::string format, bool hintsValid)
{
    if (!program || program->textSize() == 0)
        raise(ProgramError("external trace needs a non-empty program"));
    if (records.empty())
        raise(ProgramError("external trace needs at least one record"));

    auto ext = std::shared_ptr<ExternalTrace>(new ExternalTrace());
    ext->prog_ = std::move(program);
    ext->format_ = std::move(format);
    ext->hintsValid_ = hintsValid;
    ext->trace_.prog = ext->prog_.get();
    ext->trace_.numInsts = records.size();

    std::int64_t expected = -1;
    for (std::size_t k = 0; k < records.size(); ++k) {
        const XRecord &rec = records[k];
        const std::string issue = recordIssue(*ext->prog_, rec);
        if (!issue.empty())
            raise(ProgramError("converted trace record " +
                               std::to_string(k) + ": " + issue));
        if (k == 0) {
            if (rec.pcIdx != ext->prog_->entry())
                raise(ProgramError(
                    "converted trace does not start at the entry "
                    "point"));
        } else if (rec.pcIdx != expected) {
            raise(ProgramError("converted trace record " +
                               std::to_string(k) +
                               ": control-flow chain broken"));
        }
        expected = derivedNext(ext->prog_->fetch(rec.pcIdx), rec);
        packRecord(ext->trace_.words, rec);
    }

    ext->annotate();
    return ext;
}

void
ExternalTrace::save(const std::string &path) const
{
    AtomicFile file(path, /*binary=*/true);
    std::ostream &os = file.stream();
    os.write(kXtraceMagic, sizeof(kXtraceMagic));
    putVarint(os, kXtraceVersion);
    putVarint(os, hintsValid_ ? kXtraceFlagHintsValid : 0);
    const std::string &name = prog_->name();
    putVarint(os, name.size());
    os.write(name.data(),
             static_cast<std::streamsize>(name.size()));
    putVarint(os, prog_->entry());
    putVarint(os, prog_->textSize());
    for (std::uint32_t i = 0;
         i < static_cast<std::uint32_t>(prog_->textSize()); ++i)
        putU32le(os, prog_->fetchRaw(i));
    putVarint(os, trace_.numInsts);

    const std::vector<std::uint32_t> &words = trace_.words;
    std::size_t pos = 0;
    for (std::uint64_t k = 0; k < trace_.numInsts; ++k) {
        const std::uint32_t w0 = words[pos++];
        const bool taken = (w0 & RecordedTrace::TakenBit) != 0;
        const bool mem = (w0 & RecordedTrace::MemBit) != 0;
        const bool indirect = (w0 & RecordedTrace::IndirectBit) != 0;
        const std::uint32_t pcIdx = w0 & RecordedTrace::PcMask;
        std::uint64_t head = static_cast<std::uint64_t>(pcIdx) << 3;
        head |= taken ? 1 : 0;
        head |= mem ? 2 : 0;
        head |= indirect ? 4 : 0;
        putVarint(os, head);
        if (mem) {
            putVarint(os, words[pos++]); // effective address
            putVarint(os, words[pos++]); // base version
        }
        if (indirect)
            putVarint(os, words[pos++]); // dynamic target
    }
    file.commit();
}

void
ExternalTrace::annotate()
{
    const std::size_t textCount = prog_->textSize();
    verdicts_.assign(textCount, XVerdict::Ambiguous);

    // Per-pc dynamic evidence: how many accesses executed, and how
    // many of them the sp-tracking + oracle pair unanimously calls
    // local (stack-derived base AND stack-region address) or
    // non-local (neither).
    struct Acc
    {
        std::uint64_t n = 0;
        std::uint64_t localOk = 0;
        std::uint64_t nonLocalOk = 0;
    };
    std::vector<Acc> acc(textCount);

    // Registers currently holding a stack-derived value. Seeded with
    // sp/fp; pointer arithmetic (addi/add/sub/or-moves) propagates,
    // any other write clears — the runtime mirror of ddlint's
    // StackDerived lattice value.
    std::uint32_t stackRegs =
        (1u << isa::reg::sp) | (1u << isa::reg::fp);
    const auto stackBit = [&stackRegs](RegId r) {
        return ((stackRegs >> r) & 1u) != 0;
    };

    TraceReplay rp(trace_);
    while (!rp.halted()) {
        const DynInst di = rp.step();
        const isa::Inst &inst = di.inst;

        if (di.isMem()) {
            const bool baseStack = stackBit(inst.rs);
            const bool oracle = di.stackAccess;
            Acc &a = acc[di.pcIdx];
            ++a.n;
            if (baseStack && oracle)
                ++a.localOk;
            if (!baseStack && !oracle)
                ++a.nonLocalOk;
            ++annotation_.memOps;
            if (baseStack == oracle)
                ++annotation_.spAgree;
            else
                ++annotation_.spDisagree;
        }

        const isa::RegRef dest = isa::destReg(inst);
        if (dest.file == isa::RegFile::Gpr && dest.idx != 0) {
            bool derived = false;
            switch (inst.op) {
              case OpCode::ADDI:
                derived = stackBit(inst.rs);
                break;
              case OpCode::ADD:
              case OpCode::OR: // covers "or rd, rs, zero" moves
                derived = stackBit(inst.rs) != stackBit(inst.rt);
                break;
              case OpCode::SUB:
                derived = stackBit(inst.rs) && !stackBit(inst.rt);
                break;
              default:
                break;
            }
            if (derived)
                stackRegs |= 1u << dest.idx;
            else
                stackRegs &= ~(1u << dest.idx);
        }
    }

    for (std::size_t pc = 0; pc < textCount; ++pc) {
        const isa::Inst &inst = prog_->fetch(
            static_cast<std::uint32_t>(pc));
        if (!isa::isMem(inst.op))
            continue;
        ++annotation_.memPcs;
        const Acc &a = acc[pc];
        XVerdict v = XVerdict::Ambiguous;
        if (a.n == 0) {
            // Never executed in this trace: fall back to the static
            // screen — a plain sp/fp base is safely local, anything
            // else stays ambiguous (the predictor carries it).
            if (isa::isStackBase(inst.rs))
                v = XVerdict::Local;
        } else if (a.localOk == a.n) {
            v = XVerdict::Local;
        } else if (a.nonLocalOk == a.n) {
            v = XVerdict::NonLocal;
        }
        verdicts_[pc] = v;
        switch (v) {
          case XVerdict::Local: ++annotation_.localPcs; break;
          case XVerdict::NonLocal: ++annotation_.nonLocalPcs; break;
          case XVerdict::Ambiguous: ++annotation_.ambiguousPcs; break;
        }
    }
}

} // namespace ddsim::vm
