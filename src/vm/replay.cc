/**
 * @file
 * RecordedTrace / TraceReplay: record a program's dynamic instruction
 * stream once, replay it per configuration point. The replayed
 * DynInst records are field-for-field identical to what a live
 * Executor would hand the pipeline (asserted by the differential
 * suite), so the timing model is bit-identical either way.
 */

#include "vm/trace.hh"

#include "prog/program.hh"
#include "util/log.hh"
#include "vm/executor.hh"

namespace ddsim::vm {

using isa::OpCode;

RecordedTrace
RecordedTrace::record(const prog::Program &program,
                      std::uint64_t maxInsts)
{
    RecordedTrace t;
    t.prog = &program;

    Executor exec(program);
    while (!exec.halted() &&
           (maxInsts == 0 || t.numInsts < maxInsts)) {
        DynInst di = exec.step();
        if (di.pcIdx & ~PcMask)
            fatal("RecordedTrace: text index 0x%x needs more than 29 "
                  "bits", di.pcIdx);

        std::uint32_t w0 = di.pcIdx;
        if (di.taken)
            w0 |= TakenBit;
        // Register-indirect jumps are the only instructions whose
        // next pc cannot be re-derived from the program text.
        bool indirect =
            di.inst.op == OpCode::JR || di.inst.op == OpCode::JALR;
        if (indirect)
            w0 |= IndirectBit;
        if (di.isMem())
            w0 |= MemBit;
        t.words.push_back(w0);
        if (di.isMem()) {
            t.words.push_back(di.effAddr);
            t.words.push_back(di.baseVersion);
        }
        if (indirect)
            t.words.push_back(di.nextPcIdx);
        ++t.numInsts;
    }
    t.words.shrink_to_fit();
    return t;
}

DynInst
TraceReplay::step()
{
    if (halted())
        panic("TraceReplay::step() called on an exhausted trace");

    const std::uint32_t *w = trace.words.data();
    std::uint32_t w0 = w[pos++];
    std::uint32_t pcIdx = w0 & RecordedTrace::PcMask;

    DynInst di;
    di.seq = emitted++;
    di.pcIdx = pcIdx;
    di.inst = trace.prog->fetch(pcIdx);
    di.taken = (w0 & RecordedTrace::TakenBit) != 0;
    if (w0 & RecordedTrace::MemBit) {
        di.effAddr = w[pos++];
        di.baseVersion = w[pos++];
        di.accessSize = isa::opInfo(di.inst.op).accessSize;
        di.stackAccess = layout::isStackAddr(di.effAddr);
    }
    if (w0 & RecordedTrace::IndirectBit)
        di.nextPcIdx = w[pos++];
    else if (di.inst.op == OpCode::J || di.inst.op == OpCode::JAL)
        di.nextPcIdx = di.inst.target;
    else if (di.taken)
        di.nextPcIdx = static_cast<std::uint32_t>(
            static_cast<std::int64_t>(pcIdx) + 1 + di.inst.imm);
    else
        di.nextPcIdx = pcIdx + 1;
    return di;
}

BatchedReplay::BatchedReplay(const RecordedTrace &trace,
                             std::size_t ringCap)
    : decoder(trace), total(trace.instCount())
{
    std::size_t cap = 1;
    while (cap < ringCap)
        cap <<= 1;
    ring.resize(cap);
    mask = cap - 1;
}

void
BatchedReplay::decodeTo(std::uint64_t upTo)
{
    if (upTo > total)
        upTo = total;
    if (upTo > decodedEnd + ring.size())
        panic("BatchedReplay::decodeTo(%llu) would evict undecoded "
              "records (frontier %llu, capacity %zu)",
              static_cast<unsigned long long>(upTo),
              static_cast<unsigned long long>(decodedEnd),
              ring.size());
    while (decodedEnd < upTo) {
        ring[decodedEnd & mask] = decoder.step();
        ++decodedEnd;
    }
}

DynInst
BatchedReplay::Cursor::step()
{
    if (halted())
        panic("BatchedReplay::Cursor::step() on an exhausted trace");
    if (next >= batch->decodedEnd)
        panic("BatchedReplay::Cursor ran ahead of the decode frontier "
              "(%llu >= %llu): driver chunking bug",
              static_cast<unsigned long long>(next),
              static_cast<unsigned long long>(batch->decodedEnd));
    if (next + batch->ring.size() < batch->decodedEnd)
        panic("BatchedReplay::Cursor fell behind the ring (%llu, "
              "frontier %llu, capacity %zu): driver chunking bug",
              static_cast<unsigned long long>(next),
              static_cast<unsigned long long>(batch->decodedEnd),
              batch->ring.size());
    return batch->ring[next++ & batch->mask];
}

} // namespace ddsim::vm
