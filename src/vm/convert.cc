#include "vm/convert.hh"

#include <cstdint>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "isa/encode.hh"
#include "isa/regs.hh"
#include "prog/program.hh"
#include "util/error.hh"

namespace ddsim::vm {

using isa::Inst;
using isa::OpCode;

namespace {

/** One parsed input line. */
struct TextRecord
{
    std::size_t off = 0;  ///< Byte offset of the line (for errors).
    std::uint32_t pc = 0; ///< Source PC (arbitrary; only identity used).
    int type = 0;         ///< 0 ALU, 1 long-latency, 2 memory.
    long long dest = -1;
    long long src1 = -1;
    long long src2 = -1;
    Addr addr = 0;        ///< Source memory address (type 2 only).
};

/** Everything known about one static source PC after pass 1. */
struct PcInfo
{
    bool seen = false;
    int type = 0;
    long long dest = -1, src1 = -1, src2 = -1;
    std::size_t firstOff = 0;
    bool stackAll = true;            ///< Mem: every address in-range.
    std::set<std::uint32_t> succPcs; ///< Observed successor PCs.
};

/** How a source PC was rebuilt as a MISA instruction. */
enum class Kind : std::uint8_t
{
    Alu,      ///< ADD
    Mul,      ///< MUL (long-latency)
    Load,     ///< LW
    Store,    ///< SW
    Jump,     ///< J constant target
    Branch,   ///< BNE fall-through/target pair
    Indirect, ///< JR, dynamic target per record
};

[[noreturn]] void
corrupt(const std::string &path, std::size_t off, const std::string &msg)
{
    raise(TraceCorruptError(path, off, msg));
}

bool
parseHex(const std::string &tok, std::uint32_t &v)
{
    std::size_t i = 0;
    if (tok.size() > 2 && tok[0] == '0' &&
        (tok[1] == 'x' || tok[1] == 'X'))
        i = 2;
    if (i == tok.size())
        return false;
    std::uint64_t acc = 0;
    for (; i < tok.size(); ++i) {
        const char c = tok[i];
        int d;
        if (c >= '0' && c <= '9')
            d = c - '0';
        else if (c >= 'a' && c <= 'f')
            d = c - 'a' + 10;
        else if (c >= 'A' && c <= 'F')
            d = c - 'A' + 10;
        else
            return false;
        acc = acc * 16 + static_cast<std::uint64_t>(d);
        if (acc > UINT32_MAX)
            return false;
    }
    v = static_cast<std::uint32_t>(acc);
    return true;
}

bool
parseDec(const std::string &tok, long long &v)
{
    std::size_t i = 0;
    bool neg = false;
    if (!tok.empty() && tok[0] == '-') {
        neg = true;
        i = 1;
    }
    if (i == tok.size())
        return false;
    long long acc = 0;
    for (; i < tok.size(); ++i) {
        const char c = tok[i];
        if (c < '0' || c > '9')
            return false;
        acc = acc * 10 + (c - '0');
        if (acc > (1ll << 31))
            return false;
    }
    v = neg ? -acc : acc;
    return true;
}

/**
 * Remap a source register number into the MISA temporary range
 * t0..t9/s0..s7 (8..25), keeping clear of zero/at/kN/gp/sp/fp/ra so
 * the reconstructed program never aliases the registers the
 * annotation pass gives meaning to. -1 (none) maps to the zero
 * register.
 */
RegId
mapReg(long long r)
{
    if (r < 0)
        return isa::reg::zero;
    return static_cast<RegId>(8 + r % 18);
}

} // namespace

std::shared_ptr<const ExternalTrace>
convertTextTrace(const std::string &path, const ConvertOptions &opts)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        raise(IoError(path, "cannot open trace file '" + path + "'"));
    std::string buf((std::istreambuf_iterator<char>(is)),
                    std::istreambuf_iterator<char>());
    if (is.bad())
        raise(IoError(path, "read error on trace file '" + path + "'"));
    return convertTextTraceBuffer(buf, path, opts);
}

std::shared_ptr<const ExternalTrace>
convertTextTraceBuffer(const std::string &buf, const std::string &path,
                       const ConvertOptions &opts)
{
    if (opts.stackHi) {
        if (opts.stackHi < opts.stackLo)
            raise(ConfigError("stack-range",
                              "stack range upper bound below lower"));
        if (opts.stackHi - opts.stackLo > 0x0800'0000u)
            raise(ConfigError("stack-range",
                              "stack range wider than 128 MB"));
    }
    const auto inStackRange = [&opts](Addr a) {
        return opts.stackHi != 0 && a >= opts.stackLo &&
               a <= opts.stackHi;
    };
    const auto mapAddr = [&](Addr a) -> Addr {
        if (inStackRange(a))
            return (layout::StackBase - (opts.stackHi - a)) & ~3u;
        return (layout::HeapBase + (a & 0x0fff'ffffu)) & ~3u;
    };

    // ---- Pass 1: tokenize every line into TextRecords -------------
    std::vector<TextRecord> recs;
    std::size_t lineStart = 0;
    while (lineStart < buf.size()) {
        std::size_t lineEnd = buf.find('\n', lineStart);
        if (lineEnd == std::string::npos)
            lineEnd = buf.size();
        std::size_t end = lineEnd;
        for (std::size_t i = lineStart; i < end; ++i) {
            if (buf[i] == '#') {
                end = i;
                break;
            }
        }
        std::vector<std::pair<std::size_t, std::string>> toks;
        std::size_t i = lineStart;
        while (i < end) {
            if (buf[i] == ' ' || buf[i] == '\t' || buf[i] == '\r') {
                ++i;
                continue;
            }
            const std::size_t tokStart = i;
            while (i < end && buf[i] != ' ' && buf[i] != '\t' &&
                   buf[i] != '\r')
                ++i;
            toks.emplace_back(tokStart,
                              buf.substr(tokStart, i - tokStart));
        }
        if (!toks.empty()) {
            TextRecord rec;
            rec.off = toks[0].first;
            if (toks.size() != 5 && toks.size() != 6)
                corrupt(path, rec.off,
                        "expected 5 or 6 fields, got " +
                            std::to_string(toks.size()));
            if (!parseHex(toks[0].second, rec.pc))
                corrupt(path, toks[0].first,
                        "bad pc '" + toks[0].second + "'");
            long long type;
            if (!parseDec(toks[1].second, type) || type < 0 || type > 2)
                corrupt(path, toks[1].first,
                        "bad op type '" + toks[1].second + "'");
            rec.type = static_cast<int>(type);
            const char *fields[3] = {"dest", "src1", "src2"};
            long long *out[3] = {&rec.dest, &rec.src1, &rec.src2};
            for (int f = 0; f < 3; ++f) {
                if (!parseDec(toks[2 + f].second, *out[f]) ||
                    *out[f] < -1)
                    corrupt(path, toks[2 + f].first,
                            std::string("bad ") + fields[f] + " '" +
                                toks[2 + f].second + "'");
            }
            if (rec.type == 2) {
                if (toks.size() != 6)
                    corrupt(path, rec.off,
                            "memory record without an address field");
                if (!parseHex(toks[5].second, rec.addr))
                    corrupt(path, toks[5].first,
                            "bad memory address '" + toks[5].second +
                                "'");
            } else if (toks.size() == 6) {
                corrupt(path, toks[5].first,
                        "address field on a non-memory record");
            }
            recs.push_back(rec);
        }
        lineStart = lineEnd + 1;
    }
    if (recs.empty())
        corrupt(path, 0, "no instruction records");

    // ---- Pass 2: static PC table, consistency, successor sets -----
    std::map<std::uint32_t, PcInfo> pcs;
    for (std::size_t k = 0; k < recs.size(); ++k) {
        const TextRecord &rec = recs[k];
        PcInfo &info = pcs[rec.pc];
        if (!info.seen) {
            info.seen = true;
            info.type = rec.type;
            info.dest = rec.dest;
            info.src1 = rec.src1;
            info.src2 = rec.src2;
            info.firstOff = rec.off;
        } else if (info.type != rec.type || info.dest != rec.dest ||
                   info.src1 != rec.src1 || info.src2 != rec.src2) {
            corrupt(path, rec.off,
                    "pc reused with different instruction fields");
        }
        if (rec.type == 2)
            info.stackAll = info.stackAll && inStackRange(rec.addr);
        if (k > 0)
            pcs[recs[k - 1].pc].succPcs.insert(rec.pc);
    }
    if (pcs.size() > static_cast<std::size_t>(isa::JumpTargetMax) + 1)
        corrupt(path, 0, "too many distinct pcs to index");

    std::map<std::uint32_t, std::uint32_t> rank;
    for (const auto &[pc, info] : pcs)
        rank.emplace(pc, static_cast<std::uint32_t>(rank.size()));

    // ---- Pass 3: classify and rebuild each static instruction -----
    const std::uint32_t numPcs = static_cast<std::uint32_t>(pcs.size());
    std::vector<Kind> kinds(numPcs);
    std::vector<Inst> insts(numPcs);
    std::vector<std::uint32_t> branchTarget(numPcs, 0);
    for (const auto &[pc, info] : pcs) {
        const std::uint32_t p = rank.at(pc);
        const std::uint32_t seq = p + 1;
        std::set<std::uint32_t> succs;
        for (std::uint32_t s : info.succPcs)
            succs.insert(rank.at(s));
        const bool sequential =
            succs.empty() || (succs.size() == 1 && *succs.begin() == seq);

        Kind kind;
        std::uint32_t target = 0;
        if (info.type == 2) {
            if (!sequential)
                corrupt(path, info.firstOff,
                        "memory instruction has a non-sequential "
                        "successor");
            kind = info.dest >= 0 ? Kind::Load : Kind::Store;
        } else if (sequential) {
            kind = info.type == 1 ? Kind::Mul : Kind::Alu;
        } else if (succs.size() == 1) {
            kind = Kind::Jump;
            target = *succs.begin();
        } else if (succs.size() == 2 && succs.count(seq)) {
            target = *succs.begin() == seq ? *succs.rbegin()
                                           : *succs.begin();
            const std::int64_t disp =
                static_cast<std::int64_t>(target) - seq;
            kind = (disp >= isa::Imm16Min && disp <= isa::Imm16Max)
                       ? Kind::Branch
                       : Kind::Indirect;
        } else {
            kind = Kind::Indirect;
        }

        Inst in;
        switch (kind) {
          case Kind::Alu:
          case Kind::Mul:
            in.op = kind == Kind::Mul ? OpCode::MUL : OpCode::ADD;
            in.rd = mapReg(info.dest);
            in.rs = mapReg(info.src1);
            in.rt = mapReg(info.src2);
            break;
          case Kind::Load:
          case Kind::Store: {
            // A PC whose every dynamic address falls in the declared
            // stack window is rebuilt as a frame reference off fp, so
            // the sp-tracking annotation recognises it.
            const RegId base = (opts.stackHi && info.stackAll)
                                   ? isa::reg::fp
                                   : mapReg(info.src1);
            in.op = kind == Kind::Load ? OpCode::LW : OpCode::SW;
            in.rs = base;
            in.rt = kind == Kind::Load ? mapReg(info.dest)
                                       : mapReg(info.src2);
            in.imm = 0;
            break;
          }
          case Kind::Jump:
            in.op = OpCode::J;
            in.target = target;
            break;
          case Kind::Branch:
            in.op = OpCode::BNE;
            in.rs = mapReg(info.src1);
            in.rt = mapReg(info.src2);
            in.imm =
                static_cast<std::int32_t>(target) -
                static_cast<std::int32_t>(seq);
            break;
          case Kind::Indirect:
            in.op = OpCode::JR;
            in.rs = mapReg(info.src1);
            break;
        }
        kinds[p] = kind;
        insts[p] = in;
        branchTarget[p] = target;
    }

    // ---- Pass 4: dynamic records with synthesized base versions ---
    std::vector<XRecord> xrecs;
    xrecs.reserve(recs.size());
    std::uint32_t versions[NumGprs] = {};
    for (std::size_t k = 0; k < recs.size(); ++k) {
        const std::uint32_t p = rank.at(recs[k].pc);
        const Inst &in = insts[p];
        XRecord x;
        x.pcIdx = p;
        switch (kinds[p]) {
          case Kind::Alu:
          case Kind::Mul:
            break;
          case Kind::Load:
          case Kind::Store:
            x.mem = true;
            x.effAddr = mapAddr(recs[k].addr);
            x.baseVersion = versions[in.rs];
            break;
          case Kind::Jump:
            x.taken = true;
            break;
          case Kind::Branch:
            x.taken = k + 1 < recs.size() &&
                      rank.at(recs[k + 1].pc) == branchTarget[p];
            break;
          case Kind::Indirect:
            x.taken = true;
            x.indirect = true;
            x.nextPcIdx = k + 1 < recs.size()
                              ? rank.at(recs[k + 1].pc)
                              : p; // halting convention
            break;
        }
        xrecs.push_back(x);
        const isa::RegRef dest = isa::destReg(in);
        if (dest.file == isa::RegFile::Gpr)
            ++versions[dest.idx];
    }

    const auto buildProgram = [&](const std::vector<Inst> &list) {
        auto program = std::make_shared<prog::Program>(opts.name);
        for (const Inst &in : list)
            program->append(isa::encode(in));
        program->setEntry(rank.at(recs[0].pc));
        return program;
    };

    auto ext = ExternalTrace::make(buildProgram(insts), xrecs, "text",
                                   /*hintsValid=*/false);
    if (!opts.burnHints)
        return ext;

    // Burn the annotation verdicts into the localHint bits and
    // rebuild; the hints don't feed back into the annotation, so the
    // verdict table of the re-made trace is identical.
    std::vector<Inst> hinted = insts;
    for (std::uint32_t p = 0; p < numPcs; ++p) {
        if (isa::isMem(hinted[p].op))
            hinted[p].localHint =
                ext->verdicts()[p] == XVerdict::Local;
    }
    return ExternalTrace::make(buildProgram(hinted), xrecs, "text",
                               /*hintsValid=*/true);
}

} // namespace ddsim::vm
