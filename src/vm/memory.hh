/**
 * @file
 * Sparse paged memory for the functional machine. Pages are allocated
 * on first touch and zero-filled, so the 32-bit address space costs
 * only what a program actually uses.
 */

#ifndef DDSIM_VM_MEMORY_HH_
#define DDSIM_VM_MEMORY_HH_

#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "util/types.hh"

namespace ddsim::vm {

/** Byte-addressable sparse memory image. */
class SparseMemory
{
  public:
    static constexpr Addr PageBytes = 4096;

    SparseMemory() = default;
    // Copies must not inherit the page-cache pointer (it would point
    // into the source's pages).
    SparseMemory(const SparseMemory &o) : pages(o.pages) {}
    SparseMemory &
    operator=(const SparseMemory &o)
    {
        pages = o.pages;
        lastBase = 1;
        lastData = nullptr;
        return *this;
    }

    std::uint8_t readByte(Addr addr) const { return *data(addr); }
    void writeByte(Addr addr, std::uint8_t value) { *data(addr) = value; }

    /** Little-endian word access; requires 4-byte alignment. */
    Word
    readWord(Addr addr) const
    {
        checkAlign(addr, 4);
        Word v;
        std::memcpy(&v, data(addr), 4);
        return v;
    }
    void
    writeWord(Addr addr, Word value)
    {
        checkAlign(addr, 4);
        std::memcpy(data(addr), &value, 4);
    }

    /** 64-bit double access; requires 4-byte alignment. */
    double readDouble(Addr addr) const;
    void writeDouble(Addr addr, double value);

    /** Bulk initialization (program loading). */
    void writeBlock(Addr addr, const std::uint8_t *src, std::size_t len);

    /** Number of pages currently allocated (footprint metric). */
    std::size_t pagesAllocated() const { return pages.size(); }

  private:
    using Page = std::vector<std::uint8_t>;
    mutable std::unordered_map<Addr, Page> pages;

    /**
     * One-entry page cache: consecutive accesses overwhelmingly hit
     * the same page (the stack), so the map lookup is skipped for
     * them. Page buffers never move once allocated (the map may
     * rehash, but that moves the vector object, not its heap data),
     * so the cached pointer stays valid.
     */
    mutable Addr lastBase = 1; // Never page-aligned: always misses.
    mutable std::uint8_t *lastData = nullptr;

    /** Byte pointer into the page holding @p addr (allocates it). */
    std::uint8_t *
    data(Addr addr) const
    {
        Addr base = addr & ~(PageBytes - 1);
        if (base == lastBase) [[likely]]
            return lastData + (addr & (PageBytes - 1));
        return missData(addr);
    }
    std::uint8_t *missData(Addr addr) const;
    void checkAlign(Addr addr, Addr align) const;
};

} // namespace ddsim::vm

#endif // DDSIM_VM_MEMORY_HH_
