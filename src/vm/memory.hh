/**
 * @file
 * Sparse paged memory for the functional machine. Pages are allocated
 * on first touch and zero-filled, so the 32-bit address space costs
 * only what a program actually uses.
 */

#ifndef DDSIM_VM_MEMORY_HH_
#define DDSIM_VM_MEMORY_HH_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "util/types.hh"

namespace ddsim::vm {

/** Byte-addressable sparse memory image. */
class SparseMemory
{
  public:
    static constexpr Addr PageBytes = 4096;

    SparseMemory() = default;

    std::uint8_t readByte(Addr addr) const;
    void writeByte(Addr addr, std::uint8_t value);

    /** Little-endian word access; requires 4-byte alignment. */
    Word readWord(Addr addr) const;
    void writeWord(Addr addr, Word value);

    /** 64-bit double access; requires 4-byte alignment. */
    double readDouble(Addr addr) const;
    void writeDouble(Addr addr, double value);

    /** Bulk initialization (program loading). */
    void writeBlock(Addr addr, const std::uint8_t *src, std::size_t len);

    /** Number of pages currently allocated (footprint metric). */
    std::size_t pagesAllocated() const { return pages.size(); }

  private:
    using Page = std::vector<std::uint8_t>;
    mutable std::unordered_map<Addr, Page> pages;

    Page &page(Addr addr) const;
    void checkAlign(Addr addr, Addr align) const;
};

} // namespace ddsim::vm

#endif // DDSIM_VM_MEMORY_HH_
