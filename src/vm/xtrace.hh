/**
 * @file
 * The portable external trace frontend: "ddsim-xtrace-v1", a
 * versioned, self-contained on-disk form of a program plus its full
 * dynamic instruction stream, and ExternalTrace, the object that
 * ingests such files (or in-memory recordings) and makes them behave
 * exactly like a built-in workload — replayable by every engine, with
 * a local/non-local annotation pass so the static-hybrid classifier
 * and the oracle both work on streams ddsim never executed itself.
 *
 * Binary format "ddsim-xtrace-v1" (magic "ddxtrac1"; all varints are
 * LEB128, 7 bits per byte, high bit = continuation; fixed-width
 * integers little-endian):
 *
 *   magic      8 bytes  "ddxtrac1"
 *   version    varint   currently 1
 *   flags      varint   bit0 = localHint bits in the text are valid
 *                       (burned by the converter's annotation pass);
 *                       all other bits must be zero
 *   name       varint len + bytes   program name
 *   entry      varint   entry point (text word index)
 *   textCount  varint   instructions in the text segment (> 0)
 *   text       textCount x u32 LE   encoded MISA instructions
 *   instCount  varint   dynamic records that follow
 *   then per record:
 *     head     varint   (pcIdx << 3) | taken | mem << 1 | indirect << 2
 *     effAddr  varint   memory ops only
 *     baseVer  varint   memory ops only: base-register version
 *     nextPc   varint   register-indirect jumps (JR/JALR) only
 *
 * The record fields are exactly the payload RecordedTrace keeps
 * internally, so decoding is a straight repack and an
 * encode -> decode -> re-encode round trip is byte-identical.
 * Decoding validates everything: magic/version/flags, instruction
 * encodings, flag/opcode agreement, in-bounds pc indices, and
 * record-to-record control-flow chaining. Corrupt input of any kind
 * raises TraceCorruptError with the byte offset of the first
 * undecodable input — never a crash, never an out-of-bounds read.
 */

#ifndef DDSIM_VM_XTRACE_HH_
#define DDSIM_VM_XTRACE_HH_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/types.hh"
#include "vm/trace.hh"

namespace ddsim::prog {
class Program;
}

namespace ddsim::vm {

/** xtrace format version written by this build. */
inline constexpr std::uint32_t kXtraceVersion = 1;
/** xtrace file magic. */
inline constexpr char kXtraceMagic[8] = {'d', 'd', 'x', 't',
                                         'r', 'a', 'c', '1'};
/** Header flag: localHint bits in the text segment are trustworthy. */
inline constexpr std::uint64_t kXtraceFlagHintsValid = 1;

/**
 * Per-pc verdict of the ingest annotation pass. Mirrors
 * core::StaticVerdict value-for-value (vm cannot depend on core; the
 * runner translates by numeric value).
 */
enum class XVerdict : std::uint8_t
{
    Ambiguous,  ///< Conflicting or missing evidence.
    Local,      ///< Every access had a stack-derived base and a
                ///< stack-region address.
    NonLocal,   ///< Every access had a non-stack base and address.
};

/** Summary of the annotation pass over one external trace. */
struct XAnnotation
{
    std::uint64_t memPcs = 0;        ///< Static memory instructions.
    std::uint64_t localPcs = 0;      ///< Verdict Local.
    std::uint64_t nonLocalPcs = 0;   ///< Verdict NonLocal.
    std::uint64_t ambiguousPcs = 0;  ///< Verdict Ambiguous.
    std::uint64_t memOps = 0;        ///< Dynamic memory accesses.
    /** Dynamic accesses where the sp-tracking verdict (base register
     *  is stack-derived) agrees with the runtime oracle
     *  (layout::isStackAddr on the effective address). */
    std::uint64_t spAgree = 0;
    std::uint64_t spDisagree = 0;
};

/**
 * One dynamic record in converter-friendly form: exactly what the
 * xtrace format stores per instruction. Converters build a vector of
 * these; ExternalTrace::make packs them into the internal encoding.
 */
struct XRecord
{
    std::uint32_t pcIdx = 0;
    bool taken = false;
    bool mem = false;
    bool indirect = false;          ///< JR/JALR: nextPcIdx follows.
    Addr effAddr = 0;               ///< Memory ops only.
    std::uint32_t baseVersion = 0;  ///< Memory ops only.
    std::uint32_t nextPcIdx = 0;    ///< Indirect jumps only.
};

/**
 * A program and its dynamic stream ingested from outside the
 * simulator (an xtrace file, a converted public-format trace, or an
 * in-memory recording), plus the local/non-local annotation computed
 * at ingest. Owns the program; the replay trace aliases it, so the
 * "trace must be recorded from the same program object" invariant the
 * engines panic on holds by construction. Immutable after
 * construction and safe to share across threads.
 */
class ExternalTrace
{
  public:
    /**
     * Decode an xtrace file. Raises IoError if @p path cannot be
     * read and TraceCorruptError (with byte offset) on any malformed
     * content.
     */
    static std::shared_ptr<const ExternalTrace>
    load(const std::string &path);

    /**
     * load() through a process-global cache keyed by path, so a bench
     * grid or a farm worker claiming many jobs over the same trace
     * decodes it once. Thread-safe.
     */
    static std::shared_ptr<const ExternalTrace>
    loadCached(const std::string &path);

    /**
     * Build from a program by functionally executing it (@p maxInsts
     * 0 = to completion) — the synthetic/adversarial-workload path.
     * @p hintsValid marks the program's localHint bits as
     * compiler-provided.
     */
    static std::shared_ptr<const ExternalTrace>
    fromProgram(std::shared_ptr<const prog::Program> program,
                std::uint64_t maxInsts, std::string format,
                bool hintsValid);

    /**
     * Build from converter output: a program plus explicit dynamic
     * records. Validates the records against the program exactly like
     * the file decoder does; a converter handing over an impossible
     * stream raises ProgramError.
     */
    static std::shared_ptr<const ExternalTrace>
    make(std::shared_ptr<const prog::Program> program,
         const std::vector<XRecord> &records, std::string format,
         bool hintsValid);

    /** Encode as ddsim-xtrace-v1, atomically (write-temp-then-rename). */
    void save(const std::string &path) const;

    const prog::Program &program() const { return *prog_; }
    std::shared_ptr<const prog::Program> sharedProgram() const
    {
        return prog_;
    }

    /**
     * The replay trace, aliased to @p self so it keeps the whole
     * ExternalTrace (and the program the trace points into) alive.
     */
    static std::shared_ptr<const RecordedTrace>
    sharedTrace(const std::shared_ptr<const ExternalTrace> &self)
    {
        return {self, &self->trace_};
    }

    std::uint64_t instCount() const { return trace_.instCount(); }

    /** Per-pc annotation verdicts, indexed by text word index. */
    const std::vector<XVerdict> &verdicts() const { return verdicts_; }
    const XAnnotation &annotation() const { return annotation_; }

    /** File this trace came from ("" for in-memory builds). */
    const std::string &path() const { return path_; }
    /** Provenance tag: "xtrace", "text", "workload", ... */
    const std::string &format() const { return format_; }
    bool hintsValid() const { return hintsValid_; }

  private:
    ExternalTrace() = default;

    /** Run the sp-tracking annotation pass over the finished trace. */
    void annotate();

    std::shared_ptr<const prog::Program> prog_;
    RecordedTrace trace_;            ///< trace_.prog == prog_.get().
    std::vector<XVerdict> verdicts_;
    XAnnotation annotation_;
    std::string path_;
    std::string format_;
    bool hintsValid_ = false;
};

} // namespace ddsim::vm

#endif // DDSIM_VM_XTRACE_HH_
