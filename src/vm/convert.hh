/**
 * @file
 * Converter from the common public text trace format to an
 * ExternalTrace (and from there to ddsim-xtrace-v1 via save()).
 *
 * The input format is the whitespace-separated per-line form used by
 * the trace-driven simulators this project draws on (one dynamic
 * instruction per line, '#' comments and blank lines ignored):
 *
 *   <PC hex> <op_type> <dest> <src1> <src2> [<mem_addr hex>]
 *
 * op_type 0 = single-cycle ALU, 1 = long-latency ALU, 2 = memory
 * (mem_addr required, forbidden otherwise); dest/src are register
 * numbers, -1 = none; a memory record with dest >= 0 is a load, with
 * dest == -1 a store.
 *
 * Reconstruction: the distinct PCs become a MISA text segment in
 * ascending PC order. Per static PC the converter classifies control
 * flow from the observed successor set — always-sequential records
 * become ADD/MUL/LW/SW, a single constant non-sequential target a J,
 * a {fall-through, target} pair a BNE, anything richer a JR whose
 * per-record dynamic target rides the trace. Source registers are
 * remapped into the MISA temporary range (never sp/fp/ra); memory
 * addresses map into the simulated heap window, or into the stack
 * window for addresses inside ConvertOptions::stack range, in which
 * case the access's base register becomes fp so the sp-tracking
 * annotation sees them as frame references. Base-register versions
 * are re-synthesised from the reconstructed program's own writes.
 *
 * Malformed input of any kind (bad tokens, inconsistent re-use of a
 * PC, a memory instruction that branches, truncated lines) raises
 * TraceCorruptError carrying the byte offset of the offending input.
 */

#ifndef DDSIM_VM_CONVERT_HH_
#define DDSIM_VM_CONVERT_HH_

#include <memory>
#include <string>

#include "util/types.hh"
#include "vm/xtrace.hh"

namespace ddsim::vm {

/** Knobs for the text-format converter. */
struct ConvertOptions
{
    /** Program name recorded in the trace header. */
    std::string name = "converted";
    /**
     * Burn the annotation pass's Local verdicts into the text's
     * localHint bits (and mark the trace hintsValid), so the
     * Annotation/Predictor classifiers work on the converted stream.
     */
    bool burnHints = true;
    /**
     * Source-address window to treat as the run-time stack: addresses
     * in [stackLo, stackHi] land in ddsim's stack region (top-aligned
     * at layout::StackBase), everything else in the heap window.
     * stackHi == 0 disables the mapping (nothing is local).
     */
    Addr stackLo = 0;
    Addr stackHi = 0;
};

/**
 * Convert the text trace file at @p path. Raises IoError if the file
 * cannot be read and TraceCorruptError (byte offset) on malformed
 * content.
 */
std::shared_ptr<const ExternalTrace>
convertTextTrace(const std::string &path,
                 const ConvertOptions &opts = {});

/**
 * Convert an in-memory text trace image; @p path is used only for
 * error reporting.
 */
std::shared_ptr<const ExternalTrace>
convertTextTraceBuffer(const std::string &buf, const std::string &path,
                       const ConvertOptions &opts = {});

} // namespace ddsim::vm

#endif // DDSIM_VM_CONVERT_HH_
