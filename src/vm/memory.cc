#include "vm/memory.hh"

#include <cstring>

#include "util/log.hh"

namespace ddsim::vm {

std::uint8_t *
SparseMemory::missData(Addr addr) const
{
    Addr base = addr & ~(PageBytes - 1);
    auto it = pages.find(base);
    if (it == pages.end())
        it = pages.emplace(base, Page(PageBytes, 0)).first;
    lastBase = base;
    lastData = it->second.data();
    return lastData + (addr & (PageBytes - 1));
}

void
SparseMemory::checkAlign(Addr addr, Addr align) const
{
    if (addr % align != 0)
        fatal("unaligned %u-byte access at 0x%08x", align, addr);
}

double
SparseMemory::readDouble(Addr addr) const
{
    checkAlign(addr, 4);
    // An 8-byte access may straddle a page boundary.
    std::uint8_t buf[8];
    for (int i = 0; i < 8; ++i)
        buf[i] = readByte(addr + static_cast<Addr>(i));
    double v;
    std::memcpy(&v, buf, 8);
    return v;
}

void
SparseMemory::writeDouble(Addr addr, double value)
{
    checkAlign(addr, 4);
    std::uint8_t buf[8];
    std::memcpy(buf, &value, 8);
    for (int i = 0; i < 8; ++i)
        writeByte(addr + static_cast<Addr>(i), buf[i]);
}

void
SparseMemory::writeBlock(Addr addr, const std::uint8_t *src,
                         std::size_t len)
{
    for (std::size_t i = 0; i < len; ++i)
        writeByte(addr + static_cast<Addr>(i), src[i]);
}

} // namespace ddsim::vm
