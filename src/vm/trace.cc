#include "vm/trace.hh"

#include <algorithm>

namespace ddsim::vm {

StreamStats::StreamStats(stats::Group *parent)
    : stats::Group(parent, "stream"),
      instructions(this, "instructions", "dynamic instructions executed"),
      loads(this, "loads", "dynamic loads"),
      stores(this, "stores", "dynamic stores"),
      localLoads(this, "local_loads", "loads marked local (annotation)"),
      localStores(this, "local_stores", "stores marked local (annotation)"),
      stackLoads(this, "stack_loads", "loads to the stack region (oracle)"),
      stackStores(this, "stack_stores",
                  "stores to the stack region (oracle)"),
      calls(this, "calls", "function calls"),
      returns(this, "returns", "function returns"),
      frameWords(this, "frame_words",
                 "dynamic frame size distribution (words)", 64, 1),
      callDepth(this, "call_depth", "call depth at each call", 64, 1)
{
}

void
StreamStats::record(const DynInst &di)
{
    ++instructions;
    const isa::OpInfo &info = isa::opInfo(di.inst.op);
    if (info.load) {
        ++loads;
        if (di.inst.localHint)
            ++localLoads;
        if (di.stackAccess)
            ++stackLoads;
    } else if (info.store) {
        ++stores;
        if (di.inst.localHint)
            ++localStores;
        if (di.stackAccess)
            ++stackStores;
    } else if (info.call) {
        ++calls;
        callDepth.sample(static_cast<std::uint64_t>(depth));
        ++depth;
        functionStack.push_back(curFunction);
        curFunction = di.nextPcIdx;
    } else if (isa::isReturn(di.inst)) {
        ++returns;
        if (depth > 0)
            --depth;
        if (!functionStack.empty()) {
            curFunction = functionStack.back();
            functionStack.pop_back();
        }
    }

    if (std::uint32_t bytes = di.frameAllocBytes()) {
        std::uint32_t words = bytes / 4;
        frameWords.sample(words);
        auto &maxWords = staticFrameWords[curFunction];
        maxWords = std::max(maxWords, words);
    }
}

double
StreamStats::loadFrac() const
{
    return stats::safeRatio(loads.report(), instructions.report());
}

double
StreamStats::storeFrac() const
{
    return stats::safeRatio(stores.report(), instructions.report());
}

double
StreamStats::localLoadFrac() const
{
    return stats::safeRatio(localLoads.report(), loads.report());
}

double
StreamStats::localStoreFrac() const
{
    return stats::safeRatio(localStores.report(), stores.report());
}

double
StreamStats::localRefFrac() const
{
    return stats::safeRatio(
        localLoads.report() + localStores.report(),
        loads.report() + stores.report());
}

double
StreamStats::meanStaticFrameWords() const
{
    if (staticFrameWords.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &[pc, words] : staticFrameWords)
        sum += static_cast<double>(words);
    return sum / static_cast<double>(staticFrameWords.size());
}

} // namespace ddsim::vm
