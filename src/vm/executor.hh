/**
 * @file
 * Functional executor for MISA programs.
 *
 * The executor is the in-order "oracle" front end of the simulator: it
 * executes instructions architecturally and hands the timing model a
 * stream of DynInst records carrying effective addresses and resolved
 * control flow — the paper's perfect I-cache + perfect branch
 * predictor configuration (Section 3.1).
 */

#ifndef DDSIM_VM_EXECUTOR_HH_
#define DDSIM_VM_EXECUTOR_HH_

#include <array>
#include <vector>

#include "prog/program.hh"
#include "vm/memory.hh"
#include "vm/trace.hh"

namespace ddsim::vm {

/** Functional machine state + stepper. */
class Executor : public InstSource
{
  public:
    /** Return-address sentinel: "jr" to this halts the machine. */
    static constexpr Addr ExitRa = 0xffff'fffc;

    explicit Executor(const prog::Program &program);

    /** True once HALT executed or main returned to the exit sentinel. */
    bool halted() const override { return haltFlag; }

    /**
     * Execute the next instruction and return its dynamic record.
     * Calling step() on a halted machine is a panic.
     */
    DynInst step() override;

    /** Run at most @p maxInsts instructions; returns number executed. */
    std::uint64_t run(std::uint64_t maxInsts);

    // State access (tests, examples, debuggers).
    Word gpr(RegId r) const { return gprs[r]; }
    void setGpr(RegId r, Word v);
    double fpr(RegId r) const { return fprs[r]; }
    void setFpr(RegId r, double v) { fprs[r] = v; }
    std::uint32_t pcIndex() const { return pc; }
    InstSeq instsExecuted() const { return seq; }

    SparseMemory &memory() { return mem; }
    const SparseMemory &memory() const { return mem; }

    /** Values emitted by PRINT instructions, in program order. */
    const std::vector<Word> &printed() const { return output; }

    /** Lowest sp value observed (stack high-water mark). */
    Addr stackLowWater() const { return minSp; }

  private:
    const prog::Program &program;
    SparseMemory mem;
    std::array<Word, NumGprs> gprs{};
    std::array<double, NumFprs> fprs{};
    std::array<std::uint32_t, NumGprs> gprVersions{};
    std::uint32_t pc = 0;
    bool haltFlag = false;
    InstSeq seq = 0;
    std::vector<Word> output;
    Addr minSp = layout::StackBase;

    void writeGpr(RegId r, Word v);
    Addr toTextIdx(Addr byteAddr) const;
};

} // namespace ddsim::vm

#endif // DDSIM_VM_EXECUTOR_HH_
