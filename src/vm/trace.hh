/**
 * @file
 * The dynamic instruction record handed from the functional front end
 * to the timing model, plus a stream-statistics accumulator used for
 * the paper's workload-characterization figures (Fig. 2 and Fig. 3).
 */

#ifndef DDSIM_VM_TRACE_HH_
#define DDSIM_VM_TRACE_HH_

#include <cstdint>
#include <map>

#include "isa/inst.hh"
#include "stats/histogram.hh"
#include "stats/group.hh"
#include "util/types.hh"

namespace ddsim::vm {

/**
 * One executed instruction. The functional executor fills in
 * everything the out-of-order timing model cannot know on its own:
 * effective address, control-flow outcome (the paper's perfect branch
 * predictor), the oracle stack classification and the base-register
 * version used by fast data forwarding.
 */
struct DynInst
{
    InstSeq seq = 0;            ///< Dynamic sequence number.
    std::uint32_t pcIdx = 0;    ///< Text word index.
    isa::Inst inst;             ///< Decoded static instruction.

    // Memory operations only.
    Addr effAddr = 0;
    std::uint8_t accessSize = 0;
    bool stackAccess = false;   ///< Oracle: address in stack region.
    std::uint32_t baseVersion = 0; ///< Version of the base register
                                   ///< value (see fast forwarding).

    // Control flow.
    bool taken = false;
    std::uint32_t nextPcIdx = 0;

    bool isLoad() const { return isa::isLoad(inst.op); }
    bool isStore() const { return isa::isStore(inst.op); }
    bool isMem() const { return isLoad() || isStore(); }

    /** Frame allocation (prologue "addi sp, sp, -N"): bytes, else 0. */
    std::uint32_t
    frameAllocBytes() const
    {
        using isa::OpCode;
        using isa::reg::sp;
        if (inst.op == OpCode::ADDI && inst.rt == sp && inst.rs == sp &&
            inst.imm < 0)
            return static_cast<std::uint32_t>(-inst.imm);
        return 0;
    }
};

/**
 * Accumulates the workload-characterization statistics of Section 2.2:
 * instruction mix, fraction of local loads/stores, dynamic frame-size
 * distribution and per-static-function frame sizes, call depth.
 */
class StreamStats : public stats::Group
{
  public:
    explicit StreamStats(stats::Group *parent);

    /** Feed one executed instruction. */
    void record(const DynInst &di);

    stats::Scalar instructions;
    stats::Scalar loads;
    stats::Scalar stores;
    stats::Scalar localLoads;       ///< Annotation-marked local loads.
    stats::Scalar localStores;
    stats::Scalar stackLoads;       ///< Oracle stack-region loads.
    stats::Scalar stackStores;
    stats::Scalar calls;
    stats::Scalar returns;

    /** Dynamic frame sizes in words, one sample per allocation. */
    stats::Histogram frameWords;
    /** Call-depth at each call, one sample per call. */
    stats::Histogram callDepth;

    /** Fraction helpers for Fig. 2. */
    double loadFrac() const;        ///< loads / instructions
    double storeFrac() const;
    double localLoadFrac() const;   ///< local loads / loads
    double localStoreFrac() const;
    double localRefFrac() const;    ///< local refs / all refs

    /** Static frame sizes: function entry pc -> max frame words. */
    const std::map<std::uint32_t, std::uint32_t> &
    staticFrames() const
    {
        return staticFrameWords;
    }

    /** Mean static frame size in words (paper: ~7 words). */
    double meanStaticFrameWords() const;

  private:
    std::map<std::uint32_t, std::uint32_t> staticFrameWords;
    std::uint32_t curFunction = 0;  ///< Entry pc of innermost function.
    std::vector<std::uint32_t> functionStack;
    int depth = 0;
};

} // namespace ddsim::vm

#endif // DDSIM_VM_TRACE_HH_
