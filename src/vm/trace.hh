/**
 * @file
 * The dynamic instruction record handed from the functional front end
 * to the timing model, plus a stream-statistics accumulator used for
 * the paper's workload-characterization figures (Fig. 2 and Fig. 3).
 */

#ifndef DDSIM_VM_TRACE_HH_
#define DDSIM_VM_TRACE_HH_

#include <cstdint>
#include <map>
#include <vector>

#include "isa/inst.hh"
#include "stats/histogram.hh"
#include "stats/group.hh"
#include "util/types.hh"

namespace ddsim::prog {
class Program;
}

namespace ddsim::vm {

/**
 * One executed instruction. The functional executor fills in
 * everything the out-of-order timing model cannot know on its own:
 * effective address, control-flow outcome (the paper's perfect branch
 * predictor), the oracle stack classification and the base-register
 * version used by fast data forwarding.
 */
struct DynInst
{
    InstSeq seq = 0;            ///< Dynamic sequence number.
    std::uint32_t pcIdx = 0;    ///< Text word index.
    isa::Inst inst;             ///< Decoded static instruction.

    // Memory operations only.
    Addr effAddr = 0;
    std::uint8_t accessSize = 0;
    bool stackAccess = false;   ///< Oracle: address in stack region.
    std::uint32_t baseVersion = 0; ///< Version of the base register
                                   ///< value (see fast forwarding).

    // Control flow.
    bool taken = false;
    std::uint32_t nextPcIdx = 0;

    bool isLoad() const { return isa::isLoad(inst.op); }
    bool isStore() const { return isa::isStore(inst.op); }
    bool isMem() const { return isLoad() || isStore(); }

    /** Frame allocation (prologue "addi sp, sp, -N"): bytes, else 0. */
    std::uint32_t
    frameAllocBytes() const
    {
        using isa::OpCode;
        using isa::reg::sp;
        if (inst.op == OpCode::ADDI && inst.rt == sp && inst.rs == sp &&
            inst.imm < 0)
            return static_cast<std::uint32_t>(-inst.imm);
        return 0;
    }
};

/**
 * The timing model's view of the functional front end: a stream of
 * DynInst records. Implemented by the live Executor and by
 * TraceReplay, which re-emits a previously recorded stream — the
 * pipeline cannot tell them apart.
 */
class InstSource
{
  public:
    virtual ~InstSource() = default;

    /** True once the stream is exhausted. */
    virtual bool halted() const = 0;

    /** Produce the next instruction; panics when halted. */
    virtual DynInst step() = 0;
};

/**
 * A program's full dynamic instruction stream, recorded once and
 * replayed any number of times (concurrently, if desired: replay is
 * read-only). Simulation is deterministic and the front end is
 * oblivious to the machine configuration, so one recording serves
 * every configuration point of a sweep — the functional execution
 * (sparse-memory traffic, register file, version tracking) is paid
 * once per program instead of once per grid point.
 *
 * The encoding is compact: one u32 per instruction holding the text
 * index plus taken/memory/indirect flags, followed by payload words
 * only where the static instruction cannot supply the field (effective
 * address and base version for memory ops, the dynamic target for
 * register-indirect jumps). Everything else — opcode, access size,
 * stack classification, branch targets — is re-derived from the
 * program text at replay time.
 */
class RecordedTrace
{
  public:
    /**
     * Functionally execute @p program to completion (or @p maxInsts
     * instructions) and record the stream. The program must outlive
     * the trace and every replay of it.
     */
    static RecordedTrace record(const prog::Program &program,
                                std::uint64_t maxInsts = 0);

    const prog::Program &program() const { return *prog; }
    std::uint64_t instCount() const { return numInsts; }
    /** Encoded size: words per instruction averages well under 2. */
    std::size_t wordCount() const { return words.size(); }

  private:
    friend class TraceReplay;
    friend class ExternalTrace; ///< xtrace codec packs/unpacks words.

    static constexpr std::uint32_t TakenBit = 1u << 31;
    static constexpr std::uint32_t MemBit = 1u << 30;
    static constexpr std::uint32_t IndirectBit = 1u << 29;
    static constexpr std::uint32_t PcMask = IndirectBit - 1;

    RecordedTrace() = default;

    const prog::Program *prog = nullptr;
    std::vector<std::uint32_t> words;
    std::uint64_t numInsts = 0;
};

/**
 * Replays a RecordedTrace as an InstSource. Holds only a cursor:
 * cheap to construct, and many replays can share one trace across
 * threads.
 */
class TraceReplay : public InstSource
{
  public:
    explicit TraceReplay(const RecordedTrace &trace) : trace(trace) {}

    bool halted() const override { return emitted == trace.numInsts; }
    DynInst step() override;

  private:
    const RecordedTrace &trace;
    std::size_t pos = 0;        ///< Word cursor.
    std::uint64_t emitted = 0;  ///< Doubles as the next seq number.
};

/**
 * Decodes a RecordedTrace once into a bounded ring of DynInst records
 * shared by any number of lane cursors, so a whole sweep column pays
 * trace decoding a single time instead of once per configuration
 * point. The driver alternates decodeTo() with advancing every lane's
 * pipeline; it must never let a cursor fall further behind the decode
 * frontier than the ring capacity (sim::runBatch chunks targets to
 * guarantee this). Single-threaded by design: the batched driver runs
 * all lanes on one thread, interleaving their cycles.
 */
class BatchedReplay
{
  public:
    /** @param ringCap Ring capacity in instructions; rounded up to a
     *  power of two. Must exceed one driver chunk plus the maximum
     *  per-lane fetch overshoot (fetchWidth - 1). */
    explicit BatchedReplay(const RecordedTrace &trace,
                           std::size_t ringCap = 4096);

    /** Instructions in the underlying trace. */
    std::uint64_t instCount() const { return total; }
    /** Ring capacity after power-of-two rounding. */
    std::size_t capacity() const { return ring.size(); }

    /**
     * Decode forward until @p upTo instructions (clamped to the trace
     * length) are resident in the ring, overwriting the oldest
     * records. Panics if that would evict records a chunk-synchronised
     * cursor could still need.
     */
    void decodeTo(std::uint64_t upTo);

    /**
     * One lane's read cursor over the shared ring. Field-for-field
     * identical to a private TraceReplay over the same trace — the
     * pipeline cannot tell them apart — but N cursors share one
     * decode pass.
     */
    class Cursor : public InstSource
    {
      public:
        explicit Cursor(const BatchedReplay &batch) : batch(&batch) {}

        bool halted() const override { return next == batch->total; }
        DynInst step() override;

        /** Instructions consumed so far. */
        std::uint64_t position() const { return next; }

      private:
        const BatchedReplay *batch;
        std::uint64_t next = 0;
    };

  private:
    TraceReplay decoder;
    std::uint64_t total = 0;
    std::uint64_t decodedEnd = 0; ///< Absolute decode frontier.
    std::size_t mask = 0;
    std::vector<DynInst> ring;    ///< ring[i & mask] holds record i.
};

/**
 * Accumulates the workload-characterization statistics of Section 2.2:
 * instruction mix, fraction of local loads/stores, dynamic frame-size
 * distribution and per-static-function frame sizes, call depth.
 */
class StreamStats : public stats::Group
{
  public:
    explicit StreamStats(stats::Group *parent);

    /** Feed one executed instruction. */
    void record(const DynInst &di);

    stats::Scalar instructions;
    stats::Scalar loads;
    stats::Scalar stores;
    stats::Scalar localLoads;       ///< Annotation-marked local loads.
    stats::Scalar localStores;
    stats::Scalar stackLoads;       ///< Oracle stack-region loads.
    stats::Scalar stackStores;
    stats::Scalar calls;
    stats::Scalar returns;

    /** Dynamic frame sizes in words, one sample per allocation. */
    stats::Histogram frameWords;
    /** Call-depth at each call, one sample per call. */
    stats::Histogram callDepth;

    /** Fraction helpers for Fig. 2. */
    double loadFrac() const;        ///< loads / instructions
    double storeFrac() const;
    double localLoadFrac() const;   ///< local loads / loads
    double localStoreFrac() const;
    double localRefFrac() const;    ///< local refs / all refs

    /** Static frame sizes: function entry pc -> max frame words. */
    const std::map<std::uint32_t, std::uint32_t> &
    staticFrames() const
    {
        return staticFrameWords;
    }

    /** Mean static frame size in words (paper: ~7 words). */
    double meanStaticFrameWords() const;

  private:
    std::map<std::uint32_t, std::uint32_t> staticFrameWords;
    std::uint32_t curFunction = 0;  ///< Entry pc of innermost function.
    std::vector<std::uint32_t> functionStack;
    int depth = 0;
};

} // namespace ddsim::vm

#endif // DDSIM_VM_TRACE_HH_
