#include "workloads/common.hh"

#include "util/log.hh"

namespace ddsim::workloads {

namespace reg = isa::reg;

void
GenCtx::lcgStep(RegId r, RegId scratch)
{
    b.li(scratch, 1664525);
    b.mul(r, r, scratch);
    b.li(scratch, 1013904223);
    b.add(r, r, scratch);
}

void
GenCtx::bumpAlloc(RegId dst, Addr offAddr, Addr heapBase,
                  std::uint32_t cellBytes, std::uint32_t mask,
                  RegId s1, RegId s2)
{
    // The mask must clear the low address bits so every allocation
    // stays word-aligned.
    if ((mask & 3) != 0)
        fatal("bumpAlloc: mask must keep word alignment");
    b.la(s1, offAddr);
    b.lw(s2, 0, s1);                 // s2 = off
    if (mask <= 0xffff) {
        b.andi(dst, s2, static_cast<std::int32_t>(mask));
    } else {
        b.li(dst, static_cast<std::int32_t>(mask));
        b.and_(dst, s2, dst);
    }
    b.addi(s2, s2, static_cast<std::int32_t>(cellBytes));
    b.sw(s2, 0, s1);                 // store bumped offset
    b.li(s2, static_cast<std::int32_t>(heapBase));
    b.add(dst, dst, s2);             // dst = heapBase + (off & mask)
}

void
GenCtx::computeOps(int n)
{
    static constexpr RegId temps[4] = {reg::t0, reg::t1, reg::t2,
                                       reg::t3};
    for (int i = 0; i < n; ++i) {
        RegId d = temps[rng.below(4)];
        RegId s = temps[rng.below(4)];
        RegId t = temps[rng.below(4)];
        switch (rng.below(5)) {
          case 0: b.add(d, s, t); break;
          case 1: b.sub(d, s, t); break;
          case 2: b.xor_(d, s, t); break;
          case 3:
            b.sll(d, s, static_cast<int>(rng.below(5)) + 1);
            break;
          case 4:
            b.addi(d, s, static_cast<std::int32_t>(rng.below(64)));
            break;
        }
    }
}

void
GenCtx::fpComputeOps(int n)
{
    static constexpr RegId fregs[4] = {4, 5, 6, 7};
    for (int i = 0; i < n; ++i) {
        RegId d = fregs[rng.below(4)];
        RegId s = fregs[rng.below(4)];
        RegId t = fregs[rng.below(4)];
        if (rng.chance(0.55))
            b.addD(d, s, t);
        else
            b.mulD(d, s, t);
    }
}

void
GenCtx::arrayLoad(RegId dst, RegId indexReg, Addr baseAddr,
                  std::uint32_t elemMask, RegId addrScratch)
{
    // The index register is preserved; at (r1) is used as a second
    // scratch, as a real assembler would.
    if (elemMask <= 0xffff) {
        b.andi(addrScratch, indexReg,
               static_cast<std::int32_t>(elemMask));
    } else {
        b.li(addrScratch, static_cast<std::int32_t>(elemMask));
        b.and_(addrScratch, indexReg, addrScratch);
    }
    b.sll(addrScratch, addrScratch, 2);
    b.la(reg::at, baseAddr);
    b.add(addrScratch, addrScratch, reg::at);
    b.lw(dst, 0, addrScratch);
}

void
GenCtx::arrayStore(RegId src, RegId indexReg, Addr baseAddr,
                   std::uint32_t elemMask, RegId addrScratch)
{
    if (elemMask <= 0xffff) {
        b.andi(addrScratch, indexReg,
               static_cast<std::int32_t>(elemMask));
    } else {
        b.li(addrScratch, static_cast<std::int32_t>(elemMask));
        b.and_(addrScratch, indexReg, addrScratch);
    }
    b.sll(addrScratch, addrScratch, 2);
    b.la(reg::at, baseAddr);
    b.add(addrScratch, addrScratch, reg::at);
    b.sw(src, 0, addrScratch);
}

void
finishMain(prog::ProgramBuilder &b, RegId checksumReg)
{
    b.print(checksumReg);
    b.halt();
}

} // namespace ddsim::workloads
