/**
 * @file
 * Forward declarations of the twelve workload factories.
 */

#ifndef DDSIM_WORKLOADS_WORKLOADS_HH_
#define DDSIM_WORKLOADS_WORKLOADS_HH_

#include "workloads/common.hh"

namespace ddsim::workloads {

prog::Program buildGoLike(const WorkloadParams &p);
prog::Program buildM88ksimLike(const WorkloadParams &p);
prog::Program buildGccLike(const WorkloadParams &p);
prog::Program buildCompressLike(const WorkloadParams &p);
prog::Program buildLiLike(const WorkloadParams &p);
prog::Program buildIjpegLike(const WorkloadParams &p);
prog::Program buildPerlLike(const WorkloadParams &p);
prog::Program buildVortexLike(const WorkloadParams &p);
prog::Program buildTomcatvLike(const WorkloadParams &p);
prog::Program buildSwimLike(const WorkloadParams &p);
prog::Program buildSu2corLike(const WorkloadParams &p);
prog::Program buildMgridLike(const WorkloadParams &p);

// Adversarial generators (workloads/adversarial.cc); registered via
// workloads::adversarial(), not all().
prog::Program buildPtrChase(const WorkloadParams &p);
prog::Program buildDeepRec(const WorkloadParams &p);
prog::Program buildHugeFrame(const WorkloadParams &p);
prog::Program buildAllocaFrame(const WorkloadParams &p);

} // namespace ddsim::workloads

#endif // DDSIM_WORKLOADS_WORKLOADS_HH_
