#include "workloads/workloads.hh"

#include "util/log.hh"

namespace ddsim::workloads {

const std::vector<WorkloadInfo> &
all()
{
    static const std::vector<WorkloadInfo> registry = {
        {"go", "099.go", "game-tree search over a global board",
         false, &buildGoLike, 24},
        {"m88ksim", "124.m88ksim",
         "instruction-set simulator dispatch loop", false,
         &buildM88ksimLike, 40},
        {"gcc", "126.gcc",
         "compiler passes with varied frames and a recursive IR walk",
         false, &buildGccLike, 6},
        {"compress", "129.compress", "LZW-style hash loop", false,
         &buildCompressLike, 9},
        {"li", "130.li", "lisp interpreter running ctak recursion",
         false, &buildLiLike, 50},
        {"ijpeg", "132.ijpeg", "block transform image compression",
         false, &buildIjpegLike, 21},
        {"perl", "134.perl", "bytecode interpreter with value stack",
         false, &buildPerlLike, 71},
        {"vortex", "147.vortex",
         "object-oriented database transactions", false,
         &buildVortexLike, 268},
        {"tomcatv", "101.tomcatv", "vectorized mesh generation",
         true, &buildTomcatvLike, 37},
        {"swim", "102.swim", "shallow water stencil sweeps", true,
         &buildSwimLike, 25},
        {"su2cor", "103.su2cor",
         "lattice physics with per-site matrix calls", true,
         &buildSu2corLike, 38},
        {"mgrid", "107.mgrid", "3D multigrid relaxation", true,
         &buildMgridLike, 16},
    };
    return registry;
}

const WorkloadInfo *
find(const std::string &name)
{
    for (const WorkloadInfo &w : all()) {
        if (name == w.name || name == w.paperName)
            return &w;
    }
    for (const WorkloadInfo &w : adversarial()) {
        if (name == w.name || name == w.paperName)
            return &w;
    }
    return nullptr;
}

prog::Program
build(const std::string &name, const WorkloadParams &params)
{
    const WorkloadInfo *w = find(name);
    if (!w)
        fatal("unknown workload '%s'", name.c_str());
    return w->factory(params);
}

std::vector<std::string>
integerNames()
{
    std::vector<std::string> out;
    for (const WorkloadInfo &w : all()) {
        if (!w.isFp)
            out.push_back(w.name);
    }
    return out;
}

std::vector<std::string>
fpNames()
{
    std::vector<std::string> out;
    for (const WorkloadInfo &w : all()) {
        if (w.isFp)
            out.push_back(w.name);
    }
    return out;
}

} // namespace ddsim::workloads
