/**
 * @file
 * 102.swim stand-in: shallow-water finite differences — three N x N
 * double grids updated by stencil sweeps, one function call per field
 * update pass.
 *
 * Characteristics targeted: FP streaming loads/stores over heap grids
 * larger than the L1, very few calls, and local accesses *clustered*
 * at row boundaries (register spills in the outer loop) — the poor
 * local/non-local interleaving that makes (2+2) perform like (2+0)
 * for FP codes in Section 4.3.
 */

#include "workloads/workloads.hh"

namespace ddsim::workloads {

namespace reg = isa::reg;
using prog::FrameSpec;
using prog::Label;

prog::Program
buildSwimLike(const WorkloadParams &p)
{
    prog::ProgramBuilder b("swim");
    GenCtx ctx(b, p.seed);

    constexpr int N = 50;               // grid edge (interior % 4 == 0)
    constexpr Addr GridBytes = N * N * 8;
    const Addr gridU = layout::HeapBase;
    const Addr gridV = gridU + GridBytes;
    const Addr gridP = gridV + GridBytes;

    Addr c1 = b.dataDouble(0.25);
    Addr c2 = b.dataDouble(0.125);

    Label main = b.newLabel("main");
    Label calc = b.newLabel("calc_pass");

    // ---- main ----
    b.bind(main);
    b.li(reg::s0,
         static_cast<std::int32_t>(1 + p.scale / 16)); // timesteps
    b.li(reg::s7, 0);                                  // checksum

    // Initialize the three grids: grid[i] = (double)i * k.
    b.li(reg::t0, 0);
    b.la(reg::t1, gridU);
    b.li(reg::t2, 3 * N * N);
    b.li(reg::t3, 1);
    b.cvtDW(2, reg::t3);                // f2 = 1.0 (increment)
    b.cvtDW(1, reg::zero);              // f1 = running value
    Label init = b.here();
    b.addD(1, 1, 2);
    b.sd(1, 0, reg::t1);
    b.addi(reg::t1, reg::t1, 8);
    b.addi(reg::t0, reg::t0, 1);
    b.slt(reg::t4, reg::t0, reg::t2);
    b.bne(reg::t4, reg::zero, init);

    // Load the stencil constants once.
    b.ld(10, static_cast<std::int32_t>(c1 - layout::DataBase), reg::gp);
    b.ld(11, static_cast<std::int32_t>(c2 - layout::DataBase), reg::gp);

    Label tsLoop = b.here();
    // Three passes per timestep, rotating which grid is updated.
    b.li(reg::a0, 0);
    b.jal(calc);
    b.add(reg::s7, reg::s7, reg::v0);
    b.li(reg::a0, 1);
    b.jal(calc);
    b.add(reg::s7, reg::s7, reg::v0);
    b.li(reg::a0, 2);
    b.jal(calc);
    b.add(reg::s7, reg::s7, reg::v0);
    b.addi(reg::s0, reg::s0, -1);
    b.bgtz(reg::s0, tsLoop);
    finishMain(b, reg::s7);

    // ---- calc_pass(which): one stencil sweep ----
    b.bind(calc);
    FrameSpec f;
    f.localWords = 8;
    f.savedRegs = {reg::s1, reg::s2, reg::s3};
    b.prologue(f);

    // Select base pointers by `which` (0,1,2): dst = grids[which],
    // srcA = grids[(which+1)%3], srcB = grids[(which+2)%3].
    Label sel1 = b.newLabel(), sel2 = b.newLabel(), selDone =
        b.newLabel();
    b.li(reg::t0, 1);
    b.beq(reg::a0, reg::t0, sel1);
    b.li(reg::t0, 2);
    b.beq(reg::a0, reg::t0, sel2);
    b.la(reg::s1, gridU);
    b.la(reg::s2, gridV);
    b.la(reg::s3, gridP);
    b.j(selDone);
    b.bind(sel1);
    b.la(reg::s1, gridV);
    b.la(reg::s2, gridP);
    b.la(reg::s3, gridU);
    b.j(selDone);
    b.bind(sel2);
    b.la(reg::s1, gridP);
    b.la(reg::s2, gridU);
    b.la(reg::s3, gridV);
    b.bind(selDone);

    b.li(reg::t8, 1);                   // row i = 1 .. N-2
    Label rowLoop = b.here();

    // Row prologue: spill the row-local state (the clustered local
    // accesses of an FP outer loop).
    b.storeLocal(reg::t8, 0);
    b.storeLocal(reg::s1, 1);
    b.storeLocal(reg::s2, 2);
    // Row base pointers: base + (i*N + 1) * 8.
    b.li(reg::t0, N * 8);
    b.mul(reg::t1, reg::t8, reg::t0);
    b.addi(reg::t1, reg::t1, 8);
    b.add(reg::t2, reg::s1, reg::t1);   // dst cursor
    b.add(reg::t3, reg::s2, reg::t1);   // srcA cursor
    b.add(reg::t4, reg::s3, reg::t1);   // srcB cursor
    b.loadLocal(reg::t5, 0);            // quick reload of i
    b.li(reg::t6, N - 2);               // inner count

    // Four-cell unrolled stencil body. The inner counter and one
    // cursor spill across the body (register pressure inside the
    // unrolled loop) -- two local accesses per ~26 grid references,
    // clustered rather than interleaved.
    Label cellLoop = b.here();
    b.storeLocal(reg::t6, 3);           // spill the counter
    for (int u = 0; u < 4; ++u) {
        int o = u * 8;
        b.ld(3, o, reg::t3);            // a[i][j]
        b.ld(4, o + 8, reg::t3);        // a[i][j+1]
        b.ld(5, o - 8, reg::t3);        // a[i][j-1]
        b.ld(6, N * 8 + o, reg::t4);    // b[i+1][j]
        b.ld(7, -(N * 8) + o, reg::t4); // b[i-1][j]
        b.subD(4, 4, 5);
        b.subD(6, 6, 7);
        b.mulD(4, 4, 10);
        b.mulD(6, 6, 11);
        b.addD(3, 3, 4);
        b.addD(3, 3, 6);
        b.sd(3, o, reg::t2);            // dst[i][j]
    }
    b.addi(reg::t2, reg::t2, 32);
    b.addi(reg::t3, reg::t3, 32);
    b.addi(reg::t4, reg::t4, 32);
    b.loadLocal(reg::t6, 3);            // reload the counter
    b.addi(reg::t6, reg::t6, -4);
    b.bgtz(reg::t6, cellLoop);

    // Row epilogue: reload spilled state.
    b.loadLocal(reg::t8, 0);
    b.loadLocal(reg::s1, 1);
    b.loadLocal(reg::s2, 2);
    b.addi(reg::t8, reg::t8, 1);
    b.li(reg::t0, N - 1);
    b.slt(reg::t1, reg::t8, reg::t0);
    b.bne(reg::t1, reg::zero, rowLoop);

    // Checksum: integer view of the last computed cell.
    b.cvtWD(reg::v0, 3);
    b.epilogue(f);

    prog::Program prog = b.finish();
    prog.setEntry(prog.symbol("main"));
    return prog;
}

} // namespace ddsim::workloads
