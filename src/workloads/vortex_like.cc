/**
 * @file
 * 147.vortex stand-in: an object-oriented in-memory database doing
 * create / lookup / update transactions through deep chains of small
 * functions.
 *
 * Characteristics targeted: the paper's most local-heavy program
 * (~60% of loads and ~80% of stores are local; ~71% of all refs),
 * extremely call-dense, very sensitive to memory bandwidth (Fig. 5),
 * the largest combining gains (Fig. 8: ~26% under (3+1), ~12% under
 * (3+2)) and a visible fast-forwarding gain (Section 4.4).
 */

#include "workloads/workloads.hh"

namespace ddsim::workloads {

namespace reg = isa::reg;
using prog::FrameSpec;
using prog::Label;

prog::Program
buildVortexLike(const WorkloadParams &p)
{
    prog::ProgramBuilder b("vortex");
    GenCtx ctx(b, p.seed);

    // Object arena: 32 KB of 32-byte objects.
    const Addr heapBase = layout::HeapBase;
    const std::uint32_t heapMask = 0x7fff & ~3u;
    Addr allocOff = b.dataWord(0);
    Addr txnCount = b.dataWord(0);

    Label main = b.newLabel("main");
    Label txn = b.newLabel("txn");
    Label objCreate = b.newLabel("obj_create");
    Label fieldInit = b.newLabel("field_init");
    Label objLookup = b.newLabel("obj_lookup");
    Label keyCompare = b.newLabel("key_compare");
    Label objUpdate = b.newLabel("obj_update");
    Label logEntry = b.newLabel("log_entry");

    // ---- main ----
    b.bind(main);
    b.li(reg::s0, static_cast<std::int32_t>(p.scale * 8));
    b.li(reg::s1, 0); // checksum
    Label loop = b.here();
    b.move(reg::a0, reg::s0);
    b.jal(txn);
    b.add(reg::s1, reg::s1, reg::v0);
    b.addi(reg::s0, reg::s0, -1);
    b.bgtz(reg::s0, loop);
    finishMain(b, reg::s1);

    // ---- txn(id): one transaction = create + lookup + update ----
    b.bind(txn);
    FrameSpec txnFrame;
    txnFrame.localWords = 4;
    txnFrame.savedRegs = {reg::s0, reg::s1, reg::s2, reg::s3};
    b.prologue(txnFrame);
    b.move(reg::s0, reg::a0);           // id
    b.storeLocal(reg::a0, 0);           // spill the txn id
    b.lw(reg::t0, static_cast<std::int32_t>(txnCount - layout::DataBase),
         reg::gp);
    b.addi(reg::t0, reg::t0, 1);
    b.sw(reg::t0, static_cast<std::int32_t>(txnCount - layout::DataBase),
         reg::gp);

    b.move(reg::a0, reg::s0);
    b.jal(objCreate);
    b.move(reg::s1, reg::v0);           // new object
    b.storeLocal(reg::v0, 1);

    b.move(reg::a0, reg::s0);
    b.jal(objLookup);
    b.move(reg::s2, reg::v0);
    b.storeLocal(reg::v0, 2);

    b.loadLocal(reg::a0, 1);            // short-distance reload
    b.move(reg::a1, reg::s2);
    b.jal(objUpdate);
    b.move(reg::s3, reg::v0);

    // Read a few fields of both objects to validate the transaction.
    b.lw(reg::t2, 0, reg::s1);
    b.lw(reg::t3, 8, reg::s1);
    b.lw(reg::t4, 0, reg::s2);
    b.lw(reg::t5, 12, reg::s2);
    b.add(reg::t2, reg::t2, reg::t3);
    b.add(reg::t4, reg::t4, reg::t5);
    b.add(reg::s3, reg::s3, reg::t2);
    b.add(reg::s3, reg::s3, reg::t4);

    b.loadLocal(reg::t1, 0);            // reload txn id
    b.add(reg::v0, reg::s3, reg::t1);
    b.epilogue(txnFrame);

    // ---- obj_create(id) -> addr ----
    b.bind(objCreate);
    FrameSpec createFrame;
    createFrame.localWords = 2;
    createFrame.savedRegs = {reg::s0, reg::s1};
    b.prologue(createFrame);
    b.move(reg::s0, reg::a0);
    ctx.bumpAlloc(reg::s1, allocOff, heapBase, 32, heapMask, reg::t5,
                  reg::t6);
    b.sw(reg::s0, 0, reg::s1);          // obj->key
    b.sw(reg::zero, 4, reg::s1);        // obj->refcount
    b.storeLocal(reg::s1, 0);
    b.move(reg::a0, reg::s1);
    b.move(reg::a1, reg::s0);
    b.jal(fieldInit);
    b.loadLocal(reg::v0, 0);            // return the object pointer
    b.epilogue(createFrame);

    // ---- field_init(obj, key): leaf, pure frame traffic ----
    b.bind(fieldInit);
    FrameSpec initFrame;
    initFrame.localWords = 3;
    initFrame.savedRegs = {};
    initFrame.saveRa = false;
    b.prologue(initFrame);
    b.storeLocal(reg::a1, 0);
    b.xori(reg::t0, reg::a1, 0x5a5a);
    b.storeLocal(reg::t0, 1);
    b.loadLocal(reg::t1, 0);            // immediate reload: fast-fwd
    b.add(reg::t2, reg::t0, reg::t1);
    b.storeLocal(reg::t2, 2);
    b.sw(reg::t2, 8, reg::a0);          // obj->hash
    b.loadLocal(reg::t3, 2);
    b.sw(reg::t3, 12, reg::a0);         // obj->hash2
    b.epilogue(initFrame);

    // ---- obj_lookup(id) -> addr ----
    b.bind(objLookup);
    FrameSpec lookupFrame;
    lookupFrame.localWords = 2;
    lookupFrame.savedRegs = {reg::s0, reg::s1};
    b.prologue(lookupFrame);
    b.move(reg::s0, reg::a0);
    // Hash probe into the arena.
    b.move(reg::t7, reg::a0);
    ctx.lcgStep(reg::t7, reg::t6);
    b.andi(reg::t7, reg::t7, static_cast<std::int32_t>(heapMask & ~31u));
    b.li(reg::t6, static_cast<std::int32_t>(heapBase));
    b.add(reg::s1, reg::t7, reg::t6);   // candidate object
    b.storeLocal(reg::s1, 0);
    b.lw(reg::a1, 0, reg::s1);          // candidate->key
    b.move(reg::a0, reg::s0);
    b.jal(keyCompare);
    b.loadLocal(reg::t0, 0);
    b.add(reg::v0, reg::t0, reg::zero);
    b.epilogue(lookupFrame);

    // ---- key_compare(a, b): leaf ----
    b.bind(keyCompare);
    FrameSpec cmpFrame;
    cmpFrame.localWords = 1;
    cmpFrame.savedRegs = {};
    cmpFrame.saveRa = false;
    b.prologue(cmpFrame);
    b.storeLocal(reg::a0, 0);
    b.xor_(reg::t0, reg::a0, reg::a1);
    b.loadLocal(reg::t1, 0);
    b.sltu(reg::v0, reg::t0, reg::t1);
    b.epilogue(cmpFrame);

    // ---- obj_update(obj, other) -> value ----
    b.bind(objUpdate);
    FrameSpec updFrame;
    updFrame.localWords = 2;
    updFrame.savedRegs = {reg::s0};
    b.prologue(updFrame);
    b.move(reg::s0, reg::a0);
    b.lw(reg::t0, 4, reg::a0);          // refcount
    b.addi(reg::t0, reg::t0, 1);
    b.sw(reg::t0, 4, reg::a0);
    b.storeLocal(reg::t0, 0);
    b.lw(reg::t1, 8, reg::a1);
    b.move(reg::a0, reg::t1);
    b.jal(logEntry);
    b.loadLocal(reg::t2, 0);
    b.add(reg::v0, reg::v0, reg::t2);
    b.epilogue(updFrame);

    // ---- log_entry(v): leaf ----
    b.bind(logEntry);
    FrameSpec logFrame;
    logFrame.localWords = 2;
    logFrame.savedRegs = {};
    logFrame.saveRa = false;
    b.prologue(logFrame);
    b.storeLocal(reg::a0, 0);
    b.sll(reg::t0, reg::a0, 1);
    b.storeLocal(reg::t0, 1);
    b.loadLocal(reg::t1, 0);
    b.loadLocal(reg::t2, 1);
    b.add(reg::v0, reg::t1, reg::t2);
    b.epilogue(logFrame);

    prog::Program prog = b.finish();
    prog.setEntry(prog.symbol("main"));
    return prog;
}

} // namespace ddsim::workloads
