/**
 * @file
 * Shared infrastructure for the synthetic SPEC95-like workload
 * generators.
 *
 * Each generator builds a complete, terminating MISA program whose
 * dynamic characteristics are calibrated to what the paper reports for
 * the corresponding SPEC95 benchmark: instruction mix and local-access
 * fraction (Fig. 2), frame-size distribution (Fig. 3), call density
 * and depth, spill/reload reuse distance, and heap/global streaming
 * behaviour. Every program ends by PRINTing a checksum and HALTing, so
 * functional correctness is testable.
 */

#ifndef DDSIM_WORKLOADS_COMMON_HH_
#define DDSIM_WORKLOADS_COMMON_HH_

#include <string>
#include <vector>

#include "prog/builder.hh"
#include "prog/program.hh"
#include "util/rng.hh"

namespace ddsim::workloads {

/** Knobs shared by all generators. */
struct WorkloadParams
{
    /**
     * Work multiplier: roughly proportional to the dynamic instruction
     * count. scale=100 yields on the order of a few hundred thousand
     * instructions for most workloads.
     */
    std::uint64_t scale = 100;
    /** Seed for the generator's structural randomness. */
    std::uint64_t seed = 0x5eed;
};

using Factory = prog::Program (*)(const WorkloadParams &);

/** Registry entry for one workload. */
struct WorkloadInfo
{
    const char *name;       ///< Short name, e.g. "li".
    const char *paperName;  ///< SPEC95 name, e.g. "130.li".
    const char *description;
    bool isFp;
    Factory factory;
    /**
     * Scale value producing roughly 300 K dynamic instructions —
     * workloads differ widely in work per scale unit, so benches use
     * `defaultScale * factor` to get comparable run lengths.
     */
    std::uint64_t defaultScale;
};

/** All twelve workloads, paper order (integer first, then FP). */
const std::vector<WorkloadInfo> &all();

/**
 * The synthetic adversarial workloads (pointer-chase, deep recursion,
 * huge frames, alloca-style dynamic frames). First-class for find()/
 * build() and every bench's --programs=, but deliberately excluded
 * from all() so the 12-workload baselines and figure benches keep
 * their exact composition.
 */
const std::vector<WorkloadInfo> &adversarial();

/** Look up by short or paper name (built-in or adversarial);
 *  nullptr if unknown. */
const WorkloadInfo *find(const std::string &name);

/** Build by name; calls fatal() on an unknown name. */
prog::Program build(const std::string &name,
                    const WorkloadParams &params = {});

/** Short names of the integer / FP subsets. */
std::vector<std::string> integerNames();
std::vector<std::string> fpNames();

// ---- Emission helpers used by the generators ------------------------------

/** Code-emission context: builder + deterministic randomness. */
class GenCtx
{
  public:
    GenCtx(prog::ProgramBuilder &b, std::uint64_t seed)
        : b(b), rng(seed)
    {}

    prog::ProgramBuilder &b;
    Rng rng;

    /**
     * Emit an LCG step on register @p r (clobbers @p scratch):
     * r = r * 1664525 + 1013904223.
     */
    void lcgStep(RegId r, RegId scratch);

    /**
     * Emit a bump allocation from a wrapped heap region:
     * @p dst = heapBase + (off & mask); off += cellBytes.
     * The running offset lives in the global word @p offAddr.
     * Clobbers @p s1 and @p s2. Generates 1 global load + 1 global
     * store.
     */
    void bumpAlloc(RegId dst, Addr offAddr, Addr heapBase,
                   std::uint32_t cellBytes, std::uint32_t mask,
                   RegId s1, RegId s2);

    /**
     * Emit @p n integer ALU operations over the caller-saved
     * temporaries t0..t3, forming short dependency chains. Used to pad
     * compute density between memory references.
     */
    void computeOps(int n);

    /**
     * Emit @p n FP operations over f4..f7 (adds/multiplies with short
     * chains).
     */
    void fpComputeOps(int n);

    /**
     * Emit "load/store the (indexReg & elemMask)-th word of the array
     * at @p baseAddr". The index register is preserved;
     * @p addrScratch receives the element address and at (r1) is
     * clobbered.
     */
    void arrayLoad(RegId dst, RegId indexReg, Addr baseAddr,
                   std::uint32_t elemMask, RegId addrScratch);
    void arrayStore(RegId src, RegId indexReg, Addr baseAddr,
                    std::uint32_t elemMask, RegId addrScratch);
};

/**
 * Standard epilogue for a workload main: print the checksum register
 * and halt.
 */
void finishMain(prog::ProgramBuilder &b, RegId checksumReg);

} // namespace ddsim::workloads

#endif // DDSIM_WORKLOADS_COMMON_HH_
