/**
 * @file
 * 134.perl stand-in: a bytecode interpreter with a heap value stack
 * and short handler functions — the scrabbl.pl-style dispatch-heavy
 * profile.
 *
 * Characteristics targeted: local-heavy (~45% of refs), frequent
 * short calls whose save/restore pairs co-reside in the window
 * (decent LVAQ forwarding), high memory reference rate.
 */

#include "workloads/workloads.hh"

namespace ddsim::workloads {

namespace reg = isa::reg;
using prog::FrameSpec;
using prog::Label;

prog::Program
buildPerlLike(const WorkloadParams &p)
{
    prog::ProgramBuilder b("perl");
    GenCtx ctx(b, p.seed);

    constexpr int NumOps = 6;
    constexpr int CodeWords = 2048;

    Addr stackTop = b.dataWord(0);      // value-stack cursor
    Addr crcTable = b.dataWords(64);    // hash lookup table
    Addr bytecode = b.dataWords(CodeWords);
    const Addr valueStack = layout::HeapBase;
    const std::uint32_t vsMask = 0x3fff & ~3u; // 16 KB value stack

    Label main = b.newLabel("main");
    Label hashString = b.newLabel("hash_string");
    std::vector<Label> ops;
    ops.reserve(NumOps);
    for (int i = 0; i < NumOps; ++i)
        ops.push_back(b.newLabel("op" + std::to_string(i)));

    // ---- main ----
    b.bind(main);
    b.li(reg::s0, static_cast<std::int32_t>(p.scale * 40));
    b.li(reg::s1, 0);                   // checksum
    b.li(reg::s2, 0);                   // interpreter pc

    // Fill the bytecode image.
    b.li(reg::t0, 0);
    b.li(reg::t7, static_cast<std::int32_t>(p.seed * 7 + 3));
    Label fill = b.here();
    ctx.lcgStep(reg::t7, reg::t6);
    b.srl(reg::t1, reg::t7, 12);
    b.sll(reg::t2, reg::t0, 2);
    b.la(reg::t3, bytecode);
    b.add(reg::t2, reg::t3, reg::t2);
    b.sw(reg::t1, 0, reg::t2);
    b.addi(reg::t0, reg::t0, 1);
    b.slti(reg::t3, reg::t0, CodeWords);
    b.bne(reg::t3, reg::zero, fill);

    Label dispatch = b.here("dispatch");
    b.andi(reg::t0, reg::s2, CodeWords - 1);
    b.sll(reg::t0, reg::t0, 2);
    b.la(reg::t1, bytecode);
    b.add(reg::t1, reg::t1, reg::t0);
    b.lw(reg::t2, 0, reg::t1);          // fetch op word
    b.andi(reg::t3, reg::t2, NumOps - 1);
    b.move(reg::a0, reg::t2);
    Label after = b.newLabel("after");
    for (int i = 0; i < NumOps; ++i) {
        Label next = b.newLabel();
        b.li(reg::t4, i);
        b.bne(reg::t3, reg::t4, next);
        b.jal(ops[static_cast<std::size_t>(i)]);
        b.j(after);
        b.bind(next);
    }
    // Fallthrough op index >= NumOps never happens (mask), but keep a
    // safe default.
    b.li(reg::v0, 0);
    b.bind(after);
    b.add(reg::s1, reg::s1, reg::v0);
    b.addi(reg::s2, reg::s2, 1);
    b.addi(reg::s0, reg::s0, -1);
    b.bgtz(reg::s0, dispatch);
    finishMain(b, reg::s1);

    // ---- op handlers: short, frame-based, push/pop the value stack -
    std::int32_t stOff =
        static_cast<std::int32_t>(stackTop - layout::DataBase);
    for (int i = 0; i < NumOps; ++i) {
        b.bind(ops[static_cast<std::size_t>(i)]);
        FrameSpec f;
        f.localWords = 2 + static_cast<int>(ctx.rng.below(3));
        f.savedRegs = {reg::s0, reg::s1};
        bool callsHelper = (i % 3 == 0);
        f.saveRa = true;
        b.prologue(f);
        b.move(reg::s0, reg::a0);
        b.storeLocal(reg::a0, 0);

        // Pop one value, compute, push one value (heap traffic).
        b.lw(reg::t0, stOff, reg::gp);
        b.andi(reg::t1, reg::t0, static_cast<std::int32_t>(vsMask));
        b.li(reg::t2, static_cast<std::int32_t>(valueStack));
        b.add(reg::t1, reg::t1, reg::t2);
        b.lw(reg::s1, 0, reg::t1);      // pop
        b.lw(reg::t4, -4, reg::t1);     // peek the next value down
        b.add(reg::s1, reg::s1, reg::t4);
        ctx.computeOps(3 + static_cast<int>(ctx.rng.below(4)));
        b.loadLocal(reg::t3, 0);        // reload the op word
        b.add(reg::s1, reg::s1, reg::t3);
        if (callsHelper) {
            b.move(reg::a0, reg::s1);
            b.jal(hashString);
            b.add(reg::s1, reg::s1, reg::v0);
        }
        b.storeLocal(reg::s1, 1);
        b.lw(reg::t0, stOff, reg::gp);
        b.addi(reg::t0, reg::t0, 4);
        b.sw(reg::t0, stOff, reg::gp);
        b.andi(reg::t1, reg::t0, static_cast<std::int32_t>(vsMask));
        b.li(reg::t2, static_cast<std::int32_t>(valueStack));
        b.add(reg::t1, reg::t1, reg::t2);
        b.loadLocal(reg::t4, 1);
        b.sw(reg::t4, 0, reg::t1);      // push
        b.move(reg::v0, reg::s1);
        b.epilogue(f);
    }

    // ---- hash_string(v): leaf with a small local buffer ----
    b.bind(hashString);
    FrameSpec hf;
    hf.localWords = 4;
    hf.savedRegs = {};
    hf.saveRa = false;
    b.prologue(hf);
    b.storeLocal(reg::a0, 0);
    b.li(reg::v0, 5381);
    std::int32_t crcOff =
        static_cast<std::int32_t>(crcTable - layout::DataBase);
    for (int k = 0; k < 3; ++k) {
        b.sll(reg::t0, reg::v0, 5);
        b.add(reg::v0, reg::v0, reg::t0);
        b.loadLocal(reg::t1, 0);
        b.srl(reg::t1, reg::t1, k * 8);
        // Table-driven hash step (global load).
        b.andi(reg::t2, reg::t1, 63);
        b.sll(reg::t2, reg::t2, 2);
        b.add(reg::t2, reg::gp, reg::t2);
        b.lw(reg::t3, crcOff, reg::t2);
        b.xor_(reg::v0, reg::v0, reg::t1);
        b.xor_(reg::v0, reg::v0, reg::t3);
        b.storeLocal(reg::v0, 1 + k % 2);
    }
    b.loadLocal(reg::t2, 1);
    b.add(reg::v0, reg::v0, reg::t2);
    b.epilogue(hf);

    prog::Program prog = b.finish();
    prog.setEntry(prog.symbol("main"));
    return prog;
}

} // namespace ddsim::workloads
